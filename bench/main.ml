(* Benchmark harness: one experiment per claim of the paper's
   evaluation (see DESIGN.md experiment index).  Run with no argument
   for everything, or with a list of experiment ids:

     dune exec bench/main.exe            # all
     dune exec bench/main.exe -- e1 e6   # selected *)

open Hdl
module CD = Osss.Class_def
module OI = Osss.Object_inst

let section id title =
  Printf.printf "\n=== %s: %s ===\n" (String.uppercase_ascii id) title

let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Shared synthesis helpers                                            *)

let synthesize kind design = Synth.Flow.run kind design

let flow_columns (r : Synth.Flow.result) =
  ( Backend.Netlist.cell_count r.netlist,
    r.area.Backend.Area.total,
    r.area.Backend.Area.n_ffs,
    r.timing.Backend.Timing.critical_ns,
    r.timing.Backend.Timing.fmax_mhz )

(* ------------------------------------------------------------------ *)
(* E1/E2: full ExpoCU, OSSS flow vs conventional VHDL flow             *)

let expocu_results =
  lazy
    ( synthesize Synth.Flow.Osss (Expocu.Expocu_top.osss_top ()),
      synthesize Synth.Flow.Vhdl (Expocu.Expocu_top.rtl_top ()) )

let e1 () =
  section "e1"
    "ExpoCU netlist area: OSSS flow vs VHDL flow (paper: almost equivalent)";
  let osss, vhdl = Lazy.force expocu_results in
  let print name r =
    let cells, area, ffs, _, _ = flow_columns r in
    row "  %-12s %8d cells %10.1f GE %6d flip-flops\n" name cells area ffs
  in
  print "OSSS" osss;
  print "VHDL" vhdl;
  let _, a_o, _, _, _ = flow_columns osss in
  let _, a_v, _, _, _ = flow_columns vhdl in
  row "  area ratio OSSS/VHDL = %.3f (paper: ~1.0)\n" (a_o /. a_v);
  row "  OSSS flow pass trace:\n%s" (Synth.Flow.pass_table osss);
  row "  VHDL flow pass trace:\n%s" (Synth.Flow.pass_table vhdl)

let e2 () =
  section "e2"
    "ExpoCU achieved frequency (paper: OSSS below VHDL flow; target 66 MHz)";
  let osss, vhdl = Lazy.force expocu_results in
  let print name (r : Synth.Flow.result) =
    let _, _, _, ns, mhz = flow_columns r in
    row "  %-12s critical path %6.2f ns   fmax %7.1f MHz   66 MHz: %s\n" name
      ns mhz
      (if Backend.Timing.meets r.Synth.Flow.timing ~freq_mhz:66.0 then "met"
       else "missed")
  in
  print "OSSS" osss;
  print "VHDL" vhdl;
  let _, _, _, _, f_o = flow_columns osss in
  let _, _, _, _, f_v = flow_columns vhdl in
  row "  fmax ratio OSSS/VHDL = %.3f (paper: < 1.0)\n" (f_o /. f_v);
  (* The paper attributes the OSSS frequency deficit to the SystemC
     behavioral-synthesis stage ("restrictions and unnecessary
     overhead"); our shared back end removes that stage's bias from the
     full-chip numbers, so the mechanism is measured in isolation: the
     same multiply datapath hand-registered vs behaviorally synthesized
     with functional-unit sharing. *)
  let hand_mul =
    let open Builder.Dsl in
    let b = Builder.create "hand_mac" in
    let a = Builder.input b "a" 8 in
    let x = Builder.input b "x" 8 in
    let y = Builder.output b "y" 8 in
    Builder.sync b "mac" [ y <-- (v a *: v x) ];
    Builder.finish b
  in
  let behav_mul =
    let open Synth.Behavioral in
    let g =
      create ~name:"behav_mac"
        ~inputs:[ ("a", 8); ("x", 8); ("a2", 8); ("x2", 8) ]
    in
    let m0 = node g Mul [ Input "a"; Input "x" ] in
    let m1 = node g Mul [ Input "a2"; Input "x2" ] in
    let s = node g Add [ Node m0; Node m1 ] in
    output g "y" (Node s);
    to_module g
      (list_schedule g ~resources:(fun k ->
           match k with Mul -> 1 | Add | Sub | And | Or | Xor | Mux -> 4))
  in
  let fmax m =
    (Backend.Timing.analyze (Backend.Opt.optimize (Backend.Lower.lower m)))
      .Backend.Timing.fmax_mhz
  in
  let f_hand = fmax hand_mul and f_behav = fmax behav_mul in
  row
    "  behavioral-synthesis overhead in isolation (one multiplier per \
     cycle):\n";
  row "    hand-registered datapath   fmax %7.1f MHz\n" f_hand;
  row "    behaviorally synthesized   fmax %7.1f MHz (%.2fx, the paper's \
       frequency-gap mechanism)\n"
    f_behav (f_behav /. f_hand)

(* ------------------------------------------------------------------ *)
(* E3: class/template resolution has zero logic overhead               *)

let e3 () =
  section "e3" "SyncRegister: class resolution overhead (paper/Fig.7-8: none)";
  let gates m = Backend.Opt.optimize (Backend.Lower.lower m) in
  let print name nl =
    let a = Backend.Area.analyze nl in
    row "  %-28s %6d cells %8.1f GE %4d flip-flops\n" name
      (Backend.Netlist.cell_count nl)
      a.Backend.Area.total a.Backend.Area.n_ffs
  in
  let osss = gates (Expocu.Sync.osss_module ()) in
  let rtl = gates (Expocu.Sync.rtl_module ()) in
  print "OSSS classes + templates" osss;
  print "hand-written RTL" rtl;
  row "  overhead: %+d cells (paper: 0)\n"
    (Backend.Netlist.cell_count osss - Backend.Netlist.cell_count rtl)

(* ------------------------------------------------------------------ *)
(* E4: polymorphism costs exactly the dispatch multiplexers            *)

let alu_base =
  CD.declare ~name:"AluBase" []
    [
      CD.fn_method ~name:"Execute" ~params:[ ("A", 8); ("B", 8) ] ~return:8
        (fun ctx -> ([], Ir.Binop (Ir.Add, ctx.CD.arg "A", ctx.CD.arg "B")));
    ]

let alu_variant name op =
  CD.declare ~parent:alu_base ~name []
    [
      CD.fn_method ~name:"Execute" ~params:[ ("A", 8); ("B", 8) ] ~return:8
        (fun ctx -> ([], Ir.Binop (op, ctx.CD.arg "A", ctx.CD.arg "B")));
    ]

let poly_alu_module () =
  let b = Builder.create "poly_alu" in
  let sel = Builder.input b "sel" 2 in
  let a = Builder.input b "a" 8 in
  let x = Builder.input b "x" 8 in
  let y = Builder.output b "y" 8 in
  let variants =
    [ alu_variant "AluAdd" Ir.Add; alu_variant "AluSub" Ir.Sub;
      alu_variant "AluXor" Ir.Xor; alu_variant "AluAnd" Ir.And ]
  in
  let poly = Osss.Polymorph.instantiate b ~name:"alu" ~base:alu_base variants in
  let _, result = Osss.Polymorph.vcall_fn poly "Execute" [ Ir.Var a; Ir.Var x ] in
  Builder.sync b "drive"
    [
      Ir.Case
        ( Ir.Var sel,
          List.mapi
            (fun i variant ->
              (Bitvec.of_int ~width:2 i, Osss.Polymorph.assign_class poly variant))
            variants,
          [] );
      Ir.Assign (y, result);
    ];
  Builder.finish b

let manual_alu_module () =
  let open Builder.Dsl in
  let b = Builder.create "manual_alu" in
  let sel = Builder.input b "sel" 2 in
  let a = Builder.input b "a" 8 in
  let x = Builder.input b "x" 8 in
  let y = Builder.output b "y" 8 in
  let mode = Builder.wire b "mode" 2 in
  Builder.sync b "drive"
    [
      mode <-- v sel;
      case (v mode)
        [
          (0, [ y <-- (v a +: v x) ]);
          (1, [ y <-- (v a -: v x) ]);
          (2, [ y <-- (v a ^: v x) ]);
        ]
        [ y <-- (v a &: v x) ];
    ];
  Builder.finish b

let e4 () =
  section "e4"
    "Polymorphic ALU vs hand-multiplexed ALU (paper: polymorphism inserts \
     only the selection muxes)";
  let gates m = Backend.Opt.optimize (Backend.Lower.lower m) in
  let print name nl =
    let a = Backend.Area.analyze nl in
    let muxes =
      List.fold_left
        (fun acc (k, n) -> if k = Backend.Cell.Mux2 then acc + n else acc)
        0 (Backend.Netlist.stats nl)
    in
    row "  %-24s %6d cells %8.1f GE %4d flip-flops %4d mux2\n" name
      (Backend.Netlist.cell_count nl)
      a.Backend.Area.total a.Backend.Area.n_ffs muxes
  in
  let poly = gates (poly_alu_module ()) in
  let manual = gates (manual_alu_module ()) in
  print "OSSS polymorphism" poly;
  print "manual mux select" manual;
  let c_p = Backend.Netlist.cell_count poly
  and c_m = Backend.Netlist.cell_count manual in
  row "  cell ratio poly/manual = %.2f (paper: ~1, muxes exist either way)\n"
    (float_of_int c_p /. float_of_int c_m)

(* ------------------------------------------------------------------ *)
(* E5: global objects add only the arbiter a shared resource needs     *)

let counter_class =
  CD.declare ~name:"BenchCounter"
    [ CD.field "count" 8 ]
    [
      CD.proc_method ~name:"Tick" ~params:[] (fun ctx ->
          [
            ctx.CD.set "count"
              (Ir.Binop
                 (Ir.Add, ctx.CD.get "count", Ir.Const (Bitvec.of_int ~width:8 1)));
          ]);
    ]

let shared_object_module policy =
  let b = Builder.create "shared_obj" in
  let reset = Builder.input b "reset" 1 in
  let reqs = Builder.input b "reqs" 3 in
  let value = Builder.output b "value" 8 in
  let shared =
    Osss.Shared.create b ~name:"cnt" ~class_:counter_class ~policy ~clients:3
      ~methods:[ "Tick" ] ~reset
  in
  List.iteri
    (fun i () ->
      let cl = Osss.Shared.client shared i in
      Builder.comb b
        (Printf.sprintf "drv%d" i)
        [
          Ir.Assign (Osss.Shared.req cl, Ir.Slice (Ir.Var reqs, i, i));
          Ir.Assign (Osss.Shared.op cl, Ir.Const (Bitvec.zero 1));
        ])
    [ (); (); () ];
  Builder.comb b "obs"
    [ Ir.Assign (value, OI.field_expr (Osss.Shared.state shared) "count") ];
  Builder.finish b

let manual_arbiter_module () =
  let open Builder.Dsl in
  let b = Builder.create "manual_arbiter" in
  let reset = Builder.input b "reset" 1 in
  let reqs = Builder.input b "reqs" 3 in
  let value = Builder.output b "value" 8 in
  let count = Builder.wire b "count" 8 in
  let last = Builder.wire b "last" 2 in
  let grant = Builder.wire b "grant" 3 in
  (* hand-written rotating-priority arbiter + shared counter *)
  let r i = bit (v reqs) i in
  let fixed order =
    List.concat
      (List.mapi
         (fun pos j ->
           let earlier = List.filteri (fun p _ -> p < pos) order in
           let none_before =
             List.fold_left (fun acc k -> acc &: notb (r k)) (cb true) earlier
           in
           [ assign_slice grant ~lo:j (r j &: none_before) ])
         order)
  in
  Builder.comb b "arbiter"
    [
      grant <-- c ~width:3 0;
      case (v last)
        [ (0, fixed [ 1; 2; 0 ]); (1, fixed [ 2; 0; 1 ]); (2, fixed [ 0; 1; 2 ]) ]
        (fixed [ 1; 2; 0 ]);
    ];
  Builder.sync b "server"
    [
      if_ (v reset)
        [ count <-- c ~width:8 0; last <-- c ~width:2 0 ]
        [
          when_ (bit (v grant) 0)
            [ count <-- (v count +: c ~width:8 1); last <-- c ~width:2 0 ];
          when_ (bit (v grant) 1)
            [ count <-- (v count +: c ~width:8 1); last <-- c ~width:2 1 ];
          when_ (bit (v grant) 2)
            [ count <-- (v count +: c ~width:8 1); last <-- c ~width:2 2 ];
        ];
    ];
  Builder.comb b "obs" [ value <-- v count ];
  Builder.finish b

let e5 () =
  section "e5"
    "Shared (global) object vs hand-written arbiter (paper: scheduler \
     logic would be needed anyway)";
  let gates m = Backend.Opt.optimize (Backend.Lower.lower m) in
  let print name nl =
    let a = Backend.Area.analyze nl in
    row "  %-34s %6d cells %8.1f GE %4d flip-flops\n" name
      (Backend.Netlist.cell_count nl)
      a.Backend.Area.total a.Backend.Area.n_ffs
  in
  print "OSSS global object (round-robin)"
    (gates (shared_object_module Osss.Shared.Round_robin));
  print "hand arbiter + shared counter" (gates (manual_arbiter_module ()));
  print "OSSS global object (priority)"
    (gates (shared_object_module Osss.Shared.Fixed_priority));
  print "OSSS global object (FCFS)"
    (gates (shared_object_module Osss.Shared.Fcfs))

(* ------------------------------------------------------------------ *)
(* E6: simulation speed across abstraction levels                      *)

let rtl_frame_sim () =
  let sim = Rtl_sim.create (Expocu.Expocu_top.rtl_top ()) in
  let frame = Array.init 256 (fun i -> i * 53 mod 256) in
  Rtl_sim.set_input_int sim "ext_reset" 0;
  Rtl_sim.set_input_int sim "target_bin" 7;
  Rtl_sim.run sim 15;
  Rtl_sim.set_input_int sim "frame_sync" 1;
  Rtl_sim.run sim 4;
  Rtl_sim.set_input_int sim "line_valid" 1;
  Array.iter
    (fun px ->
      Rtl_sim.set_input_int sim "pixel" px;
      Rtl_sim.step sim)
    frame;
  Rtl_sim.set_input_int sim "line_valid" 0;
  Rtl_sim.set_input_int sim "frame_sync" 0;
  let guard = ref 0 in
  while Rtl_sim.get_int sim "frame_done" = 0 && !guard < 4000 do
    Rtl_sim.step sim;
    incr guard
  done;
  Rtl_sim.cycles sim

let gate_netlist = lazy (Backend.Lower.lower (Expocu.Expocu_top.rtl_top ()))

let gate_frame_sim () =
  let sim = Backend.Nl_sim.create (Lazy.force gate_netlist) in
  let frame = Array.init 256 (fun i -> i * 53 mod 256) in
  Backend.Nl_sim.set_input_int sim "ext_reset" 0;
  Backend.Nl_sim.set_input_int sim "target_bin" 7;
  Backend.Nl_sim.set_input_int sim "sda_in" 0;
  Backend.Nl_sim.set_input_int sim "frame_sync" 0;
  Backend.Nl_sim.set_input_int sim "line_valid" 0;
  Backend.Nl_sim.set_input_int sim "pixel" 0;
  Backend.Nl_sim.run sim 15;
  Backend.Nl_sim.set_input_int sim "frame_sync" 1;
  Backend.Nl_sim.run sim 4;
  Backend.Nl_sim.set_input_int sim "line_valid" 1;
  Array.iter
    (fun px ->
      Backend.Nl_sim.set_input_int sim "pixel" px;
      Backend.Nl_sim.step sim)
    frame;
  Backend.Nl_sim.set_input_int sim "line_valid" 0;
  Backend.Nl_sim.set_input_int sim "frame_sync" 0;
  let guard = ref 0 in
  while Backend.Nl_sim.get_output_int sim "frame_done" = 0 && !guard < 4000 do
    Backend.Nl_sim.step sim;
    incr guard
  done;
  Backend.Nl_sim.cycles sim

let behavioural_frame_sim () =
  let r = Expocu.Behave_model.run ~frames:1 ~pixels_per_frame:256 () in
  r.Expocu.Behave_model.sim_cycles

let measure_ns tests =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.6) ~kde:None () in
  let raw =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"sim" ~fmt:"%s/%s" tests)
  in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> (name, est) :: acc
      | Some [] | None -> acc)
    results []

let e6 () =
  section "e6"
    "Simulation speed per abstraction level (paper: behavioural SystemC \
     much faster than conventional RTL simulators)";
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"behavioural"
        (Staged.stage (fun () -> behavioural_frame_sim ()));
      Test.make ~name:"rtl" (Staged.stage (fun () -> rtl_frame_sim ()));
      Test.make ~name:"gate-level" (Staged.stage (fun () -> gate_frame_sim ()));
    ]
  in
  let results = measure_ns tests in
  let find key =
    List.fold_left
      (fun acc (name, est) ->
        let nl = String.length name and kl = String.length key in
        if nl >= kl && String.sub name (nl - kl) kl = key then Some est
        else acc)
      None results
  in
  let cycles = float_of_int (rtl_frame_sim ()) in
  let print name key =
    match find key with
    | Some ns ->
        row "  %-14s %12.2f ms/frame %12.0f cycles/s\n" name (ns /. 1e6)
          (cycles /. (ns /. 1e9))
    | None -> row "  %-14s (no estimate)\n" name
  in
  print "behavioural" "behavioural";
  print "RTL" "rtl";
  print "gate-level" "gate-level";
  match (find "behavioural", find "rtl", find "gate-level") with
  | Some b, Some r, Some g ->
      row
        "  speedups: behavioural/RTL = %.1fx, RTL/gate = %.1fx, \
         behavioural/gate = %.1fx\n"
        (r /. b) (g /. r) (g /. b)
  | _, _, _ -> ()

(* ------------------------------------------------------------------ *)
(* E7: development effort, I2C master in three methodologies           *)

let e7 () =
  section "e7"
    "I2C master development effort (paper: OSSS 1 day, SystemC ~2 days, \
     VHDL RTL slightly longer)";
  let variants =
    [
      ("OSSS", Expocu.I2c.osss_module (), 1.0);
      ("SystemC", Expocu.I2c.systemc_module (), 2.0);
      ("VHDL RTL", Expocu.I2c.vhdl_module (), 2.5);
    ]
  in
  row "  %-10s %8s %8s %10s %18s %12s\n" "style" "stmts" "tokens" "decisions"
    "effort-model" "paper(days)";
  let base = ref 0.0 in
  List.iter
    (fun (name, m, paper_days) ->
      let metrics = Metrics.of_module m in
      let effort = Metrics.effort_days metrics in
      if !base = 0.0 then base := effort;
      row "  %-10s %8d %8d %10d %10.2f (%4.1fx) %12.1f\n" name
        metrics.Metrics.lines metrics.Metrics.tokens metrics.Metrics.decisions
        effort (effort /. !base) paper_days)
    variants;
  row "  emitted artifact sizes (non-blank lines):\n";
  List.iter
    (fun (name, m, _) ->
      let text =
        match name with
        | "VHDL RTL" -> Vhdl.emit m
        | _ -> Osss.Resolve.emit_module (Elaborate.flatten m)
      in
      let tm = Metrics.of_text text in
      row "    %-10s %6d lines\n" name tm.Metrics.lines)
    variants

(* ------------------------------------------------------------------ *)
(* E8: bit and cycle accuracy through the whole flow                   *)

let e8 () =
  section "e8"
    "Bit/cycle accuracy across flow stages (paper: every stage bit and \
     cycle accurate)";
  let osss_top = Expocu.Expocu_top.osss_top () in
  let rtl_top = Expocu.Expocu_top.rtl_top () in
  let report name result =
    match result with
    | Ok n -> row "  %-46s %5d cycles, 0 mismatches\n" name n
    | Error m ->
        row "  %-46s MISMATCH: %s\n" name
          (Format.asprintf "%a" Backend.Equiv.pp_divergence m)
  in
  report "OSSS design vs conventional design"
    (Backend.Equiv.ir_vs_ir ~cycles:2000 osss_top rtl_top);
  report "OSSS design vs its synthesized netlist"
    (Backend.Equiv.ir_vs_netlist ~cycles:800 osss_top
       (Backend.Lower.lower osss_top));
  report "OSSS design vs optimized netlist"
    (Backend.Equiv.ir_vs_netlist ~cycles:800 osss_top
       (Backend.Opt.optimize (Backend.Lower.lower osss_top)));
  report "conventional design vs its netlist"
    (Backend.Equiv.ir_vs_netlist ~cycles:800 rtl_top
       (Backend.Lower.lower rtl_top));
  (* All levels in one N-way lockstep run through the engine harness:
     the first factory is the reference, every output of every other
     engine is compared against it each cycle. *)
  let factories =
    [
      (fun () -> Rtl_engine.create ~label:"rtl:osss" osss_top);
      (fun () -> Rtl_engine.create ~label:"rtl:conventional" rtl_top);
      (fun () ->
        Backend.Nl_engine.create ~label:"gates:osss"
          (Backend.Opt.optimize (Backend.Lower.lower osss_top)));
    ]
  in
  report "3-way lockstep: osss rtl / conv rtl / gates"
    (Backend.Equiv.differential ~cycles:500 factories);
  (* Negative control: a fault seeded into a fourth engine must be
     detected, localized and shrunk to a minimal reproducer window. *)
  (match
     Backend.Equiv.differential ~cycles:500
       (factories
       @ [
           (fun () ->
             Engine.inject_fault ~from_cycle:120 ~port:"frame_done"
               (Rtl_engine.create ~label:"rtl:seeded-fault" osss_top));
         ])
   with
  | Ok _ -> row "  seeded fault: NOT DETECTED (harness is broken)\n"
  | Error d ->
      row "  seeded fault detected and shrunk: %s\n"
        (Format.asprintf "%a" Backend.Equiv.pp_divergence d))

(* ------------------------------------------------------------------ *)
(* E9: behavioral synthesis exploration                                *)

let e9 () =
  section "e9"
    "Behavioral synthesis: resource constraints vs latency/area (the \
     'behavioral synthesis overhead' of the paper's flow)";
  let g =
    Synth.Behavioral.create ~name:"filter_tap"
      ~inputs:
        [ ("x0", 8); ("x1", 8); ("x2", 8); ("x3", 8); ("k0", 8); ("k1", 8) ]
  in
  let open Synth.Behavioral in
  let m0 = node g Mul [ Input "x0"; Input "k0" ] in
  let m1 = node g Mul [ Input "x1"; Input "k1" ] in
  let m2 = node g Mul [ Input "x2"; Input "k0" ] in
  let m3 = node g Mul [ Input "x3"; Input "k1" ] in
  let s0 = node g Add [ Node m0; Node m1 ] in
  let s1 = node g Add [ Node m2; Node m3 ] in
  let s = node g Add [ Node s0; Node s1 ] in
  output g "y" (Node s);
  row "  %-22s %8s %8s %10s %10s\n" "schedule" "states" "cells" "area GE"
    "fmax MHz";
  List.iter
    (fun (name, sched) ->
      let m = to_module g sched in
      let nl = Backend.Opt.optimize (Backend.Lower.lower m) in
      let a = Backend.Area.analyze nl in
      let t = Backend.Timing.analyze nl in
      row "  %-22s %8d %8d %10.1f %10.1f\n" name (latency sched)
        (Backend.Netlist.cell_count nl)
        a.Backend.Area.total t.Backend.Timing.fmax_mhz)
    [
      ("unconstrained (ASAP)", asap g);
      ( "2 multipliers",
        list_schedule g ~resources:(fun k ->
            match k with Mul -> 2 | Add | Sub | And | Or | Xor | Mux -> 4) );
      ( "1 multiplier",
        list_schedule g ~resources:(fun k ->
            match k with Mul -> 1 | Add | Sub | And | Or | Xor | Mux -> 4) );
      ("1 of everything", list_schedule g ~resources:(fun _ -> 1));
    ]

(* ------------------------------------------------------------------ *)
(* F12: synthesized design structure                                   *)

let f12 () =
  section "f12" "ExpoCU top-level structure (paper Figure 12)";
  print_string (Synth.Analyzer.report (Expocu.Expocu_top.osss_top ()))

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let ablation () =
  section "ablation" "design-choice ablations (DESIGN.md)";
  let design = Expocu.Expocu_top.osss_top () in
  let with_fold = Backend.Lower.lower ~fold:true design in
  let without = Backend.Lower.lower ~fold:false design in
  row "  netlist folding: on=%d cells, off=%d cells (%.1fx), off+opt=%d\n"
    (Backend.Netlist.cell_count with_fold)
    (Backend.Netlist.cell_count without)
    (float_of_int (Backend.Netlist.cell_count without)
    /. float_of_int (Backend.Netlist.cell_count with_fold))
    (Backend.Netlist.cell_count (Backend.Opt.optimize without));
  let throughput_of policy =
    let sim = Rtl_sim.create (shared_object_module policy) in
    Rtl_sim.set_input_int sim "reset" 1;
    Rtl_sim.step sim;
    Rtl_sim.set_input_int sim "reset" 0;
    Rtl_sim.set_input_int sim "reqs" 7;
    Rtl_sim.run sim 30;
    Rtl_sim.get_int sim "value"
  in
  row
    "  scheduler throughput over 30 contended cycles: RR=%d, priority=%d, \
     FCFS=%d ticks\n"
    (throughput_of Osss.Shared.Round_robin)
    (throughput_of Osss.Shared.Fixed_priority)
    (throughput_of Osss.Shared.Fcfs)

(* ------------------------------------------------------------------ *)
(* Formal verification table                                           *)

let formal () =
  section "formal"
    "Formal equivalence proofs (BDD-based; strengthens the sampled E3/E8 \
     results)";
  let prove name a b =
    let t0 = Unix.gettimeofday () in
    let verdict = Backend.Cec.check_ir a b in
    row "  %-44s %-22s (%.2f s)\n" name
      (Format.asprintf "%a" Backend.Cec.pp_verdict verdict)
      (Unix.gettimeofday () -. t0)
  in
  prove "sync: OSSS vs hand RTL" (Expocu.Sync.osss_module ())
    (Expocu.Sync.rtl_module ());
  prove "i2c: OSSS vs plain SystemC" (Expocu.I2c.osss_module ())
    (Expocu.I2c.systemc_module ());
  prove "i2c: OSSS vs VHDL two-process" (Expocu.I2c.osss_module ())
    (Expocu.I2c.vhdl_module ());
  prove "reset: OSSS vs hand RTL" (Expocu.Reset_ctrl.osss_module ())
    (Expocu.Reset_ctrl.rtl_module ());
  (* optimizer soundness, from raw unfolded gates to optimized *)
  let design = Expocu.I2c.vhdl_module () in
  let raw = Backend.Lower.lower ~fold:false design in
  let optimized = Backend.Opt.optimize raw in
  row "  %-44s %-22s\n" "i2c: unfolded netlist vs optimized"
    (Format.asprintf "%a" Backend.Cec.pp_verdict
       (Backend.Cec.check raw optimized))

(* ------------------------------------------------------------------ *)
(* Power comparison                                                    *)

let power () =
  section "power"
    "Activity-based power per frame (model units; extension beyond the \
     paper's area/frequency metrics)";
  let frame = Array.init 256 (fun i -> i * 53 mod 256) in
  let run design =
    let nl = Backend.Opt.optimize (Backend.Lower.lower design) in
    let sim = Backend.Nl_sim.create nl in
    Backend.Nl_sim.set_input_int sim "ext_reset" 0;
    Backend.Nl_sim.set_input_int sim "target_bin" 7;
    Backend.Nl_sim.set_input_int sim "sda_in" 0;
    Backend.Nl_sim.set_input_int sim "frame_sync" 0;
    Backend.Nl_sim.set_input_int sim "line_valid" 0;
    Backend.Nl_sim.set_input_int sim "pixel" 0;
    Backend.Nl_sim.run sim 15;
    Backend.Nl_sim.set_input_int sim "frame_sync" 1;
    Backend.Nl_sim.run sim 4;
    Backend.Nl_sim.set_input_int sim "line_valid" 1;
    Array.iter
      (fun px ->
        Backend.Nl_sim.set_input_int sim "pixel" px;
        Backend.Nl_sim.step sim)
      frame;
    Backend.Nl_sim.set_input_int sim "line_valid" 0;
    Backend.Nl_sim.set_input_int sim "frame_sync" 0;
    let guard = ref 0 in
    while
      Backend.Nl_sim.get_output_int sim "frame_done" = 0 && !guard < 4000
    do
      Backend.Nl_sim.step sim;
      incr guard
    done;
    Backend.Power.estimate nl sim
  in
  let p_osss = run (Expocu.Expocu_top.osss_top ()) in
  let p_vhdl = run (Expocu.Expocu_top.rtl_top ()) in
  row "  %-6s %s\n" "OSSS" (Format.asprintf "%a" Backend.Power.pp_report p_osss);
  row "  %-6s %s\n" "VHDL" (Format.asprintf "%a" Backend.Power.pp_report p_vhdl);
  row "  power ratio OSSS/VHDL = %.3f\n"
    (p_osss.Backend.Power.total_mw /. p_vhdl.Backend.Power.total_mw)

(* ------------------------------------------------------------------ *)
(* Layout: technology mapping and place & route                        *)

let layout () =
  section "layout"
    "Technology map + place & route (completes Figure 6: map tool, \
     place&route, post-layout frequency)";
  row "  %-6s %6s %6s %7s %9s %11s %9s %7s\n" "flow" "LUT4" "FFs" "depth"
    "grid" "wirelength" "fmax MHz" "66 MHz";
  List.iter
    (fun (name, design) ->
      let nl = Backend.Opt.optimize (Backend.Lower.lower design) in
      let mapped = Backend.Techmap.map nl in
      let placement = Backend.Pnr.place ~seed:42 ~moves:800_000 mapped in
      let r = Backend.Pnr.analyze placement in
      let w, h = r.Backend.Pnr.grid in
      row "  %-6s %6d %6d %7d %5dx%-3d %11.0f %9.1f %7s\n" name
        (Backend.Techmap.lut_count mapped)
        (Backend.Techmap.ff_count mapped)
        (Backend.Techmap.depth mapped)
        w h r.Backend.Pnr.wirelength r.Backend.Pnr.fmax_mhz
        (if r.Backend.Pnr.fmax_mhz >= 66.0 then "met" else "missed"))
    [
      ("OSSS", Expocu.Expocu_top.osss_top ());
      ("VHDL", Expocu.Expocu_top.rtl_top ());
    ];
  row "  (LUT4 %.2f ns; wire %.2f ns + %.2f ns per grid unit)\n"
    Backend.Pnr.lut_delay_ns Backend.Pnr.wire_base_ns
    Backend.Pnr.wire_delay_ns_per_unit

(* ------------------------------------------------------------------ *)
(* Reset coverage                                                      *)

let xcheck () =
  section "xcheck"
    "Four-state reset coverage of the full ExpoCU (extension: conservative \
     X-propagation instead of the power-up-to-zero assumption)";
  let nl = Backend.Lower.lower (Expocu.Expocu_top.rtl_top ()) in
  let sim = Backend.Xprop.create nl in
  Backend.Xprop.set_input sim "ext_reset" (Bitvec.of_int ~width:1 1);
  Backend.Xprop.set_input sim "pixel" (Bitvec.of_int ~width:8 0);
  Backend.Xprop.set_input sim "line_valid" (Bitvec.of_int ~width:1 0);
  Backend.Xprop.set_input sim "frame_sync" (Bitvec.of_int ~width:1 0);
  Backend.Xprop.set_input sim "sda_in" (Bitvec.of_int ~width:1 0);
  Backend.Xprop.set_input sim "target_bin" (Bitvec.of_int ~width:8 7);
  let report label =
    row "  %-34s unknown flip-flops: %4d; unknown output bits: %d\n" label
      (Backend.Xprop.unknown_ffs sim)
      (List.fold_left (fun a (_, n) -> a + n) 0
         (Backend.Xprop.unknown_outputs sim))
  in
  Backend.Xprop.settle sim;
  report "power-up";
  Backend.Xprop.run sim 4;
  report "after 4 cycles of ext_reset";
  Backend.Xprop.set_input sim "ext_reset" (Bitvec.of_int ~width:1 0);
  Backend.Xprop.run sim 15;
  report "after POR stretch elapses"

(* ------------------------------------------------------------------ *)
(* Simulation-core benchmark: activity-based vs full evaluation        *)

(* One ExpoCU frame of stimulus against an already-created simulator.
   [bind] resolves a port name to its drive closure once, up front, so
   backends with prebound port handles (Nl_sim.in_port) pay no name
   lookup in the stimulus loop; all simulators share the exact same
   drive sequence.  [seed] offsets the pixel stream (seed 0 is the
   historical stream, and matches lane [seed] of the word-parallel
   frame's per-lane offsets), giving the multi-seed coverage runs
   distinct but deterministic stimulus. *)
let drive_frame ?(seed = 0) ~bind ~step ~get ~pixels () =
  let frame = Array.init pixels (fun i -> ((i * 53) + (seed * 17)) mod 256) in
  let ext_reset = bind "ext_reset"
  and target_bin = bind "target_bin"
  and sda_in = bind "sda_in"
  and frame_sync = bind "frame_sync"
  and line_valid = bind "line_valid"
  and pixel = bind "pixel" in
  ext_reset 0;
  target_bin 7;
  sda_in 0;
  frame_sync 0;
  line_valid 0;
  pixel 0;
  for _ = 1 to 15 do step () done;
  frame_sync 1;
  for _ = 1 to 4 do step () done;
  line_valid 1;
  Array.iter
    (fun px ->
      pixel px;
      step ())
    frame;
  line_valid 0;
  frame_sync 0;
  let guard = ref 0 in
  while get "frame_done" = 0 && !guard < 4000 do
    step ();
    incr guard
  done

let nl_bind sim name =
  let port = Backend.Nl_sim.in_port sim name in
  Backend.Nl_sim.drive_port_int sim port

let nl_frame ?(profile = false) ~mode ~pixels () =
  let sim = Backend.Nl_sim.create ~mode (Lazy.force gate_netlist) in
  if profile then Backend.Nl_sim.enable_profile sim;
  drive_frame ~bind:(nl_bind sim)
    ~step:(fun () -> Backend.Nl_sim.step sim)
    ~get:(Backend.Nl_sim.get_output_int sim)
    ~pixels ();
  sim

let rtl_frame ~pixels () =
  let sim = Rtl_sim.create (Expocu.Expocu_top.rtl_top ()) in
  drive_frame
    ~bind:(fun name -> Rtl_sim.set_input_int sim name)
    ~step:(fun () -> Rtl_sim.step sim)
    ~get:(Rtl_sim.get_int sim)
    ~pixels ();
  sim

(* The same frame against the word-parallel simulator: control inputs
   broadcast, the pixel stream distinct per lane — lane 0 carries the
   scalar frame ((i*53) mod 256) and lane l offsets it by l*17, so one
   run is [lanes] stimulus seeds. *)
let wsim_frame ?(cover = false) ~mode ~lanes ~pixels () =
  let w = Backend.Nl_wsim.create ~mode ~lanes (Lazy.force gate_netlist) in
  if cover then Backend.Nl_wsim.enable_toggle_cover w;
  let set = Backend.Nl_wsim.set_input_int w in
  let step () = Backend.Nl_wsim.step w in
  set "ext_reset" 0;
  set "target_bin" 7;
  set "sda_in" 0;
  set "frame_sync" 0;
  set "line_valid" 0;
  set "pixel" 0;
  for _ = 1 to 15 do step () done;
  set "frame_sync" 1;
  for _ = 1 to 4 do step () done;
  set "line_valid" 1;
  for i = 0 to pixels - 1 do
    Backend.Nl_wsim.set_input_packed w "pixel"
      (Array.init 8 (fun b ->
           Bitvec.init lanes (fun l ->
               (((i * 53) + (l * 17)) mod 256) lsr b land 1 = 1)));
    step ()
  done;
  set "line_valid" 0;
  set "frame_sync" 0;
  let guard = ref 0 in
  while Backend.Nl_wsim.get_output_int w "frame_done" = 0 && !guard < 4000 do
    step ();
    incr guard
  done;
  w

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Best wall time of [n] runs of a deterministic workload (the
   simulators produce identical state each run, so min time is the
   noise-free estimate). *)
let timed_best n f =
  let result, s0 = timed f in
  let best = ref s0 in
  for _ = 2 to n do
    let _, s = timed f in
    if s < !best then best := s
  done;
  (result, !best)

let cps cycles s = if s > 0.0 then float_of_int cycles /. s else 0.0

(* The two figures the CI perf gate watches, measured on the small smoke
   workload so the gate and the emitted baseline agree on the workload:
   the (deterministic) event-driven vs full-eval evals-per-cycle ratio,
   and the 64-lane full-eval per-pattern throughput over the scalar
   full-eval simulator. *)
let perf_gate_pixels = 32
let perf_gate_lanes = 64

let measure_perf_gate () =
  let pixels = perf_gate_pixels in
  let ev = nl_frame ~mode:Backend.Nl_sim.Event_driven ~pixels () in
  let fl, fl_s =
    timed_best 3 (fun () -> nl_frame ~mode:Backend.Nl_sim.Full_eval ~pixels ())
  in
  let w, w_s =
    timed_best 3 (fun () ->
        wsim_frame ~mode:Backend.Nl_wsim.Full_eval ~lanes:perf_gate_lanes
          ~pixels ())
  in
  let per_cycle evals cycles = float_of_int evals /. float_of_int cycles in
  let ratio =
    per_cycle (Backend.Nl_sim.gate_evals ev) (Backend.Nl_sim.cycles ev)
    /. per_cycle (Backend.Nl_sim.gate_evals fl) (Backend.Nl_sim.cycles fl)
  in
  let scalar_pps = cps (Backend.Nl_sim.cycles fl) fl_s in
  let word_pps = cps (Backend.Nl_wsim.cycles w * perf_gate_lanes) w_s in
  let speedup = if scalar_pps > 0.0 then word_pps /. scalar_pps else 0.0 in
  let detail =
    let open Obs.Json in
    Obj
      [
        ("pixels", Int pixels);
        ("lanes", Int perf_gate_lanes);
        ("evals_per_cycle_ratio", Float ratio);
        ("scalar_full_patterns_per_sec", Float scalar_pps);
        ("word_full_patterns_per_sec", Float word_pps);
        ("word64_per_pattern_speedup", Float speedup);
      ]
  in
  (ratio, speedup, detail)

(* Hierarchy & memo-cache measurements: run the OSSS flow over the full
   ExpoCU top twice from a cleared module cache.  The warm run must hit
   the lowering cache for every module and therefore finish no slower
   than the cold run (modulo timer noise — see the gate tolerance). *)
let measure_hierarchy () =
  Backend.Lower.clear_cache ();
  let design = Expocu.Expocu_top.osss_top () in
  let lower_metric (r : Synth.Flow.result) key =
    match
      List.find_opt
        (fun (p : Synth.Flow.pass) -> p.Synth.Flow.pass_name = "lower")
        r.Synth.Flow.passes
    with
    | Some p -> Option.value ~default:0.0 (Synth.Flow.pass_metric p key)
    | None -> 0.0
  in
  let cold, cold_s = timed (fun () -> Synth.Flow.run Synth.Flow.Osss design) in
  let warm, warm_s = timed (fun () -> Synth.Flow.run Synth.Flow.Osss design) in
  let warm_hits = int_of_float (lower_metric warm "cache_hits") in
  let nl = warm.Synth.Flow.netlist in
  let detail =
    let open Obs.Json in
    Obj
      [
        ("design", String design.Ir.mod_name);
        ("cold_flow_ms", Float (cold_s *. 1000.0));
        ("warm_flow_ms", Float (warm_s *. 1000.0));
        ("cold_cache_hits", Float (lower_metric cold "cache_hits"));
        ("cold_cache_misses", Float (lower_metric cold "cache_misses"));
        ("warm_cache_hits", Float (lower_metric warm "cache_hits"));
        ("warm_cache_misses", Float (lower_metric warm "cache_misses"));
        ("region_nets", Int (Backend.Netlist.region_table_size nl));
        ("hinted_nets", Int (Backend.Netlist.hint_table_size nl));
        ( "modules",
          List
            (List.map (fun r -> String r) (Backend.Netlist.region_names nl)) );
      ]
  in
  (cold_s, warm_s, warm_hits, detail)

(* Dynamic power on the synthesized ExpoCU, OSSS flow vs conventional
   flow: [Power_dyn.measure] drives both optimized netlists with the
   same deterministic seeded stimulus, so the energy totals are
   reproducible figures the CI energy gate can diff against a
   checked-in baseline. *)
let power_cycles = 256

let measure_power =
  lazy
    (let osss, vhdl = Lazy.force expocu_results in
     let run (r : Synth.Flow.result) =
       Synth.Power_dyn.measure ~cycles:power_cycles r.Synth.Flow.netlist
     in
     let po = run osss and pv = run vhdl in
     let side (p : Synth.Power_dyn.report) =
       let open Obs.Json in
       Obj
         [
           ("total_energy_pj", Float p.Synth.Power_dyn.p_total_energy_pj);
           ("avg_mw", Float p.Synth.Power_dyn.p_avg_mw);
           ("peak_mw", Float p.Synth.Power_dyn.p_peak_mw);
           ("leakage_mw", Float p.Synth.Power_dyn.p_leakage_mw);
           ( "peak_why",
             match p.Synth.Power_dyn.p_peak_why with
             | Some s -> String s
             | None -> Null );
         ]
     in
     let module_rows ?limit (p : Synth.Power_dyn.report) =
       let rows =
         List.sort
           (fun (a : Synth.Power_dyn.module_row) b ->
             compare b.Synth.Power_dyn.pm_energy_pj
               a.Synth.Power_dyn.pm_energy_pj)
           p.Synth.Power_dyn.p_by_module
       in
       let rec take n = function
         | x :: rest when n > 0 -> x :: take (n - 1) rest
         | _ -> []
       in
       let rows = match limit with Some n -> take n rows | None -> rows in
       let open Obs.Json in
       List
         (List.map
            (fun (r : Synth.Power_dyn.module_row) ->
              Obj
                [
                  ( "path",
                    String
                      (if r.Synth.Power_dyn.pm_path = "" then "<top>"
                       else r.Synth.Power_dyn.pm_path) );
                  ("energy_pj", Float r.Synth.Power_dyn.pm_energy_pj);
                  ("avg_mw", Float r.Synth.Power_dyn.pm_avg_mw);
                  ("toggles", Int r.Synth.Power_dyn.pm_toggles);
                ])
            rows)
     in
     let detail =
       let open Obs.Json in
       Obj
         [
           ("workload", String "expocu_seeded");
           ("cycles", Int power_cycles);
           ("lib", String po.Synth.Power_dyn.p_lib);
           ("freq_mhz", Float po.Synth.Power_dyn.p_freq_mhz);
           ("osss", side po);
           ("conventional", side pv);
           ( "energy_ratio",
             Float
               (if pv.Synth.Power_dyn.p_total_energy_pj > 0.0 then
                  po.Synth.Power_dyn.p_total_energy_pj
                  /. pv.Synth.Power_dyn.p_total_energy_pj
                else 0.0) );
           ("top_modules", module_rows ~limit:5 po);
           ("osss_by_module", module_rows po);
         ]
     in
     (po, pv, detail))

(* Coverage-instrumented smoke frame: the RTL interpreter carries the
   full model (toggle bits + FSMs + covergroups + protocol monitor),
   and the event-driven netlist contributes its per-net toggle bits
   under the "nl:" prefix, so one DB spans both abstraction levels.
   Safe to run as a [Par] shard: all simulators and collectors are
   created here, inside the shard, and only the finished immutable DB
   escapes. *)
let smoke_cover_db ?(seed = 0) ~pixels () =
  let sim = Rtl_sim.create (Expocu.Expocu_top.rtl_top ()) in
  Rtl_sim.enable_toggle_cover sim;
  let cp = Expocu.Coverpoints.attach sim in
  let mon = Expocu.Monitors.expocu_monitor sim in
  drive_frame ~seed
    ~bind:(fun name -> Rtl_sim.set_input_int sim name)
    ~step:(fun () -> Rtl_sim.step sim)
    ~get:(Rtl_sim.get_int sim)
    ~pixels ();
  Expocu.Coverpoints.sample_frame cp sim;
  Assert_mon.finish mon;
  if not (Assert_mon.ok mon) then begin
    List.iter
      (fun v -> Format.eprintf "%a@." Assert_mon.pp_violation v)
      (Assert_mon.violations mon);
    failwith "smoke coverage run violated a protocol monitor"
  end;
  let nl =
    Backend.Nl_sim.create ~mode:Backend.Nl_sim.Event_driven
      (Lazy.force gate_netlist)
  in
  Backend.Nl_sim.enable_toggle_cover nl;
  drive_frame ~seed ~bind:(nl_bind nl)
    ~step:(fun () -> Backend.Nl_sim.step nl)
    ~get:(Backend.Nl_sim.get_output_int nl)
    ~pixels ();
  let tg = function Some tg -> tg | None -> assert false in
  Cover.Db.make
    ~toggles:
      (Cover.Db.toggle_entries ~prefix:"rtl:" (tg (Rtl_sim.toggle_cover sim))
      @ Cover.Db.toggle_entries ~prefix:"nl:"
          (tg (Backend.Nl_sim.toggle_cover nl)))
    ~fsms:(Expocu.Coverpoints.fsms cp)
    ~groups:(Expocu.Coverpoints.groups cp)
    ~monitors:(Assert_mon.db_monitors mon)
    ~run:(if seed = 0 then "bench-smoke" else Printf.sprintf "bench-smoke:seed%d" seed)
    ()

(* Multi-seed coverage closure, sharded one seed per domain: each shard
   builds its own simulators and per-seed [Cover.Db], and the per-seed
   databases merge in seed order with the monotone [Cover.Db.merge] —
   so the merged DB is byte-identical for every [jobs]. *)
let multi_seed_cover_db ?jobs ~seeds ~pixels () =
  ignore (Lazy.force gate_netlist) (* force outside the shards *);
  Par.map_list ?jobs
    ~label:(Printf.sprintf "cover-seed-%d")
    (fun seed -> smoke_cover_db ~seed ~pixels ())
    seeds
  |> function
  | [] -> failwith "multi_seed_cover_db: no seeds"
  | first :: rest -> List.fold_left Cover.Db.merge first rest

(* Coverage gate: the freshly collected DB must not regress against the
   checked-in baseline — every item the baseline covered must still be
   covered (totals may grow, never shrink item-wise). *)
let cover_gate ~baseline db =
  match Cover.Db.load baseline with
  | Error e ->
      Obs.Log.errorf "cover-gate: %s" e;
      exit 1
  | Ok base -> (
      match Cover.Db.diff base db with
      | [] ->
          Obs.Log.infof
            "cover-gate: ok — baseline %s held (%.1f%% toggle coverage now)"
            baseline
            (100.0 *. Cover.Db.toggle_coverage db)
      | lost ->
          Obs.Log.errorf "cover-gate: %d items covered in %s are now uncovered:"
            (List.length lost) baseline;
          List.iter
            (fun (kind, item) -> Obs.Log.errorf "  %-9s %s" kind item)
            lost;
          exit 1)

(* Parallel campaign measurement for the [Par] domain pool: the same
   fault list and seed set run at jobs=1 and jobs=4, and the results
   must be bit-identical (the determinism contract) while the
   wall-clock ratio gives the speedup figure the CI parallel gate
   watches.  The fault count is tuned to the word packing: 62 faults
   per 4-way shard keep each shard's 63 lanes (golden + faults) inside
   one machine word, while the serial run packs all 249 lanes into
   four words — equal total gate work either way, so the ratio
   isolates pool overhead and the host's core count rather than a
   packing artefact. *)
let parallel_jobs = 4
let parallel_faults = 248
let parallel_cover_seeds = [ 0; 1; 2; 3 ]

let measure_parallel () =
  let jobs = parallel_jobs in
  let nl = Lazy.force gate_netlist in
  let rng = Random.State.make [| 0x9A8 |] in
  let n_nets = Backend.Netlist.net_count nl in
  let faults =
    List.init parallel_faults (fun _ ->
        {
          Backend.Equiv.fault_net = Random.State.int rng n_nets;
          stuck_at = Random.State.bool rng;
        })
  in
  let drive _ (name, r) = if name = "ext_reset" then Bitvec.zero 1 else r in
  let run_campaign jobs =
    timed (fun () ->
        Backend.Equiv.fault_campaign ~cycles:120 ~drive ~shrink:false ~jobs nl
          faults)
  in
  let serial, serial_s = run_campaign 1 in
  let par, par_s = run_campaign jobs in
  (* Determinism contract: per-fault detection results and the cycle
     figure are identical for every [jobs]; only the gate-eval total
     legitimately varies with the sharding. *)
  if
    serial.Backend.Equiv.fault_results <> par.Backend.Equiv.fault_results
    || serial.Backend.Equiv.faults_detected
       <> par.Backend.Equiv.faults_detected
    || serial.Backend.Equiv.campaign_cycles
       <> par.Backend.Equiv.campaign_cycles
  then failwith "parallel: sharded fault campaign diverged from jobs=1";
  let db_string db = Obs.Json.to_string (Cover.Db.to_json db) in
  let cov_serial, cov_serial_s =
    timed (fun () ->
        multi_seed_cover_db ~jobs:1 ~seeds:parallel_cover_seeds
          ~pixels:perf_gate_pixels ())
  in
  let cov_par, cov_par_s =
    timed (fun () ->
        multi_seed_cover_db ~jobs ~seeds:parallel_cover_seeds
          ~pixels:perf_gate_pixels ())
  in
  if db_string cov_serial <> db_string cov_par then
    failwith "parallel: sharded multi-seed coverage DB diverged from jobs=1";
  (* N-way differential sweep across stimulus seeds, one shard per
     seed: every seed must hold RTL and gate level in lockstep. *)
  let sweep_seeds = [ 42; 43; 44; 45 ] in
  let sweep =
    Backend.Equiv.differential_sweep ~cycles:100 ~shrink:false ~jobs
      ~seeds:sweep_seeds
      [
        (fun () ->
          Rtl_engine.create ~label:"rtl:expocu" (Expocu.Expocu_top.rtl_top ()));
        (fun () ->
          Backend.Nl_engine.create ~label:"gates:event"
            ~mode:Backend.Nl_sim.Event_driven nl);
      ]
  in
  List.iter
    (fun (seed, r) ->
      match r with
      | Ok _ -> ()
      | Error _ ->
          failwith
            (Printf.sprintf "parallel: differential sweep diverged at seed %d"
               seed))
    sweep;
  let speedup num den = if den > 0.0 then num /. den else 0.0 in
  let detail =
    let open Obs.Json in
    let shard_h = Obs.Hist.histogram "par.shard_ms" in
    Obj
      [
        ("jobs", Int jobs);
        ("recommended_domains", Int (Domain.recommended_domain_count ()));
        ("identical", Bool true);
        ( "fault_campaign",
          Obj
            [
              ("faults", Int parallel_faults);
              ("cycles", Int serial.Backend.Equiv.campaign_cycles);
              ("detected", Int serial.Backend.Equiv.faults_detected);
              ("serial_ms", Float (serial_s *. 1000.0));
              ("parallel_ms", Float (par_s *. 1000.0));
              ("speedup", Float (speedup serial_s par_s));
            ] );
        ( "multi_seed_cover",
          Obj
            [
              ("seeds", List (List.map (fun s -> Int s) parallel_cover_seeds));
              ("pixels", Int perf_gate_pixels);
              ("serial_ms", Float (cov_serial_s *. 1000.0));
              ("parallel_ms", Float (cov_par_s *. 1000.0));
              ("speedup", Float (speedup cov_serial_s cov_par_s));
            ] );
        ( "differential_sweep",
          Obj
            [
              ("seeds", List (List.map (fun (s, _) -> Int s) sweep));
              ("all_ok", Bool true);
            ] );
        ( "shard_ms",
          if Obs.Hist.count shard_h > 0 then Obs.Hist.to_json shard_h else Null
        );
      ]
  in
  (serial_s, par_s, detail)

(* Emit BENCH_sim.json: cycles/sec and evals/cycle for the ExpoCU frame
   workload — netlist simulator in both modes, plus the RTL
   interpreter's process-run rate — with the per-settle histograms and
   the hot-nets / hot-cells / hot-processes activity profiles.  See
   docs/PERFORMANCE.md and docs/OBSERVABILITY.md. *)
let bench_json ~profile ~lanes () =
  (* Histograms are part of the emitted document; recording costs one
     branch per settle and is paid identically by every contestant. *)
  Obs.Hist.enable ();
  Obs.Hist.reset_all ();
  (* The kernel.* and flow.* histograms are fed by the behavioural model
     and the synthesis flow; run one of each so every registered
     histogram in the emitted document carries samples. *)
  let beh = Expocu.Behave_model.run ~frames:1 ~pixels_per_frame:32 () in
  if beh.Expocu.Behave_model.kernel_runs = 0 then
    failwith "bench: behavioural model ran no kernel processes";
  let flow = Synth.Flow.run Synth.Flow.Osss (Expocu.Sync.osss_module ()) in
  if flow.Synth.Flow.passes = [] then
    failwith "bench: flow recorded no passes";
  let pixels = 256 in
  let ev, ev_s =
    timed (fun () ->
        nl_frame ~profile:true ~mode:Backend.Nl_sim.Event_driven ~pixels ())
  in
  let fl, fl_s = timed (fun () -> nl_frame ~mode:Backend.Nl_sim.Full_eval ~pixels ()) in
  let rtl, rtl_s = timed (fun () -> rtl_frame ~pixels ()) in
  let per_cycle count sim = float_of_int count /. float_of_int (Backend.Nl_sim.cycles sim) in
  let rtl_cycles = Rtl_sim.cycles rtl in
  let lane_sweep = match lanes with Some n -> [ n ] | None -> [ 1; 8; 64 ] in
  let sweep_entry lanes =
    let open Obs.Json in
    let wmode mode =
      let w, s = timed (fun () -> wsim_frame ~mode ~lanes ~pixels ()) in
      let cycles = Backend.Nl_wsim.cycles w in
      Obj
        [
          ("cycles", Int cycles);
          ("gate_evals", Int (Backend.Nl_wsim.gate_evals w));
          ("cycles_per_sec", Float (cps cycles s));
          ("patterns_per_sec", Float (cps (cycles * lanes) s));
        ]
    in
    Obj
      [
        ("lanes", Int lanes);
        ("event_driven", wmode Backend.Nl_wsim.Event_driven);
        ("full_eval", wmode Backend.Nl_wsim.Full_eval);
      ]
  in
  let _, _, perf_gate_detail = measure_perf_gate () in
  let _, _, _, hierarchy_detail = measure_hierarchy () in
  let _, _, power_detail = Lazy.force measure_power in
  let _, _, parallel_detail = measure_parallel () in
  let open Obs.Json in
  let mode_obj sim seconds extras =
    Obj
      ([
         ("cycles", Int (Backend.Nl_sim.cycles sim));
         ("gate_evals", Int (Backend.Nl_sim.gate_evals sim));
         ( "evals_per_cycle",
           Float (per_cycle (Backend.Nl_sim.gate_evals sim) sim) );
       ]
      @ extras
      @ [ ("cycles_per_sec", Float (cps (Backend.Nl_sim.cycles sim) seconds)) ])
  in
  let rank raw = Obs.Profile.to_json (Obs.Profile.top raw) in
  let rtl_activity = Rtl_sim.process_activity rtl in
  let doc =
    Obj
      [
        ("workload", String "expocu_frame");
        ("pixels", Int pixels);
        ( "netlist",
          Obj
            [
              ("comb_cells", Int (Backend.Nl_sim.comb_cells ev));
              ("dff_cells", Int (Backend.Nl_sim.dff_cells ev));
              ( "event_driven",
                mode_obj ev ev_s
                  [ ("cells_skipped", Int (Backend.Nl_sim.cells_skipped ev)) ]
              );
              ("full_eval", mode_obj fl fl_s []);
              ( "evals_per_cycle_ratio",
                Float
                  (per_cycle (Backend.Nl_sim.gate_evals ev) ev
                  /. per_cycle (Backend.Nl_sim.gate_evals fl) fl) );
            ] );
        ( "word_parallel",
          Obj
            [
              ("lane_bits", Int Backend.Nl_wsim.lane_bits);
              ("sweep", List (List.map sweep_entry lane_sweep));
            ] );
        ("perf_gate", perf_gate_detail);
        ("hierarchy", hierarchy_detail);
        ("power", power_detail);
        ("parallel", parallel_detail);
        ( "rtl",
          Obj
            [
              ("cycles", Int rtl_cycles);
              ("process_runs", Int (Rtl_sim.comb_runs rtl));
              ("process_skips", Int (Rtl_sim.comb_skips rtl));
              ( "runs_per_cycle",
                Float
                  (float_of_int (Rtl_sim.comb_runs rtl)
                  /. float_of_int rtl_cycles) );
              ("cycles_per_sec", Float (cps rtl_cycles rtl_s));
            ] );
        ("histograms", Obs.Hist.all_to_json ());
        ( "profiles",
          Obj
            [
              ("hot_nets", rank (Backend.Nl_sim.net_activity ev));
              ("hot_cells", rank (Backend.Nl_sim.cell_activity ev));
              ("hot_processes", rank rtl_activity);
              ("hot_modules", rank (Obs.Profile.by_module rtl_activity));
            ] );
      ]
  in
  Obs.Json.save doc "BENCH_sim.json";
  print_endline (to_string ~pretty:true doc);
  List.iter
    (fun h ->
      if Obs.Hist.count h > 0 then
        Obs.Log.infof "%-30s p50 %10.1f  p95 %10.1f  max %10.0f"
          (Obs.Hist.name h)
          (Obs.Hist.percentile h 50.0)
          (Obs.Hist.percentile h 95.0)
          (Obs.Hist.max_value h))
    (Obs.Hist.all ());
  if profile then begin
    Obs.Log.info "hot nets (event-driven netlist):";
    prerr_string
      (Obs.Profile.table ~title:"hot nets" ~unit_name:"toggles"
         (Obs.Profile.top (Backend.Nl_sim.net_activity ev)))
  end;
  Obs.Log.info "wrote BENCH_sim.json"

(* Small self-checking run for `dune build @bench-smoke`: the
   ENGINE-based differential harness must keep all three simulation
   levels in lockstep, catch and shrink a seeded fault, and the
   event-driven core must agree with full evaluation while doing
   strictly less work. *)
let bench_smoke ~profile () =
  let pixels = 32 in
  let nl = Lazy.force gate_netlist in
  let factories =
    [
      (fun () ->
        Rtl_engine.create ~label:"rtl:expocu" (Expocu.Expocu_top.rtl_top ()));
      (fun () ->
        Backend.Nl_engine.create ~label:"gates:event"
          ~mode:Backend.Nl_sim.Event_driven nl);
      (fun () ->
        Backend.Nl_engine.create ~label:"gates:full"
          ~mode:Backend.Nl_sim.Full_eval nl);
      (* Word-parallel engine under broadcast stimulus: Engine.get reads
         lane 0, so the lockstep compares the golden lane against every
         scalar level each cycle. *)
      (fun () -> Backend.Nl_engine.create_word ~label:"gates:word" ~lanes:8 nl);
    ]
  in
  (match Backend.Equiv.differential ~cycles:200 factories with
  | Ok _ -> ()
  | Error d ->
      failwith
        (Format.asprintf "bench-smoke: lockstep divergence: %a"
           Backend.Equiv.pp_divergence d));
  (match
     Backend.Equiv.differential ~cycles:200
       (factories
       @ [
           (fun () ->
             Engine.inject_fault ~port:"frame_done"
               (Backend.Nl_engine.create ~label:"gates:seeded-fault" nl));
         ])
   with
  | Ok _ -> failwith "bench-smoke: seeded fault not detected"
  | Error d ->
      if d.Backend.Equiv.first.Backend.Equiv.port <> "frame_done" then
        failwith "bench-smoke: seeded fault localized to wrong port";
      if Array.length d.Backend.Equiv.window <> 1 then
        failwith "bench-smoke: seeded fault window did not shrink");
  let ev = nl_frame ~profile ~mode:Backend.Nl_sim.Event_driven ~pixels () in
  let fl = nl_frame ~mode:Backend.Nl_sim.Full_eval ~pixels () in
  assert (Backend.Nl_sim.cycles ev = Backend.Nl_sim.cycles fl);
  for n = 0 to Backend.Netlist.net_count nl - 1 do
    if Backend.Nl_sim.net_toggles ev n <> Backend.Nl_sim.net_toggles fl n then
      failwith (Printf.sprintf "bench-smoke: toggle mismatch on net %d" n)
  done;
  if Backend.Nl_sim.gate_evals ev >= Backend.Nl_sim.gate_evals fl then
    failwith "bench-smoke: event-driven mode did not reduce gate evals";
  (* Lane 0 of the word-parallel simulator must be bit-identical to the
     scalar simulator on the frame workload in both scheduling modes:
     same cycle count, same per-net toggle counts. *)
  let lanes = 64 in
  let wev = wsim_frame ~mode:Backend.Nl_wsim.Event_driven ~lanes ~pixels () in
  let wfl = wsim_frame ~mode:Backend.Nl_wsim.Full_eval ~lanes ~pixels () in
  List.iter
    (fun (who, w) ->
      if Backend.Nl_wsim.cycles w <> Backend.Nl_sim.cycles ev then
        failwith (Printf.sprintf "bench-smoke: %s cycle count diverged" who);
      for n = 0 to Backend.Netlist.net_count nl - 1 do
        if Backend.Nl_sim.net_toggles ev n <> Backend.Nl_wsim.net_toggles w n
        then
          failwith
            (Printf.sprintf "bench-smoke: %s lane-0 toggle mismatch on net %d"
               who n)
      done)
    [ ("word-event", wev); ("word-full", wfl) ];
  (* Lane-parallel fault campaign: a stuck-at-1 on the frame_done output
     net must be observed against the golden lane and hand the scalar
     harness a shrunk, replaying reproducer. *)
  let frame_done_net = (List.assoc "frame_done" (Backend.Netlist.outputs nl)).(0) in
  let campaign =
    Backend.Equiv.fault_campaign ~cycles:120
      nl
      [ { Backend.Equiv.fault_net = frame_done_net; stuck_at = true } ]
  in
  if campaign.Backend.Equiv.faults_detected <> 1 then
    failwith "bench-smoke: fault campaign missed stuck-at-1 on frame_done";
  (match campaign.Backend.Equiv.fault_results with
  | [ r ] -> (
      match r.Backend.Equiv.shrunk with
      | Some d
        when Array.length d.Backend.Equiv.window >= 1
             && d.Backend.Equiv.replay <> None ->
          ()
      | Some _ | None ->
          failwith "bench-smoke: campaign fault has no replaying reproducer")
  | _ -> assert false);
  (* Multi-seed coverage in one run: a 4-lane frame with per-lane pixel
     streams yields one toggle collector per seed; the union must cover
     at least as much as any single seed. *)
  let wc =
    wsim_frame ~cover:true ~mode:Backend.Nl_wsim.Event_driven ~lanes:4 ~pixels
      ()
  in
  let lane_cov l =
    match Backend.Nl_wsim.lane_cover wc l with
    | Some c -> c
    | None -> failwith "bench-smoke: lane collector missing"
  in
  let cover_lanes = 4 in
  let per_lane_covered =
    List.init cover_lanes (fun l -> Cover.Toggle.covered (lane_cov l))
  in
  let cover_bits = Cover.Toggle.bits (lane_cov 0) in
  let union_covered =
    let n = ref 0 in
    for i = 0 to cover_bits - 1 do
      let any f = List.exists (fun l -> f (lane_cov l) i > 0) (List.init cover_lanes Fun.id) in
      if any Cover.Toggle.rises && any Cover.Toggle.falls then incr n
    done;
    !n
  in
  if List.exists (fun c -> union_covered < c) per_lane_covered then
    failwith "bench-smoke: multi-seed union covers less than a single seed";
  let ratio, speedup, perf_gate_detail = measure_perf_gate () in
  let hier_cold_s, hier_warm_s, hier_warm_hits, hierarchy_detail =
    measure_hierarchy ()
  in
  let power_osss, _, power_detail = Lazy.force measure_power in
  let par_serial_s, par_par_s, parallel_detail = measure_parallel () in
  let rtl = rtl_frame ~pixels () in
  if Rtl_sim.comb_skips rtl = 0 then
    failwith "bench-smoke: rtl scheduler never skipped a process";
  Obs.Log.infof
    "bench-smoke ok: 4-way lockstep + fault shrink + %d-lane lane-0 \
     identity + fault campaign, %d cycles, gate evals %d (event) vs %d \
     (full), word64 per-pattern speedup %.1fx (ratio %.3f), rtl process \
     runs %d skips %d"
    lanes
    (Backend.Nl_sim.cycles ev)
    (Backend.Nl_sim.gate_evals ev)
    (Backend.Nl_sim.gate_evals fl)
    speedup ratio (Rtl_sim.comb_runs rtl) (Rtl_sim.comb_skips rtl);
  Obs.Log.infof
    "bench-smoke parallel: %d-fault campaign + %d-seed coverage + sweep \
     identical at jobs 1 and %d (campaign %.0f ms serial, %.0f ms at %d \
     jobs on %d recommended domains)"
    parallel_faults
    (List.length parallel_cover_seeds)
    parallel_jobs (par_serial_s *. 1000.0) (par_par_s *. 1000.0)
    parallel_jobs
    (Domain.recommended_domain_count ());
  let rtl_activity = Rtl_sim.process_activity rtl in
  let extra =
    let open Obs.Json in
    [
      ( "smoke",
        Obj
          [
            ("workload", String "expocu_frame");
            ("pixels", Int pixels);
            ("cycles", Int (Backend.Nl_sim.cycles ev));
            ("gate_evals_event", Int (Backend.Nl_sim.gate_evals ev));
            ("gate_evals_full", Int (Backend.Nl_sim.gate_evals fl));
            ("rtl_process_runs", Int (Rtl_sim.comb_runs rtl));
            ("rtl_process_skips", Int (Rtl_sim.comb_skips rtl));
            ("word_lanes", Int lanes);
            ("word_gate_evals_event", Int (Backend.Nl_wsim.gate_evals wev));
            ("word_gate_evals_full", Int (Backend.Nl_wsim.gate_evals wfl));
            ( "campaign_detected_at",
              match campaign.Backend.Equiv.fault_results with
              | [ { Backend.Equiv.detected_at = Some c; _ } ] -> Int c
              | _ -> Null );
            ( "campaign_site",
              match campaign.Backend.Equiv.fault_results with
              | [ { Backend.Equiv.site; _ } ] -> String site
              | _ -> Null );
          ] );
      ("perf_gate", perf_gate_detail);
      ("hierarchy", hierarchy_detail);
      (* The schema-shaped power section rides in the report's own
         ?power slot; this extra carries the OSSS-vs-conventional
         comparison the energy gate reads. *)
      ("power_compare", power_detail);
      ("parallel", parallel_detail);
      ( "multi_seed_cover",
        Obj
          [
            ("lanes", Int cover_lanes);
            ("bits", Int cover_bits);
            ("per_lane_covered", List (List.map (fun c -> Int c) per_lane_covered));
            ("union_covered", Int union_covered);
          ] );
    ]
  in
  let profiles =
    [
      ("hot_nets", Obs.Profile.top (Backend.Nl_sim.net_activity ev));
      ("hot_cells", Obs.Profile.top (Backend.Nl_sim.cell_activity ev));
      ("hot_processes", Obs.Profile.top rtl_activity);
      ("hot_modules", Obs.Profile.top (Obs.Profile.by_module rtl_activity));
    ]
  in
  ( extra,
    profiles,
    (ratio, speedup),
    (hier_cold_s, hier_warm_s, hier_warm_hits),
    power_osss,
    (par_serial_s, par_par_s) )

(* When the smoke run is being traced, pull the remaining instrumented
   layers (the sc_method kernel and the synthesis flow) into the same
   process so one Chrome trace covers kernel steps, engine settles and
   every Flow pass. *)
let cover_traced_layers () =
  let beh = Expocu.Behave_model.run ~frames:1 ~pixels_per_frame:32 () in
  if beh.Expocu.Behave_model.kernel_runs = 0 then
    failwith "bench-smoke: behavioural model ran no kernel processes";
  let flow = Synth.Flow.run Synth.Flow.Osss (Expocu.Sync.osss_module ()) in
  if flow.Synth.Flow.passes = [] then
    failwith "bench-smoke: flow recorded no passes"

(* ------------------------------------------------------------------ *)
(* Lane-parallel fault campaign on the full ExpoCU netlist             *)

let faults_exp () =
  section "faults"
    "Lane-parallel stuck-at campaign: 63 fault candidates + golden lane, \
     one word-parallel run";
  let nl = Lazy.force gate_netlist in
  let rng = Random.State.make [| 0xFA17 |] in
  let n_nets = Backend.Netlist.net_count nl in
  let faults =
    List.init 63 (fun _ ->
        {
          Backend.Equiv.fault_net = Random.State.int rng n_nets;
          stuck_at = Random.State.bool rng;
        })
  in
  (* Pure random stimulus would toggle ext_reset every other cycle and
     keep the design in reset; hold it released so faults propagate. *)
  let drive _ (name, r) = if name = "ext_reset" then Bitvec.zero 1 else r in
  let (c : Backend.Equiv.campaign), s =
    timed (fun () ->
        Backend.Equiv.fault_campaign ~cycles:400 ~drive ~shrink:false nl faults)
  in
  row "  %d/%d faults detected in %d cycles (%.2f s, %d word gate evals)\n"
    c.Backend.Equiv.faults_detected c.Backend.Equiv.faults_total
    c.Backend.Equiv.campaign_cycles s c.Backend.Equiv.campaign_gate_evals;
  row
    "  (a scalar simulator would re-run the stimulus once per fault: %dx \
     the gate evaluations)\n"
    (1 + List.length faults);
  let detected =
    List.filter_map
      (fun (r : Backend.Equiv.fault_result) -> r.detected_at)
      c.Backend.Equiv.fault_results
  in
  (match List.sort compare detected with
  | [] -> ()
  | sorted ->
      let n = List.length sorted in
      let nth p = List.nth sorted (p * (n - 1) / 100) in
      row "  detection latency over %d detected: min %d  median %d  p90 %d  \
           max %d cycles\n"
        n (List.hd sorted) (nth 50) (nth 90) (nth 100));
  (* Hierarchical fault sites: undetected faults grouped by the instance
     that owns the faulted net — the per-component view of testability. *)
  let undetected =
    List.filter
      (fun (r : Backend.Equiv.fault_result) -> r.detected_at = None)
      c.Backend.Equiv.fault_results
  in
  if undetected <> [] then begin
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (r : Backend.Equiv.fault_result) ->
        let m =
          match String.rindex_opt r.Backend.Equiv.site '.' with
          | Some i -> String.sub r.Backend.Equiv.site 0 i
          | None -> "<top>"
        in
        Hashtbl.replace tbl m
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl m)))
      undetected;
    let per_module =
      List.sort compare (Hashtbl.fold (fun m n acc -> (m, n) :: acc) tbl [])
    in
    row "  undetected sites by instance: %s\n"
      (String.concat ", "
         (List.map (fun (m, n) -> Printf.sprintf "%s (%d)" m n) per_module))
  end;
  (* Hand one early-detected fault back to the scalar differential
     harness for a minimal reproducer. *)
  match
    List.find_opt
      (fun (r : Backend.Equiv.fault_result) ->
        match r.detected_at with Some cyc -> cyc < 60 | None -> false)
      c.Backend.Equiv.fault_results
  with
  | None -> ()
  | Some r -> (
      let c1 =
        Backend.Equiv.fault_campaign ~cycles:80 ~drive nl
          [ r.Backend.Equiv.fault ]
      in
      match c1.Backend.Equiv.fault_results with
      | [ { Backend.Equiv.shrunk = Some d; fault; site; _ } ] ->
          row "  shrunk reproducer for stuck-at-%d on %s: %d-cycle window\n"
            (Bool.to_int fault.Backend.Equiv.stuck_at)
            site
            (Array.length d.Backend.Equiv.window)
      | _ -> row "  (no shrunk reproducer)\n")

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("f12", f12); ("formal", formal);
    ("power", power); ("layout", layout); ("xcheck", xcheck);
    ("ablation", ablation); ("faults", faults_exp);
  ]

type opts = {
  mutable smoke : bool;
  mutable json : bool;
  mutable profile : bool;
  mutable lanes : int option;
  mutable trace_out : string option;
  mutable stats_json : string option;
  mutable check_report : string option;
  mutable cover_out : string option;
  mutable cover_summary : bool;
  mutable cover_merge : (string * string) option;
  mutable cover_gate : string option;
  mutable perf_gate : string option;
  mutable append_history : string option;  (* date stamp for the entry *)
  mutable history_check : string option;
  mutable power_out : string option;
  mutable power_summary : bool;
  mutable jobs : int option;
  mutable ids : string list;  (* reverse order *)
}

let usage () =
  Obs.Log.error
    "usage: bench [--smoke] [--json] [--profile] [--lanes N] [--trace-out \
     FILE] [--stats-json FILE] [--check-report FILE] [--cover-out FILE] \
     [--cover-summary] [--cover-merge A B] [--cover-gate BASELINE] \
     [--perf-gate BASELINE] [--append-history DATE] [--history-check FILE] \
     [--power-out FILE] [--power-summary] [--jobs N] [experiment ids...]";
  exit 2

(* CI perf gate: compare the fresh smoke-workload measurements against
   the checked-in BENCH_sim.json.  The evals-per-cycle ratio is a
   deterministic count and may not grow more than 20% over baseline; the
   64-lane per-pattern speedup is wall-clock and may not fall more than
   20% below baseline nor under the absolute 10x floor.  The OSSS
   dynamic energy total on the seeded power workload is deterministic
   and may not grow more than 20% — an optimization that trades area
   for a hot, always-toggling structure trips this gate. *)
let perf_gate_check ~baseline (ratio, speedup)
    (hier_cold_s, hier_warm_s, hier_warm_hits)
    (power_osss : Synth.Power_dyn.report) (par_serial_s, par_par_s) =
  let doc =
    try
      let ic = open_in_bin baseline in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Some (Obs.Json.of_string s)
    with _ -> None
  in
  match doc with
  | None ->
      Obs.Log.errorf "perf-gate: cannot read baseline %s" baseline;
      exit 1
  | Some doc -> (
      let field key =
        Option.bind (Obs.Json.member "perf_gate" doc) (fun pg ->
            Option.bind (Obs.Json.member key pg) Obs.Json.number_value)
      in
      match
        (field "evals_per_cycle_ratio", field "word64_per_pattern_speedup")
      with
      | Some base_ratio, Some base_speedup ->
          let failures = ref [] in
          if ratio > base_ratio *. 1.2 then
            failures :=
              Printf.sprintf
                "evals_per_cycle_ratio regressed: %.4f, baseline %.4f (+20%% \
                 tolerance)"
                ratio base_ratio
              :: !failures;
          if speedup < base_speedup *. 0.8 then
            failures :=
              Printf.sprintf
                "word64_per_pattern_speedup regressed: %.1fx, baseline %.1fx \
                 (-20%% tolerance)"
                speedup base_speedup
              :: !failures;
          if speedup < 10.0 then
            failures :=
              Printf.sprintf
                "word64_per_pattern_speedup %.1fx is under the absolute 10x \
                 floor"
                speedup
              :: !failures;
          (* Module-cache gate: the warm flow run re-lowers nothing, so
             it must not be meaningfully slower than the cold run. *)
          if hier_warm_hits = 0 then
            failures :=
              "warm flow run hit the lowering cache 0 times" :: !failures;
          if hier_warm_s > hier_cold_s *. 1.2 then
            failures :=
              Printf.sprintf
                "warm flow run took %.1f ms against %.1f ms cold (over the \
                 1.2x tolerance)"
                (hier_warm_s *. 1000.0) (hier_cold_s *. 1000.0)
              :: !failures;
          (* Energy gate: deterministic seeded-stimulus total vs the
             baseline's power section (older baselines without one skip
             the check with a warning rather than failing). *)
          let energy = power_osss.Synth.Power_dyn.p_total_energy_pj in
          let base_energy =
            List.fold_left
              (fun acc k -> Option.bind acc (Obs.Json.member k))
              (Some doc)
              [ "power"; "osss"; "total_energy_pj" ]
            |> Fun.flip Option.bind Obs.Json.number_value
          in
          (match base_energy with
          | Some base when energy > base *. 1.2 ->
              failures :=
                Printf.sprintf
                  "osss dynamic energy regressed: %.1f pJ, baseline %.1f pJ \
                   (+20%% tolerance)"
                  energy base
                :: !failures
          | Some base ->
              Obs.Log.infof
                "perf-gate: energy %.1f pJ within tolerance of baseline \
                 %.1f pJ"
                energy base
          | None ->
              Obs.Log.infof
                "perf-gate: baseline %s has no power section; energy gate \
                 skipped"
                baseline);
          (* Parallel gate: the 4-job campaign must finish in at most
             0.6x the serial wall-clock.  Wall-clock scaling needs real
             cores, so hosts with fewer than 4 recommended domains skip
             with a warning — as do baselines predating the parallel
             section. *)
          (match
             Option.bind (Obs.Json.member "parallel" doc) (fun p ->
                 Obs.Json.member "jobs" p)
           with
          | None ->
              Obs.Log.infof
                "perf-gate: baseline %s has no parallel section; parallel \
                 gate skipped"
                baseline
          | Some _ ->
              if Domain.recommended_domain_count () < 4 then
                Obs.Log.infof
                  "perf-gate: host recommends %d domains (< 4); parallel \
                   gate skipped (campaign %.0f ms serial, %.0f ms at 4 jobs)"
                  (Domain.recommended_domain_count ())
                  (par_serial_s *. 1000.0) (par_par_s *. 1000.0)
              else if par_par_s > par_serial_s *. 0.6 then
                failures :=
                  Printf.sprintf
                    "4-job fault campaign took %.0f ms against %.0f ms \
                     serial (over the 0.6x ceiling)"
                    (par_par_s *. 1000.0) (par_serial_s *. 1000.0)
                  :: !failures
              else
                Obs.Log.infof
                  "perf-gate: parallel ok — campaign %.0f ms at 4 jobs vs \
                   %.0f ms serial (%.1fx)"
                  (par_par_s *. 1000.0) (par_serial_s *. 1000.0)
                  (par_serial_s /. par_par_s));
          (match !failures with
          | [] ->
              Obs.Log.infof
                "perf-gate: ok — ratio %.4f (baseline %.4f), word64 speedup \
                 %.1fx (baseline %.1fx), warm flow %.1f ms vs %.1f ms cold \
                 (%d cache hits)"
                ratio base_ratio speedup base_speedup
                (hier_warm_s *. 1000.0) (hier_cold_s *. 1000.0) hier_warm_hits
          | fs ->
              List.iter (fun f -> Obs.Log.errorf "perf-gate: %s" f) fs;
              exit 1)
      | _ ->
          Obs.Log.errorf "perf-gate: baseline %s has no perf_gate section"
            baseline;
          exit 1)

(* One-line performance ledger: append the headline figures of a
   checked-in BENCH_sim.json to bench/history.jsonl, so trend questions
   ("when did the event-driven ratio move?") are a grep, not an
   archaeology dig through git history of the full report.  Each line
   is stamped osss.bench-history/v1; --history-check validates a whole
   ledger against that schema. *)
let history_schema = "osss.bench-history/v1"

let append_history ~date ~baseline ~history =
  let doc =
    try
      let ic = open_in_bin baseline in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Some (Obs.Json.of_string s)
    with _ -> None
  in
  match doc with
  | None ->
      Obs.Log.errorf "append-history: cannot read %s" baseline;
      exit 1
  | Some doc -> (
      let path keys =
        List.fold_left
          (fun acc k -> Option.bind acc (Obs.Json.member k))
          (Some doc) keys
        |> Fun.flip Option.bind Obs.Json.number_value
      in
      let workload =
        match
          Option.bind (Obs.Json.member "workload" doc) Obs.Json.string_value
        with
        | Some w -> w
        | None -> "expocu_frame"
      in
      match
        ( path [ "netlist"; "event_driven"; "evals_per_cycle" ],
          path [ "perf_gate"; "word64_per_pattern_speedup" ],
          path [ "hierarchy"; "cold_flow_ms" ] )
      with
      | Some evals, Some speedup, Some flow_ms ->
          (* Energy totals entered the report later; older baselines
             simply omit the power keys. *)
          let power_fields =
            match
              ( path [ "power"; "osss"; "total_energy_pj" ],
                path [ "power"; "conventional"; "total_energy_pj" ] )
            with
            | Some osss_pj, Some conv_pj ->
                [
                  ("osss_energy_pj", Obs.Json.Float osss_pj);
                  ("conventional_energy_pj", Obs.Json.Float conv_pj);
                ]
            | _ -> []
          in
          let line =
            Obs.Json.to_string
              (Obs.Json.Obj
                 ([
                    ("schema", Obs.Json.String history_schema);
                    ("date", Obs.Json.String date);
                    ("workload", Obs.Json.String workload);
                    ("evals_per_cycle", Obs.Json.Float evals);
                    ("word64_speedup", Obs.Json.Float speedup);
                    ("cold_flow_ms", Obs.Json.Float flow_ms);
                  ]
                 @ power_fields))
          in
          (* Refuse a duplicate ledger entry: re-running the CI step on
             the same day must not stack identical lines.  Only the
             LAST entry for this workload is consulted — an older
             same-date line (a backfill) is someone's explicit edit. *)
          let last_date_for_workload =
            try
              let ic = open_in history in
              let last = ref None in
              (try
                 while true do
                   let l = input_line ic in
                   if String.trim l <> "" then
                     match Obs.Json.of_string l with
                     | exception Obs.Json.Parse_error _ -> ()
                     | j ->
                         let str k =
                           Option.bind (Obs.Json.member k j)
                             Obs.Json.string_value
                         in
                         if str "workload" = Some workload then
                           last := str "date"
                 done
               with End_of_file -> ());
              close_in ic;
              !last
            with Sys_error _ -> None
          in
          if last_date_for_workload = Some date then begin
            Obs.Log.errorf
              "append-history: %s already ends with a %s entry for %s — \
               refusing the duplicate"
              history date workload;
            exit 1
          end;
          let oc =
            open_out_gen [ Open_append; Open_creat ] 0o644 history
          in
          output_string oc (line ^ "\n");
          close_out oc;
          Obs.Log.infof "append-history: %s >> %s" line history;
          exit 0
      | _ ->
          Obs.Log.errorf
            "append-history: %s is missing the expected sections" baseline;
          exit 1)

(* Validate every line of a bench-history ledger: parseable JSON,
   the v1 stamp, a date, and numeric headline figures.  CI runs this
   against the checked-in bench/history.jsonl so the ledger stays
   greppable. *)
let history_check ~history =
  let lines =
    try
      let ic = open_in history in
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file ->
            close_in ic;
            List.rev acc
      in
      Some (go [])
    with Sys_error _ -> None
  in
  match lines with
  | None ->
      Obs.Log.errorf "history-check: cannot read %s" history;
      exit 1
  | Some lines ->
      let check_line i line =
        if String.trim line = "" then None
        else
          match Obs.Json.of_string line with
          | exception Obs.Json.Parse_error msg ->
              Some (Printf.sprintf "line %d: not valid JSON: %s" i msg)
          | json -> (
              let str k =
                Option.bind (Obs.Json.member k json) Obs.Json.string_value
              in
              let num k =
                Option.bind (Obs.Json.member k json) Obs.Json.number_value
              in
              match str "schema" with
              | Some s when s <> history_schema ->
                  Some
                    (Printf.sprintf "line %d: schema %S, expected %S" i s
                       history_schema)
              | None -> Some (Printf.sprintf "line %d: missing schema" i)
              | Some _ ->
                  if str "date" = None then
                    Some (Printf.sprintf "line %d: missing date" i)
                  else if str "workload" = None then
                    Some (Printf.sprintf "line %d: missing workload" i)
                  else
                    List.find_map
                      (fun k ->
                        if num k = None then
                          Some
                            (Printf.sprintf "line %d: %S is not a number" i k)
                        else None)
                      [ "evals_per_cycle"; "word64_speedup"; "cold_flow_ms" ])
      in
      let errors =
        List.concat
          (List.mapi
             (fun i line ->
               Option.to_list (check_line (i + 1) line))
             lines)
      in
      let entries =
        List.length (List.filter (fun l -> String.trim l <> "") lines)
      in
      (match errors with
      | [] ->
          Printf.printf "%s: ok (%d entries, schema %s)\n" history entries
            history_schema;
          exit 0
      | es ->
          List.iter (fun e -> Obs.Log.errorf "history-check: %s" e) es;
          exit 1)

let () =
  let o =
    {
      smoke = false;
      json = false;
      profile = false;
      lanes = None;
      trace_out = None;
      stats_json = None;
      check_report = None;
      cover_out = None;
      cover_summary = false;
      cover_merge = None;
      cover_gate = None;
      perf_gate = None;
      append_history = None;
      history_check = None;
      power_out = None;
      power_summary = false;
      jobs = None;
      ids = [];
    }
  in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        o.smoke <- true;
        parse rest
    | "--json" :: rest ->
        o.json <- true;
        parse rest
    | "--profile" :: rest ->
        o.profile <- true;
        parse rest
    | "--lanes" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            o.lanes <- Some n;
            parse rest
        | Some _ | None ->
            Obs.Log.errorf "--lanes expects a positive integer, got %s" n;
            usage ())
    | "--perf-gate" :: file :: rest ->
        o.perf_gate <- Some file;
        parse rest
    | "--append-history" :: date :: rest ->
        o.append_history <- Some date;
        parse rest
    | "--history-check" :: file :: rest ->
        o.history_check <- Some file;
        parse rest
    | "--power-out" :: file :: rest ->
        o.power_out <- Some file;
        parse rest
    | "--power-summary" :: rest ->
        o.power_summary <- true;
        parse rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            o.jobs <- Some n;
            parse rest
        | Some _ | None ->
            Obs.Log.errorf "--jobs expects a positive integer, got %s" n;
            usage ())
    | "--trace-out" :: file :: rest ->
        o.trace_out <- Some file;
        parse rest
    | "--stats-json" :: file :: rest ->
        o.stats_json <- Some file;
        parse rest
    | "--check-report" :: file :: rest ->
        o.check_report <- Some file;
        parse rest
    | "--cover-out" :: file :: rest ->
        o.cover_out <- Some file;
        parse rest
    | "--cover-summary" :: rest ->
        o.cover_summary <- true;
        parse rest
    | "--cover-merge" :: a :: b :: rest ->
        o.cover_merge <- Some (a, b);
        parse rest
    | "--cover-gate" :: file :: rest ->
        o.cover_gate <- Some file;
        parse rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        Obs.Log.errorf "unknown or incomplete option %s" arg;
        usage ()
    | id :: rest ->
        o.ids <- id :: o.ids;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* Campaign parallelism: every ?jobs default in the process follows
     this ([Par.default_jobs]); jobs=1 runs the serial code paths. *)
  (match o.jobs with Some j -> Par.set_default_jobs j | None -> ());
  (* --append-history summarizes a checked-in baseline and exits; the
     baseline defaults to BENCH_sim.json but follows --perf-gate. *)
  (match o.append_history with
  | Some date ->
      append_history ~date
        ~baseline:(Option.value o.perf_gate ~default:"BENCH_sim.json")
        ~history:"bench/history.jsonl"
  | None -> ());
  (* --history-check validates the ledger and exits. *)
  (match o.history_check with
  | Some file -> history_check ~history:file
  | None -> ());
  (* --cover-merge unions two coverage DBs and exits: CI merges the
     per-seed databases into the uploaded artifact with this. *)
  (match o.cover_merge with
  | Some (a, b) -> (
      match (Cover.Db.load a, Cover.Db.load b) with
      | Ok da, Ok db ->
          let merged = Cover.Db.merge da db in
          (match o.cover_out with
          | Some path ->
              Cover.Db.save merged path;
              Obs.Log.infof "merged coverage written to %s" path
          | None -> ());
          if o.cover_summary || o.cover_out = None then
            print_string (Cover.Db.summary merged);
          exit 0
      | (Error e, _ | _, Error e) ->
          Obs.Log.errorf "cover-merge: %s" e;
          exit 1)
  | None -> ());
  (* --check-report validates and exits: the in-repo schema check CI
     runs against a report produced moments earlier.  A coverage
     section must not merely look like a coverage DB — it has to parse
     back as one. *)
  (match o.check_report with
  | Some file -> (
      match Obs.Report.validate_file file with
      | Error e ->
          Obs.Log.errorf "%s: invalid run report: %s" file e;
          exit 1
      | Ok () -> (
          let doc =
            let ic = open_in_bin file in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            Obs.Json.of_string s
          in
          match Obs.Json.member "coverage" doc with
          | None ->
              Printf.printf "%s: valid (no coverage section)\n" file;
              exit 0
          | Some c -> (
              match Cover.Db.of_json c with
              | Ok db ->
                  Printf.printf "%s: valid, coverage %d/%d toggle bits\n" file
                    (Cover.Db.totals db).Cover.Db.toggle_covered
                    (Cover.Db.totals db).Cover.Db.toggle_bits;
                  exit 0
              | Error e ->
                  Obs.Log.errorf "%s: coverage section: %s" file e;
                  exit 1)))
  | None -> ());
  let tracing = o.trace_out <> None || o.stats_json <> None in
  if tracing then begin
    Obs.Span.enable ();
    Obs.Hist.enable ()
  end;
  let covering =
    o.cover_out <> None || o.cover_summary || o.cover_gate <> None
  in
  if covering && not o.smoke then begin
    Obs.Log.error
      "coverage collection is attached to the smoke workload; add --smoke";
    exit 2
  end;
  if o.perf_gate <> None && not o.smoke then begin
    Obs.Log.error "--perf-gate is attached to the smoke workload; add --smoke";
    exit 2
  end;
  let powering = o.power_out <> None || o.power_summary in
  if powering && not (o.smoke || o.json) then begin
    Obs.Log.error
      "power collection is attached to the smoke/json workloads; add --smoke \
       or --json";
    exit 2
  end;
  (* Exports shared by the smoke and full-json paths: the OSSS power
     report's VCD waveform and human summary.  In --json mode stdout
     must stay pure JSON, so the summary goes to stderr. *)
  let export_power (po : Synth.Power_dyn.report) =
    (match o.power_out with
    | Some path ->
        Synth.Power_dyn.save_vcd po path;
        Obs.Log.infof "power waveform written to %s" path
    | None -> ());
    if o.power_summary then
      (if o.json then prerr_string else print_string)
        (Synth.Power_dyn.summary po)
  in
  let collected = ref None in
  let power_report = ref None in
  if o.smoke then begin
    let extra, profiles, gate_vals, hier_vals, power_osss, par_vals =
      bench_smoke ~profile:(o.profile || o.json) ()
    in
    power_report := Some power_osss;
    if powering then export_power power_osss;
    (match o.perf_gate with
    | Some baseline ->
        perf_gate_check ~baseline gate_vals hier_vals power_osss par_vals
    | None -> ());
    if covering then begin
      let db = smoke_cover_db ~pixels:32 () in
      collected := Some db;
      (match o.cover_out with
      | Some path ->
          Cover.Db.save db path;
          Obs.Log.infof "coverage database written to %s" path
      | None -> ());
      (* In --json mode stdout must stay pure JSON (CI pipes it into
         --check-report), so the human-readable summary goes to stderr. *)
      if o.cover_summary then
        (if o.json then prerr_string else print_string)
          (Cover.Db.summary db);
      match o.cover_gate with
      | Some baseline -> cover_gate ~baseline db
      | None -> ()
    end;
    if tracing then cover_traced_layers ();
    if o.json then
      print_endline
        (Obs.Json.to_string ~pretty:true
           (Obs.Report.make
              ?coverage:(Option.map Cover.Db.to_json !collected)
              ?power:(Option.map Synth.Power_dyn.to_json !power_report)
              ~profiles ~extra ~run:"bench-smoke" ()))
  end
  else if o.json then begin
    bench_json ~profile:o.profile ~lanes:o.lanes ();
    if powering then begin
      let po, _, _ = Lazy.force measure_power in
      power_report := Some po;
      export_power po
    end
  end
  else begin
    let selected =
      match List.rev o.ids with
      | [] -> experiments
      | ids ->
          List.filter_map
            (fun id ->
              match List.assoc_opt (String.lowercase_ascii id) experiments with
              | Some f -> Some (id, f)
              | None ->
                  Obs.Log.errorf "unknown experiment %s" id;
                  None)
            ids
    in
    Printf.printf
      "OSSS evaluation reproduction — experiments from Bannow & Haug, DATE \
       2004\n";
    List.iter (fun (_, f) -> f ()) selected
  end;
  (match o.stats_json with
  | Some path ->
      let run = if o.smoke then "bench-smoke" else "bench" in
      Obs.Json.save
        (Obs.Report.make
           ?coverage:(Option.map Cover.Db.to_json !collected)
           ?power:(Option.map Synth.Power_dyn.to_json !power_report)
           ~run ())
        path;
      Obs.Log.infof "run report written to %s" path
  | None -> ());
  match o.trace_out with
  | Some path ->
      Obs.Span.save_chrome path;
      Obs.Log.infof "chrome trace written to %s" path
  | None -> ()
