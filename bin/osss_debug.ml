(* osss_debug: time-travel debugging over the causal event log.

   Record cheap, replay rich: the requested design is first run with
   all instrumentation off, taking checkpoints along the way; then the
   window before the cycle under investigation is restored and re-run
   with causal events on.  --why walks the cause links behind a net's
   value backward to its stimulus (or to an injected fault);
   --events-out exports the replayed window as schema-checked JSONL. *)

open Cmdliner
open Hdl

(* "port@cycle" (the cycle is optional for fault specs). *)
let split_spec s =
  match String.rindex_opt s '@' with
  | None -> (s, None)
  | Some i -> (
      let name = String.sub s 0 i in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
      with
      | Some c -> (name, Some c)
      | None -> (s, None))

let make_engine design engine_kind lanes fault =
  match Expocu.Registry.find design with
  | None ->
      Printf.eprintf "unknown design %s (try --list)\n" design;
      exit 2
  | Some (_, ctor) ->
      let m = ctor () in
      let base, netlist =
        match engine_kind with
        | "rtl" -> (Rtl_engine.create ~label:("rtl:" ^ design) m, None)
        | "netlist" ->
            let nl = Backend.Opt.optimize (Backend.Lower.lower m) in
            (Backend.Nl_engine.create ~label:("gates:" ^ design) nl, Some nl)
        | "word" ->
            let nl = Backend.Opt.optimize (Backend.Lower.lower m) in
            ( Backend.Nl_engine.create_word ~label:("word:" ^ design) ~lanes nl,
              Some nl )
        | other ->
            Printf.eprintf "unknown engine %s (rtl|netlist|word)\n" other;
            exit 2
      in
      let e =
        match fault with
        | Some (port, from_cycle) ->
            Engine.inject_fault
              ~from_cycle:(Option.value from_cycle ~default:0)
              ~port base
        | None -> base
      in
      (e, netlist)

(* Stimulus as a pure function of (seed, cycle): replaying any window
   of cycles reproduces the original run exactly, which is what makes
   restore-and-re-run equivalent to never having left.  Reset-like
   inputs are held released so the circuit actually operates. *)
let drive_cycle e seed c =
  List.iteri
    (fun i (name, width) ->
      let v =
        match name with
        | "ext_reset" | "reset" | "rst" -> Bitvec.zero width
        | _ ->
            let rng = Random.State.make [| seed; c; i |] in
            Bitvec.init width (fun _ -> Random.State.bool rng)
      in
      Engine.set_input e name v)
    (Engine.inputs e)

let read_outputs e =
  List.iter (fun (port, _) -> ignore (Engine.get e port)) (Engine.outputs e)

let simulate design engine_kind lanes cycles seed fault why_spec ckpt_every
    events_out obs =
  let e, netlist = make_engine design engine_kind lanes fault in
  if Obs_cli.powering obs then begin
    if netlist = None then
      Obs.Log.infof
        "power sampling needs a netlist engine (--engine netlist|word); \
         ignoring power flags";
    Engine.enable_power_sampler e
  end;
  (* Phase 1 — record: no events, checkpoints only.  Cheap. *)
  let cks = ref [] in
  let take_ck () =
    match Engine.checkpoint e with
    | Some ck -> cks := ck :: !cks
    | None -> ()
  in
  take_ck ();
  for c = 0 to cycles - 1 do
    drive_cycle e seed c;
    Engine.step e;
    if ckpt_every > 0 && (c + 1) mod ckpt_every = 0 && c + 1 < cycles then
      take_ck ()
  done;
  Obs.Log.infof "recorded %d cycles, %d checkpoint%s" cycles
    (List.length !cks)
    (if List.length !cks = 1 then "" else "s");
  (* Power is read off the recording run, before the replay re-executes
     (and would double-count) the window under investigation. *)
  let power =
    match netlist with
    | Some nl when Obs_cli.powering obs ->
        Option.map
          (fun act -> Synth.Power_dyn.analyze nl act)
          (Engine.power_activity e)
    | Some _ | None -> None
  in
  (* Phase 2 — replay the window before the cycle under investigation
     with causal events on.  Rich. *)
  let target =
    match why_spec with
    | Some (_, Some cyc) -> min cyc cycles
    | Some (_, None) | None -> cycles
  in
  let ck =
    List.fold_left
      (fun best ck ->
        if Engine.checkpoint_cycle ck >= target then best
        else
          match best with
          | Some b when Engine.checkpoint_cycle b >= Engine.checkpoint_cycle ck
            ->
              best
          | _ -> Some ck)
      None !cks
  in
  let start =
    match ck with
    | Some ck ->
        Engine.restore ck;
        Engine.checkpoint_cycle ck
    | None -> Engine.cycles e
  in
  Engine.enable_events e;
  for c = start to target - 1 do
    drive_cycle e seed c;
    Engine.step e;
    (* Read every output each cycle so corrupted reads of a fault
       wrapper enter the causal record. *)
    read_outputs e
  done;
  Obs.Log.infof "replayed cycles %d..%d with events on (%d retained, %d \
                 dropped)"
    start target (Obs.Event.count ()) (Obs.Event.dropped ());
  (match events_out with
  | Some path ->
      Obs.Event.save_jsonl path;
      Obs.Log.infof "event log written to %s" path
  | None -> ());
  let rc =
    match why_spec with
    | None -> 0
    | Some (subject, cyc) -> (
        let cycle = Option.value cyc ~default:target in
        match Obs.Causal.why ~subject ~cycle () with
        | None ->
            Printf.eprintf "no retained event on %s at or before cycle %d\n"
              subject cycle;
            1
        | Some node ->
            Printf.printf "why %s@%d:\n%s" subject cycle
              (Obs.Causal.render node);
            if
              Obs.Causal.reaches
                (fun ev -> ev.Obs.Event.kind = Obs.Event.Fault)
                node
            then
              print_endline "=> chain reaches a fault injection";
            0)
  in
  Obs_cli.finish obs ~run:"osss_debug" ?power;
  rc

(* --why-peak: pull the "net@cycle" hint a power report left behind
   (peak_why — hottest net of the peak-power window) out of a JSON
   document and use it as the --why spec.  Accepts both a run report
   (power at top level, schema v3) and an osss_synth --json flow
   result (same key). *)
let peak_why_of_file path =
  let text =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Obs.Json.of_string text with
  | exception Obs.Json.Parse_error msg ->
      Printf.eprintf "%s: not valid JSON: %s\n" path msg;
      exit 2
  | json -> (
      match
        Option.bind (Obs.Json.member "power" json) (fun p ->
            Option.bind (Obs.Json.member "peak_why" p) Obs.Json.string_value)
      with
      | Some spec -> spec
      | None ->
          Printf.eprintf
            "%s: no power.peak_why in this report (was it produced with \
             --power-summary/--power-out?)\n"
            path;
          exit 2)

let main list_designs check_events design engine_kind lanes cycles seed fault
    why_spec why_peak ckpt_every events_out obs =
  if list_designs then begin
    List.iter print_endline (Expocu.Registry.list_lines ());
    0
  end
  else
    match check_events with
    | Some path -> (
        match Obs.Event.validate_file path with
        | Ok n ->
            Printf.printf "%s: ok (%d events, schema %s)\n" path n
              Obs.Event.schema_version;
            0
        | Error e ->
            Printf.eprintf "%s: invalid event log: %s\n" path e;
            1)
    | None ->
        Obs_cli.setup obs;
        let why_spec =
          match (why_spec, why_peak) with
          | Some _, _ -> why_spec
          | None, Some path -> Some (peak_why_of_file path)
          | None, None -> None
        in
        simulate design engine_kind lanes cycles seed
          (Option.map split_spec fault)
          (Option.map split_spec why_spec)
          ckpt_every events_out obs

let list_arg =
  let doc = "List the named designs and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let check_events_arg =
  let doc =
    "Validate an event-log JSONL file written by --events-out (schema, \
     sequence continuity, cause ordering) and exit."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "check-events" ] ~docv:"FILE" ~doc)

let design_arg =
  let doc = "Design to debug (see --list)." in
  Arg.(value & opt string "expocu_osss" & info [ "design" ] ~docv:"NAME" ~doc)

let engine_arg =
  let doc = "Simulation backend: rtl, netlist or word (word-parallel)." in
  Arg.(value & opt string "rtl" & info [ "engine" ] ~docv:"KIND" ~doc)

let lanes_arg =
  let doc = "Lane count for the word backend." in
  Arg.(value & opt int 4 & info [ "lanes" ] ~docv:"N" ~doc)

let cycles_arg =
  let doc = "Cycles to simulate." in
  Arg.(value & opt int 200 & info [ "cycles" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Stimulus seed (stimulus is a pure function of seed and cycle)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let fault_arg =
  let doc =
    "Inject a fault: flip the LSB of output $(i,PORT) from cycle $(i,N) \
     on (PORT@N, default cycle 0)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "inject-fault" ] ~docv:"PORT@N" ~doc)

let why_arg =
  let doc =
    "Explain a value: walk the causal chain behind $(i,NET) at cycle \
     $(i,N) (NET@N) backward to its stimulus or fault, and print it as \
     a tree."
  in
  Arg.(value & opt (some string) None & info [ "why" ] ~docv:"NET@N" ~doc)

let why_peak_arg =
  let doc =
    "Explain the peak-power window: read $(i,power.peak_why) (the \
     hottest net of the peak window, as NET@N) from a JSON report \
     written with --stats-json or osss_synth --json under the power \
     flags, and run --why on it.  An explicit --why wins."
  in
  Arg.(
    value & opt (some string) None & info [ "why-peak" ] ~docv:"FILE" ~doc)

let ckpt_arg =
  let doc =
    "Take a checkpoint every $(docv) cycles during the recording run (0: \
     only at reset); the replay resumes from the last checkpoint before \
     the cycle under investigation."
  in
  Arg.(value & opt int 0 & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let events_out_arg =
  let doc =
    "Write the replayed window's causal event log as JSONL (schema \
     osss.event-log/v1) to $(docv)."
  in
  Arg.(
    value & opt (some string) None & info [ "events-out" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "time-travel debugging: causal \"why\" queries over a replay" in
  Cmd.v
    (Cmd.info "osss_debug" ~doc)
    Term.(
      const main $ list_arg $ check_events_arg $ design_arg $ engine_arg
      $ lanes_arg $ cycles_arg $ seed_arg $ fault_arg $ why_arg
      $ why_peak_arg $ ckpt_arg $ events_out_arg $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
