(* design_report: the ODETTE analyzer as a command-line tool — design
   structure (Figure 12), per-module statistics and effort metrics. *)

open Cmdliner

(* The registry names implementation pairs by suffix: <base>_osss is the
   OSSS-methodology design, <base>_rtl (or _vhdl/_systemc) the
   conventional one.  Given either half, find the other. *)
let paired_name name =
  let strip suffix =
    if Filename.check_suffix name suffix then
      Some (Filename.chop_suffix name suffix)
    else None
  in
  let exists n = Designs.find n <> None in
  let conventional base =
    List.find_opt exists [ base ^ "_rtl"; base ^ "_vhdl"; base ^ "_systemc" ]
  in
  match strip "_osss" with
  | Some base -> Option.map (fun p -> (name, p)) (conventional base)
  | None -> (
      match
        List.find_map strip [ "_rtl"; "_vhdl"; "_systemc" ]
      with
      | Some base when exists (base ^ "_osss") -> Some (base ^ "_osss", name)
      | Some _ | None -> None)

(* Instance tree with per-module cells/FFs/area — and dynamic power
   when the power pass ran — for both flows side by side, joined on the
   hierarchical instance path. *)
let hierarchy_table osss_result vhdl_result =
  let buf = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let with_power =
    osss_result.Synth.Flow.power <> None
    || vhdl_result.Synth.Flow.power <> None
  in
  let rows (r : Synth.Flow.result) =
    List.map
      (fun (bm : Synth.Flow.module_breakdown) -> (bm.Synth.Flow.bm_path, bm))
      r.Synth.Flow.by_module
  in
  let o_rows = rows osss_result and v_rows = rows vhdl_result in
  let paths =
    List.sort_uniq compare (List.map fst o_rows @ List.map fst v_rows)
  in
  let label path =
    if path = "" then "<top>"
    else
      let depth =
        String.fold_left (fun n c -> if c = '.' then n + 1 else n) 0 path
      in
      let leaf =
        match String.rindex_opt path '.' with
        | Some i -> String.sub path (i + 1) (String.length path - i - 1)
        | None -> path
      in
      String.make (2 * depth) ' ' ^ leaf
  in
  let power_cell = function
    | Some { Synth.Flow.bm_power_mw = Some mw; _ } ->
        Printf.sprintf " %8.4f" mw
    | Some _ | None -> if with_power then Printf.sprintf " %8s" "-" else ""
  in
  let side bm =
    (match bm with
    | Some (bm : Synth.Flow.module_breakdown) ->
        Printf.sprintf "%6d %5d %9.1f" bm.Synth.Flow.bm_cells
          bm.Synth.Flow.bm_ffs bm.Synth.Flow.bm_area
    | None -> Printf.sprintf "%6s %5s %9s" "-" "-" "-")
    ^ power_cell bm
  in
  let head =
    Printf.sprintf "%6s %5s %9s%s" "cells" "ffs" "area GE"
      (if with_power then Printf.sprintf " %8s" "dyn mW" else "")
  in
  let width = 22 + if with_power then 9 else 0 in
  p "  %-24s | %s | %s\n" "instance" head head;
  p "  %-24s | %-*s | %-*s\n" "" width "OSSS flow" width "conventional flow";
  List.iter
    (fun path ->
      p "  %-24s | %s | %s\n" (label path)
        (side (List.assoc_opt path o_rows))
        (side (List.assoc_opt path v_rows)))
    paths;
  Buffer.contents buf

let hierarchy_report name obs =
  match paired_name name with
  | None ->
      Printf.eprintf
        "--hierarchy needs an <base>_osss / <base>_rtl design pair; %s has \
         no counterpart\n"
        name;
      1
  | Some (osss_name, conv_name) ->
      let make n =
        match Designs.find n with
        | Some (_, make) -> make ()
        | None -> assert false
      in
      let power_cycles = if Obs_cli.powering obs then Some 256 else None in
      let osss_result =
        Synth.Flow.run ?power_cycles Synth.Flow.Osss (make osss_name)
      in
      let vhdl_result =
        Synth.Flow.run ?power_cycles Synth.Flow.Vhdl (make conv_name)
      in
      Printf.printf "hierarchy: %s (OSSS flow) vs %s (conventional flow)\n\n"
        osss_name conv_name;
      print_string (hierarchy_table osss_result vhdl_result);
      Printf.printf
        "\ntotals: OSSS %.1f GE / %.2f ns critical — conventional %.1f GE / \
         %.2f ns critical\n"
        osss_result.Synth.Flow.area.Backend.Area.total
        osss_result.Synth.Flow.timing.Backend.Timing.critical_ns
        vhdl_result.Synth.Flow.area.Backend.Area.total
        vhdl_result.Synth.Flow.timing.Backend.Timing.critical_ns;
      (match (osss_result.Synth.Flow.power, vhdl_result.Synth.Flow.power) with
      | Some op, Some vp ->
          Printf.printf
            "power:  OSSS %.3f pJ / %.4f mW avg — conventional %.3f pJ / \
             %.4f mW avg\n"
            op.Synth.Power_dyn.p_total_energy_pj op.Synth.Power_dyn.p_avg_mw
            vp.Synth.Power_dyn.p_total_energy_pj vp.Synth.Power_dyn.p_avg_mw
      | _ -> ());
      (* The OSSS side's waveform/summary are the exported ones. *)
      Obs_cli.finish obs ~run:"design_report"
        ?power:osss_result.Synth.Flow.power;
      0

let report name show_metrics show_systemc show_passes flow_name json coverage
    hierarchy obs =
  if hierarchy then begin
    Obs_cli.setup obs;
    hierarchy_report name obs
  end
  else
  match Designs.find name with
  | None ->
      Printf.eprintf "unknown design %s; available:\n%s\n" name
        (String.concat "\n" (Designs.list_lines ()));
      1
  | Some (desc, make) ->
      let design = make () in
      Obs_cli.setup obs;
      let flow_kind () =
        match flow_name with
        | "osss" -> Synth.Flow.Osss
        | "vhdl" -> Synth.Flow.Vhdl
        | other ->
            Printf.eprintf "unknown flow %s (osss|vhdl)\n" other;
            exit 1
      in
      let power_cycles = if Obs_cli.powering obs then Some 256 else None in
      let flow_power = ref None in
      if json then begin
        (* Machine-readable mode: run the flow and print its result
           (including the per-pass table) as the only stdout output.
           With the power flags the result carries the dynamic power
           table under the same by_module key layout as area. *)
        let result = Synth.Flow.run ?power_cycles (flow_kind ()) design in
        flow_power := result.Synth.Flow.power;
        print_endline
          (Obs.Json.to_string ~pretty:true (Synth.Flow.result_json result))
      end
      else begin
        Printf.printf "%s — %s\n\n" name desc;
        print_string (Synth.Analyzer.report design);
        if show_metrics then begin
          let m = Metrics.of_module design in
          Printf.printf "\nmetrics: %s\n" (Format.asprintf "%a" Metrics.pp m);
          Printf.printf "effort model: %.2f units\n" (Metrics.effort_days m)
        end;
        if show_systemc then begin
          print_endline "\n-- resolved standard SystemC --";
          print_string (Osss.Resolve.emit_module (Hdl.Elaborate.flatten design))
        end;
        if show_passes || Obs_cli.powering obs then begin
          let result = Synth.Flow.run ?power_cycles (flow_kind ()) design in
          flow_power := result.Synth.Flow.power;
          if show_passes then begin
            Printf.printf "\n-- %s flow pass trace --\n"
              (Synth.Flow.kind_name (flow_kind ()));
            print_string (Synth.Flow.pass_table result)
          end
        end;
        match coverage with
        | Some path -> (
            match Cover.Db.load path with
            | Ok db ->
                print_newline ();
                print_string (Cover.Db.summary db)
            | Error e ->
                Printf.eprintf "coverage: %s\n" e;
                exit 1)
        | None -> ()
      end;
      Obs_cli.finish obs ~run:"design_report" ?power:!flow_power;
      0

let design_arg =
  let doc = "Design to report on (see osss_synth --list)." in
  Arg.(value & pos 0 string "expocu_osss" & info [] ~docv:"DESIGN" ~doc)

let metrics_arg =
  let doc = "Include code metrics and the effort model." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let systemc_arg =
  let doc = "Print the resolved SystemC rendering of the flattened design." in
  Arg.(value & flag & info [ "systemc" ] ~doc)

let passes_arg =
  let doc =
    "Run the synthesis flow and print the per-pass trace (time, cell/area \
     deltas, artifacts)."
  in
  Arg.(value & flag & info [ "passes" ] ~doc)

let flow_arg =
  let doc = "Flow used by --passes/--json: osss or vhdl." in
  Arg.(value & opt string "osss" & info [ "flow" ] ~docv:"FLOW" ~doc)

let json_arg =
  let doc =
    "Run the synthesis flow and print its result (final area/timing plus \
     the per-pass table) as JSON — the only stdout output in this mode."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let coverage_arg =
  let doc =
    "Print the coverage summary table from a coverage database written by \
     expocu_sim/bench --cover-out (not available with --json)."
  in
  Arg.(value & opt (some string) None & info [ "coverage" ] ~docv:"FILE" ~doc)

let hierarchy_arg =
  let doc =
    "Run both synthesis flows over the design pair (<base>_osss vs its \
     conventional counterpart) and print the instance tree with per-module \
     cells, flip-flops and area side by side."
  in
  Arg.(value & flag & info [ "hierarchy" ] ~doc)

let cmd =
  let doc = "design structure and metrics report (the ODETTE analyzer)" in
  Cmd.v
    (Cmd.info "design_report" ~doc)
    Term.(
      const report $ design_arg $ metrics_arg $ systemc_arg $ passes_arg
      $ flow_arg $ json_arg $ coverage_arg $ hierarchy_arg $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
