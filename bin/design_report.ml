(* design_report: the ODETTE analyzer as a command-line tool — design
   structure (Figure 12), per-module statistics and effort metrics. *)

open Cmdliner

let report name show_metrics show_systemc show_passes flow_name json coverage
    obs =
  match Designs.find name with
  | None ->
      Printf.eprintf "unknown design %s; available:\n%s\n" name
        (String.concat "\n" (Designs.list_lines ()));
      1
  | Some (desc, make) ->
      let design = make () in
      Obs_cli.setup obs;
      let flow_kind () =
        match flow_name with
        | "osss" -> Synth.Flow.Osss
        | "vhdl" -> Synth.Flow.Vhdl
        | other ->
            Printf.eprintf "unknown flow %s (osss|vhdl)\n" other;
            exit 1
      in
      if json then begin
        (* Machine-readable mode: run the flow and print its result
           (including the per-pass table) as the only stdout output. *)
        let result = Synth.Flow.run (flow_kind ()) design in
        print_endline
          (Obs.Json.to_string ~pretty:true (Synth.Flow.result_json result))
      end
      else begin
        Printf.printf "%s — %s\n\n" name desc;
        print_string (Synth.Analyzer.report design);
        if show_metrics then begin
          let m = Metrics.of_module design in
          Printf.printf "\nmetrics: %s\n" (Format.asprintf "%a" Metrics.pp m);
          Printf.printf "effort model: %.2f units\n" (Metrics.effort_days m)
        end;
        if show_systemc then begin
          print_endline "\n-- resolved standard SystemC --";
          print_string (Osss.Resolve.emit_module (Hdl.Elaborate.flatten design))
        end;
        if show_passes then begin
          let result = Synth.Flow.run (flow_kind ()) design in
          Printf.printf "\n-- %s flow pass trace --\n"
            (Synth.Flow.kind_name (flow_kind ()));
          print_string (Synth.Flow.pass_table result)
        end;
        match coverage with
        | Some path -> (
            match Cover.Db.load path with
            | Ok db ->
                print_newline ();
                print_string (Cover.Db.summary db)
            | Error e ->
                Printf.eprintf "coverage: %s\n" e;
                exit 1)
        | None -> ()
      end;
      Obs_cli.finish obs ~run:"design_report";
      0

let design_arg =
  let doc = "Design to report on (see osss_synth --list)." in
  Arg.(value & pos 0 string "expocu_osss" & info [] ~docv:"DESIGN" ~doc)

let metrics_arg =
  let doc = "Include code metrics and the effort model." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let systemc_arg =
  let doc = "Print the resolved SystemC rendering of the flattened design." in
  Arg.(value & flag & info [ "systemc" ] ~doc)

let passes_arg =
  let doc =
    "Run the synthesis flow and print the per-pass trace (time, cell/area \
     deltas, artifacts)."
  in
  Arg.(value & flag & info [ "passes" ] ~doc)

let flow_arg =
  let doc = "Flow used by --passes/--json: osss or vhdl." in
  Arg.(value & opt string "osss" & info [ "flow" ] ~docv:"FLOW" ~doc)

let json_arg =
  let doc =
    "Run the synthesis flow and print its result (final area/timing plus \
     the per-pass table) as JSON — the only stdout output in this mode."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let coverage_arg =
  let doc =
    "Print the coverage summary table from a coverage database written by \
     expocu_sim/bench --cover-out (not available with --json)."
  in
  Arg.(value & opt (some string) None & info [ "coverage" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "design structure and metrics report (the ODETTE analyzer)" in
  Cmd.v
    (Cmd.info "design_report" ~doc)
    Term.(
      const report $ design_arg $ metrics_arg $ systemc_arg $ passes_arg
      $ flow_arg $ json_arg $ coverage_arg $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
