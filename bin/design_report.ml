(* design_report: the ODETTE analyzer as a command-line tool — design
   structure (Figure 12), per-module statistics and effort metrics. *)

open Cmdliner

let report name show_metrics show_systemc =
  match Designs.find name with
  | None ->
      Printf.eprintf "unknown design %s; available:\n%s\n" name
        (String.concat "\n" (Designs.list_lines ()));
      1
  | Some (desc, make) ->
      let design = make () in
      Printf.printf "%s — %s\n\n" name desc;
      print_string (Synth.Analyzer.report design);
      if show_metrics then begin
        let m = Metrics.of_module design in
        Printf.printf "\nmetrics: %s\n" (Format.asprintf "%a" Metrics.pp m);
        Printf.printf "effort model: %.2f units\n" (Metrics.effort_days m)
      end;
      if show_systemc then begin
        print_endline "\n-- resolved standard SystemC --";
        print_string (Osss.Resolve.emit_module (Hdl.Elaborate.flatten design))
      end;
      0

let design_arg =
  let doc = "Design to report on (see osss_synth --list)." in
  Arg.(value & pos 0 string "expocu_osss" & info [] ~docv:"DESIGN" ~doc)

let metrics_arg =
  let doc = "Include code metrics and the effort model." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let systemc_arg =
  let doc = "Print the resolved SystemC rendering of the flattened design." in
  Arg.(value & flag & info [ "systemc" ] ~doc)

let cmd =
  let doc = "design structure and metrics report (the ODETTE analyzer)" in
  Cmd.v
    (Cmd.info "design_report" ~doc)
    Term.(const report $ design_arg $ metrics_arg $ systemc_arg)

let () = exit (Cmd.eval' cmd)
