(* expocu_sim: closed-loop simulation of the ExpoCU against the
   synthetic camera, at a chosen abstraction level. *)

open Cmdliner
open Hdl

let run_rtl style frames illumination target seed vcd_path obs =
  let design =
    match style with
    | "osss" -> Expocu.Expocu_top.osss_top ()
    | "rtl" -> Expocu.Expocu_top.rtl_top ()
    | other ->
        Printf.eprintf "unknown style %s (osss|rtl)\n" other;
        exit 1
  in
  let camera =
    Expocu.Camera.create ~width:64 ~height:4 ~illumination ?seed ()
  in
  let sim = Rtl_sim.create design in
  let tracer =
    match vcd_path with
    | None -> None
    | Some _ ->
        let tr = Rtl_trace.create sim ~top:"expocu" () in
        List.iter (Rtl_trace.port tr)
          [ "pixel"; "line_valid"; "frame_sync"; "scl"; "sda_out"; "sda_oe";
            "exposure"; "median_bin"; "frame_done" ];
        Some tr
    in
  (* Coverage instrumentation: toggle bits on every register and wire,
     the declared FSMs, the functional covergroups and the protocol
     monitor — all attached before reset so the power-on sequence is
     covered too. *)
  let coverage =
    if Obs_cli.covering obs then begin
      Rtl_sim.enable_toggle_cover sim;
      let cp = Expocu.Coverpoints.attach sim in
      let mon = Expocu.Monitors.expocu_monitor sim in
      Some (cp, mon)
    end
    else None
  in
  (* Power instrumentation: shadow-simulate the synthesized gate
     netlist with exactly the stimulus driven into the RTL engine, so
     the energy figures reflect this closed loop rather than random
     vectors.  The shadow only consumes inputs — control decisions
     (exposure feedback, frame_done polling) still come from the RTL
     simulation. *)
  let shadow =
    if Obs_cli.powering obs then begin
      let kind =
        if style = "osss" then Synth.Flow.Osss else Synth.Flow.Vhdl
      in
      let result = Synth.Flow.run kind design in
      let nl = result.Synth.Flow.netlist in
      let nsim = Backend.Nl_sim.create nl in
      Backend.Nl_sim.enable_power_sampler nsim;
      Some (nl, nsim)
    end
    else None
  in
  let set_input name v =
    Rtl_sim.set_input_int sim name v;
    match shadow with
    | Some (_, ns) -> Backend.Nl_sim.set_input_int ns name v
    | None -> ()
  in
  let step () =
    Rtl_sim.step sim;
    match shadow with
    | Some (_, ns) -> Backend.Nl_sim.step ns
    | None -> ()
  in
  let run n =
    Rtl_sim.run sim n;
    match shadow with
    | Some (_, ns) -> Backend.Nl_sim.run ns n
    | None -> ()
  in
  set_input "ext_reset" 0;
  set_input "target_bin" target;
  set_input "sda_in" 0;
  run 15;
  Printf.printf "%5s %8s %10s %10s\n" "frame" "median" "gain" "mean/255";
  for _frame = 1 to frames do
    let gain =
      float_of_int (Rtl_sim.get_int sim "exposure")
      /. float_of_int Expocu.Param_calc.gain_unity
    in
    let data = Expocu.Camera.frame camera ~exposure:gain in
    set_input "frame_sync" 1;
    run 4;
    set_input "line_valid" 1;
    Array.iter
      (fun px ->
        set_input "pixel" px;
        step ();
        Option.iter Rtl_trace.sample tracer)
      data;
    set_input "line_valid" 0;
    set_input "frame_sync" 0;
    let guard = ref 0 in
    while Rtl_sim.get_int sim "frame_done" = 0 && !guard < 4000 do
      step ();
      Option.iter Rtl_trace.sample tracer;
      incr guard
    done;
    (match coverage with
    | Some (cp, _) -> Expocu.Coverpoints.sample_frame cp sim
    | None -> ());
    Printf.printf "%5d %8d %10.3f %10.3f\n" _frame
      (Rtl_sim.get_int sim "median_bin")
      (float_of_int (Rtl_sim.get_int sim "exposure")
      /. float_of_int Expocu.Param_calc.gain_unity)
      (Expocu.Camera.mean_level data /. 255.0)
  done;
  Printf.printf "\n%d clock cycles simulated (%.2f ms at 66 MHz)\n"
    (Rtl_sim.cycles sim)
    (float_of_int (Rtl_sim.cycles sim) /. 66.0e6 *. 1000.0);
  (match (tracer, vcd_path) with
  | Some tr, Some path ->
      Rtl_trace.save tr path;
      Printf.printf "waveform written to %s\n" path
  | _, _ -> ());
  let mon_ok = ref true in
  let cover_db =
    match coverage with
    | None -> None
    | Some (cp, mon) ->
        Assert_mon.finish mon;
        mon_ok := Assert_mon.ok mon;
        if not !mon_ok then
          List.iter
            (fun v -> Format.eprintf "%a@." Assert_mon.pp_violation v)
            (Assert_mon.violations mon);
        let tg =
          match Rtl_sim.toggle_cover sim with
          | Some tg -> tg
          | None -> assert false
        in
        Some
          (Cover.Db.make
             ~toggles:(Cover.Db.toggle_entries tg)
             ~fsms:(Expocu.Coverpoints.fsms cp)
             ~groups:(Expocu.Coverpoints.groups cp)
             ~monitors:(Assert_mon.db_monitors mon)
             ~run:
               (Printf.sprintf "expocu_sim:%s:seed%d" style
                  (Option.value seed ~default:0))
             ())
  in
  let power =
    match shadow with
    | None -> None
    | Some (nl, ns) ->
        Option.map
          (fun act -> Synth.Power_dyn.analyze nl act)
          (Backend.Nl_sim.power_activity ns)
  in
  let activity = Rtl_sim.process_activity sim in
  Obs_cli.finish obs ~run:"expocu_sim" ?cover:cover_db ?power
    ~profiles:
      [
        ("hot processes", activity);
        ("hot modules", Obs.Profile.by_module activity);
      ];
  if !mon_ok then 0 else 1

(* One quiet closed-loop coverage run at [seed]: builds its own design,
   camera, simulator and collectors — everything a shard needs lives on
   the shard's domain ([Par] thread-affinity contract) — and returns
   only the finished per-seed coverage database. *)
let cover_run ~style ~frames ~illumination ~target ~seed () =
  let design =
    match style with
    | "osss" -> Expocu.Expocu_top.osss_top ()
    | _ -> Expocu.Expocu_top.rtl_top ()
  in
  let camera =
    Expocu.Camera.create ~width:64 ~height:4 ~illumination ~seed ()
  in
  let sim = Rtl_sim.create design in
  Rtl_sim.enable_toggle_cover sim;
  let cp = Expocu.Coverpoints.attach sim in
  let mon = Expocu.Monitors.expocu_monitor sim in
  let set_input = Rtl_sim.set_input_int sim in
  set_input "ext_reset" 0;
  set_input "target_bin" target;
  set_input "sda_in" 0;
  Rtl_sim.run sim 15;
  for _frame = 1 to frames do
    let gain =
      float_of_int (Rtl_sim.get_int sim "exposure")
      /. float_of_int Expocu.Param_calc.gain_unity
    in
    let data = Expocu.Camera.frame camera ~exposure:gain in
    set_input "frame_sync" 1;
    Rtl_sim.run sim 4;
    set_input "line_valid" 1;
    Array.iter
      (fun px ->
        set_input "pixel" px;
        Rtl_sim.step sim)
      data;
    set_input "line_valid" 0;
    set_input "frame_sync" 0;
    let guard = ref 0 in
    while Rtl_sim.get_int sim "frame_done" = 0 && !guard < 4000 do
      Rtl_sim.step sim;
      incr guard
    done;
    Expocu.Coverpoints.sample_frame cp sim
  done;
  Assert_mon.finish mon;
  if not (Assert_mon.ok mon) then
    failwith (Printf.sprintf "seed %d: protocol monitor violated" seed);
  let tg =
    match Rtl_sim.toggle_cover sim with
    | Some tg -> tg
    | None -> assert false
  in
  Cover.Db.make
    ~toggles:(Cover.Db.toggle_entries tg)
    ~fsms:(Expocu.Coverpoints.fsms cp)
    ~groups:(Expocu.Coverpoints.groups cp)
    ~monitors:(Assert_mon.db_monitors mon)
    ~run:(Printf.sprintf "expocu_sim:%s:seed%d" style seed)
    ()

(* Multi-seed coverage sweep: one shard per seed on the [Par] domain
   pool, per-seed databases merged in seed order — so the merged DB is
   identical for every --jobs value. *)
let run_seeds style frames illumination target base_seed nseeds obs =
  if not (Obs_cli.covering obs) then begin
    Obs.Log.error
      "--seeds is a coverage sweep; add --cover-out or --cover-summary";
    1
  end
  else begin
    let seeds = List.init nseeds (fun i -> base_seed + i) in
    let dbs =
      Par.map_list
        ~label:(fun i -> Printf.sprintf "cover-seed-%d" (base_seed + i))
        (fun seed -> cover_run ~style ~frames ~illumination ~target ~seed ())
        seeds
    in
    let merged =
      match dbs with
      | [] -> assert false
      | d :: rest -> List.fold_left Cover.Db.merge d rest
    in
    List.iter2
      (fun seed db ->
        let t = Cover.Db.totals db in
        Printf.printf "seed %5d: %d/%d toggle bits covered\n" seed
          t.Cover.Db.toggle_covered t.Cover.Db.toggle_bits)
      seeds dbs;
    let t = Cover.Db.totals merged in
    Printf.printf "merged %d seeds (jobs %d): %d/%d toggle bits covered\n"
      nseeds (Par.default_jobs ()) t.Cover.Db.toggle_covered
      t.Cover.Db.toggle_bits;
    Obs_cli.finish obs ~run:"expocu_sim" ~cover:merged;
    0
  end

let run_behavioural frames illumination target =
  let r =
    Expocu.Behave_model.run ~frames ~illumination ~target_bin:target ()
  in
  Printf.printf
    "behavioural model: %d frames, final gain %.3f, final median %d\n"
    r.Expocu.Behave_model.frames r.Expocu.Behave_model.final_gain
    r.Expocu.Behave_model.final_median;
  Printf.printf "%d clock cycles, %d kernel process activations\n"
    r.Expocu.Behave_model.sim_cycles r.Expocu.Behave_model.kernel_runs;
  0

let main level style frames illumination target seed seeds vcd obs =
  match Obs_cli.merge_requested obs with
  | Some pair -> Obs_cli.run_merge obs pair
  | None -> (
      Obs_cli.setup obs;
      match level with
      | "rtl" -> (
          match seeds with
          | Some n when n >= 1 ->
              run_seeds style frames illumination target
                (Option.value seed ~default:0)
                n obs
          | Some n ->
              Printf.eprintf "--seeds expects a positive count, got %d\n" n;
              1
          | None -> run_rtl style frames illumination target seed vcd obs)
      | "behavioural" | "behavioral" ->
          if Obs_cli.covering obs then
            Obs.Log.infof
              "coverage collection needs the RTL level; ignoring cover flags";
          let rc = run_behavioural frames illumination target in
          Obs_cli.finish obs ~run:"expocu_sim";
          rc
      | other ->
          Printf.eprintf "unknown level %s (rtl|behavioural)\n" other;
          1)

let level_arg =
  let doc = "Abstraction level: rtl or behavioural." in
  Arg.(value & opt string "rtl" & info [ "level" ] ~docv:"LEVEL" ~doc)

let style_arg =
  let doc = "Implementation style for the RTL level: osss or rtl." in
  Arg.(value & opt string "osss" & info [ "style" ] ~docv:"STYLE" ~doc)

let frames_arg =
  let doc = "Number of frames to run." in
  Arg.(value & opt int 10 & info [ "frames" ] ~docv:"N" ~doc)

let illum_arg =
  let doc = "Initial scene illumination (0..1)." in
  Arg.(value & opt float 0.2 & info [ "illumination" ] ~docv:"I" ~doc)

let target_arg =
  let doc = "Target brightness bin (0..15)." in
  Arg.(value & opt int 7 & info [ "target" ] ~docv:"BIN" ~doc)

let seed_arg =
  let doc =
    "Camera noise seed — distinct seeds give distinct stimulus, so their \
     coverage databases are worth merging."
  in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc)

let seeds_arg =
  let doc =
    "Coverage sweep over $(docv) consecutive camera seeds starting at \
     --seed: one quiet closed-loop run per seed, sharded across the \
     --jobs domain pool, per-seed coverage databases merged in seed \
     order.  Needs a coverage flag (--cover-out or --cover-summary)."
  in
  Arg.(value & opt (some int) None & info [ "seeds" ] ~docv:"N" ~doc)

let vcd_arg =
  let doc = "Dump a VCD waveform of the bus-level signals (RTL level only)." in
  Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "simulate the ExpoCU exposure-control loop" in
  Cmd.v
    (Cmd.info "expocu_sim" ~doc)
    Term.(
      const main $ level_arg $ style_arg $ frames_arg $ illum_arg $ target_arg
      $ seed_arg $ seeds_arg $ vcd_arg $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
