(* Shared observability plumbing for the command-line tools: the
   --trace-out / --stats-json / --profile flags plus the coverage
   family (--cover-out / --cover-summary / --cover-merge) and the
   power family (--power-out / --power-summary), switching the
   collectors on up front and exporting when the run finishes. *)

open Cmdliner

type t = {
  trace_out : string option;
  stats_json : string option;
  flame_out : string option;
  profile : bool;
  cover_out : string option;
  cover_summary : bool;
  cover_merge : (string * string) option;
  power_out : string option;
  power_summary : bool;
  jobs : int option;
}

let trace_arg =
  let doc =
    "Write a Chrome trace-event JSON of the run to $(docv) (open in Perfetto \
     or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let stats_arg =
  let doc =
    "Write a machine-readable run report (Perf counters, histograms, span \
     tree, activity profiles, coverage when collected) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE" ~doc)

let flame_arg =
  let doc =
    "Write the span tree in collapsed-stack format to $(docv) (one \
     'a;b;c count' line per stack, self time in microseconds — feed to \
     flamegraph.pl or speedscope)."
  in
  Arg.(value & opt (some string) None & info [ "flame-out" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc =
    "Collect activity profiles and print the hot-spot tables (hot nets, hot \
     cells, hot processes)."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let cover_out_arg =
  let doc =
    "Collect coverage (toggle, FSM, covergroups, protocol monitors) and \
     write the coverage database to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "cover-out" ] ~docv:"FILE" ~doc)

let cover_summary_arg =
  let doc =
    "Collect coverage and print the human-readable coverage summary table."
  in
  Arg.(value & flag & info [ "cover-summary" ] ~doc)

let cover_merge_arg =
  let doc =
    "Merge two coverage databases written by --cover-out (union; counts are \
     summed) instead of simulating.  Writes the result to --cover-out if \
     given, otherwise prints the merged summary."
  in
  Arg.(
    value
    & opt (some (pair string string)) None
    & info [ "cover-merge" ] ~docv:"A,B" ~doc)

let power_out_arg =
  let doc =
    "Collect windowed switching activity and write the dynamic power \
     waveform (real-valued total plus one trace per module) as VCD to \
     $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "power-out" ] ~docv:"FILE" ~doc)

let power_summary_arg =
  let doc =
    "Collect windowed switching activity and print the dynamic power \
     summary (total energy, average/peak power, per-module table)."
  in
  Arg.(value & flag & info [ "power-summary" ] ~doc)

let jobs_arg =
  let doc =
    "Run sharded campaigns (fault lists, multi-seed sweeps) on $(docv) \
     domains.  Defaults to the machine's recommended domain count (or the \
     OSSS_JOBS environment variable); 1 runs the serial code paths. \
     Results are bit-identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N" ~doc)

let term =
  let make trace_out stats_json flame_out profile cover_out cover_summary
      cover_merge power_out power_summary jobs =
    {
      trace_out;
      stats_json;
      flame_out;
      profile;
      cover_out;
      cover_summary;
      cover_merge;
      power_out;
      power_summary;
      jobs;
    }
  in
  Term.(
    const make $ trace_arg $ stats_arg $ flame_arg $ profile_arg
    $ cover_out_arg $ cover_summary_arg $ cover_merge_arg $ power_out_arg
    $ power_summary_arg $ jobs_arg)

let profiling t = t.profile

(* Coverage flags imply collection; --stats-json alone does not (the
   report simply carries no coverage section then). *)
let covering t = t.cover_out <> None || t.cover_summary
let merge_requested t = t.cover_merge

(* Power flags imply activity sampling, mirroring the coverage rule. *)
let powering t = t.power_out <> None || t.power_summary

let run_merge t (a, b) =
  match (Cover.Db.load a, Cover.Db.load b) with
  | Ok da, Ok db ->
      let merged = Cover.Db.merge da db in
      (match t.cover_out with
      | Some path ->
          Cover.Db.save merged path;
          Obs.Log.infof "merged coverage written to %s" path
      | None -> ());
      if t.cover_summary || t.cover_out = None then
        print_string (Cover.Db.summary merged);
      0
  | (Error e, _ | _, Error e) ->
      Printf.eprintf "cover-merge: %s\n" e;
      1

let setup t =
  (match t.jobs with
  | Some j when j >= 1 -> Par.set_default_jobs j
  | Some j -> invalid_arg (Printf.sprintf "--jobs %d: expected >= 1" j)
  | None -> ());
  if t.trace_out <> None || t.stats_json <> None || t.flame_out <> None
  then begin
    Obs.Span.enable ();
    Obs.Hist.enable ()
  end

(* [profiles] are raw (name, count) activity lists; ranking and
   serialization happen here.  [cover] is the run's coverage database:
   written to --cover-out, printed on --cover-summary and embedded in
   the --stats-json report.  [power] is the run's dynamic power report:
   its waveform goes to --power-out, its summary to --power-summary and
   its JSON into the --stats-json report (schema v3). *)
let finish ?(profiles = []) ?cover ?power ~run t =
  let ranked =
    List.map (fun (title, raw) -> (title, Obs.Profile.top raw)) profiles
  in
  if t.profile then
    List.iter
      (fun (title, entries) ->
        print_newline ();
        print_string (Obs.Profile.table ~title entries))
      ranked;
  (match cover with
  | Some db ->
      (match t.cover_out with
      | Some path ->
          Cover.Db.save db path;
          Obs.Log.infof "coverage database written to %s" path
      | None -> ());
      if t.cover_summary then begin
        print_newline ();
        print_string (Cover.Db.summary db)
      end
  | None -> ());
  (match (power : Synth.Power_dyn.report option) with
  | Some pr ->
      (match t.power_out with
      | Some path ->
          Synth.Power_dyn.save_vcd pr path;
          Obs.Log.infof "power waveform written to %s" path
      | None -> ());
      if t.power_summary then begin
        print_newline ();
        print_string (Synth.Power_dyn.summary pr)
      end
  | None -> ());
  (match t.stats_json with
  | Some path ->
      let coverage = Option.map Cover.Db.to_json cover in
      let power = Option.map Synth.Power_dyn.to_json power in
      Obs.Json.save
        (Obs.Report.make ?coverage ?power ~profiles:ranked ~run ())
        path;
      Obs.Log.infof "run report written to %s" path
  | None -> ());
  (match t.trace_out with
  | Some path ->
      Obs.Span.save_chrome path;
      Obs.Log.infof "chrome trace written to %s" path
  | None -> ());
  match t.flame_out with
  | Some path ->
      Obs.Span.save_collapsed path;
      Obs.Log.infof "collapsed stacks written to %s" path
  | None -> ()
