(* Shared observability plumbing for the command-line tools: the
   --trace-out / --stats-json / --profile flags, switching the
   collectors on up front and exporting when the run finishes. *)

open Cmdliner

type t = {
  trace_out : string option;
  stats_json : string option;
  profile : bool;
}

let trace_arg =
  let doc =
    "Write a Chrome trace-event JSON of the run to $(docv) (open in Perfetto \
     or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let stats_arg =
  let doc =
    "Write a machine-readable run report (Perf counters, histograms, span \
     tree, activity profiles) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc =
    "Collect activity profiles and print the hot-spot tables (hot nets, hot \
     cells, hot processes)."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let term =
  let make trace_out stats_json profile = { trace_out; stats_json; profile } in
  Term.(const make $ trace_arg $ stats_arg $ profile_arg)

let profiling t = t.profile

let setup t =
  if t.trace_out <> None || t.stats_json <> None then begin
    Obs.Span.enable ();
    Obs.Hist.enable ()
  end

(* [profiles] are raw (name, count) activity lists; ranking and
   serialization happen here. *)
let finish ?(profiles = []) ~run t =
  let ranked =
    List.map (fun (title, raw) -> (title, Obs.Profile.top raw)) profiles
  in
  if t.profile then
    List.iter
      (fun (title, entries) ->
        print_newline ();
        print_string (Obs.Profile.table ~title entries))
      ranked;
  (match t.stats_json with
  | Some path ->
      Obs.Json.save (Obs.Report.make ~profiles:ranked ~run ()) path;
      Obs.Log.infof "run report written to %s" path
  | None -> ());
  match t.trace_out with
  | Some path ->
      Obs.Span.save_chrome path;
      Obs.Log.infof "chrome trace written to %s" path
  | None -> ()
