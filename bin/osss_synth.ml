(* osss_synth: run a design through the synthesis flow of Figure 6 and
   report/emit the artifacts. *)

open Cmdliner

let synthesize name flow_name out_dir emit_artifacts no_fold layout =
  match Designs.find name with
  | None ->
      Printf.eprintf "unknown design %s; available:\n%s\n" name
        (String.concat "\n" (Designs.list_lines ()));
      1
  | Some (_, make) ->
      let kind =
        match flow_name with
        | "osss" -> Synth.Flow.Osss
        | "vhdl" -> Synth.Flow.Vhdl
        | other ->
            Printf.eprintf "unknown flow %s (osss|vhdl)\n" other;
            exit 1
      in
      let result = Synth.Flow.run ~fold:(not no_fold) kind (make ()) in
      print_string (Synth.Flow.summary result);
      print_newline ();
      print_string result.Synth.Flow.structure;
      if layout then begin
        let mapped = Backend.Techmap.map result.Synth.Flow.netlist in
        let placement = Backend.Pnr.place mapped in
        let r = Backend.Pnr.analyze placement in
        let w, h = r.Backend.Pnr.grid in
        Printf.printf
          "\nlayout: %d LUT4 + %d FFs on %dx%d (util %.0f%%), wirelength \
           %.0f, post-layout fmax %.1f MHz\n"
          (Backend.Techmap.lut_count mapped)
          (Backend.Techmap.ff_count mapped)
          w h
          (100.0 *. r.Backend.Pnr.utilization)
          r.Backend.Pnr.wirelength r.Backend.Pnr.fmax_mhz
      end;
      if emit_artifacts then begin
        (try Unix.mkdir out_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        List.iter
          (fun (file, text) ->
            let path = Filename.concat out_dir file in
            let oc = open_out path in
            output_string oc text;
            close_out oc;
            Printf.printf "wrote %s (%d bytes)\n" path (String.length text))
          result.Synth.Flow.intermediate
      end;
      0

let design_arg =
  let doc = "Design to synthesize (run with --list to enumerate)." in
  Arg.(value & pos 0 string "expocu_osss" & info [] ~docv:"DESIGN" ~doc)

let flow_arg =
  let doc = "Flow to run: osss or vhdl." in
  Arg.(value & opt string "osss" & info [ "flow" ] ~docv:"FLOW" ~doc)

let out_arg =
  let doc = "Directory for emitted artifacts." in
  Arg.(value & opt string "_artifacts" & info [ "out" ] ~docv:"DIR" ~doc)

let emit_arg =
  let doc = "Write the intermediate files (resolved SystemC / VHDL / netlist Verilog)." in
  Arg.(value & flag & info [ "emit" ] ~doc)

let nofold_arg =
  let doc = "Disable construction-time netlist folding (ablation)." in
  Arg.(value & flag & info [ "no-fold" ] ~doc)

let layout_arg =
  let doc = "Continue through technology mapping and place & route." in
  Arg.(value & flag & info [ "layout" ] ~doc)

let list_arg =
  let doc = "List the available designs." in
  Arg.(value & flag & info [ "list" ] ~doc)

let main design flow out emit no_fold layout list =
  if list then begin
    List.iter print_endline (Designs.list_lines ());
    0
  end
  else synthesize design flow out emit no_fold layout

let cmd =
  let doc = "synthesize OSSS/RTL designs down to a gate netlist" in
  Cmd.v
    (Cmd.info "osss_synth" ~doc)
    Term.(
      const main $ design_arg $ flow_arg $ out_arg $ emit_arg $ nofold_arg
      $ layout_arg $ list_arg)

let () = exit (Cmd.eval' cmd)
