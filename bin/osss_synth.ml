(* osss_synth: run a design through the synthesis flow of Figure 6 and
   report/emit the artifacts. *)

open Cmdliner

let synthesize name flow_name out_dir emit_artifacts no_fold layout cec json
    obs =
  match Designs.find name with
  | None ->
      Printf.eprintf "unknown design %s; available:\n%s\n" name
        (String.concat "\n" (Designs.list_lines ()));
      1
  | Some (_, make) ->
      let kind =
        match flow_name with
        | "osss" -> Synth.Flow.Osss
        | "vhdl" -> Synth.Flow.Vhdl
        | other ->
            Printf.eprintf "unknown flow %s (osss|vhdl)\n" other;
            exit 1
      in
      Obs_cli.setup obs;
      (* --power-out/--power-summary append the dynamic-power pass to
         the flow (256 cycles of deterministic seeded stimulus). *)
      let power_cycles = if Obs_cli.powering obs then Some 256 else None in
      let result =
        Synth.Flow.run ~fold:(not no_fold) ~check_invariants:cec ~layout
          ?power_cycles kind (make ())
      in
      (* --json keeps stdout machine-readable; the narrative goes to
         stderr through the logger. *)
      if json then
        print_endline
          (Obs.Json.to_string ~pretty:true (Synth.Flow.result_json result))
      else begin
        print_string (Synth.Flow.summary result);
        print_newline ();
        print_string result.Synth.Flow.structure
      end;
      if emit_artifacts then begin
        (try Unix.mkdir out_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        List.iter
          (fun (file, text) ->
            let path = Filename.concat out_dir file in
            let oc = open_out path in
            output_string oc text;
            close_out oc;
            Obs.Log.infof "wrote %s (%d bytes)" path (String.length text))
          result.Synth.Flow.intermediate
      end;
      Obs_cli.finish obs ~run:"osss_synth" ?power:result.Synth.Flow.power;
      0

let design_arg =
  let doc = "Design to synthesize (run with --list to enumerate)." in
  Arg.(value & pos 0 string "expocu_osss" & info [] ~docv:"DESIGN" ~doc)

let flow_arg =
  let doc = "Flow to run: osss or vhdl." in
  Arg.(value & opt string "osss" & info [ "flow" ] ~docv:"FLOW" ~doc)

let out_arg =
  let doc = "Directory for emitted artifacts." in
  Arg.(value & opt string "_artifacts" & info [ "out" ] ~docv:"DIR" ~doc)

let emit_arg =
  let doc = "Write the intermediate files (resolved SystemC / VHDL / netlist Verilog)." in
  Arg.(value & flag & info [ "emit" ] ~doc)

let nofold_arg =
  let doc = "Disable construction-time netlist folding (ablation)." in
  Arg.(value & flag & info [ "no-fold" ] ~doc)

let layout_arg =
  let doc = "Continue through technology mapping and place & route." in
  Arg.(value & flag & info [ "layout" ] ~doc)

let cec_arg =
  let doc =
    "Check every netlist-rewriting pass with combinational equivalence \
     (slow on large designs)."
  in
  Arg.(value & flag & info [ "cec" ] ~doc)

let list_arg =
  let doc = "List the available designs." in
  Arg.(value & flag & info [ "list" ] ~doc)

let json_arg =
  let doc =
    "Print the flow result (final area/timing plus the per-pass table) as \
     JSON on stdout instead of the text summary."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let main design flow out emit no_fold layout cec list json obs =
  if list then begin
    List.iter print_endline (Designs.list_lines ());
    0
  end
  else synthesize design flow out emit no_fold layout cec json obs

let cmd =
  let doc = "synthesize OSSS/RTL designs down to a gate netlist" in
  Cmd.v
    (Cmd.info "osss_synth" ~doc)
    Term.(
      const main $ design_arg $ flow_arg $ out_arg $ emit_arg $ nofold_arg
      $ layout_arg $ cec_arg $ list_arg $ json_arg $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
