(* osss_synth: run a design through the synthesis flow of Figure 6 and
   report/emit the artifacts. *)

open Cmdliner

(* --sweep N: differential sweep between the RTL interpretation of the
   flattened design and the event-driven simulation of the synthesized
   netlist, one full lockstep run per stimulus seed, sharded across the
   --jobs domain pool.  Exits non-zero on any divergence. *)
let sweep_check (result : Synth.Flow.result) nseeds =
  let design = result.Synth.Flow.flat in
  let nl = result.Synth.Flow.netlist in
  let seeds = List.init nseeds (fun i -> i) in
  let outcomes =
    Backend.Equiv.differential_sweep ~cycles:300 ~seeds
      [
        (fun () -> Rtl_engine.create ~label:"rtl" design);
        (fun () ->
          Backend.Nl_engine.create ~label:"gates"
            ~mode:Backend.Nl_sim.Event_driven nl);
      ]
  in
  Printf.printf "differential sweep: rtl vs gates, %d seeds, jobs %d\n"
    nseeds (Par.default_jobs ());
  let divergent =
    List.fold_left
      (fun acc (seed, r) ->
        match r with
        | Ok cycles ->
            Printf.printf "  seed %4d: ok (%d cycles in lockstep)\n" seed
              cycles;
            acc
        | Error d ->
            Format.printf "  seed %4d: DIVERGED %a@." seed
              Backend.Equiv.pp_mismatch d.Backend.Equiv.first;
            acc + 1)
      0 outcomes
  in
  if divergent > 0 then begin
    Obs.Log.errorf "sweep: %d of %d seeds diverged" divergent nseeds;
    1
  end
  else 0

let synthesize name flow_name out_dir emit_artifacts no_fold layout cec json
    sweep obs =
  match Designs.find name with
  | None ->
      Printf.eprintf "unknown design %s; available:\n%s\n" name
        (String.concat "\n" (Designs.list_lines ()));
      1
  | Some (_, make) ->
      let kind =
        match flow_name with
        | "osss" -> Synth.Flow.Osss
        | "vhdl" -> Synth.Flow.Vhdl
        | other ->
            Printf.eprintf "unknown flow %s (osss|vhdl)\n" other;
            exit 1
      in
      Obs_cli.setup obs;
      (* --power-out/--power-summary append the dynamic-power pass to
         the flow (256 cycles of deterministic seeded stimulus). *)
      let power_cycles = if Obs_cli.powering obs then Some 256 else None in
      let result =
        Synth.Flow.run ~fold:(not no_fold) ~check_invariants:cec ~layout
          ?power_cycles kind (make ())
      in
      (* --json keeps stdout machine-readable; the narrative goes to
         stderr through the logger. *)
      if json then
        print_endline
          (Obs.Json.to_string ~pretty:true (Synth.Flow.result_json result))
      else begin
        print_string (Synth.Flow.summary result);
        print_newline ();
        print_string result.Synth.Flow.structure
      end;
      if emit_artifacts then begin
        (try Unix.mkdir out_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        List.iter
          (fun (file, text) ->
            let path = Filename.concat out_dir file in
            let oc = open_out path in
            output_string oc text;
            close_out oc;
            Obs.Log.infof "wrote %s (%d bytes)" path (String.length text))
          result.Synth.Flow.intermediate
      end;
      let rc =
        match sweep with
        | Some n when n >= 1 -> sweep_check result n
        | Some n ->
            Printf.eprintf "--sweep expects a positive seed count, got %d\n" n;
            1
        | None -> 0
      in
      Obs_cli.finish obs ~run:"osss_synth" ?power:result.Synth.Flow.power;
      rc

let design_arg =
  let doc = "Design to synthesize (run with --list to enumerate)." in
  Arg.(value & pos 0 string "expocu_osss" & info [] ~docv:"DESIGN" ~doc)

let flow_arg =
  let doc = "Flow to run: osss or vhdl." in
  Arg.(value & opt string "osss" & info [ "flow" ] ~docv:"FLOW" ~doc)

let out_arg =
  let doc = "Directory for emitted artifacts." in
  Arg.(value & opt string "_artifacts" & info [ "out" ] ~docv:"DIR" ~doc)

let emit_arg =
  let doc = "Write the intermediate files (resolved SystemC / VHDL / netlist Verilog)." in
  Arg.(value & flag & info [ "emit" ] ~doc)

let nofold_arg =
  let doc = "Disable construction-time netlist folding (ablation)." in
  Arg.(value & flag & info [ "no-fold" ] ~doc)

let layout_arg =
  let doc = "Continue through technology mapping and place & route." in
  Arg.(value & flag & info [ "layout" ] ~doc)

let cec_arg =
  let doc =
    "Check every netlist-rewriting pass with combinational equivalence \
     (slow on large designs)."
  in
  Arg.(value & flag & info [ "cec" ] ~doc)

let list_arg =
  let doc = "List the available designs." in
  Arg.(value & flag & info [ "list" ] ~doc)

let json_arg =
  let doc =
    "Print the flow result (final area/timing plus the per-pass table) as \
     JSON on stdout instead of the text summary."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let sweep_arg =
  let doc =
    "After the flow, run an N-way differential sweep — RTL interpretation \
     vs the synthesized netlist in lockstep — across $(docv) stimulus \
     seeds, sharded across the --jobs domain pool.  Non-zero exit on any \
     divergence."
  in
  Arg.(value & opt (some int) None & info [ "sweep" ] ~docv:"SEEDS" ~doc)

let main design flow out emit no_fold layout cec list json sweep obs =
  if list then begin
    List.iter print_endline (Designs.list_lines ());
    0
  end
  else synthesize design flow out emit no_fold layout cec json sweep obs

let cmd =
  let doc = "synthesize OSSS/RTL designs down to a gate netlist" in
  Cmd.v
    (Cmd.info "osss_synth" ~doc)
    Term.(
      const main $ design_arg $ flow_arg $ out_arg $ emit_arg $ nofold_arg
      $ layout_arg $ cec_arg $ list_arg $ json_arg $ sweep_arg $ Obs_cli.term)

let () = exit (Cmd.eval' cmd)
