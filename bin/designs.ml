(* Design registry shared by the command-line tools (the catalogue
   itself lives in the library, see Expocu.Registry). *)

let registry = Expocu.Registry.registry
let find = Expocu.Registry.find
let list_lines = Expocu.Registry.list_lines
