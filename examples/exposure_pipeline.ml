(* The full automotive scenario: the synthesized ExpoCU closing the
   exposure loop against the synthetic camera through a tunnel-entry /
   tunnel-exit illumination profile — the kind of situation the paper's
   night-vision and lane-departure applications face.

   Each frame: pixels stream into the histogram stage, the threshold
   stage scans for the median brightness band, the parameter stage
   updates the gain in fixed point, and the new setting goes out over
   I2C (decoded here by a bus monitor).  The hardware's exposure value
   is checked against the pure-OCaml golden model every frame.

   Run: dune exec examples/exposure_pipeline.exe *)

open Hdl

let bins = 16
let target = 7

(* Stream one camera frame through the RTL ExpoCU; returns the decoded
   I2C payload bytes observed during the frame as well. *)
let hw_frame sim frame =
  Rtl_sim.set_input_int sim "frame_sync" 1;
  Rtl_sim.run sim 4;
  Rtl_sim.set_input_int sim "line_valid" 1;
  Array.iter
    (fun px ->
      Rtl_sim.set_input_int sim "pixel" px;
      Rtl_sim.step sim)
    frame;
  Rtl_sim.set_input_int sim "line_valid" 0;
  Rtl_sim.set_input_int sim "frame_sync" 0;
  (* watch the I2C lines while the controller finishes the frame *)
  let bytes = ref [] and bits = ref [] in
  let prev_scl = ref 1 in
  let guard = ref 0 in
  while Rtl_sim.get_int sim "frame_done" = 0 && !guard < 4000 do
    Rtl_sim.step sim;
    let scl = Rtl_sim.get_int sim "scl" in
    if scl = 1 && !prev_scl = 0 then begin
      if Rtl_sim.get_int sim "sda_oe" = 0 then begin
        let byte = List.fold_left (fun a b -> (a * 2) + b) 0 (List.rev !bits) in
        bytes := byte :: !bytes;
        bits := []
      end
      else bits := Rtl_sim.get_int sim "sda_out" :: !bits
    end;
    prev_scl := scl;
    incr guard
  done;
  ( Rtl_sim.get_int sim "median_bin",
    Rtl_sim.get_int sim "exposure",
    List.rev !bytes )

let () =
  print_endline "== ExpoCU closed loop: tunnel entry and exit ==\n";
  let camera = Expocu.Camera.create ~width:64 ~height:4 ~illumination:0.35 () in
  let sim = Rtl_sim.create (Expocu.Expocu_top.osss_top ()) in
  Rtl_sim.set_input_int sim "ext_reset" 0;
  Rtl_sim.set_input_int sim "target_bin" target;
  Rtl_sim.set_input_int sim "sda_in" 0;
  Rtl_sim.run sim 15;
  (* golden model state *)
  let golden_exposure = ref Expocu.Param_calc.gain_unity in
  let mismatches = ref 0 in
  Printf.printf "%5s %12s %8s %10s %10s  %s\n" "frame" "illumination"
    "median" "gain" "golden" "i2c payload";
  for frame_no = 1 to 24 do
    (* tunnel entry at frame 8, exit at frame 16 *)
    if frame_no = 8 then Expocu.Camera.set_illumination camera 0.06;
    if frame_no = 16 then Expocu.Camera.set_illumination camera 0.5;
    let gain_now =
      float_of_int (Rtl_sim.get_int sim "exposure")
      /. float_of_int Expocu.Param_calc.gain_unity
    in
    let frame = Expocu.Camera.frame camera ~exposure:gain_now in
    let median, exposure, i2c_bytes = hw_frame sim frame in
    (* advance the golden model on the same frame *)
    let g_median, g_exposure =
      Expocu.Exposure_algo.control_step ~bins ~target_bin:target
        ~exposure:!golden_exposure frame
    in
    golden_exposure := g_exposure;
    if exposure <> g_exposure || median <> g_median then incr mismatches;
    Printf.printf "%5d %12.2f %8d %10.3f %10.3f  [%s]\n" frame_no
      (Expocu.Camera.mean_level frame /. 255.0)
      median
      (float_of_int exposure /. float_of_int Expocu.Param_calc.gain_unity)
      (float_of_int g_exposure /. float_of_int Expocu.Param_calc.gain_unity)
      (String.concat " " (List.map (Printf.sprintf "%02x") i2c_bytes))
  done;
  Printf.printf "\nhardware vs golden model: %s\n"
    (if !mismatches = 0 then "bit exact on every frame"
     else Printf.sprintf "%d mismatching frames" !mismatches);
  Printf.printf "simulated %d clock cycles at 66 MHz (%.2f ms of real time)\n"
    (Rtl_sim.cycles sim)
    (float_of_int (Rtl_sim.cycles sim) /. 66.0e6 *. 1000.0)
