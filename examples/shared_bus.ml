(* Global-object example (§6): a shared register file accessed by three
   producer processes through an automatically synthesized scheduler.
   Exercises all three scheduler policies and shows the arbitration
   traces.

   Run: dune exec examples/shared_bus.exe *)

open Hdl
module CD = Osss.Class_def
module SH = Osss.Shared

(* A 4-entry register file as a shared class: Put stores a value at an
   address, Get reads one back. *)
let regfile_class =
  let fields = List.init 4 (fun i -> CD.field (Printf.sprintf "r%d" i) 8) in
  let reg ctx i = ctx.CD.get (Printf.sprintf "r%d" i) in
  CD.declare ~name:"RegFile4" fields
    [
      CD.proc_method ~name:"Put" ~params:[ ("Addr", 2); ("Value", 8) ]
        (fun ctx ->
          [
            Ir.Case
              ( ctx.CD.arg "Addr",
                List.init 4 (fun i ->
                    ( Bitvec.of_int ~width:2 i,
                      [ ctx.CD.set (Printf.sprintf "r%d" i) (ctx.CD.arg "Value") ] )),
                [] );
          ]);
      CD.fn_method ~name:"Get" ~params:[ ("Addr", 2) ] ~return:8 (fun ctx ->
          let result =
            List.fold_left
              (fun acc i ->
                Ir.Mux
                  ( Ir.Binop
                      (Ir.Eq, ctx.CD.arg "Addr", Ir.Const (Bitvec.of_int ~width:2 i)),
                    reg ctx i,
                    acc ))
              (Ir.Const (Bitvec.zero 8))
              [ 0; 1; 2; 3 ]
          in
          ([], result));
    ]

(* Three writer processes contend for the shared file; each writes its
   id-dependent pattern to its own slot whenever its request fires. *)
let design policy =
  let b = Builder.create "shared_regfile_demo" in
  let reset = Builder.input b "reset" 1 in
  let tick = Builder.input b "tick" 3 in
  (* external per-client request pattern *)
  let granted = Builder.output b "granted" 3 in
  let slot0 = Builder.output b "slot0" 8 in
  let shared =
    SH.create b ~name:"rf" ~class_:regfile_class ~policy ~clients:3
      ~methods:[ "Put"; "Get" ] ~reset
  in
  List.iter
    (fun i ->
      let cl = SH.client shared i in
      let args = SH.args cl in
      Builder.comb b
        (Printf.sprintf "writer%d" i)
        [
          Ir.Assign (SH.req cl, Ir.Slice (Ir.Var tick, i, i));
          Ir.Assign
            (SH.op cl, Ir.Const (Bitvec.of_int ~width:1 (SH.op_index shared "Put")));
          Ir.Assign (args.(0), Ir.Const (Bitvec.of_int ~width:2 i));
          Ir.Assign
            ( args.(1),
              Ir.Const (Bitvec.of_int ~width:8 (0x10 * (i + 1))) );
        ])
    [ 0; 1; 2 ];
  let g i = SH.granted (SH.client shared i) in
  Builder.comb b "observe"
    [
      Ir.Assign (granted, Ir.Concat (g 2, Ir.Concat (g 1, g 0)));
      Ir.Assign
        (slot0, Osss.Object_inst.field_expr (SH.state shared) "r0");
    ];
  Builder.finish b

let run_policy policy =
  Printf.printf "\n-- scheduler: %s --\n" (SH.policy_name policy);
  let sim = Rtl_sim.create (design policy) in
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  (* all three clients request continuously: watch the grant pattern *)
  Rtl_sim.set_input_int sim "tick" 7;
  print_string "  grant sequence: ";
  for _ = 1 to 9 do
    Rtl_sim.settle sim;
    Printf.printf "%d " (Rtl_sim.get_int sim "granted");
    Rtl_sim.step sim
  done;
  print_newline ();
  Printf.printf "  slot0 after contention: 0x%02x\n"
    (Rtl_sim.get_int sim "slot0")

let () =
  print_endline "== OSSS global objects: shared register file, 3 clients ==";
  List.iter run_policy [ SH.Round_robin; SH.Fixed_priority; SH.Fcfs ];
  (* synthesis cost of the generated scheduler *)
  print_newline ();
  List.iter
    (fun policy ->
      let nl = Backend.Opt.optimize (Backend.Lower.lower (design policy)) in
      Printf.printf "%-28s %5d cells %8.1f GE\n"
        (SH.policy_name policy)
        (Backend.Netlist.cell_count nl)
        (Backend.Area.analyze nl).Backend.Area.total)
    [ SH.Round_robin; SH.Fixed_priority; SH.Fcfs ]
