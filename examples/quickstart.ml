(* Quickstart: the paper's running example end to end.

   Declares the SyncRegister<4,0> template class (Figures 2-3),
   instantiates it inside a module (Figure 4), accesses it from a
   clocked process (Figure 5), prints the resolved standard-SystemC
   output (Figures 7-8), then synthesizes to gates and reports
   area/timing — the complete OSSS flow of Figure 6 in one file.

   Run: dune exec examples/quickstart.exe *)

open Hdl

let () =
  print_endline "== OSSS quickstart: SyncRegister<4,0> ==\n";

  (* 1. The template class, specialized with <REGSIZE=4, RESETVALUE=0>. *)
  let cls = Expocu.Sync.sync_register ~regsize:4 ~resetvalue:0 in
  Printf.printf "class %s: state vector of %d bits, %d methods\n\n"
    (Osss.Class_def.class_name cls)
    (Osss.Class_def.state_width cls)
    (List.length (Osss.Class_def.methods cls));

  (* 2. The resolution the OSSS synthesizer performs (Figure 7). *)
  print_endline "-- resolved non-member function for Write --";
  print_endline (Osss.Resolve.emit_method cls "Write");

  (* 3. A module using the object (Figures 4-5). *)
  let design = Expocu.Sync.osss_module () in
  print_endline "\n-- generated standard SystemC for the module (Figure 8) --";
  print_endline (Osss.Resolve.emit_module (Elaborate.flatten design));

  (* 4. Simulate: shift a pattern in and watch the edge detector. *)
  print_endline "-- RTL simulation: stream 0,1,1,1,0 --";
  let sim = Rtl_sim.create design in
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  List.iter
    (fun bit ->
      Rtl_sim.set_input_int sim "data" bit;
      Rtl_sim.step sim;
      Printf.printf "  data=%d  value=%s rising=%d falling=%d stable=%d\n" bit
        (Bitvec.to_binary_string (Rtl_sim.get sim "value"))
        (Rtl_sim.get_int sim "rising")
        (Rtl_sim.get_int sim "falling")
        (Rtl_sim.get_int sim "stable"))
    [ 0; 1; 1; 1; 0 ];

  (* 5. Synthesize down to gates and compare with hand-written RTL. *)
  print_endline "\n-- synthesis (OSSS flow) --";
  let result = Synth.Flow.run Synth.Flow.Osss design in
  print_string (Synth.Flow.summary result);
  let rtl = Synth.Flow.run Synth.Flow.Vhdl (Expocu.Sync.rtl_module ()) in
  Printf.printf
    "\nhand-written RTL reference: %d cells (OSSS produced %d — the class \
     resolution is free)\n"
    (Backend.Netlist.cell_count rtl.Synth.Flow.netlist)
    (Backend.Netlist.cell_count result.Synth.Flow.netlist);

  (* 6. Bit/cycle accuracy through the flow (§12). *)
  match
    Backend.Equiv.ir_vs_netlist ~cycles:300 design result.Synth.Flow.netlist
  with
  | Ok n -> Printf.printf "equivalence vs netlist: %d cycles, bit exact\n" n
  | Error m ->
      Format.printf "MISMATCH: %a@." Backend.Equiv.pp_divergence m
