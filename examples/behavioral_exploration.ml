(* Design-space exploration with the behavioral synthesizer: the same
   dataflow (a small convolution kernel like the threshold stage's
   smoothing pre-filter) scheduled under different resource budgets,
   each variant synthesized to gates, mapped to LUTs and placed, so the
   latency/area/frequency trade-off of "behavioral synthesis overhead"
   (paper §12) can be read off one table.

   Run: dune exec examples/behavioral_exploration.exe *)

open Hdl
open Synth.Behavioral

let build_kernel () =
  (* y = k0*x0 + k1*x1 + k2*x2 + k3*x3 over 8-bit samples *)
  let g =
    create ~name:"conv4"
      ~inputs:
        [ ("x0", 8); ("x1", 8); ("x2", 8); ("x3", 8);
          ("k0", 8); ("k1", 8); ("k2", 8); ("k3", 8) ]
  in
  let products =
    List.map
      (fun i ->
        node g Mul
          [ Input (Printf.sprintf "x%d" i); Input (Printf.sprintf "k%d" i) ])
      [ 0; 1; 2; 3 ]
  in
  let rec sum = function
    | [ a ] -> a
    | a :: b :: rest -> sum (node g Add [ Node a; Node b ] :: rest)
    | [] -> assert false
  in
  output g "y" (Node (sum products));
  g

let () =
  print_endline "== Behavioral synthesis exploration: 4-tap convolution ==\n";
  let g = build_kernel () in
  Printf.printf "dataflow: %d operations\n\n" (node_count g);
  Printf.printf "%-24s %7s %7s %9s %9s %12s\n" "schedule" "states" "LUT4"
    "area GE" "fmax MHz" "layout fmax";
  List.iter
    (fun (name, sched) ->
      let m = to_module g sched in
      let nl = Backend.Opt.optimize (Backend.Lower.lower m) in
      let area = Backend.Area.analyze nl in
      let timing = Backend.Timing.analyze nl in
      let mapped = Backend.Techmap.map nl in
      let placed = Backend.Pnr.analyze (Backend.Pnr.place mapped) in
      Printf.printf "%-24s %7d %7d %9.1f %9.1f %12.1f\n" name (latency sched)
        (Backend.Techmap.lut_count mapped)
        area.Backend.Area.total timing.Backend.Timing.fmax_mhz
        placed.Backend.Pnr.fmax_mhz)
    [
      ("ASAP (4 multipliers)", asap g);
      ( "2 multipliers",
        list_schedule g ~resources:(fun k ->
            match k with Mul -> 2 | Add | Sub | And | Or | Xor | Mux -> 4) );
      ( "1 multiplier",
        list_schedule g ~resources:(fun k ->
            match k with Mul -> 1 | Add | Sub | And | Or | Xor | Mux -> 4) );
      ("1 of everything", list_schedule g ~resources:(fun _ -> 1));
    ];
  (* every variant must compute the same function *)
  print_endline "\ncross-checking all schedules give identical results...";
  let reference = to_module g (asap g) in
  List.iter
    (fun sched ->
      let m = to_module g sched in
      (* drive both modules with the same random stimulus, compare at
         their respective done times *)
      let eval m (xs, ks) =
        let sim = Rtl_sim.create m in
        List.iteri
          (fun i x -> Rtl_sim.set_input_int sim (Printf.sprintf "x%d" i) x)
          xs;
        List.iteri
          (fun i k -> Rtl_sim.set_input_int sim (Printf.sprintf "k%d" i) k)
          ks;
        Rtl_sim.set_input_int sim "start" 1;
        Rtl_sim.step sim;
        Rtl_sim.set_input_int sim "start" 0;
        let guard = ref 0 in
        while Rtl_sim.get_int sim "done" = 0 && !guard < 64 do
          Rtl_sim.step sim;
          incr guard
        done;
        Rtl_sim.get_int sim "y"
      in
      let stim = ([ 10; 20; 30; 40 ], [ 1; 2; 3; 4 ]) in
      assert (eval m stim = eval reference stim))
    [
      list_schedule g ~resources:(fun _ -> 1);
      list_schedule g ~resources:(fun k ->
          match k with Mul -> 2 | Add | Sub | And | Or | Xor | Mux -> 4);
    ];
  print_endline "all schedules agree.";
  let stim_value = (10 * 1) + (20 * 2) + (30 * 3) + (40 * 4) in
  Printf.printf "(reference value for the sample stimulus: %d mod 256 = %d)\n"
    stim_value (stim_value mod 256)
