(* Polymorphism example (§6): several ALU implementations behind one
   Execute interface; a polymorphic object is re-classed at run time
   ("new" on a derived class) and virtual calls dispatch through
   synthesized multiplexers.

   Run: dune exec examples/polymorphic_alu.exe *)

open Hdl
module CD = Osss.Class_def

let alu_base =
  CD.declare ~name:"Alu"
    [ CD.field "last_result" 8 ]
    [
      CD.fn_method ~name:"Execute" ~params:[ ("A", 8); ("B", 8) ] ~return:8
        (fun ctx -> ([], Ir.Binop (Ir.Add, ctx.CD.arg "A", ctx.CD.arg "B")));
      CD.fn_method ~name:"Name" ~params:[] ~return:8 (fun _ ->
          ([], Ir.Const (Bitvec.of_int ~width:8 (Char.code '+'))));
    ]

let variant name symbol op =
  CD.declare ~parent:alu_base ~name []
    [
      CD.fn_method ~name:"Execute" ~params:[ ("A", 8); ("B", 8) ] ~return:8
        (fun ctx -> ([], Ir.Binop (op, ctx.CD.arg "A", ctx.CD.arg "B")));
      CD.fn_method ~name:"Name" ~params:[] ~return:8 (fun _ ->
          ([], Ir.Const (Bitvec.of_int ~width:8 (Char.code symbol))));
    ]

let variants =
  [
    variant "AluAdd" '+' Ir.Add;
    variant "AluSub" '-' Ir.Sub;
    variant "AluXor" '^' Ir.Xor;
    variant "AluMul" '*' Ir.Mul;
  ]

let design () =
  let b = Builder.create "poly_alu_demo" in
  let reset = Builder.input b "reset" 1 in
  let select = Builder.input b "select" 2 in
  let a = Builder.input b "a" 8 in
  let x = Builder.input b "x" 8 in
  let y = Builder.output b "y" 8 in
  let op_name = Builder.output b "op_name" 8 in
  let poly = Osss.Polymorph.instantiate b ~name:"alu" ~base:alu_base variants in
  let _, result = Osss.Polymorph.vcall_fn poly "Execute" [ Ir.Var a; Ir.Var x ] in
  let _, name_e = Osss.Polymorph.vcall_fn poly "Name" [] in
  Builder.sync b "drive"
    [
      Ir.If
        ( Ir.Var reset,
          Osss.Polymorph.assign_class poly (List.hd variants),
          [
            (* re-class ("new") according to the selector *)
            Ir.Case
              ( Ir.Var select,
                List.mapi
                  (fun i v ->
                    ( Bitvec.of_int ~width:2 i,
                      Osss.Polymorph.assign_class poly v ))
                  variants,
                [] );
          ] );
      Ir.Assign (y, result);
      Ir.Assign (op_name, name_e);
    ];
  Builder.finish b

let () =
  print_endline "== OSSS polymorphism: one interface, four ALUs ==\n";
  let m = design () in
  let sim = Rtl_sim.create m in
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  Rtl_sim.set_input_int sim "a" 200;
  Rtl_sim.set_input_int sim "x" 100;
  Printf.printf "inputs: a=200 x=100\n";
  List.iteri
    (fun i _ ->
      Rtl_sim.set_input_int sim "select" i;
      Rtl_sim.step sim;
      Printf.printf "  select=%d  operation '%c'  y=%d\n" i
        (Char.chr (Rtl_sim.get_int sim "op_name"))
        (Rtl_sim.get_int sim "y"))
    variants;
  (* Synthesis: polymorphism = tag register + dispatch muxes (§8). *)
  let nl = Backend.Opt.optimize (Backend.Lower.lower m) in
  let area = Backend.Area.analyze nl in
  Printf.printf
    "\nsynthesized: %d cells, %.1f GE, %d flip-flops (tag register included)\n"
    (Backend.Netlist.cell_count nl)
    area.Backend.Area.total area.Backend.Area.n_ffs;
  match Backend.Equiv.ir_vs_netlist ~cycles:300 m nl with
  | Ok n -> Printf.printf "netlist equivalence: %d cycles, bit exact\n" n
  | Error e -> Format.printf "MISMATCH: %a@." Backend.Equiv.pp_divergence e
