(** End-to-end synthesis flows (Figure 6), structured as a pipeline of
    named passes.

    Both flows share the back end (lowering, optimization, timing and
    area analysis); they differ in the front-end artifacts they emit —
    the OSSS flow materializes the resolved standard-SystemC
    intermediate files, the conventional flow goes through VHDL text.
    The measured differences between the two ExpoCU implementations
    therefore come from the designs the methodologies produce, not from
    back-end bias.

    Each pass records its wall-clock time, the artifacts it produced,
    its metrics (cell/area/timing before and after for the
    netlist-rewriting passes) and, optionally, a formal invariant
    check: with [~check_invariants:true] every netlist-rewriting pass
    is followed by a BDD-based combinational equivalence check
    ({!Backend.Cec}) of its input against its output.  Deltas are also
    accumulated into the global [Perf] registry under
    [flow.<pass>.cells_delta] / [flow.<pass>.area_delta_ge] /
    [flow.<pass>.critical_delta_ps]. *)

type kind = Osss | Vhdl

val kind_name : kind -> string

type pass = {
  pass_name : string;
  elapsed_ms : float;  (** CPU time spent in the pass *)
  artifacts : string list;
      (** names of the intermediate files this pass contributed *)
  metrics : (string * float) list;
      (** ordered pass-specific figures, e.g. [cells_before],
          [cells_after], [area_after_ge], [critical_after_ns] *)
  invariant : Backend.Cec.verdict option;
      (** before-vs-after equivalence verdict, when requested and the
          pass rewrites the netlist *)
}

val pass_metric : pass -> string -> float option

type layout = {
  luts : int;
  ffs : int;
  depth : int;  (** LUT levels on the longest path *)
  grid : int * int;
  utilization : float;
  wirelength : float;
  post_fmax_mhz : float;
}

type module_breakdown = {
  bm_path : string;
      (** dot-separated instance path; [""] is the top module *)
  bm_cells : int;
  bm_ffs : int;
  bm_area : float;  (** gate equivalents *)
  bm_worst_ns : float;  (** worst arrival among the module's cells *)
  bm_power_mw : float option;
      (** average dynamic power, joined from the power pass when
          [~power_cycles] was given *)
}

type result = {
  flow_kind : kind;
  design : Ir.module_def;  (** as given, hierarchical *)
  flat : Ir.module_def;
  intermediate : (string * string) list;
      (** artifact name -> text, accumulated over all passes.
          Front-end artifacts are emitted at both hierarchy stages and
          labeled: unsuffixed names are pre-flatten, [_flat] names are
          post-flatten; [_netlist_raw.v] is the lowered netlist before
          optimization, [_netlist.v] after. *)
  netlist : Backend.Netlist.t;  (** optimized *)
  raw_cells : int;  (** cell count before optimization *)
  area : Backend.Area.report;
  timing : Backend.Timing.report;
  by_module : module_breakdown list;
      (** per-instance area/timing breakdown over the optimized netlist,
          keyed on the region annotations hierarchy-preserving lowering
          attached ({!Backend.Netlist.region_of}); sorted by path *)
  structure : string;  (** analyzer report *)
  passes : pass list;  (** the full pass trace, in execution order *)
  layout : layout option;  (** populated by [~layout:true] *)
  power : Power_dyn.report option;  (** populated by [~power_cycles] *)
}

val run :
  ?fold:bool ->
  ?check_invariants:bool ->
  ?layout:bool ->
  ?power_cycles:int ->
  kind ->
  Ir.module_def ->
  result
(** [check_invariants] (default [false]) runs CEC around every
    netlist-rewriting pass; [layout] (default [false]) extends the
    pipeline through technology mapping and place & route;
    [power_cycles] adds a dynamic-power pass that simulates the
    optimized netlist for that many cycles of deterministic seeded
    stimulus ({!Power_dyn.measure}; the techmap-aware library when
    [layout] also ran) and joins per-module averages into
    [by_module]. *)

val pass_table : result -> string
(** One line per pass: name, time, cell/area/timing deltas, invariant
    verdict. *)

val pass_json : pass -> Obs.Json.t
(** One pass as JSON: name, elapsed_ms, artifacts, metrics, and the
    invariant verdict when one was checked. *)

val result_json : result -> Obs.Json.t
(** The whole flow result as JSON — design, final area/timing, the
    pass table ({!pass_json} per pass), and layout when present.
    Machine-readable counterpart of {!summary}. *)

val summary : result -> string
(** Synthesis report: area, fmax, cell mix, then the pass table. *)
