(** End-to-end synthesis flows (Figure 6).

    Both flows share the back end (lowering, optimization, timing and
    area analysis); they differ in the front-end artifacts they emit —
    the OSSS flow materializes the resolved standard-SystemC
    intermediate files, the conventional flow goes through VHDL text.
    The measured differences between the two ExpoCU implementations
    therefore come from the designs the methodologies produce, not from
    back-end bias. *)

type kind = Osss | Vhdl

val kind_name : kind -> string

type result = {
  flow_kind : kind;
  design : Ir.module_def;  (** as given, hierarchical *)
  flat : Ir.module_def;
  intermediate : (string * string) list;
      (** artifact name -> text: resolved SystemC for the OSSS flow,
          VHDL for the conventional flow, structural Verilog netlist
          for both *)
  netlist : Backend.Netlist.t;  (** optimized *)
  raw_cells : int;  (** cell count before optimization *)
  area : Backend.Area.report;
  timing : Backend.Timing.report;
  structure : string;  (** analyzer report *)
}

val run : ?fold:bool -> kind -> Ir.module_def -> result

val summary : result -> string
(** One-paragraph synthesis report: area, fmax, cell mix. *)
