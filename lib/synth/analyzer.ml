type entry = {
  path : string;
  module_name : string;
  depth : int;
  stats : Ir.stats;
}

let analyze m =
  let rows = ref [] in
  let rec walk path depth (m : Ir.module_def) =
    rows :=
      {
        path;
        module_name = m.Ir.mod_name;
        depth;
        stats = Ir.module_stats m;
      }
      :: !rows;
    List.iter
      (fun (inst : Ir.instance) ->
        walk (path ^ "/" ^ inst.inst_name) (depth + 1) inst.inst_of)
      m.Ir.instances
  in
  walk ("/" ^ m.Ir.mod_name) 0 m;
  List.rev !rows

let report m =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "design library for %s\n" m.Ir.mod_name;
  p "%-40s %-24s %5s %5s %6s\n" "instance path" "module" "procs" "insts"
    "state";
  List.iter
    (fun e ->
      let indent = String.make (2 * e.depth) ' ' in
      p "%-40s %-24s %5d %5d %6d\n"
        (indent ^ e.path)
        e.module_name e.stats.Ir.n_processes e.stats.Ir.n_instances
        e.stats.Ir.n_state_bits)
    (analyze m);
  Buffer.contents buf

let total_state_bits m =
  List.fold_left (fun acc e -> acc + e.stats.Ir.n_state_bits) 0 (analyze m)
