(** The ODETTE analyzer (first tool of Figure 6): parses a design and
    builds a library describing its whole structure.  Here it walks the
    IR hierarchy and produces the per-module inventory that the second
    tool (the synthesizer) and the designer's structure view
    (Figure 12) consume. *)

type entry = {
  path : string;  (** hierarchical instance path *)
  module_name : string;
  depth : int;
  stats : Ir.stats;
}

val analyze : Ir.module_def -> entry list
(** Root first, pre-order. *)

val report : Ir.module_def -> string
(** Human-readable structure tree with per-module process/state
    counts — the textual equivalent of the paper's synthesis-tool
    screenshot (Figure 12). *)

val total_state_bits : Ir.module_def -> int
(** Register bits across the whole hierarchy. *)
