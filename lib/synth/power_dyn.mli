(** Dynamic power estimation from windowed switching activity.

    Folds a {!Cover.Activity} sampler (per-net toggle counts per cycle
    window, collected by [Backend.Nl_sim]/[Backend.Nl_wsim]) through a
    cell coefficient library into per-window power samples, cumulative
    energy and a per-module attribution aligned with the area/timing
    breakdowns of {!Flow.result}. *)

(** Cell coefficient library.  Capacitances are in fF (one transition
    costs [cap * vdd^2] fJ), leakage in uW per gate-equivalent. *)
type lib = {
  lib_name : string;
  cap_ff : Backend.Cell.kind -> float;
  clock_pin_cap_ff : float;  (** per flip-flop clock pin, charged 2x/cycle *)
  leakage_uw_per_ge : float;
}

(** Generic gate library; identical coefficients to the static
    estimator [Backend.Power] ([cap = 1.5 + 2*area] fF, 1.0 fF clock
    pins, 0.12 uW/GE leakage). *)
val default_lib : lib

(** Techmap-aware library: uniform LUT4-class load for combinational
    cells (6.0 fF), heavier flip-flops (8.0 fF) and clock network
    (1.2 fF pins, 0.15 uW/GE), as after [Backend.Techmap]. *)
val lut4_lib : lib

type sample = {
  s_index : int;
  s_start : int;  (** first cycle of the window *)
  s_cycles : int;
  s_energy_pj : float;
  s_power_mw : float;
  s_by_module : (string * float) list;  (** per-module power, mW *)
}

type module_row = {
  pm_path : string;
  pm_energy_pj : float;
  pm_avg_mw : float;
  pm_toggles : int;
}

type report = {
  p_lib : string;
  p_freq_mhz : float;
  p_vdd : float;
  p_window : int;
  p_cycles : int;
  p_samples : sample list;
  p_total_energy_pj : float;
  p_avg_mw : float;
  p_peak_mw : float;
  p_leakage_mw : float;
  p_by_module : module_row list;
  p_peak_why : string option;
      (** hottest net of the peak window as ["net@cycle"] — the
          subject/cycle pair [osss_debug --why] expects *)
}

(** [analyze nl act] converts sampled activity into a power report
    (the sampler is {!Cover.Activity.flush}ed first so a trailing
    partial window is counted).  Defaults: 66 MHz, 1.8 V,
    {!default_lib}. *)
val analyze :
  ?freq_mhz:float -> ?vdd:float -> ?lib:lib -> Backend.Netlist.t ->
  Cover.Activity.t -> report

(** [measure nl] simulates [nl] for [cycles] (default 256) under the
    deterministic seeded stimulus convention of [osss_debug]
    (reset-like inputs held released, every other input a pure function
    of seed/cycle/index) with the activity sampler on, then runs
    {!analyze} — a design-agnostic, reproducible power figure. *)
val measure :
  ?freq_mhz:float -> ?vdd:float -> ?lib:lib -> ?seed:int -> ?cycles:int ->
  ?window:int -> Backend.Netlist.t -> report

val to_json : report -> Obs.Json.t

(** Human-readable block: totals, peak, per-module table and the
    [osss_debug --why] pointer at the peak window. *)
val summary : report -> string

(** Write the power waveform as VCD: a real-valued [power_mw] in the
    root scope plus one per module (nested by instance path), stamped
    at each window boundary; the time unit is one simulation cycle. *)
val save_vcd : report -> string -> unit
