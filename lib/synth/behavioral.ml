type operand = Input of string | Node of int | Literal of Bitvec.t

type op_kind = Add | Sub | Mul | And | Or | Xor | Mux

type op = { kind : op_kind; operands : operand list; op_width : int }

type dfg = {
  dfg_name : string;
  inputs : (string * int) list;
  mutable ops : op list;  (* reverse order *)
  mutable n_ops : int;
  mutable outs : (string * operand) list;
}

let create ~name ~inputs =
  { dfg_name = name; inputs; ops = []; n_ops = 0; outs = [] }

let op_array g = Array.of_list (List.rev g.ops)

let operand_width g = function
  | Input name -> (
      match List.assoc_opt name g.inputs with
      | Some w -> w
      | None -> invalid_arg ("Behavioral: unknown input " ^ name))
  | Node i ->
      if i < 0 || i >= g.n_ops then invalid_arg "Behavioral: bad node id";
      (List.nth (List.rev g.ops) i).op_width
  | Literal bv -> Bitvec.width bv

let node g kind operands =
  let ws = List.map (operand_width g) operands in
  let op_width =
    match (kind, ws) with
    | Mux, [ 1; wt; we ] when wt = we -> wt
    | Mux, _ -> invalid_arg "Behavioral: mux needs [sel(1); a; b] same width"
    | (Add | Sub | Mul | And | Or | Xor), [ wa; wb ] when wa = wb -> wa
    | _ -> invalid_arg "Behavioral: binary op needs two equal-width operands"
  in
  g.ops <- { kind; operands; op_width } :: g.ops;
  g.n_ops <- g.n_ops + 1;
  g.n_ops - 1

let output g name operand =
  ignore (operand_width g operand);
  g.outs <- (name, operand) :: g.outs

let node_count g = g.n_ops

type schedule = { states : int array (* per op *); n_states : int }

let latency s = s.n_states

let ops_in_state s k =
  let acc = ref [] in
  Array.iteri (fun i st -> if st = k then acc := i :: !acc) s.states;
  List.rev !acc

let node_deps op =
  List.filter_map (function Node j -> Some j | Input _ | Literal _ -> None)
    op.operands

let asap g =
  let ops = op_array g in
  let states = Array.make (Array.length ops) 0 in
  Array.iteri
    (fun i op ->
      let earliest =
        List.fold_left (fun acc j -> max acc (states.(j) + 1)) 0 (node_deps op)
      in
      states.(i) <- earliest)
    ops;
  let n_states =
    Array.fold_left (fun acc s -> max acc (s + 1)) 1 states
  in
  { states; n_states = (if Array.length ops = 0 then 1 else n_states) }

let list_schedule g ~resources =
  let ops = op_array g in
  let n = Array.length ops in
  if n = 0 then { states = [||]; n_states = 1 }
  else begin
    (* Priority: height = longest path to a sink. *)
    let height = Array.make n 0 in
    for i = n - 1 downto 0 do
      List.iter
        (fun j -> height.(j) <- max height.(j) (height.(i) + 1))
        (node_deps ops.(i))
    done;
    let states = Array.make n (-1) in
    let remaining = ref n in
    let t = ref 0 in
    while !remaining > 0 do
      let used = Hashtbl.create 8 in
      let ready =
        List.filter
          (fun i ->
            states.(i) = -1
            && List.for_all (fun j -> states.(j) >= 0 && states.(j) < !t)
                 (node_deps ops.(i)))
          (List.init n (fun i -> i))
      in
      let by_priority =
        List.sort (fun a b -> compare (height.(b), a) (height.(a), b)) ready
      in
      List.iter
        (fun i ->
          let k = ops.(i).kind in
          let in_use = Option.value ~default:0 (Hashtbl.find_opt used k) in
          if in_use < resources k then begin
            Hashtbl.replace used k (in_use + 1);
            states.(i) <- !t;
            decr remaining
          end)
        by_priority;
      incr t;
      if !t > 4 * n + 4 then failwith "Behavioral.list_schedule: no progress"
    done;
    { states; n_states = Array.fold_left (fun acc s -> max acc (s + 1)) 1 states }
  end

(* ------------------------------------------------------------------ *)
(* Controller + datapath generation                                    *)

let to_module g schedule =
  let ops = op_array g in
  let n = Array.length ops in
  let b = Builder.create g.dfg_name in
  let start = Builder.input b "start" 1 in
  let in_vars =
    List.map (fun (nm, w) -> (nm, Builder.input b nm w)) g.inputs
  in
  let done_v = Builder.output b "done" 1 in
  let out_ports =
    List.map
      (fun (nm, operand) ->
        (nm, operand, Builder.output b nm (operand_width g operand)))
      (List.rev g.outs)
  in
  let fsm_w =
    let rec go k p = if p >= schedule.n_states + 2 then max k 1 else go (k + 1) (p * 2) in
    go 0 1
  in
  let fsm = Builder.wire b "fsm_state" fsm_w in
  let result_reg =
    Array.init n (fun i ->
        Builder.wire b (Printf.sprintf "op%d_r" i) ops.(i).op_width)
  in
  let operand_expr = function
    | Input nm -> Ir.Var (List.assoc nm in_vars)
    | Node j -> Ir.Var result_reg.(j)
    | Literal bv -> Ir.Const bv
  in
  (* Bind each op to a functional unit: per kind, ops in the same state
     occupy distinct units. *)
  let fu_of = Array.make n 0 in
  let fu_count : (op_kind, int) Hashtbl.t = Hashtbl.create 8 in
  for s = 0 to schedule.n_states - 1 do
    let used = Hashtbl.create 8 in
    List.iter
      (fun i ->
        let k = ops.(i).kind in
        let idx = Option.value ~default:0 (Hashtbl.find_opt used k) in
        Hashtbl.replace used k (idx + 1);
        fu_of.(i) <- idx;
        let current = Option.value ~default:0 (Hashtbl.find_opt fu_count k) in
        Hashtbl.replace fu_count k (max current (idx + 1)))
      (ops_in_state schedule s)
  done;
  (* Functional units: inputs selected by the FSM state, one comb
     process per unit. *)
  let fu_out : (op_kind * int, Ir.var) Hashtbl.t = Hashtbl.create 8 in
  let kind_name = function
    | Add -> "add"
    | Sub -> "sub"
    | Mul -> "mul"
    | And -> "and"
    | Or -> "or"
    | Xor -> "xor"
    | Mux -> "mux"
  in
  Hashtbl.iter
    (fun kind count ->
      for u = 0 to count - 1 do
        (* Widest op bound to this unit defines the port width. *)
        let bound =
          List.filter (fun i -> ops.(i).kind = kind && fu_of.(i) = u)
            (List.init n (fun i -> i))
        in
        let width =
          List.fold_left (fun acc i -> max acc ops.(i).op_width) 1 bound
        in
        let n_ins = match kind with Mux -> 3 | _ -> 2 in
        let in_sel =
          Array.init n_ins (fun j ->
              Builder.wire b
                (Printf.sprintf "fu_%s%d_in%d" (kind_name kind) u j)
                (if kind = Mux && j = 0 then 1 else width))
        in
        let out =
          Builder.wire b (Printf.sprintf "fu_%s%d_out" (kind_name kind) u) width
        in
        (* Input selection: a case over the fsm state. *)
        let arms =
          List.filter_map
            (fun i ->
              if ops.(i).kind = kind && fu_of.(i) = u then
                let exprs = List.map operand_expr ops.(i).operands in
                let widened =
                  List.mapi
                    (fun j e ->
                      let target =
                        if kind = Mux && j = 0 then 1 else width
                      in
                      if Ir.width_of e = target then e
                      else Ir.Resize (false, e, target))
                    exprs
                in
                Some
                  ( Bitvec.of_int ~width:fsm_w (schedule.states.(i) + 1),
                    List.mapi
                      (fun j e -> Ir.Assign (in_sel.(j), e))
                      widened )
              else None)
            (List.init n (fun i -> i))
        in
        let defaults =
          Array.to_list
            (Array.map
               (fun v -> Ir.Assign (v, Ir.Const (Bitvec.zero v.Ir.width)))
               in_sel)
        in
        Builder.comb b
          (Printf.sprintf "sel_%s%d" (kind_name kind) u)
          (defaults @ [ Ir.Case (Ir.Var fsm, arms, []) ]);
        let compute =
          match kind with
          | Add -> Ir.Binop (Ir.Add, Ir.Var in_sel.(0), Ir.Var in_sel.(1))
          | Sub -> Ir.Binop (Ir.Sub, Ir.Var in_sel.(0), Ir.Var in_sel.(1))
          | Mul -> Ir.Binop (Ir.Mul, Ir.Var in_sel.(0), Ir.Var in_sel.(1))
          | And -> Ir.Binop (Ir.And, Ir.Var in_sel.(0), Ir.Var in_sel.(1))
          | Or -> Ir.Binop (Ir.Or, Ir.Var in_sel.(0), Ir.Var in_sel.(1))
          | Xor -> Ir.Binop (Ir.Xor, Ir.Var in_sel.(0), Ir.Var in_sel.(1))
          | Mux ->
              Ir.Mux (Ir.Var in_sel.(0), Ir.Var in_sel.(1), Ir.Var in_sel.(2))
        in
        Builder.comb b
          (Printf.sprintf "fu_%s%d" (kind_name kind) u)
          [ Ir.Assign (out, compute) ];
        Hashtbl.replace fu_out (kind, u) out
      done)
    fu_count;
  (* Controller. *)
  let cst v = Ir.Const (Bitvec.of_int ~width:fsm_w v) in
  let capture_stmts =
    List.init n (fun i ->
        let out = Hashtbl.find fu_out (ops.(i).kind, fu_of.(i)) in
        let value =
          if out.Ir.width = ops.(i).op_width then Ir.Var out
          else Ir.Slice (Ir.Var out, ops.(i).op_width - 1, 0)
        in
        Ir.If
          ( Ir.Binop (Ir.Eq, Ir.Var fsm, cst (schedule.states.(i) + 1)),
            [ Ir.Assign (result_reg.(i), value) ],
            [] ))
  in
  let finish_stmts =
    [
      Ir.If
        ( Ir.Binop (Ir.Eq, Ir.Var fsm, cst schedule.n_states),
          [ Ir.Assign (fsm, cst 0); Ir.Assign (done_v, Ir.Const (Bitvec.of_bool true)) ]
          @ List.map
              (fun (_, operand, port) -> Ir.Assign (port, operand_expr operand))
              out_ports,
          [ Ir.Assign (fsm, Ir.Binop (Ir.Add, Ir.Var fsm, cst 1)) ] );
    ]
  in
  Builder.sync b "controller"
    [
      Ir.If
        ( Ir.Var start,
          [
            Ir.Assign (fsm, cst 1);
            Ir.Assign (done_v, Ir.Const (Bitvec.of_bool false));
          ],
          [
            Ir.If
              ( Ir.Binop (Ir.Ne, Ir.Var fsm, cst 0),
                capture_stmts @ finish_stmts,
                [] );
          ] );
    ]
  |> ignore;
  Builder.finish b
