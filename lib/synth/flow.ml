type kind = Osss | Vhdl

let kind_name = function Osss -> "osss" | Vhdl -> "vhdl"

type pass = {
  pass_name : string;
  elapsed_ms : float;
  artifacts : string list;
  metrics : (string * float) list;
  invariant : Backend.Cec.verdict option;
}

let pass_metric p key = List.assoc_opt key p.metrics

type layout = {
  luts : int;
  ffs : int;
  depth : int;
  grid : int * int;
  utilization : float;
  wirelength : float;
  post_fmax_mhz : float;
}

type module_breakdown = {
  bm_path : string;
  bm_cells : int;
  bm_ffs : int;
  bm_area : float;
  bm_worst_ns : float;
  bm_power_mw : float option;  (* joined from the power pass, when run *)
}

type result = {
  flow_kind : kind;
  design : Ir.module_def;
  flat : Ir.module_def;
  intermediate : (string * string) list;
  netlist : Backend.Netlist.t;
  raw_cells : int;
  area : Backend.Area.report;
  timing : Backend.Timing.report;
  by_module : module_breakdown list;
  structure : string;
  passes : pass list;
  layout : layout option;
  power : Power_dyn.report option;
}

(* Cell/area/timing snapshot of a netlist, prefixed "before_"/"after_". *)
let nl_metrics prefix nl =
  let a = Backend.Area.analyze nl in
  let t = Backend.Timing.analyze nl in
  [
    (prefix ^ "cells", float_of_int (Backend.Netlist.cell_count nl));
    (prefix ^ "area_ge", a.Backend.Area.total);
    (prefix ^ "critical_ns", t.Backend.Timing.critical_ns);
  ]

(* Mutable pass-trace accumulator threaded through [run]. *)
type trace = {
  mutable t_passes : pass list;  (* reverse order *)
  mutable t_artifacts : (string * string) list;  (* reverse order *)
}

let perf_deltas name metrics =
  let delta key scale counter_suffix =
    match
      (List.assoc_opt ("before_" ^ key) metrics,
       List.assoc_opt ("after_" ^ key) metrics)
    with
    | Some before, Some after ->
        Perf.incr
          ~by:(int_of_float (Float.round ((after -. before) *. scale)))
          (Perf.counter (Printf.sprintf "flow.%s.%s" name counter_suffix))
    | _ -> ()
  in
  delta "cells" 1.0 "cells_delta";
  delta "area_ge" 1.0 "area_delta_ge";
  delta "critical_ns" 1000.0 "critical_delta_ps"

(* Per-pass cell/area deltas feed a histogram each in addition to the
   plain counters, so a run report shows the distribution across
   passes, not just the final sum. *)
let hist_cells_delta = Obs.Hist.histogram "flow.pass_cells_removed"
let hist_elapsed = Obs.Hist.histogram "flow.pass_elapsed_us"

let run_pass tr name ?(artifacts = fun _ -> []) ?invariant
    ?(metrics = fun _ -> []) f =
  let exec () =
    let t0 = Sys.time () in
    let value = f () in
    let elapsed_ms = (Sys.time () -. t0) *. 1000.0 in
    let artifacts = artifacts value in
    let metrics = metrics value in
    let invariant = Option.map (fun check -> check value) invariant in
    Perf.incr (Perf.counter (Printf.sprintf "flow.%s.runs" name));
    perf_deltas name metrics;
    Obs.Hist.observe hist_elapsed (elapsed_ms *. 1000.0);
    (match
       ( List.assoc_opt "before_cells" metrics,
         List.assoc_opt "after_cells" metrics )
     with
    | Some before, Some after when before >= after ->
        Obs.Hist.observe hist_cells_delta (before -. after)
    | _ -> ());
    List.iter (fun (k, v) -> Obs.Span.add_attr k (Printf.sprintf "%g" v)) metrics;
    (match invariant with
    | Some v ->
        Obs.Span.add_attr "invariant"
          (Format.asprintf "%a" Backend.Cec.pp_verdict v)
    | None -> ());
    tr.t_artifacts <- List.rev_append artifacts tr.t_artifacts;
    tr.t_passes <-
      {
        pass_name = name;
        elapsed_ms;
        artifacts = List.map fst artifacts;
        metrics;
        invariant;
      }
      :: tr.t_passes;
    value
  in
  if Obs.Span.enabled () then Obs.Span.with_ ~name:("flow." ^ name) exec
  else exec ()

let run ?(fold = true) ?(check_invariants = false) ?(layout = false)
    ?power_cycles flow_kind (design : Ir.module_def) =
  (if Obs.Span.enabled () then
     Obs.Span.with_ ~name:"flow.run"
       ~attrs:[ ("kind", kind_name flow_kind); ("design", design.Ir.mod_name) ]
   else fun f -> f ())
  @@ fun () ->
  let tr = { t_passes = []; t_artifacts = [] } in
  let base = design.Ir.mod_name in
  run_pass tr "check" (fun () -> Ir.check_module design);
  let flat =
    run_pass tr "flatten"
      ~metrics:(fun flat ->
        [
          ( "before_modules",
            float_of_int (List.length (Elaborate.hierarchy design)) );
          ( "before_processes",
            float_of_int (List.length design.Ir.processes) );
          ("after_processes", float_of_int (List.length flat.Ir.processes));
        ])
      (fun () -> Elaborate.flatten design)
  in
  (* Front-end artifacts, at both hierarchy stages: the unsuffixed
     files render the design as written (pre-flatten), the [_flat]
     files the single module the back end actually consumes. *)
  ignore
    (run_pass tr "emit-frontend"
       ~artifacts:(fun arts -> arts)
       (fun () ->
         let common =
           [ (base ^ ".v", Verilog.emit design);
             (base ^ "_flat.v", Verilog.emit flat) ]
         in
         match flow_kind with
         | Osss ->
             (base ^ "_resolved_flat.cpp", Osss.Resolve.emit_module flat)
             :: common
         | Vhdl ->
             (base ^ ".vhd", Vhdl.emit design)
             :: (base ^ "_flat.vhd", Vhdl.emit flat)
             :: common));
  (* Lowering consumes the hierarchical design (the flatten pass above
     still feeds the front-end artifacts): each module lowers once into
     a memoized segment, so a repeat run — or the other flow of a pair
     sharing leaf IP — hits the cache instead of re-lowering. *)
  let cache_hits0, cache_misses0 = Backend.Lower.cache_stats () in
  let raw =
    run_pass tr "lower"
      ~artifacts:(fun raw ->
        [ (base ^ "_netlist_raw.v", Backend.Netlist.emit_verilog raw) ])
      ~metrics:(fun raw ->
        let hits, misses = Backend.Lower.cache_stats () in
        nl_metrics "after_" raw
        @ [
            ("cache_hits", float_of_int (hits - cache_hits0));
            ("cache_misses", float_of_int (misses - cache_misses0));
          ])
      (fun () -> Backend.Lower.lower ~fold design)
  in
  let cache_hits1, _ = Backend.Lower.cache_stats () in
  Perf.incr ~by:(cache_hits1 - cache_hits0)
    (Perf.counter "flow.lower.cache_hits");
  let netlist =
    run_pass tr "opt"
      ~artifacts:(fun nl ->
        [ (base ^ "_netlist.v", Backend.Netlist.emit_verilog nl) ])
      ~metrics:(fun nl -> nl_metrics "before_" raw @ nl_metrics "after_" nl)
      ?invariant:
        (if check_invariants then Some (fun nl -> Backend.Cec.check raw nl)
         else None)
      (fun () -> Backend.Opt.optimize raw)
  in
  let layout_report =
    if not layout then None
    else begin
      let mapped =
        run_pass tr "techmap"
          ~metrics:(fun mapped ->
            [
              ("after_luts", float_of_int (Backend.Techmap.lut_count mapped));
              ("after_ffs", float_of_int (Backend.Techmap.ff_count mapped));
              ("after_depth", float_of_int (Backend.Techmap.depth mapped));
            ])
          (fun () -> Backend.Techmap.map netlist)
      in
      let report =
        run_pass tr "pnr"
          ~metrics:(fun r ->
            let w, h = r.Backend.Pnr.grid in
            [
              ("after_grid_w", float_of_int w);
              ("after_grid_h", float_of_int h);
              ("after_wirelength", r.Backend.Pnr.wirelength);
              ("after_fmax_mhz", r.Backend.Pnr.fmax_mhz);
            ])
          (fun () -> Backend.Pnr.analyze (Backend.Pnr.place mapped))
      in
      Some
        {
          luts = Backend.Techmap.lut_count mapped;
          ffs = Backend.Techmap.ff_count mapped;
          depth = Backend.Techmap.depth mapped;
          grid = report.Backend.Pnr.grid;
          utilization = report.Backend.Pnr.utilization;
          wirelength = report.Backend.Pnr.wirelength;
          post_fmax_mhz = report.Backend.Pnr.fmax_mhz;
        }
    end
  in
  let area, timing, by_module, structure =
    run_pass tr "analyze"
      ~metrics:(fun (a, t, bm, _) ->
        [
          ("after_area_ge", a.Backend.Area.total);
          ("after_critical_ns", t.Backend.Timing.critical_ns);
          ("after_fmax_mhz", t.Backend.Timing.fmax_mhz);
          ("after_modules", float_of_int (List.length bm));
        ])
      (fun () ->
        let timing_rows = Backend.Timing.by_module netlist in
        let by_module =
          List.map
            (fun (r : Backend.Area.module_row) ->
              let worst =
                match
                  List.find_opt
                    (fun (t : Backend.Timing.module_row) ->
                      t.Backend.Timing.path = r.Backend.Area.path)
                    timing_rows
                with
                | Some t -> t.Backend.Timing.m_worst_ns
                | None -> 0.0
              in
              {
                bm_path = r.Backend.Area.path;
                bm_cells = r.Backend.Area.m_cells;
                bm_ffs = r.Backend.Area.m_ffs;
                bm_area = r.Backend.Area.m_area;
                bm_worst_ns = worst;
                bm_power_mw = None;
              })
            (Backend.Area.by_module netlist)
        in
        ( Backend.Area.analyze netlist,
          Backend.Timing.analyze netlist,
          by_module,
          Analyzer.report design ))
  in
  (* Dynamic power, under the deterministic seeded stimulus convention
     (see Power_dyn.measure): the techmap-aware library when the layout
     passes ran, the generic one otherwise.  Per-module averages join
     the area/timing breakdown rows like any other analysis column. *)
  let power_report =
    match power_cycles with
    | None -> None
    | Some cycles ->
        Some
          (run_pass tr "power"
             ~metrics:(fun (p : Power_dyn.report) ->
               [
                 ("after_energy_pj", p.Power_dyn.p_total_energy_pj);
                 ("after_avg_mw", p.Power_dyn.p_avg_mw);
                 ("after_peak_mw", p.Power_dyn.p_peak_mw);
               ])
             (fun () ->
               let lib =
                 if layout then Power_dyn.lut4_lib else Power_dyn.default_lib
               in
               Power_dyn.measure ~lib ~cycles netlist))
  in
  let by_module =
    match power_report with
    | None -> by_module
    | Some p ->
        List.map
          (fun bm ->
            {
              bm with
              bm_power_mw =
                Option.map
                  (fun (m : Power_dyn.module_row) -> m.Power_dyn.pm_avg_mw)
                  (List.find_opt
                     (fun (m : Power_dyn.module_row) ->
                       m.Power_dyn.pm_path = bm.bm_path)
                     p.Power_dyn.p_by_module);
            })
          by_module
  in
  {
    flow_kind;
    design;
    flat;
    intermediate = List.rev tr.t_artifacts;
    netlist;
    raw_cells = Backend.Netlist.cell_count raw;
    area;
    timing;
    by_module;
    structure;
    passes = List.rev tr.t_passes;
    layout = layout_report;
    power = power_report;
  }

let pass_table r =
  let buf = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "  %-14s %8s  %-18s %-22s %-16s %s\n" "pass" "ms" "cells" "area GE"
    "critical ns" "invariant";
  List.iter
    (fun pass ->
      let pair key fmt_one =
        match
          (pass_metric pass ("before_" ^ key), pass_metric pass ("after_" ^ key))
        with
        | Some b, Some a ->
            Printf.sprintf "%s -> %s" (fmt_one b) (fmt_one a)
        | None, Some a -> Printf.sprintf "-> %s" (fmt_one a)
        | _ -> ""
      in
      let cells = pair "cells" (fun v -> Printf.sprintf "%.0f" v) in
      let area = pair "area_ge" (fun v -> Printf.sprintf "%.1f" v) in
      let crit = pair "critical_ns" (fun v -> Printf.sprintf "%.2f" v) in
      let inv =
        match pass.invariant with
        | Some v -> Format.asprintf "%a" Backend.Cec.pp_verdict v
        | None -> ""
      in
      let extra =
        if pass.artifacts = [] then ""
        else Printf.sprintf "  [%d artifacts]" (List.length pass.artifacts)
      in
      p "  %-14s %8.1f  %-18s %-22s %-16s %s%s\n" pass.pass_name
        pass.elapsed_ms cells area crit inv extra)
    r.passes;
  Buffer.contents buf

let pass_json (p : pass) =
  let open Obs.Json in
  Obj
    ([
       ("name", String p.pass_name);
       ("elapsed_ms", Float p.elapsed_ms);
       ("artifacts", List (List.map (fun a -> String a) p.artifacts));
       ("metrics", Obj (List.map (fun (k, v) -> (k, Float v)) p.metrics));
     ]
    @
    match p.invariant with
    | Some v ->
        [
          ("invariant", String (Format.asprintf "%a" Backend.Cec.pp_verdict v));
        ]
    | None -> [])

let result_json r =
  let open Obs.Json in
  let layout =
    match r.layout with
    | None -> Null
    | Some l ->
        let w, h = l.grid in
        Obj
          [
            ("luts", Int l.luts);
            ("ffs", Int l.ffs);
            ("depth", Int l.depth);
            ("grid", List [ Int w; Int h ]);
            ("utilization", Float l.utilization);
            ("wirelength", Float l.wirelength);
            ("post_fmax_mhz", Float l.post_fmax_mhz);
          ]
  in
  Obj
    [
      ("flow", String (kind_name r.flow_kind));
      ("design", String r.design.Ir.mod_name);
      ("cells", Int (Backend.Netlist.cell_count r.netlist));
      ("raw_cells", Int r.raw_cells);
      ("area_ge", Float r.area.Backend.Area.total);
      ("ffs", Int r.area.Backend.Area.n_ffs);
      ("critical_ns", Float r.timing.Backend.Timing.critical_ns);
      ("fmax_mhz", Float r.timing.Backend.Timing.fmax_mhz);
      ("meets_66mhz", Bool (Backend.Timing.meets r.timing ~freq_mhz:66.0));
      ( "by_module",
        List
          (List.map
             (fun bm ->
               Obj
                 ([
                    ( "path",
                      String (if bm.bm_path = "" then "<top>" else bm.bm_path)
                    );
                    ("cells", Int bm.bm_cells);
                    ("ffs", Int bm.bm_ffs);
                    ("area_ge", Float bm.bm_area);
                    ("worst_ns", Float bm.bm_worst_ns);
                  ]
                 @
                 match bm.bm_power_mw with
                 | Some mw -> [ ("dynamic_mw", Float mw) ]
                 | None -> []))
             r.by_module) );
      ("passes", List (List.map pass_json r.passes));
      ("layout", layout);
      ( "power",
        match r.power with Some p -> Power_dyn.to_json p | None -> Null );
    ]

let summary r =
  let buf = Buffer.create 256 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "%s flow, design %s:\n" (kind_name r.flow_kind) r.design.Ir.mod_name;
  p "  cells: %d (from %d before optimization)\n"
    (Backend.Netlist.cell_count r.netlist)
    r.raw_cells;
  p "  area: %.1f GE (%d flip-flops)\n" r.area.Backend.Area.total
    r.area.Backend.Area.n_ffs;
  p "  timing: %.2f ns critical path, fmax %.1f MHz\n"
    r.timing.Backend.Timing.critical_ns r.timing.Backend.Timing.fmax_mhz;
  p "  66 MHz target: %s\n"
    (if Backend.Timing.meets r.timing ~freq_mhz:66.0 then "met" else "missed");
  (match r.by_module with
  | [] | [ _ ] -> ()
  | rows ->
      let with_power = r.power <> None in
      p "  per-module:\n";
      p "    %-24s %6s %5s %9s %9s%s\n" "instance" "cells" "ffs" "area GE"
        "worst ns"
        (if with_power then "    dyn mW" else "");
      List.iter
        (fun bm ->
          p "    %-24s %6d %5d %9.1f %9.2f%s\n"
            (if bm.bm_path = "" then "<top>" else bm.bm_path)
            bm.bm_cells bm.bm_ffs bm.bm_area bm.bm_worst_ns
            (match bm.bm_power_mw with
            | Some mw -> Printf.sprintf " %9.4f" mw
            | None -> if with_power then Printf.sprintf " %9s" "-" else ""))
        rows);
  (match r.power with
  | Some pr -> p "  %s" (Power_dyn.summary pr)
  | None -> ());
  (match r.layout with
  | Some l ->
      let w, h = l.grid in
      p
        "  layout: %d LUT4 + %d FFs (depth %d) on %dx%d (util %.0f%%), \
         wirelength %.0f, post-layout fmax %.1f MHz\n"
        l.luts l.ffs l.depth w h (100.0 *. l.utilization) l.wirelength
        l.post_fmax_mhz
  | None -> ());
  p "  passes:\n%s" (pass_table r);
  Buffer.contents buf
