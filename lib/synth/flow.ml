type kind = Osss | Vhdl

let kind_name = function Osss -> "osss" | Vhdl -> "vhdl"

type result = {
  flow_kind : kind;
  design : Ir.module_def;
  flat : Ir.module_def;
  intermediate : (string * string) list;
  netlist : Backend.Netlist.t;
  raw_cells : int;
  area : Backend.Area.report;
  timing : Backend.Timing.report;
  structure : string;
}

let run ?(fold = true) flow_kind (design : Ir.module_def) =
  Ir.check_module design;
  let flat = Elaborate.flatten design in
  let intermediate =
    match flow_kind with
    | Osss ->
        [
          (design.Ir.mod_name ^ "_resolved.cpp", Osss.Resolve.emit_module flat);
          (design.Ir.mod_name ^ ".v", Verilog.emit design);
        ]
    | Vhdl ->
        [
          (design.Ir.mod_name ^ ".vhd", Vhdl.emit design);
          (design.Ir.mod_name ^ ".v", Verilog.emit design);
        ]
  in
  let raw = Backend.Lower.lower ~fold flat in
  let netlist = Backend.Opt.optimize raw in
  let intermediate =
    intermediate
    @ [ (design.Ir.mod_name ^ "_netlist.v", Backend.Netlist.emit_verilog netlist) ]
  in
  {
    flow_kind;
    design;
    flat;
    intermediate;
    netlist;
    raw_cells = Backend.Netlist.cell_count raw;
    area = Backend.Area.analyze netlist;
    timing = Backend.Timing.analyze netlist;
    structure = Analyzer.report design;
  }

let summary r =
  let buf = Buffer.create 256 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "%s flow, design %s:\n" (kind_name r.flow_kind) r.design.Ir.mod_name;
  p "  cells: %d (from %d before optimization)\n"
    (Backend.Netlist.cell_count r.netlist)
    r.raw_cells;
  p "  area: %.1f GE (%d flip-flops)\n" r.area.Backend.Area.total
    r.area.Backend.Area.n_ffs;
  p "  timing: %.2f ns critical path, fmax %.1f MHz\n"
    r.timing.Backend.Timing.critical_ns r.timing.Backend.Timing.fmax_mhz;
  p "  66 MHz target: %s\n"
    (if Backend.Timing.meets r.timing ~freq_mhz:66.0 then "met" else "missed");
  Buffer.contents buf
