(** Behavioral synthesis: scheduling a dataflow description into a
    finite-state machine plus a shared datapath.

    This is the "SystemC compiler" stage of the paper's flow — the one
    whose "restrictions and unnecessary overhead" the authors hold
    responsible for the OSSS netlist's lower frequency (§12).  The
    generated controller registers every operation result at state
    boundaries and shares functional units through input multiplexers,
    which is precisely that overhead; the ablation bench quantifies it
    against hand-scheduled RTL.

    The description is a pure dataflow graph: nodes are operations over
    earlier nodes or module inputs. *)

type operand = Input of string | Node of int | Literal of Bitvec.t

type op_kind = Add | Sub | Mul | And | Or | Xor | Mux

type dfg

val create : name:string -> inputs:(string * int) list -> dfg
val node : dfg -> op_kind -> operand list -> int
(** Adds an operation; returns its node id.  [Mux] takes
    [sel; then_; else_].  Raises [Invalid_argument] on arity or width
    errors. *)

val output : dfg -> string -> operand -> unit
val node_count : dfg -> int

(** {1 Scheduling} *)

type schedule

val asap : dfg -> schedule
(** As-soon-as-possible: unlimited resources, latency = critical path. *)

val list_schedule : dfg -> resources:(op_kind -> int) -> schedule
(** Resource-constrained list scheduling (priority = longest path to a
    sink). *)

val latency : schedule -> int
(** Number of FSM execution states. *)

val ops_in_state : schedule -> int -> int list

(** {1 Controller generation} *)

val to_module : dfg -> schedule -> Ir.module_def
(** Ports: [start] (1 bit), every dfg input, [done] (1 bit), every
    declared output.  Protocol: pulse [start] with inputs held stable;
    [done] rises with valid outputs after [latency] + 1 cycles and
    stays until the next [start].  Functional units are shared within
    each kind according to the schedule. *)
