(* Dynamic power from windowed switching activity.

   The estimator folds a Cover.Activity sampler (per-net toggle counts
   per cycle window, collected by Nl_sim/Nl_wsim) through a cell
   coefficient library into per-window energy/power samples, a total
   energy figure and a per-module attribution keyed by the netlist's
   region tables — the same join the area/timing breakdowns use, so all
   three tables line up row for row.

   Units: capacitance in fF, voltage in V, so one transition costs
   C*V^2 femtojoules; energies are reported in pJ and powers in mW at
   the configured clock.  The default library reproduces the static
   estimator (Backend.Power): every coefficient below is documented so
   the worked example in docs/OBSERVABILITY.md can be checked by
   hand. *)

type lib = {
  lib_name : string;
  cap_ff : Backend.Cell.kind -> float;  (* output load per transition *)
  clock_pin_cap_ff : float;  (* per flip-flop clock pin, charged twice/cycle *)
  leakage_uw_per_ge : float;  (* static power per gate-equivalent *)
}

(* Generic gate library: load grows with cell drive/area exactly like
   Backend.Power.cap_ff, so dynamic-power totals here and static
   averages there agree on the same activity. *)
let default_lib =
  {
    lib_name = "generic";
    cap_ff = (fun kind -> 1.5 +. (2.0 *. Backend.Cell.area kind));
    clock_pin_cap_ff = 1.0;
    leakage_uw_per_ge = 0.12;
  }

(* Techmap-aware library: after LUT4 mapping every combinational cell
   presents one LUT input load regardless of its pre-map kind, and the
   flip-flops carry the heavier clock network of an FPGA-class fabric. *)
let lut4_lib =
  {
    lib_name = "lut4";
    cap_ff =
      (fun kind ->
        match kind with Backend.Cell.Dff -> 8.0 | _ -> 6.0);
    clock_pin_cap_ff = 1.2;
    leakage_uw_per_ge = 0.15;
  }

type sample = {
  s_index : int;
  s_start : int;  (* first cycle of the window *)
  s_cycles : int;
  s_energy_pj : float;  (* switching + clock + leakage inside the window *)
  s_power_mw : float;
  s_by_module : (string * float) list;  (* per-module power, mW *)
}

type module_row = {
  pm_path : string;
  pm_energy_pj : float;
  pm_avg_mw : float;
  pm_toggles : int;
}

type report = {
  p_lib : string;
  p_freq_mhz : float;
  p_vdd : float;
  p_window : int;
  p_cycles : int;
  p_samples : sample list;
  p_total_energy_pj : float;
  p_avg_mw : float;
  p_peak_mw : float;
  p_leakage_mw : float;
  p_by_module : module_row list;
  p_peak_why : string option;
      (* "net@cycle" for the hottest net of the peak window — feed it to
         osss_debug --why to explain the activity behind the peak *)
}

let mw_of_pj energy_pj cycles f_hz =
  if cycles = 0 then 0.0
  else energy_pj *. 1e-12 /. (float_of_int cycles /. f_hz) *. 1e3

let analyze ?(freq_mhz = 66.0) ?(vdd = 1.8) ?(lib = default_lib) nl act =
  Cover.Activity.flush act;
  let f_hz = freq_mhz *. 1e6 in
  let v2 = vdd *. vdd in
  let n_nets = Backend.Netlist.net_count nl in
  (* Driver kind and region per net; nets without a driving cell
     (primary inputs, never-driven placeholders) carry no modelled
     load, matching the static estimator which iterates cells. *)
  let kind_of = Array.make n_nets None in
  let n_ffs = ref 0 in
  List.iter
    (fun (c : Backend.Netlist.cell) ->
      kind_of.(c.out) <- Some c.kind;
      if c.kind = Backend.Cell.Dff then incr n_ffs)
    (Backend.Netlist.cells nl);
  let region_of = Array.init n_nets (fun n -> Backend.Netlist.region_of nl n) in
  let area = (Backend.Area.analyze nl).Backend.Area.total in
  let leak_w = area *. lib.leakage_uw_per_ge *. 1e-6 in
  (* Per-cycle background energy (fJ): clock pins charge twice a cycle,
     leakage burns continuously. *)
  let clock_fj_cycle = 2.0 *. float_of_int !n_ffs *. lib.clock_pin_cap_ff *. v2 in
  let leak_fj_cycle = if f_hz > 0.0 then leak_w /. f_hz *. 1e15 else 0.0 in
  let mod_energy = Hashtbl.create 16 in
  let mod_toggles = Hashtbl.create 16 in
  let add tbl k v =
    let cur = match Hashtbl.find_opt tbl k with Some x -> x | None -> 0.0 in
    Hashtbl.replace tbl k (cur +. v)
  in
  let samples =
    List.map
      (fun (w : Cover.Activity.window) ->
        let win_mod = Hashtbl.create 8 in
        let sw_fj = ref 0.0 in
        List.iter
          (fun (slot, count) ->
            match kind_of.(slot) with
            | None -> ()
            | Some kind ->
                let fj = float_of_int count *. lib.cap_ff kind *. v2 in
                sw_fj := !sw_fj +. fj;
                let r = region_of.(slot) in
                add win_mod r fj;
                add mod_energy r fj;
                add mod_toggles r (float_of_int count))
          w.Cover.Activity.w_counts;
        let background =
          float_of_int w.w_cycles *. (clock_fj_cycle +. leak_fj_cycle)
        in
        let energy_pj = (!sw_fj +. background) *. 1e-3 in
        {
          s_index = w.w_index;
          s_start = w.w_start;
          s_cycles = w.w_cycles;
          s_energy_pj = energy_pj;
          s_power_mw = mw_of_pj energy_pj w.w_cycles f_hz;
          s_by_module =
            List.sort compare
              (Hashtbl.fold
                 (fun path fj acc ->
                   (path, mw_of_pj (fj *. 1e-3) w.w_cycles f_hz) :: acc)
                 win_mod []);
        })
      (Cover.Activity.windows act)
  in
  let cycles = Cover.Activity.cycles act in
  let total_energy_pj =
    List.fold_left (fun acc s -> acc +. s.s_energy_pj) 0.0 samples
  in
  let peak_mw =
    List.fold_left (fun acc s -> Float.max acc s.s_power_mw) 0.0 samples
  in
  let by_module =
    List.sort compare
      (Hashtbl.fold
         (fun path fj acc ->
           {
             pm_path = path;
             pm_energy_pj = fj *. 1e-3;
             pm_avg_mw = mw_of_pj (fj *. 1e-3) cycles f_hz;
             pm_toggles =
               int_of_float
                 (match Hashtbl.find_opt mod_toggles path with
                 | Some t -> t
                 | None -> 0.0);
           }
           :: acc)
         mod_energy [])
  in
  (* Hottest net of the hottest window, named exactly as the simulators
     label nets ("bus[3]", "u_hist.count[2]"), stamped with the cycle
     that closed the window — the subject/cycle pair osss_debug --why
     expects. *)
  let peak_why =
    match Cover.Activity.peak act with
    | None -> None
    | Some w -> (
        let best =
          List.fold_left
            (fun best (slot, count) ->
              if kind_of.(slot) = None then best
              else
                match best with
                | Some (_, c) when c >= count -> best
                | _ -> Some (slot, count))
            None w.Cover.Activity.w_counts
        in
        match best with
        | None -> None
        | Some (slot, _) ->
            let labels = Backend.Nl_sim.Sched.net_labels nl in
            Some
              (Printf.sprintf "%s@%d" labels.(slot)
                 (w.w_start + w.w_cycles)))
  in
  {
    p_lib = lib.lib_name;
    p_freq_mhz = freq_mhz;
    p_vdd = vdd;
    p_window = Cover.Activity.window_size act;
    p_cycles = cycles;
    p_samples = samples;
    p_total_energy_pj = total_energy_pj;
    p_avg_mw = mw_of_pj total_energy_pj cycles f_hz;
    p_peak_mw = peak_mw;
    p_leakage_mw = leak_w *. 1e3;
    p_by_module = by_module;
    p_peak_why = peak_why;
  }

(* Deterministic seeded stimulus, the osss_debug convention: every
   input is a pure function of (seed, cycle, input index) and
   reset-like inputs are held released so the circuit operates.  This
   gives Flow a design-agnostic way to exercise any netlist for a
   power figure that is reproducible across runs and machines. *)
let drive_inputs sim inputs seed c =
  List.iteri
    (fun i (name, width) ->
      let v =
        match name with
        | "ext_reset" | "reset" | "rst" -> Bitvec.zero width
        | _ ->
            let rng = Random.State.make [| seed; c; i |] in
            Bitvec.init width (fun _ -> Random.State.bool rng)
      in
      Backend.Nl_sim.set_input sim name v)
    inputs

let measure ?freq_mhz ?vdd ?lib ?(seed = 42) ?(cycles = 256) ?window nl =
  let sim = Backend.Nl_sim.create nl in
  Backend.Nl_sim.enable_power_sampler ?window sim;
  let inputs =
    List.map
      (fun (name, nets) -> (name, Array.length nets))
      (Backend.Netlist.inputs nl)
  in
  for c = 0 to cycles - 1 do
    drive_inputs sim inputs seed c;
    Backend.Nl_sim.step sim
  done;
  match Backend.Nl_sim.power_activity sim with
  | Some act -> analyze ?freq_mhz ?vdd ?lib nl act
  | None -> assert false

let to_json r =
  let open Obs.Json in
  Obj
    [
      ("lib", String r.p_lib);
      ("freq_mhz", Float r.p_freq_mhz);
      ("vdd", Float r.p_vdd);
      ("window", Int r.p_window);
      ("cycles", Int r.p_cycles);
      ("total_energy_pj", Float r.p_total_energy_pj);
      ("avg_mw", Float r.p_avg_mw);
      ("peak_mw", Float r.p_peak_mw);
      ("leakage_mw", Float r.p_leakage_mw);
      ( "peak_why",
        match r.p_peak_why with Some s -> String s | None -> Null );
      ( "samples",
        List
          (List.map
             (fun s ->
               Obj
                 [
                   ("index", Int s.s_index);
                   ("start_cycle", Int s.s_start);
                   ("cycles", Int s.s_cycles);
                   ("energy_pj", Float s.s_energy_pj);
                   ("power_mw", Float s.s_power_mw);
                 ])
             r.p_samples) );
      ( "by_module",
        List
          (List.map
             (fun m ->
               Obj
                 [
                   ( "path",
                     String (if m.pm_path = "" then "<top>" else m.pm_path) );
                   ("energy_pj", Float m.pm_energy_pj);
                   ("avg_mw", Float m.pm_avg_mw);
                   ("toggles", Int m.pm_toggles);
                 ])
             r.p_by_module) );
    ]

let summary r =
  let buf = Buffer.create 256 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "dynamic power (%s lib, %.0f MHz, %.1f V, window %d):\n" r.p_lib
    r.p_freq_mhz r.p_vdd r.p_window;
  p "  total energy: %.3f pJ over %d cycles\n" r.p_total_energy_pj r.p_cycles;
  p "  average: %.4f mW  peak window: %.4f mW  leakage: %.4f mW\n" r.p_avg_mw
    r.p_peak_mw r.p_leakage_mw;
  (match r.p_peak_why with
  | Some why -> p "  peak activity: osss_debug --why %s\n" why
  | None -> ());
  (match r.p_by_module with
  | [] | [ _ ] -> ()
  | rows ->
      p "  per-module:\n";
      p "    %-24s %10s %9s %8s\n" "instance" "energy pJ" "avg mW" "toggles";
      List.iter
        (fun m ->
          p "    %-24s %10.3f %9.4f %8d\n"
            (if m.pm_path = "" then "<top>" else m.pm_path)
            m.pm_energy_pj m.pm_avg_mw m.pm_toggles)
        rows);
  Buffer.contents buf

(* Real-valued power waveform: total in the root scope plus one trace
   per module, stamped at each window boundary (time unit = cycles). *)
let save_vcd r path =
  let vcd =
    Vcd_writer.create ~version:"osss power trace" ~timescale:"1ns"
      ~top:"power" ()
  in
  let total = Vcd_writer.register_real vcd ~initial:0.0 ~name:"power_mw" () in
  let mods =
    List.filter_map
      (fun m ->
        if m.pm_path = "" then None
        else
          Some
            ( m.pm_path,
              Vcd_writer.register_real vcd ~scope:m.pm_path ~initial:0.0
                ~name:"power_mw" () ))
      r.p_by_module
  in
  List.iter
    (fun s ->
      Vcd_writer.change_real vcd ~time:s.s_start total s.s_power_mw;
      List.iter
        (fun (path, id) ->
          let v =
            match List.assoc_opt path s.s_by_module with
            | Some mw -> mw
            | None -> 0.0
          in
          Vcd_writer.change_real vcd ~time:s.s_start id v)
        mods)
    r.p_samples;
  (match List.rev r.p_samples with
  | last :: _ ->
      Vcd_writer.change_real vcd
        ~time:(last.s_start + last.s_cycles)
        total last.s_power_mw
  | [] -> ());
  Vcd_writer.save vcd path
