(** Multicore campaign runtime: a fixed-size [Domain] pool with
    work-stealing shard deques and deterministic shard→result ordering.

    The simulation campaigns this repo runs — stuck-at fault campaigns,
    multi-seed coverage closure, N-way differential sweeps — are
    embarrassingly parallel: a campaign splits into independent
    {e shards} (a slice of the fault list, one stimulus seed), each
    shard builds its own engines and the results merge by shard index.
    This module supplies the runtime underneath them:

    {ul
    {- {b Determinism.}  [map pool f n] always returns
       [[| f 0; …; f (n-1) |]]: every shard writes its result into its
       own slot, so the output order never depends on execution order,
       and [jobs = 1] runs the shards inline on the calling domain
       without spawning anything — bit-identical to a serial loop.}
    {- {b Work stealing.}  Shards are dealt round-robin into one deque
       per participant; an idle participant pops its own deque from the
       front and steals from the back of a neighbour's, so an uneven
       shard (one fault that shrinks expensively) does not serialize
       the batch.}
    {- {b Failure propagation.}  The first shard to raise wins: its
       exception is captured with shard provenance, every not-yet-begun
       shard is cancelled (skipped), the pool drains cleanly and the
       caller receives {!Shard_failure}.}}

    {b Thread affinity}: the shard function runs on an arbitrary pool
    domain.  Everything it touches must be domain-safe or domain-local
    — in particular, simulation engines must be created {e inside} the
    shard and never shared across shards (see the contract note in
    [Engine]).  The observability substrate ([Perf], [Obs.Log],
    [Obs.Span], [Obs.Hist]) is domain-safe and may be used freely from
    shards. *)

exception
  Shard_failure of {
    shard : int;  (** index of the raising shard *)
    label : string;  (** human label of the raising shard *)
    exn : exn;  (** the original exception *)
    backtrace : string;  (** backtrace captured on the shard's domain *)
  }
(** Raised by {!map} (and {!Pool.map}) when a shard raises: the batch
    is aborted — shards not yet started are skipped — and the original
    exception re-raised with shard provenance. *)

val default_jobs : unit -> int
(** The process-wide default worker count used when [?jobs] is omitted.
    Initialized from the [OSSS_JOBS] environment variable when set,
    otherwise [Domain.recommended_domain_count ()]; override with
    {!set_default_jobs} (the [--jobs N] CLI flag does). *)

val set_default_jobs : int -> unit
(** Clamped to at least 1. *)

val chunks : shards:int -> 'a list -> 'a list array
(** [chunks ~shards xs] splits [xs] into at most [shards] contiguous,
    order-preserving chunks whose lengths differ by at most one
    (concatenating the chunks yields [xs]).  Always returns at least
    one chunk; never returns more chunks than [xs] has elements —
    except for the empty list, which yields one empty chunk. *)

(** {1 Persistent pools}

    A pool spawns its worker domains once and reuses them across
    batches — use one pool for a whole campaign instead of paying the
    domain spawn/join cost per {!map}. *)

module Pool : sig
  type t

  val create : ?jobs:int -> unit -> t
  (** [create ~jobs ()] spawns [jobs - 1] worker domains (the caller
      participates as the remaining worker during {!map}).  [jobs]
      defaults to {!default_jobs}[ ()] and is clamped to at least 1;
      [jobs = 1] spawns nothing and {!map} degenerates to an inline
      serial loop. *)

  val jobs : t -> int

  val map : ?label:(int -> string) -> t -> (int -> 'a) -> int -> 'a array
  (** [map pool f n] evaluates [f i] for [i] in [0 .. n-1] across the
      pool and returns the results indexed by [i] — deterministically,
      regardless of execution interleaving.  [label] names shards for
      failure provenance and the ["par.shard_ms"] histogram.  A batch
      issued from inside a running shard (nested parallelism) falls
      back to an inline serial loop rather than deadlocking.  Raises
      {!Shard_failure} if any shard raises. *)

  val shutdown : t -> unit
  (** Join the worker domains.  Idempotent; the pool is unusable
      afterwards. *)

  val with_pool : ?jobs:int -> (t -> 'a) -> 'a
  (** [create], run, [shutdown] (also on exception). *)
end

(** {1 One-shot maps} *)

val map : ?jobs:int -> ?label:(int -> string) -> (int -> 'a) -> int -> 'a array
(** [map ~jobs f n] is {!Pool.with_pool}[ ~jobs (fun p -> Pool.map p f n)]
    — with the serial fast path: [jobs = 1] (or [n <= 1]) runs inline
    without touching domains at all. *)

val map_list : ?jobs:int -> ?label:(int -> string) -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list f xs]: {!map} over a list, preserving order. *)
