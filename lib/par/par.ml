exception
  Shard_failure of {
    shard : int;
    label : string;
    exn : exn;
    backtrace : string;
  }

let () =
  Printexc.register_printer (function
    | Shard_failure { shard; label; exn; _ } ->
        Some
          (Printf.sprintf "Par.Shard_failure(shard %d [%s]: %s)" shard label
             (Printexc.to_string exn))
    | _ -> None)

(* Campaign-runtime movement counters and the per-shard wall-clock
   histogram, visible in run reports next to the simulator figures. *)
let ctr_batches = Perf.counter "par.batches"
let ctr_shards = Perf.counter "par.shards"
let ctr_steals = Perf.counter "par.steals"
let h_shard_ms = Obs.Hist.histogram "par.shard_ms"

let default =
  let initial =
    match Sys.getenv_opt "OSSS_JOBS" with
    | Some s -> ( match int_of_string_opt s with Some n -> max 1 n | None -> 1)
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  Atomic.make initial

let default_jobs () = Atomic.get default
let set_default_jobs n = Atomic.set default (max 1 n)

let chunks ~shards xs =
  let n = List.length xs in
  let s = max 1 (min shards (max 1 n)) in
  let arr = Array.of_list xs in
  Array.init s (fun i ->
      let lo = i * n / s and hi = (i + 1) * n / s in
      Array.to_list (Array.sub arr lo (hi - lo)))

let default_label i = "shard-" ^ string_of_int i

(* The serial path: exactly what a plain [Array.init] would do, plus
   the failure-provenance wrapper.  [jobs = 1] maps (and nested maps)
   go through here, which is what makes --jobs 1 bit-identical to the
   pre-pool code. *)
let serial_map ~label f n =
  Perf.incr ctr_batches;
  Array.init n (fun i ->
      Perf.incr ctr_shards;
      let t0 = Unix.gettimeofday () in
      match f i with
      | v ->
          if Obs.Hist.enabled () then
            Obs.Hist.observe h_shard_ms ((Unix.gettimeofday () -. t0) *. 1000.0);
          v
      | exception e ->
          let backtrace = Printexc.get_backtrace () in
          raise (Shard_failure { shard = i; label = label i; exn = e; backtrace }))

(* One mutex-protected deque of shard indices per pool participant.
   The owner pops from the front; thieves steal from the back, so a
   stolen shard is the one the owner would have reached last. *)
module Deque = struct
  type t = { m : Mutex.t; ids : int array; mutable lo : int; mutable hi : int }

  let make ids = { m = Mutex.create (); ids; lo = 0; hi = Array.length ids }

  let pop_front d =
    Mutex.protect d.m (fun () ->
        if d.lo < d.hi then begin
          let x = d.ids.(d.lo) in
          d.lo <- d.lo + 1;
          Some x
        end
        else None)

  let steal_back d =
    Mutex.protect d.m (fun () ->
        if d.lo < d.hi then begin
          d.hi <- d.hi - 1;
          Some d.ids.(d.hi)
        end
        else None)

  let drain d =
    Mutex.protect d.m (fun () ->
        let n = d.hi - d.lo in
        d.lo <- d.hi;
        n)
end

type failure = {
  f_shard : int;
  f_label : string;
  f_exn : exn;
  f_backtrace : string;
}

(* One batch of shards: the per-participant deques, the shard body
   (which never raises — failures land in [failed]), and the
   completion latch.  [pending] counts shards not yet executed or
   cancelled; the participant that brings it to zero broadcasts
   [done_cv]. *)
type batch = {
  deques : Deque.t array;
  run : int -> unit;
  pending : int Atomic.t;
  failed : failure option Atomic.t;
  done_m : Mutex.t;
  done_cv : Condition.t;
}

module Pool = struct
  type t = {
    pjobs : int;
    m : Mutex.t;
    work_cv : Condition.t;
    mutable gen : int;  (* batch generation, under [m] *)
    mutable current : (int * batch) option;  (* under [m] *)
    mutable stopping : bool;  (* under [m] *)
    mutable workers : unit Domain.t list;
  }

  let jobs t = t.pjobs

  let finish_shards batch n =
    if n > 0 then
      if Atomic.fetch_and_add batch.pending (-n) - n = 0 then
        Mutex.protect batch.done_m (fun () ->
            Condition.broadcast batch.done_cv)

  (* Cancellation: after a failure, every queued shard is dropped
     (counted off [pending] so the latch still releases). *)
  let drain_all batch =
    let dropped =
      Array.fold_left (fun acc d -> acc + Deque.drain d) 0 batch.deques
    in
    finish_shards batch dropped

  let next_shard batch me =
    match Deque.pop_front batch.deques.(me) with
    | Some _ as s -> s
    | None ->
        let n = Array.length batch.deques in
        let rec steal k =
          if k >= n then None
          else
            match Deque.steal_back batch.deques.((me + k) mod n) with
            | Some _ as s ->
                Perf.incr ctr_steals;
                s
            | None -> steal (k + 1)
        in
        steal 1

  (* Participant [me] works the batch until no shard is reachable. *)
  let work batch me =
    let rec go () =
      match next_shard batch me with
      | None -> ()
      | Some shard ->
          batch.run shard;
          finish_shards batch 1;
          if Atomic.get batch.failed <> None then drain_all batch;
          go ()
    in
    go ()

  let worker_loop pool me =
    let rec loop last_gen =
      Mutex.lock pool.m;
      let rec await () =
        if pool.stopping then None
        else
          match pool.current with
          | Some (g, b) when g <> last_gen -> Some (g, b)
          | _ ->
              Condition.wait pool.work_cv pool.m;
              await ()
      in
      let job = await () in
      Mutex.unlock pool.m;
      match job with
      | None -> ()
      | Some (g, batch) ->
          work batch me;
          loop g
    in
    loop 0

  let create ?jobs () =
    let pjobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
    let pool =
      {
        pjobs;
        m = Mutex.create ();
        work_cv = Condition.create ();
        gen = 0;
        current = None;
        stopping = false;
        workers = [];
      }
    in
    (* Participant 0 is the caller; workers take participant slots
       1 .. jobs-1. *)
    pool.workers <-
      List.init (pjobs - 1) (fun w ->
          Domain.spawn (fun () -> worker_loop pool (w + 1)));
    pool

  let shutdown pool =
    let workers =
      Mutex.protect pool.m (fun () ->
          pool.stopping <- true;
          Condition.broadcast pool.work_cv;
          let ws = pool.workers in
          pool.workers <- [];
          ws)
    in
    List.iter Domain.join workers

  let with_pool ?jobs f =
    let pool = create ?jobs () in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

  let map ?(label = default_label) pool f n =
    if n = 0 then [||]
    else begin
      let nested =
        pool.pjobs > 1 && Mutex.protect pool.m (fun () -> pool.current <> None)
      in
      if pool.pjobs = 1 || n = 1 || nested then serial_map ~label f n
      else begin
        Perf.incr ctr_batches;
        let results = Array.make n None in
        let participants = min pool.pjobs n in
        (* Deal shards round-robin so every participant starts with
           nearby work; stealing rebalances the tail. *)
        let dealt = Array.make participants [] in
        for i = n - 1 downto 0 do
          dealt.(i mod participants) <- i :: dealt.(i mod participants)
        done;
        let deques = Array.map (fun ids -> Deque.make (Array.of_list ids)) dealt in
        let failed = Atomic.make None in
        let run i =
          if Atomic.get failed = None then begin
            Perf.incr ctr_shards;
            let t0 = Unix.gettimeofday () in
            (match f i with
            | v ->
                results.(i) <- Some v;
                if Obs.Hist.enabled () then
                  Obs.Hist.observe h_shard_ms
                    ((Unix.gettimeofday () -. t0) *. 1000.0)
            | exception e ->
                let bt = Printexc.get_backtrace () in
                ignore
                  (Atomic.compare_and_set failed None
                     (Some
                        {
                          f_shard = i;
                          f_label = label i;
                          f_exn = e;
                          f_backtrace = bt;
                        })))
          end
        in
        let batch =
          {
            deques;
            run;
            pending = Atomic.make n;
            failed;
            done_m = Mutex.create ();
            done_cv = Condition.create ();
          }
        in
        Mutex.protect pool.m (fun () ->
            pool.gen <- pool.gen + 1;
            pool.current <- Some (pool.gen, batch);
            Condition.broadcast pool.work_cv);
        (* The caller works the batch too, then waits for stragglers. *)
        work batch 0;
        Mutex.lock batch.done_m;
        while Atomic.get batch.pending > 0 do
          Condition.wait batch.done_cv batch.done_m
        done;
        Mutex.unlock batch.done_m;
        Mutex.protect pool.m (fun () -> pool.current <- None);
        match Atomic.get batch.failed with
        | Some { f_shard; f_label; f_exn; f_backtrace } ->
            raise
              (Shard_failure
                 {
                   shard = f_shard;
                   label = f_label;
                   exn = f_exn;
                   backtrace = f_backtrace;
                 })
        | None ->
            Array.map
              (function Some v -> v | None -> assert false (* all ran *))
              results
      end
    end
end

let map ?jobs ?(label = default_label) f n =
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  if jobs = 1 || n <= 1 then (if n = 0 then [||] else serial_map ~label f n)
  else Pool.with_pool ~jobs (fun pool -> Pool.map ~label pool f n)

let map_list ?jobs ?label f xs =
  let arr = Array.of_list xs in
  Array.to_list (map ?jobs ?label (fun i -> f arr.(i)) (Array.length arr))
