type t = { cname : string; mutable count : int }

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
      let c = { cname = name; count = 0 } in
      Hashtbl.replace registry name c;
      c

let incr ?(by = 1) c = c.count <- c.count + by
let value c = c.count
let name c = c.cname
let reset c = c.count <- 0
let reset_all () = Hashtbl.iter (fun _ c -> c.count <- 0) registry

let all () =
  Hashtbl.fold (fun name c acc -> (name, c.count) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
