type t = { cname : string; count : int Atomic.t }

(* Counters are bumped from campaign shards running on pool domains
   (Par), so the counts are atomics and the name→counter registry is
   mutex-protected.  [counter] is called once per site (toplevel
   handles) or per flow pass — never on a simulation hot path — so the
   lock is uncontended where it matters. *)
let lock = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let counter name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
          let c = { cname = name; count = Atomic.make 0 } in
          Hashtbl.replace registry name c;
          c)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.count by)
let value c = Atomic.get c.count
let name c = c.cname
let reset c = Atomic.set c.count 0

let reset_all () =
  Mutex.protect lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.count 0) registry)

let all () =
  Mutex.protect lock (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c.count) :: acc)
        registry [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Scoped observation: counters are process-global, so concurrent
   engine runs (e.g. the lockstep phases of Backend.Equiv) cannot
   reset them mid-run without clobbering each other.  A snapshot
   captures every registered counter; diffing two snapshots (or a
   snapshot against the live registry) attributes the delta to the
   phase between them. *)
type snapshot = (string * int) list

let snapshot () = all ()

let diff ~before ~after =
  List.filter_map
    (fun (name, v_after) ->
      let v_before = Option.value ~default:0 (List.assoc_opt name before) in
      if v_after <> v_before then Some (name, v_after - v_before) else None)
    after

let since before = diff ~before ~after:(snapshot ())
