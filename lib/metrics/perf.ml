type t = { cname : string; mutable count : int }

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
      let c = { cname = name; count = 0 } in
      Hashtbl.replace registry name c;
      c

let incr ?(by = 1) c = c.count <- c.count + by
let value c = c.count
let name c = c.cname
let reset c = c.count <- 0
let reset_all () = Hashtbl.iter (fun _ c -> c.count <- 0) registry

let all () =
  Hashtbl.fold (fun name c acc -> (name, c.count) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Scoped observation: counters are process-global, so concurrent
   engine runs (e.g. the lockstep phases of Backend.Equiv) cannot
   reset them mid-run without clobbering each other.  A snapshot
   captures every registered counter; diffing two snapshots (or a
   snapshot against the live registry) attributes the delta to the
   phase between them. *)
type snapshot = (string * int) list

let snapshot () = all ()

let diff ~before ~after =
  List.filter_map
    (fun (name, v_after) ->
      let v_before = Option.value ~default:0 (List.assoc_opt name before) in
      if v_after <> v_before then Some (name, v_after - v_before) else None)
    after

let since before = diff ~before ~after:(snapshot ())
