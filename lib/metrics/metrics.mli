(** Development-effort proxies.

    The paper reports implementation effort in days (I²C master: one
    day in OSSS, an estimated two in plain SystemC, slightly more in
    VHDL RTL).  Days are not reproducible; code volume and decision
    density are.  This module measures both the design source (via IR
    statistics) and the emitted artifacts (text), and converts them to
    an effort estimate with a fixed productivity constant so the
    *ratios* between methodologies can be compared with the paper's. *)

module Perf = Perf
(** Global runtime counters (gate evaluations, process runs, skipped
    work) bumped by the simulators — see {!Perf}. *)

type code_metrics = {
  lines : int;  (** non-blank, non-comment *)
  tokens : int;  (** rough lexical tokens *)
  decisions : int;  (** branch points: if/case/mux occurrences *)
}

val of_text : string -> code_metrics
(** Counts over generated source text (C++/VHDL/Verilog style comments
    are stripped). *)

val of_module : Ir.module_def -> code_metrics
(** Counts over the IR: statements as lines, expression nodes as
    tokens, [If]/[Case]/[Mux] as decisions.  Hierarchy included. *)

val effort_days : code_metrics -> float
(** [tokens / 400.0 + decisions / 25.0] — a fixed two-factor model; only
    ratios are meaningful. *)

val pp : Format.formatter -> code_metrics -> unit
