module Perf = Perf

type code_metrics = { lines : int; tokens : int; decisions : int }

(* Strip // and -- line comments and /* */ blocks, then count. *)
let of_text text =
  let n = String.length text in
  let buf = Buffer.create n in
  let rec scan i in_block =
    if i >= n then ()
    else if in_block then
      if i + 1 < n && text.[i] = '*' && text.[i + 1] = '/' then
        scan (i + 2) false
      else scan (i + 1) true
    else if i + 1 < n && text.[i] = '/' && text.[i + 1] = '*' then
      scan (i + 2) true
    else if
      i + 1 < n
      && ((text.[i] = '/' && text.[i + 1] = '/')
         || (text.[i] = '-' && text.[i + 1] = '-'))
    then begin
      let rec skip j = if j < n && text.[j] <> '\n' then skip (j + 1) else j in
      scan (skip i) false
    end
    else begin
      Buffer.add_char buf text.[i];
      scan (i + 1) false
    end
  in
  scan 0 false;
  let stripped = Buffer.contents buf in
  let lines =
    String.split_on_char '\n' stripped
    |> List.filter (fun l -> String.trim l <> "")
    |> List.length
  in
  let is_word c =
    match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
  in
  let tokens = ref 0 and in_word = ref false in
  String.iter
    (fun c ->
      if is_word c then begin
        if not !in_word then incr tokens;
        in_word := true
      end
      else begin
        in_word := false;
        match c with
        | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '{' | '}' | ';' | ',' -> ()
        | _ -> incr tokens
      end)
    stripped;
  let count_word w =
    let wl = String.length w and sl = String.length stripped in
    let boundary j = j < 0 || j >= sl || not (is_word stripped.[j]) in
    let rec go i acc =
      if i + wl > sl then acc
      else if
        String.sub stripped i wl = w && boundary (i - 1) && boundary (i + wl)
      then go (i + wl) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  let decisions =
    count_word "if" + count_word "case" + count_word "when" + count_word "switch"
    + count_word "elsif"
  in
  { lines; tokens = !tokens; decisions }

let rec stmt_decisions (st : Ir.stmt) =
  match st with
  | Assign (_, e) | Assign_slice (_, _, e) -> expr_decisions e
  | Array_write (_, i, e) -> expr_decisions i + expr_decisions e
  | If (c, t, els) ->
      1 + expr_decisions c
      + List.fold_left (fun a s -> a + stmt_decisions s) 0 t
      + List.fold_left (fun a s -> a + stmt_decisions s) 0 els
  | Case (s, arms, dflt) ->
      1 + expr_decisions s
      + List.fold_left
          (fun a (_, b) ->
            a + List.fold_left (fun a s -> a + stmt_decisions s) 0 b)
          0 arms
      + List.fold_left (fun a s -> a + stmt_decisions s) 0 dflt

and expr_decisions (e : Ir.expr) =
  match e with
  | Const _ | Var _ -> 0
  | Array_read (_, i) -> expr_decisions i
  | Unop (_, e) | Resize (_, e, _) | Slice (e, _, _) -> expr_decisions e
  | Binop (_, a, b) | Concat (a, b) -> expr_decisions a + expr_decisions b
  | Mux (s, t, e) -> 1 + expr_decisions s + expr_decisions t + expr_decisions e

let of_module m =
  let rec walk (m : Ir.module_def) =
    let stats = Ir.module_stats m in
    let decisions =
      List.fold_left
        (fun acc proc ->
          let body =
            match proc with
            | Ir.Comb { body; _ } | Ir.Sync { body; _ } -> body
          in
          acc + List.fold_left (fun a s -> a + stmt_decisions s) 0 body)
        0 m.Ir.processes
    in
    let children =
      List.map (fun (i : Ir.instance) -> walk i.inst_of) m.Ir.instances
    in
    List.fold_left
      (fun (l, t, d) (l', t', d') -> (l + l', t + t', d + d'))
      (stats.Ir.n_statements, stats.Ir.n_expr_nodes, decisions)
      children
  in
  let lines, tokens, decisions = walk m in
  { lines; tokens; decisions }

let effort_days m =
  (float_of_int m.tokens /. 400.0) +. (float_of_int m.decisions /. 25.0)

let pp fmt m =
  Format.fprintf fmt "%d lines, %d tokens, %d decision points" m.lines
    m.tokens m.decisions
