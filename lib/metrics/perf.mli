(** Global, process-wide performance counters.

    The simulators (RTL interpreter, gate-level netlist simulator) bump
    these counters on their hot paths so that scheduling improvements —
    activity-based process skipping, dirty-set gate evaluation — are
    observable from tests and benchmarks without threading a context
    through every call site.  Counters are registered by name on first
    use; looking the same name up twice returns the same counter.

    Counters are {b domain-safe}: counts are atomics and the registry
    is mutex-protected, so parallel campaign shards (the [Par] domain
    pool) increment shared counters without loss.  [incr] from many
    domains sums exactly; [snapshot]/[diff] taken while shards run see
    some consistent intermediate value per counter. *)

type t

val counter : string -> t
(** [counter name] returns the counter registered under [name], creating
    it (at zero) on first use. *)

val incr : ?by:int -> t -> unit

val value : t -> int

val name : t -> string

val reset : t -> unit

val reset_all : unit -> unit
(** Zeroes every registered counter (they stay registered). *)

val all : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name. *)

(** {1 Scoped observation}

    Counters are process-global; phases that run concurrently with
    other instrumented work (the search/shrink/replay phases of
    [Backend.Equiv], a pass inside a longer flow) must not reset them
    mid-run.  Instead, snapshot before and diff after. *)

type snapshot

val snapshot : unit -> snapshot
(** Capture every registered counter's current value. *)

val diff : before:snapshot -> after:snapshot -> (string * int) list
(** Per-counter delta between two snapshots, sorted by name; zero
    deltas are dropped.  Counters registered after [before] count from
    zero. *)

val since : snapshot -> (string * int) list
(** [diff ~before ~after:(snapshot ())]. *)
