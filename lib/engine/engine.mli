(** First-class simulation engines.

    Every simulator in the flow — the behavioural kernel level, the RTL
    interpreter and the gate-level netlist simulator — is wrapped into
    one interface: named, sized ports driven with {!set_input} and read
    with {!get}, a {!settle}/{!step}/{!run} execution model with one
    [step] per clock cycle, and activity counters ({!stats}).  The
    N-way lockstep differential harness ([Backend.Equiv]), the traces
    and the benchmarks all consume this interface, so a new simulation
    backend only has to provide an {!S} implementation to plug into
    equivalence checking, waveforms and the performance reports.

    {b Thread affinity.}  Engines are {e not} domain-safe: every
    backend keeps plain mutable simulation state (net values, pending
    queues, schedulers) with no internal locking.  The contract for
    parallel campaigns (the [Par] domain pool) is {e one engine per
    domain, never shared}: create an engine {e inside} the shard that
    steps it — the engine factories of [Backend.Equiv] exist exactly
    for this — and let it die with the shard.  Read-only inputs
    ([Netlist.t], [Ir.module_def]) may be shared across shards; live
    engines, checkpoints and collectors obtained from an engine
    ([cover], [power_activity]) must stay on the domain that created
    them.  The process-global observability substrate ([Perf],
    [Obs.Span], [Obs.Hist], [Obs.Log]) is domain-safe, but the causal
    event ring ([Obs.Event]) is a single per-process buffer — engines
    with {!S.enable_events} on must not step concurrently. *)

module type S = sig
  type t

  val kind : string
  (** Static backend name, e.g. ["rtl-interp"] or ["netlist-event"]. *)

  val inputs : t -> (string * int) list
  (** Input ports with widths, in declaration order. *)

  val outputs : t -> (string * int) list

  val set_input : t -> string -> Bitvec.t -> unit
  val get : t -> string -> Bitvec.t
  (** Current value of any port (inputs echo their last driven value). *)

  val settle : t -> unit
  (** Propagate combinational activity without a clock edge. *)

  val step : t -> unit
  (** One full clock cycle. *)

  val cycles : t -> int

  val lanes : t -> int
  (** Independent stimulus lanes the backend advances per step: 1 for
      the scalar backends, the lane count of a word-parallel netlist
      engine.  All lanes share the clock — {!step} advances every
      lane. *)

  val set_input_lane : t -> lane:int -> string -> Bitvec.t -> unit
  (** Drive one lane only.  Lane 0 of a scalar backend is
      {!set_input}; any other lane raises [Invalid_argument]. *)

  val get_lane : t -> lane:int -> string -> Bitvec.t
  (** The port value seen by [lane] (lane 0 is {!get}). *)

  val stats : t -> (string * int) list
  (** Engine-specific activity counters (same figures the global
      [Perf] registry accumulates), e.g. gate evaluations. *)

  val probes : t -> (string * int) list
  (** Named internal observation points with widths — hierarchical,
      dot-separated names ("u_hist.count[3]") when the backend carries
      hierarchy information; [[]] for backends without internal
      visibility. *)

  val probe : t -> string -> Bitvec.t
  (** Current value of one {!probes} entry; raises [Not_found] for an
      unknown probe name. *)

  val enable_cover : t -> unit
  (** Start per-bit toggle coverage (a no-op for backends without
      coverage support). *)

  val cover : t -> Cover.Toggle.t option
  (** The live toggle collector once {!enable_cover} was called;
      [None] before, or always for unsupported backends. *)

  val enable_power_sampler : t -> unit
  (** Start windowed switching-activity sampling for dynamic power
      estimation (a no-op for backends without net-level activity;
      lane 0 on word-parallel backends). *)

  val power_activity : t -> Cover.Activity.t option
  (** The live activity sampler once {!enable_power_sampler} was
      called — feed it to [Synth.Power_dyn.analyze]; [None] before, or
      always for unsupported backends. *)

  val enable_events : t -> unit
  (** Start emitting causal events into the global [Obs.Event] log
      (enabling the log if needed).  Backends without event support
      still enable the global log so surrounding instrumentation
      records. *)

  val events : t -> Obs.Event.t list
  (** The retained causal events, oldest first (currently the global
      log — backends share one ring). *)

  val checkpoint : t -> (unit -> unit) option
  (** Capture the simulation state now and return the closure that
      rewinds to it; [None] for backends without checkpoint support. *)
end

type t = Pack : (module S with type t = 'a) * 'a * string -> t
(** An engine instance packed with its implementation and an instance
    label (used in mismatch reports and trace scopes). *)

val pack : ?label:string -> (module S with type t = 'a) -> 'a -> t
(** [label] defaults to the implementation's [kind]. *)

(** {1 Generic operations over packed engines} *)

val label : t -> string
val kind : t -> string
val inputs : t -> (string * int) list
val outputs : t -> (string * int) list
val set_input : t -> string -> Bitvec.t -> unit
val set_input_int : t -> string -> int -> unit
val get : t -> string -> Bitvec.t
val get_int : t -> string -> int
val settle : t -> unit
val step : t -> unit
val run : t -> int -> unit
val cycles : t -> int
val lanes : t -> int
val set_input_lane : t -> lane:int -> string -> Bitvec.t -> unit
val get_lane : t -> lane:int -> string -> Bitvec.t
val stats : t -> (string * int) list
val probes : t -> (string * int) list
val probe : t -> string -> Bitvec.t
val enable_cover : t -> unit
val cover : t -> Cover.Toggle.t option
val enable_power_sampler : t -> unit
val power_activity : t -> Cover.Activity.t option
val enable_events : t -> unit
val events : t -> Obs.Event.t list

(** {1 Checkpoint / replay}

    Record cheap, replay rich: take checkpoints during a fast
    uninstrumented run, then {!restore} the one before a failure and
    re-run the window with the event log (and any other observability)
    switched on. *)

type checkpoint = {
  ck_cycle : int;  (** cycle count when the checkpoint was taken *)
  ck_label : string;  (** engine instance label *)
  ck_restore : unit -> unit;
}

val checkpoint : t -> checkpoint option
(** Capture the engine's simulation state; [None] for backends without
    checkpoint support (the behavioural kernel backend).  Restoring is
    only meaningful on the engine the checkpoint was taken from. *)

val restore : checkpoint -> unit
val checkpoint_cycle : checkpoint -> int
val checkpoint_label : checkpoint -> string

val inject_fault : ?from_cycle:int -> ?lane:int -> port:string -> t -> t
(** A wrapper engine that behaves exactly like the inner one except
    that reads of output [port] come back with the least significant
    bit flipped once the engine has stepped at least [from_cycle]
    (default [0]) cycles.  Without [lane] the fault corrupts every
    lane's view (and {!get}); with [lane l] only {!get_lane}[ ~lane:l]
    — and {!get} iff [l = 0] — is corrupted, pinning one fault to one
    lane of a multi-lane engine.  Used to validate that the
    differential harness detects, localizes and shrinks a divergence,
    and by the lane-parallel fault campaigns.  While the [Obs.Event]
    log is enabled, the first corrupted read of each armed cycle also
    records a [Fault] event on the port (caused by whatever last moved
    it), so causality queries over the corrupted value reach the
    injection.  Raises [Invalid_argument] for an unknown port or an
    out-of-range lane. *)

(** {1 Consolidated tracing}

    One VCD document for any set of engines: every port of every engine
    is declared (scoped per engine label) and sampled against the
    engines' common cycle count.  Engines exposing {!probes} also get
    their internal observation points declared, nested into VCD scopes
    following the probes' dot-separated hierarchical paths (e.g. net
    ["u_hist.count[3]"] of engine [nl] appears as signal [count[3]] in
    scope [u_hist] inside scope [nl]). *)

module Trace : sig
  type tracer

  val create : ?top:string -> t list -> tracer
  val sample : tracer -> unit
  (** Record the current port values at the (maximum) engine cycle
      count; only changed values are written. *)

  val signal_count : tracer -> int
  val contents : tracer -> string
  val save : tracer -> string -> unit
end
