module type S = sig
  type t

  val kind : string
  val inputs : t -> (string * int) list
  val outputs : t -> (string * int) list
  val set_input : t -> string -> Bitvec.t -> unit
  val get : t -> string -> Bitvec.t
  val settle : t -> unit
  val step : t -> unit
  val cycles : t -> int
  val lanes : t -> int
  val set_input_lane : t -> lane:int -> string -> Bitvec.t -> unit
  val get_lane : t -> lane:int -> string -> Bitvec.t
  val stats : t -> (string * int) list
  val probes : t -> (string * int) list
  val probe : t -> string -> Bitvec.t
  val enable_cover : t -> unit
  val cover : t -> Cover.Toggle.t option
  val enable_power_sampler : t -> unit
  val power_activity : t -> Cover.Activity.t option
  val enable_events : t -> unit
  val events : t -> Obs.Event.t list
  val checkpoint : t -> (unit -> unit) option
end

type t = Pack : (module S with type t = 'a) * 'a * string -> t

let pack (type a) ?label (m : (module S with type t = a)) (state : a) =
  let module M = (val m) in
  Pack (m, state, Option.value label ~default:M.kind)

let label (Pack (_, _, l)) = l
let kind (Pack ((module M), _, _)) = M.kind
let inputs (Pack ((module M), e, _)) = M.inputs e
let outputs (Pack ((module M), e, _)) = M.outputs e
let set_input (Pack ((module M), e, _)) name bv = M.set_input e name bv
let get (Pack ((module M), e, _)) name = M.get e name
let settle (Pack ((module M), e, _)) = M.settle e
let step (Pack ((module M), e, _)) = M.step e
let cycles (Pack ((module M), e, _)) = M.cycles e
let lanes (Pack ((module M), e, _)) = M.lanes e

let set_input_lane (Pack ((module M), e, _)) ~lane name bv =
  M.set_input_lane e ~lane name bv

let get_lane (Pack ((module M), e, _)) ~lane name = M.get_lane e ~lane name
let stats (Pack ((module M), e, _)) = M.stats e
let probes (Pack ((module M), e, _)) = M.probes e
let probe (Pack ((module M), e, _)) name = M.probe e name
let enable_cover (Pack ((module M), e, _)) = M.enable_cover e
let cover (Pack ((module M), e, _)) = M.cover e

let enable_power_sampler (Pack ((module M), e, _)) = M.enable_power_sampler e
let power_activity (Pack ((module M), e, _)) = M.power_activity e
let enable_events (Pack ((module M), e, _)) = M.enable_events e
let events (Pack ((module M), e, _)) = M.events e
let checkpoint_thunk (Pack ((module M), e, _)) = M.checkpoint e

(* Engine-level checkpoints: the backend's restore closure stamped with
   the cycle and instance label it was taken at. *)
type checkpoint = {
  ck_cycle : int;
  ck_label : string;
  ck_restore : unit -> unit;
}

let checkpoint (Pack ((module M), e, l)) =
  match M.checkpoint e with
  | None -> None
  | Some restore ->
      Some { ck_cycle = M.cycles e; ck_label = l; ck_restore = restore }

let restore ck = ck.ck_restore ()
let checkpoint_cycle ck = ck.ck_cycle
let checkpoint_label ck = ck.ck_label

let run e n =
  for _ = 1 to n do
    step e
  done

let port_width ports name =
  match List.assoc_opt name ports with
  | Some w -> w
  | None -> raise Not_found

let set_input_int e name n =
  set_input e name (Bitvec.of_int ~width:(port_width (inputs e) name) n)

let get_int e name = Bitvec.to_int (get e name)

(* ------------------------------------------------------------------ *)
(* Fault injection: a transparent wrapper corrupting one output.       *)

type fault = {
  inner : t;
  fault_port : string;
  from_cycle : int;
  fault_lane : int option;  (* [None]: every lane (and the plain view) *)
  mutable last_fault_emit : int;
      (* cycle of the last Fault event, so an armed cycle with many
         reads records the corruption once *)
}

module Faulty = struct
  type t = fault

  let kind = "fault"
  let inputs f = inputs f.inner
  let outputs f = outputs f.inner
  let set_input f name bv = set_input f.inner name bv

  let flip v = Bitvec.set_bit v 0 (not (Bitvec.get v 0))
  let armed f = cycles f.inner >= f.from_cycle

  (* Insert the corruption into the causal record, once per armed
     cycle: a [Fault] event on the port, caused by whatever last moved
     it, so a [why] query over the corrupted value reaches the
     injection instead of dead-ending at the healthy driver. *)
  let ev_fault f v =
    let cyc = cycles f.inner in
    if Obs.Event.enabled () && f.last_fault_emit <> cyc then begin
      f.last_fault_emit <- cyc;
      let cause =
        match Obs.Event.latest ~subject:f.fault_port () with
        | Some e -> e.Obs.Event.seq
        | None -> Obs.Event.no_cause
      in
      ignore
        (Obs.Event.emit ~cycle:cyc
           ?lane:f.fault_lane
           ~value:(Bool.to_int (Bitvec.get v 0))
           ~cause Obs.Event.Fault f.fault_port)
    end;
    v

  let get f name =
    let v = get f.inner name in
    if
      name = f.fault_port && armed f
      && (match f.fault_lane with None | Some 0 -> true | Some _ -> false)
    then ev_fault f (flip v)
    else v

  let settle f = settle f.inner
  let step f = step f.inner
  let cycles f = cycles f.inner
  let lanes f = lanes f.inner
  let set_input_lane f ~lane name bv = set_input_lane f.inner ~lane name bv

  let get_lane f ~lane name =
    let v = get_lane f.inner ~lane name in
    if
      name = f.fault_port && armed f
      && (match f.fault_lane with None -> true | Some l -> l = lane)
    then ev_fault f (flip v)
    else v

  let stats f = stats f.inner
  let probes f = probes f.inner
  let probe f name = probe f.inner name
  let enable_cover f = enable_cover f.inner
  let cover f = cover f.inner
  let enable_power_sampler f = enable_power_sampler f.inner
  let power_activity f = power_activity f.inner
  let enable_events f = enable_events f.inner
  let events f = events f.inner
  let checkpoint f = checkpoint_thunk f.inner
end

let inject_fault ?(from_cycle = 0) ?lane ~port e =
  (match List.assoc_opt port (outputs e) with
  | Some _ -> ()
  | None -> invalid_arg ("Engine.inject_fault: no output port " ^ port));
  (match lane with
  | Some l when l < 0 || l >= lanes e ->
      invalid_arg
        (Printf.sprintf "Engine.inject_fault: lane %d out of range (%d lanes)"
           l (lanes e))
  | Some _ | None -> ());
  let suffix =
    match lane with Some l -> Printf.sprintf "@%d" l | None -> ""
  in
  pack
    ~label:(label e ^ "+fault:" ^ port ^ suffix)
    (module Faulty)
    {
      inner = e;
      fault_port = port;
      from_cycle;
      fault_lane = lane;
      last_fault_emit = -1;
    }

(* ------------------------------------------------------------------ *)
(* Consolidated tracing over any engine set.                           *)

module Trace = struct
  type channel = {
    ch_id : Vcd_writer.id;
    ch_engine : t;
    ch_read : unit -> Bitvec.t;
    mutable ch_last : Bitvec.t option;
  }

  type tracer = { doc : Vcd_writer.t; channels : channel list }

  let create ?(top = "engines") engines =
    let doc =
      Vcd_writer.create ~date:"osss engine trace"
        ~version:"osss-ocaml engine trace" ~timescale:"1ns" ~top ()
    in
    let channels =
      List.concat_map
        (fun e ->
          let scope = label e in
          let ports =
            List.map
              (fun (port, width) ->
                {
                  ch_id = Vcd_writer.register doc ~scope ~name:port ~width ();
                  ch_engine = e;
                  ch_read = (fun () -> get e port);
                  ch_last = None;
                })
              (inputs e @ outputs e)
          in
          (* Internal probes nest under the engine scope along their
             hierarchical paths: "u_hist.count[3]" becomes signal
             [count[3]] in scope <label>.u_hist. *)
          let internal =
            List.map
              (fun (full, width) ->
                let scope, name =
                  match String.rindex_opt full '.' with
                  | Some i ->
                      ( scope ^ "." ^ String.sub full 0 i,
                        String.sub full (i + 1) (String.length full - i - 1) )
                  | None -> (scope, full)
                in
                {
                  ch_id = Vcd_writer.register doc ~scope ~name ~width ();
                  ch_engine = e;
                  ch_read = (fun () -> probe e full);
                  ch_last = None;
                })
              (probes e)
          in
          ports @ internal)
        engines
    in
    { doc; channels }

  let sample tr =
    let time =
      List.fold_left (fun acc ch -> max acc (cycles ch.ch_engine)) 0 tr.channels
    in
    List.iter
      (fun ch ->
        let v = ch.ch_read () in
        match ch.ch_last with
        | Some previous when Bitvec.equal previous v -> ()
        | Some _ | None ->
            ch.ch_last <- Some v;
            Vcd_writer.change_bv tr.doc ~time ch.ch_id v)
      tr.channels

  let signal_count tr = List.length tr.channels
  let contents tr = Vcd_writer.contents tr.doc
  let save tr path = Vcd_writer.save tr.doc path
end
