let lut_delay_ns = 0.35

(* Segmented FPGA routing: a connection pays a near-constant switch
   cost plus a small distance-dependent term. *)
let wire_base_ns = 0.10
let wire_delay_ns_per_unit = 0.02

let wire_ns distance =
  if distance = 0 then 0.05
  else wire_base_ns +. (wire_delay_ns_per_unit *. float_of_int distance)
let ff_clk_to_q_ns = 0.25
let ff_setup_ns = 0.10

(* Logic elements: LUTs and flip-flops on the core grid, pads on the
   perimeter. *)
type element =
  | Lut of Techmap.lut
  | Ff of Netlist.net * Netlist.net  (* d, q *)
  | In_pad of Netlist.net
  | Out_pad of Netlist.net

type placement = {
  mapped : Techmap.mapped;
  elements : element array;
  pos : (int * int) array;  (* per element *)
  width : int;
  height : int;
  driver_of : (Netlist.net, int) Hashtbl.t;  (* net -> element id *)
  sinks_of : (Netlist.net, int list) Hashtbl.t;
  initial_wl : float;
  final_wl : float;
}

type report = {
  grid : int * int;
  utilization : float;
  wirelength : float;
  initial_wirelength : float;
  critical_ns : float;
  fmax_mhz : float;
  lut_levels : int;
}

let manhattan (x0, y0) (x1, y1) = abs (x0 - x1) + abs (y0 - y1)

(* Half-perimeter wirelength of one net given element positions. *)
let net_hpwl pos driver sinks =
  let x0, y0 = pos.(driver) in
  let min_x = ref x0 and max_x = ref x0 in
  let min_y = ref y0 and max_y = ref y0 in
  List.iter
    (fun s ->
      let x, y = pos.(s) in
      if x < !min_x then min_x := x;
      if x > !max_x then max_x := x;
      if y < !min_y then min_y := y;
      if y > !max_y then max_y := y)
    sinks;
  float_of_int (!max_x - !min_x + !max_y - !min_y)

let place ?(seed = 17) ?(moves = 150_000) mapped =
  let rng = Random.State.make [| seed |] in
  let nl = Techmap.source mapped in
  let luts = Techmap.luts mapped in
  let ffs = Techmap.ffs mapped in
  let in_pads =
    List.concat_map
      (fun (_, nets) -> Array.to_list nets |> List.map (fun n -> In_pad n))
      (Netlist.inputs nl)
  in
  let out_pads =
    List.concat_map
      (fun (_, nets) -> Array.to_list nets |> List.map (fun n -> Out_pad n))
      (Netlist.outputs nl)
  in
  let core =
    List.map (fun l -> Lut l) luts @ List.map (fun (d, q) -> Ff (d, q)) ffs
  in
  let elements = Array.of_list (core @ in_pads @ out_pads) in
  let n_core = List.length core in
  let side = max 2 (int_of_float (ceil (sqrt (float_of_int n_core *. 1.3)))) in
  (* perimeter must hold the pads *)
  let n_pads = Array.length elements - n_core in
  let side = max side (1 + (n_pads / 4)) in
  let pos = Array.make (Array.length elements) (0, 0) in
  (* initial core placement: row-major with spare sites *)
  let core_sites =
    Array.init (side * side) (fun i -> (1 + (i mod side), 1 + (i / side)))
  in
  Array.iteri
    (fun i _ -> if i < n_core then pos.(i) <- core_sites.(i))
    elements;
  (* pads around the perimeter of the (side+2)^2 die *)
  let perimeter k =
    let per_side = max 1 ((n_pads + 3) / 4) in
    let side_idx = k / per_side and o = k mod per_side in
    let span = side + 1 in
    let scaled = 1 + (o * span / max 1 per_side) in
    match side_idx with
    | 0 -> (scaled, 0)
    | 1 -> (side + 1, scaled)
    | 2 -> (side + 1 - scaled, side + 1)
    | _ -> (0, side + 1 - scaled)
  in
  for k = 0 to n_pads - 1 do
    pos.(n_core + k) <- perimeter k
  done;
  (* connectivity *)
  let driver_of = Hashtbl.create 256 in
  let sinks_of = Hashtbl.create 256 in
  let add_sink net e =
    Hashtbl.replace sinks_of net
      (e :: Option.value ~default:[] (Hashtbl.find_opt sinks_of net))
  in
  Array.iteri
    (fun i e ->
      match e with
      | Lut l ->
          Hashtbl.replace driver_of l.Techmap.lut_out i;
          Array.iter (fun input -> add_sink input i) l.Techmap.lut_inputs
      | Ff (d, q) ->
          Hashtbl.replace driver_of q i;
          add_sink d i
      | In_pad n -> Hashtbl.replace driver_of n i
      | Out_pad n -> add_sink n i)
    elements;
  let nets =
    Hashtbl.fold
      (fun net driver acc ->
        match Hashtbl.find_opt sinks_of net with
        | Some sinks -> (net, driver, sinks) :: acc
        | None -> acc)
      driver_of []
    |> Array.of_list
  in
  (* nets touching each element, for incremental cost evaluation *)
  let nets_of_element = Array.make (Array.length elements) [] in
  Array.iteri
    (fun ni (_, driver, sinks) ->
      nets_of_element.(driver) <- ni :: nets_of_element.(driver);
      List.iter
        (fun s ->
          if not (List.mem ni nets_of_element.(s)) then
            nets_of_element.(s) <- ni :: nets_of_element.(s))
        sinks)
    nets;
  let total_wl () =
    Array.fold_left
      (fun acc (_, driver, sinks) -> acc +. net_hpwl pos driver sinks)
      0.0 nets
  in
  let initial_wl = total_wl () in
  (* occupancy map of core sites for swap/move proposals *)
  let occupant = Hashtbl.create 256 in
  for i = 0 to n_core - 1 do
    Hashtbl.replace occupant pos.(i) i
  done;
  let cost_around e =
    List.fold_left
      (fun acc ni ->
        let _, driver, sinks = nets.(ni) in
        acc +. net_hpwl pos driver sinks)
      0.0 nets_of_element.(e)
  in
  let moves = if n_core < 4 then 0 else moves in
  (* classic annealing: temperature scaled to typical move cost, and a
     proposal window that shrinks as the schedule cools so late moves
     are local refinements *)
  let temperature = ref (4.0 +. (initial_wl /. float_of_int (max 1 n_core))) in
  for attempt = 0 to moves - 1 do
    if attempt mod 997 = 996 then temperature := !temperature *. 0.95;
    let progress = float_of_int attempt /. float_of_int moves in
    let radius =
      max 2 (int_of_float (float_of_int side *. (1.2 -. progress)))
    in
    let e = Random.State.int rng n_core in
    let clamp v = max 1 (min side v) in
    let ex, ey = pos.(e) in
    let target =
      ( clamp (ex + Random.State.int rng (2 * radius + 1) - radius),
        clamp (ey + Random.State.int rng (2 * radius + 1) - radius) )
    in
    let other = Hashtbl.find_opt occupant target in
    let before =
      cost_around e
      +. match other with Some o when o <> e -> cost_around o | _ -> 0.0
    in
    let old_pos = pos.(e) in
    (match other with
    | Some o when o <> e ->
        pos.(e) <- target;
        pos.(o) <- old_pos
    | Some _ -> ()
    | None -> pos.(e) <- target);
    let after =
      cost_around e
      +. match other with Some o when o <> e -> cost_around o | _ -> 0.0
    in
    let delta = after -. before in
    let accept =
      delta <= 0.0
      || Random.State.float rng 1.0 < exp (-.delta /. max 0.01 !temperature)
    in
    if accept then begin
      Hashtbl.remove occupant old_pos;
      Hashtbl.remove occupant target;
      (match other with
      | Some o when o <> e -> Hashtbl.replace occupant old_pos o
      | _ -> ());
      Hashtbl.replace occupant pos.(e) e
    end
    else begin
      (* undo *)
      (match other with
      | Some o when o <> e -> pos.(o) <- target
      | _ -> ());
      pos.(e) <- old_pos
    end
  done;
  let final_wl = total_wl () in
  {
    mapped;
    elements;
    pos;
    width = side + 2;
    height = side + 2;
    driver_of;
    sinks_of;
    initial_wl;
    final_wl;
  }

let by_module p =
  let nl = Techmap.source p.mapped in
  let tbl = Hashtbl.create 16 in
  let bump r =
    Hashtbl.replace tbl r
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl r))
  in
  Array.iter
    (function
      | Lut l -> bump (Netlist.region_of nl l.Techmap.lut_out)
      | Ff (_, q) -> bump (Netlist.region_of nl q)
      | In_pad _ | Out_pad _ -> ())
    p.elements;
  List.sort compare (Hashtbl.fold (fun r n acc -> (r, n) :: acc) tbl [])

let analyze p =
  let nl = Techmap.source p.mapped in
  (* arrival times per net with wire delays from the placement *)
  let arrival = Hashtbl.create 256 in
  let level = Hashtbl.create 256 in
  let lut_of = Hashtbl.create 256 in
  List.iter
    (fun (l : Techmap.lut) -> Hashtbl.replace lut_of l.Techmap.lut_out l)
    (Techmap.luts p.mapped);
  let ffq = Hashtbl.create 64 in
  List.iter (fun (_, q) -> Hashtbl.replace ffq q ()) (Techmap.ffs p.mapped);
  let pos_of_net net =
    match Hashtbl.find_opt p.driver_of net with
    | Some e -> p.pos.(e)
    | None -> (0, 0)
  in
  let rec arrive net =
    match Hashtbl.find_opt arrival net with
    | Some a -> a
    | None ->
        Hashtbl.replace arrival net 0.0;
        let a, lv =
          if Hashtbl.mem ffq net then (ff_clk_to_q_ns, 0)
          else
            match Hashtbl.find_opt lut_of net with
            | None -> (0.0, 0) (* primary input pad *)
            | Some l ->
                let here =
                  match Hashtbl.find_opt p.driver_of net with
                  | Some e -> p.pos.(e)
                  | None -> (0, 0)
                in
                let worst = ref 0.0 and wl = ref 0 in
                Array.iter
                  (fun input ->
                    let a_in = arrive input in
                    let wire = wire_ns (manhattan (pos_of_net input) here) in
                    if a_in +. wire > !worst then begin
                      worst := a_in +. wire;
                      wl := Option.value ~default:0 (Hashtbl.find_opt level input)
                    end)
                  l.Techmap.lut_inputs;
                (!worst +. lut_delay_ns, !wl + 1)
        in
        Hashtbl.replace arrival net a;
        Hashtbl.replace level net lv;
        a
  in
  let best = ref 0.0 and best_level = ref 0 in
  let consider net sink_element extra =
    let a = arrive net in
    let wire = wire_ns (manhattan (pos_of_net net) p.pos.(sink_element)) in
    let total = a +. wire +. extra in
    if total > !best then begin
      best := total;
      best_level := Option.value ~default:0 (Hashtbl.find_opt level net)
    end
  in
  Array.iteri
    (fun i e ->
      match e with
      | Ff (d, _) -> consider d i ff_setup_ns
      | Out_pad n -> consider n i 0.0
      | Lut _ | In_pad _ -> ())
    p.elements;
  let n_core = Techmap.lut_count p.mapped + Techmap.ff_count p.mapped in
  ignore nl;
  {
    grid = (p.width, p.height);
    utilization =
      float_of_int n_core /. float_of_int ((p.width - 2) * (p.height - 2));
    wirelength = p.final_wl;
    initial_wirelength = p.initial_wl;
    critical_ns = !best;
    fmax_mhz = (if !best <= 0.0 then Float.infinity else 1000.0 /. !best);
    lut_levels = !best_level;
  }
