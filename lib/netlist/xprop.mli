(** Four-state gate-level simulation for reset-coverage analysis.

    Flip-flops power up unknown ([X]) and inputs are unknown until
    driven, exactly like a conservative sign-off simulator.  Running a
    reset sequence and then asking which outputs or flip-flops are
    still unknown verifies that the design's reset logic actually
    initializes everything the environment can observe — the question
    behind the two-valued simulators' silent power-up-to-zero
    assumption. *)

type t

val create : Netlist.t -> t
(** All flip-flops and inputs start at [X]. *)

val set_input : t -> string -> Bitvec.t -> unit
val set_input_x : t -> string -> unit

val settle : t -> unit
val step : t -> unit
val run : t -> int -> unit

val output_string : t -> string -> string
(** MSB-first characters ['0'], ['1'], ['x']. *)

val output_known : t -> string -> bool
(** No [X] bit in the named output. *)

val unknown_outputs : t -> (string * int) list
(** Outputs still carrying unknown bits, with the count of such bits. *)

val unknown_ffs : t -> int
(** Flip-flops whose state is still unknown. *)
