(** Formal combinational equivalence checking.

    Where {!Equiv} samples random cycles, [Cec] {e proves} equivalence
    with BDDs.  Sequential designs are handled through their
    combinational view: every flip-flop output becomes a pseudo primary
    input and every flip-flop data input a pseudo output, with
    registers matched between the two designs by {e bit position in
    creation order} (sound for designs lowered from IR, where process
    order fixes register order; a width mismatch is reported as
    [Interface_mismatch]).

    BDDs blow up on multipliers; the checker answers [Too_large] when
    the node limit is hit rather than looping. *)

type verdict =
  | Proved  (** all outputs (and next-state functions) identical *)
  | Failed of counterexample
  | Interface_mismatch of string
  | Too_large

and counterexample = {
  at : string;  (** output or pseudo-output that differs *)
  inputs : (string * Bitvec.t) list;
      (** assignment to the primary inputs (don't-cares zeroed) *)
  state_bits : (int * bool) list;  (** pseudo-input register bits set *)
}

val check : ?max_nodes:int -> Netlist.t -> Netlist.t -> verdict
(** Both netlists must expose identically named/sized inputs and
    outputs and the same total register bit count. *)

val check_ir : ?max_nodes:int -> Ir.module_def -> Ir.module_def -> verdict
(** Lower both designs and {!check} them. *)

val pp_verdict : Format.formatter -> verdict -> unit
