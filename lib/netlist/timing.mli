(** Static timing analysis over the cell library's delay model.

    Paths start at primary inputs (arrival 0) and flip-flop outputs
    (arrival = clock-to-q) and end at primary outputs or flip-flop data
    inputs (plus setup).  The critical path bounds the achievable clock
    frequency — the quantity the paper compares between the OSSS and the
    VHDL flows. *)

type report = {
  critical_ns : float;  (** longest register-to-register/IO path *)
  fmax_mhz : float;
  endpoint : string;  (** description of the critical endpoint *)
  levels : int;  (** logic depth in cells on the critical path *)
}

val analyze : Netlist.t -> report

val meets : report -> freq_mhz:float -> bool
(** Does the netlist close timing at the given clock? (The ExpoCU
    requirement is 66 MHz.) *)

type module_row = {
  path : string;  (** instance path ({!Netlist.region_of}); [""] = top *)
  m_worst_ns : float;  (** worst arrival over the nets the module drives *)
  m_levels : int;  (** logic depth at that arrival *)
}

val by_module : Netlist.t -> module_row list
(** Per-module worst arrival times keyed on the netlist's region
    annotations, sorted by path — where the critical path spends its
    time, module by module. *)

val pp_report : Format.formatter -> report -> unit
