type t = {
  nl : Netlist.t;
  values : bool array;  (* indexed by net *)
  toggles : int array;  (* transitions per net, for power estimation *)
  order : Netlist.cell array;  (* combinational cells, topologically sorted *)
  dffs : Netlist.cell array;
  in_nets : (string, Netlist.net array) Hashtbl.t;
  out_nets : (string, Netlist.net array) Hashtbl.t;
  mutable n_cycles : int;
  mutable n_evals : int;
}

let topo_order nl =
  let cells = Netlist.cells nl in
  let comb = List.filter (fun c -> c.Netlist.kind <> Cell.Dff) cells in
  let state = Hashtbl.create 256 in
  let order = ref [] in
  let rec visit (c : Netlist.cell) =
    match Hashtbl.find_opt state c.out with
    | Some 2 -> ()
    | Some 1 ->
        failwith
          (Printf.sprintf "Nl_sim: combinational loop at net %d in %s" c.out
             (Netlist.name nl))
    | _ ->
        Hashtbl.replace state c.out 1;
        Array.iter
          (fun n ->
            match Netlist.driver nl n with
            | Some d when d.Netlist.kind <> Cell.Dff -> visit d
            | Some _ | None -> ())
          c.ins;
        Hashtbl.replace state c.out 2;
        order := c :: !order
  in
  List.iter visit comb;
  Array.of_list (List.rev !order)

let create nl =
  Netlist.check nl;
  let in_nets = Hashtbl.create 8 and out_nets = Hashtbl.create 8 in
  List.iter (fun (n, nets) -> Hashtbl.replace in_nets n nets) (Netlist.inputs nl);
  List.iter
    (fun (n, nets) -> Hashtbl.replace out_nets n nets)
    (Netlist.outputs nl);
  let dffs =
    List.filter (fun c -> c.Netlist.kind = Cell.Dff) (Netlist.cells nl)
    |> Array.of_list
  in
  {
    nl;
    values = Array.make (Netlist.net_count nl) false;
    toggles = Array.make (Netlist.net_count nl) 0;
    order = topo_order nl;
    dffs;
    in_nets;
    out_nets;
    n_cycles = 0;
    n_evals = 0;
  }

let set_input t name bv =
  match Hashtbl.find_opt t.in_nets name with
  | None -> raise Not_found
  | Some nets ->
      if Bitvec.width bv <> Array.length nets then
        invalid_arg
          (Printf.sprintf "Nl_sim.set_input %s: width %d expected %d" name
             (Bitvec.width bv) (Array.length nets));
      Array.iteri (fun i n -> t.values.(n) <- Bitvec.get bv i) nets

let set_input_int t name n =
  let nets = Hashtbl.find t.in_nets name in
  set_input t name (Bitvec.of_int ~width:(Array.length nets) n)

let read_bus t nets =
  Bitvec.init (Array.length nets) (fun i -> t.values.(nets.(i)))

let get_output t name =
  match Hashtbl.find_opt t.out_nets name with
  | None -> raise Not_found
  | Some nets -> read_bus t nets

let get_output_int t name = Bitvec.to_int (get_output t name)

let eval_cell t (c : Netlist.cell) =
  let v = t.values in
  let r =
    match c.kind with
    | Cell.Const0 -> false
    | Const1 -> true
    | Buf -> v.(c.ins.(0))
    | Not -> not v.(c.ins.(0))
    | And2 -> v.(c.ins.(0)) && v.(c.ins.(1))
    | Or2 -> v.(c.ins.(0)) || v.(c.ins.(1))
    | Xor2 -> v.(c.ins.(0)) <> v.(c.ins.(1))
    | Nand2 -> not (v.(c.ins.(0)) && v.(c.ins.(1)))
    | Nor2 -> not (v.(c.ins.(0)) || v.(c.ins.(1)))
    | Mux2 -> if v.(c.ins.(0)) then v.(c.ins.(1)) else v.(c.ins.(2))
    | Dff -> v.(c.out)
  in
  v.(c.out) <- r

let settle t =
  Array.iter (eval_cell t) t.order;
  t.n_evals <- t.n_evals + Array.length t.order

let step t =
  settle t;
  (* Toggle accounting once per cycle, against the settled pre-edge
     values; a per-settle count would double-book glitch-free nets. *)
  let snapshot = Array.copy t.values in
  (* Sample every d, then commit: flip-flops see the pre-edge values. *)
  let sampled = Array.map (fun c -> t.values.(c.Netlist.ins.(0))) t.dffs in
  Array.iteri (fun i c -> t.values.(c.Netlist.out) <- sampled.(i)) t.dffs;
  t.n_evals <- t.n_evals + Array.length t.dffs;
  t.n_cycles <- t.n_cycles + 1;
  settle t;
  for n = 0 to Array.length t.values - 1 do
    if t.values.(n) <> snapshot.(n) then
      t.toggles.(n) <- t.toggles.(n) + 1
  done

let run t n =
  for _ = 1 to n do
    step t
  done

let cycles t = t.n_cycles
let gate_evals t = t.n_evals

let net_toggles t n = t.toggles.(n)
