(* Global activity counters (see Metrics.Perf). *)
let ctr_evals = Perf.counter "nl_sim.gate_evals"
let ctr_skipped = Perf.counter "nl_sim.cells_skipped"
let ctr_full = Perf.counter "nl_sim.full_settles"

(* Distributions per settle/step (see Obs.Hist; off unless enabled). *)
let hist_evals = Obs.Hist.histogram "nl_sim.evals_per_settle"
let hist_touched = Obs.Hist.histogram "nl_sim.nets_touched_per_step"

type mode = Event_driven | Full_eval

exception Combinational_loop of { module_name : string; net : int }

let () =
  Printexc.register_printer (function
    | Combinational_loop { module_name; net } ->
        Some
          (Printf.sprintf "Nl_sim.Combinational_loop(net %d in %s)" net
             module_name)
    | _ -> None)

type t = {
  nl : Netlist.t;
  mode : mode;
  values : bool array;  (* indexed by net *)
  toggles : int array;  (* transitions per net, for power estimation *)
  order : Netlist.cell array;  (* combinational cells, topologically sorted *)
  dffs : Netlist.cell array;
  in_nets : (string, Netlist.net array) Hashtbl.t;
  out_nets : (string, Netlist.net array) Hashtbl.t;
  (* Event-driven machinery.  [level.(ci)] is the logic depth of cell
     [order.(ci)]; a cell's level is strictly greater than the level of
     any combinational cell driving one of its inputs, so one ascending
     sweep over [buckets] settles the dirty region. *)
  level : int array;  (* per index into [order] *)
  fanout : int array array;  (* net -> indices into [order] reading it *)
  buckets : int list array;  (* per level: pending cell indices *)
  pending : bool array;  (* per index into [order]: already scheduled *)
  mutable need_full : bool;  (* next settle evaluates everything *)
  (* Toggle-accounting epoch (clock edge + post-edge settle): the value
     each touched net had when the epoch opened, recorded lazily at its
     first change.  Bit-identical to the full snapshot/compare of
     [Full_eval] mode because inputs never move during the epoch. *)
  epoch_pre : bool array;
  epoch_seen : bool array;
  mutable epoch_touched : int list;
  mutable in_epoch : bool;
  mutable n_cycles : int;
  mutable n_evals : int;
  mutable n_skipped : int;
  mutable n_full_settles : int;
  (* Optional per-cell evaluation profile (indexed like [order]);
     [ [||] ] until [enable_profile] allocates it. *)
  mutable profiling : bool;
  mutable eval_counts : int array;
  (* Per-bit toggle coverage; [None] until [enable_toggle_cover].
     Recording piggybacks on the per-cycle toggle accounting that runs
     anyway, so a disabled run pays one branch per changed net. *)
  mutable cover : Cover.Toggle.t option;
  (* Windowed switching-activity sampler for dynamic power estimation;
     [None] until [enable_power_sampler].  Rides the same per-cycle
     toggle accounting (snapshot compare in [Full_eval], epoch compare
     in [Event_driven]), so both modes sample identical activity. *)
  mutable activity : Cover.Activity.t option;
  (* Causal event log plumbing (see Obs.Event), allocated lazily by
     [enable_events]: [ev_last.(n)] is the seq of net [n]'s latest
     change event, so a cell evaluation that moves its output is caused
     by the latest change among its input nets — the fanout propagation
     made explicit.  [ev_ctx]/[ev_ctx_stim] carry the cause/kind for
     the shared [drive] path (stimulus vs flip-flop commit).  Off by
     default: the hot paths pay one [ev_on] branch per changed net. *)
  mutable ev_on : bool;
  mutable ev_last : int array;
  mutable ev_labels : string array;
  mutable ev_ctx : int;
  mutable ev_ctx_stim : bool;
}

let topo_order nl =
  let cells = Netlist.cells nl in
  let comb = List.filter (fun c -> c.Netlist.kind <> Cell.Dff) cells in
  let state = Hashtbl.create 256 in
  let order = ref [] in
  let rec visit (c : Netlist.cell) =
    match Hashtbl.find_opt state c.out with
    | Some 2 -> ()
    | Some 1 ->
        raise
          (Combinational_loop { module_name = Netlist.name nl; net = c.out })
    | _ ->
        Hashtbl.replace state c.out 1;
        Array.iter
          (fun n ->
            match Netlist.driver nl n with
            | Some d when d.Netlist.kind <> Cell.Dff -> visit d
            | Some _ | None -> ())
          c.ins;
        Hashtbl.replace state c.out 2;
        order := c :: !order
  in
  List.iter visit comb;
  Array.of_list (List.rev !order)

(* Static scheduling structure, shared with the word-parallel simulator
   ([Nl_wsim]): both walk the same topological order, levels and fanout
   lists, so their activity-based scheduling is identical by
   construction. *)
module Sched = struct
  type t = {
    order : Netlist.cell array;
    dffs : Netlist.cell array;
    level : int array;
    fanout : int array array;
    n_levels : int;
    in_nets : (string, Netlist.net array) Hashtbl.t;
    out_nets : (string, Netlist.net array) Hashtbl.t;
  }

  let build nl =
    Netlist.check nl;
    let in_nets = Hashtbl.create 8 and out_nets = Hashtbl.create 8 in
    List.iter
      (fun (n, nets) -> Hashtbl.replace in_nets n nets)
      (Netlist.inputs nl);
    List.iter
      (fun (n, nets) -> Hashtbl.replace out_nets n nets)
      (Netlist.outputs nl);
    let dffs =
      List.filter (fun c -> c.Netlist.kind = Cell.Dff) (Netlist.cells nl)
      |> Array.of_list
    in
    let order = topo_order nl in
    let n_comb = Array.length order in
    let n_nets = Netlist.net_count nl in
    (* Levelization: primary inputs, constants-free nets and flip-flop
       outputs sit at depth 0; each cell one past its deepest input. *)
    let net_level = Array.make n_nets 0 in
    let level = Array.make n_comb 0 in
    let n_levels = ref 1 in
    Array.iteri
      (fun ci (c : Netlist.cell) ->
        let l =
          Array.fold_left (fun acc n -> max acc (net_level.(n) + 1)) 0 c.ins
        in
        level.(ci) <- l;
        net_level.(c.out) <- l;
        if l + 1 > !n_levels then n_levels := l + 1)
      order;
    (* Per-net fanout lists (combinational readers only), count-then-fill. *)
    let fan_count = Array.make n_nets 0 in
    Array.iter
      (fun (c : Netlist.cell) ->
        Array.iter (fun n -> fan_count.(n) <- fan_count.(n) + 1) c.ins)
      order;
    let fanout = Array.init n_nets (fun n -> Array.make fan_count.(n) 0) in
    let cursor = Array.make n_nets 0 in
    Array.iteri
      (fun ci (c : Netlist.cell) ->
        Array.iter
          (fun n ->
            fanout.(n).(cursor.(n)) <- ci;
            cursor.(n) <- cursor.(n) + 1)
          c.ins)
      order;
    { order; dffs; level; fanout; n_levels = !n_levels; in_nets; out_nets }

  (* Human-readable net labels: port bits by name ("bus[i]", or the bare
     name for width-1 buses), internal nets by their hierarchical
     description from lowering ("u_hist.count[3]"), remaining anonymous
     nets as "n<id>". *)
  let net_labels nl =
    let labels = Array.make (Netlist.net_count nl) "" in
    let fill ports =
      List.iter
        (fun (name, nets) ->
          if Array.length nets = 1 then labels.(nets.(0)) <- name
          else
            Array.iteri
              (fun i n -> labels.(n) <- Printf.sprintf "%s[%d]" name i)
              nets)
        ports
    in
    fill (Netlist.inputs nl);
    fill (Netlist.outputs nl);
    Array.mapi
      (fun n l -> if l = "" then Netlist.describe_net nl n else l)
      labels
end

let create ?(mode = Event_driven) nl =
  let s = Sched.build nl in
  let n_nets = Netlist.net_count nl in
  {
    nl;
    mode;
    values = Array.make n_nets false;
    toggles = Array.make n_nets 0;
    order = s.Sched.order;
    dffs = s.Sched.dffs;
    in_nets = s.Sched.in_nets;
    out_nets = s.Sched.out_nets;
    level = s.Sched.level;
    fanout = s.Sched.fanout;
    buckets = Array.make s.Sched.n_levels [];
    pending = Array.make (Array.length s.Sched.order) false;
    need_full = true;
    epoch_pre = Array.make n_nets false;
    epoch_seen = Array.make n_nets false;
    epoch_touched = [];
    in_epoch = false;
    n_cycles = 0;
    n_evals = 0;
    n_skipped = 0;
    n_full_settles = 0;
    profiling = false;
    eval_counts = [||];
    cover = None;
    activity = None;
    ev_on = false;
    ev_last = [||];
    ev_labels = [||];
    ev_ctx = Obs.Event.no_cause;
    ev_ctx_stim = true;
  }

(* ------------------------------------------------------------------ *)
(* Causal event emission (event-driven mode; [Full_eval] re-evaluates
   everything every settle and carries no change causality).           *)

let enable_events t =
  if Array.length t.ev_last = 0 then begin
    t.ev_last <- Array.make (Netlist.net_count t.nl) Obs.Event.no_cause;
    t.ev_labels <- Sched.net_labels t.nl
  end;
  t.ev_on <- true;
  if not (Obs.Event.enabled ()) then Obs.Event.enable ()

let emitting t = t.ev_on && Obs.Event.enabled ()

(* A cell evaluation is caused by the latest change among its inputs. *)
let ev_cell_cause t (c : Netlist.cell) =
  let best = ref Obs.Event.no_cause in
  Array.iter
    (fun n -> if t.ev_last.(n) > !best then best := t.ev_last.(n))
    c.ins;
  !best

let ev_net t n v kind cause =
  let s =
    Obs.Event.emit ~cycle:t.n_cycles ~value:(Bool.to_int v) ~cause kind
      t.ev_labels.(n)
  in
  t.ev_last.(n) <- s

let schedule t ci =
  if not t.pending.(ci) then begin
    t.pending.(ci) <- true;
    let l = t.level.(ci) in
    t.buckets.(l) <- ci :: t.buckets.(l)
  end

let record_epoch t n =
  if t.in_epoch && not t.epoch_seen.(n) then begin
    t.epoch_seen.(n) <- true;
    t.epoch_pre.(n) <- t.values.(n);
    t.epoch_touched <- n :: t.epoch_touched
  end

(* Write a net and wake its combinational readers if the value moved.
   Callers are stimulus ([ev_ctx_stim], no cause) and the flip-flop
   commit of [step_event] ([ev_ctx] = the D input's latest change). *)
let drive t n v =
  if t.values.(n) <> v then begin
    record_epoch t n;
    t.values.(n) <- v;
    Array.iter (fun ci -> schedule t ci) t.fanout.(n);
    if emitting t then
      ev_net t n v
        (if t.ev_ctx_stim then Obs.Event.Stimulus else Obs.Event.Net_change)
        t.ev_ctx
  end

(* Prebound input-port handles: the stimulus hot path pays the name
   lookup once, then drives bits straight out of a machine word (no
   per-bit [Bitvec.get] limb arithmetic for ports up to 62 bits). *)
type port = { p_name : string; p_nets : Netlist.net array }

let in_port t name =
  match Hashtbl.find_opt t.in_nets name with
  | Some nets -> { p_name = name; p_nets = nets }
  | None -> raise Not_found

(* Bit [i] of the two's-complement int [v] ([asr] caps at the sign). *)
let int_bit v i = (v asr min i 62) land 1 = 1

let drive_port_int t p v =
  let nets = p.p_nets in
  match t.mode with
  | Full_eval ->
      for i = 0 to Array.length nets - 1 do
        t.values.(Array.unsafe_get nets i) <- int_bit v i
      done
  | Event_driven ->
      for i = 0 to Array.length nets - 1 do
        drive t (Array.unsafe_get nets i) (int_bit v i)
      done

let drive_port t p bv =
  let w = Array.length p.p_nets in
  if Bitvec.width bv <> w then
    invalid_arg
      (Printf.sprintf "Nl_sim.set_input %s: width %d expected %d" p.p_name
         (Bitvec.width bv) w);
  if w <= 62 then drive_port_int t p (Bitvec.to_int bv)
  else
    match t.mode with
    | Full_eval ->
        Array.iteri (fun i n -> t.values.(n) <- Bitvec.get bv i) p.p_nets
    | Event_driven ->
        Array.iteri (fun i n -> drive t n (Bitvec.get bv i)) p.p_nets

let set_input t name bv = drive_port t (in_port t name) bv
let set_input_int t name v = drive_port_int t (in_port t name) v

let read_bus t nets =
  Bitvec.init (Array.length nets) (fun i -> t.values.(nets.(i)))

let get_output t name =
  match Hashtbl.find_opt t.out_nets name with
  | None -> raise Not_found
  | Some nets -> read_bus t nets

let get_output_int t name = Bitvec.to_int (get_output t name)

let eval_kind t (c : Netlist.cell) =
  let v = t.values in
  match c.kind with
  | Cell.Const0 -> false
  | Const1 -> true
  | Buf -> v.(c.ins.(0))
  | Not -> not v.(c.ins.(0))
  | And2 -> v.(c.ins.(0)) && v.(c.ins.(1))
  | Or2 -> v.(c.ins.(0)) || v.(c.ins.(1))
  | Xor2 -> v.(c.ins.(0)) <> v.(c.ins.(1))
  | Nand2 -> not (v.(c.ins.(0)) && v.(c.ins.(1)))
  | Nor2 -> not (v.(c.ins.(0)) || v.(c.ins.(1)))
  | Mux2 -> if v.(c.ins.(0)) then v.(c.ins.(1)) else v.(c.ins.(2))
  | Dff -> v.(c.out)

let eval_cell t (c : Netlist.cell) = t.values.(c.out) <- eval_kind t c

let settle_full t =
  if t.profiling then
    Array.iteri
      (fun ci c ->
        eval_cell t c;
        t.eval_counts.(ci) <- t.eval_counts.(ci) + 1)
      t.order
  else Array.iter (eval_cell t) t.order;
  t.n_evals <- t.n_evals + Array.length t.order;
  t.n_full_settles <- t.n_full_settles + 1;
  Perf.incr ~by:(Array.length t.order) ctr_evals;
  Obs.Hist.observe_int hist_evals (Array.length t.order)

(* One settle in event mode: either a forced full pass (first settle, in
   topological order, epoch recording preserved) or an ascending-level
   sweep of the scheduled cells.  A cell's fanout lives at strictly
   higher levels, so each level's bucket is complete when reached. *)
let settle_event t =
  if t.need_full then begin
    t.need_full <- false;
    Array.iteri
      (fun ci (c : Netlist.cell) ->
        let r = eval_kind t c in
        if t.profiling then t.eval_counts.(ci) <- t.eval_counts.(ci) + 1;
        if t.values.(c.out) <> r then begin
          record_epoch t c.out;
          t.values.(c.out) <- r;
          if emitting t then
            ev_net t c.out r Obs.Event.Net_change (ev_cell_cause t c)
        end)
      t.order;
    t.n_evals <- t.n_evals + Array.length t.order;
    t.n_full_settles <- t.n_full_settles + 1;
    Perf.incr ~by:(Array.length t.order) ctr_evals;
    Perf.incr ctr_full;
    Obs.Hist.observe_int hist_evals (Array.length t.order);
    (* Anything scheduled beforehand was just evaluated. *)
    Array.iteri
      (fun l b ->
        List.iter (fun ci -> t.pending.(ci) <- false) b;
        t.buckets.(l) <- [])
      t.buckets
  end
  else begin
    let evals = ref 0 in
    for l = 0 to Array.length t.buckets - 1 do
      let rec drain () =
        match t.buckets.(l) with
        | [] -> ()
        | ci :: rest ->
            t.buckets.(l) <- rest;
            t.pending.(ci) <- false;
            let c = t.order.(ci) in
            let r = eval_kind t c in
            incr evals;
            if t.profiling then t.eval_counts.(ci) <- t.eval_counts.(ci) + 1;
            if t.values.(c.out) <> r then begin
              record_epoch t c.out;
              t.values.(c.out) <- r;
              Array.iter (fun cj -> schedule t cj) t.fanout.(c.out);
              if emitting t then
                ev_net t c.out r Obs.Event.Net_change (ev_cell_cause t c)
            end;
            drain ()
      in
      drain ()
    done;
    t.n_evals <- t.n_evals + !evals;
    Perf.incr ~by:!evals ctr_evals;
    Obs.Hist.observe_int hist_evals !evals;
    let skipped = Array.length t.order - !evals in
    t.n_skipped <- t.n_skipped + skipped;
    Perf.incr ~by:skipped ctr_skipped
  end

let settle_inner t =
  match t.mode with Full_eval -> settle_full t | Event_driven -> settle_event t

let settle t =
  if Obs.Span.enabled () then
    Obs.Span.with_ ~name:"nl_sim.settle" (fun () ->
        let e0 = t.n_evals in
        settle_inner t;
        Obs.Span.add_attr_int "evals" (t.n_evals - e0))
  else settle_inner t

let step_full t =
  settle_full t;
  (* Toggle accounting once per cycle, against the settled pre-edge
     values; a per-settle count would double-book glitch-free nets. *)
  let snapshot = Array.copy t.values in
  (* Sample every d, then commit: flip-flops see the pre-edge values. *)
  let sampled = Array.map (fun c -> t.values.(c.Netlist.ins.(0))) t.dffs in
  Array.iteri (fun i c -> t.values.(c.Netlist.out) <- sampled.(i)) t.dffs;
  t.n_evals <- t.n_evals + Array.length t.dffs;
  Perf.incr ~by:(Array.length t.dffs) ctr_evals;
  t.n_cycles <- t.n_cycles + 1;
  settle_full t;
  for n = 0 to Array.length t.values - 1 do
    if t.values.(n) <> snapshot.(n) then begin
      t.toggles.(n) <- t.toggles.(n) + 1;
      (match t.activity with
      | None -> ()
      | Some act -> Cover.Activity.record act n);
      match t.cover with
      | None -> ()
      | Some cov -> Cover.Toggle.record cov n ~rising:t.values.(n)
    end
  done;
  match t.activity with
  | None -> ()
  | Some act -> Cover.Activity.end_cycle act

let step_event t =
  (* Flush pending input changes first; the toggle epoch then covers
     exactly the clock edge and the post-edge settle, like the snapshot
     window of [Full_eval]. *)
  settle_event t;
  t.in_epoch <- true;
  let sampled = Array.map (fun c -> t.values.(c.Netlist.ins.(0))) t.dffs in
  if emitting t then begin
    (* Causes sampled pre-commit: a flip-flop output change is caused
       by the change that last moved its D input, not by commits of
       other flip-flops this edge. *)
    let causes =
      Array.map (fun (c : Netlist.cell) -> t.ev_last.(c.ins.(0))) t.dffs
    in
    t.ev_ctx_stim <- false;
    Array.iteri
      (fun i (c : Netlist.cell) ->
        t.ev_ctx <- causes.(i);
        drive t c.out sampled.(i))
      t.dffs;
    t.ev_ctx_stim <- true;
    t.ev_ctx <- Obs.Event.no_cause
  end
  else
    Array.iteri (fun i c -> drive t c.Netlist.out sampled.(i)) t.dffs;
  t.n_evals <- t.n_evals + Array.length t.dffs;
  Perf.incr ~by:(Array.length t.dffs) ctr_evals;
  t.n_cycles <- t.n_cycles + 1;
  settle_event t;
  if Obs.Hist.enabled () then
    Obs.Hist.observe_int hist_touched (List.length t.epoch_touched);
  List.iter
    (fun n ->
      if t.values.(n) <> t.epoch_pre.(n) then begin
        t.toggles.(n) <- t.toggles.(n) + 1;
        (match t.activity with
        | None -> ()
        | Some act -> Cover.Activity.record act n);
        match t.cover with
        | None -> ()
        | Some cov -> Cover.Toggle.record cov n ~rising:t.values.(n)
      end;
      t.epoch_seen.(n) <- false)
    t.epoch_touched;
  t.epoch_touched <- [];
  t.in_epoch <- false;
  (match t.activity with
  | None -> ()
  | Some act -> Cover.Activity.end_cycle act);
  if t.cover <> None && emitting t then
    ignore
      (Obs.Event.emit ~cycle:t.n_cycles Obs.Event.Cover_epoch
         (Netlist.name t.nl))

let step_inner t =
  match t.mode with Full_eval -> step_full t | Event_driven -> step_event t

let step t =
  if Obs.Span.enabled () then
    Obs.Span.with_ ~name:"nl_sim.step"
      ~attrs:[ ("cycle", string_of_int t.n_cycles) ]
      (fun () ->
        let e0 = t.n_evals in
        step_inner t;
        Obs.Span.add_attr_int "evals" (t.n_evals - e0))
  else step_inner t

let run t n =
  for _ = 1 to n do
    step t
  done

let cycles t = t.n_cycles
let gate_evals t = t.n_evals
let cells_skipped t = t.n_skipped
let comb_cells t = Array.length t.order
let dff_cells t = Array.length t.dffs

let net_toggles t n = t.toggles.(n)
let full_settles t = t.n_full_settles
let toggle_total t = Array.fold_left ( + ) 0 t.toggles

let enable_profile t =
  if not t.profiling then begin
    t.profiling <- true;
    t.eval_counts <- Array.make (Array.length t.order) 0
  end

let profiling t = t.profiling

let net_labels t = Sched.net_labels t.nl
let net_value t n = t.values.(n)

(* Hinted internal nets, for hierarchical waveform probes.  Port nets
   are excluded — they are traced under their port names already. *)
let probes t =
  let port_net = Hashtbl.create 64 in
  List.iter
    (fun (_, nets) -> Array.iter (fun n -> Hashtbl.replace port_net n ()) nets)
    (Netlist.inputs t.nl @ Netlist.outputs t.nl);
  let acc = ref [] in
  for n = Netlist.net_count t.nl - 1 downto 0 do
    if (not (Hashtbl.mem port_net n)) && Netlist.hint_of t.nl n <> None then
      acc := (Netlist.describe_net t.nl n, n) :: !acc
  done;
  List.sort compare !acc

let enable_toggle_cover t =
  match t.cover with
  | Some _ -> ()
  | None -> t.cover <- Some (Cover.Toggle.create ~names:(net_labels t))

let toggle_cover t = t.cover

let enable_power_sampler ?window t =
  match t.activity with
  | Some _ -> ()
  | None ->
      t.activity <-
        Some (Cover.Activity.create ?window ~slots:(Netlist.net_count t.nl) ())

let power_activity t = t.activity

(* ------------------------------------------------------------------ *)
(* Checkpoint / restore: net values plus the event-driven scheduler
   state (pending set and level buckets) and the cycle count.  Toggle
   counters, coverage and activity profiles are deliberately not
   captured — a restore rewinds simulation state, not the
   observability accumulated about it. *)

type checkpoint = {
  ck_values : bool array;
  ck_pending : bool array;
  ck_buckets : int list array;
  ck_need_full : bool;
  ck_cycles : int;
}

let checkpoint t =
  if emitting t then
    ignore
      (Obs.Event.emit ~cycle:t.n_cycles Obs.Event.Checkpoint
         (Netlist.name t.nl));
  {
    ck_values = Array.copy t.values;
    ck_pending = Array.copy t.pending;
    ck_buckets = Array.copy t.buckets;
    ck_need_full = t.need_full;
    ck_cycles = t.n_cycles;
  }

let restore t ck =
  Array.blit ck.ck_values 0 t.values 0 (Array.length t.values);
  Array.blit ck.ck_pending 0 t.pending 0 (Array.length t.pending);
  Array.iteri (fun i b -> t.buckets.(i) <- b) ck.ck_buckets;
  t.need_full <- ck.ck_need_full;
  t.n_cycles <- ck.ck_cycles;
  (* Transient epoch state can only be non-empty mid-step; clear it so
     a restore from inside an observer still leaves a clean epoch. *)
  List.iter (fun n -> t.epoch_seen.(n) <- false) t.epoch_touched;
  t.epoch_touched <- [];
  t.in_epoch <- false;
  (* Cause links must not leap across the rewind. *)
  if Array.length t.ev_last > 0 then
    Array.fill t.ev_last 0 (Array.length t.ev_last) Obs.Event.no_cause

let checkpoint_cycle ck = ck.ck_cycles

let by_count_desc (la, a) (lb, b) =
  if a <> b then compare b a else compare la lb

let net_activity t =
  let labels = net_labels t in
  let acc = ref [] in
  Array.iteri
    (fun n c -> if c > 0 then acc := (labels.(n), c) :: !acc)
    t.toggles;
  List.sort by_count_desc !acc

let cell_activity t =
  if not t.profiling then []
  else begin
    let labels = net_labels t in
    let acc = ref [] in
    Array.iteri
      (fun ci c ->
        if c > 0 then begin
          let cell = t.order.(ci) in
          acc :=
            ( Printf.sprintf "%s:%s"
                labels.(cell.Netlist.out)
                (Cell.name cell.Netlist.kind),
              c )
            :: !acc
        end)
      t.eval_counts;
    List.sort by_count_desc !acc
  end
