(** Two-valued gate-level simulator — the "conventional RTL simulator"
    stand-in for the paper's simulation-speed comparison.  Flip-flops
    power up at 0.

    The default {!Event_driven} mode is activity-based: cells are
    levelized at creation, each net knows its combinational readers, and
    a settle re-evaluates only cells whose inputs toggled (one ascending
    sweep over the dirty levels).  {!Full_eval} retains the original
    evaluate-everything behaviour as a bit-identical reference — both
    modes produce the same output values and the same per-net toggle
    counts, cycle for cycle. *)

type t

type mode =
  | Event_driven  (** dirty-set propagation (default) *)
  | Full_eval  (** every combinational cell, every settle (reference) *)

exception Combinational_loop of { module_name : string; net : int }
(** A combinational cycle through [net] in the named design — the
    gate-level counterpart of {!Rtl_sim.Combinational_loop}. *)

val create : ?mode:mode -> Netlist.t -> t
(** Checks the netlist and levelizes it; raises {!Combinational_loop}
    naming the offending net on a combinational cycle. *)

val topo_order : Netlist.t -> Netlist.cell array
(** Combinational cells in topological (inputs-before-readers) order;
    raises {!Combinational_loop} on a cycle. *)

(** The static scheduling structure behind both gate-level simulators
    (this one and the word-parallel {!Nl_wsim}): topological order,
    levels, per-net combinational fanout and the port-name tables.
    Building it checks the netlist and raises {!Combinational_loop} on
    a combinational cycle. *)
module Sched : sig
  type t = {
    order : Netlist.cell array;  (** combinational cells, topological *)
    dffs : Netlist.cell array;
    level : int array;  (** logic depth per index into [order] *)
    fanout : int array array;  (** net -> indices into [order] reading it *)
    n_levels : int;
    in_nets : (string, Netlist.net array) Hashtbl.t;
    out_nets : (string, Netlist.net array) Hashtbl.t;
  }

  val build : Netlist.t -> t

  val net_labels : Netlist.t -> string array
  (** Human-readable per-net labels: port bits as ["bus[i]"] (bare name
      for width-1 ports), internal nets by their hierarchical
      description from lowering ({!Netlist.describe_net}, e.g.
      ["u_hist.count[3]"]), remaining anonymous nets as ["n<id>"]. *)
end

val set_input : t -> string -> Bitvec.t -> unit
val set_input_int : t -> string -> int -> unit
val get_output : t -> string -> Bitvec.t
val get_output_int : t -> string -> int

(** {1 Prebound input ports}

    {!set_input} pays a hash lookup per call; stimulus loops driving the
    same port every cycle bind it once and drive through the handle.
    Handles carry only netlist structure, so one is valid for any
    simulator instance over the same netlist. *)

type port

val in_port : t -> string -> port
(** Raises [Not_found] for an unknown input port. *)

val drive_port : t -> port -> Bitvec.t -> unit
(** Like {!set_input} but without the name lookup; bits of vectors up
    to 62 wide are extracted word-at-once rather than per-bit. *)

val drive_port_int : t -> port -> int -> unit
(** Drive the low bits of a two's-complement int (no [Bitvec]
    allocation at all). *)

val settle : t -> unit
(** Propagate combinational logic only. *)

val step : t -> unit
(** One clock cycle: settle, commit flip-flops, settle. *)

val run : t -> int -> unit

val cycles : t -> int
val gate_evals : t -> int
(** Total gate evaluations so far (simulation-cost metric). *)

val cells_skipped : t -> int
(** Combinational evaluations avoided relative to a full settle
    (always 0 in {!Full_eval} mode). *)

val comb_cells : t -> int
(** Number of combinational cells in the design. *)

val dff_cells : t -> int
(** Number of flip-flops in the design. *)

val net_toggles : t -> Netlist.net -> int
(** Value transitions observed on a net across clock cycles — the
    switching activity behind dynamic-power estimation. *)

val net_value : t -> Netlist.net -> bool
(** Current value of one net (read-only observation point). *)

val probes : t -> (string * Netlist.net) list
(** Hinted internal nets as hierarchical observation points, sorted by
    name ({!Netlist.describe_net}, e.g. ["u_hist.count[3]"]).  Port
    nets are excluded — they are observable under their port names. *)

val toggle_total : t -> int
(** Sum of {!net_toggles} over every net. *)

val full_settles : t -> int
(** Settles that evaluated every combinational cell: all of them in
    {!Full_eval} mode, only the forced initial pass in
    {!Event_driven} mode. *)

(** {1 Activity profiling}

    Per-net toggle ranking is always available (the toggle counters
    exist for power estimation anyway); per-cell evaluation counts
    cost one increment per gate evaluation and are therefore off
    until {!enable_profile}. *)

val enable_profile : t -> unit
(** Start counting evaluations per combinational cell. *)

val profiling : t -> bool

val net_activity : t -> (string * int) list
(** Nets with at least one toggle, most active first.  Port bits are
    labelled by name ("bus[3]", or the bare name for 1-bit ports);
    hinted internal nets by their hierarchical description
    (["u_hist.count[3]"]), remaining internal nets as ["n<id>"]. *)

val cell_activity : t -> (string * int) list
(** Evaluations per combinational cell, most evaluated first,
    labelled ["<out-net>:<kind>"].  Empty unless {!enable_profile}
    was called before simulation. *)

(** {1 Toggle coverage} *)

val enable_toggle_cover : t -> unit
(** Start per-net toggle *coverage* (directional 0->1 / 1->0 edges, as
    opposed to the always-on undirected toggle counters above).  Bits
    are named like {!net_activity} labels.  Recording piggybacks on the
    per-cycle toggle accounting in both modes, so a disabled run pays
    one branch per changed net.  Idempotent. *)

val toggle_cover : t -> Cover.Toggle.t option

(** Allocate a windowed switching-activity sampler over all nets
    ([window] cycles per window, default {!Cover.Activity} size).
    Idempotent; the first call wins.  Both evaluation modes ride the
    same per-cycle toggle accounting, so their sampled activity is
    bit-identical. *)
val enable_power_sampler : ?window:int -> t -> unit

(** The sampler allocated by {!enable_power_sampler}, if any. *)
val power_activity : t -> Cover.Activity.t option

(** {1 Causal events and checkpointing} *)

val enable_events : t -> unit
(** Start emitting causal events into the global [Obs.Event] log
    (enabling it if needed): input edges as [Stimulus], net changes as
    [Net_change] caused by the latest change among the evaluated
    cell's input nets (fanout propagation made explicit), flip-flop
    commits caused by the change that last moved the D input.  Net
    subjects are the hierarchical {!net_labels}.  Fully supported in
    [Event_driven] mode; [Full_eval] re-evaluates everything per settle
    and records no change causality.  Costs one branch per changed net
    while off. *)

type checkpoint

val checkpoint : t -> checkpoint
(** Deep copy of net values, scheduler state and cycle count.  Toggle
    counters, coverage and profiles are not captured. *)

val restore : t -> checkpoint -> unit
(** Rewind to a checkpoint taken on the same simulator; re-running the
    original stimulus afterwards is bit-identical to the original
    window. *)

val checkpoint_cycle : checkpoint -> int
