(** Levelized two-valued gate-level simulator — the "conventional RTL
    simulator" stand-in for the paper's simulation-speed comparison.
    Flip-flops power up at 0. *)

type t

val create : Netlist.t -> t

val set_input : t -> string -> Bitvec.t -> unit
val set_input_int : t -> string -> int -> unit
val get_output : t -> string -> Bitvec.t
val get_output_int : t -> string -> int

val settle : t -> unit
(** Propagate combinational logic only. *)

val step : t -> unit
(** One clock cycle: settle, commit flip-flops, settle. *)

val run : t -> int -> unit

val cycles : t -> int
val gate_evals : t -> int
(** Total gate evaluations so far (simulation-cost metric). *)

val net_toggles : t -> Netlist.net -> int
(** Value transitions observed on a net across clock cycles — the
    switching activity behind dynamic-power estimation. *)
