type lut = {
  lut_inputs : Netlist.net array;
  truth : int;
  lut_out : Netlist.net;
}

exception Map_error of string

type mapped = {
  source : Netlist.t;
  lut_tbl : (Netlist.net, lut) Hashtbl.t;  (* keyed by output net *)
  m_ffs : (Netlist.net * Netlist.net) list;
  primary_out : (Netlist.net, unit) Hashtbl.t;
}

let source m = m.source
let luts m = Hashtbl.fold (fun _ l acc -> l :: acc) m.lut_tbl []
let ffs m = m.m_ffs
let lut_count m = Hashtbl.length m.lut_tbl
let ff_count m = List.length m.m_ffs

(* The mapped design keeps its source netlist, so each LUT/FF can be
   attributed to the instance whose lowering produced its output net. *)
let by_module m =
  let tbl = Hashtbl.create 16 in
  let bump r dl df =
    let l, f = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl r) in
    Hashtbl.replace tbl r (l + dl, f + df)
  in
  Hashtbl.iter
    (fun net _ -> bump (Netlist.region_of m.source net) 1 0)
    m.lut_tbl;
  List.iter (fun (_, q) -> bump (Netlist.region_of m.source q) 0 1) m.m_ffs;
  List.sort compare
    (Hashtbl.fold (fun r (l, f) acc -> (r, l, f) :: acc) tbl [])

(* Truth table of a single gate, input position i = bit i of the index. *)
let seed_lut (c : Netlist.cell) =
  let tt =
    match c.kind with
    | Cell.Const0 -> 0b0
    | Const1 -> 0b1
    | Buf -> 0b10
    | Not -> 0b01
    | And2 -> 0b1000
    | Or2 -> 0b1110
    | Xor2 -> 0b0110
    | Nand2 -> 0b0111
    | Nor2 -> 0b0001
    | Mux2 -> 0b11011000 (* index = sel | a<<1 | b<<2; out = sel ? a : b *)
    | Dff -> raise (Map_error "seed_lut: flip-flop")
  in
  { lut_inputs = Array.copy c.ins; truth = tt; lut_out = c.out }

let lut_value l values_of =
  let index = ref 0 in
  Array.iteri
    (fun i net -> if values_of net then index := !index lor (1 lsl i))
    l.lut_inputs;
  l.truth lsr !index land 1 = 1

(* Merge [victim] (driving one input of [l], single fanout) into [l]. *)
let absorb l victim =
  let keep =
    Array.to_list l.lut_inputs |> List.filter (fun n -> n <> victim.lut_out)
  in
  let extra =
    Array.to_list victim.lut_inputs
    |> List.filter (fun n -> not (List.mem n keep))
  in
  let merged = Array.of_list (keep @ extra) in
  let n = Array.length merged in
  let truth = ref 0 in
  for idx = 0 to (1 lsl n) - 1 do
    let values_of net =
      let rec position i =
        if i >= n then
          raise
            (Map_error
               (Printf.sprintf "absorb: net %d escapes the merged support" net))
        else if merged.(i) = net then i
        else position (i + 1)
      in
      if net = victim.lut_out then lut_value victim (fun m ->
          idx lsr (let rec p i = if merged.(i) = m then i else p (i + 1) in p 0)
          land 1 = 1)
      else idx lsr position 0 land 1 = 1
    in
    if lut_value l values_of then truth := !truth lor (1 lsl idx)
  done;
  { lut_inputs = merged; truth = !truth; lut_out = l.lut_out }

let map ?(k = 4) nl =
  if k < 1 || k > 6 then raise (Map_error "map: K must be in 1..6");
  Netlist.check nl;
  let lut_tbl = Hashtbl.create 256 in
  let m_ffs = ref [] in
  List.iter
    (fun (c : Netlist.cell) ->
      match c.kind with
      | Cell.Dff -> m_ffs := (c.ins.(0), c.out) :: !m_ffs
      | _ -> Hashtbl.replace lut_tbl c.out (seed_lut c))
    (Netlist.cells nl);
  let primary_out = Hashtbl.create 64 in
  List.iter
    (fun (_, nets) ->
      Array.iter (fun n -> Hashtbl.replace primary_out n ()) nets)
    (Netlist.outputs nl);
  (* fanout counts over LUT inputs, FF data inputs and primary outputs *)
  let recompute_fanout () =
    let fanout = Hashtbl.create 256 in
    let bump n =
      Hashtbl.replace fanout n (1 + Option.value ~default:0 (Hashtbl.find_opt fanout n))
    in
    Hashtbl.iter (fun _ l -> Array.iter bump l.lut_inputs) lut_tbl;
    List.iter (fun (d, _) -> bump d) !m_ffs;
    Hashtbl.iter (fun n () -> bump n) primary_out;
    fanout
  in
  (* Greedy absorption passes until fixpoint. *)
  let changed = ref true in
  while !changed do
    changed := false;
    let fanout = recompute_fanout () in
    let outputs = Hashtbl.fold (fun net _ acc -> net :: acc) lut_tbl [] in
    List.iter
      (fun net ->
        match Hashtbl.find_opt lut_tbl net with
        | None -> ()
        | Some _ ->
            (* always operate on the current table entry: each
               absorption replaces it *)
            let try_absorb l victim_net =
              match Hashtbl.find_opt lut_tbl victim_net with
              | Some victim
                when Option.value ~default:0 (Hashtbl.find_opt fanout victim_net)
                     = 1
                     && (not (Hashtbl.mem primary_out victim_net))
                     && victim.lut_out <> l.lut_out ->
                  let keep =
                    Array.to_list l.lut_inputs
                    |> List.filter (fun n -> n <> victim_net)
                  in
                  let extra =
                    Array.to_list victim.lut_inputs
                    |> List.filter (fun n -> not (List.mem n keep))
                  in
                  if List.length keep + List.length extra <= k then begin
                    let merged = absorb l victim in
                    Hashtbl.replace lut_tbl l.lut_out merged;
                    Hashtbl.remove lut_tbl victim_net;
                    changed := true;
                    true
                  end
                  else false
              | Some _ | None -> false
            in
            (* retry current lut until nothing absorbs *)
            let rec greedy () =
              match Hashtbl.find_opt lut_tbl net with
              | None -> ()
              | Some l' ->
                  let absorbed =
                    Array.exists (fun input -> try_absorb l' input) l'.lut_inputs
                  in
                  if absorbed then greedy ()
            in
            greedy ())
      outputs
  done;
  { source = nl; lut_tbl; m_ffs = !m_ffs; primary_out }

(* Longest LUT chain: inputs/FF outputs are depth 0. *)
let depth m =
  let memo = Hashtbl.create 256 in
  let rec of_net net =
    match Hashtbl.find_opt memo net with
    | Some d -> d
    | None ->
        Hashtbl.replace memo net 0;
        (* breaks cycles through FFs *)
        let d =
          match Hashtbl.find_opt m.lut_tbl net with
          | None -> 0
          | Some l ->
              1
              + Array.fold_left
                  (fun acc input -> max acc (of_net input))
                  0 l.lut_inputs
        in
        Hashtbl.replace memo net d;
        d
  in
  let worst = ref 0 in
  List.iter
    (fun (_, nets) -> Array.iter (fun n -> worst := max !worst (of_net n)) nets)
    (Netlist.outputs m.source);
  List.iter (fun (d, _) -> worst := max !worst (of_net d)) m.m_ffs;
  !worst

(* Simulate the LUT network and compare against the gate netlist. *)
let verify ?(vectors = 200) ?(seed = 9) m =
  let gate_sim = Nl_sim.create m.source in
  let rng = Random.State.make [| seed |] in
  (* LUT-side state *)
  let values : (Netlist.net, bool) Hashtbl.t = Hashtbl.create 256 in
  let value_of net = Option.value ~default:false (Hashtbl.find_opt values net) in
  let rec eval net (visiting : (Netlist.net, unit) Hashtbl.t) =
    match Hashtbl.find_opt m.lut_tbl net with
    | None -> value_of net
    | Some l ->
        if Hashtbl.mem visiting net then value_of net
        else begin
          Hashtbl.replace visiting net ();
          let v = lut_value l (fun n -> eval n visiting) in
          Hashtbl.replace values net v;
          v
        end
  in
  let settle () =
    let visiting = Hashtbl.create 64 in
    List.iter
      (fun (_, nets) -> Array.iter (fun n -> ignore (eval n visiting)) nets)
      (Netlist.outputs m.source);
    List.iter (fun (d, _) -> ignore (eval d visiting)) m.m_ffs
  in
  let ok = ref true in
  for _ = 1 to vectors do
    List.iter
      (fun (name, nets) ->
        let bv =
          Bitvec.init (Array.length nets) (fun _ -> Random.State.bool rng)
        in
        Nl_sim.set_input gate_sim name bv;
        Array.iteri (fun i n -> Hashtbl.replace values n (Bitvec.get bv i)) nets)
      (Netlist.inputs m.source);
    (* one clock cycle on both sides *)
    Nl_sim.step gate_sim;
    settle ();
    let next = List.map (fun (d, q) -> (q, value_of d)) m.m_ffs in
    List.iter (fun (q, v) -> Hashtbl.replace values q v) next;
    settle ();
    List.iter
      (fun (name, nets) ->
        let lut_val = Bitvec.init (Array.length nets) (fun i -> value_of nets.(i)) in
        if not (Bitvec.equal lut_val (Nl_sim.get_output gate_sim name)) then
          ok := false)
      (Netlist.outputs m.source)
  done;
  !ok
