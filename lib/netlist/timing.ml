type report = {
  critical_ns : float;
  fmax_mhz : float;
  endpoint : string;
  levels : int;
}

(* Arrival-time propagation shared by the whole-design report and the
   per-module breakdown.  Returns the [arrive] forcing function plus
   the arrival/depth tables it fills in. *)
let propagate nl =
  let n = Netlist.net_count nl in
  let arrival = Array.make n 0.0 in
  let depth = Array.make n 0 in
  (* Flip-flop outputs launch at clock-to-q. *)
  List.iter
    (fun (c : Netlist.cell) ->
      if c.kind = Cell.Dff then begin
        arrival.(c.out) <- Cell.delay Cell.Dff;
        depth.(c.out) <- 0
      end)
    (Netlist.cells nl);
  (* Combinational cells are stored in creation order, which is already
     topological for inputs built before outputs; a DFS makes it robust
     to any ordering. *)
  let state = Hashtbl.create 256 in
  let rec arrive net =
    match Hashtbl.find_opt state net with
    | Some () -> arrival.(net)
    | None -> (
        Hashtbl.replace state net ();
        match Netlist.driver nl net with
        | None -> arrival.(net) (* primary input: 0 *)
        | Some c when c.kind = Cell.Dff -> arrival.(net)
        | Some c ->
            let worst = ref 0.0 and lvl = ref 0 in
            Array.iter
              (fun i ->
                let a = arrive i in
                if a > !worst then begin
                  worst := a;
                  lvl := depth.(i)
                end
                else if a = !worst && depth.(i) > !lvl then lvl := depth.(i))
              c.ins;
            arrival.(net) <- !worst +. Cell.delay c.kind;
            depth.(net) <- !lvl + (if c.kind = Cell.Const0 || c.kind = Cell.Const1 then 0 else 1);
            arrival.(net))
  in
  (arrive, arrival, depth)

let analyze nl =
  let arrive, _, depth = propagate nl in
  let best = ref 0.0 and best_ep = ref "(none)" and best_lvl = ref 0 in
  let consider label net extra =
    let a = arrive net +. extra in
    if a > !best then begin
      best := a;
      best_ep := label;
      best_lvl := depth.(net)
    end
  in
  List.iter
    (fun (c : Netlist.cell) ->
      if c.kind = Cell.Dff then
        consider (Printf.sprintf "dff d-input (net %d)" c.ins.(0)) c.ins.(0)
          Cell.setup_time)
    (Netlist.cells nl);
  List.iter
    (fun (name, nets) ->
      Array.iter (fun net -> consider ("output " ^ name) net 0.0) nets)
    (Netlist.outputs nl);
  let critical_ns = !best in
  let fmax_mhz =
    if critical_ns <= 0.0 then Float.infinity else 1000.0 /. critical_ns
  in
  { critical_ns; fmax_mhz; endpoint = !best_ep; levels = !best_lvl }

let meets r ~freq_mhz = r.fmax_mhz >= freq_mhz

type module_row = { path : string; m_worst_ns : float; m_levels : int }

let by_module nl =
  let arrive, _, depth = propagate nl in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (c : Netlist.cell) ->
      let a = arrive c.out in
      let r = Netlist.region_of nl c.out in
      match Hashtbl.find_opt tbl r with
      | Some (worst, _) when worst >= a -> ()
      | _ -> Hashtbl.replace tbl r (a, depth.(c.out)))
    (Netlist.cells nl);
  List.sort compare
    (Hashtbl.fold
       (fun path (m_worst_ns, m_levels) acc ->
         { path; m_worst_ns; m_levels } :: acc)
       tbl [])

let pp_report fmt r =
  Format.fprintf fmt
    "critical path %.2f ns (%d levels) to %s; fmax %.1f MHz" r.critical_ns
    r.levels r.endpoint r.fmax_mhz
