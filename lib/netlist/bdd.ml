type node = int

exception Size_limit

(* Node storage: three growable arrays indexed by node id.  Ids 0 and 1
   are the terminals (their slots are unused placeholders). *)
type t = {
  max_nodes : int;
  mutable level : int array;  (* variable index; max_int for terminals *)
  mutable hi : int array;
  mutable lo : int array;
  mutable next : int;  (* next free id *)
  unique : (int * int * int, node) Hashtbl.t;
  ite_memo : (int * int * int, node) Hashtbl.t;
}

let zero = 0
let one = 1

let create ?(max_nodes = 2_000_000) () =
  let n = 1024 in
  let t =
    {
      max_nodes;
      level = Array.make n max_int;
      hi = Array.make n 0;
      lo = Array.make n 0;
      next = 2;
      unique = Hashtbl.create 4096;
      ite_memo = Hashtbl.create 4096;
    }
  in
  t

let grow t =
  let n = Array.length t.level in
  let bigger = 2 * n in
  let copy arr fill =
    let fresh = Array.make bigger fill in
    Array.blit arr 0 fresh 0 n;
    fresh
  in
  t.level <- copy t.level max_int;
  t.hi <- copy t.hi 0;
  t.lo <- copy t.lo 0

let mk t level hi lo =
  if hi = lo then hi
  else
    let key = (level, hi, lo) in
    match Hashtbl.find_opt t.unique key with
    | Some id -> id
    | None ->
        if t.next >= t.max_nodes then raise Size_limit;
        if t.next >= Array.length t.level then grow t;
        let id = t.next in
        t.next <- id + 1;
        t.level.(id) <- level;
        t.hi.(id) <- hi;
        t.lo.(id) <- lo;
        Hashtbl.replace t.unique key id;
        id

let var t i = mk t i one zero

let level_of t n = if n < 2 then max_int else t.level.(n)

let rec ite t f g h =
  if f = one then g
  else if f = zero then h
  else if g = h then g
  else if g = one && h = zero then f
  else begin
    let key = (f, g, h) in
    match Hashtbl.find_opt t.ite_memo key with
    | Some r -> r
    | None ->
        let top =
          min (level_of t f) (min (level_of t g) (level_of t h))
        in
        let cof n branch =
          if level_of t n = top then
            if branch then t.hi.(n) else t.lo.(n)
          else n
        in
        let hi = ite t (cof f true) (cof g true) (cof h true) in
        let lo = ite t (cof f false) (cof g false) (cof h false) in
        let r = mk t top hi lo in
        Hashtbl.replace t.ite_memo key r;
        r
  end

let not_ t f = ite t f zero one
let and_ t f g = ite t f g zero
let or_ t f g = ite t f one g
let xor t f g = ite t f (not_ t g) g

let node_count t = t.next

let satisfying t f =
  if f = zero then None
  else begin
    let rec walk n acc =
      if n = one then acc
      else if t.hi.(n) <> zero then walk t.hi.(n) ((t.level.(n), true) :: acc)
      else walk t.lo.(n) ((t.level.(n), false) :: acc)
    in
    Some (List.rev (walk f []))
  end
