type verdict =
  | Proved
  | Failed of counterexample
  | Interface_mismatch of string
  | Too_large

and counterexample = {
  at : string;
  inputs : (string * Bitvec.t) list;
  state_bits : (int * bool) list;
}

(* Variable plan shared by both designs: primary-input bits (sorted by
   port name) first, then register bits in creation order. *)
type plan = {
  input_vars : (string * int array) list;  (* name -> var index per bit *)
  n_input_vars : int;
  n_state_bits : int;
}

let interface (nl : Netlist.t) =
  ( List.sort compare
      (List.map (fun (n, nets) -> (n, Array.length nets)) (Netlist.inputs nl)),
    List.sort compare
      (List.map (fun (n, nets) -> (n, Array.length nets)) (Netlist.outputs nl)),
    List.length
      (List.filter (fun (c : Netlist.cell) -> c.kind = Cell.Dff)
         (Netlist.cells nl)) )

let make_plan nl =
  let ins, _, n_regs = interface nl in
  let counter = ref 0 in
  let input_vars =
    List.map
      (fun (name, width) ->
        let vars =
          Array.init width (fun _ ->
              let v = !counter in
              incr counter;
              v)
        in
        (name, vars))
      ins
  in
  { input_vars; n_input_vars = !counter; n_state_bits = n_regs }

(* Build BDDs for every net of the netlist under the shared plan.
   Returns per-output functions and per-register next-state functions
   (in register creation order). *)
let build mgr plan (nl : Netlist.t) =
  let values : (int, Bdd.node) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (name, nets) ->
      let vars = List.assoc name plan.input_vars in
      Array.iteri
        (fun i n -> Hashtbl.replace values n (Bdd.var mgr vars.(i)))
        nets)
    (Netlist.inputs nl);
  (* register outputs are pseudo inputs, numbered after the real ones *)
  let dffs =
    List.filter (fun (c : Netlist.cell) -> c.kind = Cell.Dff)
      (Netlist.cells nl)
  in
  List.iteri
    (fun i (c : Netlist.cell) ->
      Hashtbl.replace values c.out (Bdd.var mgr (plan.n_input_vars + i)))
    dffs;
  let rec eval net =
    match Hashtbl.find_opt values net with
    | Some node -> node
    | None ->
        let node =
          match Netlist.driver nl net with
          | None -> failwith "Cec: undriven net"
          | Some c -> (
              let i k = eval c.ins.(k) in
              match c.kind with
              | Cell.Const0 -> Bdd.zero
              | Const1 -> Bdd.one
              | Buf -> i 0
              | Not -> Bdd.not_ mgr (i 0)
              | And2 -> Bdd.and_ mgr (i 0) (i 1)
              | Or2 -> Bdd.or_ mgr (i 0) (i 1)
              | Xor2 -> Bdd.xor mgr (i 0) (i 1)
              | Nand2 -> Bdd.not_ mgr (Bdd.and_ mgr (i 0) (i 1))
              | Nor2 -> Bdd.not_ mgr (Bdd.or_ mgr (i 0) (i 1))
              | Mux2 -> Bdd.ite mgr (i 0) (i 1) (i 2)
              | Dff -> assert false (* seeded above *))
        in
        Hashtbl.replace values net node;
        node
  in
  let outputs =
    List.map
      (fun (name, nets) -> (name, Array.map eval nets))
      (Netlist.outputs nl)
  in
  let next_state =
    List.map (fun (c : Netlist.cell) -> eval c.ins.(0)) dffs
  in
  (outputs, next_state)

let decode plan diff_assignment =
  let lookup var =
    match List.assoc_opt var diff_assignment with
    | Some b -> b
    | None -> false
  in
  let inputs =
    List.map
      (fun (name, vars) ->
        ( name,
          Bitvec.init (Array.length vars) (fun i -> lookup vars.(i)) ))
      plan.input_vars
  in
  let state_bits =
    List.filter_map
      (fun (v, b) ->
        if v >= plan.n_input_vars then Some (v - plan.n_input_vars, b)
        else None)
      diff_assignment
  in
  (inputs, state_bits)

let check ?(max_nodes = 2_000_000) a b =
  let ins_a, outs_a, regs_a = interface a in
  let ins_b, outs_b, regs_b = interface b in
  if ins_a <> ins_b then Interface_mismatch "primary inputs differ"
  else if outs_a <> outs_b then Interface_mismatch "primary outputs differ"
  else if regs_a <> regs_b then
    Interface_mismatch
      (Printf.sprintf "register bit counts differ (%d vs %d)" regs_a regs_b)
  else begin
    let plan = make_plan a in
    let mgr = Bdd.create ~max_nodes () in
    match
      let outs_fa, next_a = build mgr plan a in
      let outs_fb, next_b = build mgr plan b in
      let check_pair at fa fb =
        if fa = fb then None
        else
          let diff = Bdd.xor mgr fa fb in
          match Bdd.satisfying mgr diff with
          | None -> None
          | Some assignment ->
              let inputs, state_bits = decode plan assignment in
              Some { at; inputs; state_bits }
      in
      let rec scan_outputs = function
        | [] -> None
        | (name, fa) :: rest -> (
            let fb = List.assoc name outs_fb in
            let rec bits i =
              if i >= Array.length fa then None
              else
                match
                  check_pair (Printf.sprintf "%s[%d]" name i) fa.(i) fb.(i)
                with
                | Some cex -> Some cex
                | None -> bits (i + 1)
            in
            match bits 0 with Some cex -> Some cex | None -> scan_outputs rest)
      in
      let scan_state () =
        let rec go i = function
          | [], [] -> None
          | fa :: ra, fb :: rb -> (
              match check_pair (Printf.sprintf "next-state[%d]" i) fa fb with
              | Some cex -> Some cex
              | None -> go (i + 1) (ra, rb))
          | _ -> Some { at = "register count"; inputs = []; state_bits = [] }
        in
        go 0 (next_a, next_b)
      in
      match scan_outputs outs_fa with
      | Some cex -> Some cex
      | None -> scan_state ()
    with
    | None -> Proved
    | Some cex -> Failed cex
    | exception Bdd.Size_limit -> Too_large
  end

let check_ir ?max_nodes a b =
  check ?max_nodes (Lower.lower a) (Lower.lower b)

let pp_verdict fmt = function
  | Proved -> Format.pp_print_string fmt "proved equivalent"
  | Too_large -> Format.pp_print_string fmt "aborted: BDD size limit"
  | Interface_mismatch why ->
      Format.fprintf fmt "interface mismatch: %s" why
  | Failed cex ->
      Format.fprintf fmt "NOT equivalent at %s; inputs:" cex.at;
      List.iter
        (fun (name, bv) -> Format.fprintf fmt " %s=%a" name Bitvec.pp bv)
        cex.inputs;
      if cex.state_bits <> [] then begin
        Format.fprintf fmt "; state bits:";
        List.iter
          (fun (i, b) -> Format.fprintf fmt " r%d=%b" i b)
          cex.state_bits
      end
