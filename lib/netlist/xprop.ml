module L = Bitvec.Logic

type t = {
  nl : Netlist.t;
  values : L.t array;
  order : Netlist.cell array;
  dffs : Netlist.cell array;
  in_nets : (string, Netlist.net array) Hashtbl.t;
  out_nets : (string, Netlist.net array) Hashtbl.t;
}

(* Same levelization as the two-valued simulator. *)
let topo_order nl =
  let cells = Netlist.cells nl in
  let comb = List.filter (fun c -> c.Netlist.kind <> Cell.Dff) cells in
  let state = Hashtbl.create 256 in
  let order = ref [] in
  let rec visit (c : Netlist.cell) =
    match Hashtbl.find_opt state c.out with
    | Some 2 -> ()
    | Some 1 -> failwith "Xprop: combinational loop"
    | _ ->
        Hashtbl.replace state c.out 1;
        Array.iter
          (fun n ->
            match Netlist.driver nl n with
            | Some d when d.Netlist.kind <> Cell.Dff -> visit d
            | Some _ | None -> ())
          c.ins;
        Hashtbl.replace state c.out 2;
        order := c :: !order
  in
  List.iter visit comb;
  Array.of_list (List.rev !order)

let create nl =
  Netlist.check nl;
  let in_nets = Hashtbl.create 8 and out_nets = Hashtbl.create 8 in
  List.iter (fun (n, nets) -> Hashtbl.replace in_nets n nets) (Netlist.inputs nl);
  List.iter
    (fun (n, nets) -> Hashtbl.replace out_nets n nets)
    (Netlist.outputs nl);
  {
    nl;
    values = Array.make (Netlist.net_count nl) L.X;
    order = topo_order nl;
    dffs =
      List.filter (fun c -> c.Netlist.kind = Cell.Dff) (Netlist.cells nl)
      |> Array.of_list;
    in_nets;
    out_nets;
  }

let set_input t name bv =
  match Hashtbl.find_opt t.in_nets name with
  | None -> raise Not_found
  | Some nets ->
      if Bitvec.width bv <> Array.length nets then
        invalid_arg "Xprop.set_input: width mismatch";
      Array.iteri
        (fun i n -> t.values.(n) <- L.of_bool (Bitvec.get bv i))
        nets

let set_input_x t name =
  match Hashtbl.find_opt t.in_nets name with
  | None -> raise Not_found
  | Some nets -> Array.iter (fun n -> t.values.(n) <- L.X) nets

let eval_cell t (c : Netlist.cell) =
  let v = t.values in
  let r =
    match c.kind with
    | Cell.Const0 -> L.L0
    | Const1 -> L.L1
    | Buf -> v.(c.ins.(0))
    | Not -> L.not_ v.(c.ins.(0))
    | And2 -> L.and_ v.(c.ins.(0)) v.(c.ins.(1))
    | Or2 -> L.or_ v.(c.ins.(0)) v.(c.ins.(1))
    | Xor2 -> L.xor v.(c.ins.(0)) v.(c.ins.(1))
    | Nand2 -> L.not_ (L.and_ v.(c.ins.(0)) v.(c.ins.(1)))
    | Nor2 -> L.not_ (L.or_ v.(c.ins.(0)) v.(c.ins.(1)))
    | Mux2 -> L.mux ~sel:v.(c.ins.(0)) v.(c.ins.(1)) v.(c.ins.(2))
    | Dff -> v.(c.out)
  in
  t.values.(c.out) <- r

let settle t = Array.iter (eval_cell t) t.order

let step t =
  settle t;
  let sampled = Array.map (fun c -> t.values.(c.Netlist.ins.(0))) t.dffs in
  Array.iteri (fun i c -> t.values.(c.Netlist.out) <- sampled.(i)) t.dffs;
  settle t

let run t n =
  for _ = 1 to n do
    step t
  done

let output_string t name =
  match Hashtbl.find_opt t.out_nets name with
  | None -> raise Not_found
  | Some nets ->
      String.init (Array.length nets) (fun i ->
          L.to_char t.values.(nets.(Array.length nets - 1 - i)))

let output_known t name =
  match Hashtbl.find_opt t.out_nets name with
  | None -> raise Not_found
  | Some nets ->
      Array.for_all (fun n -> L.to_bool t.values.(n) <> None) nets

let unknown_outputs t =
  List.filter_map
    (fun (name, nets) ->
      let unknown =
        Array.fold_left
          (fun acc n -> if L.to_bool t.values.(n) = None then acc + 1 else acc)
          0 nets
      in
      if unknown > 0 then Some (name, unknown) else None)
    (Netlist.outputs t.nl)

let unknown_ffs t =
  Array.fold_left
    (fun acc (c : Netlist.cell) ->
      if L.to_bool t.values.(c.out) = None then acc + 1 else acc)
    0 t.dffs
