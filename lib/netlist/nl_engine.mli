(** {!Engine} adapter for the gate-level netlist simulator
    ({!Nl_sim}).

    [kind] is ["netlist-event"] or ["netlist-full"] depending on the
    scheduling mode; input ports echo their last driven value (zero
    before the first drive) so the consolidated trace can record
    stimulus alongside outputs. *)

val create : ?label:string -> ?mode:Nl_sim.mode -> Netlist.t -> Engine.t

val create_word :
  ?label:string -> ?mode:Nl_wsim.mode -> lanes:int -> Netlist.t -> Engine.t
(** Word-parallel backend ({!Nl_wsim}), [kind] ["netlist-word"]:
    [Engine.lanes] reports the lane count, [Engine.set_input_lane] /
    [Engine.get_lane] address individual lanes, plain
    [Engine.set_input] broadcasts to every lane and [Engine.get] reads
    lane 0 — so in a lockstep differential against a scalar engine the
    golden lane is what gets compared.  [Engine.enable_cover] /
    [Engine.cover] expose lane 0's toggle collector. *)

val pack_word : ?label:string -> Nl_wsim.t -> Engine.t
(** Wrap an existing word-parallel simulator (e.g. one that already has
    faults injected via {!Nl_wsim.inject_stuck_at}). *)
