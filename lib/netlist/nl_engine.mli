(** {!Engine} adapter for the gate-level netlist simulator
    ({!Nl_sim}).

    [kind] is ["netlist-event"] or ["netlist-full"] depending on the
    scheduling mode; input ports echo their last driven value (zero
    before the first drive) so the consolidated trace can record
    stimulus alongside outputs. *)

val create : ?label:string -> ?mode:Nl_sim.mode -> Netlist.t -> Engine.t
