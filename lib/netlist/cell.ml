type kind =
  | Const0
  | Const1
  | Buf
  | Not
  | And2
  | Or2
  | Xor2
  | Nand2
  | Nor2
  | Mux2
  | Dff

let arity = function
  | Const0 | Const1 -> 0
  | Buf | Not | Dff -> 1
  | And2 | Or2 | Xor2 | Nand2 | Nor2 -> 2
  | Mux2 -> 3

let area = function
  | Const0 | Const1 -> 0.0
  | Buf -> 0.7
  | Not -> 0.7
  | And2 | Or2 -> 1.3
  | Nand2 | Nor2 -> 1.0
  | Xor2 -> 2.3
  | Mux2 -> 2.3
  | Dff -> 5.5

let delay = function
  | Const0 | Const1 -> 0.0
  | Buf -> 0.05
  | Not -> 0.05
  | And2 | Or2 -> 0.10
  | Nand2 | Nor2 -> 0.07
  | Xor2 -> 0.14
  | Mux2 -> 0.12
  | Dff -> 0.20

let setup_time = 0.10

let name = function
  | Const0 -> "const0"
  | Const1 -> "const1"
  | Buf -> "buf"
  | Not -> "not"
  | And2 -> "and2"
  | Or2 -> "or2"
  | Xor2 -> "xor2"
  | Nand2 -> "nand2"
  | Nor2 -> "nor2"
  | Mux2 -> "mux2"
  | Dff -> "dff"

let all =
  [ Const0; Const1; Buf; Not; And2; Or2; Xor2; Nand2; Nor2; Mux2; Dff ]
