(** Gate-level netlists.

    A netlist is a set of cells connected by integer-numbered nets, plus
    named primary input and output buses.  Construction goes through the
    gate builders below, which optionally perform constant folding and
    structural hashing (the "optimizing construction" that a production
    synthesis front end would do; it can be disabled to measure its
    effect — see DESIGN.md ablations). *)

type net = int

type cell = { kind : Cell.kind; ins : net array; out : net }

type t

val create : ?fold:bool -> name:string -> unit -> t
(** [fold] (default [true]) enables constant folding plus structural
    hashing during construction. *)

val name : t -> string
val folding : t -> bool

(** {1 Primary connectivity} *)

val new_net : t -> net
val add_input : t -> string -> int -> net array
val add_output : t -> string -> net array -> unit
val inputs : t -> (string * net array) list
val outputs : t -> (string * net array) list

(** {1 Gate builders} *)

val const0 : t -> net
val const1 : t -> net
val constant : t -> Bitvec.t -> net array
val not_ : t -> net -> net
val and2 : t -> net -> net -> net
val or2 : t -> net -> net -> net
val xor2 : t -> net -> net -> net
val nand2 : t -> net -> net -> net
val nor2 : t -> net -> net -> net
val mux2 : t -> sel:net -> net -> net -> net
(** [mux2 ~sel a b] = [a] if [sel] else [b]. *)

val dff : t -> d:net -> net
(** Allocates a flip-flop and returns its [q] net. *)

val dff_deferred : t -> net
(** Allocate a flip-flop output whose [d] input is supplied later with
    {!connect_dff} — needed because registers are read before the logic
    producing their next value has been built. *)

val connect_dff : t -> q:net -> d:net -> unit
(** Raises [Invalid_argument] if [q] was not created by
    {!dff_deferred} or is already connected. *)

(** {1 Observation} *)

val cells : t -> cell list
(** All cells, in creation order. *)

val cell_count : t -> int
val net_count : t -> int
val driver : t -> net -> cell option
(** The cell driving a net; [None] for primary inputs and unconnected
    nets. *)

(** {1 Hierarchy annotations}

    Advisory metadata carried alongside the structure: each driven net
    can belong to a {e region} — the dot-separated instance path of the
    module instance whose lowering produced it ([""] is the top module)
    — and can carry a {e name hint}, the design-level name of the value
    on the net (["count[3]"]).  The rewriting passes ({!Opt},
    {!Techmap}, {!Pnr}) preserve both, so per-module area/timing/power
    breakdowns, coverage names, profiles and fault sites all speak the
    same hierarchical language. *)

val set_current_region : t -> string -> unit
(** Cells recorded while a region is set are tagged with it; [""]
    (the initial state) turns tagging off. *)

val current_region : t -> string
val region_of : t -> net -> string
(** Owning instance path of the cell driving [net]; [""] for the top
    module, primary inputs and untagged nets. *)

val set_region : t -> net -> string -> unit
val hint_of : t -> net -> string option
val set_hint : t -> net -> string -> unit
(** First hint wins; later calls on an already-hinted net are no-ops
    (structural hashing can merge nets across instances). *)

val copy_meta : src:t -> dst:t -> net -> net -> unit
(** [copy_meta ~src ~dst src_net dst_net] carries region and hint from
    [src_net] over to [dst_net], keeping whatever [dst_net] already
    has.  Used by the rewriting passes when they rebuild a netlist. *)

val describe_net : t -> net -> string
(** ["<region>.<hint>"], falling back to ["n<id>"] for the unnamed
    parts — the stable cross-layer name used in reports. *)

val region_table_size : t -> int
val hint_table_size : t -> int
val region_names : t -> string list
(** Distinct non-top regions present, sorted. *)

val check : t -> unit
(** Verifies every non-input net has exactly one driver and every
    deferred flip-flop got connected.  Raises [Failure]. *)

val stats : t -> (Cell.kind * int) list
(** Instance count per cell kind (zero-count kinds omitted). *)

val emit_verilog : t -> string
(** Structural Verilog of the mapped netlist ([*.v] hand-off of the
    paper's flow). *)
