(** Area accounting in NAND2-equivalent gate units. *)

type report = {
  total : float;  (** gate-equivalents, flip-flops included *)
  combinational : float;
  sequential : float;
  n_cells : int;
  n_ffs : int;
  by_kind : (Cell.kind * int * float) list;  (** kind, count, area *)
}

val analyze : Netlist.t -> report
val pp_report : Format.formatter -> report -> unit

type module_row = {
  path : string;  (** instance path ({!Netlist.region_of}); [""] = top *)
  m_cells : int;
  m_ffs : int;
  m_area : float;  (** gate equivalents *)
}

val by_module : Netlist.t -> module_row list
(** Per-module area breakdown keyed on the netlist's region
    annotations, sorted by path.  Cells without a region (top-level
    glue, or a netlist from a flattening flow) fall into the [""]
    row. *)
