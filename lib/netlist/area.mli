(** Area accounting in NAND2-equivalent gate units. *)

type report = {
  total : float;  (** gate-equivalents, flip-flops included *)
  combinational : float;
  sequential : float;
  n_cells : int;
  n_ffs : int;
  by_kind : (Cell.kind * int * float) list;  (** kind, count, area *)
}

val analyze : Netlist.t -> report
val pp_report : Format.formatter -> report -> unit
