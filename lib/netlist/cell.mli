(** Generic technology cell library.

    Areas are in NAND2-equivalent gate units and delays in nanoseconds —
    a representative 180 nm-class standard-cell flavour (the paper's
    FPGA/ASIC back end is proprietary; only ratios matter for the
    reproduced results). *)

type kind =
  | Const0
  | Const1
  | Buf
  | Not
  | And2
  | Or2
  | Xor2
  | Nand2
  | Nor2
  | Mux2  (** inputs: select, then-input, else-input *)
  | Dff  (** input: d; output: q; implicit global clock *)

val arity : kind -> int
val area : kind -> float
val delay : kind -> float
(** Propagation delay; for [Dff] this is clock-to-q. *)

val setup_time : float
(** Dff setup requirement, added to every register-bound path. *)

val name : kind -> string
val all : kind list
