let mark_live nl =
  let live = Hashtbl.create 256 in
  let queue = Queue.create () in
  List.iter
    (fun (_, nets) -> Array.iter (fun n -> Queue.push n queue) nets)
    (Netlist.outputs nl);
  while not (Queue.is_empty queue) do
    let net = Queue.pop queue in
    if not (Hashtbl.mem live net) then begin
      Hashtbl.replace live net ();
      match Netlist.driver nl net with
      | None -> ()
      | Some c -> Array.iter (fun i -> Queue.push i queue) c.Netlist.ins
    end
  done;
  live

let live_cells nl =
  let live = mark_live nl in
  List.length
    (List.filter
       (fun (c : Netlist.cell) -> Hashtbl.mem live c.out)
       (Netlist.cells nl))

let optimize nl =
  let live = mark_live nl in
  let fresh = Netlist.create ~fold:true ~name:(Netlist.name nl) () in
  let net_map = Hashtbl.create 256 in
  (* Regions and name hints ride along: whenever an old net gets a
     fresh counterpart, its annotations are copied (first writer wins —
     folding can merge several old nets onto one fresh net, and the
     first name/owner is the one reports keep). *)
  let bind old_net fresh_net =
    Netlist.copy_meta ~src:nl ~dst:fresh old_net fresh_net;
    Hashtbl.replace net_map old_net fresh_net
  in
  let remap n =
    match Hashtbl.find_opt net_map n with
    | Some n' -> n'
    | None ->
        (* An input net that feeds nothing live, or a don't-care: map to
           constant zero so widths stay intact. *)
        Netlist.const0 fresh
  in
  List.iter
    (fun (name, nets) ->
      let fresh_nets = Netlist.add_input fresh name (Array.length nets) in
      Array.iteri (fun i n -> bind n fresh_nets.(i)) nets)
    (Netlist.inputs nl);
  (* Live flip-flops first: their q nets are read by logic created
     before their d inputs exist. *)
  let live_dffs =
    List.filter
      (fun (c : Netlist.cell) ->
        c.kind = Cell.Dff && Hashtbl.mem live c.out)
      (Netlist.cells nl)
  in
  List.iter
    (fun (c : Netlist.cell) -> bind c.out (Netlist.dff_deferred fresh))
    live_dffs;
  (* Combinational survivors in creation order (which is topological). *)
  List.iter
    (fun (c : Netlist.cell) ->
      if c.kind <> Cell.Dff && Hashtbl.mem live c.out then begin
        let i k = remap c.ins.(k) in
        let fresh_out =
          match c.kind with
          | Cell.Const0 -> Netlist.const0 fresh
          | Const1 -> Netlist.const1 fresh
          | Buf -> i 0
          | Not -> Netlist.not_ fresh (i 0)
          | And2 -> Netlist.and2 fresh (i 0) (i 1)
          | Or2 -> Netlist.or2 fresh (i 0) (i 1)
          | Xor2 -> Netlist.xor2 fresh (i 0) (i 1)
          | Nand2 -> Netlist.nand2 fresh (i 0) (i 1)
          | Nor2 -> Netlist.nor2 fresh (i 0) (i 1)
          | Mux2 -> Netlist.mux2 fresh ~sel:(i 0) (i 1) (i 2)
          | Dff -> assert false
        in
        bind c.out fresh_out
      end)
    (Netlist.cells nl);
  List.iter
    (fun (c : Netlist.cell) ->
      Netlist.connect_dff fresh
        ~q:(Hashtbl.find net_map c.out)
        ~d:(remap c.ins.(0)))
    live_dffs;
  List.iter
    (fun (name, nets) -> Netlist.add_output fresh name (Array.map remap nets))
    (Netlist.outputs nl);
  Netlist.check fresh;
  fresh
