type state = {
  sim : Nl_sim.t;
  nl_inputs : (string * int) list;
  nl_outputs : (string * int) list;
  driven : (string, Bitvec.t) Hashtbl.t;  (* last value per input port *)
  sim_kind : string;
}

let make_impl sim_kind =
  (module struct
    type t = state

    let kind = sim_kind
    let inputs t = t.nl_inputs
    let outputs t = t.nl_outputs

    let set_input t name bv =
      Nl_sim.set_input t.sim name bv;
      Hashtbl.replace t.driven name bv

    let get t name =
      match List.assoc_opt name t.nl_outputs with
      | Some _ -> Nl_sim.get_output t.sim name
      | None -> (
          match Hashtbl.find_opt t.driven name with
          | Some bv -> bv
          | None -> Bitvec.zero (List.assoc name t.nl_inputs))

    let settle t = Nl_sim.settle t.sim
    let step t = Nl_sim.step t.sim
    let cycles t = Nl_sim.cycles t.sim

    let stats t =
      [
        ("gate_evals", Nl_sim.gate_evals t.sim);
        ("cells_skipped", Nl_sim.cells_skipped t.sim);
        ("comb_cells", Nl_sim.comb_cells t.sim);
        ("dff_cells", Nl_sim.dff_cells t.sim);
        ("full_settles", Nl_sim.full_settles t.sim);
        ("toggles", Nl_sim.toggle_total t.sim);
      ]

    let enable_cover t = Nl_sim.enable_toggle_cover t.sim
    let cover t = Nl_sim.toggle_cover t.sim
  end : Engine.S
    with type t = state)

let create ?label ?(mode = Nl_sim.Event_driven) nl =
  let sim_kind =
    match mode with
    | Nl_sim.Event_driven -> "netlist-event"
    | Nl_sim.Full_eval -> "netlist-full"
  in
  let widths ports = List.map (fun (n, nets) -> (n, Array.length nets)) ports in
  let state =
    {
      sim = Nl_sim.create ~mode nl;
      nl_inputs = widths (Netlist.inputs nl);
      nl_outputs = widths (Netlist.outputs nl);
      driven = Hashtbl.create 8;
      sim_kind;
    }
  in
  Engine.pack ?label (make_impl sim_kind) state
