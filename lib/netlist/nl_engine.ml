type state = {
  sim : Nl_sim.t;
  nl_inputs : (string * int) list;
  nl_outputs : (string * int) list;
  driven : (string, Bitvec.t) Hashtbl.t;  (* last value per input port *)
  sim_kind : string;
  mutable probe_tbl : (string, Netlist.net) Hashtbl.t option;
      (* probe name -> net, built on first probe read *)
}

let make_impl sim_kind =
  (module struct
    type t = state

    let kind = sim_kind
    let inputs t = t.nl_inputs
    let outputs t = t.nl_outputs

    let set_input t name bv =
      Nl_sim.set_input t.sim name bv;
      Hashtbl.replace t.driven name bv

    let get t name =
      match List.assoc_opt name t.nl_outputs with
      | Some _ -> Nl_sim.get_output t.sim name
      | None -> (
          match Hashtbl.find_opt t.driven name with
          | Some bv -> bv
          | None -> Bitvec.zero (List.assoc name t.nl_inputs))

    let settle t = Nl_sim.settle t.sim
    let step t = Nl_sim.step t.sim
    let cycles t = Nl_sim.cycles t.sim
    let lanes _ = 1

    let set_input_lane t ~lane name bv =
      if lane <> 0 then
        invalid_arg "Nl_engine: scalar backend has a single lane";
      set_input t name bv

    let get_lane t ~lane name =
      if lane <> 0 then
        invalid_arg "Nl_engine: scalar backend has a single lane";
      get t name

    let stats t =
      [
        ("gate_evals", Nl_sim.gate_evals t.sim);
        ("cells_skipped", Nl_sim.cells_skipped t.sim);
        ("comb_cells", Nl_sim.comb_cells t.sim);
        ("dff_cells", Nl_sim.dff_cells t.sim);
        ("full_settles", Nl_sim.full_settles t.sim);
        ("toggles", Nl_sim.toggle_total t.sim);
      ]

    let probes t =
      List.map (fun (name, _) -> (name, 1)) (Nl_sim.probes t.sim)

    let probe t name =
      let tbl =
        match t.probe_tbl with
        | Some tbl -> tbl
        | None ->
            let tbl = Hashtbl.create 64 in
            List.iter
              (fun (n, net) -> Hashtbl.replace tbl n net)
              (Nl_sim.probes t.sim);
            t.probe_tbl <- Some tbl;
            tbl
      in
      let net = Hashtbl.find tbl name in
      Bitvec.init 1 (fun _ -> Nl_sim.net_value t.sim net)

    let enable_cover t = Nl_sim.enable_toggle_cover t.sim
    let cover t = Nl_sim.toggle_cover t.sim
    let enable_power_sampler t = Nl_sim.enable_power_sampler t.sim
    let power_activity t = Nl_sim.power_activity t.sim
    let enable_events t = Nl_sim.enable_events t.sim
    let events _ = Obs.Event.events ()

    let checkpoint t =
      let ck = Nl_sim.checkpoint t.sim in
      Some (fun () -> Nl_sim.restore t.sim ck)
  end : Engine.S
    with type t = state)

(* ------------------------------------------------------------------ *)
(* Word-parallel backend: an Nl_wsim behind the same Engine face.      *)

type wstate = {
  wsim : Nl_wsim.t;
  w_inputs : (string * int) list;
  w_outputs : (string * int) list;
  wdriven : (string, Bitvec.t) Hashtbl.t;  (* broadcast echo per input *)
}

module Wimpl = struct
  type t = wstate

  let kind = "netlist-word"
  let inputs t = t.w_inputs
  let outputs t = t.w_outputs

  let set_input t name bv =
    Nl_wsim.set_input t.wsim name bv;
    Hashtbl.replace t.wdriven name bv

  let get t name =
    match List.assoc_opt name t.w_outputs with
    | Some _ -> Nl_wsim.get_output t.wsim name
    | None -> (
        match Hashtbl.find_opt t.wdriven name with
        | Some bv -> bv
        | None -> Bitvec.zero (List.assoc name t.w_inputs))

  let settle t = Nl_wsim.settle t.wsim
  let step t = Nl_wsim.step t.wsim
  let cycles t = Nl_wsim.cycles t.wsim
  let lanes t = Nl_wsim.lanes t.wsim

  let set_input_lane t ~lane name bv =
    Nl_wsim.set_input_lane t.wsim ~lane name bv

  let get_lane t ~lane name =
    match List.assoc_opt name t.w_outputs with
    | Some _ -> Nl_wsim.get_output ~lane t.wsim name
    | None ->
        (* Inputs echo the last broadcast value; per-lane input history
           is not retained. *)
        if lane < 0 || lane >= Nl_wsim.lanes t.wsim then
          invalid_arg (Printf.sprintf "Nl_engine.get_lane: lane %d" lane);
        get t name

  let stats t =
    [
      ("gate_evals", Nl_wsim.gate_evals t.wsim);
      ("cells_skipped", Nl_wsim.cells_skipped t.wsim);
      ("comb_cells", Nl_wsim.comb_cells t.wsim);
      ("dff_cells", Nl_wsim.dff_cells t.wsim);
      ("full_settles", Nl_wsim.full_settles t.wsim);
      ("toggles", Nl_wsim.toggle_total t.wsim);
      ("lanes", Nl_wsim.lanes t.wsim);
      ("faults", Nl_wsim.faults t.wsim);
    ]

  let probes _ = []
  let probe _ _ = raise Not_found
  let enable_cover t = Nl_wsim.enable_toggle_cover t.wsim
  let cover t = Nl_wsim.lane_cover t.wsim 0

  (* Lane 0 is the canonical stimulus lane, matching [cover]. *)
  let enable_power_sampler t = Nl_wsim.enable_power_sampler t.wsim
  let power_activity t = Nl_wsim.lane_activity t.wsim 0
  let enable_events t = Nl_wsim.enable_events t.wsim
  let events _ = Obs.Event.events ()

  let checkpoint t =
    let ck = Nl_wsim.checkpoint t.wsim in
    Some (fun () -> Nl_wsim.restore t.wsim ck)
end

let pack_word ?label wsim =
  let nl = Nl_wsim.netlist wsim in
  let widths ports = List.map (fun (n, nets) -> (n, Array.length nets)) ports in
  Engine.pack ?label
    (module Wimpl)
    {
      wsim;
      w_inputs = widths (Netlist.inputs nl);
      w_outputs = widths (Netlist.outputs nl);
      wdriven = Hashtbl.create 8;
    }

let create_word ?label ?(mode = Nl_wsim.Event_driven) ~lanes nl =
  pack_word ?label (Nl_wsim.create ~mode ~lanes nl)

let create ?label ?(mode = Nl_sim.Event_driven) nl =
  let sim_kind =
    match mode with
    | Nl_sim.Event_driven -> "netlist-event"
    | Nl_sim.Full_eval -> "netlist-full"
  in
  let widths ports = List.map (fun (n, nets) -> (n, Array.length nets)) ports in
  let state =
    {
      sim = Nl_sim.create ~mode nl;
      nl_inputs = widths (Netlist.inputs nl);
      nl_outputs = widths (Netlist.outputs nl);
      driven = Hashtbl.create 8;
      sim_kind;
      probe_tbl = None;
    }
  in
  Engine.pack ?label (make_impl sim_kind) state
