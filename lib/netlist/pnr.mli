(** Placement and post-layout timing — the "Place&Route" stage of the
    paper's flow (Figure 6), on an abstract island-style FPGA.

    LUTs and flip-flops occupy a square logic grid sized to the design;
    I/O pads sit on the perimeter.  Simulated annealing minimizes total
    half-perimeter wirelength; timing then combines LUT delay with a
    per-grid-unit wire delay over the placed positions, giving the
    post-layout frequency that corresponds to the paper's "achieved
    frequency of the ExpoCU". *)

type placement

type report = {
  grid : int * int;
  utilization : float;  (** logic elements / grid capacity *)
  wirelength : float;  (** total half-perimeter wirelength, grid units *)
  initial_wirelength : float;  (** before annealing *)
  critical_ns : float;
  fmax_mhz : float;
  lut_levels : int;  (** logic depth of the critical path *)
}

val place : ?seed:int -> ?moves:int -> Techmap.mapped -> placement
(** [moves] bounds the annealing effort (default 150_000 attempted
    moves, scaled down for tiny designs). *)

val analyze : placement -> report

val by_module : placement -> (string * int) list
(** Placed core elements (LUTs + flip-flops) per module, keyed on the
    source netlist's region annotations and sorted by path; pads are
    not attributed. *)

val lut_delay_ns : float
val wire_base_ns : float
(** Fixed switch cost per routed connection. *)

val wire_delay_ns_per_unit : float
(** Distance-dependent term per grid unit (Manhattan). *)
