(** Reduced ordered binary decision diagrams.

    A small, classical ROBDD package (unique table + memoized [ite])
    backing the formal combinational equivalence checker.  Nodes are
    integers; equal functions have physically equal node ids, so
    equivalence is an integer comparison.

    Variables are identified by their order index: smaller index =
    closer to the root. *)

type t
(** A manager.  Nodes from different managers must not be mixed. *)

type node = int

exception Size_limit
(** Raised when the node count exceeds the manager's limit. *)

val create : ?max_nodes:int -> unit -> t
(** [max_nodes] (default 2_000_000) bounds the table; exceeding it
    raises {!Size_limit} — the caller treats that as "too large to
    prove". *)

val zero : node
val one : node

val var : t -> int -> node
(** The function of a single variable. *)

val ite : t -> node -> node -> node -> node
val not_ : t -> node -> node
val and_ : t -> node -> node -> node
val or_ : t -> node -> node -> node
val xor : t -> node -> node -> node

val node_count : t -> int

val satisfying : t -> node -> (int * bool) list option
(** A satisfying assignment (variable index, value) for a non-zero
    function, following one path to the [one] terminal; [None] for the
    constant-false function.  Variables not listed are don't-care. *)
