(** N-way lockstep differential simulation.

    The paper verifies that OSSS designs stay {e bit and cycle accurate}
    through every stage of the flow.  This harness drives one random
    (plus directed) stimulus stream into any number of {!Engine.t}
    instances — behavioural, RTL-interpreted, gate-level, in any mix —
    compares every output of every engine against the first (reference)
    engine after every cycle, and on the first divergence produces a
    {e minimal reproducer}: the stimulus window is shrunk to the
    shortest suffix that still reproduces a divergence from reset, and
    the mismatch window can be dumped as a single VCD covering all
    engines through the consolidated {!Engine.Trace} interface. *)

type mismatch = {
  at_cycle : int;
  port : string;
  expected : Bitvec.t;  (** reference engine's value *)
  got : Bitvec.t;
  ref_engine : string;  (** label of the reference engine *)
  got_engine : string;  (** label of the diverging engine *)
}

type provenance = {
  seed : int;  (** stimulus seed the run was driven from *)
  engines : string list;  (** instance labels, reference first *)
  lanes : int;  (** maximum lane count among the engines *)
}
(** Everything needed to re-create the run a reproducer came from. *)

type divergence = {
  first : mismatch;  (** first mismatch of the full run *)
  window_start : int;
      (** index into the original run where the shrunk window begins *)
  window : (string * Bitvec.t) list array;
      (** the shrunk reproducer: per-cycle input assignments that,
          replayed from reset, reproduce a divergence *)
  replay : mismatch option;
      (** the mismatch observed when replaying just [window] from
          reset (cycle numbers relative to the window) *)
  vcd : string option;
      (** waveforms of all engines over the replayed window, when
          requested *)
  provenance : provenance;
  causality : Obs.Event.t list;
      (** causal chain (effect first) behind the first mismatching
          output, from an automatic events-on replay of the shrunk
          window — fault injections along the way appear as [Fault]
          events.  [[]] when the window replay did not re-diverge.
          Render with [Obs.Causal]. *)
}

val pp_mismatch : Format.formatter -> mismatch -> unit
val pp_divergence : Format.formatter -> divergence -> unit

val differential :
  ?cycles:int ->
  ?seed:int ->
  ?drive:(int -> string * Bitvec.t -> Bitvec.t) ->
  ?shrink:bool ->
  ?dump_vcd:bool ->
  (unit -> Engine.t) list ->
  (int, divergence) result
(** [differential factories] instantiates every engine, drives all of
    them with identical stimulus and compares all outputs every cycle;
    the first factory builds the reference engine, whose input/output
    port lists define the interface (every engine must accept them).

    [drive cycle (name, random)] may override the stimulus for a port
    (default: pure random from [seed]).  [shrink] (default [true])
    minimizes the reproducer window by replaying recorded stimulus
    against fresh engine instances; [dump_vcd] (default [false])
    additionally replays the shrunk window under the consolidated
    trace and stores the VCD text in the report.

    [Ok n] reports the number of compared cycles.  Raises
    [Invalid_argument] with fewer than two factories. *)

(** {1 Lane-parallel fault campaign}

    Stuck-at fault simulation on the word-parallel backend
    ({!Nl_wsim}): one simulation carries the fault-free golden design in
    lane 0 and one faulty machine per extra lane, so every gate
    evaluation advances the golden run {e and} every fault candidate at
    once.  Detection is a packed xor against lane 0 per output port per
    cycle ({!Nl_wsim.diverging_lanes}); a detected fault is then handed
    to the scalar {!differential} harness (golden scalar engine vs a
    single-lane faulty word engine, same seed) for the usual
    shrink-and-replay minimal reproducer. *)

type lane_fault = { fault_net : Netlist.net; stuck_at : bool }

type fault_result = {
  fault : lane_fault;
  site : string;
      (** hierarchical description of the faulted net
          ({!Netlist.describe_net}, e.g. ["u_hist.count[3]"]) *)
  lane : int;
      (** the fault's 1-based position in the campaign's fault list
          (lane 0 of each shard simulation is golden).  With one shard
          this is exactly the physical lane that carried the fault; a
          sharded campaign re-indexes shard-local lanes to this stable
          campaign-wide numbering, so results are identical for every
          [jobs]. *)
  detected_at : int option;
      (** first cycle an output diverged from lane 0, if any *)
  detect_port : string option;
  shrunk : divergence option;
      (** minimal reproducer from the scalar differential replay *)
}

type campaign = {
  faults_total : int;
  faults_detected : int;
  campaign_cycles : int;  (** cycles simulated (stops once all detected) *)
  campaign_gate_evals : int;
      (** word-parallel gate evaluations spent on the whole campaign *)
  fault_results : fault_result list;
}

val pp_fault_result : Format.formatter -> fault_result -> unit

val fault_campaign :
  ?cycles:int ->
  ?seed:int ->
  ?drive:(int -> string * Bitvec.t -> Bitvec.t) ->
  ?mode:Nl_wsim.mode ->
  ?shrink:bool ->
  ?jobs:int ->
  Netlist.t ->
  lane_fault list ->
  campaign
(** [fault_campaign nl faults] runs a [1 + faults-per-shard]-lane
    simulation under broadcast random stimulus (same protocol, default
    [seed] and [drive] override semantics as {!differential} — use
    [drive] e.g. to hold a reset released so faults propagate) for up to
    [cycles] (default [500]) cycles, stopping early once every fault has
    been observed at an output.  [shrink] (default [true]) replays each
    detected fault through {!differential} under the same [drive] for a
    shrunk stimulus window.

    [jobs] (default [Par.default_jobs ()]) splits the fault list into
    up to [jobs] contiguous shards, each simulated on its own domain
    with its own [Nl_wsim] instance, and merges the shard results in
    fault order.  The stimulus is broadcast and faults are
    lane-isolated, so the merged [fault_results] — detection cycle,
    port, site, shrunk reproducer — are {e identical for every [jobs]}
    ([jobs = 1] runs the pre-sharding serial code inline).  Of the
    aggregates, [campaign_cycles] is the max over shards (equal to the
    serial figure) while [campaign_gate_evals] sums the work actually
    spent, which legitimately varies with the sharding. *)

val differential_sweep :
  ?cycles:int ->
  ?drive:(int -> string * Bitvec.t -> Bitvec.t) ->
  ?shrink:bool ->
  ?dump_vcd:bool ->
  ?jobs:int ->
  seeds:int list ->
  (unit -> Engine.t) list ->
  (int * (int, divergence) result) list
(** [differential_sweep ~seeds factories] runs one full
    {!differential} per stimulus seed — fresh engines each, created on
    the shard's own domain — and returns the per-seed results in seed
    order, [jobs] (default [Par.default_jobs ()]) sweeps at a time.
    One shard per seed: the work-stealing pool absorbs the cost skew
    of a diverging seed (shrink + events-on replay) against the
    straight-through ones.  Raises [Invalid_argument] with fewer than
    two factories. *)

val ir_vs_netlist :
  ?cycles:int ->
  ?seed:int ->
  ?drive:(int -> string * Bitvec.t -> Bitvec.t) ->
  Ir.module_def ->
  Netlist.t ->
  (int, divergence) result
(** {!differential} between the RTL interpretation of [design]
    (reference) and the event-driven gate-level simulation of the
    netlist. *)

val ir_vs_ir :
  ?cycles:int ->
  ?seed:int ->
  ?drive:(int -> string * Bitvec.t -> Bitvec.t) ->
  Ir.module_def ->
  Ir.module_def ->
  (int, divergence) result
(** Both designs must expose identically named and sized ports. *)
