(** N-way lockstep differential simulation.

    The paper verifies that OSSS designs stay {e bit and cycle accurate}
    through every stage of the flow.  This harness drives one random
    (plus directed) stimulus stream into any number of {!Engine.t}
    instances — behavioural, RTL-interpreted, gate-level, in any mix —
    compares every output of every engine against the first (reference)
    engine after every cycle, and on the first divergence produces a
    {e minimal reproducer}: the stimulus window is shrunk to the
    shortest suffix that still reproduces a divergence from reset, and
    the mismatch window can be dumped as a single VCD covering all
    engines through the consolidated {!Engine.Trace} interface. *)

type mismatch = {
  at_cycle : int;
  port : string;
  expected : Bitvec.t;  (** reference engine's value *)
  got : Bitvec.t;
  ref_engine : string;  (** label of the reference engine *)
  got_engine : string;  (** label of the diverging engine *)
}

type divergence = {
  first : mismatch;  (** first mismatch of the full run *)
  window_start : int;
      (** index into the original run where the shrunk window begins *)
  window : (string * Bitvec.t) list array;
      (** the shrunk reproducer: per-cycle input assignments that,
          replayed from reset, reproduce a divergence *)
  replay : mismatch option;
      (** the mismatch observed when replaying just [window] from
          reset (cycle numbers relative to the window) *)
  vcd : string option;
      (** waveforms of all engines over the replayed window, when
          requested *)
}

val pp_mismatch : Format.formatter -> mismatch -> unit
val pp_divergence : Format.formatter -> divergence -> unit

val differential :
  ?cycles:int ->
  ?seed:int ->
  ?drive:(int -> string * Bitvec.t -> Bitvec.t) ->
  ?shrink:bool ->
  ?dump_vcd:bool ->
  (unit -> Engine.t) list ->
  (int, divergence) result
(** [differential factories] instantiates every engine, drives all of
    them with identical stimulus and compares all outputs every cycle;
    the first factory builds the reference engine, whose input/output
    port lists define the interface (every engine must accept them).

    [drive cycle (name, random)] may override the stimulus for a port
    (default: pure random from [seed]).  [shrink] (default [true])
    minimizes the reproducer window by replaying recorded stimulus
    against fresh engine instances; [dump_vcd] (default [false])
    additionally replays the shrunk window under the consolidated
    trace and stores the VCD text in the report.

    [Ok n] reports the number of compared cycles.  Raises
    [Invalid_argument] with fewer than two factories. *)

val ir_vs_netlist :
  ?cycles:int ->
  ?seed:int ->
  ?drive:(int -> string * Bitvec.t -> Bitvec.t) ->
  Ir.module_def ->
  Netlist.t ->
  (int, divergence) result
(** {!differential} between the RTL interpretation of [design]
    (reference) and the event-driven gate-level simulation of the
    netlist. *)

val ir_vs_ir :
  ?cycles:int ->
  ?seed:int ->
  ?drive:(int -> string * Bitvec.t -> Bitvec.t) ->
  Ir.module_def ->
  Ir.module_def ->
  (int, divergence) result
(** Both designs must expose identically named and sized ports. *)
