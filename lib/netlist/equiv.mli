(** Equivalence checking by randomized co-simulation.

    The paper verifies that OSSS designs stay {e bit and cycle accurate}
    through every stage of the flow; these checkers compare the RTL-IR
    interpretation against the synthesized gate-level netlist (or two IR
    designs against each other) cycle by cycle under common random plus
    directed stimulus. *)

type mismatch = {
  at_cycle : int;
  port : string;
  expected : Bitvec.t;  (** reference value *)
  got : Bitvec.t;
}

val pp_mismatch : Format.formatter -> mismatch -> unit

val ir_vs_netlist :
  ?cycles:int ->
  ?seed:int ->
  ?drive:(int -> string * Bitvec.t -> Bitvec.t) ->
  Ir.module_def ->
  Netlist.t ->
  (int, mismatch) result
(** Runs both simulations with identical random input streams and
    compares all outputs after every cycle.  [drive cycle (name, random)]
    may override the stimulus for a port (default: pure random).
    [Ok n] reports the number of compared cycles. *)

val ir_vs_ir :
  ?cycles:int ->
  ?seed:int ->
  ?drive:(int -> string * Bitvec.t -> Bitvec.t) ->
  Ir.module_def ->
  Ir.module_def ->
  (int, mismatch) result
(** Both designs must expose identically named and sized ports. *)
