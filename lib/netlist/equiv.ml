(* Global activity counters (see Metrics.Perf). *)
let ctr_rounds = Perf.counter "equiv.rounds"
let ctr_replays = Perf.counter "equiv.shrink_replays"

type mismatch = {
  at_cycle : int;
  port : string;
  expected : Bitvec.t;
  got : Bitvec.t;
  ref_engine : string;
  got_engine : string;
}

(* Everything needed to re-create the run a reproducer came from. *)
type provenance = { seed : int; engines : string list; lanes : int }

type divergence = {
  first : mismatch;
  window_start : int;
  window : (string * Bitvec.t) list array;
  replay : mismatch option;
  vcd : string option;
  provenance : provenance;
  causality : Obs.Event.t list;
      (* effect-first causal chain behind the first mismatching output
         of the events-on window replay; [] when the chain is empty or
         the window did not re-diverge *)
}

let pp_mismatch fmt m =
  Format.fprintf fmt "cycle %d, port %s: %s=%a, %s=%a" m.at_cycle m.port
    m.ref_engine Bitvec.pp m.expected m.got_engine Bitvec.pp m.got

let pp_divergence fmt d =
  pp_mismatch fmt d.first;
  Format.fprintf fmt "; reproducer: %d-cycle window from cycle %d"
    (Array.length d.window) d.window_start;
  (match d.replay with
  | Some m ->
      Format.fprintf fmt " (replays as cycle %d, port %s)" m.at_cycle m.port
  | None -> ());
  Format.fprintf fmt " [seed %d, %s, %d lane%s]" d.provenance.seed
    (String.concat " vs " d.provenance.engines)
    d.provenance.lanes
    (if d.provenance.lanes = 1 then "" else "s");
  if d.causality <> [] then
    Format.fprintf fmt " [causality: %d events]" (List.length d.causality);
  match d.vcd with
  | Some text -> Format.fprintf fmt " [vcd: %d bytes]" (String.length text)
  | None -> ()

let random_bv rng width = Bitvec.init width (fun _ -> Random.State.bool rng)

(* Drive one recorded input assignment into every engine, step them all,
   then compare every output of every non-reference engine against the
   reference.  Returns the first mismatch, if any. *)
let drive_and_compare engines outs cycle assignment =
  Perf.incr ctr_rounds;
  List.iter
    (fun (name, value) ->
      List.iter (fun e -> Engine.set_input e name value) engines)
    assignment;
  List.iter Engine.step engines;
  let reference = List.hd engines in
  let rec scan = function
    | [] -> None
    | e :: rest ->
        let rec ports = function
          | [] -> scan rest
          | (port, _) :: more ->
              let expected = Engine.get reference port in
              let got = Engine.get e port in
              if Bitvec.equal expected got then ports more
              else
                Some
                  {
                    at_cycle = cycle;
                    port;
                    expected;
                    got;
                    ref_engine = Engine.label reference;
                    got_engine = Engine.label e;
                  }
        in
        ports outs
  in
  scan (List.tl engines)

(* Serializes the events-on window replays of [differential]: the
   causal event ring ([Obs.Event]) is one per process, so two shards
   shrinking concurrently on pool domains must not both record into
   it. *)
let event_replay_lock = Mutex.create ()

(* Phase span carrying the Perf counter deltas the phase caused, so a
   trace shows which phase spent which gate evaluations. *)
let with_phase_span name attrs f =
  if Obs.Span.enabled () then
    Obs.Span.with_ ~name ~attrs (fun () ->
        let before = Perf.snapshot () in
        let r = f () in
        List.iter (fun (k, d) -> Obs.Span.add_attr_int k d) (Perf.since before);
        r)
  else f ()

(* Replay a stimulus slice against fresh engines; first mismatch, if
   any.  [observe] is called after every cycle (used for tracing);
   [events] switches the fresh engines' causal event emission on, for
   the record-cheap / replay-rich pattern. *)
let replay_window ?(observe = fun _ -> ()) ?(events = false) factories outs
    window =
  Perf.incr ctr_replays;
  with_phase_span "equiv.replay"
    [ ("window", string_of_int (Array.length window)) ]
    (fun () ->
      let engines = List.map (fun f -> f ()) factories in
      if events then List.iter Engine.enable_events engines;
      let n = Array.length window in
      let rec cycle i =
        if i >= n then None
        else begin
          let result = drive_and_compare engines outs i window.(i) in
          observe engines;
          match result with Some m -> Some m | None -> cycle (i + 1)
        end
      in
      observe engines;
      cycle 0)

let shrink_window factories outs stim =
  with_phase_span "equiv.shrink"
    [ ("recorded", string_of_int (Array.length stim)) ]
    (fun () ->
      let total = Array.length stim in
      let suffix len = Array.sub stim (total - len) len in
      let diverges len = replay_window factories outs (suffix len) <> None in
      (* The full recording reproduces by determinism; binary-search the
         shortest suffix that still diverges when replayed from reset. *)
      let lo = ref 1 and hi = ref total in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if diverges mid then hi := mid else lo := mid + 1
      done;
      let len = if diverges !lo then !lo else total in
      Obs.Span.add_attr_int "shrunk_to" len;
      len)

let differential ?(cycles = 500) ?(seed = 42) ?(drive = fun _ (_, r) -> r)
    ?(shrink = true) ?(dump_vcd = false) factories =
  if List.length factories < 2 then
    invalid_arg "Equiv.differential: need at least two engines";
  let engines = List.map (fun f -> f ()) factories in
  let reference = List.hd engines in
  let ins = Engine.inputs reference in
  let outs = Engine.outputs reference in
  let rng = Random.State.make [| seed |] in
  let stim = Array.make cycles [] in
  with_phase_span "equiv.differential"
    [
      ("cycles", string_of_int cycles);
      ("seed", string_of_int seed);
      ("engines", string_of_int (List.length factories));
    ]
  @@ fun () ->
  let rec cycle n =
    if n >= cycles then Ok cycles
    else begin
      let assignment =
        List.map
          (fun (name, width) -> (name, drive n (name, random_bv rng width)))
          ins
      in
      stim.(n) <- assignment;
      match drive_and_compare engines outs n assignment with
      | None -> cycle (n + 1)
      | Some first ->
          let recorded = Array.sub stim 0 (n + 1) in
          let len =
            if shrink then shrink_window factories outs recorded else n + 1
          in
          let window = Array.sub recorded (n + 1 - len) len in
          (* Record cheap, replay rich: the shrunk window is re-run with
             causal events on, which both confirms the reproducer and
             yields the chain of events behind the first mismatching
             output.  The global log's prior state is preserved.  The
             event ring is process-global, so the events-on replay is
             serialized: concurrent shard shrinks (parallel fault
             campaigns, differential sweeps) take turns instead of
             interleaving their chains into one ring. *)
          let replay, causality =
            Mutex.protect event_replay_lock (fun () ->
                let was_on = Obs.Event.enabled () in
                if not was_on then Obs.Event.enable ();
                let replay = replay_window ~events:true factories outs window in
                let causality =
                  match replay with
                  | None -> []
                  | Some m -> (
                      match
                        Obs.Causal.why ~subject:m.port ~cycle:(m.at_cycle + 1)
                          ()
                      with
                      | Some node -> Obs.Causal.chain node
                      | None -> [])
                in
                if not was_on then Obs.Event.disable ();
                (replay, causality))
          in
          let provenance =
            {
              seed;
              engines = List.map Engine.label engines;
              lanes =
                List.fold_left (fun acc e -> max acc (Engine.lanes e)) 1 engines;
            }
          in
          let vcd =
            if not dump_vcd then None
            else begin
              let tracer = ref None in
              let observe engines =
                let tr =
                  match !tracer with
                  | Some tr -> tr
                  | None ->
                      let tr = Engine.Trace.create engines in
                      tracer := Some tr;
                      tr
                in
                Engine.Trace.sample tr
              in
              ignore (replay_window ~observe factories outs window);
              Option.map Engine.Trace.contents !tracer
            end
          in
          Error
            {
              first;
              window_start = n + 1 - len;
              window;
              replay;
              vcd;
              provenance;
              causality;
            }
    end
  in
  let result = cycle 0 in
  Obs.Span.add_attr "result"
    (match result with Ok _ -> "ok" | Error _ -> "diverged");
  result

(* ------------------------------------------------------------------ *)
(* Lane-parallel fault campaign.                                       *)

let ctr_campaigns = Perf.counter "equiv.fault_campaigns"

type lane_fault = { fault_net : Netlist.net; stuck_at : bool }

type fault_result = {
  fault : lane_fault;
  site : string;  (* hierarchical description of the faulted net *)
  lane : int;
  detected_at : int option;
  detect_port : string option;
  shrunk : divergence option;
}

type campaign = {
  faults_total : int;
  faults_detected : int;
  campaign_cycles : int;
  campaign_gate_evals : int;
  fault_results : fault_result list;
}

let pp_fault_result fmt r =
  Format.fprintf fmt "lane %d stuck-at-%d on %s: " r.lane
    (Bool.to_int r.fault.stuck_at)
    r.site;
  match (r.detected_at, r.detect_port) with
  | Some c, Some p -> Format.fprintf fmt "detected at cycle %d on %s" c p
  | _ -> Format.fprintf fmt "undetected"

(* One campaign shard: the full word-parallel detect-then-shrink body
   over its slice of the fault list, on its own [Nl_wsim] instance.
   Runs on a pool domain when the campaign is sharded; lanes in the
   returned results are shard-local (the merge re-indexes them).  The
   stimulus is broadcast — identical for every lane and every shard —
   and faults are lane-isolated, so a fault's detection cycle and port
   do not depend on which other faults share its simulation: sharding
   cannot change the per-fault results. *)
let campaign_shard ~cycles ~seed ~drive ~mode ~shrink nl faults =
  let nfaults = List.length faults in
  let lanes = nfaults + 1 in
  let wsim = Nl_wsim.create ~mode ~lanes nl in
  List.iteri
    (fun i f ->
      Nl_wsim.inject_stuck_at wsim ~lane:(i + 1) ~net:f.fault_net
        ~value:f.stuck_at)
    faults;
  let ins =
    List.map (fun (n, nets) -> (n, Array.length nets)) (Netlist.inputs nl)
  in
  let outs = List.map fst (Netlist.outputs nl) in
  (* Same stimulus protocol as [differential] (one [random_bv] per input
     port, declaration order, every cycle) so a detection cycle here is
     the divergence cycle of the scalar-vs-faulty replay below. *)
  let rng = Random.State.make [| seed |] in
  let detected = Array.make lanes None in
  let remaining = ref nfaults in
  let n = ref 0 in
  while !n < cycles && !remaining > 0 do
    Perf.incr ctr_rounds;
    List.iter
      (fun (name, width) ->
        Nl_wsim.set_input wsim name (drive !n (name, random_bv rng width)))
      ins;
    Nl_wsim.step wsim;
    List.iter
      (fun port ->
        if !remaining > 0 then
          List.iter
            (fun lane ->
              if detected.(lane) = None then begin
                detected.(lane) <- Some (!n, port);
                decr remaining
              end)
            (Nl_wsim.diverging_lanes wsim port))
      outs;
    incr n
  done;
  (* Hand a detected fault to the scalar differential harness: golden
     scalar engine vs a single-lane word simulator carrying just this
     fault, replayed under the same seed — shrink and replay machinery
     then produce the minimal reproducer window. *)
  let shrink_one f cyc =
    let gold () = Nl_engine.create ~label:("gold:" ^ Netlist.name nl) nl in
    let faulty () =
      let w = Nl_wsim.create ~mode ~lanes:1 nl in
      Nl_wsim.inject_stuck_at w ~lane:0 ~net:f.fault_net ~value:f.stuck_at;
      Nl_engine.pack_word
        ~label:
          (Printf.sprintf "fault:n%d=%d" f.fault_net (Bool.to_int f.stuck_at))
        w
    in
    match differential ~cycles:(cyc + 1) ~seed ~drive [ gold; faulty ] with
    | Error d -> Some d
    | Ok _ -> None
  in
  let fault_results =
    List.mapi
      (fun i f ->
        let lane = i + 1 in
        let site = Netlist.describe_net nl f.fault_net in
        match detected.(lane) with
        | None ->
            {
              fault = f;
              site;
              lane;
              detected_at = None;
              detect_port = None;
              shrunk = None;
            }
        | Some (cyc, port) ->
            {
              fault = f;
              site;
              lane;
              detected_at = Some cyc;
              detect_port = Some port;
              shrunk = (if shrink then shrink_one f cyc else None);
            })
      faults
  in
  let faults_detected = nfaults - !remaining in
  {
    faults_total = nfaults;
    faults_detected;
    campaign_cycles = !n;
    campaign_gate_evals = Nl_wsim.gate_evals wsim;
    fault_results;
  }

let fault_campaign ?(cycles = 500) ?(seed = 42) ?(drive = fun _ (_, r) -> r)
    ?(mode = Nl_wsim.Event_driven) ?(shrink = true) ?jobs nl faults =
  Perf.incr ctr_campaigns;
  let jobs = max 1 (match jobs with Some j -> j | None -> Par.default_jobs ()) in
  let nfaults = List.length faults in
  with_phase_span "equiv.fault_campaign"
    [
      ("faults", string_of_int nfaults);
      ("cycles", string_of_int cycles);
      ("seed", string_of_int seed);
      ("jobs", string_of_int jobs);
    ]
  @@ fun () ->
  let shards = Par.chunks ~shards:jobs faults in
  let parts =
    if Array.length shards = 1 then
      (* Serial path: no pool, one shard carrying the whole fault list
         — the exact pre-sharding code. *)
      [| campaign_shard ~cycles ~seed ~drive ~mode ~shrink nl shards.(0) |]
    else
      Par.map ~jobs
        ~label:(fun i -> Printf.sprintf "fault-shard-%d" i)
        (fun i -> campaign_shard ~cycles ~seed ~drive ~mode ~shrink nl shards.(i))
        (Array.length shards)
  in
  (* Merge in shard order.  Lanes re-index to the fault's position in
     the campaign's full fault list (1-based, as before), so the merged
     results are identical for every [jobs]; cycles merge by max (every
     shard sees the same broadcast stimulus, a shard merely stops early
     once its own faults are all detected) and gate evaluations by sum
     (the work actually spent). *)
  let base = ref 0 in
  let fault_results =
    List.concat_map
      (fun (c : campaign) ->
        let here =
          List.map (fun r -> { r with lane = !base + r.lane }) c.fault_results
        in
        base := !base + c.faults_total;
        here)
      (Array.to_list parts)
  in
  let faults_detected =
    Array.fold_left (fun acc c -> acc + c.faults_detected) 0 parts
  in
  Obs.Span.add_attr_int "detected" faults_detected;
  {
    faults_total = nfaults;
    faults_detected;
    campaign_cycles =
      Array.fold_left (fun acc c -> max acc c.campaign_cycles) 0 parts;
    campaign_gate_evals =
      Array.fold_left (fun acc c -> acc + c.campaign_gate_evals) 0 parts;
    fault_results;
  }

(* ------------------------------------------------------------------ *)
(* Multi-seed differential sweeps.                                     *)

let ctr_sweeps = Perf.counter "equiv.sweeps"

let differential_sweep ?(cycles = 500) ?(drive = fun _ (_, r) -> r)
    ?(shrink = true) ?(dump_vcd = false) ?jobs ~seeds factories =
  if List.length factories < 2 then
    invalid_arg "Equiv.differential_sweep: need at least two engines";
  Perf.incr ctr_sweeps;
  let jobs = max 1 (match jobs with Some j -> j | None -> Par.default_jobs ()) in
  let seed_arr = Array.of_list seeds in
  with_phase_span "equiv.sweep"
    [
      ("seeds", string_of_int (Array.length seed_arr));
      ("cycles", string_of_int cycles);
      ("jobs", string_of_int jobs);
    ]
  @@ fun () ->
  (* One shard per seed: each runs a full lockstep differential with
     its own fresh engines (factories are invoked on the shard's
     domain, honouring the one-engine-per-domain contract), and the
     work-stealing pool balances uneven seeds — one that diverges pays
     for shrink and replay, the rest are straight runs. *)
  let results =
    Par.map ~jobs
      ~label:(fun i -> Printf.sprintf "sweep-seed-%d" seed_arr.(i))
      (fun i ->
        let seed = seed_arr.(i) in
        (seed, differential ~cycles ~seed ~drive ~shrink ~dump_vcd factories))
      (Array.length seed_arr)
  in
  let divergent =
    Array.fold_left
      (fun acc (_, r) -> match r with Error _ -> acc + 1 | Ok _ -> acc)
      0 results
  in
  Obs.Span.add_attr_int "divergent" divergent;
  Array.to_list results

let ir_vs_netlist ?cycles ?seed ?drive design nl =
  differential ?cycles ?seed ?drive
    [
      (fun () -> Rtl_engine.create ~label:("rtl:" ^ design.Ir.mod_name) design);
      (fun () -> Nl_engine.create ~label:("gates:" ^ Netlist.name nl) nl);
    ]

let ir_vs_ir ?cycles ?seed ?drive a b =
  differential ?cycles ?seed ?drive
    [
      (fun () -> Rtl_engine.create ~label:("rtl:" ^ a.Ir.mod_name) a);
      (fun () -> Rtl_engine.create ~label:("rtl:" ^ b.Ir.mod_name) b);
    ]
