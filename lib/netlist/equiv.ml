type mismatch = {
  at_cycle : int;
  port : string;
  expected : Bitvec.t;
  got : Bitvec.t;
}

let pp_mismatch fmt m =
  Format.fprintf fmt "cycle %d, port %s: expected %a, got %a" m.at_cycle
    m.port Bitvec.pp m.expected Bitvec.pp m.got

let random_bv rng width =
  Bitvec.init width (fun _ -> Random.State.bool rng)

let input_ports (m : Ir.module_def) =
  List.filter_map
    (fun (p : Ir.port) ->
      match p.dir with
      | Ir.Input -> Some (p.port_name, p.port_var.Ir.width)
      | Output -> None)
    m.ports

let output_ports (m : Ir.module_def) =
  List.filter_map
    (fun (p : Ir.port) ->
      match p.dir with
      | Ir.Output -> Some p.port_name
      | Input -> None)
    m.ports

let co_simulate ~cycles ~seed ~drive ~ins ~outs ~set_a ~set_b ~step_a ~step_b
    ~get_a ~get_b =
  let rng = Random.State.make [| seed |] in
  let rec cycle n =
    if n >= cycles then Ok cycles
    else begin
      List.iter
        (fun (name, width) ->
          let value = drive n (name, random_bv rng width) in
          set_a name value;
          set_b name value)
        ins;
      step_a ();
      step_b ();
      let rec compare_ports = function
        | [] -> cycle (n + 1)
        | port :: rest ->
            let expected = get_a port and got = get_b port in
            if Bitvec.equal expected got then compare_ports rest
            else Error { at_cycle = n; port; expected; got }
      in
      compare_ports outs
    end
  in
  cycle 0

let ir_vs_netlist ?(cycles = 500) ?(seed = 42) ?(drive = fun _ (_, r) -> r)
    design nl =
  let rtl = Rtl_sim.create design in
  let gates = Nl_sim.create nl in
  co_simulate ~cycles ~seed ~drive ~ins:(input_ports design)
    ~outs:(output_ports design)
    ~set_a:(Rtl_sim.set_input rtl)
    ~set_b:(Nl_sim.set_input gates)
    ~step_a:(fun () -> Rtl_sim.step rtl)
    ~step_b:(fun () -> Nl_sim.step gates)
    ~get_a:(Rtl_sim.get rtl)
    ~get_b:(Nl_sim.get_output gates)

let ir_vs_ir ?(cycles = 500) ?(seed = 42) ?(drive = fun _ (_, r) -> r) a b =
  let sim_a = Rtl_sim.create a in
  let sim_b = Rtl_sim.create b in
  co_simulate ~cycles ~seed ~drive ~ins:(input_ports a)
    ~outs:(output_ports a)
    ~set_a:(Rtl_sim.set_input sim_a)
    ~set_b:(Rtl_sim.set_input sim_b)
    ~step_a:(fun () -> Rtl_sim.step sim_a)
    ~step_b:(fun () -> Rtl_sim.step sim_b)
    ~get_a:(Rtl_sim.get sim_a)
    ~get_b:(Rtl_sim.get sim_b)
