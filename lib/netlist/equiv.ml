(* Global activity counters (see Metrics.Perf). *)
let ctr_rounds = Perf.counter "equiv.rounds"
let ctr_replays = Perf.counter "equiv.shrink_replays"

type mismatch = {
  at_cycle : int;
  port : string;
  expected : Bitvec.t;
  got : Bitvec.t;
  ref_engine : string;
  got_engine : string;
}

type divergence = {
  first : mismatch;
  window_start : int;
  window : (string * Bitvec.t) list array;
  replay : mismatch option;
  vcd : string option;
}

let pp_mismatch fmt m =
  Format.fprintf fmt "cycle %d, port %s: %s=%a, %s=%a" m.at_cycle m.port
    m.ref_engine Bitvec.pp m.expected m.got_engine Bitvec.pp m.got

let pp_divergence fmt d =
  pp_mismatch fmt d.first;
  Format.fprintf fmt "; reproducer: %d-cycle window from cycle %d"
    (Array.length d.window) d.window_start;
  (match d.replay with
  | Some m ->
      Format.fprintf fmt " (replays as cycle %d, port %s)" m.at_cycle m.port
  | None -> ());
  match d.vcd with
  | Some text -> Format.fprintf fmt " [vcd: %d bytes]" (String.length text)
  | None -> ()

let random_bv rng width = Bitvec.init width (fun _ -> Random.State.bool rng)

(* Drive one recorded input assignment into every engine, step them all,
   then compare every output of every non-reference engine against the
   reference.  Returns the first mismatch, if any. *)
let drive_and_compare engines outs cycle assignment =
  Perf.incr ctr_rounds;
  List.iter
    (fun (name, value) ->
      List.iter (fun e -> Engine.set_input e name value) engines)
    assignment;
  List.iter Engine.step engines;
  let reference = List.hd engines in
  let rec scan = function
    | [] -> None
    | e :: rest ->
        let rec ports = function
          | [] -> scan rest
          | (port, _) :: more ->
              let expected = Engine.get reference port in
              let got = Engine.get e port in
              if Bitvec.equal expected got then ports more
              else
                Some
                  {
                    at_cycle = cycle;
                    port;
                    expected;
                    got;
                    ref_engine = Engine.label reference;
                    got_engine = Engine.label e;
                  }
        in
        ports outs
  in
  scan (List.tl engines)

(* Phase span carrying the Perf counter deltas the phase caused, so a
   trace shows which phase spent which gate evaluations. *)
let with_phase_span name attrs f =
  if Obs.Span.enabled () then
    Obs.Span.with_ ~name ~attrs (fun () ->
        let before = Perf.snapshot () in
        let r = f () in
        List.iter (fun (k, d) -> Obs.Span.add_attr_int k d) (Perf.since before);
        r)
  else f ()

(* Replay a stimulus slice against fresh engines; first mismatch, if
   any.  [observe] is called after every cycle (used for tracing). *)
let replay_window ?(observe = fun _ -> ()) factories outs window =
  Perf.incr ctr_replays;
  with_phase_span "equiv.replay"
    [ ("window", string_of_int (Array.length window)) ]
    (fun () ->
      let engines = List.map (fun f -> f ()) factories in
      let n = Array.length window in
      let rec cycle i =
        if i >= n then None
        else begin
          let result = drive_and_compare engines outs i window.(i) in
          observe engines;
          match result with Some m -> Some m | None -> cycle (i + 1)
        end
      in
      observe engines;
      cycle 0)

let shrink_window factories outs stim =
  with_phase_span "equiv.shrink"
    [ ("recorded", string_of_int (Array.length stim)) ]
    (fun () ->
      let total = Array.length stim in
      let suffix len = Array.sub stim (total - len) len in
      let diverges len = replay_window factories outs (suffix len) <> None in
      (* The full recording reproduces by determinism; binary-search the
         shortest suffix that still diverges when replayed from reset. *)
      let lo = ref 1 and hi = ref total in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if diverges mid then hi := mid else lo := mid + 1
      done;
      let len = if diverges !lo then !lo else total in
      Obs.Span.add_attr_int "shrunk_to" len;
      len)

let differential ?(cycles = 500) ?(seed = 42) ?(drive = fun _ (_, r) -> r)
    ?(shrink = true) ?(dump_vcd = false) factories =
  if List.length factories < 2 then
    invalid_arg "Equiv.differential: need at least two engines";
  let engines = List.map (fun f -> f ()) factories in
  let reference = List.hd engines in
  let ins = Engine.inputs reference in
  let outs = Engine.outputs reference in
  let rng = Random.State.make [| seed |] in
  let stim = Array.make cycles [] in
  with_phase_span "equiv.differential"
    [
      ("cycles", string_of_int cycles);
      ("seed", string_of_int seed);
      ("engines", string_of_int (List.length factories));
    ]
  @@ fun () ->
  let rec cycle n =
    if n >= cycles then Ok cycles
    else begin
      let assignment =
        List.map
          (fun (name, width) -> (name, drive n (name, random_bv rng width)))
          ins
      in
      stim.(n) <- assignment;
      match drive_and_compare engines outs n assignment with
      | None -> cycle (n + 1)
      | Some first ->
          let recorded = Array.sub stim 0 (n + 1) in
          let len =
            if shrink then shrink_window factories outs recorded else n + 1
          in
          let window = Array.sub recorded (n + 1 - len) len in
          let replay = replay_window factories outs window in
          let vcd =
            if not dump_vcd then None
            else begin
              let tracer = ref None in
              let observe engines =
                let tr =
                  match !tracer with
                  | Some tr -> tr
                  | None ->
                      let tr = Engine.Trace.create engines in
                      tracer := Some tr;
                      tr
                in
                Engine.Trace.sample tr
              in
              ignore (replay_window ~observe factories outs window);
              Option.map Engine.Trace.contents !tracer
            end
          in
          Error { first; window_start = n + 1 - len; window; replay; vcd }
    end
  in
  let result = cycle 0 in
  Obs.Span.add_attr "result"
    (match result with Ok _ -> "ok" | Error _ -> "diverged");
  result

let ir_vs_netlist ?cycles ?seed ?drive design nl =
  differential ?cycles ?seed ?drive
    [
      (fun () -> Rtl_engine.create ~label:("rtl:" ^ design.Ir.mod_name) design);
      (fun () -> Nl_engine.create ~label:("gates:" ^ Netlist.name nl) nl);
    ]

let ir_vs_ir ?cycles ?seed ?drive a b =
  differential ?cycles ?seed ?drive
    [
      (fun () -> Rtl_engine.create ~label:("rtl:" ^ a.Ir.mod_name) a);
      (fun () -> Rtl_engine.create ~label:("rtl:" ^ b.Ir.mod_name) b);
    ]
