(** Technology mapping onto K-input lookup tables — the "Map Tool" stage
    of the paper's flow (Figure 6), targeting a generic FPGA fabric.

    Gates are seeded as single-gate LUTs and then greedily absorbed into
    their fanouts while the merged support stays within K inputs and the
    absorbed cone has no other fanout; LUT functions are kept as truth
    tables (K <= 6, so a table fits an OCaml int). *)

type lut = {
  lut_inputs : Netlist.net array;  (** support, position i = truth bit i *)
  truth : int;
  lut_out : Netlist.net;
}

type mapped

exception Map_error of string

val map : ?k:int -> Netlist.t -> mapped
(** Default K = 4.  Raises {!Map_error} for K outside 1..6. *)

val source : mapped -> Netlist.t
val luts : mapped -> lut list
val ffs : mapped -> (Netlist.net * Netlist.net) list
(** [(d, q)] pairs. *)

val lut_count : mapped -> int
val ff_count : mapped -> int

(** Per-module [(path, luts, ffs)] counts keyed on the source
    netlist's region annotations ({!Netlist.region_of}), sorted by
    path; [""] is the top module. *)
val by_module : mapped -> (string * int * int) list
val depth : mapped -> int
(** Longest LUT chain between registers/IO. *)

val verify : ?vectors:int -> ?seed:int -> mapped -> bool
(** Random co-simulation of the LUT network against the original gate
    netlist, flip-flops included. *)
