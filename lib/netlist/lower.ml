exception Lower_error of string

let lower_error fmt = Printf.ksprintf (fun s -> raise (Lower_error s)) fmt

let ceil_log2 n =
  if n < 1 then invalid_arg "ceil_log2";
  let rec go k p = if p >= n then k else go (k + 1) (p * 2) in
  go 0 1

type value = Vec of Netlist.net array | Mem of Netlist.net array array

(* Bindings are replaced functionally: net arrays are never mutated in
   place, so branch environments can share structure safely. *)
type env = (int, value) Hashtbl.t

type ctx = {
  nl : Netlist.t;
  env : env;
  never_written : (int, unit) Hashtbl.t;
      (* vars with no driver anywhere: read as constant zero *)
}

let get_vec ctx (v : Ir.var) =
  match Hashtbl.find_opt ctx.env v.Ir.id with
  | Some (Vec nets) -> nets
  | Some (Mem _) -> lower_error "array %s used as scalar" v.Ir.var_name
  | None ->
      if Hashtbl.mem ctx.never_written v.Ir.id then
        Array.make v.Ir.width (Netlist.const0 ctx.nl)
      else
        lower_error "combinational read of %s before it is driven"
          v.Ir.var_name

let get_mem ctx (v : Ir.var) =
  match Hashtbl.find_opt ctx.env v.Ir.id with
  | Some (Mem rows) -> rows
  | Some (Vec _) -> lower_error "scalar %s indexed as array" v.Ir.var_name
  | None -> lower_error "read of memory %s before it is driven" v.Ir.var_name

(* ---------------- datapath gate constructors ---------------- *)

let ripple_adder nl a b carry_in =
  let w = Array.length a in
  let sum = Array.make w carry_in in
  let carry = ref carry_in in
  for i = 0 to w - 1 do
    let axb = Netlist.xor2 nl a.(i) b.(i) in
    sum.(i) <- Netlist.xor2 nl axb !carry;
    let c1 = Netlist.and2 nl a.(i) b.(i) in
    let c2 = Netlist.and2 nl axb !carry in
    carry := Netlist.or2 nl c1 c2
  done;
  (sum, !carry)

(* Sklansky parallel-prefix adder: log-depth carries, the structure a
   synthesis tool (or an FPGA carry chain) provides.  Used above a
   width threshold; tiny adders stay ripple (less area, same speed). *)
let prefix_adder nl a b carry_in =
  let w = Array.length a in
  let g = Array.init w (fun i -> Netlist.and2 nl a.(i) b.(i)) in
  let p = Array.init w (fun i -> Netlist.xor2 nl a.(i) b.(i)) in
  (* gg.(i)/pp.(i) span bits [0..i] after the prefix tree *)
  let gg = Array.copy g and pp = Array.copy p in
  let span = ref 1 in
  while !span < w do
    let gg' = Array.copy gg and pp' = Array.copy pp in
    for i = 0 to w - 1 do
      (* Sklansky: combine with the block ending just below the span
         boundary *)
      if i land !span <> 0 || i mod (2 * !span) >= !span then begin
        let j = (i / (2 * !span) * (2 * !span)) + !span - 1 in
        if i >= !span && j < i then begin
          gg'.(i) <-
            Netlist.or2 nl gg.(i) (Netlist.and2 nl pp.(i) gg.(j));
          pp'.(i) <- Netlist.and2 nl pp.(i) pp.(j)
        end
      end
    done;
    Array.blit gg' 0 gg 0 w;
    Array.blit pp' 0 pp 0 w;
    span := !span * 2
  done;
  (* carries including carry-in: c_i = GG_i | PP_i & cin *)
  let carry i =
    Netlist.or2 nl gg.(i) (Netlist.and2 nl pp.(i) carry_in)
  in
  let sum =
    Array.init w (fun i ->
        if i = 0 then Netlist.xor2 nl p.(0) carry_in
        else Netlist.xor2 nl p.(i) (carry (i - 1)))
  in
  (sum, carry (w - 1))

let adder nl a b carry_in =
  if Array.length a <= 4 then ripple_adder nl a b carry_in
  else prefix_adder nl a b carry_in

let neg_vec nl a =
  let inverted = Array.map (Netlist.not_ nl) a in
  let zero = Array.make (Array.length a) (Netlist.const0 nl) in
  fst (adder nl inverted zero (Netlist.const1 nl))

let sub_vec nl a b =
  let inverted = Array.map (Netlist.not_ nl) b in
  fst (adder nl a inverted (Netlist.const1 nl))

(* a < b (unsigned): no carry out of a + ~b + 1. *)
let ult_net nl a b =
  let nb = Array.map (Netlist.not_ nl) b in
  let _, cout = adder nl a nb (Netlist.const1 nl) in
  Netlist.not_ nl cout

(* Balanced reduction keeps logic depth logarithmic. *)
let rec tree_reduce op = function
  | [] -> invalid_arg "tree_reduce: empty"
  | [ x ] -> x
  | xs ->
      let rec pair = function
        | a :: b :: rest -> op a b :: pair rest
        | [ a ] -> [ a ]
        | [] -> []
      in
      tree_reduce op (pair xs)

let eq_net nl a b =
  let sames =
    Array.to_list
      (Array.mapi
         (fun i ai -> Netlist.not_ nl (Netlist.xor2 nl ai b.(i)))
         a)
  in
  tree_reduce (Netlist.and2 nl) sames

let slt_net nl a b =
  let w = Array.length a in
  let sa = a.(w - 1) and sb = b.(w - 1) in
  let diff_sign = Netlist.xor2 nl sa sb in
  Netlist.mux2 nl ~sel:diff_sign sa (ult_net nl a b)

let mux_vec nl sel a b = Array.map2 (fun x y -> Netlist.mux2 nl ~sel x y) a b

let mul_vec nl a b =
  let w = Array.length a in
  let acc = ref (Array.make w (Netlist.const0 nl)) in
  for i = 0 to w - 1 do
    (* partial product: (a << i) masked by b.(i) *)
    let pp =
      Array.init w (fun j ->
          if j < i then Netlist.const0 nl
          else Netlist.and2 nl a.(j - i) b.(i))
    in
    acc := fst (adder nl !acc pp (Netlist.const0 nl))
  done;
  !acc

(* Shift by a constant amount with a chosen fill net. *)
let shift_const a ~left amount fill =
  let w = Array.length a in
  Array.init w (fun i ->
      let src = if left then i - amount else i + amount in
      if src < 0 || src >= w then fill else a.(src))

let barrel_shift nl a b ~left ~fill =
  let w = Array.length a in
  let stages = ceil_log2 (w + 1) in
  let result = ref a in
  let wb = Array.length b in
  for k = 0 to min (stages - 1) (wb - 1) do
    let shifted = shift_const !result ~left (1 lsl k) fill in
    result := mux_vec nl b.(k) shifted !result
  done;
  (* Shift amounts >= 2^stages (encoded in high bits of b) flush. *)
  if wb > stages then begin
    let over = ref (Netlist.const0 nl) in
    for k = stages to wb - 1 do
      over := Netlist.or2 nl !over b.(k)
    done;
    let flushed = Array.make w fill in
    result := mux_vec nl !over flushed !result
  end;
  !result

(* Select a memory row by index expression; out-of-range reads zero. *)
let mem_read ctx mem idx elem_width =
  let nl = ctx.nl in
  let depth = Array.length mem in
  let idx_bits = ceil_log2 depth in
  let rec tree lo len bit =
    if len = 1 then
      if lo < depth then mem.(lo)
      else Array.make elem_width (Netlist.const0 nl)
    else
      let half = len / 2 in
      let low = tree lo half (bit - 1) in
      let high = tree (lo + half) half (bit - 1) in
      if bit - 1 < Array.length idx then mux_vec nl idx.(bit - 1) high low
      else low
  in
  let full = if idx_bits = 0 then mem.(0) else tree 0 (1 lsl idx_bits) idx_bits in
  (* in-range check against any idx bits beyond the tree *)
  let over = ref (Netlist.const0 nl) in
  for k = idx_bits to Array.length idx - 1 do
    over := Netlist.or2 nl !over idx.(k)
  done;
  (* also indexes within the tree but >= depth read zero via padding *)
  let zero = Array.make elem_width (Netlist.const0 nl) in
  mux_vec nl !over zero full

(* ---------------- expressions ---------------- *)

let rec lower_expr ctx (e : Ir.expr) : Netlist.net array =
  let nl = ctx.nl in
  match e with
  | Const c -> Netlist.constant nl c
  | Var v -> get_vec ctx v
  | Array_read (v, idx) ->
      let mem = get_mem ctx v in
      let idx_nets = lower_expr ctx idx in
      mem_read ctx mem idx_nets v.Ir.width
  | Unop (op, e0) -> (
      let x = lower_expr ctx e0 in
      match op with
      | Not -> Array.map (Netlist.not_ nl) x
      | Neg -> neg_vec nl x
      | Reduce_and -> [| tree_reduce (Netlist.and2 nl) (Array.to_list x) |]
      | Reduce_or -> [| tree_reduce (Netlist.or2 nl) (Array.to_list x) |]
      | Reduce_xor -> [| tree_reduce (Netlist.xor2 nl) (Array.to_list x) |])
  | Binop (op, a, b) -> (
      let x = lower_expr ctx a in
      match op with
      | Add -> fst (adder nl x (lower_expr ctx b) (Netlist.const0 nl))
      | Sub -> sub_vec nl x (lower_expr ctx b)
      | Mul -> mul_vec nl x (lower_expr ctx b)
      | And -> Array.map2 (Netlist.and2 nl) x (lower_expr ctx b)
      | Or -> Array.map2 (Netlist.or2 nl) x (lower_expr ctx b)
      | Xor -> Array.map2 (Netlist.xor2 nl) x (lower_expr ctx b)
      | Eq -> [| eq_net nl x (lower_expr ctx b) |]
      | Ne -> [| Netlist.not_ nl (eq_net nl x (lower_expr ctx b)) |]
      | Ult -> [| ult_net nl x (lower_expr ctx b) |]
      | Ule -> [| Netlist.not_ nl (ult_net nl (lower_expr ctx b) x) |]
      | Slt -> [| slt_net nl x (lower_expr ctx b) |]
      | Sle -> [| Netlist.not_ nl (slt_net nl (lower_expr ctx b) x) |]
      | Shl ->
          barrel_shift nl x (lower_expr ctx b) ~left:true
            ~fill:(Netlist.const0 nl)
      | Lshr ->
          barrel_shift nl x (lower_expr ctx b) ~left:false
            ~fill:(Netlist.const0 nl)
      | Ashr ->
          barrel_shift nl x (lower_expr ctx b) ~left:false
            ~fill:x.(Array.length x - 1))
  | Mux (s, t, e0) ->
      let sel = (lower_expr ctx s).(0) in
      mux_vec nl sel (lower_expr ctx t) (lower_expr ctx e0)
  | Slice (e0, hi, lo) ->
      let x = lower_expr ctx e0 in
      Array.sub x lo (hi - lo + 1)
  | Concat (a, b) ->
      let hi = lower_expr ctx a and lo = lower_expr ctx b in
      Array.append lo hi
  | Resize (signed, e0, w) ->
      let x = lower_expr ctx e0 in
      let we = Array.length x in
      if w <= we then Array.sub x 0 w
      else
        let fill =
          if signed then x.(we - 1) else Netlist.const0 nl
        in
        Array.init w (fun i -> if i < we then x.(i) else fill)

(* ---------------- statements ---------------- *)

let rec exec ctx (st : Ir.stmt) =
  let nl = ctx.nl in
  match st with
  | Assign (v, e) -> Hashtbl.replace ctx.env v.Ir.id (Vec (lower_expr ctx e))
  | Assign_slice (v, lo, e) ->
      let field = lower_expr ctx e in
      let old = get_vec ctx v in
      let fresh =
        Array.mapi
          (fun i n ->
            if i >= lo && i < lo + Array.length field then field.(i - lo)
            else n)
          old
      in
      Hashtbl.replace ctx.env v.Ir.id (Vec fresh)
  | Array_write (v, idx, e) ->
      let mem = get_mem ctx v in
      let idx_nets = lower_expr ctx idx in
      let value = lower_expr ctx e in
      let fresh =
        Array.mapi
          (fun i row ->
            let sel =
              eq_net nl idx_nets
                (Netlist.constant nl
                   (Bitvec.of_int ~width:(Array.length idx_nets) i))
            in
            mux_vec nl sel value row)
          mem
      in
      Hashtbl.replace ctx.env v.Ir.id (Mem fresh)
  | If (c, t, e) ->
      let sel = (lower_expr ctx c).(0) in
      exec_branches ctx sel t e
  | Case (s, arms, dflt) ->
      (* Parallel decode.  Case labels are mutually exclusive, so an
         arm that leaves a variable untouched contributes nothing to
         that variable's mux network as long as the default leaves it
         untouched too — this is what turns the histogram class into a
         write-enable decoder instead of a quadratic mux cascade. *)
      let scrutinee = lower_expr ctx s in
      let base = ctx.env in
      let run body =
        let env = Hashtbl.copy base in
        List.iter (exec { ctx with env }) body;
        env
      in
      let armed =
        List.map
          (fun (label, body) ->
            let sel = eq_net nl scrutinee (Netlist.constant nl label) in
            (sel, run body))
          arms
      in
      let dflt_env = run dflt in
      let keys = Hashtbl.create 16 in
      let note env = Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) env in
      note dflt_env;
      List.iter (fun (_, env) -> note env) armed;
      let merge_value k =
        let base_v = Hashtbl.find_opt base k in
        let dflt_v = Hashtbl.find_opt dflt_env k in
        let arm_vs = List.map (fun (sel, env) -> (sel, Hashtbl.find_opt env k)) armed in
        let same a b =
          match (a, b) with
          | Some x, Some y -> x == y
          | None, None -> true
          | Some _, None | None, Some _ -> false
        in
        if same dflt_v base_v && List.for_all (fun (_, v) -> same v base_v) arm_vs
        then base_v
        else begin
          (* Without a prior binding the case must cover the variable on
             every path (all arms plus the default); anything less would
             synthesize a latch. *)
          if
            base_v = None
            && (dflt_v = None
               || List.exists (fun (_, v) -> v = None) arm_vs)
          then
            lower_error
              "variable id %d assigned on only some paths of a case" k;
          (* Bit-granular merge: because the labels are mutually
             exclusive, an arm whose bit equals the pre-case bit can be
             skipped whenever the default also kept that bit — slice
             writes into a wide object state vector then cost exactly
             one mux per written bit, like a hand-coded write decoder. *)
          let start_of dv bv = match dv with Some v -> v | None -> Option.get bv in
          let merge_bits base_bits dflt_bits per_arm_bits =
            Array.init (Array.length dflt_bits) (fun i ->
                let base_bit =
                  match base_bits with Some b -> Some b.(i) | None -> None
                in
                let dflt_unchanged = base_bit = Some dflt_bits.(i) in
                List.fold_left
                  (fun acc (sel, bits) ->
                    match bits with
                    | None -> acc
                    | Some bits ->
                        if dflt_unchanged && base_bit = Some bits.(i) then acc
                        else if bits.(i) = acc then acc
                        else Netlist.mux2 nl ~sel bits.(i) acc)
                  dflt_bits.(i)
                  (List.rev per_arm_bits))
          in
          let merged =
            match start_of dflt_v base_v with
            | Vec _ ->
                let bits = function
                  | Some (Vec x) -> Some x
                  | Some (Mem _) ->
                      lower_error
                        "variable id %d bound as both scalar and memory" k
                  | None -> None
                in
                let dflt_bits =
                  match bits dflt_v with
                  | Some x -> x
                  | None -> Option.get (bits base_v)
                in
                Vec
                  (merge_bits (bits base_v) dflt_bits
                     (List.map (fun (sel, v) -> (sel, bits v)) arm_vs))
            | Mem rows ->
                let rows_of = function
                  | Some (Mem x) -> Some x
                  | Some (Vec _) ->
                      lower_error
                        "variable id %d bound as both scalar and memory" k
                  | None -> None
                in
                let dflt_rows =
                  match rows_of dflt_v with
                  | Some x -> x
                  | None -> Option.get (rows_of base_v)
                in
                Mem
                  (Array.init (Array.length rows) (fun r ->
                       let pick = function
                         | Some m -> Some m.(r)
                         | None -> None
                       in
                       merge_bits
                         (pick (rows_of base_v))
                         dflt_rows.(r)
                         (List.map
                            (fun (sel, v) -> (sel, pick (rows_of v)))
                            arm_vs)))
          in
          Some merged
        end
      in
      Hashtbl.iter
        (fun k () ->
          match merge_value k with
          | Some v -> Hashtbl.replace ctx.env k v
          | None -> ())
        keys

and exec_branches ctx sel then_body else_body =
  exec_branches_k ctx sel
    (fun ctx -> List.iter (exec ctx) then_body)
    (fun ctx -> List.iter (exec ctx) else_body)

and exec_branches_k ctx sel run_then run_else =
  let env_t = Hashtbl.copy ctx.env in
  let env_e = Hashtbl.copy ctx.env in
  run_then { ctx with env = env_t };
  run_else { ctx with env = env_e };
  (* Merge every binding that differs between the two branches. *)
  let keys = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) env_t;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) env_e;
  Hashtbl.iter
    (fun k () ->
      let vt = Hashtbl.find_opt env_t k and ve = Hashtbl.find_opt env_e k in
      match (vt, ve) with
      | Some a, Some b when a == b -> Hashtbl.replace ctx.env k a
      | Some (Vec a), Some (Vec b) ->
          if a == b then Hashtbl.replace ctx.env k (Vec a)
          else Hashtbl.replace ctx.env k (Vec (mux_vec ctx.nl sel a b))
      | Some (Mem a), Some (Mem b) ->
          if a == b then Hashtbl.replace ctx.env k (Mem a)
          else
            Hashtbl.replace ctx.env k
              (Mem (Array.map2 (fun ra rb -> mux_vec ctx.nl sel ra rb) a b))
      | Some only, None | None, Some only ->
          (* Written in one branch with no prior binding: treating the
             missing side as zero would silently synthesize a latch;
             reject instead. *)
          ignore only;
          lower_error "variable id %d assigned in only one branch of a \
                       conditional and never before it" k
      | Some (Vec _), Some (Mem _) | Some (Mem _), Some (Vec _) ->
          lower_error "variable id %d bound as both scalar and memory" k
      | None, None -> ())
    keys

(* ---------------- processes and module ---------------- *)

let topo_sort_combs combs =
  (* Order combinational processes so writers precede readers. *)
  let n = Array.length combs in
  let writes = Array.map (fun (_, body) -> Ir.body_writes body) combs in
  let reads = Array.map (fun (_, body) -> Ir.body_reads body) combs in
  let writer_of = Hashtbl.create 32 in
  Array.iteri
    (fun i ws ->
      List.iter (fun (v : Ir.var) -> Hashtbl.replace writer_of v.Ir.id i) ws)
    writes;
  let deps i =
    List.filter_map
      (fun (v : Ir.var) ->
        match Hashtbl.find_opt writer_of v.Ir.id with
        | Some j when j <> i -> Some j
        | _ -> None)
      reads.(i)
  in
  let state = Array.make n 0 in
  let order = ref [] in
  let rec visit i =
    match state.(i) with
    | 2 -> ()
    | 1 ->
        lower_error "combinational cycle through process %s" (fst combs.(i))
    | _ ->
        state.(i) <- 1;
        List.iter visit (deps i);
        state.(i) <- 2;
        order := i :: !order
  in
  for i = 0 to n - 1 do
    visit i
  done;
  List.rev_map (fun i -> combs.(i)) !order

(* ---------------- the lowering memo-cache ---------------- *)

(* Lowered module segments are memoized on {!Ir.structural_hash} (plus
   the fold flag): a netlist is read-only once built, so repeated flow
   runs — and designs sharing leaf IP, like the OSSS/VHDL pair — reuse
   the same segment instead of re-lowering it.  [Synth.Flow] reports
   the hit/miss movement of a run as [flow.lower.cache_hits]. *)
let cache : (string, Netlist.t) Hashtbl.t = Hashtbl.create 32
let cache_lock = Mutex.create ()  (* flows may lower from pool domains *)
let cache_hits = ref 0  (* under [cache_lock] *)
let cache_misses = ref 0  (* under [cache_lock] *)

let cache_stats () =
  Mutex.protect cache_lock (fun () -> (!cache_hits, !cache_misses))

let clear_cache () = Mutex.protect cache_lock (fun () -> Hashtbl.reset cache)

(* ---------------- instance splicing ---------------- *)

(* Replay one lowered child segment into the parent builder.

   Child input-port bits become fresh {e placeholder} nets in the
   parent — allocated but undriven, recorded in [pending_inputs] —
   because the parent value feeding a port may itself only exist after
   the splice (combinational glue, another instance's output).  Once
   the parent has bound every variable, {!resolve_placeholders}
   substitutes the real driver into everything that mentions a
   placeholder.  Cells are replayed through the parent's own gate
   builders (keeping parent-level folding and structural hashing
   coherent), flip-flops first so q nets exist before any reader, and
   every replayed net is tagged with the instance name as its region,
   child regions nesting underneath. *)
let splice ctx ~pending_inputs (inst : Ir.instance) (seg : Netlist.t) =
  let nl = ctx.nl in
  let map = Array.make (max 1 (Netlist.net_count seg)) (-1) in
  List.iter
    (fun (pname, nets) ->
      match List.assoc_opt pname inst.Ir.port_map with
      | None ->
          lower_error "instance %s: port %s not connected" inst.Ir.inst_name
            pname
      | Some actual ->
          Array.iteri
            (fun i sn ->
              let ph = Netlist.new_net nl in
              map.(sn) <- ph;
              pending_inputs := (ph, actual, i) :: !pending_inputs)
            nets)
    (Netlist.inputs seg);
  let region_for sn =
    match Netlist.region_of seg sn with
    | "" -> inst.Ir.inst_name
    | r -> inst.Ir.inst_name ^ "." ^ r
  in
  let tag sn out =
    Netlist.set_region nl out (region_for sn);
    match Netlist.hint_of seg sn with
    | Some h -> Netlist.set_hint nl out h
    | None -> ()
  in
  let seg_cells = Netlist.cells seg in
  List.iter
    (fun (c : Netlist.cell) ->
      if c.kind = Cell.Dff then begin
        let q = Netlist.dff_deferred nl in
        map.(c.out) <- q;
        tag c.out q
      end)
    seg_cells;
  let arg c k =
    let n = map.((c : Netlist.cell).ins.(k)) in
    if n < 0 then
      lower_error "instance %s: unmapped net in segment %s" inst.Ir.inst_name
        (Netlist.name seg)
    else n
  in
  List.iter
    (fun (c : Netlist.cell) ->
      match c.kind with
      | Cell.Dff -> ()
      | kind ->
          let before = Netlist.net_count nl in
          let out =
            match kind with
            | Cell.Const0 -> Netlist.const0 nl
            | Cell.Const1 -> Netlist.const1 nl
            | Cell.Buf -> arg c 0
            | Cell.Not -> Netlist.not_ nl (arg c 0)
            | Cell.And2 -> Netlist.and2 nl (arg c 0) (arg c 1)
            | Cell.Or2 -> Netlist.or2 nl (arg c 0) (arg c 1)
            | Cell.Xor2 -> Netlist.xor2 nl (arg c 0) (arg c 1)
            | Cell.Nand2 -> Netlist.nand2 nl (arg c 0) (arg c 1)
            | Cell.Nor2 -> Netlist.nor2 nl (arg c 0) (arg c 1)
            | Cell.Mux2 -> Netlist.mux2 nl ~sel:(arg c 0) (arg c 1) (arg c 2)
            | Cell.Dff -> assert false
          in
          map.(c.out) <- out;
          if out >= before then tag c.out out)
    seg_cells;
  List.iter
    (fun (c : Netlist.cell) ->
      if c.kind = Cell.Dff then
        Netlist.connect_dff nl ~q:map.(c.out) ~d:map.(c.ins.(0)))
    seg_cells;
  List.iter
    (fun (pname, nets) ->
      match List.assoc_opt pname inst.Ir.port_map with
      | None ->
          lower_error "instance %s: port %s not connected" inst.Ir.inst_name
            pname
      | Some actual ->
          Hashtbl.replace ctx.env actual.Ir.id
            (Vec (Array.map (fun sn -> map.(sn)) nets)))
    (Netlist.outputs seg)

(* Substitute the final parent driver for every child-input placeholder
   — in every cell input and every output bus.  Substitution follows
   chains (a feedthrough output of one instance can feed an input of
   the next, so a placeholder can resolve to another placeholder) with
   a step bound that turns cyclic port feedthrough into a clean error.
   Returns the resolver so callers can normalize nets they kept around
   (environment bindings used for name hints). *)
let resolve_placeholders ctx pending_inputs =
  if pending_inputs = [] then fun n -> n
  else begin
    let nl = ctx.nl in
    let subst = Hashtbl.create (List.length pending_inputs) in
    List.iter
      (fun (ph, actual, i) ->
        let nets = get_vec ctx actual in
        Hashtbl.replace subst ph nets.(i))
      pending_inputs;
    let limit = Hashtbl.length subst + 1 in
    let rec follow steps n =
      match Hashtbl.find_opt subst n with
      | None -> n
      | Some n' ->
          if steps > limit then
            lower_error "%s: cyclic feedthrough through instance ports"
              (Netlist.name nl);
          follow (steps + 1) n'
    in
    let resolve n = follow 0 n in
    List.iter
      (fun (c : Netlist.cell) ->
        Array.iteri
          (fun k n ->
            let n' = resolve n in
            if n' <> n then c.ins.(k) <- n')
          c.ins)
      (Netlist.cells nl);
    List.iter
      (fun (_, nets) ->
        Array.iteri
          (fun k n ->
            let n' = resolve n in
            if n' <> n then nets.(k) <- n')
          nets)
      (Netlist.outputs nl);
    resolve
  end

let rec lower ?(fold = true) (m : Ir.module_def) : Netlist.t =
  let key = Ir.structural_hash m ^ if fold then ":f" else ":r" in
  let cached =
    Mutex.protect cache_lock (fun () ->
        match Hashtbl.find_opt cache key with
        | Some nl ->
            incr cache_hits;
            Some nl
        | None ->
            incr cache_misses;
            None)
  in
  match cached with
  | Some nl -> nl
  | None ->
      (* Lowering happens outside the lock (it recurses back into
         [lower] for child segments); two domains racing on the same
         key both lower and the second replace wins — segments are
         read-only, so either is valid. *)
      let nl = lower_module ~fold m in
      Mutex.protect cache_lock (fun () -> Hashtbl.replace cache key nl);
      nl

and lower_module ~fold (m0 : Ir.module_def) =
  (* Leaf modules take the pre-existing flatten path (a no-op rename
     for an instance-free module), so leaf netlists are built exactly
     as before; hierarchical modules splice their memoized child
     segments instead of flattening. *)
  let m = if m0.Ir.instances = [] then Elaborate.flatten m0 else m0 in
  Ir.check_module m;
  let nl = Netlist.create ~fold ~name:m.Ir.mod_name () in
  let env : env = Hashtbl.create 64 in
  let never_written = Hashtbl.create 16 in
  let kinds = Ir.classify_vars m in
  (* Mark variables with no driver at all (constant zero reads): driven
     means written by one of this module's processes, bound as a module
     input, or connected to a child instance's output. *)
  let driven = Hashtbl.create 64 in
  Hashtbl.iter (fun id _ -> Hashtbl.replace driven id ()) kinds;
  List.iter
    (fun (inst : Ir.instance) ->
      List.iter
        (fun (p : Ir.port) ->
          if p.dir = Ir.Output then
            match List.assoc_opt p.port_name inst.Ir.port_map with
            | Some actual -> Hashtbl.replace driven actual.Ir.id ()
            | None -> ())
        inst.Ir.inst_of.Ir.ports)
    m.Ir.instances;
  List.iter
    (fun (v : Ir.var) ->
      if not (Hashtbl.mem driven v.Ir.id) then
        Hashtbl.replace never_written v.Ir.id ())
    m.locals;
  let ctx = { nl; env; never_written } in
  (* Inputs. *)
  List.iter
    (fun (p : Ir.port) ->
      if p.dir = Ir.Input then
        Hashtbl.replace env p.port_var.Ir.id
          (Vec (Netlist.add_input nl p.port_name p.port_var.Ir.width)))
    m.ports;
  (* Child instances: lower each child once (memoized across instances
     and runs) and splice the segment in.  Child outputs are bound into
     the environment here; child inputs stay placeholders until every
     parent value exists. *)
  let pending_inputs = ref [] in
  List.iter
    (fun (inst : Ir.instance) ->
      let seg = lower ~fold inst.Ir.inst_of in
      splice ctx ~pending_inputs inst seg)
    m.Ir.instances;
  (* Registers: allocate flip-flop outputs up front. *)
  let sync_bodies =
    List.filter_map
      (function
        | Ir.Sync { proc_name; body } -> Some (proc_name, body)
        | Ir.Comb _ -> None)
      m.processes
  in
  let regs = Hashtbl.create 32 in
  List.iter
    (fun (_, body) ->
      List.iter
        (fun (v : Ir.var) ->
          if not (Hashtbl.mem regs v.Ir.id) then begin
            Hashtbl.replace regs v.Ir.id v;
            if Ir.is_array v then
              Hashtbl.replace env v.Ir.id
                (Mem
                   (Array.init v.Ir.depth (fun _ ->
                        Array.init v.Ir.width (fun _ ->
                            Netlist.dff_deferred nl))))
            else
              Hashtbl.replace env v.Ir.id
                (Vec (Array.init v.Ir.width (fun _ -> Netlist.dff_deferred nl)))
          end)
        (Ir.body_writes body))
    sync_bodies;
  (* Combinational processes in dependency order. *)
  let combs =
    List.filter_map
      (function
        | Ir.Comb { proc_name; body } -> Some (proc_name, body)
        | Ir.Sync _ -> None)
      m.processes
    |> Array.of_list
  in
  let ordered = topo_sort_combs combs in
  List.iter (fun (_, body) -> List.iter (exec ctx) body) ordered;
  (* Synchronous processes: next-state from a shared pre-edge snapshot. *)
  let snapshot = Hashtbl.copy env in
  let commits =
    List.map
      (fun (pname, body) ->
        let local = { ctx with env = Hashtbl.copy snapshot } in
        List.iter (exec local) body;
        (pname, body, local))
      sync_bodies
  in
  List.iter
    (fun (_, body, local) ->
      List.iter
        (fun (v : Ir.var) ->
          match (Hashtbl.find_opt snapshot v.Ir.id, Hashtbl.find_opt local.env v.Ir.id) with
          | Some (Vec qs), Some (Vec ds) ->
              Array.iteri
                (fun i q -> Netlist.connect_dff nl ~q ~d:ds.(i))
                qs
          | Some (Mem qrows), Some (Mem drows) ->
              Array.iteri
                (fun r qrow ->
                  Array.iteri
                    (fun i q -> Netlist.connect_dff nl ~q ~d:drows.(r).(i))
                    qrow)
                qrows
          | _ -> lower_error "register %s lost its binding" v.Ir.var_name)
        (let seen = Hashtbl.create 8 in
         List.filter
           (fun (v : Ir.var) ->
             if Hashtbl.mem seen v.Ir.id then false
             else begin
               Hashtbl.replace seen v.Ir.id ();
               true
             end)
           (Ir.body_writes body)))
    commits;
  (* Outputs. *)
  List.iter
    (fun (p : Ir.port) ->
      if p.dir = Ir.Output then
        Netlist.add_output nl p.port_name (get_vec ctx p.port_var))
    m.ports;
  (* Resolve child-input placeholders now that every parent value
     exists, then record design-level name hints from the final
     variable bindings (ports and locals; register q nets and comb
     results alike). *)
  let resolve = resolve_placeholders ctx !pending_inputs in
  let hint_binding (v : Ir.var) =
    match Hashtbl.find_opt env v.Ir.id with
    | Some (Vec nets) ->
        Array.iteri
          (fun i n ->
            let name =
              if Array.length nets = 1 then v.Ir.var_name
              else Printf.sprintf "%s[%d]" v.Ir.var_name i
            in
            Netlist.set_hint nl (resolve n) name)
          nets
    | Some (Mem rows) ->
        Array.iteri
          (fun r row ->
            Array.iteri
              (fun i n ->
                Netlist.set_hint nl (resolve n)
                  (Printf.sprintf "%s[%d][%d]" v.Ir.var_name r i))
              row)
          rows
    | None -> ()
  in
  List.iter (fun (p : Ir.port) -> hint_binding p.Ir.port_var) m.ports;
  List.iter hint_binding m.locals;
  Netlist.check nl;
  nl
