type report = {
  dynamic_mw : float;
  leakage_mw : float;
  total_mw : float;
  clock_mw : float;
  avg_activity : float;
  cycles : int;
}

(* Load capacitance per cell output, in fF-class model units keyed to
   the cell's drive/area; leakage in uW per gate-equivalent. *)
let cap_ff kind = 1.5 +. (2.0 *. Cell.area kind)
let leakage_uw_per_ge = 0.12
let clock_pin_cap_ff = 1.0

let estimate ?(freq_mhz = 66.0) ?(vdd = 1.8) nl sim =
  let cycles = max 1 (Nl_sim.cycles sim) in
  let f_hz = freq_mhz *. 1e6 in
  let v2 = vdd *. vdd in
  (* energy per transition: C * V^2; power: alpha * C * V^2 * f *)
  let dynamic = ref 0.0 in
  let total_toggles = ref 0 in
  let n_nets = ref 0 in
  List.iter
    (fun (c : Netlist.cell) ->
      let toggles = Nl_sim.net_toggles sim c.out in
      total_toggles := !total_toggles + toggles;
      incr n_nets;
      let alpha = float_of_int toggles /. float_of_int cycles in
      dynamic := !dynamic +. (alpha *. cap_ff c.kind *. 1e-15 *. v2 *. f_hz))
    (Netlist.cells nl);
  (* clock tree: every flip-flop's clock pin switches twice a cycle *)
  let n_ffs =
    List.length
      (List.filter (fun (c : Netlist.cell) -> c.kind = Cell.Dff)
         (Netlist.cells nl))
  in
  let clock =
    2.0 *. float_of_int n_ffs *. clock_pin_cap_ff *. 1e-15 *. v2 *. f_hz
  in
  let area = (Area.analyze nl).Area.total in
  let leakage = area *. leakage_uw_per_ge *. 1e-6 in
  let dynamic_mw = (!dynamic +. clock) *. 1e3 in
  let leakage_mw = leakage *. 1e3 in
  {
    dynamic_mw;
    leakage_mw;
    total_mw = dynamic_mw +. leakage_mw;
    clock_mw = clock *. 1e3;
    avg_activity =
      float_of_int !total_toggles
      /. float_of_int (max 1 !n_nets)
      /. float_of_int cycles;
    cycles;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "%.3f mW total (%.3f dynamic incl. %.3f clock, %.3f leakage), avg \
     activity %.3f over %d cycles"
    r.total_mw r.dynamic_mw r.clock_mw r.leakage_mw r.avg_activity r.cycles

type module_row = {
  path : string;
  m_dynamic_mw : float;
  m_toggles : int;
}

let by_module ?(freq_mhz = 66.0) ?(vdd = 1.8) nl sim =
  let cycles = max 1 (Nl_sim.cycles sim) in
  let f_hz = freq_mhz *. 1e6 in
  let v2 = vdd *. vdd in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (c : Netlist.cell) ->
      let toggles = Nl_sim.net_toggles sim c.out in
      let alpha = float_of_int toggles /. float_of_int cycles in
      let dyn = alpha *. cap_ff c.kind *. 1e-15 *. v2 *. f_hz in
      (* flip-flop clock pins charge twice a cycle, same as [estimate] *)
      let dyn =
        if c.kind = Cell.Dff then
          dyn +. (2.0 *. clock_pin_cap_ff *. 1e-15 *. v2 *. f_hz)
        else dyn
      in
      let r = Netlist.region_of nl c.out in
      let d, t =
        match Hashtbl.find_opt tbl r with Some x -> x | None -> (0.0, 0)
      in
      Hashtbl.replace tbl r (d +. dyn, t + toggles))
    (Netlist.cells nl);
  List.sort compare
    (Hashtbl.fold
       (fun path (d, m_toggles) acc ->
         { path; m_dynamic_mw = d *. 1e3; m_toggles } :: acc)
       tbl [])
