(* Word-parallel gate-level simulator: every net carries [lanes]
   independent two-valued simulations packed into native ints, so one
   bitwise word op per gate advances all lanes at once (the Hardcaml
   trick, applied to multi-scenario regression instead of wide buses).

   Packing invariant: bits of inactive lanes (beyond [lanes] in the last
   word) are always 0.  The non-inverting gates preserve that on their
   own; Not/Nand/Nor mask their result back to the active lanes, and
   Mux2 is computed as (a & s) | (b & ~s) whose operands are masked.

   Scheduling (topological order, levels, fanout, dirty buckets, the
   toggle epoch) is byte-for-byte the [Nl_sim] machinery via
   [Nl_sim.Sched]; a cell is dirty when any lane of any input moved. *)

(* Global activity counters (see Metrics.Perf). *)
let ctr_evals = Perf.counter "nl_wsim.gate_evals"
let ctr_skipped = Perf.counter "nl_wsim.cells_skipped"
let ctr_full = Perf.counter "nl_wsim.full_settles"

type mode = Event_driven | Full_eval

(* Lanes per machine word: all representable bits of an OCaml int,
   including the sign bit (only bitwise ops ever touch lane words). *)
let lane_bits = Sys.int_size

type t = {
  nl : Netlist.t;
  mode : mode;
  lanes : int;
  nw : int;  (* words per net *)
  word_mask : int array;  (* per word: active-lane bits *)
  values : int array;  (* net [n], word [w] at [n*nw + w] *)
  order : Netlist.cell array;
  dffs : Netlist.cell array;
  in_nets : (string, Netlist.net array) Hashtbl.t;
  out_nets : (string, Netlist.net array) Hashtbl.t;
  level : int array;
  fanout : int array array;
  buckets : int list array;
  pending : bool array;
  mutable need_full : bool;
  (* Toggle accounting (see Nl_sim): lane-0 transition counters match
     the scalar simulator's [net_toggles] bit for bit; the full change
     masks feed per-lane coverage when enabled. *)
  toggles0 : int array;
  epoch_pre : int array;
  epoch_seen : bool array;
  mutable epoch_touched : int list;
  mutable in_epoch : bool;
  dff_buf : int array;  (* dff sampling buffer, [dffs * nw] *)
  snapshot : int array;  (* Full_eval pre-edge copy of [values] *)
  mutable n_cycles : int;
  mutable n_evals : int;
  mutable n_skipped : int;
  mutable n_full_settles : int;
  (* Per-lane stuck-at forces, indexed like [values]: a written word
     becomes (x & ~f_mask) | f_val.  [ [||] ] until the first
     injection, so fault-free runs pay one branch per write. *)
  mutable has_faults : bool;
  mutable f_mask : int array;
  mutable f_val : int array;
  mutable n_faults : int;
  (* Per-lane toggle coverage; [ [||] ] until [enable_toggle_cover]. *)
  mutable cover : Cover.Toggle.t array;
  (* Per-lane windowed activity samplers for dynamic power; [ [||] ]
     until [enable_power_sampler].  Lane 0 samples bit-identically to
     the scalar simulator's sampler (same epoch accounting). *)
  mutable activity : Cover.Activity.t array;
  (* Causal event emission (see Obs.Event); [ev_last.(n)] is the seq of
     the newest change event on net [n], the cause fed to readers.
     [ [||] ] until [enable_events], so silent runs pay one branch per
     changed net.  [ev_ctx]/[ev_ctx_stim] classify drive_net_word
     writes: stimulus by default, dff-commit with a pre-sampled cause
     during the clock edge. *)
  mutable ev_on : bool;
  mutable ev_last : int array;
  mutable ev_labels : string array;
  mutable ev_ctx : int;
  mutable ev_ctx_stim : bool;
}

let create ?(mode = Event_driven) ~lanes nl =
  if lanes < 1 then invalid_arg "Nl_wsim.create: lanes must be >= 1";
  let { Nl_sim.Sched.order; dffs; level; fanout; n_levels; in_nets; out_nets }
      =
    Nl_sim.Sched.build nl
  in
  let nw = (lanes + lane_bits - 1) / lane_bits in
  let word_mask =
    Array.init nw (fun w ->
        let k = min lane_bits (lanes - (w * lane_bits)) in
        if k = lane_bits then -1 else (1 lsl k) - 1)
  in
  let n_nets = Netlist.net_count nl in
  {
    nl;
    mode;
    lanes;
    nw;
    word_mask;
    values = Array.make (n_nets * nw) 0;
    order;
    dffs;
    in_nets;
    out_nets;
    level;
    fanout;
    buckets = Array.make n_levels [];
    pending = Array.make (Array.length order) false;
    need_full = true;
    toggles0 = Array.make n_nets 0;
    epoch_pre = Array.make (n_nets * nw) 0;
    epoch_seen = Array.make n_nets false;
    epoch_touched = [];
    in_epoch = false;
    dff_buf = Array.make (Array.length dffs * nw) 0;
    snapshot = Array.make (n_nets * nw) 0;
    n_cycles = 0;
    n_evals = 0;
    n_skipped = 0;
    n_full_settles = 0;
    has_faults = false;
    f_mask = [||];
    f_val = [||];
    n_faults = 0;
    cover = [||];
    activity = [||];
    ev_on = false;
    ev_last = [||];
    ev_labels = [||];
    ev_ctx = Obs.Event.no_cause;
    ev_ctx_stim = true;
  }

let enable_events t =
  if not t.ev_on then begin
    if Array.length t.ev_last = 0 then begin
      t.ev_last <- Array.make (Netlist.net_count t.nl) Obs.Event.no_cause;
      t.ev_labels <- Nl_sim.Sched.net_labels t.nl
    end;
    t.ev_on <- true;
    if not (Obs.Event.enabled ()) then Obs.Event.enable ()
  end

let emitting t = t.ev_on && Obs.Event.enabled ()

(* Newest change among a cell's input nets — the cause of its output
   moving. *)
let ev_cell_cause t (c : Netlist.cell) =
  let best = ref Obs.Event.no_cause in
  Array.iter
    (fun n ->
      let s = t.ev_last.(n) in
      if s > !best then best := s)
    c.ins;
  !best

(* Record a change event on net [n]; value is the lane-0 bit, lane -1
   marks the event as an aggregate over all packed lanes. *)
let ev_net t n kind cause =
  let value = t.values.(n * t.nw) land 1 in
  let seq = Obs.Event.emit ~cycle:t.n_cycles ~value ~cause kind t.ev_labels.(n) in
  t.ev_last.(n) <- seq

let schedule t ci =
  if not t.pending.(ci) then begin
    t.pending.(ci) <- true;
    let l = t.level.(ci) in
    t.buckets.(l) <- ci :: t.buckets.(l)
  end

let record_epoch t n =
  if t.in_epoch && not t.epoch_seen.(n) then begin
    t.epoch_seen.(n) <- true;
    Array.blit t.values (n * t.nw) t.epoch_pre (n * t.nw) t.nw;
    t.epoch_touched <- n :: t.epoch_touched
  end

let apply_fault t idx x = x land lnot t.f_mask.(idx) lor t.f_val.(idx)

(* One word of one gate, all lanes at once. *)
let eval_word t (c : Netlist.cell) w =
  let v = t.values and nw = t.nw in
  let inp i = Array.unsafe_get v ((Array.unsafe_get c.ins i * nw) + w) in
  match c.kind with
  | Cell.Const0 -> 0
  | Const1 -> t.word_mask.(w)
  | Buf -> inp 0
  | Not -> lnot (inp 0) land t.word_mask.(w)
  | And2 -> inp 0 land inp 1
  | Or2 -> inp 0 lor inp 1
  | Xor2 -> inp 0 lxor inp 1
  | Nand2 -> lnot (inp 0 land inp 1) land t.word_mask.(w)
  | Nor2 -> lnot (inp 0 lor inp 1) land t.word_mask.(w)
  | Mux2 ->
      let s = inp 0 in
      inp 1 land s lor (inp 2 land lnot s)
  | Dff -> v.((c.out * nw) + w)

(* Evaluate a cell, writing only moved words; true if any lane changed.
   The epoch snapshot is taken before the first write to the net. *)
let eval_cell_changed t (c : Netlist.cell) =
  let v = t.values and nw = t.nw in
  let base = c.out * nw in
  let changed = ref false in
  for w = 0 to nw - 1 do
    let x = eval_word t c w in
    let x = if t.has_faults then apply_fault t (base + w) x else x in
    if v.(base + w) <> x then begin
      if not !changed then begin
        record_epoch t c.out;
        changed := true
      end;
      v.(base + w) <- x
    end
  done;
  if !changed && emitting t then
    ev_net t c.out Obs.Event.Net_change (ev_cell_cause t c);
  !changed

let settle_full t =
  let v = t.values and nw = t.nw in
  Array.iter
    (fun (c : Netlist.cell) ->
      let base = c.out * nw in
      for w = 0 to nw - 1 do
        let x = eval_word t c w in
        v.(base + w) <-
          (if t.has_faults then apply_fault t (base + w) x else x)
      done)
    t.order;
  t.n_evals <- t.n_evals + Array.length t.order;
  t.n_full_settles <- t.n_full_settles + 1;
  Perf.incr ~by:(Array.length t.order) ctr_evals

let settle_event t =
  if t.need_full then begin
    t.need_full <- false;
    Array.iter (fun c -> ignore (eval_cell_changed t c)) t.order;
    t.n_evals <- t.n_evals + Array.length t.order;
    t.n_full_settles <- t.n_full_settles + 1;
    Perf.incr ~by:(Array.length t.order) ctr_evals;
    Perf.incr ctr_full;
    (* Anything scheduled beforehand was just evaluated. *)
    Array.iteri
      (fun l b ->
        List.iter (fun ci -> t.pending.(ci) <- false) b;
        t.buckets.(l) <- [])
      t.buckets
  end
  else begin
    let evals = ref 0 in
    for l = 0 to Array.length t.buckets - 1 do
      let rec drain () =
        match t.buckets.(l) with
        | [] -> ()
        | ci :: rest ->
            t.buckets.(l) <- rest;
            t.pending.(ci) <- false;
            let c = t.order.(ci) in
            incr evals;
            if eval_cell_changed t c then
              Array.iter (fun cj -> schedule t cj) t.fanout.(c.Netlist.out);
            drain ()
      in
      drain ()
    done;
    t.n_evals <- t.n_evals + !evals;
    Perf.incr ~by:!evals ctr_evals;
    let skipped = Array.length t.order - !evals in
    t.n_skipped <- t.n_skipped + skipped;
    Perf.incr ~by:skipped ctr_skipped
  end

let settle t =
  match t.mode with Full_eval -> settle_full t | Event_driven -> settle_event t

(* Write one word of a net; wakes combinational readers in event mode. *)
let drive_net_word t n w x =
  let idx = (n * t.nw) + w in
  let x = if t.has_faults then apply_fault t idx x else x in
  if t.values.(idx) <> x then begin
    record_epoch t n;
    t.values.(idx) <- x;
    (match t.mode with
    | Event_driven -> Array.iter (fun ci -> schedule t ci) t.fanout.(n)
    | Full_eval -> ());
    if emitting t then
      ev_net t n
        (if t.ev_ctx_stim then Obs.Event.Stimulus else Obs.Event.Net_change)
        t.ev_ctx
  end

let port_nets tbl name =
  match Hashtbl.find_opt tbl name with
  | Some nets -> nets
  | None -> raise Not_found

let check_lane t lane =
  if lane < 0 || lane >= t.lanes then
    invalid_arg
      (Printf.sprintf "Nl_wsim: lane %d out of range (%d lanes)" lane t.lanes)

let check_width name bv nets =
  if Bitvec.width bv <> Array.length nets then
    invalid_arg
      (Printf.sprintf "Nl_wsim.set_input %s: width %d expected %d" name
         (Bitvec.width bv) (Array.length nets))

(* Broadcast: every lane sees the same value. *)
let set_input t name bv =
  let nets = port_nets t.in_nets name in
  check_width name bv nets;
  Array.iteri
    (fun i n ->
      let word = if Bitvec.get bv i then -1 else 0 in
      for w = 0 to t.nw - 1 do
        drive_net_word t n w (word land t.word_mask.(w))
      done)
    nets

let set_input_int t name v =
  let nets = port_nets t.in_nets name in
  Array.iteri
    (fun i n ->
      let word = if (v asr min i 62) land 1 = 1 then -1 else 0 in
      for w = 0 to t.nw - 1 do
        drive_net_word t n w (word land t.word_mask.(w))
      done)
    nets

let set_input_lane t ~lane name bv =
  check_lane t lane;
  let nets = port_nets t.in_nets name in
  check_width name bv nets;
  let w = lane / lane_bits and bit = 1 lsl (lane mod lane_bits) in
  Array.iteri
    (fun i n ->
      let cur = t.values.((n * t.nw) + w) in
      let x = if Bitvec.get bv i then cur lor bit else cur land lnot bit in
      drive_net_word t n w x)
    nets

(* Per-lane stimulus for a whole port at once: [cols.(i)] holds bit [i]
   of every lane (width [lanes]) — the output of {!Bitvec.transpose}
   applied to per-lane port values. *)
let set_input_packed t name cols =
  let nets = port_nets t.in_nets name in
  if Array.length cols <> Array.length nets then
    invalid_arg
      (Printf.sprintf "Nl_wsim.set_input_packed %s: %d columns expected %d"
         name (Array.length cols) (Array.length nets));
  Array.iteri
    (fun i n ->
      let col = cols.(i) in
      if Bitvec.width col <> t.lanes then
        invalid_arg
          (Printf.sprintf
             "Nl_wsim.set_input_packed %s: column width %d expected %d lanes"
             name (Bitvec.width col) t.lanes);
      for w = 0 to t.nw - 1 do
        let lo = w * lane_bits in
        let hi = min t.lanes (lo + lane_bits) - 1 in
        let x = ref 0 in
        for b = hi downto lo do
          x := (!x lsl 1) lor (if Bitvec.get col b then 1 else 0)
        done;
        drive_net_word t n w !x
      done)
    nets

let read_lane_bit t n lane =
  t.values.((n * t.nw) + (lane / lane_bits)) lsr (lane mod lane_bits) land 1
  = 1

let get_output ?(lane = 0) t name =
  check_lane t lane;
  let nets = port_nets t.out_nets name in
  Bitvec.init (Array.length nets) (fun i -> read_lane_bit t nets.(i) lane)

let get_output_int ?lane t name = Bitvec.to_int (get_output ?lane t name)

let get_output_packed t name =
  let nets = port_nets t.out_nets name in
  Array.map (fun n -> Bitvec.init t.lanes (read_lane_bit t n)) nets

(* Lanes whose value on [port] differs from the golden lane 0 —
   computed on the packed words, one xor per word per bit of the port. *)
let diverging_lanes t name =
  let nets = port_nets t.out_nets name in
  let diff = Array.make t.nw 0 in
  Array.iter
    (fun n ->
      let base = n * t.nw in
      let expect = if t.values.(base) land 1 = 1 then -1 else 0 in
      for w = 0 to t.nw - 1 do
        diff.(w) <-
          diff.(w)
          lor ((t.values.(base + w) lxor expect) land t.word_mask.(w))
      done)
    nets;
  let acc = ref [] in
  for w = t.nw - 1 downto 0 do
    let d = diff.(w) in
    if d <> 0 then
      for b = lane_bits - 1 downto 0 do
        if (d lsr b) land 1 = 1 then acc := (w * lane_bits) + b :: !acc
      done
  done;
  !acc

(* Per-cycle toggle accounting for net [n] against its pre-edge words:
   the lane-0 counter always, per-lane coverage and activity sampling
   when enabled. *)
let account_toggles t n pre =
  let base = n * t.nw in
  if (pre 0 lxor t.values.(base)) land 1 <> 0 then
    t.toggles0.(n) <- t.toggles0.(n) + 1;
  if Array.length t.cover > 0 || Array.length t.activity > 0 then
    for w = 0 to t.nw - 1 do
      let now = t.values.(base + w) in
      let ch = (pre w lxor now) land t.word_mask.(w) in
      if ch <> 0 then
        for b = 0 to min lane_bits (t.lanes - (w * lane_bits)) - 1 do
          if (ch lsr b) land 1 = 1 then begin
            let lane = (w * lane_bits) + b in
            if Array.length t.cover > 0 then
              Cover.Toggle.record t.cover.(lane) n
                ~rising:((now lsr b) land 1 = 1);
            if Array.length t.activity > 0 then
              Cover.Activity.record t.activity.(lane) n
          end
        done
    done

(* Advance every lane's activity window once per clock cycle. *)
let end_activity_cycle t =
  if Array.length t.activity > 0 then
    Array.iter Cover.Activity.end_cycle t.activity

let sample_dffs t =
  let nw = t.nw in
  Array.iteri
    (fun i (c : Netlist.cell) ->
      Array.blit t.values (c.ins.(0) * nw) t.dff_buf (i * nw) nw)
    t.dffs

let step_full t =
  settle_full t;
  Array.blit t.values 0 t.snapshot 0 (Array.length t.values);
  sample_dffs t;
  let nw = t.nw in
  Array.iteri
    (fun i (c : Netlist.cell) ->
      let base = c.out * nw in
      for w = 0 to nw - 1 do
        let x = t.dff_buf.((i * nw) + w) in
        t.values.(base + w) <-
          (if t.has_faults then apply_fault t (base + w) x else x)
      done)
    t.dffs;
  t.n_evals <- t.n_evals + Array.length t.dffs;
  Perf.incr ~by:(Array.length t.dffs) ctr_evals;
  t.n_cycles <- t.n_cycles + 1;
  settle_full t;
  for n = 0 to Netlist.net_count t.nl - 1 do
    account_toggles t n (fun w -> t.snapshot.((n * nw) + w))
  done;
  end_activity_cycle t

let step_event t =
  settle_event t;
  t.in_epoch <- true;
  sample_dffs t;
  let nw = t.nw in
  if emitting t then begin
    (* Causes pre-sampled before any commit so every flip-flop is
       attributed to the change that moved its D input pre-edge, not to
       a sibling's fresh commit. *)
    let causes =
      Array.map (fun (c : Netlist.cell) -> t.ev_last.(c.ins.(0))) t.dffs
    in
    t.ev_ctx_stim <- false;
    Array.iteri
      (fun i (c : Netlist.cell) ->
        t.ev_ctx <- causes.(i);
        for w = 0 to nw - 1 do
          drive_net_word t c.out w t.dff_buf.((i * nw) + w)
        done)
      t.dffs;
    t.ev_ctx_stim <- true;
    t.ev_ctx <- Obs.Event.no_cause
  end
  else
    Array.iteri
      (fun i (c : Netlist.cell) ->
        for w = 0 to nw - 1 do
          drive_net_word t c.out w t.dff_buf.((i * nw) + w)
        done)
      t.dffs;
  t.n_evals <- t.n_evals + Array.length t.dffs;
  Perf.incr ~by:(Array.length t.dffs) ctr_evals;
  t.n_cycles <- t.n_cycles + 1;
  settle_event t;
  List.iter
    (fun n ->
      account_toggles t n (fun w -> t.epoch_pre.((n * nw) + w));
      t.epoch_seen.(n) <- false)
    t.epoch_touched;
  t.epoch_touched <- [];
  t.in_epoch <- false;
  end_activity_cycle t;
  if Array.length t.cover > 0 && emitting t then
    ignore
      (Obs.Event.emit ~cycle:t.n_cycles Obs.Event.Cover_epoch
         (Netlist.name t.nl))

let step t =
  match t.mode with Full_eval -> step_full t | Event_driven -> step_event t

let run t n =
  for _ = 1 to n do
    step t
  done

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

let inject_stuck_at t ~lane ~net ~value =
  check_lane t lane;
  if net < 0 || net >= Netlist.net_count t.nl then
    invalid_arg
      (Printf.sprintf "Nl_wsim.inject_stuck_at: net %d out of range" net);
  if not t.has_faults then begin
    t.f_mask <- Array.make (Array.length t.values) 0;
    t.f_val <- Array.make (Array.length t.values) 0;
    t.has_faults <- true
  end;
  let idx = (net * t.nw) + (lane / lane_bits) in
  let bit = 1 lsl (lane mod lane_bits) in
  t.f_mask.(idx) <- t.f_mask.(idx) lor bit;
  t.f_val.(idx) <-
    (if value then t.f_val.(idx) lor bit else t.f_val.(idx) land lnot bit);
  t.n_faults <- t.n_faults + 1;
  (* Apply immediately, so faults on input and flip-flop nets (which no
     combinational evaluation rewrites) take effect from the next
     settle; downstream logic is rescheduled. *)
  let x = apply_fault t idx t.values.(idx) in
  if t.values.(idx) <> x then begin
    t.values.(idx) <- x;
    match t.mode with
    | Event_driven -> Array.iter (fun ci -> schedule t ci) t.fanout.(net)
    | Full_eval -> ()
  end;
  if emitting t then begin
    let seq =
      Obs.Event.emit ~cycle:t.n_cycles ~lane ~value:(Bool.to_int value)
        ~cause:t.ev_last.(net) Obs.Event.Fault t.ev_labels.(net)
    in
    t.ev_last.(net) <- seq
  end

let faults t = t.n_faults

(* ------------------------------------------------------------------ *)
(* Coverage                                                            *)

let enable_toggle_cover t =
  if Array.length t.cover = 0 then begin
    let names = Nl_sim.Sched.net_labels t.nl in
    t.cover <- Array.init t.lanes (fun _ -> Cover.Toggle.create ~names)
  end

let lane_cover t lane =
  check_lane t lane;
  if Array.length t.cover = 0 then None else Some t.cover.(lane)

let enable_power_sampler ?window t =
  if Array.length t.activity = 0 then begin
    let slots = Netlist.net_count t.nl in
    t.activity <-
      Array.init t.lanes (fun _ -> Cover.Activity.create ?window ~slots ())
  end

let lane_activity t lane =
  check_lane t lane;
  if Array.length t.activity = 0 then None else Some t.activity.(lane)

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)

type checkpoint = {
  ck_values : int array;
  ck_pending : bool array;
  ck_buckets : int list array;
  ck_need_full : bool;
  ck_cycles : int;
}

let checkpoint t =
  if emitting t then
    ignore
      (Obs.Event.emit ~cycle:t.n_cycles Obs.Event.Checkpoint
         (Netlist.name t.nl));
  {
    ck_values = Array.copy t.values;
    ck_pending = Array.copy t.pending;
    ck_buckets = Array.copy t.buckets;
    ck_need_full = t.need_full;
    ck_cycles = t.n_cycles;
  }

let restore t ck =
  Array.blit ck.ck_values 0 t.values 0 (Array.length t.values);
  Array.blit ck.ck_pending 0 t.pending 0 (Array.length t.pending);
  Array.iteri (fun i b -> t.buckets.(i) <- b) ck.ck_buckets;
  t.need_full <- ck.ck_need_full;
  t.n_cycles <- ck.ck_cycles;
  (* Mid-epoch transients never survive a step, so a rewind simply
     clears them. *)
  List.iter (fun n -> t.epoch_seen.(n) <- false) t.epoch_touched;
  t.epoch_touched <- [];
  t.in_epoch <- false;
  (* Cause links must not leap across the rewind: events emitted after
     the restore start a fresh causal history. *)
  if Array.length t.ev_last > 0 then
    Array.fill t.ev_last 0 (Array.length t.ev_last) Obs.Event.no_cause

let checkpoint_cycle ck = ck.ck_cycles

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let lanes t = t.lanes
let netlist t = t.nl
let cycles t = t.n_cycles
let gate_evals t = t.n_evals
let cells_skipped t = t.n_skipped
let comb_cells t = Array.length t.order
let dff_cells t = Array.length t.dffs
let full_settles t = t.n_full_settles
let net_toggles t n = t.toggles0.(n)
let toggle_total t = Array.fold_left ( + ) 0 t.toggles0
