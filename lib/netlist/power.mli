(** Activity-based power estimation.

    Dynamic power follows [P = α·C·V²·f]: every cell output carries a
    load proportional to its area; its switching activity [α] comes
    from the toggle counts a {!Nl_sim} run collected; voltage and
    frequency are parameters.  Leakage is a fixed per-area term.  The
    absolute numbers are model units; like area and timing, only ratios
    between designs are meaningful. *)

type report = {
  dynamic_mw : float;
  leakage_mw : float;
  total_mw : float;
  clock_mw : float;  (** flip-flop clock-pin contribution *)
  avg_activity : float;  (** mean toggles per net per cycle *)
  cycles : int;
}

val estimate :
  ?freq_mhz:float -> ?vdd:float -> Netlist.t -> Nl_sim.t -> report
(** The simulation must have run some cycles of representative
    stimulus.  Defaults: 66 MHz, 1.8 V. *)

val pp_report : Format.formatter -> report -> unit

type module_row = {
  path : string;  (** instance path ({!Netlist.region_of}); [""] = top *)
  m_dynamic_mw : float;  (** incl. the module's flip-flop clock pins *)
  m_toggles : int;
}

val by_module :
  ?freq_mhz:float -> ?vdd:float -> Netlist.t -> Nl_sim.t -> module_row list
(** Per-module dynamic-power breakdown keyed on the netlist's region
    annotations, sorted by path; same model and defaults as
    {!estimate}. *)
