(** Post-synthesis netlist optimization.

    Construction-time folding (constant propagation, structural hashing,
    mux simplification) already runs inside {!Netlist}; this pass adds a
    global sweep: only cells transitively needed by a primary output are
    kept, and the survivors are re-built through the folding
    constructors, which re-applies local rewrites across the whole
    netlist. *)

val optimize : Netlist.t -> Netlist.t
(** Dead-cell elimination plus re-folding. *)

val live_cells : Netlist.t -> int
(** Number of cells reachable from the primary outputs. *)
