type report = {
  total : float;
  combinational : float;
  sequential : float;
  n_cells : int;
  n_ffs : int;
  by_kind : (Cell.kind * int * float) list;
}

let analyze nl =
  let by_kind =
    List.map
      (fun (kind, count) -> (kind, count, float_of_int count *. Cell.area kind))
      (Netlist.stats nl)
  in
  let total = List.fold_left (fun acc (_, _, a) -> acc +. a) 0.0 by_kind in
  let sequential =
    List.fold_left
      (fun acc (k, _, a) -> if k = Cell.Dff then acc +. a else acc)
      0.0 by_kind
  in
  let n_ffs =
    List.fold_left
      (fun acc (k, n, _) -> if k = Cell.Dff then acc + n else acc)
      0 by_kind
  in
  {
    total;
    combinational = total -. sequential;
    sequential;
    n_cells = Netlist.cell_count nl;
    n_ffs;
    by_kind;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "area %.1f GE (%.1f comb + %.1f seq), %d cells, %d flip-flops" r.total
    r.combinational r.sequential r.n_cells r.n_ffs

type module_row = {
  path : string;
  m_cells : int;
  m_ffs : int;
  m_area : float;
}

let by_module nl =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (c : Netlist.cell) ->
      let r = Netlist.region_of nl c.out in
      let cells, ffs, area =
        match Hashtbl.find_opt tbl r with
        | Some x -> x
        | None -> (0, 0, 0.0)
      in
      Hashtbl.replace tbl r
        ( cells + 1,
          (if c.kind = Cell.Dff then ffs + 1 else ffs),
          area +. Cell.area c.kind ))
    (Netlist.cells nl);
  List.sort compare
    (Hashtbl.fold
       (fun path (m_cells, m_ffs, m_area) acc ->
         { path; m_cells; m_ffs; m_area } :: acc)
       tbl [])
