(** Word-parallel gate-level simulator: [lanes] independent two-valued
    simulations advance together, packed bitwise into native ints (one
    word op per gate per {!Sys.int_size} lanes).  Flip-flops power up
    at 0 in every lane.

    Lane 0 is bit-identical to the scalar {!Nl_sim} under the same
    broadcast stimulus — same output values, same per-net toggle counts
    ({!net_toggles}), cycle for cycle, in both scheduling modes.  The
    extra lanes carry independent stimulus streams ({!set_input_lane},
    {!set_input_packed}), per-lane stuck-at faults
    ({!inject_stuck_at}) for lane-parallel fault campaigns, and
    per-lane toggle coverage so one run yields one {!Cover.Toggle.t}
    per seed.

    Scheduling (topological order, levels, fanout, dirty buckets) is
    shared with {!Nl_sim} through {!Nl_sim.Sched}; in event-driven mode
    a cell re-evaluates when {e any} lane of an input moved. *)

type t

type mode =
  | Event_driven  (** dirty-set propagation (default) *)
  | Full_eval  (** every combinational cell, every settle (reference) *)

val lane_bits : int
(** Lanes packed per machine word ([Sys.int_size]: 63 on 64-bit). *)

val create : ?mode:mode -> lanes:int -> Netlist.t -> t
(** Checks and levelizes the netlist; raises
    {!Nl_sim.Combinational_loop} on a combinational cycle and
    [Invalid_argument] when [lanes < 1]. *)

val lanes : t -> int

val netlist : t -> Netlist.t
(** The simulated netlist. *)

(** {1 Stimulus}

    All drive calls follow {!Nl_sim} semantics: in event-driven mode a
    changed net wakes its readers, in full-eval mode the value is just
    written.  Lane arguments are validated against [lanes]. *)

val set_input : t -> string -> Bitvec.t -> unit
(** Broadcast: every lane sees the same port value. *)

val set_input_int : t -> string -> int -> unit

val set_input_lane : t -> lane:int -> string -> Bitvec.t -> unit
(** Drive one lane only; other lanes keep their values. *)

val set_input_packed : t -> string -> Bitvec.t array -> unit
(** Distinct per-lane stimulus in one call: element [i] of the array
    holds bit [i] of the port for every lane (width [lanes]) — i.e.
    [set_input_packed t p (Bitvec.transpose per_lane_values)]. *)

(** {1 Observation} *)

val get_output : ?lane:int -> t -> string -> Bitvec.t
(** The port value seen by [lane] (default 0, the golden lane). *)

val get_output_int : ?lane:int -> t -> string -> int

val get_output_packed : t -> string -> Bitvec.t array
(** Inverse of {!set_input_packed}: bit [i] of the port across all
    lanes, per port bit ([Bitvec.transpose] recovers per-lane values). *)

val diverging_lanes : t -> string -> int list
(** Lanes whose current value of output [port] differs from lane 0, in
    ascending order — the per-cycle detection primitive of the
    lane-parallel fault campaign ([Equiv.fault_campaign]).  Computed on
    the packed words (one xor per word per port bit), never unpacking
    lanes. *)

(** {1 Execution} *)

val settle : t -> unit
(** Propagate combinational logic only. *)

val step : t -> unit
(** One clock cycle in every lane: settle, commit flip-flops, settle. *)

val run : t -> int -> unit

(** {1 Fault injection}

    Per-lane stuck-at forces: any value written to [net] in [lane] is
    overridden, which models a stuck-at fault at the driver output.
    Lane 0 is conventionally kept fault-free as the golden reference,
    but nothing enforces that. *)

val inject_stuck_at : t -> lane:int -> net:Netlist.net -> value:bool -> unit
(** Takes effect immediately (also on input and flip-flop nets) and
    persists for the rest of the run. *)

val faults : t -> int
(** Number of injected faults. *)

(** {1 Counters} *)

val cycles : t -> int

val gate_evals : t -> int
(** Cell evaluations (each one advances all lanes). *)

val cells_skipped : t -> int
val comb_cells : t -> int
val dff_cells : t -> int
val full_settles : t -> int

val net_toggles : t -> Netlist.net -> int
(** Lane-0 transitions per net — comparable 1:1 with
    {!Nl_sim.net_toggles} under broadcast stimulus. *)

val toggle_total : t -> int

(** {1 Per-lane toggle coverage}

    One collector per lane, so a 64-lane run with per-lane seeds
    produces 64 seeds' worth of coverage in one simulation; merge them
    via [Cover.Db.merge] (or sum the per-lane entries) for the
    multi-seed union. *)

val enable_toggle_cover : t -> unit
(** Allocates one {!Cover.Toggle.t} per lane (names as in
    {!Nl_sim.Sched.net_labels}).  Idempotent. *)

val lane_cover : t -> int -> Cover.Toggle.t option

(** Allocate one windowed switching-activity sampler per lane (see
    {!Cover.Activity}); idempotent.  Lane 0 samples bit-identically to
    the scalar {!Nl_sim} sampler under the same stimulus. *)
val enable_power_sampler : ?window:int -> t -> unit

(** The sampler of one lane, or [None] before {!enable_power_sampler}. *)
val lane_activity : t -> int -> Cover.Activity.t option
(** The given lane's collector; [None] before {!enable_toggle_cover}. *)

(** {1 Causal events and checkpointing} *)

val enable_events : t -> unit
(** Start emitting causal events into the global [Obs.Event] log
    (enabling it if needed).  Events describe the packed simulation as
    a whole: net changes carry lane [-1] (aggregate over all lanes) and
    the lane-0 bit as their value, caused by the latest change among
    the evaluated cell's input nets; stimulus drives are [Stimulus];
    {!inject_stuck_at} additionally records a [Fault] event on the
    forced net carrying the real lane number.  Fully supported in
    [Event_driven] mode; [Full_eval] records no change causality.
    Costs one branch per changed net while off. *)

type checkpoint

val checkpoint : t -> checkpoint
(** Deep copy of the packed net values, scheduler state and cycle
    count.  Fault forces, toggle counters and coverage are not
    captured — a restore keeps whatever faults are currently armed. *)

val restore : t -> checkpoint -> unit
(** Rewind to a checkpoint taken on the same simulator; re-running the
    original stimulus afterwards is bit-identical in every lane. *)

val checkpoint_cycle : checkpoint -> int
