type net = int

type cell = { kind : Cell.kind; ins : net array; out : net }

type t = {
  nl_name : string;
  fold : bool;
  mutable next_net : int;
  mutable cell_list : cell list;  (* reverse creation order *)
  mutable n_cells : int;
  cse : (string, net) Hashtbl.t;
  drivers : (net, cell) Hashtbl.t;
  const_val : (net, bool) Hashtbl.t;
  mutable ins : (string * net array) list;
  mutable outs : (string * net array) list;
  pending : (net, unit) Hashtbl.t;
  mutable c0 : net option;
  mutable c1 : net option;
  (* Hierarchy annotations: which instance path owns each driven net
     ("" = the top module, "u_x.u_y" = nested instances) and optional
     human-readable name hints ("count[3]").  Both are advisory — no
     structural code consults them — but they survive the rewriting
     passes so reports, coverage and fault sites can speak in design
     terms instead of raw net ids. *)
  regions : (net, string) Hashtbl.t;
  hints : (net, string) Hashtbl.t;
  mutable cur_region : string;
}

let create ?(fold = true) ~name () =
  {
    nl_name = name;
    fold;
    next_net = 0;
    cell_list = [];
    n_cells = 0;
    cse = Hashtbl.create 1024;
    drivers = Hashtbl.create 1024;
    const_val = Hashtbl.create 64;
    ins = [];
    outs = [];
    pending = Hashtbl.create 16;
    c0 = None;
    c1 = None;
    regions = Hashtbl.create 64;
    hints = Hashtbl.create 64;
    cur_region = "";
  }

let name t = t.nl_name
let folding t = t.fold

let new_net t =
  let n = t.next_net in
  t.next_net <- n + 1;
  n

let record_cell t kind ins out =
  let c = { kind; ins; out } in
  t.cell_list <- c :: t.cell_list;
  t.n_cells <- t.n_cells + 1;
  Hashtbl.replace t.drivers out c;
  if t.cur_region <> "" && not (Hashtbl.mem t.regions out) then
    Hashtbl.replace t.regions out t.cur_region;
  out

let cse_key kind ins =
  Cell.name kind ^ ":" ^ String.concat "," (List.map string_of_int ins)

(* Create a cell, going through structural hashing when folding is on.
   Commutative gates normalize their operand order first. *)
let mk_cell t kind ins =
  let ins =
    if t.fold then
      match kind with
      | Cell.And2 | Or2 | Xor2 | Nand2 | Nor2 ->
          let sorted = List.sort compare ins in
          sorted
      | _ -> ins
    else ins
  in
  if t.fold then begin
    let key = cse_key kind ins in
    match Hashtbl.find_opt t.cse key with
    | Some n -> n
    | None ->
        let out = new_net t in
        ignore (record_cell t kind (Array.of_list ins) out);
        Hashtbl.replace t.cse key out;
        out
  end
  else begin
    let out = new_net t in
    record_cell t kind (Array.of_list ins) out
  end

let const0 t =
  match t.c0 with
  | Some n -> n
  | None ->
      let n = mk_cell t Cell.Const0 [] in
      Hashtbl.replace t.const_val n false;
      t.c0 <- Some n;
      n

let const1 t =
  match t.c1 with
  | Some n -> n
  | None ->
      let n = mk_cell t Cell.Const1 [] in
      Hashtbl.replace t.const_val n true;
      t.c1 <- Some n;
      n

let const_of t n = if t.fold then Hashtbl.find_opt t.const_val n else None
let const_net t b = if b then const1 t else const0 t

let not_ t a =
  match const_of t a with
  | Some b -> const_net t (not b)
  | None -> (
      (* Cancel double inverters. *)
      match Hashtbl.find_opt t.drivers a with
      | Some { kind = Cell.Not; ins; _ } when t.fold -> ins.(0)
      | _ -> mk_cell t Cell.Not [ a ])

let and2 t a b =
  match (const_of t a, const_of t b) with
  | Some false, _ | _, Some false -> const0 t
  | Some true, _ -> b
  | _, Some true -> a
  | None, None -> if t.fold && a = b then a else mk_cell t Cell.And2 [ a; b ]

let or2 t a b =
  match (const_of t a, const_of t b) with
  | Some true, _ | _, Some true -> const1 t
  | Some false, _ -> b
  | _, Some false -> a
  | None, None -> if t.fold && a = b then a else mk_cell t Cell.Or2 [ a; b ]

let xor2 t a b =
  match (const_of t a, const_of t b) with
  | Some x, Some y -> const_net t (x <> y)
  | Some false, _ -> b
  | _, Some false -> a
  | Some true, _ -> not_ t b
  | _, Some true -> not_ t a
  | None, None ->
      if t.fold && a = b then const0 t else mk_cell t Cell.Xor2 [ a; b ]

let nand2 t a b =
  match (const_of t a, const_of t b) with
  | Some false, _ | _, Some false -> const1 t
  | Some true, _ -> not_ t b
  | _, Some true -> not_ t a
  | None, None ->
      if t.fold && a = b then not_ t a else mk_cell t Cell.Nand2 [ a; b ]

let nor2 t a b =
  match (const_of t a, const_of t b) with
  | Some true, _ | _, Some true -> const0 t
  | Some false, _ -> not_ t b
  | _, Some false -> not_ t a
  | None, None ->
      if t.fold && a = b then not_ t a else mk_cell t Cell.Nor2 [ a; b ]

let mux2 t ~sel a b =
  match const_of t sel with
  | Some true -> a
  | Some false -> b
  | None -> (
      if t.fold && a = b then a
      else
        match (const_of t a, const_of t b) with
        | Some true, Some false -> sel
        | Some false, Some true -> not_ t sel
        | Some true, None -> or2 t sel b
        | Some false, None -> and2 t (not_ t sel) b
        | None, Some false -> and2 t sel a
        | None, Some true -> or2 t (not_ t sel) a
        | Some _, Some _ -> assert false (* covered above *)
        | None, None -> mk_cell t Cell.Mux2 [ sel; a; b ])

let dff t ~d =
  let out = new_net t in
  record_cell t Cell.Dff [| d |] out

let dff_deferred t =
  let out = new_net t in
  let q = record_cell t Cell.Dff [| -1 |] out in
  Hashtbl.replace t.pending q ();
  q

let connect_dff t ~q ~d =
  match Hashtbl.find_opt t.drivers q with
  | Some ({ kind = Cell.Dff; ins; _ } as _c) when Hashtbl.mem t.pending q ->
      ins.(0) <- d;
      Hashtbl.remove t.pending q
  | _ -> invalid_arg "Netlist.connect_dff: not a pending flip-flop"

let add_input t name width =
  let nets = Array.init width (fun _ -> new_net t) in
  t.ins <- (name, nets) :: t.ins;
  nets

let add_output t name nets = t.outs <- (name, nets) :: t.outs
let inputs t = List.rev t.ins
let outputs t = List.rev t.outs

let constant t bv =
  Array.init (Bitvec.width bv) (fun i -> const_net t (Bitvec.get bv i))

let cells t = List.rev t.cell_list
let cell_count t = t.n_cells
let net_count t = t.next_net
let driver t n = Hashtbl.find_opt t.drivers n

(* Hierarchy annotations. *)

let set_current_region t path = t.cur_region <- path
let current_region t = t.cur_region

let region_of t n =
  match Hashtbl.find_opt t.regions n with Some r -> r | None -> ""

let set_region t n path =
  if path = "" then Hashtbl.remove t.regions n
  else Hashtbl.replace t.regions n path

let hint_of t n = Hashtbl.find_opt t.hints n

(* First hint wins: structural hashing can merge nets across instances,
   and the first name a net got is the one reports should keep using. *)
let set_hint t n name =
  if not (Hashtbl.mem t.hints n) then Hashtbl.replace t.hints n name

let copy_meta ~src ~dst src_net dst_net =
  (match Hashtbl.find_opt src.regions src_net with
  | Some r when not (Hashtbl.mem dst.regions dst_net) ->
      Hashtbl.replace dst.regions dst_net r
  | _ -> ());
  match Hashtbl.find_opt src.hints src_net with
  | Some h -> set_hint dst dst_net h
  | None -> ()

let describe_net t n =
  let base =
    match hint_of t n with Some h -> h | None -> Printf.sprintf "n%d" n
  in
  match region_of t n with "" -> base | r -> r ^ "." ^ base

let region_table_size t = Hashtbl.length t.regions
let hint_table_size t = Hashtbl.length t.hints

let region_names t =
  let seen = Hashtbl.create 16 in
  Hashtbl.iter (fun _ r -> Hashtbl.replace seen r ()) t.regions;
  List.sort compare (Hashtbl.fold (fun r () acc -> r :: acc) seen [])

let check t =
  if Hashtbl.length t.pending > 0 then
    failwith
      (Printf.sprintf "Netlist.check %s: %d unconnected flip-flops" t.nl_name
         (Hashtbl.length t.pending));
  let input_nets = Hashtbl.create 64 in
  List.iter
    (fun (_, nets) ->
      Array.iter (fun n -> Hashtbl.replace input_nets n ()) nets)
    t.ins;
  List.iter
    (fun (c : cell) ->
      Array.iter
        (fun n ->
          if n < 0 || n >= t.next_net then
            failwith
              (Printf.sprintf "Netlist.check %s: dangling net %d" t.nl_name n);
          if (not (Hashtbl.mem t.drivers n)) && not (Hashtbl.mem input_nets n)
          then
            failwith
              (Printf.sprintf "Netlist.check %s: net %d has no driver"
                 t.nl_name n))
        c.ins)
    t.cell_list;
  List.iter
    (fun (out_name, nets) ->
      Array.iter
        (fun n ->
          if (not (Hashtbl.mem t.drivers n)) && not (Hashtbl.mem input_nets n)
          then
            failwith
              (Printf.sprintf "Netlist.check %s: output %s undriven" t.nl_name
                 out_name))
        nets)
    t.outs

let stats t =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let k = c.kind in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    t.cell_list;
  List.filter_map
    (fun k ->
      match Hashtbl.find_opt counts k with
      | Some n -> Some (k, n)
      | None -> None)
    Cell.all

let emit_verilog t =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let w n = Printf.sprintf "n%d" n in
  let ports =
    [ "clk" ]
    @ List.map fst (inputs t)
    @ List.map fst (outputs t)
  in
  p "module %s(%s);\n" t.nl_name (String.concat ", " ports);
  p "  input clk;\n";
  List.iter
    (fun (n, nets) ->
      p "  input [%d:0] %s;\n" (Array.length nets - 1) n)
    (inputs t);
  List.iter
    (fun (n, nets) ->
      p "  output [%d:0] %s;\n" (Array.length nets - 1) n)
    (outputs t);
  List.iter
    (fun (n, nets) ->
      Array.iteri (fun i net -> p "  wire %s = %s[%d];\n" (w net) n i) nets)
    (inputs t);
  List.iter
    (fun c ->
      match c.kind with
      | Cell.Const0 -> p "  wire %s = 1'b0;\n" (w c.out)
      | Const1 -> p "  wire %s = 1'b1;\n" (w c.out)
      | Buf -> p "  wire %s = %s;\n" (w c.out) (w c.ins.(0))
      | Not -> p "  wire %s = ~%s;\n" (w c.out) (w c.ins.(0))
      | And2 -> p "  wire %s = %s & %s;\n" (w c.out) (w c.ins.(0)) (w c.ins.(1))
      | Or2 -> p "  wire %s = %s | %s;\n" (w c.out) (w c.ins.(0)) (w c.ins.(1))
      | Xor2 -> p "  wire %s = %s ^ %s;\n" (w c.out) (w c.ins.(0)) (w c.ins.(1))
      | Nand2 ->
          p "  wire %s = ~(%s & %s);\n" (w c.out) (w c.ins.(0)) (w c.ins.(1))
      | Nor2 ->
          p "  wire %s = ~(%s | %s);\n" (w c.out) (w c.ins.(0)) (w c.ins.(1))
      | Mux2 ->
          p "  wire %s = %s ? %s : %s;\n" (w c.out) (w c.ins.(0)) (w c.ins.(1))
            (w c.ins.(2))
      | Dff ->
          p "  reg %s;\n" (w c.out);
          p "  always @(posedge clk) %s <= %s;\n" (w c.out) (w c.ins.(0)))
    (cells t);
  List.iter
    (fun (n, nets) ->
      p "  assign %s = {%s};\n" n
        (String.concat ", "
           (List.rev_map w (Array.to_list nets))))
    (outputs t);
  p "endmodule\n";
  Buffer.contents buf
