(** Synthesis proper: lowering a (hierarchical) IR module to a gate
    netlist.

    The design is flattened, then each process body is symbolically
    executed at bit level: every IR variable is bound to a vector of
    nets, registers become flip-flops whose next-state nets come from
    executing the synchronous processes, branches become multiplexer
    merges, memories become flip-flop banks with decoded write enables
    and read multiplexer trees.

    Arithmetic mapping: ripple-carry adders/subtractors/comparators,
    shift-and-add multipliers, barrel shifters. *)

exception Lower_error of string

val lower : ?fold:bool -> Ir.module_def -> Netlist.t
(** [fold] is passed to the netlist constructor (constant folding and
    structural hashing on construction). *)

val ceil_log2 : int -> int
(** Smallest [k] with [2^k >= n]; [ceil_log2 1 = 0]. *)
