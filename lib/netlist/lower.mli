(** Synthesis proper: lowering a (hierarchical) IR module to a gate
    netlist.

    Hierarchy is preserved rather than flattened eagerly: each module
    is lowered {e once} into a module-local netlist segment (memoized
    on {!Ir.structural_hash}) and spliced into its parent per instance,
    with every spliced net tagged with its owning instance path as a
    {!Netlist.region_of} region and design-level {!Netlist.hint_of}
    name hints.  Child input ports splice as placeholder nets that are
    substituted with the real parent drivers once the parent's own
    lowering is complete, so instance order and combinational glue
    direction never matter.

    Within a module, each process body is symbolically executed at bit
    level: every IR variable is bound to a vector of nets, registers
    become flip-flops whose next-state nets come from executing the
    synchronous processes, branches become multiplexer merges, memories
    become flip-flop banks with decoded write enables and read
    multiplexer trees.

    Arithmetic mapping: ripple-carry adders/subtractors/comparators,
    shift-and-add multipliers, barrel shifters. *)

exception Lower_error of string

val lower : ?fold:bool -> Ir.module_def -> Netlist.t
(** [fold] (default [true]) is passed to the netlist constructor
    (constant folding and structural hashing on construction).

    Results are memoized on [(structural hash, fold)]: an unchanged
    module lowers once and every later call — another instance of the
    same child, a repeated flow run, the other flow of a pair sharing
    leaf IP — returns the same (read-only) netlist. *)

val cache_stats : unit -> int * int
(** Cumulative [(hits, misses)] of the lowering memo-cache.  Diff
    around a phase to attribute movement to it (what [Synth.Flow]
    reports as [flow.lower.cache_hits]). *)

val clear_cache : unit -> unit
(** Drop all memoized segments (the hit/miss counters keep counting).
    Used by tests comparing cold against memoized lowering. *)

val ceil_log2 : int -> int
(** Smallest [k] with [2^k >= n]; [ceil_log2 1 = 0]. *)
