(** Activity profiles: top-K rankings of named counts.

    The simulators expose raw activity ((name, count) lists — per-net
    toggles, per-cell evaluations, per-process runs/wakes); this module
    ranks them, renders the "hot nets / hot processes" tables and
    serializes them for the run report. *)

type entry = { label : string; count : int; share : float }
(** [share] is the fraction of the total activity (over the full input
    list, not just the retained top-K). *)

val top : ?k:int -> (string * int) list -> entry list
(** Top [k] (default 10) by descending count, ties by name. *)

val by_module : (string * int) list -> (string * int) list
(** Aggregate hierarchical names by their first ['.']-separated
    component, attributing activity per module instance. *)

val table : title:string -> ?unit_name:string -> entry list -> string
(** Aligned text rendering. *)

val to_json : entry list -> Json.t
