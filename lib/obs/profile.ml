type entry = { label : string; count : int; share : float }

let top ?(k = 10) pairs =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 pairs in
  let sorted =
    List.sort
      (fun (la, ca) (lb, cb) ->
        match compare cb ca with 0 -> compare la lb | c -> c)
      pairs
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  List.map
    (fun (label, count) ->
      {
        label;
        count;
        share = (if total = 0 then 0.0 else float_of_int count /. float_of_int total);
      })
    (take k sorted)

(* Aggregate hierarchical names ("instance.proc", "u_histo.bin3") by
   their first path component, attributing activity to the module
   instance that owns it. *)
let by_module pairs =
  let tally = Hashtbl.create 16 in
  List.iter
    (fun (name, count) ->
      let key =
        (* A leading '.' would make the first component "" — treat such
           names (and names with no separator at all, e.g. top-level
           nets) as their own module. *)
        match String.index_opt name '.' with
        | Some i when i > 0 -> String.sub name 0 i
        | Some _ | None -> name
      in
      let prev = Option.value ~default:0 (Hashtbl.find_opt tally key) in
      Hashtbl.replace tally key (prev + count))
    pairs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let table ~title ?(unit_name = "count") entries =
  let buf = Buffer.create 256 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "  %s\n" title;
  p "  %-40s %12s %7s\n" "name" unit_name "share";
  List.iter
    (fun e -> p "  %-40s %12d %6.1f%%\n" e.label e.count (100.0 *. e.share))
    entries;
  Buffer.contents buf

let to_json entries =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           [
             ("name", Json.String e.label);
             ("count", Json.Int e.count);
             ("share", Json.Float e.share);
           ])
       entries)
