(** Hierarchical span tracer.

    A span is a named wall-clock interval with string attributes;
    spans opened while another span is running nest under it, giving a
    tree per top-level operation.  The tracer is process-global and
    disabled by default: hot paths guard instrumentation on
    {!enabled}, so tracing costs one branch per candidate span when
    off.  Timing uses [Unix.gettimeofday] relative to the trace epoch
    (set at {!enable}/{!reset}).

    The tracer is {b domain-safe}: each domain nests spans on its own
    open-span stack (domain-local storage), so a campaign shard on a
    [Par] pool domain grows its own root subtree — tagged with that
    domain's id, which the Chrome exporter emits as the event [tid] so
    parallel shards render as separate tracks.  The shared root list
    is mutex-protected.  {!reset} and the exporters expect the worker
    domains to be quiescent (between [Par] batches): {!reset} clears
    the shared roots and the calling domain's stack only. *)

type span

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded spans and restart the trace epoch. *)

val with_ : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f] inside a new span.  When the tracer is
    disabled this is exactly [f ()].  If [f] raises, the span is closed
    with an ["exception"] attribute and the exception re-raised. *)

val add_attr : string -> string -> unit
(** Attach an attribute to the innermost open span (no-op when the
    tracer is disabled or no span is open). *)

val add_attr_int : string -> int -> unit

val span_count : unit -> int
(** Total spans recorded since the last {!reset}. *)

(** {1 Inspection} *)

val root_spans : unit -> span list
val name : span -> string
val children : span -> span list
val attrs : span -> (string * string) list
val duration_ms : span -> float

val find : name:string -> span -> span option
(** Depth-first search by name in one subtree. *)

val find_root : name:string -> span option
(** Depth-first search by name across all recorded roots. *)

(** {1 Exporters} *)

val to_chrome_events : unit -> Json.t
(** Chrome trace-event array (one complete ["ph":"X"] event per span),
    loadable in Perfetto or [chrome://tracing]. *)

val chrome_json : unit -> string

val save_chrome : string -> unit

val to_json : unit -> Json.t
(** Nested span tree (name, start/duration in ms, attrs, children) as
    embedded in the run report. *)

val to_collapsed : unit -> string
(** Collapsed-stack (flamegraph) format: one ["root;child;leaf <us>"]
    line per distinct span-name stack, counting the stack's {e self}
    time in microseconds, folded across repeats — feed to any
    flamegraph renderer. *)

val save_collapsed : string -> unit
