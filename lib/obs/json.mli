(** Minimal JSON value type, printer and parser.

    The observability layer emits machine-readable artifacts (run
    reports, Chrome traces, pass tables) and the test-suite checks that
    they round-trip; neither side wants an external dependency, so this
    module implements exactly the JSON subset those artifacts use.
    Non-finite floats print as [null] (JSON has no inf/nan). *)

exception Parse_error of string

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string

val of_string : string -> t
(** Raises {!Parse_error} with an offset on malformed input. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other constructors. *)

val to_list : t -> t list option

val string_value : t -> string option

val number_value : t -> float option
(** Numeric value of [Int] or [Float]. *)

val save : t -> string -> unit
(** Pretty-print to a file with a trailing newline. *)
