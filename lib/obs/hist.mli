(** Registered histograms with power-of-two buckets.

    Complements the flat [Metrics.Perf] counters: a counter answers
    "how many", a histogram answers "how were they distributed" —
    settle iterations per step, dirty-set sizes, queue depths, per-pass
    deltas.  Histograms register by name on first use, like Perf
    counters.  Recording is disabled by default ({!enable} switches it
    on); an [observe] while disabled is one branch.

    Histograms are {b domain-safe}: each domain accumulates into its
    own shadow of a histogram (domain-local storage), so [observe]
    stays lock-free on the hot path even from parallel campaign
    shards, and every read-side accessor ({!count}, {!percentile},
    {!to_json}, …) merges the per-domain shadows into one aggregate.
    {!reset}/{!reset_all} and exact reads expect the worker domains to
    be quiescent (between [Par] batches). *)

type t

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val histogram : string -> t
(** The histogram registered under this name, created empty on first
    use. *)

val observe : t -> float -> unit
val observe_int : t -> int -> unit

val name : t -> string
val count : t -> int
val sum : t -> float
val mean : t -> float
val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile h q] for [q] in [0..100] (clamped): walks the buckets
    to the one containing the q-th observation and interpolates
    linearly within its bounds, clamped to the observed min/max.  The
    result is exact when all observations in the selected bucket share
    one value (e.g. [q = 0] is the min, [q = 100] the max); otherwise
    it is the bucket-resolution estimate.  0.0 on an empty histogram. *)

val reset : t -> unit
val reset_all : unit -> unit

val all : unit -> t list
(** Every registered histogram, sorted by name. *)

val to_json : t -> Json.t
(** Count/sum/mean/min/max plus the non-empty buckets (upper bound and
    count each). *)

val all_to_json : unit -> Json.t
