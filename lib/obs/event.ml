(* Bounded causal event log.  One process-global ring buffer of
   structured simulation events; every emission returns a stable,
   monotonically increasing sequence number that other emissions store
   as their *cause*.  Because cause references are sequence numbers
   (not slot indices), wraparound can only make a cause unresolvable
   ([find] returns [None] once the referenced event has been evicted)
   — it can never silently point at the wrong event.

   Disabled by default, same discipline as [Span]: hot paths guard
   every emission on [enabled ()], so a run without the event log pays
   one branch per candidate event. *)

let schema_version = "osss.event-log/v1"

type kind =
  | Stimulus  (* primary input driven from outside *)
  | Net_change  (* gate-level net moved *)
  | Var_change  (* RTL variable committed a new value *)
  | Process_wake
  | Process_run
  | Delta_open
  | Delta_close
  | Fault  (* fault injected / corrupted read *)
  | Cover_epoch
  | Checkpoint

type t = {
  seq : int;
  kind : kind;
  subject : string;
  time : int;  (* kernel picoseconds; 0 for cycle-based backends *)
  cycle : int;
  lane : int;  (* -1: lane-less or aggregate over all lanes *)
  value : int;  (* low bits of the new value *)
  cause : int;  (* seq of the causing event, or [no_cause] *)
}

let no_cause = -1

let kind_name = function
  | Stimulus -> "stimulus"
  | Net_change -> "net-change"
  | Var_change -> "var-change"
  | Process_wake -> "process-wake"
  | Process_run -> "process-run"
  | Delta_open -> "delta-open"
  | Delta_close -> "delta-close"
  | Fault -> "fault"
  | Cover_epoch -> "cover-epoch"
  | Checkpoint -> "checkpoint"

let kind_of_name = function
  | "stimulus" -> Some Stimulus
  | "net-change" -> Some Net_change
  | "var-change" -> Some Var_change
  | "process-wake" -> Some Process_wake
  | "process-run" -> Some Process_run
  | "delta-open" -> Some Delta_open
  | "delta-close" -> Some Delta_close
  | "fault" -> Some Fault
  | "cover-epoch" -> Some Cover_epoch
  | "checkpoint" -> Some Checkpoint
  | _ -> None

let dummy =
  {
    seq = -1;
    kind = Stimulus;
    subject = "";
    time = 0;
    cycle = 0;
    lane = -1;
    value = 0;
    cause = no_cause;
  }

(* Single-threaded global state; [total] doubles as the next sequence
   number, so slot [seq mod cap] always holds the event with that seq
   until [cap] newer events have evicted it. *)
let flag = ref false
let buf = ref [||]
let cap = ref 0
let total = ref 0
let default_capacity = 16384

let enabled () = !flag
let capacity () = !cap
let count () = min !total !cap
let dropped () = max 0 (!total - !cap)

let enable ?capacity () =
  let c =
    match capacity with
    | Some c ->
        if c < 1 then invalid_arg "Obs.Event.enable: capacity must be >= 1";
        c
    | None -> if !cap > 0 then !cap else default_capacity
  in
  (* Re-enabling at the current capacity keeps the retained events (and
     the sequence numbering), so a paused log can be resumed. *)
  if c <> !cap then begin
    buf := Array.make c dummy;
    cap := c;
    total := 0
  end;
  flag := true

let disable () = flag := false

let reset () =
  if !cap > 0 then Array.fill !buf 0 !cap dummy;
  total := 0

let emit ?(time = 0) ?(cycle = 0) ?(lane = -1) ?(value = 0) ?(cause = no_cause)
    kind subject =
  if not !flag then no_cause
  else begin
    if !cap = 0 then begin
      buf := Array.make default_capacity dummy;
      cap := default_capacity
    end;
    let seq = !total in
    !buf.(seq mod !cap) <-
      { seq; kind; subject; time; cycle; lane; value; cause };
    total := seq + 1;
    seq
  end

let find seq =
  if seq < 0 || seq >= !total || seq < !total - !cap then None
  else Some !buf.(seq mod !cap)

let events () =
  let n = count () in
  List.init n (fun i -> !buf.((!total - n + i) mod !cap))

(* Newest-first scan: the natural direction for "what last touched this
   subject" queries. *)
let find_last p =
  let n = count () in
  let rec go i =
    if i >= n then None
    else
      let e = !buf.((!total - 1 - i) mod !cap) in
      if p e then Some e else go (i + 1)
  in
  go 0

(* Latest event on [subject] — exact name, or a bit of the named bus
   ("pixel" matches "pixel[7]") — at or before [cycle] when given,
   restricted to value-carrying kinds unless [any_kind]. *)
let latest ?cycle ?(any_kind = false) ~subject () =
  let prefix = subject ^ "[" in
  let plen = String.length prefix in
  find_last (fun e ->
      (e.subject = subject
      || String.length e.subject > plen
         && String.sub e.subject 0 plen = prefix)
      && (match cycle with None -> true | Some c -> e.cycle <= c)
      && (any_kind
         ||
         match e.kind with
         | Stimulus | Net_change | Var_change | Fault -> true
         | _ -> false))

(* ------------------------------------------------------------------ *)
(* JSONL export: one header object stamped with the schema version,
   then one compact object per retained event, oldest first.           *)

let to_json e =
  Json.Obj
    ([
       ("seq", Json.Int e.seq);
       ("kind", Json.String (kind_name e.kind));
       ("subject", Json.String e.subject);
       ("time", Json.Int e.time);
       ("cycle", Json.Int e.cycle);
       ("value", Json.Int e.value);
     ]
    @ (if e.lane >= 0 then [ ("lane", Json.Int e.lane) ] else [])
    @ if e.cause >= 0 then [ ("cause", Json.Int e.cause) ] else [])

let of_json json =
  let int_field name default =
    match Json.member name json with
    | Some (Json.Int v) -> Ok v
    | Some _ -> Error (Printf.sprintf "event field %S is not an integer" name)
    | None -> Ok default
  in
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* seq =
    match Json.member "seq" json with
    | Some (Json.Int v) -> Ok v
    | _ -> Error "event lacks an integer \"seq\""
  in
  let* kind =
    match Json.member "kind" json with
    | Some (Json.String s) -> (
        match kind_of_name s with
        | Some k -> Ok k
        | None -> Error (Printf.sprintf "unknown event kind %S" s))
    | _ -> Error "event lacks a string \"kind\""
  in
  let* subject =
    match Json.member "subject" json with
    | Some (Json.String s) -> Ok s
    | _ -> Error "event lacks a string \"subject\""
  in
  let* time = int_field "time" 0 in
  let* cycle = int_field "cycle" 0 in
  let* lane = int_field "lane" (-1) in
  let* value = int_field "value" 0 in
  let* cause = int_field "cause" no_cause in
  Ok { seq; kind; subject; time; cycle; lane; value; cause }

let header_json () =
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("events", Json.Int (count ()));
      ("dropped", Json.Int (dropped ()));
      ("capacity", Json.Int (capacity ()));
    ]

let to_jsonl () =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Json.to_string (header_json ()));
  Buffer.add_char b '\n';
  List.iter
    (fun e ->
      Buffer.add_string b (Json.to_string (to_json e));
      Buffer.add_char b '\n')
    (events ());
  Buffer.contents b

let save_jsonl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl ()))

(* Structural schema check over a JSONL document — the single
   definition every producer and the CI validation step go through
   (mirrors [Report.validate]).  Returns the number of events. *)
let validate_jsonl text =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty event log"
  | header :: rest ->
      let* hdr =
        match Json.of_string header with
        | exception Json.Parse_error msg ->
            Error ("header is not valid JSON: " ^ msg)
        | j -> Ok j
      in
      let* () =
        match Json.member "schema" hdr with
        | Some (Json.String s) when s = schema_version -> Ok ()
        | Some (Json.String s) ->
            Error
              (Printf.sprintf "schema %S, expected %S" s schema_version)
        | Some _ -> Error "field \"schema\" is not a string"
        | None -> Error "header lacks a \"schema\" stamp"
      in
      let* declared =
        match Json.member "events" hdr with
        | Some (Json.Int n) -> Ok n
        | _ -> Error "header lacks an integer \"events\" count"
      in
      let* () =
        match Json.member "dropped" hdr with
        | Some (Json.Int _) -> Ok ()
        | _ -> Error "header lacks an integer \"dropped\" count"
      in
      let rec check i prev = function
        | [] ->
            if i = declared then Ok i
            else
              Error
                (Printf.sprintf "header declares %d events, found %d" declared
                   i)
        | line :: rest ->
            let* ev =
              match Json.of_string line with
              | exception Json.Parse_error msg ->
                  Error (Printf.sprintf "event %d is not valid JSON: %s" i msg)
              | j -> of_json j
            in
            let* () =
              match prev with
              | Some p when ev.seq <> p + 1 ->
                  Error
                    (Printf.sprintf
                       "event %d: seq %d does not follow seq %d" i ev.seq p)
              | _ -> Ok ()
            in
            let* () =
              if ev.cause >= ev.seq && ev.cause <> no_cause then
                Error
                  (Printf.sprintf "event %d: cause %d is not older than seq %d"
                     i ev.cause ev.seq)
              else Ok ()
            in
            check (i + 1) (Some ev.seq) rest
      in
      check 0 None rest

let validate_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  validate_jsonl text
