(* "Why" queries over the causal event log: resolve a subject to its
   latest value-carrying event and walk cause links backward into a
   bounded chain, rendered as an indented tree from effect down to the
   root cause (a stimulus edge, fault injection, or the oldest retained
   link when the ring has evicted the rest). *)

type node = { event : Event.t; cause : node option; truncated : bool }

let rec build ~max_depth (ev : Event.t) =
  if max_depth <= 0 then { event = ev; cause = None; truncated = true }
  else
    match (if ev.Event.cause < 0 then None else Event.find ev.Event.cause) with
    | None ->
        (* Either a genuine root cause, or the link left the ring. *)
        { event = ev; cause = None; truncated = ev.Event.cause >= 0 }
    | Some c ->
        { event = ev; cause = Some (build ~max_depth:(max_depth - 1) c);
          truncated = false }

let default_depth = 32

let why ?(max_depth = default_depth) ~subject ~cycle () =
  Option.map (build ~max_depth) (Event.latest ~cycle ~subject ())

let of_event ?(max_depth = default_depth) ev = build ~max_depth ev

let rec chain node =
  node.event :: (match node.cause with None -> [] | Some c -> chain c)

let rec depth node =
  1 + (match node.cause with None -> 0 | Some c -> depth c)

let rec root node = match node.cause with None -> node | Some c -> root c

let reaches p node = List.exists p (chain node)

let event_line (e : Event.t) =
  let b = Buffer.create 64 in
  Buffer.add_string b e.Event.subject;
  (match e.Event.kind with
  | Event.Stimulus | Net_change | Var_change | Fault ->
      Buffer.add_string b (Printf.sprintf " = %d" e.Event.value)
  | _ -> ());
  Buffer.add_string b (Printf.sprintf " @ cycle %d" e.Event.cycle);
  if e.Event.time > 0 then
    Buffer.add_string b (Printf.sprintf " (t=%d)" e.Event.time);
  if e.Event.lane >= 0 then
    Buffer.add_string b (Printf.sprintf " lane %d" e.Event.lane);
  Buffer.add_string b (Printf.sprintf "  [%s]" (Event.kind_name e.Event.kind));
  Buffer.contents b

let render node =
  let b = Buffer.create 256 in
  let rec go indent node =
    if indent = 0 then
      Buffer.add_string b (Printf.sprintf "%s\n" (event_line node.event))
    else
      Buffer.add_string b
        (Printf.sprintf "%s└─ caused by: %s\n"
           (String.make ((indent - 1) * 3) ' ')
           (event_line node.event));
    match node.cause with
    | Some c -> go (indent + 1) c
    | None ->
        if node.truncated then
          Buffer.add_string b
            (Printf.sprintf "%s└─ (cause no longer retained)\n"
               (String.make (indent * 3) ' '))
  in
  go 0 node;
  Buffer.contents b

let rec to_json node =
  Json.Obj
    ([ ("event", Event.to_json node.event) ]
    @ (if node.truncated then [ ("truncated", Json.Bool true) ] else [])
    @
    match node.cause with
    | Some c -> [ ("cause", to_json c) ]
    | None -> [])
