let schema_version = "osss.run-report/v1"

let make ?(profiles = []) ?(extra = []) ~run () =
  Json.Obj
    ([
       ("schema", Json.String schema_version);
       ("run", Json.String run);
       ( "counters",
         Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (Perf.all ())) );
       ("histograms", Hist.all_to_json ());
       ("gauges", Gauge.all_to_json ());
       ("spans", Span.to_json ());
       ( "profiles",
         Json.Obj (List.map (fun (n, entries) -> (n, Profile.to_json entries)) profiles)
       );
     ]
    @ extra)

(* Structural schema check for [schema_version].  Every producer and
   the CI validation step go through this single definition, so the
   schema cannot silently drift from its checker. *)
let validate json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let field name =
    match Json.member name json with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let* schema = field "schema" in
  let* () =
    match Json.string_value schema with
    | Some s when s = schema_version -> Ok ()
    | Some s ->
        Error (Printf.sprintf "schema %S, expected %S" s schema_version)
    | None -> Error "field \"schema\" is not a string"
  in
  let* _run = field "run" in
  let obj_of name =
    let* v = field name in
    match v with
    | Json.Obj fields -> Ok fields
    | _ -> Error (Printf.sprintf "field %S is not an object" name)
  in
  let* counters = obj_of "counters" in
  let* () =
    match
      List.find_opt (fun (_, v) -> match v with Json.Int _ -> false | _ -> true) counters
    with
    | Some (n, _) -> Error (Printf.sprintf "counter %S is not an integer" n)
    | None -> Ok ()
  in
  let* histograms = obj_of "histograms" in
  let* () =
    match
      List.find_opt
        (fun (_, h) ->
          match (Json.member "count" h, Json.member "buckets" h) with
          | Some (Json.Int _), Some (Json.List _) -> false
          | _ -> true)
        histograms
    with
    | Some (n, _) -> Error (Printf.sprintf "histogram %S lacks count/buckets" n)
    | None -> Ok ()
  in
  let* _gauges = obj_of "gauges" in
  let* spans = field "spans" in
  let* () =
    match spans with
    | Json.List _ -> Ok ()
    | _ -> Error "field \"spans\" is not a list"
  in
  let* profiles = obj_of "profiles" in
  let* () =
    match
      List.find_opt
        (fun (_, p) -> match p with Json.List _ -> false | _ -> true)
        profiles
    with
    | Some (n, _) -> Error (Printf.sprintf "profile %S is not a list" n)
    | None -> Ok ()
  in
  Ok ()

let validate_string text =
  match Json.of_string text with
  | exception Json.Parse_error msg -> Error ("not valid JSON: " ^ msg)
  | json -> validate json

let validate_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  validate_string text
