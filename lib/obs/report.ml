let schema_version = "osss.run-report/v3"
let schema_v2 = "osss.run-report/v2"
let schema_v1 = "osss.run-report/v1"

let make ?(profiles = []) ?coverage ?power ?(extra = []) ~run () =
  Json.Obj
    ([
       ("schema", Json.String schema_version);
       ("run", Json.String run);
       ( "counters",
         Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (Perf.all ())) );
       ("histograms", Hist.all_to_json ());
       ("gauges", Gauge.all_to_json ());
       ("spans", Span.to_json ());
       ( "profiles",
         Json.Obj (List.map (fun (n, entries) -> (n, Profile.to_json entries)) profiles)
       );
     ]
    @ (match coverage with Some c -> [ ("coverage", c) ] | None -> [])
    @ (match power with Some p -> [ ("power", p) ] | None -> [])
    @ extra)

(* Structural schema check.  Every producer and the CI validation step
   go through this single definition, so the schema cannot silently
   drift from its checker.  v1 documents (no coverage section) stay
   valid; v2 adds an optional "coverage" object which, when present,
   must carry a coverage-db schema stamp and list-shaped sections; v3
   adds an optional "power" object with energy/power scalars and
   list-shaped samples/by_module sections.  Sections newer than a
   document's stamp are rejected, so an archived v1/v2 report cannot
   silently carry data its version never defined. *)
let validate json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let field name =
    match Json.member name json with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let* schema = field "schema" in
  let* version =
    match Json.string_value schema with
    | Some s when s = schema_version -> Ok 3
    | Some s when s = schema_v2 -> Ok 2
    | Some s when s = schema_v1 -> Ok 1
    | Some s ->
        Error
          (Printf.sprintf "schema %S, expected %S, %S or %S" s schema_version
             schema_v2 schema_v1)
    | None -> Error "field \"schema\" is not a string"
  in
  let* _run = field "run" in
  let obj_of name =
    let* v = field name in
    match v with
    | Json.Obj fields -> Ok fields
    | _ -> Error (Printf.sprintf "field %S is not an object" name)
  in
  let* counters = obj_of "counters" in
  let* () =
    match
      List.find_opt (fun (_, v) -> match v with Json.Int _ -> false | _ -> true) counters
    with
    | Some (n, _) -> Error (Printf.sprintf "counter %S is not an integer" n)
    | None -> Ok ()
  in
  let* histograms = obj_of "histograms" in
  let* () =
    match
      List.find_opt
        (fun (_, h) ->
          match (Json.member "count" h, Json.member "buckets" h) with
          | Some (Json.Int _), Some (Json.List _) -> false
          | _ -> true)
        histograms
    with
    | Some (n, _) -> Error (Printf.sprintf "histogram %S lacks count/buckets" n)
    | None -> Ok ()
  in
  let* _gauges = obj_of "gauges" in
  let* spans = field "spans" in
  let* () =
    match spans with
    | Json.List _ -> Ok ()
    | _ -> Error "field \"spans\" is not a list"
  in
  let* profiles = obj_of "profiles" in
  let* () =
    match
      List.find_opt
        (fun (_, p) -> match p with Json.List _ -> false | _ -> true)
        profiles
    with
    | Some (n, _) -> Error (Printf.sprintf "profile %S is not a list" n)
    | None -> Ok ()
  in
  let* () =
    match (version, Json.member "coverage" json) with
    | 1, Some _ -> Error "v1 report carries a \"coverage\" section"
    | _, None -> Ok ()
    | _, Some cov ->
        let* () =
          match cov with
          | Json.Obj _ -> Ok ()
          | _ -> Error "field \"coverage\" is not an object"
        in
        let* () =
          match Json.member "schema" cov with
          | Some (Json.String s)
            when String.length s >= 17
                 && String.sub s 0 17 = "osss.coverage-db/" ->
              Ok ()
          | Some _ -> Error "coverage schema is not a coverage-db stamp"
          | None -> Error "coverage section lacks a schema stamp"
        in
        let section name =
          match Json.member name cov with
          | Some (Json.List _) -> Ok ()
          | Some _ -> Error (Printf.sprintf "coverage %S is not a list" name)
          | None -> Error (Printf.sprintf "coverage section lacks %S" name)
        in
        let* () = section "toggles" in
        let* () = section "fsms" in
        let* () = section "groups" in
        section "monitors"
  in
  match (version, Json.member "power" json) with
  | (1 | 2), Some _ ->
      Error
        (Printf.sprintf "v%d report carries a \"power\" section" version)
  | _, None -> Ok ()
  | _, Some pow ->
      let* () =
        match pow with
        | Json.Obj _ -> Ok ()
        | _ -> Error "field \"power\" is not an object"
      in
      let scalar name =
        match Json.member name pow with
        | Some (Json.Float _ | Json.Int _) -> Ok ()
        | Some _ -> Error (Printf.sprintf "power %S is not a number" name)
        | None -> Error (Printf.sprintf "power section lacks %S" name)
      in
      let* () = scalar "total_energy_pj" in
      let* () = scalar "avg_mw" in
      let* () = scalar "peak_mw" in
      let section name =
        match Json.member name pow with
        | Some (Json.List _) -> Ok ()
        | Some _ -> Error (Printf.sprintf "power %S is not a list" name)
        | None -> Error (Printf.sprintf "power section lacks %S" name)
      in
      let* () = section "samples" in
      section "by_module"

let validate_string text =
  match Json.of_string text with
  | exception Json.Parse_error msg -> Error ("not valid JSON: " ^ msg)
  | json -> validate json

let validate_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  validate_string text
