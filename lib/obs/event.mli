(** Bounded causal event log.

    A process-global ring buffer of structured simulation events —
    stimulus edges, net/variable changes, process scheduling, delta
    cycles, fault injections, coverage epochs, checkpoints — each
    stamped with time, cycle, lane and a {e cause}: the sequence number
    of the event that scheduled it.  The causal debugger
    ({!module:Causal}) walks these links backward to answer "why did
    this net take this value".

    Sequence numbers are stable and monotonically increasing; cause
    references are sequence numbers, so ring wraparound can only make a
    cause unresolvable ({!find} returns [None]) — never wrong.

    Disabled by default with the same branch discipline as {!Span}: a
    run without the event log pays one branch per candidate emission. *)

type kind =
  | Stimulus  (** primary input driven from outside *)
  | Net_change  (** gate-level net moved *)
  | Var_change  (** RTL variable committed a new value *)
  | Process_wake
  | Process_run
  | Delta_open
  | Delta_close
  | Fault  (** fault injected, or a fault-corrupted read *)
  | Cover_epoch
  | Checkpoint

type t = {
  seq : int;  (** stable, monotonically increasing *)
  kind : kind;
  subject : string;  (** net label, variable, process or port name *)
  time : int;  (** kernel time (ps); [0] for cycle-based backends *)
  cycle : int;
  lane : int;  (** [-1]: lane-less, or aggregated over all lanes *)
  value : int;  (** low bits of the new value *)
  cause : int;  (** seq of the causing event, or {!no_cause} *)
}

val no_cause : int
(** The cause of a root event (stimulus, first delta): [-1]. *)

val kind_name : kind -> string
val kind_of_name : string -> kind option

(** {1 Collection} *)

val enable : ?capacity:int -> unit -> unit
(** Switch emission on.  [capacity] bounds the ring (default 16384
    events, or the current capacity when re-enabling); changing the
    capacity drops all retained events, re-enabling at the same
    capacity resumes the existing log.  Raises [Invalid_argument] for
    a capacity < 1. *)

val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all retained events and restart sequence numbering (the
    capacity is kept). *)

val emit :
  ?time:int ->
  ?cycle:int ->
  ?lane:int ->
  ?value:int ->
  ?cause:int ->
  kind ->
  string ->
  int
(** [emit kind subject] appends one event and returns its sequence
    number (for use as a downstream cause).  Returns {!no_cause}
    without recording anything while the log is disabled — but hot
    paths should branch on {!enabled} themselves and skip the call. *)

(** {1 Queries} *)

val count : unit -> int
(** Events currently retained (at most the capacity). *)

val dropped : unit -> int
(** Events evicted by wraparound since the last {!reset}. *)

val capacity : unit -> int

val events : unit -> t list
(** Retained events, oldest first. *)

val find : int -> t option
(** Resolve a sequence number; [None] once evicted (or never valid). *)

val find_last : (t -> bool) -> t option
(** Newest retained event satisfying the predicate. *)

val latest : ?cycle:int -> ?any_kind:bool -> subject:string -> unit -> t option
(** Newest value-carrying event ({!Stimulus}, {!Net_change},
    {!Var_change} or {!Fault}; any kind with [any_kind]) whose subject
    is [subject] or a bit of that bus (["pixel"] matches ["pixel[3]"]),
    at or before [cycle] when given. *)

(** {1 JSONL export — schema [osss.event-log/v1]}

    One header object stamped with the schema version and the retained
    / dropped counts, then one compact object per event, oldest
    first. *)

val schema_version : string

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val to_jsonl : unit -> string
val save_jsonl : string -> unit

val validate_jsonl : string -> (int, string) result
(** Structural schema check (header stamp, per-event fields,
    contiguous sequence numbers, causes older than their effects);
    returns the number of events.  Producers and the CI validation
    step share this single definition, like {!Report.validate}. *)

val validate_file : string -> (int, string) result
