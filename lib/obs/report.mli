(** Consolidated, schema-versioned run reports.

    One JSON document per run gathering every observability dimension:
    Perf counters, histograms, gauges, the span tree and activity
    profiles, plus caller-supplied sections (pass tables, benchmark
    results).  CI diffs these between commits; {!validate} is the
    single schema definition both producers and the CI check use. *)

val schema_version : string
(** Currently ["osss.run-report/v3"]. *)

val schema_v2 : string
(** ["osss.run-report/v2"] — before the power section was added; still
    accepted by {!validate}. *)

val schema_v1 : string
(** ["osss.run-report/v1"] — before the coverage section was added;
    still accepted by {!validate} so archived reports keep
    validating. *)

val make :
  ?profiles:(string * Profile.entry list) list ->
  ?coverage:Json.t ->
  ?power:Json.t ->
  ?extra:(string * Json.t) list ->
  run:string ->
  unit ->
  Json.t
(** Snapshot the global registries ([Perf], [Hist], [Gauge], [Span])
    into a report labeled [run].  [coverage] embeds a coverage-db
    document (see [Cover.Db.to_json]) as the ["coverage"] section;
    [power] embeds a dynamic-power report (see [Synth.Power_dyn.to_json])
    as the v3 ["power"] section.  [extra] fields are appended at the
    top level (keys must not collide with the schema's own). *)

val validate : Json.t -> (unit, string) result
(** Check a document against [schema_version], [schema_v2] or
    [schema_v1]: exact schema string, integer counters, histograms with
    count/buckets, object-shaped gauges/profiles, list-shaped spans; on
    v2+, an optional ["coverage"] object stamped with a coverage-db
    schema and carrying list-shaped toggles/fsms/groups/monitors
    sections; on v3, an optional ["power"] object with
    total_energy_pj/avg_mw/peak_mw numbers and list-shaped
    samples/by_module.  Sections newer than the document's stamp are
    rejected. *)

val validate_string : string -> (unit, string) result

val validate_file : string -> (unit, string) result
