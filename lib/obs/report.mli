(** Consolidated, schema-versioned run reports.

    One JSON document per run gathering every observability dimension:
    Perf counters, histograms, gauges, the span tree and activity
    profiles, plus caller-supplied sections (pass tables, benchmark
    results).  CI diffs these between commits; {!validate} is the
    single schema definition both producers and the CI check use. *)

val schema_version : string
(** Currently ["osss.run-report/v1"]. *)

val make :
  ?profiles:(string * Profile.entry list) list ->
  ?extra:(string * Json.t) list ->
  run:string ->
  unit ->
  Json.t
(** Snapshot the global registries ([Perf], [Hist], [Gauge], [Span])
    into a report labeled [run].  [extra] fields are appended at the
    top level (keys must not collide with the schema's own). *)

val validate : Json.t -> (unit, string) result
(** Check a document against [schema_version]: exact schema string,
    integer counters, histograms with count/buckets, object-shaped
    gauges/profiles, list-shaped spans. *)

val validate_string : string -> (unit, string) result

val validate_file : string -> (unit, string) result
