type span = {
  sp_name : string;
  sp_start : float;  (* seconds since the trace epoch *)
  sp_tid : int;  (* domain the span was opened on *)
  mutable sp_stop : float;  (* negative while still open *)
  mutable sp_attrs : (string * string) list;  (* reverse insertion order *)
  mutable sp_children : span list;  (* reverse order *)
}

(* Domain-safe global tracer state.  Disabled by default: the hot
   paths guard their instrumentation on [enabled ()], so a simulation
   run without --trace-out pays one branch (an atomic load) per
   candidate span.

   Each domain keeps its own open-span stack in domain-local storage —
   spans nest under the enclosing span *of the same domain*, so a
   campaign shard running on a pool domain produces its own root
   subtree (exported under its domain's tid) instead of splicing into
   whatever the main domain had open.  The root list and epoch are
   shared, behind a mutex.  Exporters and [reset] assume the worker
   domains are quiescent (between [Par] batches), which is when the
   CLIs call them. *)
let flag = Atomic.make false
let lock = Mutex.create ()
let epoch = ref 0.0  (* under [lock] *)
let roots : span list ref = ref []  (* reverse order, under [lock] *)
let total = Atomic.make 0

let stack_key : span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let now () = Unix.gettimeofday ()

let enabled () = Atomic.get flag

let reset () =
  Mutex.protect lock (fun () ->
      roots := [];
      epoch := now ());
  Domain.DLS.get stack_key := [];
  Atomic.set total 0

let enable () =
  Atomic.set flag true;
  Mutex.protect lock (fun () -> if !epoch = 0.0 then epoch := now ())

let disable () = Atomic.set flag false

let span_count () = Atomic.get total

let open_span name attrs =
  let sp =
    {
      sp_name = name;
      sp_start = now () -. !epoch;
      sp_tid = (Domain.self () :> int);
      sp_stop = -1.0;
      sp_attrs = List.rev attrs;
      sp_children = [];
    }
  in
  let stack = Domain.DLS.get stack_key in
  (match !stack with
  | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
  | [] -> Mutex.protect lock (fun () -> roots := sp :: !roots));
  stack := sp :: !stack;
  ignore (Atomic.fetch_and_add total 1);
  sp

let close_span sp =
  sp.sp_stop <- now () -. !epoch;
  let stack = Domain.DLS.get stack_key in
  match !stack with
  | top :: rest when top == sp -> stack := rest
  | _ ->
      (* An exception unwound past nested open spans: close everything
         down to (and including) [sp] so the tree stays well-formed. *)
      let rec pop () =
        match !stack with
        | [] -> ()
        | top :: rest ->
            stack := rest;
            if top.sp_stop < 0.0 then top.sp_stop <- sp.sp_stop;
            if top != sp then pop ()
      in
      pop ()

let add_attr_to sp key value = sp.sp_attrs <- (key, value) :: sp.sp_attrs

let with_ ?(attrs = []) ~name f =
  if not (Atomic.get flag) then f ()
  else begin
    let sp = open_span name attrs in
    match f () with
    | value ->
        close_span sp;
        value
    | exception e ->
        add_attr_to sp "exception" (Printexc.to_string e);
        close_span sp;
        raise e
  end

let add_attr key value =
  if Atomic.get flag then
    match !(Domain.DLS.get stack_key) with
    | sp :: _ -> add_attr_to sp key value
    | [] -> ()

let add_attr_int key value = add_attr key (string_of_int value)

let root_spans () = Mutex.protect lock (fun () -> List.rev !roots)

let name sp = sp.sp_name
let children sp = List.rev sp.sp_children
let attrs sp = List.rev sp.sp_attrs
let duration_ms sp = (max 0.0 (sp.sp_stop -. sp.sp_start)) *. 1000.0

let rec find ~name sp =
  if sp.sp_name = name then Some sp
  else
    List.fold_left
      (fun acc child -> match acc with Some _ -> acc | None -> find ~name child)
      None (children sp)

let find_root ~name =
  List.fold_left
    (fun acc sp -> match acc with Some _ -> acc | None -> find ~name sp)
    None (root_spans ())

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let us seconds = Float.round (seconds *. 1e6)

(* Chrome trace-event format: one complete ("ph":"X") event per span.
   Nesting is implied by timestamp containment within a single thread;
   each span carries the domain it ran on as its tid, so parallel
   campaign shards render as separate tracks. *)
let to_chrome_events () =
  let events = ref [] in
  let rec emit sp =
    let stop = if sp.sp_stop < 0.0 then sp.sp_start else sp.sp_stop in
    events :=
      Json.Obj
        [
          ("name", Json.String sp.sp_name);
          ("ph", Json.String "X");
          ("ts", Json.Float (us sp.sp_start));
          ("dur", Json.Float (us (stop -. sp.sp_start)));
          ("pid", Json.Int 1);
          ("tid", Json.Int sp.sp_tid);
          ( "args",
            Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) (attrs sp)) );
        ]
      :: !events;
    List.iter emit (children sp)
  in
  List.iter emit (root_spans ());
  Json.List (List.rev !events)

let chrome_json () = Json.to_string (to_chrome_events ())

let save_chrome path = Json.save (to_chrome_events ()) path

(* Nested span tree for the consolidated run report. *)
let rec span_to_json sp =
  let stop = if sp.sp_stop < 0.0 then sp.sp_start else sp.sp_stop in
  Json.Obj
    ([
       ("name", Json.String sp.sp_name);
       ("start_ms", Json.Float (sp.sp_start *. 1000.0));
       ("duration_ms", Json.Float ((stop -. sp.sp_start) *. 1000.0));
     ]
    @ (match attrs sp with
      | [] -> []
      | attrs ->
          [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) attrs)) ])
    @
    match children sp with
    | [] -> []
    | kids -> [ ("children", Json.List (List.map span_to_json kids)) ])

let to_json () = Json.List (List.map span_to_json (root_spans ()))

(* Collapsed-stack (flamegraph) format: one "a;b;c <us>" line per
   distinct stack, where the count is the stack's self time in
   microseconds (duration minus the children's durations, clamped at
   zero).  Identical stacks — the same span name sequence — are folded
   into one line with summed self times, which is what flamegraph
   renderers expect. *)
let to_collapsed () =
  let tally : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let stacks = ref [] in  (* first-seen order *)
  let add stack self =
    match Hashtbl.find_opt tally stack with
    | Some prior -> Hashtbl.replace tally stack (prior + self)
    | None ->
        Hashtbl.replace tally stack self;
        stacks := stack :: !stacks
  in
  let rec walk prefix sp =
    let stack =
      if prefix = "" then sp.sp_name else prefix ^ ";" ^ sp.sp_name
    in
    let stop = if sp.sp_stop < 0.0 then sp.sp_start else sp.sp_stop in
    let kids = children sp in
    let child_time =
      List.fold_left
        (fun acc c ->
          let cstop = if c.sp_stop < 0.0 then c.sp_start else c.sp_stop in
          acc +. (cstop -. c.sp_start))
        0.0 kids
    in
    let self =
      int_of_float (us (max 0.0 (stop -. sp.sp_start -. child_time)))
    in
    add stack self;
    List.iter (walk stack) kids
  in
  List.iter (walk "") (root_spans ());
  let b = Buffer.create 1024 in
  List.iter
    (fun stack ->
      Buffer.add_string b
        (Printf.sprintf "%s %d\n" stack (Hashtbl.find tally stack)))
    (List.rev !stacks);
  Buffer.contents b

let save_collapsed path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_collapsed ()))
