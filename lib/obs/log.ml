type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

(* Narrative output goes to stderr so that machine-readable stdout
   (--json modes) stays clean; tests can redirect it.  Emission is
   line-atomic behind a mutex: campaign shards on pool domains log
   concurrently, and interleaving within a line would garble the
   narrative (channel buffers are not domain-safe on their own). *)
let out = ref stderr
let threshold = ref Info
let lock = Mutex.create ()

let set_out oc = out := oc
let set_level l = threshold := l
let level () = !threshold
let enabled l = level_rank l >= level_rank !threshold

let log l msg =
  if enabled l then begin
    let line = Printf.sprintf "[%s] %s\n" (level_name l) msg in
    Mutex.protect lock (fun () ->
        output_string !out line;
        flush !out)
  end

let debug msg = log Debug msg
let info msg = log Info msg
let warn msg = log Warn msg
let error msg = log Error msg

let debugf fmt = Printf.ksprintf debug fmt
let infof fmt = Printf.ksprintf info fmt
let warnf fmt = Printf.ksprintf warn fmt
let errorf fmt = Printf.ksprintf error fmt
