(* Power-of-two bucket boundaries: bucket [i] counts observations with
   [2^(i-1) <= v < 2^i] (bucket 0 takes v < 1).  32 buckets cover every
   count the simulators produce. *)
let n_buckets = 32

(* A histogram name is a handle; the data lives in per-domain shadow
   accumulators.  [observe] only ever touches the calling domain's own
   shadow — no locks, no contention on the simulation hot paths — and
   the read side merges every domain's shadow into one aggregate under
   the registry lock.  Shadow creation (first observation of a name on
   a domain, first observation of a domain at all) takes the lock; the
   steady state is lock-free for writers.  Readers may race in-flight
   observations and see a slightly stale aggregate — fine for
   monitoring — but the CLIs only export between [Par] batches, when
   the worker domains are quiescent. *)
type t = { hname : string }

type shadow = {
  mutable s_count : int;
  mutable s_sum : float;
  mutable s_vmin : float;
  mutable s_vmax : float;
  s_buckets : int array;
}

let fresh_shadow () =
  {
    s_count = 0;
    s_sum = 0.0;
    s_vmin = infinity;
    s_vmax = neg_infinity;
    s_buckets = Array.make n_buckets 0;
  }

let lock = Mutex.create ()
let handles : (string, t) Hashtbl.t = Hashtbl.create 16  (* under [lock] *)
let handle_order : string list ref = ref []  (* under [lock] *)

(* Every domain's local name→shadow table, registered on first use. *)
let tables : (string, shadow) Hashtbl.t list ref = ref []  (* under [lock] *)

let table_key : (string, shadow) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let tbl = Hashtbl.create 16 in
      Mutex.protect lock (fun () -> tables := tbl :: !tables);
      tbl)

(* Like Span, recording is off by default so that instrumented hot
   paths cost one branch per observation in unobserved runs. *)
let flag = Atomic.make false

let enable () = Atomic.set flag true
let disable () = Atomic.set flag false
let enabled () = Atomic.get flag

let histogram name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt handles name with
      | Some h -> h
      | None ->
          let h = { hname = name } in
          Hashtbl.replace handles name h;
          handle_order := name :: !handle_order;
          h)

let bucket_index v =
  if v < 1.0 then 0
  else min (n_buckets - 1) (1 + int_of_float (Float.log2 v))

let bucket_upper i = if i >= n_buckets - 1 then infinity else Float.pow 2.0 (float_of_int i)

let bucket_lower i =
  if i = 0 then neg_infinity else Float.pow 2.0 (float_of_int (i - 1))

let observe h v =
  if Atomic.get flag then begin
    let tbl = Domain.DLS.get table_key in
    let s =
      match Hashtbl.find_opt tbl h.hname with
      | Some s -> s
      | None ->
          let s = fresh_shadow () in
          (* Under the lock so a concurrent reader never walks this
             table mid-resize. *)
          Mutex.protect lock (fun () -> Hashtbl.replace tbl h.hname s);
          s
    in
    s.s_count <- s.s_count + 1;
    s.s_sum <- s.s_sum +. v;
    if v < s.s_vmin then s.s_vmin <- v;
    if v > s.s_vmax then s.s_vmax <- v;
    let i = bucket_index v in
    s.s_buckets.(i) <- s.s_buckets.(i) + 1
  end

let observe_int h v = observe h (float_of_int v)

(* The aggregate across every domain's shadow of [h]. *)
let snapshot h =
  Mutex.protect lock (fun () ->
      let acc = fresh_shadow () in
      List.iter
        (fun tbl ->
          match Hashtbl.find_opt tbl h.hname with
          | None -> ()
          | Some s ->
              acc.s_count <- acc.s_count + s.s_count;
              acc.s_sum <- acc.s_sum +. s.s_sum;
              if s.s_vmin < acc.s_vmin then acc.s_vmin <- s.s_vmin;
              if s.s_vmax > acc.s_vmax then acc.s_vmax <- s.s_vmax;
              Array.iteri
                (fun i c -> acc.s_buckets.(i) <- acc.s_buckets.(i) + c)
                s.s_buckets)
        !tables;
      acc)

let name h = h.hname
let count h = (snapshot h).s_count
let sum h = (snapshot h).s_sum

let mean_of s = if s.s_count = 0 then 0.0 else s.s_sum /. float_of_int s.s_count
let mean h = mean_of (snapshot h)
let min_value h = let s = snapshot h in if s.s_count = 0 then 0.0 else s.s_vmin
let max_value h = let s = snapshot h in if s.s_count = 0 then 0.0 else s.s_vmax

(* Bucket-interpolated percentile: walk buckets to the one holding the
   q-th observation, then interpolate linearly inside its bounds
   (clamped to the observed min/max, which makes single-valued
   histograms exact). *)
let percentile h q =
  let s = snapshot h in
  if s.s_count = 0 then 0.0
  else begin
    let q = Float.min 100.0 (Float.max 0.0 q) in
    let target = q /. 100.0 *. float_of_int s.s_count in
    let rec go i cum =
      if i >= n_buckets then s.s_vmax
      else
        let c = s.s_buckets.(i) in
        if c = 0 || float_of_int (cum + c) < target then go (i + 1) (cum + c)
        else begin
          let lo = Float.max (bucket_lower i) s.s_vmin in
          let hi = Float.min (bucket_upper i) s.s_vmax in
          let frac = (target -. float_of_int cum) /. float_of_int c in
          lo +. ((hi -. lo) *. frac)
        end
    in
    Float.max s.s_vmin (Float.min s.s_vmax (go 0 0))
  end

let zero_shadow s =
  s.s_count <- 0;
  s.s_sum <- 0.0;
  s.s_vmin <- infinity;
  s.s_vmax <- neg_infinity;
  Array.fill s.s_buckets 0 n_buckets 0

(* Resets expect quiescent workers (between [Par] batches), like the
   exporters. *)
let reset h =
  Mutex.protect lock (fun () ->
      List.iter
        (fun tbl ->
          match Hashtbl.find_opt tbl h.hname with
          | Some s -> zero_shadow s
          | None -> ())
        !tables)

let reset_all () =
  Mutex.protect lock (fun () ->
      List.iter (fun tbl -> Hashtbl.iter (fun _ s -> zero_shadow s) tbl)
        !tables)

let all () =
  Mutex.protect lock (fun () ->
      List.rev_map (fun n -> Hashtbl.find handles n) !handle_order)
  |> List.sort (fun a b -> compare a.hname b.hname)

let to_json h =
  let s = snapshot h in
  let buckets =
    Array.to_list s.s_buckets
    |> List.mapi (fun i c -> (i, c))
    |> List.filter (fun (_, c) -> c > 0)
    |> List.map (fun (i, c) ->
           Json.Obj
             [
               ( "le",
                 if i >= n_buckets - 1 then Json.String "inf"
                 else Json.Float (bucket_upper i) );
               ("count", Json.Int c);
             ])
  in
  Json.Obj
    [
      ("count", Json.Int s.s_count);
      ("sum", Json.Float s.s_sum);
      ("mean", Json.Float (mean_of s));
      ("min", Json.Float (if s.s_count = 0 then 0.0 else s.s_vmin));
      ("max", Json.Float (if s.s_count = 0 then 0.0 else s.s_vmax));
      ("buckets", Json.List buckets);
    ]

let all_to_json () =
  Json.Obj (List.map (fun h -> (h.hname, to_json h)) (all ()))
