(* Power-of-two bucket boundaries: bucket [i] counts observations with
   [2^(i-1) <= v < 2^i] (bucket 0 takes v < 1).  32 buckets cover every
   count the simulators produce. *)
let n_buckets = 32

type t = {
  hname : string;
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  buckets : int array;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

(* Like Span, recording is off by default so that instrumented hot
   paths cost one branch per observation in unobserved runs. *)
let flag = ref false

let enable () = flag := true
let disable () = flag := false
let enabled () = !flag

let histogram name =
  match Hashtbl.find_opt registry name with
  | Some h -> h
  | None ->
      let h =
        {
          hname = name;
          count = 0;
          sum = 0.0;
          vmin = infinity;
          vmax = neg_infinity;
          buckets = Array.make n_buckets 0;
        }
      in
      Hashtbl.replace registry name h;
      h

let bucket_index v =
  if v < 1.0 then 0
  else min (n_buckets - 1) (1 + int_of_float (Float.log2 v))

let bucket_upper i = if i >= n_buckets - 1 then infinity else Float.pow 2.0 (float_of_int i)

let bucket_lower i =
  if i = 0 then neg_infinity else Float.pow 2.0 (float_of_int (i - 1))

(* Bucket-interpolated percentile: walk buckets to the one holding the
   q-th observation, then interpolate linearly inside its bounds
   (clamped to the observed min/max, which makes single-valued
   histograms exact). *)
let percentile h q =
  if h.count = 0 then 0.0
  else begin
    let q = Float.min 100.0 (Float.max 0.0 q) in
    let target = q /. 100.0 *. float_of_int h.count in
    let rec go i cum =
      if i >= n_buckets then h.vmax
      else
        let c = h.buckets.(i) in
        if c = 0 || float_of_int (cum + c) < target then go (i + 1) (cum + c)
        else begin
          let lo = Float.max (bucket_lower i) h.vmin in
          let hi = Float.min (bucket_upper i) h.vmax in
          let frac = (target -. float_of_int cum) /. float_of_int c in
          lo +. ((hi -. lo) *. frac)
        end
    in
    Float.max h.vmin (Float.min h.vmax (go 0 0))
  end

let observe h v =
  if !flag then begin
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v;
    let i = bucket_index v in
    h.buckets.(i) <- h.buckets.(i) + 1
  end

let observe_int h v = observe h (float_of_int v)

let name h = h.hname
let count h = h.count
let sum h = h.sum
let mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count
let min_value h = if h.count = 0 then 0.0 else h.vmin
let max_value h = if h.count = 0 then 0.0 else h.vmax

let reset h =
  h.count <- 0;
  h.sum <- 0.0;
  h.vmin <- infinity;
  h.vmax <- neg_infinity;
  Array.fill h.buckets 0 n_buckets 0

let reset_all () = Hashtbl.iter (fun _ h -> reset h) registry

let all () =
  Hashtbl.fold (fun _ h acc -> h :: acc) registry []
  |> List.sort (fun a b -> compare a.hname b.hname)

let to_json h =
  let buckets =
    Array.to_list h.buckets
    |> List.mapi (fun i c -> (i, c))
    |> List.filter (fun (_, c) -> c > 0)
    |> List.map (fun (i, c) ->
           Json.Obj
             [
               ( "le",
                 if i >= n_buckets - 1 then Json.String "inf"
                 else Json.Float (bucket_upper i) );
               ("count", Json.Int c);
             ])
  in
  Json.Obj
    [
      ("count", Json.Int h.count);
      ("sum", Json.Float h.sum);
      ("mean", Json.Float (mean h));
      ("min", Json.Float (min_value h));
      ("max", Json.Float (max_value h));
      ("buckets", Json.List buckets);
    ]

let all_to_json () =
  Json.Obj (List.map (fun h -> (h.hname, to_json h)) (all ()))
