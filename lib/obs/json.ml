exception Parse_error of string

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else if Float.is_finite f then Printf.sprintf "%.12g" f
  else "null" (* JSON has no inf/nan *)

let to_string ?(pretty = false) v =
  let buf = Buffer.create 1024 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_literal f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, item) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf (if pretty then "\": " else "\":");
            go (depth + 1) item)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (strict enough for round-tripping our own reports)          *)

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = text.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub text !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* Our own emitter only writes control characters this
                 way; decode the BMP code point as UTF-8. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "unknown escape")
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" s))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None

let string_value = function String s -> Some s | _ -> None

let number_value = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let save v path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ~pretty:true v);
      output_char oc '\n')
