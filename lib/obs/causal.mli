(** "Why" queries over the causal event log ({!Event}).

    Given a net/variable and a cycle, resolve the latest value-carrying
    event on that subject and walk the cause links backward into a
    bounded causality chain, down to a stimulus edge or fault injection
    (or until the ring buffer no longer retains the link).  This is the
    query engine behind [osss_debug --why] and the causality chains the
    differential harness attaches to divergence reproducers. *)

type node = {
  event : Event.t;
  cause : node option;
  truncated : bool;
      (** the walk stopped early: depth bound hit, or the cause was
          evicted from the ring *)
}

val why :
  ?max_depth:int -> subject:string -> cycle:int -> unit -> node option
(** [why ~subject ~cycle ()] — latest {!Event.latest} match for
    [subject] at or before [cycle], with its cause chain walked to at
    most [max_depth] (default 32) links.  [None] when no retained event
    touches the subject. *)

val of_event : ?max_depth:int -> Event.t -> node
(** Walk the chain of a specific event. *)

val chain : node -> Event.t list
(** Effect first, root cause last. *)

val depth : node -> int
val root : node -> node

val reaches : (Event.t -> bool) -> node -> bool
(** Does any event of the chain satisfy the predicate?  (E.g. "does
    the explanation reach the injected fault".) *)

val render : node -> string
(** Indented tree, one event per line, effect at the top. *)

val to_json : node -> Json.t
