type t = { gname : string; mutable value : float }

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some g -> g
  | None ->
      let g = { gname = name; value = 0.0 } in
      Hashtbl.replace registry name g;
      g

let set g v = g.value <- v
let set_int g v = g.value <- float_of_int v
let add g v = g.value <- g.value +. v
let value g = g.value
let name g = g.gname

let reset_all () = Hashtbl.iter (fun _ g -> g.value <- 0.0) registry

let all () =
  Hashtbl.fold (fun name g acc -> (name, g.value) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let all_to_json () = Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) (all ()))
