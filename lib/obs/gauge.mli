(** Registered gauges: last-write-wins instantaneous values (sizes,
    ratios, configuration), registered by name like Perf counters.
    Unlike {!Hist}, gauges are always recorded — a [set] is one store,
    so there is nothing to switch off. *)

type t

val gauge : string -> t
val set : t -> float -> unit
val set_int : t -> int -> unit
val add : t -> float -> unit
val value : t -> float
val name : t -> string
val reset_all : unit -> unit
val all : unit -> (string * float) list
val all_to_json : unit -> Json.t
