(** Tiny level-filtered logger.

    Narrative lines (bench progress, smoke-check summaries, "wrote
    file" notices) go through here to stderr, keeping stdout clean for
    machine-readable output in [--json] modes.  Default level is
    [Info]. *)

type level = Debug | Info | Warn | Error

val set_level : level -> unit
val level : unit -> level
val enabled : level -> bool

val set_out : out_channel -> unit
(** Redirect output (default [stderr]). *)

val debug : string -> unit
val info : string -> unit
val warn : string -> unit
val error : string -> unit

val debugf : ('a, unit, string, unit) format4 -> 'a
val infof : ('a, unit, string, unit) format4 -> 'a
val warnf : ('a, unit, string, unit) format4 -> 'a
val errorf : ('a, unit, string, unit) format4 -> 'a
