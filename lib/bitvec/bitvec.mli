(** Arbitrary-width bit vectors.

    This is the value substrate of the whole system: the equivalent of
    SystemC's [sc_bv] / [sc_biguint] / [sc_bigint].  Values are immutable;
    every operation returns a fresh vector.  A vector has a fixed [width]
    (number of bits, >= 1); bit 0 is the least significant bit.

    Unless stated otherwise, binary operations require both operands to
    have the same width and raise [Width_mismatch] otherwise.  Arithmetic
    wraps modulo [2^width] exactly like hardware. *)

type t

exception Width_mismatch of string
(** Raised when operand widths are inconsistent. *)

exception Invalid_bitvec of string
(** Raised on malformed constructors (zero width, bad literal, ...). *)

(** {1 Construction} *)

val zero : int -> t
(** [zero w] is the all-zeros vector of width [w]. *)

val ones : int -> t
(** [ones w] is the all-ones vector of width [w]. *)

val of_int : width:int -> int -> t
(** [of_int ~width n] truncates the two's-complement representation of
    [n] to [width] bits.  Negative [n] yields the wrapped representation. *)

val of_int64 : width:int -> int64 -> t

val of_bool : bool -> t
(** Width-1 vector. *)

val of_string : string -> t
(** Parses ["0b0100_1"] (binary, MSB first, width = digit count) or
    ["0x3fa:12"] (hex with explicit width).  Underscores are ignored.
    Raises [Invalid_bitvec] on malformed input. *)

val of_bits : bool list -> t
(** [of_bits bits] builds a vector from [bits] listed MSB first. *)

val init : int -> (int -> bool) -> t
(** [init w f] has bit [i] equal to [f i]. *)

(** {1 Observation} *)

val width : t -> int

val get : t -> int -> bool
(** [get v i] is bit [i].  Raises [Invalid_argument] out of range. *)

val to_int : t -> int
(** Unsigned value.  Raises [Invalid_bitvec] if it does not fit in an
    OCaml [int] (i.e. width > 62 and high bits set). *)

val to_signed_int : t -> int
(** Two's-complement signed value; same overflow behaviour as {!to_int}. *)

val to_int64 : t -> int64

val to_bits : t -> bool list
(** MSB first. *)

val to_binary_string : t -> string
(** MSB-first string of ['0']/['1'] characters, no prefix. *)

val to_hex_string : t -> string
(** Lowercase hex, MSB first, [ceil (width/4)] digits, no prefix. *)

val is_zero : t -> bool
val is_ones : t -> bool

val popcount : t -> int

val msb : t -> bool
val lsb : t -> bool

(** {1 Structure} *)

val slice : t -> hi:int -> lo:int -> t
(** [slice v ~hi ~lo] is bits [hi..lo] inclusive (width [hi - lo + 1]).
    Raises [Invalid_argument] if the range is out of bounds or empty. *)

val concat : t -> t -> t
(** [concat hi lo] places [hi] above [lo]; width is the sum. *)

val concat_list : t list -> t
(** [concat_list [a; b; c]] = [concat a (concat b c)]; the head of the
    list provides the most significant bits.  Raises [Invalid_bitvec] on
    the empty list. *)

val repeat : t -> int -> t
(** [repeat v n] concatenates [n] copies of [v]; [n >= 1]. *)

val transpose : t array -> t array
(** [transpose rows] turns [n] vectors of equal width [w] into [w]
    vectors of width [n], with bit [j] of result [i] equal to bit [i]
    of [rows.(j)] — the lane-packing helper of the word-parallel
    netlist simulator ([transpose (transpose rows) = rows]).  Raises
    [Invalid_bitvec] on an empty array and [Width_mismatch] on ragged
    rows. *)

val set_bit : t -> int -> bool -> t
(** Functional single-bit update. *)

val set_slice : t -> lo:int -> t -> t
(** [set_slice v ~lo field] overwrites bits [lo .. lo+width field - 1]. *)

val zero_extend : t -> int -> t
(** [zero_extend v w] pads with zeros up to width [w] (>= width v). *)

val sign_extend : t -> int -> t

val truncate : t -> int -> t
(** Keep the low [w] bits. *)

val resize : signed:bool -> t -> int -> t
(** Extend or truncate to the requested width. *)

(** {1 Bitwise logic} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val reduce_and : t -> bool
val reduce_or : t -> bool
val reduce_xor : t -> bool

(** {1 Shifts} *)

val shift_left : t -> int -> t
val shift_right_logical : t -> int -> t
val shift_right_arith : t -> int -> t

(** {1 Arithmetic (wrapping, width-preserving)} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
(** Low [width] bits of the product. *)

val mul_full : t -> t -> t
(** Full product; result width is the sum of the operand widths. *)

val udiv : t -> t -> t
(** Unsigned division.  Raises [Division_by_zero]. *)

val umod : t -> t -> t

val succ : t -> t
val pred : t -> t

(** {1 Comparison} *)

val equal : t -> t -> bool
(** Same width and same bits. *)

val compare_unsigned : t -> t -> int
val compare_signed : t -> t -> int

val ult : t -> t -> bool
val ule : t -> t -> bool
val ugt : t -> t -> bool
val uge : t -> t -> bool
val slt : t -> t -> bool
val sle : t -> t -> bool

(** {1 Printing and hashing} *)

val pp : Format.formatter -> t -> unit
(** Prints as [width'bvalue] in hex, e.g. [8'h3f]. *)

val to_string : t -> string
val hash : t -> int

(** Four-state scalar logic (IEEE-1164 style) for simulation-side
    refinement: X-propagation and open-drain bus resolution. *)
module Logic : sig
  (** Four-state scalar logic values, IEEE-1164 style.

      Used where X-propagation or bus resolution matters: uninitialized
      registers, tri-state buses (the I2C SDA/SCL lines are wired-AND open
      drain).  The synthesizable data path itself is two-valued
      ({!Bitvec.t}); [Logic] is the simulation-side refinement. *)

  type t =
    | L0  (** strong 0 *)
    | L1  (** strong 1 *)
    | X   (** unknown *)
    | Z   (** high impedance *)

  val equal : t -> t -> bool
  val compare : t -> t -> int

  val of_bool : bool -> t

  val to_bool : t -> bool option
  (** [None] for [X] and [Z]. *)

  val to_char : t -> char
  (** ['0'], ['1'], ['x'], ['z']. *)

  val of_char : char -> t
  (** Accepts upper or lower case.  Raises [Invalid_argument] otherwise. *)

  val pp : Format.formatter -> t -> unit

  (** {1 Gates with X-propagation}

      The controlling value dominates: [and_ L0 X = L0], [or_ L1 X = L1];
      otherwise any [X]/[Z] input yields [X]. *)

  val and_ : t -> t -> t
  val or_ : t -> t -> t
  val xor : t -> t -> t
  val not_ : t -> t
  val mux : sel:t -> t -> t -> t
  (** [mux ~sel a b] is [a] when [sel] is 1, [b] when 0; if [sel] is
      unknown the result is [X] unless both inputs agree. *)

  val resolve : t -> t -> t
  (** Wired resolution of two drivers on one net: [Z] loses to anything,
      conflicting strong drivers give [X]. *)

  val resolve_wired_and : t -> t -> t
  (** Open-drain resolution (I2C style): any strong 0 wins, [Z] reads as 1
      (pull-up). *)
end
