(* Arbitrary-width bit vectors backed by 32-bit limbs stored in an int
   array.  Limb 0 holds the least significant bits.  The top limb is kept
   masked so that structural equality and hashing work on the raw arrays. *)

exception Width_mismatch of string
exception Invalid_bitvec of string

let limb_bits = 32
let limb_mask = (1 lsl limb_bits) - 1

type t = { width : int; limbs : int array }

let nlimbs width = (width + limb_bits - 1) / limb_bits

(* Mask that keeps only the valid bits of the top limb. *)
let top_mask width =
  let r = width mod limb_bits in
  if r = 0 then limb_mask else (1 lsl r) - 1

let normalize v =
  let n = Array.length v.limbs in
  if n > 0 then v.limbs.(n - 1) <- v.limbs.(n - 1) land top_mask v.width;
  v

let create width =
  if width < 1 then raise (Invalid_bitvec "width must be >= 1");
  { width; limbs = Array.make (nlimbs width) 0 }

let zero width = create width

let ones width =
  let v = create width in
  Array.fill v.limbs 0 (Array.length v.limbs) limb_mask;
  normalize v

let width v = v.width

let get v i =
  if i < 0 || i >= v.width then
    invalid_arg (Printf.sprintf "Bitvec.get: bit %d of width %d" i v.width);
  v.limbs.(i / limb_bits) lsr (i mod limb_bits) land 1 = 1

let set_bit v i b =
  if i < 0 || i >= v.width then
    invalid_arg (Printf.sprintf "Bitvec.set_bit: bit %d of width %d" i v.width);
  let limbs = Array.copy v.limbs in
  let j = i / limb_bits and k = i mod limb_bits in
  if b then limbs.(j) <- limbs.(j) lor (1 lsl k)
  else limbs.(j) <- limbs.(j) land lnot (1 lsl k);
  { v with limbs }

let init w f =
  let v = create w in
  for i = 0 to w - 1 do
    if f i then
      v.limbs.(i / limb_bits) <-
        v.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
  done;
  v

let of_int ~width n =
  if width < 1 then raise (Invalid_bitvec "width must be >= 1");
  (* Word-level fast path: up to two limbs come straight from the int's
     two's-complement representation ([asr] past bit 62 replicates the
     sign, which matches the bit-by-bit definition below). *)
  if width <= limb_bits then normalize { width; limbs = [| n land limb_mask |] }
  else if width <= 2 * limb_bits then
    normalize
      { width; limbs = [| n land limb_mask; (n asr limb_bits) land limb_mask |] }
  else init width (fun i -> if i > 62 then n < 0 else (n asr i) land 1 = 1)

let of_int64 ~width n =
  init width (fun i ->
      if i > 63 then Int64.compare n 0L < 0
      else Int64.logand (Int64.shift_right n i) 1L = 1L)

let of_bool b = of_int ~width:1 (if b then 1 else 0)

let of_bits bits =
  match bits with
  | [] -> raise (Invalid_bitvec "of_bits: empty list")
  | _ ->
      let n = List.length bits in
      let arr = Array.of_list bits in
      init n (fun i -> arr.(n - 1 - i))

let to_bits v =
  let rec loop i acc = if i >= v.width then acc else loop (i + 1) (get v i :: acc) in
  loop 0 []

let of_string s =
  let strip_underscores s =
    String.to_seq s |> Seq.filter (fun c -> c <> '_') |> String.of_seq
  in
  let s = strip_underscores s in
  let binary body =
    let n = String.length body in
    if n = 0 then raise (Invalid_bitvec "of_string: empty binary literal");
    init n (fun i ->
        match body.[n - 1 - i] with
        | '0' -> false
        | '1' -> true
        | c -> raise (Invalid_bitvec (Printf.sprintf "of_string: bad digit %c" c)))
  in
  let hex body w =
    let n = String.length body in
    if n = 0 then raise (Invalid_bitvec "of_string: empty hex literal");
    let digit c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> raise (Invalid_bitvec (Printf.sprintf "of_string: bad hex digit %c" c))
    in
    init w (fun i ->
        let d = i / 4 in
        if d >= n then false else digit body.[n - 1 - d] lsr (i mod 4) land 1 = 1)
  in
  if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'b' || s.[1] = 'B') then
    binary (String.sub s 2 (String.length s - 2))
  else if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
    match String.index_opt s ':' with
    | Some i ->
        let body = String.sub s 2 (i - 2) in
        let w =
          try int_of_string (String.sub s (i + 1) (String.length s - i - 1))
          with Failure _ -> raise (Invalid_bitvec "of_string: bad width suffix")
        in
        if w < 1 then raise (Invalid_bitvec "of_string: width must be >= 1");
        hex body w
    | None ->
        let body = String.sub s 2 (String.length s - 2) in
        hex body (4 * String.length body)
  else raise (Invalid_bitvec ("of_string: expected 0b... or 0x...: " ^ s))

let to_int_slow v =
  if v.width > 62 then begin
    (* Accept only if the high bits are all zero. *)
    for i = 62 to v.width - 1 do
      if get v i then raise (Invalid_bitvec "to_int: value does not fit in int")
    done
  end;
  let n = ref 0 in
  for i = min v.width 62 - 1 downto 0 do
    n := (!n lsl 1) lor (if get v i then 1 else 0)
  done;
  !n

let to_int v =
  (* Word-level fast path: the top limb is kept masked, so one or two
     limbs can be read back directly when the value fits an OCaml int. *)
  if v.width <= limb_bits then v.limbs.(0)
  else if v.width <= 62 then v.limbs.(0) lor (v.limbs.(1) lsl limb_bits)
  else to_int_slow v

let to_signed_int v =
  if v.width = 1 then if get v 0 then -1 else 0
  else begin
    let sign = get v (v.width - 1) in
    if v.width > 63 then
      for i = 62 to v.width - 2 do
        if get v i <> sign then
          raise (Invalid_bitvec "to_signed_int: value does not fit in int")
      done;
    let n = ref (if sign then -1 else 0) in
    for i = min (v.width - 1) 62 - 1 downto 0 do
      n := (!n lsl 1) lor (if get v i then 1 else 0)
    done;
    !n
  end

let to_int64 v =
  let n = ref 0L in
  for i = min v.width 64 - 1 downto 0 do
    n := Int64.logor (Int64.shift_left !n 1) (if get v i then 1L else 0L)
  done;
  !n

let to_binary_string v =
  String.init v.width (fun i -> if get v (v.width - 1 - i) then '1' else '0')

let to_hex_string v =
  let ndigits = (v.width + 3) / 4 in
  String.init ndigits (fun i ->
      let d = ndigits - 1 - i in
      let value = ref 0 in
      for k = 3 downto 0 do
        let bit = (d * 4) + k in
        value := (!value lsl 1) lor (if bit < v.width && get v bit then 1 else 0)
      done;
      "0123456789abcdef".[!value])

let is_zero v = Array.for_all (fun l -> l = 0) v.limbs

let is_ones v =
  let n = Array.length v.limbs in
  let ok = ref true in
  for i = 0 to n - 2 do
    if v.limbs.(i) <> limb_mask then ok := false
  done;
  !ok && v.limbs.(n - 1) = top_mask v.width

let popcount v =
  let count_limb l =
    let rec go l acc = if l = 0 then acc else go (l lsr 1) (acc + (l land 1)) in
    go l 0
  in
  Array.fold_left (fun acc l -> acc + count_limb l) 0 v.limbs

let msb v = get v (v.width - 1)
let lsb v = get v 0

let slice v ~hi ~lo =
  if lo < 0 || hi >= v.width || hi < lo then
    invalid_arg
      (Printf.sprintf "Bitvec.slice: [%d:%d] of width %d" hi lo v.width);
  init (hi - lo + 1) (fun i -> get v (lo + i))

let concat hi lo =
  init (hi.width + lo.width) (fun i ->
      if i < lo.width then get lo i else get hi (i - lo.width))

let concat_list = function
  | [] -> raise (Invalid_bitvec "concat_list: empty list")
  | v :: rest -> List.fold_left (fun acc x -> concat acc x) v rest

let repeat v n =
  if n < 1 then raise (Invalid_bitvec "repeat: count must be >= 1");
  init (v.width * n) (fun i -> get v (i mod v.width))

let transpose rows =
  let n = Array.length rows in
  if n = 0 then raise (Invalid_bitvec "transpose: empty array");
  let w = rows.(0).width in
  Array.iter
    (fun r ->
      if r.width <> w then
        raise
          (Width_mismatch
             (Printf.sprintf "transpose: row widths %d and %d" w r.width)))
    rows;
  Array.init w (fun i -> init n (fun j -> get rows.(j) i))

let set_slice v ~lo field =
  if lo < 0 || lo + field.width > v.width then
    invalid_arg
      (Printf.sprintf "Bitvec.set_slice: [%d+%d] of width %d" lo field.width
         v.width);
  init v.width (fun i ->
      if i >= lo && i < lo + field.width then get field (i - lo) else get v i)

let zero_extend v w =
  if w < v.width then invalid_arg "Bitvec.zero_extend: narrower target";
  init w (fun i -> i < v.width && get v i)

let sign_extend v w =
  if w < v.width then invalid_arg "Bitvec.sign_extend: narrower target";
  let s = msb v in
  init w (fun i -> if i < v.width then get v i else s)

let truncate v w =
  if w > v.width then invalid_arg "Bitvec.truncate: wider target";
  init w (fun i -> get v i)

let resize ~signed v w =
  if w = v.width then v
  else if w < v.width then truncate v w
  else if signed then sign_extend v w
  else zero_extend v w

let check_same_width op a b =
  if a.width <> b.width then
    raise
      (Width_mismatch
         (Printf.sprintf "%s: widths %d and %d" op a.width b.width))

let map2 op name a b =
  check_same_width name a b;
  let limbs = Array.init (Array.length a.limbs) (fun i -> op a.limbs.(i) b.limbs.(i)) in
  normalize { width = a.width; limbs }

let logand a b = map2 ( land ) "logand" a b
let logor a b = map2 ( lor ) "logor" a b
let logxor a b = map2 ( lxor ) "logxor" a b

let lognot a =
  let limbs = Array.map (fun l -> lnot l land limb_mask) a.limbs in
  normalize { width = a.width; limbs }

let reduce_and = is_ones
let reduce_or v = not (is_zero v)
let reduce_xor v = popcount v land 1 = 1

let shift_left v n =
  if n < 0 then invalid_arg "Bitvec.shift_left: negative shift";
  init v.width (fun i -> i >= n && get v (i - n))

let shift_right_logical v n =
  if n < 0 then invalid_arg "Bitvec.shift_right_logical: negative shift";
  init v.width (fun i -> i + n < v.width && get v (i + n))

let shift_right_arith v n =
  if n < 0 then invalid_arg "Bitvec.shift_right_arith: negative shift";
  let s = msb v in
  init v.width (fun i -> if i + n < v.width then get v (i + n) else s)

let add a b =
  check_same_width "add" a b;
  let n = Array.length a.limbs in
  let limbs = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = a.limbs.(i) + b.limbs.(i) + !carry in
    limbs.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize { width = a.width; limbs }

let lognot' = lognot

let neg a = add (lognot' a) (of_int ~width:a.width 1)

let sub a b =
  check_same_width "sub" a b;
  add a (neg b)

let succ a = add a (of_int ~width:a.width 1)
let pred a = sub a (of_int ~width:a.width 1)

let mul_full a b =
  let w = a.width + b.width in
  let n = nlimbs w in
  let acc = Array.make n 0 in
  let na = Array.length a.limbs and nb = Array.length b.limbs in
  for i = 0 to na - 1 do
    let carry = ref 0 in
    for j = 0 to nb - 1 do
      if i + j < n then begin
        let p = (a.limbs.(i) * b.limbs.(j)) + acc.(i + j) + !carry in
        acc.(i + j) <- p land limb_mask;
        carry := p lsr limb_bits
      end
    done;
    let k = ref (i + nb) in
    while !carry <> 0 && !k < n do
      let s = acc.(!k) + !carry in
      acc.(!k) <- s land limb_mask;
      carry := s lsr limb_bits;
      incr k
    done
  done;
  normalize { width = w; limbs = acc }

let mul a b =
  check_same_width "mul" a b;
  truncate (mul_full a b) a.width

let compare_unsigned a b =
  check_same_width "compare_unsigned" a b;
  let rec go i =
    if i < 0 then 0
    else if a.limbs.(i) <> b.limbs.(i) then compare a.limbs.(i) b.limbs.(i)
    else go (i - 1)
  in
  go (Array.length a.limbs - 1)

let compare_signed a b =
  check_same_width "compare_signed" a b;
  match (msb a, msb b) with
  | true, false -> -1
  | false, true -> 1
  | _ -> compare_unsigned a b

let equal a b = a.width = b.width && a.limbs = b.limbs
let ult a b = compare_unsigned a b < 0
let ule a b = compare_unsigned a b <= 0
let ugt a b = compare_unsigned a b > 0
let uge a b = compare_unsigned a b >= 0
let slt a b = compare_signed a b < 0
let sle a b = compare_signed a b <= 0

(* Long division on bit vectors: restoring algorithm, MSB first. *)
let divmod a b =
  check_same_width "udiv" a b;
  if is_zero b then raise Division_by_zero;
  let w = a.width in
  let q = ref (zero w) and r = ref (zero w) in
  for i = w - 1 downto 0 do
    r := shift_left !r 1;
    if get a i then r := set_bit !r 0 true;
    if uge !r b then begin
      r := sub !r b;
      q := set_bit !q i true
    end
  done;
  (!q, !r)

let udiv a b = fst (divmod a b)
let umod a b = snd (divmod a b)

let to_string v = Printf.sprintf "%d'h%s" v.width (to_hex_string v)
let pp fmt v = Format.pp_print_string fmt (to_string v)
let hash v = Hashtbl.hash (v.width, v.limbs)

module Logic = struct
  type t = L0 | L1 | X | Z

  let equal (a : t) (b : t) = a = b
  let compare (a : t) (b : t) = compare a b
  let of_bool b = if b then L1 else L0

  let to_bool = function L0 -> Some false | L1 -> Some true | X | Z -> None

  let to_char = function L0 -> '0' | L1 -> '1' | X -> 'x' | Z -> 'z'

  let of_char = function
    | '0' -> L0
    | '1' -> L1
    | 'x' | 'X' -> X
    | 'z' | 'Z' -> Z
    | c -> invalid_arg (Printf.sprintf "Logic.of_char: %c" c)

  let pp fmt v = Format.pp_print_char fmt (to_char v)

  let and_ a b =
    match (a, b) with
    | L0, _ | _, L0 -> L0
    | L1, L1 -> L1
    | (X | Z | L1), (X | Z | L1) -> X

  let or_ a b =
    match (a, b) with
    | L1, _ | _, L1 -> L1
    | L0, L0 -> L0
    | (X | Z | L0), (X | Z | L0) -> X

  let xor a b =
    match (a, b) with
    | L0, L0 | L1, L1 -> L0
    | L0, L1 | L1, L0 -> L1
    | (X | Z), _ | _, (X | Z) -> X

  let not_ = function L0 -> L1 | L1 -> L0 | X | Z -> X

  let mux ~sel a b =
    match sel with
    | L1 -> a
    | L0 -> b
    | X | Z -> if equal a b && (a = L0 || a = L1) then a else X

  let resolve a b =
    match (a, b) with
    | Z, v | v, Z -> v
    | L0, L0 -> L0
    | L1, L1 -> L1
    | _, _ -> X

  let resolve_wired_and a b =
    (* Open drain with pull-up: drivers only ever pull low or release. *)
    let strength = function L0 -> L0 | L1 | Z -> L1 | X -> X in
    match (strength a, strength b) with
    | L0, _ | _, L0 -> L0
    | X, _ | _, X -> X
    | _, _ -> L1
end
