(** Waveform tracing for the RTL interpreter — the [sc_trace] facility
    of the paper's §9 at the RTL stage.  Register variables, ports or
    computed lenses, then call {!sample} after every simulated cycle
    (or use {!step}); the result is a standard VCD document with one
    timestamp per clock cycle. *)

type t

val create : Rtl_sim.t -> ?top:string -> unit -> t

val var : t -> ?name:string -> Ir.var -> unit
(** Trace an internal variable (its IR name by default). *)

val port : t -> string -> unit
(** Trace a port by name. *)

val lens : t -> name:string -> width:int -> (Rtl_sim.t -> Bitvec.t) -> unit
(** Trace a computed value — used for object field decomposition. *)

val sample : t -> unit
(** Record the current values at the simulator's cycle count. *)

val step : t -> unit
(** [Rtl_sim.step] followed by {!sample}. *)

val run : t -> int -> unit

val contents : t -> string
val save : t -> string -> unit
val signal_count : t -> int
