type var = { id : int; var_name : string; width : int; depth : int }

(* Atomic: designs are elaborated inside parallel campaign shards
   (Par pool domains), and a torn gensym would alias distinct vars. *)
let var_counter = Atomic.make 0

let fresh_var ?(depth = 1) ~name ~width () =
  if width < 1 then invalid_arg "Ir.fresh_var: width must be >= 1";
  if depth < 1 then invalid_arg "Ir.fresh_var: depth must be >= 1";
  { id = Atomic.fetch_and_add var_counter 1 + 1; var_name = name; width; depth }

let clone_var ~prefix v =
  fresh_var ~depth:v.depth ~name:(prefix ^ v.var_name) ~width:v.width ()

let is_array v = v.depth > 1

type unop = Not | Neg | Reduce_and | Reduce_or | Reduce_xor

type binop =
  | Add
  | Sub
  | Mul
  | And
  | Or
  | Xor
  | Eq
  | Ne
  | Ult
  | Ule
  | Slt
  | Sle
  | Shl
  | Lshr
  | Ashr

type expr =
  | Const of Bitvec.t
  | Var of var
  | Array_read of var * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Mux of expr * expr * expr
  | Slice of expr * int * int
  | Concat of expr * expr
  | Resize of bool * expr * int

type stmt =
  | Assign of var * expr
  | Assign_slice of var * int * expr
  | Array_write of var * expr * expr
  | If of expr * stmt list * stmt list
  | Case of expr * (Bitvec.t * stmt list) list * stmt list

type process =
  | Comb of { proc_name : string; body : stmt list }
  | Sync of { proc_name : string; body : stmt list }

type port_dir = Input | Output
type port = { port_name : string; dir : port_dir; port_var : var }

type instance = {
  inst_name : string;
  inst_of : module_def;
  port_map : (string * var) list;
}

and module_def = {
  mod_name : string;
  ports : port list;
  locals : var list;
  processes : process list;
  instances : instance list;
}

exception Type_error of string

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let rec width_of = function
  | Const c -> Bitvec.width c
  | Var v ->
      if is_array v then type_error "array %s used as scalar" v.var_name;
      v.width
  | Array_read (v, idx) ->
      if not (is_array v) then
        type_error "scalar %s indexed as array" v.var_name;
      ignore (width_of idx);
      v.width
  | Unop ((Reduce_and | Reduce_or | Reduce_xor), e) ->
      ignore (width_of e);
      1
  | Unop ((Not | Neg), e) -> width_of e
  | Binop ((Add | Sub | Mul | And | Or | Xor), a, b) ->
      let wa = width_of a and wb = width_of b in
      if wa <> wb then type_error "binop operand widths %d vs %d" wa wb;
      wa
  | Binop ((Eq | Ne | Ult | Ule | Slt | Sle), a, b) ->
      let wa = width_of a and wb = width_of b in
      if wa <> wb then type_error "comparison operand widths %d vs %d" wa wb;
      1
  | Binop ((Shl | Lshr | Ashr), a, b) ->
      ignore (width_of b);
      width_of a
  | Mux (sel, t, e) ->
      if width_of sel <> 1 then type_error "mux select must be 1 bit";
      let wt = width_of t and we = width_of e in
      if wt <> we then type_error "mux arm widths %d vs %d" wt we;
      wt
  | Slice (e, hi, lo) ->
      let w = width_of e in
      if lo < 0 || hi >= w || hi < lo then
        type_error "slice [%d:%d] of width %d" hi lo w;
      hi - lo + 1
  | Concat (a, b) -> width_of a + width_of b
  | Resize (_, e, w) ->
      ignore (width_of e);
      if w < 1 then type_error "resize to width %d" w;
      w

let rec expr_reads = function
  | Const _ -> []
  | Var v -> [ v ]
  | Array_read (v, idx) -> v :: expr_reads idx
  | Unop (_, e) | Resize (_, e, _) | Slice (e, _, _) -> expr_reads e
  | Binop (_, a, b) | Concat (a, b) -> expr_reads a @ expr_reads b
  | Mux (s, a, b) -> expr_reads s @ expr_reads a @ expr_reads b

let rec stmt_reads = function
  | Assign (_, e) | Assign_slice (_, _, e) -> expr_reads e
  | Array_write (_, idx, e) -> expr_reads idx @ expr_reads e
  | If (c, t, e) -> expr_reads c @ body_reads t @ body_reads e
  | Case (s, arms, dflt) ->
      expr_reads s
      @ List.concat_map (fun (_, b) -> body_reads b) arms
      @ body_reads dflt

and body_reads body = List.concat_map stmt_reads body

module Int_set = Set.Make (Int)

let body_inputs stmts =
  (* Variables whose value on entry the body can observe: read before
     being definitely assigned, plus read-modify-write targets
     ([Assign_slice] keeps the untouched bits, [Array_write] keeps the
     other elements).  A variable assigned in only some branches of a
     conditional still counts as an input, since the untaken path leaves
     the entry value visible.  This is the sequential refinement of
     {!body_reads} that the activity-based RTL scheduler needs. *)
  let inputs = Hashtbl.create 16 in
  let order = ref [] in
  let use defined (v : var) =
    if (not (Int_set.mem v.id defined)) && not (Hashtbl.mem inputs v.id) then begin
      Hashtbl.replace inputs v.id ();
      order := v :: !order
    end
  in
  let rec stmt defined = function
    | Assign (v, e) ->
        List.iter (use defined) (expr_reads e);
        Int_set.add v.id defined
    | Assign_slice (v, _, e) ->
        List.iter (use defined) (expr_reads e);
        use defined v;
        Int_set.add v.id defined
    | Array_write (v, idx, e) ->
        List.iter (use defined) (expr_reads idx);
        List.iter (use defined) (expr_reads e);
        use defined v;
        Int_set.add v.id defined
    | If (c, t, e) ->
        List.iter (use defined) (expr_reads c);
        Int_set.inter (body defined t) (body defined e)
    | Case (s, arms, dflt) ->
        List.iter (use defined) (expr_reads s);
        List.fold_left
          (fun acc (_, b) -> Int_set.inter acc (body defined b))
          (body defined dflt) arms
  and body defined = List.fold_left stmt defined in
  ignore (body Int_set.empty stmts);
  List.rev !order

let rec stmt_writes = function
  | Assign (v, _) | Assign_slice (v, _, _) | Array_write (v, _, _) -> [ v ]
  | If (_, t, e) -> body_writes t @ body_writes e
  | Case (_, arms, dflt) ->
      List.concat_map (fun (_, b) -> body_writes b) arms @ body_writes dflt

and body_writes body = List.concat_map stmt_writes body

let find_port m name =
  List.find (fun p -> p.port_name = name) m.ports

let proc_body = function Comb { body; _ } -> body | Sync { body; _ } -> body
let proc_name = function
  | Comb { proc_name; _ } -> proc_name
  | Sync { proc_name; _ } -> proc_name

type var_kind = Kreg | Kwire | Kinput

let classify_vars m =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun p -> if p.dir = Input then Hashtbl.replace tbl p.port_var.id Kinput)
    m.ports;
  List.iter
    (fun proc ->
      let kind = match proc with Comb _ -> Kwire | Sync _ -> Kreg in
      List.iter
        (fun v ->
          match Hashtbl.find_opt tbl v.id with
          | None -> Hashtbl.replace tbl v.id kind
          | Some k when k = kind -> ()
          | Some Kinput ->
              type_error "input %s driven by process %s" v.var_name
                (proc_name proc)
          | Some _ ->
              type_error "%s driven by both comb and sync logic" v.var_name)
        (body_writes (proc_body proc)))
    m.processes;
  tbl

let rec check_stmt st =
  match st with
  | Assign (v, e) ->
      if is_array v then type_error "array %s assigned as scalar" v.var_name;
      let w = width_of e in
      if w <> v.width then
        type_error "assign %s: width %d into %d" v.var_name w v.width
  | Assign_slice (v, lo, e) ->
      if is_array v then type_error "array %s assigned as scalar" v.var_name;
      let w = width_of e in
      if lo < 0 || lo + w > v.width then
        type_error "assign slice %s[%d+:%d] of width %d" v.var_name lo w
          v.width
  | Array_write (v, idx, e) ->
      if not (is_array v) then
        type_error "scalar %s written as array" v.var_name;
      ignore (width_of idx);
      let w = width_of e in
      if w <> v.width then
        type_error "array write %s: width %d into %d" v.var_name w v.width
  | If (c, t, e) ->
      if width_of c <> 1 then type_error "if condition must be 1 bit";
      List.iter check_stmt t;
      List.iter check_stmt e
  | Case (s, arms, dflt) ->
      let w = width_of s in
      List.iter
        (fun (label, body) ->
          if Bitvec.width label <> w then
            type_error "case label width %d vs scrutinee %d"
              (Bitvec.width label) w;
          List.iter check_stmt body)
        arms;
      List.iter check_stmt dflt

let check_module m =
  (* Port variables must appear exactly once and be scalars for now
     (array ports are not needed by any design here). *)
  List.iter
    (fun p ->
      if is_array p.port_var then
        type_error "array port %s not supported" p.port_name)
    m.ports;
  List.iter
    (fun proc -> List.iter check_stmt (proc_body proc))
    m.processes;
  ignore (classify_vars m);
  (* Instances: every formal must be mapped, with matching width. *)
  List.iter
    (fun inst ->
      List.iter
        (fun fp ->
          match List.assoc_opt fp.port_name inst.port_map with
          | None ->
              type_error "instance %s: port %s not connected" inst.inst_name
                fp.port_name
          | Some actual ->
              if actual.width <> fp.port_var.width then
                type_error "instance %s: port %s width %d vs actual %d"
                  inst.inst_name fp.port_name fp.port_var.width actual.width)
        inst.inst_of.ports)
    m.instances

type stats = {
  n_processes : int;
  n_statements : int;
  n_expr_nodes : int;
  n_locals : int;
  n_state_bits : int;
  n_instances : int;
}

let rec expr_nodes = function
  | Const _ | Var _ -> 1
  | Array_read (_, e) | Unop (_, e) | Resize (_, e, _) | Slice (e, _, _) ->
      1 + expr_nodes e
  | Binop (_, a, b) | Concat (a, b) -> 1 + expr_nodes a + expr_nodes b
  | Mux (s, a, b) -> 1 + expr_nodes s + expr_nodes a + expr_nodes b

let rec stmt_size st =
  match st with
  | Assign (_, e) | Assign_slice (_, _, e) -> (1, expr_nodes e)
  | Array_write (_, i, e) -> (1, expr_nodes i + expr_nodes e)
  | If (c, t, e) ->
      let st_t, ex_t = body_size t and st_e, ex_e = body_size e in
      (1 + st_t + st_e, expr_nodes c + ex_t + ex_e)
  | Case (s, arms, dflt) ->
      let sizes = List.map (fun (_, b) -> body_size b) arms in
      let st_a = List.fold_left (fun acc (s, _) -> acc + s) 0 sizes in
      let ex_a = List.fold_left (fun acc (_, e) -> acc + e) 0 sizes in
      let st_d, ex_d = body_size dflt in
      (1 + st_a + st_d, expr_nodes s + ex_a + ex_d)

and body_size body =
  List.fold_left
    (fun (s, e) st ->
      let s', e' = stmt_size st in
      (s + s', e + e'))
    (0, 0) body

let module_stats m =
  let kinds = classify_vars m in
  let n_state_bits =
    Hashtbl.fold
      (fun id kind acc ->
        match kind with
        | Kreg ->
            let v =
              List.find_opt (fun v -> v.id = id)
                (m.locals @ List.map (fun p -> p.port_var) m.ports)
            in
            let bits =
              match v with Some v -> v.width * v.depth | None -> 0
            in
            acc + bits
        | Kwire | Kinput -> acc)
      kinds 0
  in
  let n_statements, n_expr_nodes =
    List.fold_left
      (fun (s, e) proc ->
        let s', e' = body_size (proc_body proc) in
        (s + s', e + e'))
      (0, 0) m.processes
  in
  {
    n_processes = List.length m.processes;
    n_statements;
    n_expr_nodes;
    n_locals = List.length m.locals;
    n_state_bits;
    n_instances = List.length m.instances;
  }

(* -------------------------------------------------------------------- *)
(* Pretty printing                                                      *)

let unop_str = function
  | Not -> "~"
  | Neg -> "-"
  | Reduce_and -> "&"
  | Reduce_or -> "|"
  | Reduce_xor -> "^"

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Eq -> "=="
  | Ne -> "!="
  | Ult -> "<"
  | Ule -> "<="
  | Slt -> "<s"
  | Sle -> "<=s"
  | Shl -> "<<"
  | Lshr -> ">>"
  | Ashr -> ">>>"

let rec pp_expr fmt = function
  | Const c -> Bitvec.pp fmt c
  | Var v -> Format.pp_print_string fmt v.var_name
  | Array_read (v, idx) ->
      Format.fprintf fmt "%s[%a]" v.var_name pp_expr idx
  | Unop (op, e) -> Format.fprintf fmt "(%s%a)" (unop_str op) pp_expr e
  | Binop (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Mux (s, t, e) ->
      Format.fprintf fmt "(%a ? %a : %a)" pp_expr s pp_expr t pp_expr e
  | Slice (e, hi, lo) -> Format.fprintf fmt "%a[%d:%d]" pp_expr e hi lo
  | Concat (a, b) -> Format.fprintf fmt "{%a, %a}" pp_expr a pp_expr b
  | Resize (signed, e, w) ->
      Format.fprintf fmt "%s(%a, %d)"
        (if signed then "sext" else "zext")
        pp_expr e w

let rec pp_stmt fmt = function
  | Assign (v, e) -> Format.fprintf fmt "%s = %a;" v.var_name pp_expr e
  | Assign_slice (v, lo, e) ->
      Format.fprintf fmt "%s[%d+:] = %a;" v.var_name lo pp_expr e
  | Array_write (v, idx, e) ->
      Format.fprintf fmt "%s[%a] = %a;" v.var_name pp_expr idx pp_expr e
  | If (c, t, e) ->
      Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_body t;
      if e <> [] then Format.fprintf fmt "@[<v 2> else {@,%a@]@,}" pp_body e
  | Case (s, arms, dflt) ->
      Format.fprintf fmt "@[<v 2>case (%a) {@," pp_expr s;
      List.iter
        (fun (label, body) ->
          Format.fprintf fmt "@[<v 2>%a: {@,%a@]@,}@," Bitvec.pp label pp_body
            body)
        arms;
      Format.fprintf fmt "@[<v 2>default: {@,%a@]@,}@]@,}" pp_body dflt

and pp_body fmt body =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt fmt body

(* -------------------------------------------------------------------- *)
(* Structural hashing                                                   *)

(* A digest of the module body with variable ids canonically renumbered
   by first occurrence: [fresh_var] hands out globally unique ids, so
   two structurally identical modules built at different times would
   never compare equal on raw ids.  The digest is the lowering
   memo-cache key, so it must cover everything lowering looks at —
   ports (names, directions, shapes), locals, process kinds/names and
   bodies in order, and instances recursively. *)
let rec structural_hash (m : module_def) =
  let buf = Buffer.create 1024 in
  let ids = Hashtbl.create 64 in
  let canon (v : var) =
    match Hashtbl.find_opt ids v.id with
    | Some k -> k
    | None ->
        let k = Hashtbl.length ids in
        Hashtbl.replace ids v.id k;
        k
  in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let add_var v = add "v%d:%s:%d:%d;" (canon v) v.var_name v.width v.depth in
  let add_bv bv =
    add "#%d'" (Bitvec.width bv);
    for i = Bitvec.width bv - 1 downto 0 do
      Buffer.add_char buf (if Bitvec.get bv i then '1' else '0')
    done
  in
  let rec add_expr = function
    | Const c ->
        add "C(";
        add_bv c;
        add ")"
    | Var v ->
        add "V(";
        add_var v;
        add ")"
    | Array_read (v, i) ->
        add "AR(";
        add_var v;
        add_expr i;
        add ")"
    | Unop (op, e) ->
        add "U%s(" (unop_str op);
        add_expr e;
        add ")"
    | Binop (op, a, b) ->
        add "B%s(" (binop_str op);
        add_expr a;
        add ",";
        add_expr b;
        add ")"
    | Mux (s, a, b) ->
        add "M(";
        add_expr s;
        add_expr a;
        add_expr b;
        add ")"
    | Slice (e, hi, lo) ->
        add "S%d:%d(" hi lo;
        add_expr e;
        add ")"
    | Concat (a, b) ->
        add "K(";
        add_expr a;
        add_expr b;
        add ")"
    | Resize (sg, e, w) ->
        add "R%b%d(" sg w;
        add_expr e;
        add ")"
  in
  let rec add_stmt = function
    | Assign (v, e) ->
        add "=(";
        add_var v;
        add_expr e;
        add ")"
    | Assign_slice (v, lo, e) ->
        add "=s%d(" lo;
        add_var v;
        add_expr e;
        add ")"
    | Array_write (v, i, e) ->
        add "=a(";
        add_var v;
        add_expr i;
        add_expr e;
        add ")"
    | If (c, t, e) ->
        add "if(";
        add_expr c;
        add "){";
        List.iter add_stmt t;
        add "}{";
        List.iter add_stmt e;
        add "}"
    | Case (s, arms, dflt) ->
        add "case(";
        add_expr s;
        add ")";
        List.iter
          (fun (l, b) ->
            add "[";
            add_bv l;
            add ":";
            List.iter add_stmt b;
            add "]")
          arms;
        add "[d:";
        List.iter add_stmt dflt;
        add "]"
  in
  add "module:%s{" m.mod_name;
  List.iter
    (fun p ->
      add "port:%s:%s;" p.port_name
        (match p.dir with Input -> "i" | Output -> "o");
      add_var p.port_var)
    m.ports;
  List.iter add_var m.locals;
  List.iter
    (fun proc ->
      (match proc with
      | Comb { proc_name; body } ->
          add "comb:%s{" proc_name;
          List.iter add_stmt body
      | Sync { proc_name; body } ->
          add "sync:%s{" proc_name;
          List.iter add_stmt body);
      add "}")
    m.processes;
  List.iter
    (fun inst ->
      (* Each child hashes in its own canonical numbering; the port map
         ties its formals back into this module's numbering. *)
      add "inst:%s:%s{" inst.inst_name (structural_hash inst.inst_of);
      List.iter
        (fun (f, actual) ->
          add "%s->" f;
          add_var actual)
        inst.port_map;
      add "}")
    m.instances;
  add "}";
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp_module fmt m =
  Format.fprintf fmt "@[<v 2>module %s {@," m.mod_name;
  List.iter
    (fun p ->
      Format.fprintf fmt "%s %s : %d;@,"
        (match p.dir with Input -> "input" | Output -> "output")
        p.port_name p.port_var.width)
    m.ports;
  List.iter
    (fun v ->
      if is_array v then
        Format.fprintf fmt "var %s : %d[%d];@," v.var_name v.width v.depth
      else Format.fprintf fmt "var %s : %d;@," v.var_name v.width)
    m.locals;
  List.iter
    (fun inst ->
      Format.fprintf fmt "instance %s : %s;@," inst.inst_name
        inst.inst_of.mod_name)
    m.instances;
  List.iter
    (fun proc ->
      let kind = match proc with Comb _ -> "comb" | Sync _ -> "sync" in
      Format.fprintf fmt "@[<v 2>%s %s {@,%a@]@,}@," kind (proc_name proc)
        pp_body (proc_body proc))
    m.processes;
  Format.fprintf fmt "@]@,}"
