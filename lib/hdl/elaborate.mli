(** Hierarchy elaboration: inline every instance transitively, producing
    a single flat module.  Child locals are renamed
    ["<instance>.<name>"]; child ports are substituted by the actual
    variables of the parent.  The result passes {!Ir.check_module}. *)

val flatten : Ir.module_def -> Ir.module_def

val subst_expr : (int, Ir.var) Hashtbl.t -> Ir.expr -> Ir.expr
val subst_stmt : (int, Ir.var) Hashtbl.t -> Ir.stmt -> Ir.stmt
(** Variable substitution, exposed for the OSSS resolution pass. *)

val hierarchy : Ir.module_def -> (string * string * int) list
(** [(path, module name, depth)] rows of the instance tree, root first —
    the data behind the paper's Figure 12 top-level structure view. *)
