(** Concrete evaluation of IR expressions and statement bodies over a
    mutable environment.  Shared by the RTL simulator and by unit tests
    that compare IR semantics against the netlist back end. *)

type env

val create : unit -> env

val set : env -> Ir.var -> Bitvec.t -> unit
val get : env -> Ir.var -> Bitvec.t
(** Unset variables read as zero of the variable's width. *)

val set_array_elem : env -> Ir.var -> int -> Bitvec.t -> unit
val get_array : env -> Ir.var -> Bitvec.t array
(** The backing store (shared, not a copy). *)

val copy : env -> env
(** Deep copy, arrays included. *)

val overwrite : env -> env -> unit
(** [overwrite dst src] replaces the contents of [dst] in place with a
    deep copy of [src] (which is left untouched) — the restore half of
    checkpointing: [dst] keeps its identity but reads like [src]. *)

val snapshot : env -> Ir.var list -> env
(** [snapshot env vars] is a fresh environment holding copies of just
    [vars] (arrays deep-copied).  Vars unbound in [env] stay unbound and
    read back as zero, like in [env] itself. *)

val eval_expr : env -> Ir.expr -> Bitvec.t

val run_body : env -> Ir.stmt list -> unit
(** Executes statements sequentially with immediate-assignment
    semantics, mutating [env]. *)
