type channel = {
  ch_id : Vcd_writer.id;
  ch_width : int;
  read : Rtl_sim.t -> Bitvec.t;
  mutable last : Bitvec.t option;
}

type t = {
  sim : Rtl_sim.t;
  doc : Vcd_writer.t;
  mutable channels : channel list;  (* reverse registration order *)
}

let create sim ?(top = "rtl") () =
  {
    sim;
    doc =
      Vcd_writer.create ~date:"osss rtl simulation"
        ~version:"osss-ocaml rtl_trace" ~timescale:"1ns" ~top ();
    channels = [];
  }

let lens t ~name ~width read =
  let ch_id = Vcd_writer.register t.doc ~name ~width () in
  t.channels <- { ch_id; ch_width = width; read; last = None } :: t.channels

let var t ?name (v : Ir.var) =
  let name = Option.value ~default:v.Ir.var_name name in
  lens t ~name ~width:v.Ir.width (fun sim -> Rtl_sim.peek_var sim v)

let port t name =
  let width = Bitvec.width (Rtl_sim.get t.sim name) in
  lens t ~name ~width (fun sim -> Rtl_sim.get sim name)

let sample t =
  let time = Rtl_sim.cycles t.sim in
  List.iter
    (fun ch ->
      let value = ch.read t.sim in
      match ch.last with
      | Some previous when Bitvec.equal previous value -> ()
      | Some _ | None ->
          ch.last <- Some value;
          Vcd_writer.change_bv t.doc ~time ch.ch_id value)
    (List.rev t.channels)

let step t =
  Rtl_sim.step t.sim;
  sample t

let run t n =
  for _ = 1 to n do
    step t
  done

let signal_count t = List.length t.channels
let contents t = Vcd_writer.contents t.doc
let save t path = Vcd_writer.save t.doc path
