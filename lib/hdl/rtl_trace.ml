type channel = {
  ch_id : string;
  ch_name : string;
  ch_width : int;
  read : Rtl_sim.t -> Bitvec.t;
  mutable last : Bitvec.t option;
}

type t = {
  sim : Rtl_sim.t;
  top : string;
  mutable channels : channel list;  (* reverse registration order *)
  mutable next_id : int;
  changes : Buffer.t;
  mutable last_cycle : int;
}

let create sim ?(top = "rtl") () =
  {
    sim;
    top;
    channels = [];
    next_id = 0;
    changes = Buffer.create 4096;
    last_cycle = -1;
  }

let fresh_id t =
  let n = t.next_id in
  t.next_id <- n + 1;
  let base = 94 and first = 33 in
  let rec build n acc =
    let c = Char.chr (first + (n mod base)) in
    let acc = String.make 1 c ^ acc in
    if n < base then acc else build ((n / base) - 1) acc
  in
  build n ""

let lens t ~name ~width read =
  t.channels <-
    { ch_id = fresh_id t; ch_name = name; ch_width = width; read; last = None }
    :: t.channels

let var t ?name (v : Ir.var) =
  let name = Option.value ~default:v.Ir.var_name name in
  lens t ~name ~width:v.Ir.width (fun sim -> Rtl_sim.peek_var sim v)

let port t name =
  let width = Bitvec.width (Rtl_sim.get t.sim name) in
  lens t ~name ~width (fun sim -> Rtl_sim.get sim name)

let emit t ch value =
  let cycle = Rtl_sim.cycles t.sim in
  if cycle <> t.last_cycle then begin
    Buffer.add_string t.changes (Printf.sprintf "#%d\n" cycle);
    t.last_cycle <- cycle
  end;
  if ch.ch_width = 1 then
    Buffer.add_string t.changes
      ((if Bitvec.lsb value then "1" else "0") ^ ch.ch_id ^ "\n")
  else
    Buffer.add_string t.changes
      (Printf.sprintf "b%s %s\n" (Bitvec.to_binary_string value) ch.ch_id)

let sample t =
  List.iter
    (fun ch ->
      let value = ch.read t.sim in
      match ch.last with
      | Some previous when Bitvec.equal previous value -> ()
      | Some _ | None ->
          ch.last <- Some value;
          emit t ch value)
    (List.rev t.channels)

let step t =
  Rtl_sim.step t.sim;
  sample t

let run t n =
  for _ = 1 to n do
    step t
  done

let signal_count t = List.length t.channels

let contents t =
  let b = Buffer.create (Buffer.length t.changes + 1024) in
  Buffer.add_string b "$date\n  osss rtl simulation\n$end\n";
  Buffer.add_string b "$version\n  osss-ocaml rtl_trace\n$end\n";
  Buffer.add_string b "$timescale 1ns $end\n";
  Buffer.add_string b (Printf.sprintf "$scope module %s $end\n" t.top);
  List.iter
    (fun ch ->
      Buffer.add_string b
        (Printf.sprintf "$var wire %d %s %s $end\n" ch.ch_width ch.ch_id
           ch.ch_name))
    (List.rev t.channels);
  Buffer.add_string b "$upscope $end\n$enddefinitions $end\n";
  Buffer.add_buffer b t.changes;
  Buffer.contents b

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (contents t))
