(** {!Engine} adapter for the RTL interpreter ({!Rtl_sim}).

    [kind] is ["rtl-interp"]; ports come from the (flattened) design,
    [stats] exposes the interpreter's activity counters. *)

val of_sim : ?label:string -> Rtl_sim.t -> Engine.t
val create : ?label:string -> Ir.module_def -> Engine.t
