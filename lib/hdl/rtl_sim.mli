(** Cycle-accurate interpreter for IR modules — the "RTL simulation"
    level of the flow.  The design is flattened on creation.

    Per {!step}: combinational processes settle to a fixpoint, then all
    synchronous processes execute against the same pre-edge snapshot
    (sequential visibility inside each process), their register writes
    commit, and combinational logic settles again. *)

type t

exception Combinational_loop of string

val create : Ir.module_def -> t

val set_input : t -> string -> Bitvec.t -> unit
(** Raises [Not_found] for unknown ports, [Invalid_argument] on width
    mismatch or non-input ports. *)

val set_input_int : t -> string -> int -> unit
val get : t -> string -> Bitvec.t
(** Value of any port by name. *)

val get_int : t -> string -> int
val peek_var : t -> Ir.var -> Bitvec.t
(** Value of an internal variable (post-flatten name resolution is the
    caller's concern; variables keep their identity through builder
    construction). *)

val peek_array : t -> Ir.var -> Bitvec.t array

val settle : t -> unit
(** Combinational settle without a clock edge. *)

val step : t -> unit
(** One full clock cycle. *)

val run : t -> int -> unit
(** [run t n] steps [n] cycles. *)

val cycles : t -> int
val design : t -> Ir.module_def
(** The flattened design being simulated. *)
