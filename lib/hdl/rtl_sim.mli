(** Cycle-accurate interpreter for IR modules — the "RTL simulation"
    level of the flow.  The design is flattened on creation.

    Activity-based scheduling: combinational processes are ordered
    statically so writers run before readers (a cross-process cycle
    raises {!Combinational_loop} naming the offending process), and a
    settle runs only the processes whose inputs changed since the last
    settle — each at most once when the graph is acyclic.  Synchronous
    processes execute against private snapshots of just the variables
    they can observe, taken before any of them runs, so all of them see
    the same pre-edge state; their register writes then commit and
    combinational logic settles again. *)

type t

exception Combinational_loop of string

val create : Ir.module_def -> t

val set_input : t -> string -> Bitvec.t -> unit
(** Raises [Not_found] for unknown ports, [Invalid_argument] on width
    mismatch or non-input ports. *)

val set_input_int : t -> string -> int -> unit
val get : t -> string -> Bitvec.t
(** Value of any port by name. *)

val get_int : t -> string -> int
val peek_var : t -> Ir.var -> Bitvec.t
(** Value of an internal variable (post-flatten name resolution is the
    caller's concern; variables keep their identity through builder
    construction). *)

val peek_array : t -> Ir.var -> Bitvec.t array

val settle : t -> unit
(** Combinational settle without a clock edge. *)

val step : t -> unit
(** One full clock cycle. *)

val run : t -> int -> unit
(** [run t n] steps [n] cycles. *)

val cycles : t -> int
val design : t -> Ir.module_def
(** The flattened design being simulated. *)

(** {1 Activity counters}

    Per-instance equivalents of the global [Metrics.Perf] counters
    [rtl_sim.settles] / [rtl_sim.process_runs] / [rtl_sim.process_skips]. *)

val settles : t -> int
(** Number of combinational settles performed so far. *)

val comb_runs : t -> int
(** Combinational process activations actually executed. *)

val comb_skips : t -> int
(** Combinational process activations skipped because no input of the
    process had changed since its last run. *)

val sync_runs : t -> int
(** Synchronous process activations executed so far. *)

val process_activity : t -> (string * int) list
(** Activations per process (combinational evaluations plus synchronous
    runs), sorted by hierarchical process name — the raw material of the
    "hot processes" profile. *)

(** {1 Coverage and observation hooks} *)

val find_var : t -> string -> Ir.var option
(** Look up a port or local of the flattened design by hierarchical
    name ([u_i2c.slot]); use with {!peek_var}.  Arrays are found too —
    peek those with {!peek_array}. *)

val on_step : t -> (t -> unit) -> unit
(** Register a watcher called after every completed {!step} (post
    settle), in registration order — the hook FSM coverage sampling and
    attached assertion monitors use.  Costs one branch per step while
    no watcher is registered. *)

val enable_toggle_cover : t -> unit
(** Start per-bit toggle coverage over every scalar port and local of
    the flattened design (arrays/memories are not tracked).  Bits are
    named [var] or [var[i]] with hierarchical var names.  Edges are
    committed cycle-to-cycle transitions observed at each step's close;
    change detection rides the scheduler's dirty marking, so a disabled
    run pays one branch per dirty-marking.  Idempotent. *)

val toggle_cover : t -> Cover.Toggle.t option
(** The live collector, once {!enable_toggle_cover} has been called. *)

(** {1 Causal events and checkpointing} *)

val enable_events : t -> unit
(** Start emitting causal events into the global [Obs.Event] log
    (enabling it if needed): {!set_input} edges as [Stimulus], process
    activations as [Process_run] caused by the latest change among the
    variables the process observes (the dirty-set propagation), and
    committed writes as [Var_change] caused by the activation.  Costs
    one branch per candidate event while off. *)

type checkpoint

val checkpoint : t -> checkpoint
(** Deep copy of the simulation state (environment, dirty set, cycle
    count).  Coverage collectors and watchers are not captured. *)

val restore : t -> checkpoint -> unit
(** Rewind to a checkpoint taken on the same simulator; re-running the
    original stimulus afterwards is bit-identical to the original
    window. *)

val checkpoint_cycle : checkpoint -> int
