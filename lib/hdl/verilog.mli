(** Verilog emitter for IR designs.

    Produces one [module] per distinct module in the hierarchy.  All
    synchronous processes are clocked by an added [clk] input.  The
    output corresponds to the [*.v] files exchanged with the back end in
    the paper's flow (Figure 6). *)

val emit : Ir.module_def -> string
(** Full translation unit: child modules first, top last. *)

val emit_module : Ir.module_def -> string
(** A single module without its children. *)
