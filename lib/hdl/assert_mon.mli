(** Temporal assertion monitoring over RTL simulations.

    A lightweight linear-temporal checker in the spirit of PSL/SVA
    simulation assertions: properties are built from boolean samplers
    over the simulator state and checked cycle by cycle while the
    design runs.  Violations are collected with the cycle they occurred
    in; bounded obligations ([eventually_within]) that are still open
    when {!finish} is called are reported as violations too.

    Typical use: wrap a simulator, add properties, drive the design
    through {!step}/{!run} (or {!attach} the monitor when other code
    owns the stepping loop), then {!finish} and inspect {!violations}.

    Each property also counts its per-cycle verdicts — real passes,
    *vacuous* passes (an implication whose antecedent did not fire, a
    stability check with nothing changing) and failures — so assertion
    activity can feed coverage reports: a property that only ever
    passed vacuously has proven nothing.  A [prop] value accumulates
    these counters and therefore belongs to a single monitor. *)

type t
type prop

val create : Rtl_sim.t -> t

(** {1 Boolean layer} *)

type signal = Rtl_sim.t -> bool
(** A sampled condition, e.g.
    [fun sim -> Rtl_sim.get_int sim "busy" = 1]. *)

val port : string -> signal
(** [port "busy"] samples a 1-bit port. *)

val port_eq : string -> int -> signal
val ( &&& ) : signal -> signal -> signal
val ( ||| ) : signal -> signal -> signal
val neg : signal -> signal

(** {1 Temporal layer} *)

val always : ?label:string -> signal -> prop
(** Must hold every cycle. *)

val never : ?label:string -> signal -> prop

val implies_next : ?label:string -> signal -> signal -> prop
(** Whenever the antecedent holds, the consequent must hold in the
    next cycle. *)

val implies_same : ?label:string -> signal -> signal -> prop
(** Whenever the antecedent holds, the consequent holds in the same
    cycle. *)

val eventually_within : ?label:string -> signal -> int -> signal -> prop
(** [eventually_within trigger n ok]: each cycle where [trigger] holds
    opens an obligation that [ok] must hold within the next [n]
    cycles. *)

val stable_unless : ?label:string -> string -> signal -> prop
(** [stable_unless port allow]: the named port may only change value in
    cycles where [allow] holds. *)

val rose : signal -> bool ref -> signal
(** Edge helper for custom properties: [rose s prev] is true when [s]
    holds now but did not at the previous sample (last sample kept in
    [prev], which the caller initializes to [false]). *)

(** {1 Running} *)

val add : t -> prop -> unit

val step : t -> unit
(** Advance the simulator one cycle and check all properties. *)

val run : t -> int -> unit

val attach : t -> unit
(** Register the property check as an [Rtl_sim.on_step] watcher, so the
    monitor rides along when the caller drives the simulator directly
    instead of through {!step}. *)

val finish : t -> unit
(** Close the books: open [eventually_within] obligations become
    violations. *)

type violation = { at_cycle : int; label : string }

val violations : t -> violation list
(** Chronological. *)

val ok : t -> bool
val pp_violation : Format.formatter -> violation -> unit

(** {1 Outcome counts} *)

type summary = { s_label : string; passes : int; vacuous : int; fails : int }

val summaries : t -> summary list
(** Per-property verdict counts, in add order.  [passes] are real
    (non-vacuous) passes only. *)

val db_monitors : t -> Cover.Db.monitor list
(** The summaries as coverage-db monitor entries. *)

val to_json : t -> Obs.Json.t
(** Per-property counts plus the chronological violation list and the
    overall verdict. *)
