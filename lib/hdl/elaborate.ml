let subst_var map (v : Ir.var) =
  match Hashtbl.find_opt map v.Ir.id with Some v' -> v' | None -> v

let rec subst_expr map (e : Ir.expr) =
  match e with
  | Const _ -> e
  | Var v -> Ir.Var (subst_var map v)
  | Array_read (v, idx) -> Ir.Array_read (subst_var map v, subst_expr map idx)
  | Unop (op, e) -> Ir.Unop (op, subst_expr map e)
  | Binop (op, a, b) -> Ir.Binop (op, subst_expr map a, subst_expr map b)
  | Mux (s, t, e) ->
      Ir.Mux (subst_expr map s, subst_expr map t, subst_expr map e)
  | Slice (e, hi, lo) -> Ir.Slice (subst_expr map e, hi, lo)
  | Concat (a, b) -> Ir.Concat (subst_expr map a, subst_expr map b)
  | Resize (signed, e, w) -> Ir.Resize (signed, subst_expr map e, w)

let rec subst_stmt map (st : Ir.stmt) =
  match st with
  | Assign (v, e) -> Ir.Assign (subst_var map v, subst_expr map e)
  | Assign_slice (v, lo, e) ->
      Ir.Assign_slice (subst_var map v, lo, subst_expr map e)
  | Array_write (v, idx, e) ->
      Ir.Array_write (subst_var map v, subst_expr map idx, subst_expr map e)
  | If (c, t, e) ->
      Ir.If
        (subst_expr map c, List.map (subst_stmt map) t,
         List.map (subst_stmt map) e)
  | Case (s, arms, dflt) ->
      Ir.Case
        ( subst_expr map s,
          List.map (fun (l, b) -> (l, List.map (subst_stmt map) b)) arms,
          List.map (subst_stmt map) dflt )

let rec flatten (m : Ir.module_def) =
  if m.instances = [] then m
  else begin
    let locals = ref (List.rev m.locals) in
    let processes = ref (List.rev m.processes) in
    List.iter
      (fun (inst : Ir.instance) ->
        let child = flatten inst.inst_of in
        let map = Hashtbl.create 16 in
        (* Ports map to the parent's actual variables. *)
        List.iter
          (fun (p : Ir.port) ->
            match List.assoc_opt p.port_name inst.port_map with
            | Some actual -> Hashtbl.replace map p.port_var.Ir.id actual
            | None ->
                raise
                  (Ir.Type_error
                     (Printf.sprintf "flatten: instance %s: port %s unmapped"
                        inst.inst_name p.port_name)))
          child.ports;
        (* Locals are cloned with a hierarchical prefix. *)
        List.iter
          (fun v ->
            let v' = Ir.clone_var ~prefix:(inst.inst_name ^ ".") v in
            Hashtbl.replace map v.Ir.id v';
            locals := v' :: !locals)
          child.locals;
        List.iter
          (fun proc ->
            let rewritten =
              match proc with
              | Ir.Comb { proc_name; body } ->
                  Ir.Comb
                    {
                      proc_name = inst.inst_name ^ "." ^ proc_name;
                      body = List.map (subst_stmt map) body;
                    }
              | Ir.Sync { proc_name; body } ->
                  Ir.Sync
                    {
                      proc_name = inst.inst_name ^ "." ^ proc_name;
                      body = List.map (subst_stmt map) body;
                    }
            in
            processes := rewritten :: !processes)
          child.processes)
      m.instances;
    let flat =
      {
        m with
        locals = List.rev !locals;
        processes = List.rev !processes;
        instances = [];
      }
    in
    Ir.check_module flat;
    flat
  end

let hierarchy m =
  let rows = ref [] in
  let rec walk path depth (m : Ir.module_def) =
    rows := (path, m.mod_name, depth) :: !rows;
    List.iter
      (fun (inst : Ir.instance) ->
        walk (path ^ "/" ^ inst.inst_name) (depth + 1) inst.inst_of)
      m.instances
  in
  walk ("/" ^ m.Ir.mod_name) 0 m;
  List.rev !rows
