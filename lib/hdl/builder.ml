type t = {
  name : string;
  mutable ports : Ir.port list;
  mutable locals : Ir.var list;
  mutable processes : Ir.process list;
  mutable instances : Ir.instance list;
}

let create name =
  { name; ports = []; locals = []; processes = []; instances = [] }

let add_port b dir name width =
  let var = Ir.fresh_var ~name ~width () in
  b.ports <- { Ir.port_name = name; dir; port_var = var } :: b.ports;
  var

let input b name width = add_port b Ir.Input name width
let output b name width = add_port b Ir.Output name width

let wire b name width =
  let var = Ir.fresh_var ~name ~width () in
  b.locals <- var :: b.locals;
  var

let memory b name ~width ~depth =
  let var = Ir.fresh_var ~depth ~name ~width () in
  b.locals <- var :: b.locals;
  var

let comb b proc_name body =
  b.processes <- Ir.Comb { proc_name; body } :: b.processes

let sync b proc_name body =
  b.processes <- Ir.Sync { proc_name; body } :: b.processes

let instantiate b ~name inst_of port_map =
  b.instances <-
    { Ir.inst_name = name; inst_of; port_map } :: b.instances

let finish b =
  let m =
    {
      Ir.mod_name = b.name;
      ports = List.rev b.ports;
      locals = List.rev b.locals;
      processes = List.rev b.processes;
      instances = List.rev b.instances;
    }
  in
  Ir.check_module m;
  m

module Dsl = struct
  let v var = Ir.Var var
  let c ~width n = Ir.Const (Bitvec.of_int ~width n)
  let cb b = Ir.Const (Bitvec.of_bool b)
  let cbv bv = Ir.Const bv
  let ( +: ) a b = Ir.Binop (Ir.Add, a, b)
  let ( -: ) a b = Ir.Binop (Ir.Sub, a, b)
  let ( *: ) a b = Ir.Binop (Ir.Mul, a, b)
  let ( &: ) a b = Ir.Binop (Ir.And, a, b)
  let ( |: ) a b = Ir.Binop (Ir.Or, a, b)
  let ( ^: ) a b = Ir.Binop (Ir.Xor, a, b)
  let ( ==: ) a b = Ir.Binop (Ir.Eq, a, b)
  let ( <>: ) a b = Ir.Binop (Ir.Ne, a, b)
  let ( <: ) a b = Ir.Binop (Ir.Ult, a, b)
  let ( <=: ) a b = Ir.Binop (Ir.Ule, a, b)
  let ( >: ) a b = Ir.Binop (Ir.Ult, b, a)
  let ( >=: ) a b = Ir.Binop (Ir.Ule, b, a)
  let ( <<: ) a b = Ir.Binop (Ir.Shl, a, b)
  let ( >>: ) a b = Ir.Binop (Ir.Lshr, a, b)
  let notb e = Ir.Unop (Ir.Not, e)
  let negb e = Ir.Unop (Ir.Neg, e)
  let mux2 s a b = Ir.Mux (s, a, b)
  let slice e ~hi ~lo = Ir.Slice (e, hi, lo)
  let bit e i = Ir.Slice (e, i, i)

  let concat = function
    | [] -> invalid_arg "Dsl.concat: empty list"
    | e :: rest -> List.fold_left (fun acc x -> Ir.Concat (acc, x)) e rest

  let zext e w = Ir.Resize (false, e, w)
  let sext e w = Ir.Resize (true, e, w)
  let aread var idx = Ir.Array_read (var, idx)
  let ( <-- ) var e = Ir.Assign (var, e)
  let assign_slice var ~lo e = Ir.Assign_slice (var, lo, e)
  let awrite var idx value = Ir.Array_write (var, idx, value)
  let if_ cond t e = Ir.If (cond, t, e)
  let when_ cond t = Ir.If (cond, t, [])

  let case scrutinee arms dflt =
    let w = Ir.width_of scrutinee in
    let arms =
      List.map (fun (n, body) -> (Bitvec.of_int ~width:w n, body)) arms
    in
    Ir.Case (scrutinee, arms, dflt)
end
