(** Ergonomic construction of IR modules.

    A builder accumulates ports, locals, processes and instances, then
    {!finish} runs the full structural check and returns the module.
    The [Dsl] sub-module provides expression operators so design code
    reads close to HDL. *)

type t

val create : string -> t

val input : t -> string -> int -> Ir.var
val output : t -> string -> int -> Ir.var
val wire : t -> string -> int -> Ir.var
(** Local scalar; whether it elaborates to a register or a wire depends
    on the kind of process that drives it. *)

val memory : t -> string -> width:int -> depth:int -> Ir.var

val comb : t -> string -> Ir.stmt list -> unit
val sync : t -> string -> Ir.stmt list -> unit

val instantiate :
  t -> name:string -> Ir.module_def -> (string * Ir.var) list -> unit

val finish : t -> Ir.module_def
(** Runs {!Ir.check_module}; raises {!Ir.Type_error} on invalid
    designs. *)

(** Expression and statement sugar.  Open locally inside design
    functions. *)
module Dsl : sig
  val v : Ir.var -> Ir.expr
  val c : width:int -> int -> Ir.expr
  val cb : bool -> Ir.expr
  val cbv : Bitvec.t -> Ir.expr

  val ( +: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( -: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( *: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( &: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( |: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( ^: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( ==: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( <>: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( <: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( <=: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( >: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( >=: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( <<: ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( >>: ) : Ir.expr -> Ir.expr -> Ir.expr

  val notb : Ir.expr -> Ir.expr
  val negb : Ir.expr -> Ir.expr
  val mux2 : Ir.expr -> Ir.expr -> Ir.expr -> Ir.expr
  val slice : Ir.expr -> hi:int -> lo:int -> Ir.expr
  val bit : Ir.expr -> int -> Ir.expr
  val concat : Ir.expr list -> Ir.expr
  (** Head supplies the most significant bits. *)

  val zext : Ir.expr -> int -> Ir.expr
  val sext : Ir.expr -> int -> Ir.expr
  val aread : Ir.var -> Ir.expr -> Ir.expr

  val ( <-- ) : Ir.var -> Ir.expr -> Ir.stmt
  val assign_slice : Ir.var -> lo:int -> Ir.expr -> Ir.stmt
  val awrite : Ir.var -> Ir.expr -> Ir.expr -> Ir.stmt
  val if_ : Ir.expr -> Ir.stmt list -> Ir.stmt list -> Ir.stmt
  val when_ : Ir.expr -> Ir.stmt list -> Ir.stmt
  val case : Ir.expr -> (int * Ir.stmt list) list -> Ir.stmt list -> Ir.stmt
  (** Integer labels are converted at the scrutinee's width. *)
end
