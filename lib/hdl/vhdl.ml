let sanitize name =
  let s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name
  in
  (* VHDL identifiers may not start with '_' or a digit. *)
  match s.[0] with '0' .. '9' | '_' -> "s" ^ s | _ -> s

let naming (m : Ir.module_def) =
  let tbl = Hashtbl.create 32 in
  let used = Hashtbl.create 32 in
  let claim (v : Ir.var) =
    let base = sanitize v.Ir.var_name in
    let name =
      if Hashtbl.mem used (String.lowercase_ascii base) then
        Printf.sprintf "%s_%d" base v.Ir.id
      else base
    in
    Hashtbl.replace used (String.lowercase_ascii name) ();
    Hashtbl.replace tbl v.Ir.id name
  in
  List.iter (fun (p : Ir.port) -> claim p.port_var) m.ports;
  List.iter claim m.locals;
  fun (v : Ir.var) ->
    match Hashtbl.find_opt tbl v.Ir.id with
    | Some n -> n
    | None -> sanitize v.Ir.var_name

let utype w = Printf.sprintf "unsigned(%d downto 0)" (w - 1)

let const_lit c =
  Printf.sprintf "unsigned'(\"%s\")" (Bitvec.to_binary_string c)

(* Printing context: variables written by the current process are
   referenced through their shadow variable. *)
type ctx = { name_of : Ir.var -> string; shadowed : (int, string) Hashtbl.t }

let ref_var ctx (v : Ir.var) =
  match Hashtbl.find_opt ctx.shadowed v.Ir.id with
  | Some shadow -> shadow
  | None -> ctx.name_of v

let rec expr ctx buf (e : Ir.expr) =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sub e = expr ctx buf e in
  match e with
  | Const c -> p "%s" (const_lit c)
  | Var v -> p "%s" (ref_var ctx v)
  | Array_read (v, idx) ->
      p "%s(to_integer(" (ref_var ctx v);
      sub idx;
      p "))"
  | Unop (op, e0) -> (
      match op with
      | Ir.Not ->
          p "(not ";
          sub e0;
          p ")"
      | Neg ->
          p "(0 - ";
          sub e0;
          p ")"
      | Reduce_and ->
          p "b2u(";
          sub e0;
          p " = %s)" (const_lit (Bitvec.ones (Ir.width_of e0)))
      | Reduce_or ->
          p "b2u(";
          sub e0;
          p " /= %s)" (const_lit (Bitvec.zero (Ir.width_of e0)))
      | Reduce_xor ->
          p "rxor(";
          sub e0;
          p ")")
  | Binop (op, a, b) -> (
      let infix s =
        p "(";
        sub a;
        p " %s " s;
        sub b;
        p ")"
      in
      let cmp s signed =
        p "b2u(";
        if signed then p "signed(std_logic_vector(";
        sub a;
        if signed then p "))";
        p " %s " s;
        if signed then p "signed(std_logic_vector(";
        sub b;
        if signed then p "))";
        p ")"
      in
      match op with
      | Ir.Add -> infix "+"
      | Sub -> infix "-"
      | Mul ->
          (* VHDL "*" doubles the width; resize back. *)
          let w = Ir.width_of a in
          p "resize((";
          sub a;
          p " * ";
          sub b;
          p "), %d)" w
      | And -> infix "and"
      | Or -> infix "or"
      | Xor -> infix "xor"
      | Eq -> cmp "=" false
      | Ne -> cmp "/=" false
      | Ult -> cmp "<" false
      | Ule -> cmp "<=" false
      | Slt -> cmp "<" true
      | Sle -> cmp "<=" true
      | Shl ->
          p "shift_left(";
          sub a;
          p ", to_integer(";
          sub b;
          p "))"
      | Lshr ->
          p "shift_right(";
          sub a;
          p ", to_integer(";
          sub b;
          p "))"
      | Ashr ->
          p "unsigned(shift_right(signed(std_logic_vector(";
          sub a;
          p ")), to_integer(";
          sub b;
          p ")))")
  | Mux (s, t, e0) ->
      p "mux2(";
      sub s;
      p ", ";
      sub t;
      p ", ";
      sub e0;
      p ")"
  | Slice (e0, hi, lo) ->
      (* Bind complex expressions through a shift to keep legal VHDL. *)
      (match e0 with
      | Var _ | Array_read _ ->
          sub e0;
          p "(%d downto %d)" hi lo
      | _ ->
          p "resize(shift_right(";
          sub e0;
          p ", %d), %d)" lo (hi - lo + 1))
  | Concat (a, b) ->
      p "(";
      sub a;
      p " & ";
      sub b;
      p ")"
  | Resize (signed, e0, w) ->
      if signed then begin
        p "unsigned(resize(signed(std_logic_vector(";
        sub e0;
        p ")), %d))" w
      end
      else begin
        p "resize(";
        sub e0;
        p ", %d)" w
      end

let rec stmt ctx buf indent (st : Ir.stmt) =
  let pad = String.make indent ' ' in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let e x = expr ctx buf x in
  match st with
  | Assign (v, rhs) ->
      p "%s%s := " pad (ref_var ctx v);
      e rhs;
      p ";\n"
  | Assign_slice (v, lo, rhs) ->
      let w = Ir.width_of rhs in
      p "%s%s(%d downto %d) := " pad (ref_var ctx v) (lo + w - 1) lo;
      e rhs;
      p ";\n"
  | Array_write (v, idx, rhs) ->
      p "%s%s(to_integer(" pad (ref_var ctx v);
      e idx;
      p ")) := ";
      e rhs;
      p ";\n"
  | If (c, t, els) ->
      p "%sif is1(" pad;
      e c;
      p ") then\n";
      List.iter (stmt ctx buf (indent + 2)) t;
      if els <> [] then begin
        p "%selse\n" pad;
        List.iter (stmt ctx buf (indent + 2)) els
      end;
      p "%send if;\n" pad
  | Case (s, arms, dflt) ->
      p "%scase " pad;
      e s;
      p " is\n";
      List.iter
        (fun (label, body) ->
          p "%s  when %s =>\n" pad (const_lit label);
          List.iter (stmt ctx buf (indent + 4)) body)
        arms;
      p "%s  when others =>\n" pad;
      if dflt = [] then p "%s    null;\n" pad
      else List.iter (stmt ctx buf (indent + 4)) dflt;
      p "%send case;\n" pad

let helpers =
  "  function b2u(b : boolean) return unsigned is\n\
  \  begin\n\
  \    if b then return unsigned'(\"1\"); else return unsigned'(\"0\"); end if;\n\
  \  end function;\n\
  \  function is1(u : unsigned) return boolean is\n\
  \  begin\n\
  \    return u(u'low) = '1';\n\
  \  end function;\n\
  \  function mux2(s : unsigned; a : unsigned; b : unsigned) return unsigned is\n\
  \  begin\n\
  \    if s(s'low) = '1' then return a; else return b; end if;\n\
  \  end function;\n\
  \  function rxor(u : unsigned) return unsigned is\n\
  \    variable acc : std_ulogic := '0';\n\
  \  begin\n\
  \    for i in u'range loop acc := acc xor u(i); end loop;\n\
  \    return unsigned'(\"\") & acc;\n\
  \  end function;\n"

let has_sync (m : Ir.module_def) =
  List.exists (function Ir.Sync _ -> true | Ir.Comb _ -> false) m.processes
  || m.instances <> []

let emit_process name_of buf (proc : Ir.process) =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let proc_name, body, is_sync =
    match proc with
    | Ir.Comb { proc_name; body } -> (proc_name, body, false)
    | Ir.Sync { proc_name; body } -> (proc_name, body, true)
  in
  let writes =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun (v : Ir.var) ->
        if Hashtbl.mem seen v.Ir.id then false
        else begin
          Hashtbl.replace seen v.Ir.id ();
          true
        end)
      (Ir.body_writes body)
  in
  let shadowed = Hashtbl.create 8 in
  List.iter
    (fun (v : Ir.var) ->
      Hashtbl.replace shadowed v.Ir.id ("v_" ^ name_of v))
    writes;
  let ctx = { name_of; shadowed } in
  p "  %s : process %s\n" (sanitize proc_name)
    (if is_sync then "(clk)" else "(all)");
  List.iter
    (fun (v : Ir.var) ->
      if Ir.is_array v then
        p "    variable v_%s : %s_t;\n" (name_of v) (name_of v)
      else p "    variable v_%s : %s;\n" (name_of v) (utype v.Ir.width))
    writes;
  p "  begin\n";
  let indent = if is_sync then 6 else 4 in
  if is_sync then p "    if rising_edge(clk) then\n";
  let pad = String.make indent ' ' in
  List.iter
    (fun (v : Ir.var) -> p "%sv_%s := %s;\n" pad (name_of v) (name_of v))
    writes;
  List.iter (stmt ctx buf indent) body;
  List.iter
    (fun (v : Ir.var) -> p "%s%s <= v_%s;\n" pad (name_of v) (name_of v))
    writes;
  if is_sync then p "    end if;\n";
  p "  end process;\n\n"

let emit_module (m : Ir.module_def) =
  let name_of = naming m in
  let buf = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ent = sanitize m.mod_name in
  p "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n";
  p "entity %s is\n  port (\n" ent;
  let port_lines =
    (if has_sync m then [ "    clk : in std_ulogic" ] else [])
    @ List.map
        (fun (pt : Ir.port) ->
          Printf.sprintf "    %s : %s %s" (name_of pt.port_var)
            (match pt.dir with Ir.Input -> "in" | Output -> "out")
            (utype pt.port_var.Ir.width))
        m.ports
  in
  p "%s);\nend entity;\n\n" (String.concat ";\n" port_lines);
  p "architecture rtl of %s is\n" ent;
  Buffer.add_string buf helpers;
  List.iter
    (fun (v : Ir.var) ->
      if Ir.is_array v then begin
        p "  type %s_t is array (0 to %d) of %s;\n" (name_of v)
          (v.Ir.depth - 1) (utype v.Ir.width);
        p "  signal %s : %s_t;\n" (name_of v) (name_of v)
      end
      else p "  signal %s : %s;\n" (name_of v) (utype v.Ir.width))
    m.locals;
  p "begin\n";
  List.iter
    (fun (inst : Ir.instance) ->
      let conns =
        (if has_sync inst.inst_of then [ "clk => clk" ] else [])
        @ List.map
            (fun (formal, actual) ->
              Printf.sprintf "%s => %s" (sanitize formal) (name_of actual))
            inst.port_map
      in
      p "  %s : entity work.%s port map (%s);\n" (sanitize inst.inst_name)
        (sanitize inst.inst_of.Ir.mod_name)
        (String.concat ", " conns))
    m.instances;
  List.iter (emit_process name_of buf) m.processes;
  p "end architecture;\n";
  Buffer.contents buf

let emit m =
  let seen = Hashtbl.create 8 in
  let out = Buffer.create 4096 in
  let rec walk (m : Ir.module_def) =
    List.iter (fun (i : Ir.instance) -> walk i.inst_of) m.instances;
    if not (Hashtbl.mem seen m.Ir.mod_name) then begin
      Hashtbl.replace seen m.Ir.mod_name ();
      Buffer.add_string out (emit_module m);
      Buffer.add_char out '\n'
    end
  in
  walk m;
  Buffer.contents out
