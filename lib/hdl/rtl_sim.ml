exception Combinational_loop of string

type sync_proc = { s_name : string; s_body : Ir.stmt list; s_writes : Ir.var list }
type comb_proc = { c_name : string; c_body : Ir.stmt list; c_writes : Ir.var list }

type t = {
  flat : Ir.module_def;
  env : Eval.env;
  inputs : (string, Ir.var) Hashtbl.t;
  outputs : (string, Ir.var) Hashtbl.t;
  combs : comb_proc list;
  syncs : sync_proc list;
  mutable n_cycles : int;
}

let dedup_vars vars =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (v : Ir.var) ->
      if Hashtbl.mem seen v.Ir.id then false
      else begin
        Hashtbl.replace seen v.Ir.id ();
        true
      end)
    vars

let create m =
  let flat = Elaborate.flatten m in
  let inputs = Hashtbl.create 8 and outputs = Hashtbl.create 8 in
  List.iter
    (fun (p : Ir.port) ->
      match p.dir with
      | Input -> Hashtbl.replace inputs p.port_name p.port_var
      | Output -> Hashtbl.replace outputs p.port_name p.port_var)
    flat.ports;
  let combs, syncs =
    List.fold_left
      (fun (cs, ss) proc ->
        match proc with
        | Ir.Comb { proc_name; body } ->
            let writes = dedup_vars (Ir.body_writes body) in
            List.iter
              (fun (v : Ir.var) ->
                if Ir.is_array v then
                  raise
                    (Ir.Type_error
                       (Printf.sprintf
                          "comb process %s writes memory %s (inferred latch)"
                          proc_name v.Ir.var_name)))
              writes;
            ({ c_name = proc_name; c_body = body; c_writes = writes } :: cs, ss)
        | Ir.Sync { proc_name; body } ->
            ( cs,
              {
                s_name = proc_name;
                s_body = body;
                s_writes = dedup_vars (Ir.body_writes body);
              }
              :: ss ))
      ([], []) flat.processes
  in
  {
    flat;
    env = Eval.create ();
    inputs;
    outputs;
    combs = List.rev combs;
    syncs = List.rev syncs;
    n_cycles = 0;
  }

let find_port t name =
  match Hashtbl.find_opt t.inputs name with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt t.outputs name with
      | Some v -> v
      | None -> raise Not_found)

let set_input t name bv =
  match Hashtbl.find_opt t.inputs name with
  | None -> raise Not_found
  | Some v ->
      if Bitvec.width bv <> v.Ir.width then
        invalid_arg
          (Printf.sprintf "set_input %s: width %d expected %d" name
             (Bitvec.width bv) v.Ir.width);
      Eval.set t.env v bv

let set_input_int t name n =
  let v = Hashtbl.find t.inputs name in
  Eval.set t.env v (Bitvec.of_int ~width:v.Ir.width n)

let get t name = Eval.get t.env (find_port t name)
let get_int t name = Bitvec.to_int (get t name)
let peek_var t v = Eval.get t.env v
let peek_array t v = Eval.get_array t.env v

let settle t =
  (* Fixpoint over combinational processes; the bound covers any acyclic
     dependency chain, so hitting it means a combinational loop. *)
  let max_rounds = List.length t.combs + 2 in
  let rec round n =
    if n > max_rounds then
      raise (Combinational_loop t.flat.Ir.mod_name);
    let changed = ref false in
    List.iter
      (fun cp ->
        let before = List.map (fun v -> Eval.get t.env v) cp.c_writes in
        Eval.run_body t.env cp.c_body;
        let after = List.map (fun v -> Eval.get t.env v) cp.c_writes in
        if not (List.for_all2 Bitvec.equal before after) then changed := true)
      t.combs;
    if !changed then round (n + 1)
  in
  if t.combs <> [] then round 1

let step t =
  settle t;
  (* All synchronous processes observe the same pre-edge snapshot. *)
  let snapshot = Eval.copy t.env in
  let commits =
    List.map
      (fun sp ->
        let local = Eval.copy snapshot in
        Eval.run_body local sp.s_body;
        (sp, local))
      t.syncs
  in
  List.iter
    (fun ((sp : sync_proc), local) ->
      List.iter
        (fun (v : Ir.var) ->
          if Ir.is_array v then begin
            let src = Eval.get_array local v in
            let dst = Eval.get_array t.env v in
            Array.blit src 0 dst 0 (Array.length dst)
          end
          else Eval.set t.env v (Eval.get local v))
        sp.s_writes)
    commits;
  t.n_cycles <- t.n_cycles + 1;
  settle t

let run t n =
  for _ = 1 to n do
    step t
  done

let cycles t = t.n_cycles
let design t = t.flat
