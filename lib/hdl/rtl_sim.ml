exception Combinational_loop of string

(* Global activity counters (see Metrics.Perf). *)
let ctr_settles = Perf.counter "rtl_sim.settles"
let ctr_runs = Perf.counter "rtl_sim.process_runs"
let ctr_skips = Perf.counter "rtl_sim.process_skips"
let ctr_sync_runs = Perf.counter "rtl_sim.sync_runs"

(* Distributions per settle (see Obs.Hist; recording is off unless a
   caller enables it). *)
let hist_dirty = Obs.Hist.histogram "rtl_sim.dirty_vars_per_settle"
let hist_runs_per_settle = Obs.Hist.histogram "rtl_sim.comb_runs_per_settle"

type sync_proc = {
  s_name : string;
  s_body : Ir.stmt list;
  s_writes : Ir.var list;
  s_snap : Ir.var list;
      (* vars whose pre-edge value the activation can observe: the body's
         entry reads plus every write target (an untaken write path must
         commit the old value back unchanged) *)
  mutable s_runs : int;  (* activity profile: activations of this process *)
}

type comb_proc = {
  c_name : string;
  c_body : Ir.stmt list;
  c_writes : Ir.var list;
  c_inputs : int list;  (* ids of vars whose entry value the body observes *)
  c_self : bool;  (* reads one of its own write targets before writing it *)
  mutable c_runs : int;  (* activity profile: evaluations of this process *)
}

(* Toggle-coverage state, allocated only by [enable_toggle_cover].
   Change detection rides the existing dirty-marking: a var that never
   gets marked dirty cannot have changed, so a coverage epoch (one
   clock cycle) only re-examines the vars the scheduler already knew
   about.  [cov_prev] holds each tracked var's value at the previous
   epoch close, giving per-bit edge directions without any per-delta
   sampling. *)
type cover_state = {
  cov : Cover.Toggle.t;
  cov_index : (int, int) Hashtbl.t;  (* var id -> tracked index *)
  cov_vars : Ir.var array;
  cov_base : int array;  (* first toggle slot per tracked var *)
  cov_prev : Bitvec.t array;
  cov_dirty : (int, unit) Hashtbl.t;  (* tracked indices touched this epoch *)
}

type t = {
  flat : Ir.module_def;
  env : Eval.env;
  inputs : (string, Ir.var) Hashtbl.t;
  outputs : (string, Ir.var) Hashtbl.t;
  combs : comb_proc array;  (* dependency order (writers before readers) *)
  comb_cycle : string option;  (* diagnostic when the graph is cyclic *)
  syncs : sync_proc list;
  dirty : (int, unit) Hashtbl.t;  (* var ids changed since last settle *)
  mutable full_settle : bool;  (* first settle runs everything *)
  mutable n_cycles : int;
  mutable n_settles : int;
  mutable n_comb_runs : int;
  mutable n_comb_skips : int;
  mutable n_sync_runs : int;
  mutable cover : cover_state option;
  mutable watchers : (t -> unit) list;  (* run after each step, in order *)
  (* Causal event log plumbing (see Obs.Event): [ev_last] maps a var id
     to the seq of its latest change event, giving each process run and
     each committed write a cause link.  Off by default: the hot paths
     pay one [ev_on] branch. *)
  mutable ev_on : bool;
  ev_last : (int, int) Hashtbl.t;
}

let dedup_vars vars =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (v : Ir.var) ->
      if Hashtbl.mem seen v.Ir.id then false
      else begin
        Hashtbl.replace seen v.Ir.id ();
        true
      end)
    vars

(* Order comb processes so writers precede readers, keeping the original
   relative order of unconstrained processes (Kahn's algorithm with
   lowest-index selection); this preserves the final values the old
   run-in-order fixpoint produced when several processes write the same
   variable.  Self-dependencies are handled by local iteration, not
   ordering.  Returns the order, or the name of a process on a cycle. *)
let dependency_order (combs : comb_proc array) =
  let n = Array.length combs in
  let writers = Hashtbl.create 32 in
  Array.iteri
    (fun i cp ->
      List.iter
        (fun (v : Ir.var) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt writers v.Ir.id) in
          Hashtbl.replace writers v.Ir.id (i :: prev))
        cp.c_writes)
    combs;
  let edge = Hashtbl.create 64 in
  let indeg = Array.make n 0 in
  let succs = Array.make n [] in
  Array.iteri
    (fun i cp ->
      List.iter
        (fun id ->
          List.iter
            (fun j ->
              if j <> i && not (Hashtbl.mem edge (j, i)) then begin
                Hashtbl.replace edge (j, i) ();
                succs.(j) <- i :: succs.(j);
                indeg.(i) <- indeg.(i) + 1
              end)
            (Option.value ~default:[] (Hashtbl.find_opt writers id)))
        cp.c_inputs)
    combs;
  let placed = Array.make n false in
  let order = ref [] and n_placed = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let pick = ref (-1) in
    for i = n - 1 downto 0 do
      if (not placed.(i)) && indeg.(i) = 0 then pick := i
    done;
    match !pick with
    | -1 -> continue_ := false
    | i ->
        placed.(i) <- true;
        incr n_placed;
        order := i :: !order;
        List.iter (fun j -> indeg.(j) <- indeg.(j) - 1) succs.(i)
  done;
  if !n_placed = n then Ok (Array.of_list (List.rev_map (fun i -> combs.(i)) !order))
  else begin
    let culprit = ref "" in
    for i = n - 1 downto 0 do
      if not placed.(i) then culprit := combs.(i).c_name
    done;
    Error !culprit
  end

let create m =
  let flat = Elaborate.flatten m in
  let inputs = Hashtbl.create 8 and outputs = Hashtbl.create 8 in
  List.iter
    (fun (p : Ir.port) ->
      match p.dir with
      | Input -> Hashtbl.replace inputs p.port_name p.port_var
      | Output -> Hashtbl.replace outputs p.port_name p.port_var)
    flat.ports;
  let combs, syncs =
    List.fold_left
      (fun (cs, ss) proc ->
        match proc with
        | Ir.Comb { proc_name; body } ->
            let writes = dedup_vars (Ir.body_writes body) in
            List.iter
              (fun (v : Ir.var) ->
                if Ir.is_array v then
                  raise
                    (Ir.Type_error
                       (Printf.sprintf
                          "comb process %s writes memory %s (inferred latch)"
                          proc_name v.Ir.var_name)))
              writes;
            let input_vars = Ir.body_inputs body in
            let write_ids = Hashtbl.create 8 in
            List.iter (fun (v : Ir.var) -> Hashtbl.replace write_ids v.Ir.id ()) writes;
            let c_self =
              List.exists (fun (v : Ir.var) -> Hashtbl.mem write_ids v.Ir.id) input_vars
            in
            ( {
                c_name = proc_name;
                c_body = body;
                c_writes = writes;
                c_inputs = List.map (fun (v : Ir.var) -> v.Ir.id) input_vars;
                c_self;
                c_runs = 0;
              }
              :: cs,
              ss )
        | Ir.Sync { proc_name; body } ->
            let writes = dedup_vars (Ir.body_writes body) in
            ( cs,
              {
                s_name = proc_name;
                s_body = body;
                s_writes = writes;
                s_snap = dedup_vars (Ir.body_inputs body @ writes);
                s_runs = 0;
              }
              :: ss ))
      ([], []) flat.processes
  in
  let combs = Array.of_list (List.rev combs) in
  let combs, comb_cycle =
    match dependency_order combs with
    | Ok ordered -> (ordered, None)
    | Error name ->
        ( combs,
          Some
            (Printf.sprintf "%s: combinational cycle through process %s"
               flat.Ir.mod_name name) )
  in
  {
    flat;
    env = Eval.create ();
    inputs;
    outputs;
    combs;
    comb_cycle;
    syncs = List.rev syncs;
    dirty = Hashtbl.create 64;
    full_settle = true;
    n_cycles = 0;
    n_settles = 0;
    n_comb_runs = 0;
    n_comb_skips = 0;
    n_sync_runs = 0;
    cover = None;
    watchers = [];
    ev_on = false;
    ev_last = Hashtbl.create 16;
  }

(* ------------------------------------------------------------------ *)
(* Causal event emission.                                              *)

let enable_events t =
  t.ev_on <- true;
  if not (Obs.Event.enabled ()) then Obs.Event.enable ()

let emitting t = t.ev_on && Obs.Event.enabled ()

(* Low bits of a value, for the event record (wide vars truncate). *)
let ev_value bv =
  if Bitvec.width bv <= 62 then Bitvec.to_int bv
  else Bitvec.to_int (Bitvec.slice bv ~hi:61 ~lo:0)

(* Most recent change among a set of observed var ids — the cause of a
   process activation they woke. *)
let ev_cause_of t ids =
  List.fold_left
    (fun acc id ->
      match Hashtbl.find_opt t.ev_last id with
      | Some s when s > acc -> s
      | _ -> acc)
    Obs.Event.no_cause ids

let ev_change t kind (v : Ir.var) cause =
  let value = if Ir.is_array v then 0 else ev_value (Eval.get t.env v) in
  let s = Obs.Event.emit ~cycle:t.n_cycles ~value ~cause kind v.Ir.var_name in
  Hashtbl.replace t.ev_last v.Ir.id s

let find_port t name =
  match Hashtbl.find_opt t.inputs name with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt t.outputs name with
      | Some v -> v
      | None -> raise Not_found)

let mark_dirty t id =
  Hashtbl.replace t.dirty id ();
  (* One branch when coverage is off — same discipline as Obs.Span. *)
  match t.cover with
  | None -> ()
  | Some cs -> (
      match Hashtbl.find_opt cs.cov_index id with
      | Some k -> Hashtbl.replace cs.cov_dirty k ()
      | None -> ())

let set_input t name bv =
  match Hashtbl.find_opt t.inputs name with
  | None -> raise Not_found
  | Some v ->
      if Bitvec.width bv <> v.Ir.width then
        invalid_arg
          (Printf.sprintf "set_input %s: width %d expected %d" name
             (Bitvec.width bv) v.Ir.width);
      if not (Bitvec.equal bv (Eval.get t.env v)) then begin
        Eval.set t.env v bv;
        mark_dirty t v.Ir.id;
        if emitting t then ev_change t Obs.Event.Stimulus v Obs.Event.no_cause
      end

let set_input_int t name n =
  let v = Hashtbl.find t.inputs name in
  set_input t name (Bitvec.of_int ~width:v.Ir.width n)

let get t name = Eval.get t.env (find_port t name)
let get_int t name = Bitvec.to_int (get t name)
let peek_var t v = Eval.get t.env v
let peek_array t v = Eval.get_array t.env v

(* Run one comb process on the live env; returns whether any of its
   outputs changed, marking changed vars dirty for downstream readers. *)
let run_comb t (cp : comb_proc) =
  let before = List.map (fun v -> Eval.get t.env v) cp.c_writes in
  (* The activation's cause is the latest change among the vars it
     observes — exactly the dirty-set propagation that scheduled it. *)
  let run_seq =
    if emitting t then
      Obs.Event.emit ~cycle:t.n_cycles
        ~cause:(ev_cause_of t cp.c_inputs)
        Obs.Event.Process_run cp.c_name
    else Obs.Event.no_cause
  in
  Eval.run_body t.env cp.c_body;
  t.n_comb_runs <- t.n_comb_runs + 1;
  cp.c_runs <- cp.c_runs + 1;
  Perf.incr ctr_runs;
  let changed = ref false in
  List.iter2
    (fun (v : Ir.var) old ->
      if not (Bitvec.equal old (Eval.get t.env v)) then begin
        changed := true;
        mark_dirty t v.Ir.id;
        if run_seq <> Obs.Event.no_cause then
          ev_change t Obs.Event.Var_change v run_seq
      end)
    cp.c_writes before;
  !changed

(* A process that observes one of its own write targets (read before
   write somewhere in the body) needs the old global fixpoint — but only
   over itself, since cross-process cycles are rejected statically. *)
let run_comb_converge t cp =
  let bound = 2 + max (Array.length t.combs) (List.length cp.c_writes) in
  let rec go n =
    if n > bound then
      raise
        (Combinational_loop
           (Printf.sprintf "%s: process %s does not stabilize"
              t.flat.Ir.mod_name cp.c_name));
    if run_comb t cp then go (n + 1)
  in
  go 1

let settle_inner t =
  (match t.comb_cycle with
  | Some msg -> raise (Combinational_loop msg)
  | None -> ());
  t.n_settles <- t.n_settles + 1;
  Perf.incr ctr_settles;
  Obs.Hist.observe_int hist_dirty (Hashtbl.length t.dirty);
  let runs_before = t.n_comb_runs in
  let force = t.full_settle in
  Array.iter
    (fun cp ->
      if
        force || List.exists (fun id -> Hashtbl.mem t.dirty id) cp.c_inputs
      then
        if cp.c_self then run_comb_converge t cp else ignore (run_comb t cp)
      else begin
        t.n_comb_skips <- t.n_comb_skips + 1;
        Perf.incr ctr_skips
      end)
    t.combs;
  t.full_settle <- false;
  Obs.Hist.observe_int hist_runs_per_settle (t.n_comb_runs - runs_before);
  (* Processes run in dependency order, so every change was seen by all
     downstream readers; the whole dirty set is consumed. *)
  Hashtbl.reset t.dirty

let settle t =
  if Obs.Span.enabled () then
    Obs.Span.with_ ~name:"rtl_sim.settle" (fun () -> settle_inner t)
  else settle_inner t

(* Close one coverage epoch: compare each touched tracked var against
   its value at the previous epoch close and record per-bit edges.
   Bits that glitched within the cycle but ended where they started do
   not count — toggle coverage is about committed cycle-to-cycle
   transitions, matching what the netlist simulator's toggle counters
   see. *)
let close_cover_epoch t cs =
  if Hashtbl.length cs.cov_dirty > 0 then begin
    Hashtbl.iter
      (fun k () ->
        let v = cs.cov_vars.(k) in
        let cur = Eval.get t.env v in
        let old = cs.cov_prev.(k) in
        if not (Bitvec.equal old cur) then begin
          let b0 = cs.cov_base.(k) in
          for b = 0 to v.Ir.width - 1 do
            let nb = Bitvec.get cur b in
            if Bitvec.get old b <> nb then
              Cover.Toggle.record cs.cov (b0 + b) ~rising:nb
          done;
          cs.cov_prev.(k) <- cur
        end)
      cs.cov_dirty;
    Hashtbl.reset cs.cov_dirty
  end

let step_inner t =
  settle t;
  (* All synchronous processes observe the same pre-edge state.  Each
     gets a private snapshot of just the vars it can read (plus its
     write targets, whose old values an untaken write path commits
     back); building every snapshot before any body runs keeps the
     pre-edge view consistent. *)
  let commits =
    List.map
      (fun sp ->
        let local = Eval.snapshot t.env sp.s_snap in
        Eval.run_body local sp.s_body;
        sp.s_runs <- sp.s_runs + 1;
        t.n_sync_runs <- t.n_sync_runs + 1;
        Perf.incr ctr_sync_runs;
        (sp, local))
      t.syncs
  in
  (* Each activation observed the pre-edge state; its cause is the
     latest pre-edge change among the vars it could read — sampled for
     every process before any commit moves [ev_last] past the edge. *)
  let ev_causes =
    if emitting t then
      List.map
        (fun ((sp : sync_proc), _) ->
          ev_cause_of t (List.map (fun (v : Ir.var) -> v.Ir.id) sp.s_snap))
        commits
    else []
  in
  List.iteri
    (fun ci ((sp : sync_proc), local) ->
      let run_seq =
        if emitting t then
          Obs.Event.emit ~cycle:t.n_cycles ~cause:(List.nth ev_causes ci)
            Obs.Event.Process_run sp.s_name
        else Obs.Event.no_cause
      in
      List.iter
        (fun (v : Ir.var) ->
          if Ir.is_array v then begin
            let src = Eval.get_array local v in
            let dst = Eval.get_array t.env v in
            let changed = ref false in
            Array.iteri
              (fun i x ->
                if not (Bitvec.equal dst.(i) x) then begin
                  dst.(i) <- x;
                  changed := true
                end)
              src;
            if !changed then begin
              mark_dirty t v.Ir.id;
              if run_seq <> Obs.Event.no_cause then
                ev_change t Obs.Event.Var_change v run_seq
            end
          end
          else begin
            let nv = Eval.get local v in
            if not (Bitvec.equal nv (Eval.get t.env v)) then begin
              Eval.set t.env v nv;
              mark_dirty t v.Ir.id;
              if run_seq <> Obs.Event.no_cause then
                ev_change t Obs.Event.Var_change v run_seq
            end
          end)
        sp.s_writes)
    commits;
  t.n_cycles <- t.n_cycles + 1;
  settle t;
  (match t.cover with
  | None -> ()
  | Some cs ->
      close_cover_epoch t cs;
      if emitting t then
        ignore
          (Obs.Event.emit ~cycle:t.n_cycles Obs.Event.Cover_epoch
             t.flat.Ir.mod_name));
  match t.watchers with [] -> () | ws -> List.iter (fun f -> f t) ws

let step t =
  if Obs.Span.enabled () then
    Obs.Span.with_ ~name:"rtl_sim.step" (fun () -> step_inner t)
  else step_inner t

let run t n =
  for _ = 1 to n do
    step t
  done

let cycles t = t.n_cycles
let design t = t.flat
let settles t = t.n_settles
let comb_runs t = t.n_comb_runs
let comb_skips t = t.n_comb_skips
let sync_runs t = t.n_sync_runs

(* Activity profile: activations per process since creation, in
   hierarchical name order ("instance.process" after flattening), so
   the ranking attributes simulation work to ExpoCU module instances. *)
let process_activity t =
  let combs = Array.to_list (Array.map (fun cp -> (cp.c_name, cp.c_runs)) t.combs) in
  let syncs = List.map (fun sp -> (sp.s_name, sp.s_runs)) t.syncs in
  List.sort (fun (a, _) (b, _) -> compare a b) (combs @ syncs)

(* Look up any scalar or port variable of the flattened design by its
   hierarchical name ("u_i2c.slot"); the hook monitors and FSM
   registration use to reach internal state. *)
let find_var t name =
  let matches (v : Ir.var) = v.Ir.var_name = name in
  match
    List.find_opt (fun (p : Ir.port) -> matches p.port_var) t.flat.Ir.ports
  with
  | Some p -> Some p.port_var
  | None -> List.find_opt matches t.flat.Ir.locals

let on_step t f = t.watchers <- t.watchers @ [ f ]

let enable_toggle_cover t =
  match t.cover with
  | Some _ -> ()
  | None ->
      let scalars =
        dedup_vars
          (List.filter
             (fun v -> not (Ir.is_array v))
             (List.map (fun (p : Ir.port) -> p.Ir.port_var) t.flat.Ir.ports
             @ t.flat.Ir.locals))
      in
      let vars = Array.of_list scalars in
      let n = Array.length vars in
      let base = Array.make n 0 in
      let total = ref 0 in
      Array.iteri
        (fun i (v : Ir.var) ->
          base.(i) <- !total;
          total := !total + v.Ir.width)
        vars;
      let names = Array.make !total "" in
      Array.iteri
        (fun i (v : Ir.var) ->
          if v.Ir.width = 1 then names.(base.(i)) <- v.Ir.var_name
          else
            for b = 0 to v.Ir.width - 1 do
              names.(base.(i) + b) <- Printf.sprintf "%s[%d]" v.Ir.var_name b
            done)
        vars;
      let index = Hashtbl.create (2 * n) in
      Array.iteri (fun i (v : Ir.var) -> Hashtbl.replace index v.Ir.id i) vars;
      let prev = Array.map (fun v -> Eval.get t.env v) vars in
      t.cover <-
        Some
          {
            cov = Cover.Toggle.create ~names;
            cov_index = index;
            cov_vars = vars;
            cov_base = base;
            cov_prev = prev;
            cov_dirty = Hashtbl.create 64;
          }

let toggle_cover t =
  match t.cover with None -> None | Some cs -> Some cs.cov

(* ------------------------------------------------------------------ *)
(* Checkpoint / restore: deep-copied env plus the scheduler state the
   next settle depends on.  Coverage collectors and watcher hooks are
   deliberately not captured — a restore rewinds simulation state, not
   the observability accumulated about it. *)

type checkpoint = {
  ck_env : Eval.env;
  ck_dirty : (int, unit) Hashtbl.t;
  ck_full : bool;
  ck_cycles : int;
}

let checkpoint t =
  if emitting t then
    ignore
      (Obs.Event.emit ~cycle:t.n_cycles Obs.Event.Checkpoint
         t.flat.Ir.mod_name);
  {
    ck_env = Eval.copy t.env;
    ck_dirty = Hashtbl.copy t.dirty;
    ck_full = t.full_settle;
    ck_cycles = t.n_cycles;
  }

let restore t ck =
  Eval.overwrite t.env ck.ck_env;
  Hashtbl.reset t.dirty;
  Hashtbl.iter (fun id () -> Hashtbl.replace t.dirty id ()) ck.ck_dirty;
  t.full_settle <- ck.ck_full;
  t.n_cycles <- ck.ck_cycles;
  (* Cause links must not leap across the rewind: changes before the
     restore point are no longer "the latest write" of anything. *)
  Hashtbl.reset t.ev_last

let checkpoint_cycle ck = ck.ck_cycles
