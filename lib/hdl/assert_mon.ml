type signal = Rtl_sim.t -> bool

type violation = { at_cycle : int; label : string }

(* A property is a stateful checker: called once per cycle with the
   simulator, reporting violations through the callback; [finalize]
   flushes open obligations. *)
type prop = {
  label : string;
  check : Rtl_sim.t -> int -> (string -> unit) -> unit;
  finalize : int -> (string -> unit) -> unit;
}

type t = {
  sim : Rtl_sim.t;
  mutable props : prop list;
  mutable faults : violation list;  (* reverse order *)
  mutable finished : bool;
}

let create sim = { sim; props = []; faults = []; finished = false }

let port name sim = Rtl_sim.get_int sim name = 1
let port_eq name value sim = Rtl_sim.get_int sim name = value
let ( &&& ) a b sim = a sim && b sim
let ( ||| ) a b sim = a sim || b sim
let neg a sim = not (a sim)

let rose s prev sim =
  let now = s sim in
  let before = !prev in
  prev := now;
  now && not before

let stateless label check = { label; check; finalize = (fun _ _ -> ()) }

let always ?(label = "always") s =
  stateless label (fun sim _ fail -> if not (s sim) then fail label)

let never ?(label = "never") s =
  stateless label (fun sim _ fail -> if s sim then fail label)

let implies_same ?(label = "implication") a c =
  stateless label (fun sim _ fail -> if a sim && not (c sim) then fail label)

let implies_next ?(label = "next-cycle implication") a c =
  let pending = ref false in
  {
    label;
    check =
      (fun sim _ fail ->
        if !pending && not (c sim) then fail label;
        pending := a sim);
    finalize = (fun _ _ -> ());
  }

let eventually_within ?(label = "bounded eventuality") trigger n ok =
  let open_obligations : int Queue.t = Queue.create () in
  {
    label;
    check =
      (fun sim cycle fail ->
        if ok sim then Queue.clear open_obligations
        else
          while
            (not (Queue.is_empty open_obligations))
            && cycle - Queue.peek open_obligations > n
          do
            ignore (Queue.pop open_obligations);
            fail label
          done;
        if trigger sim && not (ok sim) then Queue.push cycle open_obligations);
    finalize =
      (fun _ fail ->
        if not (Queue.is_empty open_obligations) then begin
          Queue.clear open_obligations;
          fail (label ^ " (still open at finish)")
        end);
  }

let stable_unless ?label port_name allow =
  let label =
    Option.value ~default:(port_name ^ " stable unless allowed") label
  in
  let previous = ref None in
  {
    label;
    check =
      (fun sim _ fail ->
        let current = Rtl_sim.get sim port_name in
        (match !previous with
        | Some before
          when (not (Bitvec.equal before current)) && not (allow sim) ->
            fail label
        | Some _ | None -> ());
        previous := Some current);
    finalize = (fun _ _ -> ());
  }

let add t prop = t.props <- prop :: t.props

let check_all t =
  let cycle = Rtl_sim.cycles t.sim in
  List.iter
    (fun p ->
      p.check t.sim cycle (fun label ->
          t.faults <- { at_cycle = cycle; label } :: t.faults))
    (List.rev t.props)

let step t =
  Rtl_sim.step t.sim;
  check_all t

let run t n =
  for _ = 1 to n do
    step t
  done

let finish t =
  if not t.finished then begin
    t.finished <- true;
    let cycle = Rtl_sim.cycles t.sim in
    List.iter
      (fun p ->
        p.finalize cycle (fun label ->
            t.faults <- { at_cycle = cycle; label } :: t.faults))
      (List.rev t.props)
  end

let violations t = List.rev t.faults
let ok t = t.faults = []

let pp_violation fmt v =
  Format.fprintf fmt "cycle %d: %s" v.at_cycle v.label
