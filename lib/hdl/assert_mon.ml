type signal = Rtl_sim.t -> bool

type violation = { at_cycle : int; label : string }

(* Per-cycle verdict of one property.  Distinguishing [Vacuous] from
   [Pass] is what makes the counts meaningful as *coverage*: an
   implication whose antecedent never fired has proven nothing, however
   many cycles it "held". *)
type outcome = Pass | Vacuous | Fail of string

(* A property is a stateful checker: called once per cycle with the
   simulator, reporting the cycle's outcome(s) through the callback;
   [finalize] flushes open obligations.  The counters accumulate over
   the monitor's lifetime, so a [prop] value belongs to one monitor. *)
type prop = {
  label : string;
  check : Rtl_sim.t -> int -> (outcome -> unit) -> unit;
  finalize : int -> (outcome -> unit) -> unit;
  mutable n_pass : int;
  mutable n_vacuous : int;
  mutable n_fail : int;
}

type t = {
  sim : Rtl_sim.t;
  mutable props : prop list;  (* reverse add order *)
  mutable faults : violation list;  (* reverse order *)
  mutable finished : bool;
}

let create sim = { sim; props = []; faults = []; finished = false }

let port name sim = Rtl_sim.get_int sim name = 1
let port_eq name value sim = Rtl_sim.get_int sim name = value
let ( &&& ) a b sim = a sim && b sim
let ( ||| ) a b sim = a sim || b sim
let neg a sim = not (a sim)

let rose s prev sim =
  let now = s sim in
  let before = !prev in
  prev := now;
  now && not before

let make label check finalize =
  { label; check; finalize; n_pass = 0; n_vacuous = 0; n_fail = 0 }

let stateless label check = make label check (fun _ _ -> ())

let always ?(label = "always") s =
  stateless label (fun sim _ emit ->
      emit (if s sim then Pass else Fail label))

let never ?(label = "never") s =
  stateless label (fun sim _ emit ->
      emit (if s sim then Fail label else Pass))

let implies_same ?(label = "implication") a c =
  stateless label (fun sim _ emit ->
      if a sim then emit (if c sim then Pass else Fail label)
      else emit Vacuous)

let implies_next ?(label = "next-cycle implication") a c =
  let pending = ref false in
  make label
    (fun sim _ emit ->
      if !pending then emit (if c sim then Pass else Fail label)
      else emit Vacuous;
      pending := a sim)
    (fun _ _ -> ())

let eventually_within ?(label = "bounded eventuality") trigger n ok =
  let open_obligations : int Queue.t = Queue.create () in
  make label
    (fun sim cycle emit ->
      let okay = ok sim in
      let emitted = ref false in
      if okay then begin
        let closed = Queue.length open_obligations in
        Queue.clear open_obligations;
        for _ = 1 to closed do
          emit Pass
        done;
        if closed > 0 then emitted := true
      end
      else
        while
          (not (Queue.is_empty open_obligations))
          && cycle - Queue.peek open_obligations > n
        do
          ignore (Queue.pop open_obligations);
          emit (Fail label);
          emitted := true
        done;
      if trigger sim then
        if okay then begin
          (* Satisfied in the very cycle it was requested. *)
          emit Pass;
          emitted := true
        end
        else begin
          Queue.push cycle open_obligations;
          emitted := true
        end;
      (* Cycles spent waiting on an open obligation are neither passes
         nor vacuous — the verdict comes when it closes or expires. *)
      if (not !emitted) && Queue.is_empty open_obligations then emit Vacuous)
    (fun _ emit ->
      if not (Queue.is_empty open_obligations) then begin
        Queue.clear open_obligations;
        emit (Fail (label ^ " (still open at finish)"))
      end)

let stable_unless ?label port_name allow =
  let label =
    Option.value ~default:(port_name ^ " stable unless allowed") label
  in
  let previous = ref None in
  make label
    (fun sim _ emit ->
      let current = Rtl_sim.get sim port_name in
      (match !previous with
      | None -> emit Vacuous
      | Some before ->
          let changed = not (Bitvec.equal before current) in
          let allowed = allow sim in
          if changed then emit (if allowed then Pass else Fail label)
          else
            (* No change: holding trivially, unless a change was
               permitted and simply didn't happen. *)
            emit (if allowed then Vacuous else Pass));
      previous := Some current)
    (fun _ _ -> ())

let add t prop = t.props <- prop :: t.props

let record t cycle p outcome =
  match outcome with
  | Pass -> p.n_pass <- p.n_pass + 1
  | Vacuous -> p.n_vacuous <- p.n_vacuous + 1
  | Fail label ->
      p.n_fail <- p.n_fail + 1;
      t.faults <- { at_cycle = cycle; label } :: t.faults

let check_all t =
  let cycle = Rtl_sim.cycles t.sim in
  List.iter (fun p -> p.check t.sim cycle (record t cycle p)) (List.rev t.props)

let step t =
  Rtl_sim.step t.sim;
  check_all t

let run t n =
  for _ = 1 to n do
    step t
  done

let attach t = Rtl_sim.on_step t.sim (fun _ -> check_all t)

let finish t =
  if not t.finished then begin
    t.finished <- true;
    let cycle = Rtl_sim.cycles t.sim in
    List.iter (fun p -> p.finalize cycle (record t cycle p)) (List.rev t.props)
  end

let violations t = List.rev t.faults
let ok t = t.faults = []

type summary = { s_label : string; passes : int; vacuous : int; fails : int }

let summaries t =
  List.rev_map
    (fun p ->
      { s_label = p.label; passes = p.n_pass; vacuous = p.n_vacuous; fails = p.n_fail })
    t.props

let db_monitors t =
  List.map
    (fun s ->
      Cover.Db.monitor ~name:s.s_label ~pass:s.passes ~vacuous:s.vacuous
        ~fail:s.fails)
    (summaries t)

let to_json t =
  Obs.Json.Obj
    [
      ( "props",
        Obs.Json.List
          (List.map
             (fun s ->
               Obs.Json.Obj
                 [
                   ("label", Obs.Json.String s.s_label);
                   ("pass", Obs.Json.Int s.passes);
                   ("vacuous", Obs.Json.Int s.vacuous);
                   ("fail", Obs.Json.Int s.fails);
                 ])
             (summaries t)) );
      ( "violations",
        Obs.Json.List
          (List.map
             (fun v ->
               Obs.Json.Obj
                 [
                   ("cycle", Obs.Json.Int v.at_cycle);
                   ("label", Obs.Json.String v.label);
                 ])
             (violations t)) );
      ("ok", Obs.Json.Bool (ok t));
    ]

let pp_violation fmt v =
  Format.fprintf fmt "cycle %d: %s" v.at_cycle v.label
