let ports dir (m : Ir.module_def) =
  List.filter_map
    (fun (p : Ir.port) ->
      if p.dir = dir then Some (p.port_name, p.port_var.Ir.width) else None)
    m.ports

module Impl = struct
  type t = Rtl_sim.t

  let kind = "rtl-interp"
  let inputs sim = ports Ir.Input (Rtl_sim.design sim)
  let outputs sim = ports Ir.Output (Rtl_sim.design sim)
  let set_input = Rtl_sim.set_input
  let get = Rtl_sim.get
  let settle = Rtl_sim.settle
  let step = Rtl_sim.step
  let cycles = Rtl_sim.cycles
  let lanes _ = 1

  let set_input_lane sim ~lane name bv =
    if lane <> 0 then invalid_arg "Rtl_engine: scalar backend has a single lane";
    Rtl_sim.set_input sim name bv

  let get_lane sim ~lane name =
    if lane <> 0 then invalid_arg "Rtl_engine: scalar backend has a single lane";
    Rtl_sim.get sim name

  let stats sim =
    [
      ("settles", Rtl_sim.settles sim);
      ("comb_runs", Rtl_sim.comb_runs sim);
      ("comb_skips", Rtl_sim.comb_skips sim);
      ("sync_runs", Rtl_sim.sync_runs sim);
    ]

  (* The RTL interpreter works on named variables, not nets; it has no
     sub-module hierarchy to probe after flattening. *)
  let probes _ = []
  let probe _ _ = raise Not_found
  let enable_cover = Rtl_sim.enable_toggle_cover
  let cover = Rtl_sim.toggle_cover

  (* Power estimation needs gate-level switching activity; the RTL
     interpreter has no cell capacitances to charge. *)
  let enable_power_sampler _ = ()
  let power_activity _ = None
  let enable_events = Rtl_sim.enable_events
  let events _ = Obs.Event.events ()

  let checkpoint sim =
    let ck = Rtl_sim.checkpoint sim in
    Some (fun () -> Rtl_sim.restore sim ck)
end

let of_sim ?label sim = Engine.pack ?label (module Impl) sim
let create ?label design = of_sim ?label (Rtl_sim.create design)
