(** The synthesizable hardware IR.

    This deep embedding plays the role of the {e synthesizable subset of
    standard SystemC} in the paper's flow (Figure 6): the OSSS
    synthesizer resolves object-oriented constructs down to this IR,
    hand-written "VHDL" RTL is expressed directly in it, and the netlist
    back end lowers it to gates.

    A design is a tree of modules.  Every synchronous process of every
    module is clocked by the single implicit system clock (the paper's
    ExpoCU runs entirely on one 66 MHz clock); resets are ordinary
    synchronous inputs tested inside process bodies.

    Sequential semantics inside a process body: an assignment is visible
    to subsequent statements of the same activation; registers commit at
    the end of the clock edge; communication between processes goes
    through the pre-edge snapshot. *)

type var = private {
  id : int;  (** globally unique *)
  var_name : string;
  width : int;  (** element width in bits, >= 1 *)
  depth : int;  (** 1 for a scalar, > 1 for an array (memory) *)
}

val fresh_var : ?depth:int -> name:string -> width:int -> unit -> var
(** Allocates a new variable with a unique [id]. *)

val clone_var : prefix:string -> var -> var
(** Fresh variable with the same shape, renamed — used when inlining
    hierarchy. *)

val is_array : var -> bool

type unop = Not | Neg | Reduce_and | Reduce_or | Reduce_xor

type binop =
  | Add
  | Sub
  | Mul
  | And
  | Or
  | Xor
  | Eq
  | Ne
  | Ult
  | Ule
  | Slt
  | Sle
  | Shl   (** shift amount is the right operand, any width *)
  | Lshr
  | Ashr

type expr =
  | Const of Bitvec.t
  | Var of var
  | Array_read of var * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Mux of expr * expr * expr  (** [Mux (sel, then_, else_)], [sel] 1 bit *)
  | Slice of expr * int * int  (** [Slice (e, hi, lo)] *)
  | Concat of expr * expr  (** left = high bits *)
  | Resize of bool * expr * int  (** signed?, expr, new width *)

type stmt =
  | Assign of var * expr
  | Assign_slice of var * int * expr
      (** [Assign_slice (v, lo, e)]: bits [lo .. lo + width e - 1]. *)
  | Array_write of var * expr * expr  (** memory, index, value *)
  | If of expr * stmt list * stmt list
  | Case of expr * (Bitvec.t * stmt list) list * stmt list
      (** scrutinee, labelled arms, default *)

type process =
  | Comb of { proc_name : string; body : stmt list }
      (** combinational: re-evaluated whenever any read value changes *)
  | Sync of { proc_name : string; body : stmt list }
      (** clocked on the implicit clock's rising edge *)

type port_dir = Input | Output

type port = { port_name : string; dir : port_dir; port_var : var }

type instance = {
  inst_name : string;
  inst_of : module_def;
  port_map : (string * var) list;  (** formal port name -> actual var *)
}

and module_def = {
  mod_name : string;
  ports : port list;
  locals : var list;
  processes : process list;
  instances : instance list;
}

(** {1 Typing} *)

exception Type_error of string

val width_of : expr -> int
(** Infers and checks the width of an expression; raises {!Type_error}
    on inconsistent operands. *)

val check_module : module_def -> unit
(** Full structural check: expression widths, assignment widths, port
    map completeness and widths, single-driver discipline, and that no
    variable is driven by both a [Comb] and a [Sync] process. *)

type var_kind = Kreg | Kwire | Kinput
(** How a variable is driven: by a [Sync] process, by a [Comb] process,
    or as a module input. *)

val classify_vars : module_def -> (int, var_kind) Hashtbl.t
(** Driver classification for all ports and locals of one (flat or
    hierarchical) module; instances are not entered. *)

(** {1 Traversal helpers} *)

val expr_reads : expr -> var list
val stmt_reads : stmt -> var list
val stmt_writes : stmt -> var list
val body_reads : stmt list -> var list
val body_writes : stmt list -> var list

val body_inputs : stmt list -> var list
(** Variables whose value {e on entry} the body can observe under
    sequential (read-after-write-sees-the-write) semantics: variables
    read before being definitely assigned on every path, plus
    read-modify-write targets ([Assign_slice], [Array_write]).  A subset
    of {!body_reads} plus RMW targets; the activity-based simulators use
    it as the process sensitivity list and snapshot set.  Each variable
    appears once, in first-observation order. *)

val find_port : module_def -> string -> port
(** Raises [Not_found]. *)

(** {1 Statistics and printing} *)

type stats = {
  n_processes : int;
  n_statements : int;
  n_expr_nodes : int;
  n_locals : int;
  n_state_bits : int;  (** total register bits (arrays included) *)
  n_instances : int;  (** direct child instances *)
}

val module_stats : module_def -> stats

val structural_hash : module_def -> string
(** Hex digest of the module's structure — ports, locals, process
    kinds/names/bodies, and instances recursively — with variable ids
    canonically renumbered by first occurrence, so two structurally
    identical modules hash equal even though {!fresh_var} ids are
    globally unique.  Used as the lowering memo-cache key. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_module : Format.formatter -> module_def -> unit
