let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

(* Map every variable of one module to a unique Verilog identifier. *)
let naming (m : Ir.module_def) =
  let tbl = Hashtbl.create 32 in
  let used = Hashtbl.create 32 in
  let claim (v : Ir.var) =
    let base = sanitize v.Ir.var_name in
    let name =
      if Hashtbl.mem used base then Printf.sprintf "%s_%d" base v.Ir.id
      else base
    in
    Hashtbl.replace used name ();
    Hashtbl.replace tbl v.Ir.id name
  in
  List.iter (fun (p : Ir.port) -> claim p.port_var) m.ports;
  List.iter claim m.locals;
  fun (v : Ir.var) ->
    match Hashtbl.find_opt tbl v.Ir.id with
    | Some n -> n
    | None -> sanitize v.Ir.var_name

let range w = if w = 1 then "" else Printf.sprintf "[%d:0] " (w - 1)

let rec expr name_of buf (e : Ir.expr) =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sub e = expr name_of buf e in
  match e with
  | Const c ->
      p "%d'h%s" (Bitvec.width c) (Bitvec.to_hex_string c)
  | Var v -> p "%s" (name_of v)
  | Array_read (v, idx) ->
      p "%s[" (name_of v);
      sub idx;
      p "]"
  | Unop (op, e) ->
      let s =
        match op with
        | Ir.Not -> "~"
        | Neg -> "-"
        | Reduce_and -> "&"
        | Reduce_or -> "|"
        | Reduce_xor -> "^"
      in
      p "(%s" s;
      sub e;
      p ")"
  | Binop (op, a, b) -> (
      match op with
      | Slt | Sle ->
          p "($signed(";
          sub a;
          p (match op with Slt -> ") < $signed(" | _ -> ") <= $signed(");
          sub b;
          p "))"
      | _ ->
          let s =
            match op with
            | Ir.Add -> "+"
            | Sub -> "-"
            | Mul -> "*"
            | And -> "&"
            | Or -> "|"
            | Xor -> "^"
            | Eq -> "=="
            | Ne -> "!="
            | Ult -> "<"
            | Ule -> "<="
            | Shl -> "<<"
            | Lshr -> ">>"
            | Ashr -> ">>>"
            | Slt | Sle -> assert false
          in
          p "(";
          sub a;
          p " %s " s;
          sub b;
          p ")")
  | Mux (s, t, e) ->
      p "(";
      sub s;
      p " ? ";
      sub t;
      p " : ";
      sub e;
      p ")"
  | Slice (e, hi, lo) ->
      (* Verilog cannot slice arbitrary expressions; materialization is
         the caller's concern, so restrict to variables and fall back to
         shift+mask otherwise. *)
      (match e with
      | Var v -> p "%s[%d:%d]" (name_of v) hi lo
      | _ ->
          let w = hi - lo + 1 in
          p "(%d'h%s & (" w (Bitvec.to_hex_string (Bitvec.ones w));
          sub e;
          p " >> %d))" lo)
  | Concat (a, b) ->
      p "{";
      sub a;
      p ", ";
      sub b;
      p "}"
  | Resize (signed, e, w) ->
      let we = Ir.width_of e in
      if w <= we then begin
        p "(%d'h%s & " w (Bitvec.to_hex_string (Bitvec.ones w));
        sub e;
        p ")"
      end
      else if signed then begin
        p "{{%d{" (w - we);
        (match e with
        | Var v -> p "%s[%d]" (name_of v) (we - 1)
        | _ ->
            p "(";
            sub e;
            p ") >> %d" (we - 1));
        p "}}, ";
        sub e;
        p "}"
      end
      else begin
        p "{%d'h0, " (w - we);
        sub e;
        p "}"
      end

let rec stmt name_of buf indent (st : Ir.stmt) =
  let pad = String.make indent ' ' in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let e x = expr name_of buf x in
  match st with
  | Assign (v, rhs) ->
      p "%s%s = " pad (name_of v);
      e rhs;
      p ";\n"
  | Assign_slice (v, lo, rhs) ->
      let w = Ir.width_of rhs in
      p "%s%s[%d:%d] = " pad (name_of v) (lo + w - 1) lo;
      e rhs;
      p ";\n"
  | Array_write (v, idx, rhs) ->
      p "%s%s[" pad (name_of v);
      e idx;
      p "] = ";
      e rhs;
      p ";\n"
  | If (c, t, els) ->
      p "%sif (" pad;
      e c;
      p ") begin\n";
      List.iter (stmt name_of buf (indent + 2)) t;
      if els <> [] then begin
        p "%send else begin\n" pad;
        List.iter (stmt name_of buf (indent + 2)) els
      end;
      p "%send\n" pad
  | Case (s, arms, dflt) ->
      p "%scase (" pad;
      e s;
      p ")\n";
      List.iter
        (fun (label, body) ->
          p "%s  %d'h%s: begin\n" pad (Bitvec.width label)
            (Bitvec.to_hex_string label);
          List.iter (stmt name_of buf (indent + 4)) body;
          p "%s  end\n" pad)
        arms;
      p "%s  default: begin\n" pad;
      List.iter (stmt name_of buf (indent + 4)) dflt;
      p "%s  end\n" pad;
      p "%sendcase\n" pad

let emit_module (m : Ir.module_def) =
  let name_of = naming m in
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let has_sync =
    List.exists (function Ir.Sync _ -> true | Ir.Comb _ -> false) m.processes
    || m.instances <> []
  in
  let port_names =
    (if has_sync then [ "clk" ] else [])
    @ List.map (fun (pt : Ir.port) -> name_of pt.port_var) m.ports
  in
  p "module %s(%s);\n" (sanitize m.mod_name) (String.concat ", " port_names);
  if has_sync then p "  input clk;\n";
  List.iter
    (fun (pt : Ir.port) ->
      let dir = match pt.dir with Ir.Input -> "input" | Output -> "output" in
      let reg =
        match pt.dir with
        | Ir.Output -> " reg"
        | Input -> ""
      in
      p "  %s%s %s%s;\n" dir reg (range pt.port_var.Ir.width)
        (name_of pt.port_var))
    m.ports;
  List.iter
    (fun (v : Ir.var) ->
      if Ir.is_array v then
        p "  reg %s%s [0:%d];\n" (range v.Ir.width) (name_of v) (v.Ir.depth - 1)
      else p "  reg %s%s;\n" (range v.Ir.width) (name_of v))
    m.locals;
  List.iter
    (fun (inst : Ir.instance) ->
      let child_has_sync =
        List.exists
          (function Ir.Sync _ -> true | Ir.Comb _ -> false)
          inst.inst_of.processes
        || inst.inst_of.instances <> []
      in
      let conns =
        (if child_has_sync then [ ".clk(clk)" ] else [])
        @ List.map
            (fun (formal, actual) ->
              Printf.sprintf ".%s(%s)" (sanitize formal) (name_of actual))
            inst.port_map
      in
      p "  %s %s(%s);\n"
        (sanitize inst.inst_of.Ir.mod_name)
        (sanitize inst.inst_name) (String.concat ", " conns))
    m.instances;
  List.iter
    (fun proc ->
      match proc with
      | Ir.Comb { proc_name; body } ->
          p "  // comb process %s\n" proc_name;
          p "  always @* begin\n";
          List.iter (stmt name_of buf 4) body;
          p "  end\n"
      | Ir.Sync { proc_name; body } ->
          p "  // sync process %s\n" proc_name;
          p "  always @(posedge clk) begin\n";
          List.iter (stmt name_of buf 4) body;
          p "  end\n")
    m.processes;
  p "endmodule\n";
  Buffer.contents buf

let emit m =
  (* Children first, each distinct module once. *)
  let seen = Hashtbl.create 8 in
  let out = Buffer.create 4096 in
  let rec walk (m : Ir.module_def) =
    List.iter (fun (i : Ir.instance) -> walk i.inst_of) m.instances;
    if not (Hashtbl.mem seen m.mod_name) then begin
      Hashtbl.replace seen m.mod_name ();
      Buffer.add_string out (emit_module m);
      Buffer.add_char out '\n'
    end
  in
  walk m;
  Buffer.contents out
