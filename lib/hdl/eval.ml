type value = Scalar of Bitvec.t | Arr of Bitvec.t array

type env = (int, value) Hashtbl.t

let create () : env = Hashtbl.create 64

let set env (v : Ir.var) bv =
  assert (Bitvec.width bv = v.Ir.width);
  Hashtbl.replace env v.Ir.id (Scalar bv)

let get env (v : Ir.var) =
  match Hashtbl.find_opt env v.Ir.id with
  | Some (Scalar bv) -> bv
  | Some (Arr _) -> invalid_arg ("Eval.get: array " ^ v.Ir.var_name)
  | None -> Bitvec.zero v.Ir.width

let get_array env (v : Ir.var) =
  match Hashtbl.find_opt env v.Ir.id with
  | Some (Arr a) -> a
  | Some (Scalar _) -> invalid_arg ("Eval.get_array: scalar " ^ v.Ir.var_name)
  | None ->
      let a = Array.make v.Ir.depth (Bitvec.zero v.Ir.width) in
      Hashtbl.replace env v.Ir.id (Arr a);
      a

let set_array_elem env v i bv =
  let a = get_array env v in
  if i >= 0 && i < Array.length a then a.(i) <- bv

let snapshot env (vars : Ir.var list) =
  (* Partial deep copy: only the listed vars are captured.  Vars missing
     from [env] are left missing — they read back as zero either way. *)
  let fresh : env = Hashtbl.create (max 8 (2 * List.length vars)) in
  List.iter
    (fun (v : Ir.var) ->
      match Hashtbl.find_opt env v.Ir.id with
      | None -> ()
      | Some (Scalar bv) -> Hashtbl.replace fresh v.Ir.id (Scalar bv)
      | Some (Arr a) -> Hashtbl.replace fresh v.Ir.id (Arr (Array.copy a)))
    vars;
  fresh

let copy env =
  let fresh = Hashtbl.create (Hashtbl.length env) in
  Hashtbl.iter
    (fun id value ->
      let value' =
        match value with Scalar bv -> Scalar bv | Arr a -> Arr (Array.copy a)
      in
      Hashtbl.replace fresh id value')
    env;
  fresh

let overwrite dst src =
  (* In-place deep replacement: [dst] keeps its identity (simulator
     structs hold the env by reference) but afterwards reads exactly
     like [src], which stays untouched — restoring from the same
     checkpoint twice works. *)
  Hashtbl.reset dst;
  Hashtbl.iter
    (fun id value ->
      let value' =
        match value with Scalar bv -> Scalar bv | Arr a -> Arr (Array.copy a)
      in
      Hashtbl.replace dst id value')
    src

let bool_bv b = Bitvec.of_bool b

let rec eval_expr env (e : Ir.expr) =
  match e with
  | Const c -> c
  | Var v -> get env v
  | Array_read (v, idx) ->
      let a = get_array env v in
      let i = Bitvec.to_int (eval_expr env idx) in
      if i < Array.length a then a.(i) else Bitvec.zero v.Ir.width
  | Unop (op, e) -> (
      let x = eval_expr env e in
      match op with
      | Not -> Bitvec.lognot x
      | Neg -> Bitvec.neg x
      | Reduce_and -> bool_bv (Bitvec.reduce_and x)
      | Reduce_or -> bool_bv (Bitvec.reduce_or x)
      | Reduce_xor -> bool_bv (Bitvec.reduce_xor x))
  | Binop (op, a, b) -> (
      let x = eval_expr env a and y = eval_expr env b in
      match op with
      | Add -> Bitvec.add x y
      | Sub -> Bitvec.sub x y
      | Mul -> Bitvec.mul x y
      | And -> Bitvec.logand x y
      | Or -> Bitvec.logor x y
      | Xor -> Bitvec.logxor x y
      | Eq -> bool_bv (Bitvec.equal x y)
      | Ne -> bool_bv (not (Bitvec.equal x y))
      | Ult -> bool_bv (Bitvec.ult x y)
      | Ule -> bool_bv (Bitvec.ule x y)
      | Slt -> bool_bv (Bitvec.slt x y)
      | Sle -> bool_bv (Bitvec.sle x y)
      | Shl | Lshr | Ashr ->
          (* A shift by more than the width saturates to the width, which
             keeps the OCaml int conversion safe for any operand. *)
          let w = Bitvec.width x in
          let amount =
            match Bitvec.to_int y with
            | n -> min n w
            | exception Bitvec.Invalid_bitvec _ -> w
          in
          (match op with
          | Shl -> Bitvec.shift_left x amount
          | Lshr -> Bitvec.shift_right_logical x amount
          | Ashr -> Bitvec.shift_right_arith x amount
          | _ -> assert false))
  | Mux (s, t, e) ->
      if Bitvec.lsb (eval_expr env s) then eval_expr env t else eval_expr env e
  | Slice (e, hi, lo) -> Bitvec.slice (eval_expr env e) ~hi ~lo
  | Concat (a, b) -> Bitvec.concat (eval_expr env a) (eval_expr env b)
  | Resize (signed, e, w) -> Bitvec.resize ~signed (eval_expr env e) w

let rec run_stmt env (st : Ir.stmt) =
  match st with
  | Assign (v, e) -> set env v (eval_expr env e)
  | Assign_slice (v, lo, e) ->
      let field = eval_expr env e in
      set env v (Bitvec.set_slice (get env v) ~lo field)
  | Array_write (v, idx, e) ->
      let i = Bitvec.to_int (eval_expr env idx) in
      set_array_elem env v i (eval_expr env e)
  | If (c, t, e) ->
      if Bitvec.lsb (eval_expr env c) then run_body env t else run_body env e
  | Case (s, arms, dflt) ->
      let scrutinee = eval_expr env s in
      let rec pick = function
        | [] -> run_body env dflt
        | (label, body) :: rest ->
            if Bitvec.equal label scrutinee then run_body env body
            else pick rest
      in
      pick arms

and run_body env body = List.iter (run_stmt env) body
