(** VHDL emitter for IR designs — the baseline flow's exchange format
    ([*.vhd] in the paper's Figure 6).

    Each module becomes an entity/architecture pair; IR sequential
    semantics (assignments visible to later statements of the same
    activation) is preserved by shadowing written signals with process
    variables. *)

val emit : Ir.module_def -> string
(** Children first, top entity last. *)

val emit_module : Ir.module_def -> string
