(** Value-change-dump tracing — the [sc_trace] equivalent.

    Register signals before running the simulation; the dump is written
    incrementally into a buffer and retrieved with {!contents} (or saved
    with {!save}) after the run. *)

type t

val create : Kernel.t -> ?timescale:string -> ?top:string -> unit -> t
(** [timescale] defaults to ["1ps"]; [top] is the scope name. *)

val trace_bool : t -> bool Signal.t -> unit
val trace_bitvec : t -> Bitvec.t Signal.t -> unit
val trace_int : t -> width:int -> int Signal.t -> unit

val signal_count : t -> int

val contents : t -> string
(** Full VCD document (header plus all changes so far). *)

val save : t -> string -> unit
(** Write {!contents} to a file. *)
