(** Free-running clock generators.

    A clock is a boolean signal toggled by the kernel's timed queue.  The
    ExpoCU system clock in the paper is 66 MHz; [create ~freq_mhz:66.0]
    builds exactly that. *)

type t

val create :
  Kernel.t -> ?name:string -> ?start_high:bool -> period_ps:int -> unit -> t
(** A clock with the given full period in picoseconds.  The first edge
    occurs half a period after simulation start. *)

val of_freq_mhz : Kernel.t -> ?name:string -> float -> t

val signal : t -> bool Signal.t
val posedge : t -> Kernel.event
val negedge : t -> Kernel.event
val period_ps : t -> int

val cycles_elapsed : t -> Kernel.t -> int
(** Number of full periods since time zero at the kernel's current
    time. *)
