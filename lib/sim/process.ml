open Effect
open Effect.Deep

exception Wait_outside_thread

type _ Effect.t += Suspend : unit Effect.t

exception Reset_restart

type state = Ready | Suspended | Done

type thread = {
  t_name : string;
  kernel : Kernel.t;
  body : ctx -> unit;
  mutable cont : (unit, unit) continuation option;
  mutable state : state;
  mutable restarts : int;
}

and ctx = { this : thread; kind : kind }

and kind =
  | Clocked of { clock : Clock.t; reset : bool Signal.t option; active_high : bool }
  | Async

type t = Method of string | Thread of thread

let name = function Method n -> n | Thread th -> th.t_name
let terminated = function Method _ -> false | Thread th -> th.state = Done
let restarts = function Method _ -> 0 | Thread th -> th.restarts

let method_ k ~name ~sensitive f =
  let f () =
    Kernel.record_wake k name;
    f ()
  in
  List.iter (fun ev -> Kernel.subscribe_static ev f) sensitive;
  Kernel.add_startup k f;
  Method name

(* Launch (or relaunch after reset) the thread body under the effect
   handler.  The handler is deep, so a single installation covers every
   subsequent [Suspend] of this activation. *)
let start th ctx =
  Kernel.record_wake th.kernel th.t_name;
  th.state <- Ready;
  match_with th.body ctx
    {
      retc = (fun () -> th.state <- Done);
      exnc =
        (fun e ->
          match e with
          | Reset_restart -> th.state <- Ready
          | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend ->
              Some
                (fun (k : (a, _) continuation) ->
                  th.state <- Suspended;
                  th.cont <- Some k)
          | _ -> None);
    }

let resume th =
  match th.cont with
  | Some k ->
      Kernel.record_wake th.kernel th.t_name;
      th.cont <- None;
      th.state <- Ready;
      continue k ()
  | None -> ()

let kill_pending th =
  match th.cont with
  | Some k ->
      th.cont <- None;
      (* Unwind the suspended body; the handler's [exnc] swallows the
         restart exception so this call returns normally. *)
      discontinue k Reset_restart
  | None -> ()

let cthread k ~name ~clock ?reset ?(reset_active_high = true) body =
  let th =
    { t_name = name; kernel = k; body; cont = None; state = Ready; restarts = 0 }
  in
  let ctx =
    { this = th; kind = Clocked { clock; reset; active_high = reset_active_high } }
  in
  let reset_active () =
    match reset with
    | None -> false
    | Some r -> Signal.read r = reset_active_high
  in
  let on_edge () =
    match th.state with
    | Done -> ()
    | Ready | Suspended ->
        if reset_active () then begin
          kill_pending th;
          th.restarts <- th.restarts + 1;
          start th ctx
        end
        else resume th
  in
  Kernel.subscribe_static (Clock.posedge clock) on_edge;
  Kernel.add_startup k (fun () -> start th ctx);
  Thread th

let thread k ~name body =
  let th =
    { t_name = name; kernel = k; body; cont = None; state = Ready; restarts = 0 }
  in
  let ctx = { this = th; kind = Async } in
  Kernel.add_startup k (fun () -> start th ctx);
  Thread th

let wait ctx =
  match ctx.kind with
  | Clocked _ -> perform Suspend
  | Async -> raise Wait_outside_thread

let wait_n ctx n =
  if n < 1 then invalid_arg "Process.wait_n: count must be >= 1";
  for _ = 1 to n do
    wait ctx
  done

let rec wait_until ctx pred =
  wait ctx;
  if not (pred ()) then wait_until ctx pred

let await_event ctx ev =
  Kernel.subscribe_once ev (fun () -> resume ctx.this);
  perform Suspend

let delay ctx d =
  Kernel.schedule_at ctx.this.kernel d (fun () -> resume ctx.this);
  perform Suspend
