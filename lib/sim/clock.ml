type t = { sig_ : bool Signal.t; period : int }

let create k ?(name = "clk") ?(start_high = false) ~period_ps () =
  if period_ps < 2 then invalid_arg "Clock.create: period must be >= 2 ps";
  let sig_ = Signal.create k ~name start_high in
  let half = period_ps / 2 in
  let rec toggle v () =
    Signal.write sig_ v;
    Kernel.schedule_at k half (toggle (not v))
  in
  Kernel.add_startup k (fun () ->
      Kernel.schedule_at k half (toggle (not start_high)));
  { sig_; period = period_ps }

let of_freq_mhz k ?name freq =
  if freq <= 0.0 then invalid_arg "Clock.of_freq_mhz: frequency must be > 0";
  let period = int_of_float (1e6 /. freq) in
  create k ?name ~period_ps:(max 2 period) ()

let signal c = c.sig_
let posedge c = Signal.posedge_event c.sig_
let negedge c = Signal.negedge_event c.sig_
let period_ps c = c.period
let cycles_elapsed c k = Kernel.now k / c.period
