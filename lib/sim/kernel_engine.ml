type port = { p_name : string; p_width : int }

type t = {
  kernel : Kernel.t;
  step_fn : unit -> unit;
  settle_fn : unit -> unit;
  mutable ins : (port * (Bitvec.t -> unit)) list;  (* reverse order *)
  mutable outs : (port * (unit -> Bitvec.t)) list;
  driven : (string, Bitvec.t) Hashtbl.t;
  mutable n_cycles : int;
}

let create kernel ?settle ~step () =
  {
    kernel;
    step_fn = step;
    settle_fn = Option.value settle ~default:(fun () -> Kernel.run_for kernel 0);
    ins = [];
    outs = [];
    driven = Hashtbl.create 8;
    n_cycles = 0;
  }

let add_input t name ~width set =
  t.ins <- ({ p_name = name; p_width = width }, set) :: t.ins

let add_output t name ~width get =
  t.outs <- ({ p_name = name; p_width = width }, get) :: t.outs

let input_signal t ~width s =
  add_input t (Signal.name s) ~width (Signal.write s)

let output_signal t ~width s =
  add_output t (Signal.name s) ~width (fun () -> Signal.read s)

let bool_input_signal t s =
  add_input t (Signal.name s) ~width:1 (fun bv -> Signal.write s (Bitvec.lsb bv))

let bool_output_signal t s =
  add_output t (Signal.name s) ~width:1 (fun () ->
      Bitvec.of_bool (Signal.read s))

module Impl = struct
  type nonrec t = t

  let kind = "behavioural"

  let port_list l = List.rev_map (fun (p, _) -> (p.p_name, p.p_width)) l
  let inputs t = port_list t.ins
  let outputs t = port_list t.outs

  let set_input t name bv =
    match
      List.find_opt (fun (p, _) -> p.p_name = name) t.ins
    with
    | None -> raise Not_found
    | Some (p, set) ->
        if Bitvec.width bv <> p.p_width then
          invalid_arg
            (Printf.sprintf "Kernel_engine.set_input %s: width %d expected %d"
               name (Bitvec.width bv) p.p_width);
        Hashtbl.replace t.driven name bv;
        set bv

  let get t name =
    match List.find_opt (fun (p, _) -> p.p_name = name) t.outs with
    | Some (_, read) -> read ()
    | None -> (
        match Hashtbl.find_opt t.driven name with
        | Some bv -> bv
        | None ->
            let p, _ = List.find (fun (p, _) -> p.p_name = name) t.ins in
            Bitvec.zero p.p_width)

  let settle t = t.settle_fn ()

  let step t =
    t.step_fn ();
    t.n_cycles <- t.n_cycles + 1

  let cycles t = t.n_cycles
  let lanes _ = 1

  let set_input_lane t ~lane name bv =
    if lane <> 0 then
      invalid_arg "Kernel_engine: scalar backend has a single lane";
    set_input t name bv

  let get_lane t ~lane name =
    if lane <> 0 then
      invalid_arg "Kernel_engine: scalar backend has a single lane";
    get t name

  let stats t =
    [
      ("delta_cycles", Kernel.delta_count t.kernel);
      ("process_runs", Kernel.process_runs t.kernel);
      ( "process_wakes",
        List.fold_left (fun acc (_, n) -> acc + n) 0 (Kernel.wake_counts t.kernel)
      );
    ]

  (* Behavioural processes expose ports only. *)
  let probes _ = []
  let probe _ _ = raise Not_found

  (* Behavioural processes have no netlist to toggle-cover — nor any
     gate capacitances for power sampling. *)
  let enable_cover _ = ()
  let cover _ = None
  let enable_power_sampler _ = ()
  let power_activity _ = None

  (* The kernel emits delta/process events whenever the global log is
     on; there is no per-instance flag to raise. *)
  let enable_events _ = if not (Obs.Event.enabled ()) then Obs.Event.enable ()
  let events _ = Obs.Event.events ()

  (* Rewinding suspended process continuations is not supported. *)
  let checkpoint _ = None
end

let engine ?label t = Engine.pack ?label (module Impl) t
