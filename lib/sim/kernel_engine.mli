(** {!Engine} adapter for behavioural models running on the
    discrete-event {!Kernel} — the OSSS/behavioural stage of the flow.

    A behavioural model exposes an engine by registering named input
    setters and output getters (typically {!Signal} writes and reads)
    and a [step] thunk that advances the kernel by one clock cycle
    (e.g. [Kernel.run_for k (Clock.period_ps clk)]).  The wrapped model
    then participates in the N-way differential harness and the
    consolidated trace exactly like the RTL and gate-level engines. *)

type t

val create : Kernel.t -> ?settle:(unit -> unit) -> step:(unit -> unit) ->
  unit -> t
(** [settle] defaults to running the pending delta cycles at the
    current time ([Kernel.run_for k 0]). *)

val add_input : t -> string -> width:int -> (Bitvec.t -> unit) -> unit
val add_output : t -> string -> width:int -> (unit -> Bitvec.t) -> unit

val input_signal : t -> width:int -> Bitvec.t Signal.t -> unit
(** Register a bitvector signal as an input port under its signal
    name. *)

val output_signal : t -> width:int -> Bitvec.t Signal.t -> unit
val bool_input_signal : t -> bool Signal.t -> unit
val bool_output_signal : t -> bool Signal.t -> unit

val engine : ?label:string -> t -> Engine.t
(** Pack as an engine of kind ["behavioural"]; [stats] reports the
    kernel's delta-cycle and process-activation counts. *)
