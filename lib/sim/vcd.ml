type t = { kernel : Kernel.t; doc : Vcd_writer.t }

let create kernel ?(timescale = "1ps") ?(top = "top") () =
  {
    kernel;
    doc =
      Vcd_writer.create ~date:"osss simulation"
        ~version:"osss-ocaml vcd writer" ~timescale ~top ();
  }

let emit_change t id value = Vcd_writer.change t.doc ~time:(Kernel.now t.kernel) id value

let bool_str b = if b then "1" else "0"

let trace_bool t s =
  let id =
    Vcd_writer.register t.doc ~name:(Signal.name s) ~width:1
      ~initial:(bool_str (Signal.read s))
      ()
  in
  Signal.on_change s (fun v -> emit_change t id (bool_str v))

let trace_bitvec t s =
  let width = Bitvec.width (Signal.read s) in
  let id =
    Vcd_writer.register t.doc ~name:(Signal.name s) ~width
      ~initial:(Bitvec.to_binary_string (Signal.read s))
      ()
  in
  Signal.on_change s (fun v -> emit_change t id (Bitvec.to_binary_string v))

let trace_int t ~width s =
  let to_bin v = Bitvec.to_binary_string (Bitvec.of_int ~width v) in
  let id =
    Vcd_writer.register t.doc ~name:(Signal.name s) ~width
      ~initial:(to_bin (Signal.read s))
      ()
  in
  Signal.on_change s (fun v -> emit_change t id (to_bin v))

let signal_count t = Vcd_writer.signal_count t.doc
let contents t = Vcd_writer.contents t.doc
let save t path = Vcd_writer.save t.doc path
