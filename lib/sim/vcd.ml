type var = { id : string; vcd_name : string; vcd_width : int; initial : string }

type t = {
  kernel : Kernel.t;
  timescale : string;
  top : string;
  mutable vars : var list;
  mutable next_id : int;
  changes : Buffer.t;
  mutable last_time : int;
}

let create kernel ?(timescale = "1ps") ?(top = "top") () =
  {
    kernel;
    timescale;
    top;
    vars = [];
    next_id = 0;
    changes = Buffer.create 4096;
    last_time = -1;
  }

(* Short printable identifiers drawn from the printable ASCII range. *)
let fresh_id t =
  let n = t.next_id in
  t.next_id <- n + 1;
  let base = 94 and first = 33 in
  let rec build n acc =
    let c = Char.chr (first + (n mod base)) in
    let acc = String.make 1 c ^ acc in
    if n < base then acc else build ((n / base) - 1) acc
  in
  build n ""

let emit_change t id width value_str =
  let now = Kernel.now t.kernel in
  if now <> t.last_time then begin
    Buffer.add_string t.changes (Printf.sprintf "#%d\n" now);
    t.last_time <- now
  end;
  if width = 1 then Buffer.add_string t.changes (value_str ^ id ^ "\n")
  else Buffer.add_string t.changes (Printf.sprintf "b%s %s\n" value_str id)

let register t ~name ~width ~initial ~hook =
  let id = fresh_id t in
  t.vars <- { id; vcd_name = name; vcd_width = width; initial } :: t.vars;
  hook id

let bool_str b = if b then "1" else "0"

let trace_bool t s =
  let hook id =
    Signal.on_change s (fun v -> emit_change t id 1 (bool_str v))
  in
  register t ~name:(Signal.name s) ~width:1
    ~initial:(bool_str (Signal.read s))
    ~hook

let trace_bitvec t s =
  let width = Bitvec.width (Signal.read s) in
  let hook id =
    Signal.on_change s (fun v ->
        emit_change t id width (Bitvec.to_binary_string v))
  in
  register t ~name:(Signal.name s) ~width
    ~initial:(Bitvec.to_binary_string (Signal.read s))
    ~hook

let trace_int t ~width s =
  let to_bin v = Bitvec.to_binary_string (Bitvec.of_int ~width v) in
  let hook id = Signal.on_change s (fun v -> emit_change t id width (to_bin v)) in
  register t ~name:(Signal.name s) ~width ~initial:(to_bin (Signal.read s)) ~hook

let signal_count t = List.length t.vars

let contents t =
  let b = Buffer.create (Buffer.length t.changes + 1024) in
  Buffer.add_string b "$date\n  osss simulation\n$end\n";
  Buffer.add_string b "$version\n  osss-ocaml vcd writer\n$end\n";
  Buffer.add_string b (Printf.sprintf "$timescale %s $end\n" t.timescale);
  Buffer.add_string b (Printf.sprintf "$scope module %s $end\n" t.top);
  let vars = List.rev t.vars in
  List.iter
    (fun v ->
      Buffer.add_string b
        (Printf.sprintf "$var wire %d %s %s $end\n" v.vcd_width v.id v.vcd_name))
    vars;
  Buffer.add_string b "$upscope $end\n$enddefinitions $end\n";
  Buffer.add_string b "$dumpvars\n";
  List.iter
    (fun v ->
      if v.vcd_width = 1 then Buffer.add_string b (v.initial ^ v.id ^ "\n")
      else Buffer.add_string b (Printf.sprintf "b%s %s\n" v.initial v.id))
    vars;
  Buffer.add_string b "$end\n";
  Buffer.add_buffer b t.changes;
  Buffer.contents b

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (contents t))
