type 'a t = {
  sig_name : string;
  k : Kernel.t;
  equal : 'a -> 'a -> bool;
  mutable current : 'a;
  mutable next : 'a;
  mutable scheduled : bool;
  changed : Kernel.event;
  mutable observers : ('a -> unit) list;
  mutable posedge : Kernel.event option;
  mutable negedge : Kernel.event option;
}

let create k ?(equal = ( = )) ~name init =
  {
    sig_name = name;
    k;
    equal;
    current = init;
    next = init;
    scheduled = false;
    changed = Kernel.make_event k (name ^ ".changed");
    observers = [];
    posedge = None;
    negedge = None;
  }

let name s = s.sig_name
let read s = s.current
let kernel s = s.k
let changed_event s = s.changed
let on_change s f = s.observers <- f :: s.observers

let commit s () =
  s.scheduled <- false;
  if not (s.equal s.current s.next) then begin
    s.current <- s.next;
    Kernel.notify s.changed;
    List.iter (fun f -> f s.current) (List.rev s.observers)
  end

let write s v =
  s.next <- v;
  if not s.scheduled then begin
    s.scheduled <- true;
    Kernel.schedule_update s.k (commit s)
  end

let force s v =
  s.current <- v;
  s.next <- v

(* Edge events are created lazily and fed by a change observer so that
   signals which nobody watches pay nothing. *)
let edge_events s =
  match (s.posedge, s.negedge) with
  | Some p, Some n -> (p, n)
  | _ ->
      let p = Kernel.make_event s.k (s.sig_name ^ ".posedge") in
      let n = Kernel.make_event s.k (s.sig_name ^ ".negedge") in
      s.posedge <- Some p;
      s.negedge <- Some n;
      on_change s (fun v -> Kernel.notify (if v then p else n));
      (p, n)

let posedge_event s = fst (edge_events s)
let negedge_event s = snd (edge_events s)
