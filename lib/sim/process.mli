(** Simulation processes.

    Three flavours, mirroring SystemC:
    - {e methods} ([SC_METHOD]): run-to-completion callbacks with static
      sensitivity;
    - {e clocked threads} ([SC_CTHREAD]): suspendable bodies woken at
      every rising clock edge, with synchronous-reset restart semantics
      (the paper's [watching (reset.delayed() == true)]);
    - {e async threads} ([SC_THREAD]): suspendable bodies that wait on
      arbitrary events or time delays (testbenches).

    Thread suspension is implemented with OCaml effect handlers; a
    [wait] performs an effect whose continuation is resumed by the
    scheduler. *)

type ctx
(** Handle threads use to suspend themselves.  Only valid inside the
    body of the thread it was given to. *)

type t

exception Wait_outside_thread

(** {1 Methods} *)

val method_ :
  Kernel.t -> name:string -> sensitive:Kernel.event list -> (unit -> unit) -> t
(** Statically sensitive run-to-completion process; also runs once in
    the first evaluation phase, like SystemC initialization. *)

(** {1 Clocked threads} *)

val cthread :
  Kernel.t ->
  name:string ->
  clock:Clock.t ->
  ?reset:bool Signal.t ->
  ?reset_active_high:bool ->
  (ctx -> unit) ->
  t
(** The body starts in the first evaluation phase and must suspend with
    {!wait}.  At every rising clock edge: if [reset] is active the
    pending continuation is discarded and the body restarts from the
    top; otherwise the thread resumes after its [wait]. *)

(** {1 Async threads} *)

val thread : Kernel.t -> name:string -> (ctx -> unit) -> t
(** Starts in the first evaluation phase; may use {!await_event} and
    {!delay}. *)

(** {1 Suspension primitives (inside thread bodies)} *)

val wait : ctx -> unit
(** Clocked threads: suspend until the next rising edge (post-reset
    check). *)

val wait_n : ctx -> int -> unit
(** [wait_n ctx n] waits [n] >= 1 edges. *)

val wait_until : ctx -> (unit -> bool) -> unit
(** Wait edges until the predicate holds (checked after each edge). *)

val await_event : ctx -> Kernel.event -> unit
(** Async threads: suspend until the event fires. *)

val delay : ctx -> Kernel.time -> unit
(** Async threads: suspend for a simulated duration. *)

(** {1 Observation} *)

val name : t -> string
val terminated : t -> bool
(** The body returned normally. *)

val restarts : t -> int
(** Number of reset-induced restarts (diagnostic). *)
