(** Discrete-event simulation kernel with delta cycles.

    This is the SystemC simulation-kernel equivalent.  A kernel owns a
    current simulation time (in picoseconds), a queue of runnable
    processes, a set of pending signal updates, and a timed event queue.

    One simulation step is the classic two-phase loop:
    + {e evaluation}: run every runnable process; processes read signal
      current values and write signal next values;
    + {e update}: commit written signals; each value change notifies its
      event, which makes subscribed processes runnable in the next delta.

    Time only advances when no delta work remains. *)

type time = int
(** Picoseconds since simulation start. *)

type t
(** A simulation context. *)

type event
(** A notification channel processes can subscribe to. *)

exception Deadlock of string
(** Raised by {!run_until} when asked to advance but no timed activity
    remains and processes are still waiting. *)

val create : unit -> t

val now : t -> time
val delta_count : t -> int
(** Total number of delta cycles executed so far (a simulation-cost
    metric used by the benchmarks). *)

val process_runs : t -> int
(** Total number of process activations executed so far. *)

val record_wake : t -> string -> unit
(** Tally one wakeup against a named process (called by [Process] on
    every activation; exposed for other front ends that schedule named
    work on the kernel). *)

val wake_counts : t -> (string * int) list
(** Per-process wake counts, sorted by name — the kernel-level activity
    profile. *)

(** {1 Events} *)

val make_event : t -> string -> event
val event_name : event -> string

val subscribe_static : event -> (unit -> unit) -> unit
(** Persistent subscription (static sensitivity): the callback is made
    runnable at every notification. *)

val subscribe_once : event -> (unit -> unit) -> unit
(** One-shot subscription (dynamic sensitivity). *)

val notify : event -> unit
(** Delta notification: subscribers run in the next delta cycle. *)

val notify_after : event -> time -> unit
(** Timed notification [delay] picoseconds from now. *)

(** {1 Processes and scheduling} *)

val schedule_now : t -> (unit -> unit) -> unit
(** Make a thunk runnable in the current evaluation phase. *)

val schedule_update : t -> (unit -> unit) -> unit
(** Register a commit action for the coming update phase (used by
    signals; not for user code). *)

val schedule_at : t -> time -> (unit -> unit) -> unit
(** Run a thunk when simulation time reaches [now + delay]. *)

val add_startup : t -> (unit -> unit) -> unit
(** Run a thunk in the very first evaluation phase. *)

(** {1 Running} *)

val run_until : t -> time -> unit
(** Execute until simulation time would exceed the bound (inclusive) or
    until {!stop} is called, whichever comes first.  Runs pending deltas
    at the final time point. *)

val run_for : t -> time -> unit
(** [run_for k d] = [run_until k (now k + d)]. *)

val stop : t -> unit
(** Request the current [run_until] to return after the current delta. *)

val stopped : t -> bool
