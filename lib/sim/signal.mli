(** Signals with SystemC semantics: reads see the value committed in the
    last update phase; writes take effect in the next update phase, and
    a change notifies the signal's event. *)

type 'a t

val create :
  Kernel.t -> ?equal:('a -> 'a -> bool) -> name:string -> 'a -> 'a t
(** [create k ~name init] makes a signal whose current value is [init].
    [equal] (default [Stdlib.( = )]) decides whether a commit is a
    change. *)

val name : 'a t -> string
val read : 'a t -> 'a
val write : 'a t -> 'a -> unit

val force : 'a t -> 'a -> unit
(** Immediately set the current value without an update phase; intended
    for initialization before the simulation starts. *)

val changed_event : 'a t -> Kernel.event
(** Notified in the delta after any committed change. *)

val on_change : 'a t -> ('a -> unit) -> unit
(** Synchronous observer called during the update phase with the new
    value (used by tracing; must not write signals). *)

val kernel : 'a t -> Kernel.t

(** {1 Derived helpers for boolean signals} *)

val posedge_event : bool t -> Kernel.event
(** Notified one delta after the signal commits a [false -> true]
    transition.  Allocated lazily; shared across calls. *)

val negedge_event : bool t -> Kernel.event
