type time = int

exception Deadlock of string

module Timed_queue = struct
  (* Binary min-heap of (time, sequence, thunk).  The sequence number
     keeps notifications at equal times in insertion order, which gives
     deterministic simulations. *)
  type entry = { at : time; seq : int; thunk : unit -> unit }

  type t = {
    mutable heap : entry array;
    mutable size : int;
    mutable next_seq : int;
  }

  let dummy = { at = 0; seq = 0; thunk = (fun () -> ()) }

  let create ?(capacity = 64) () =
    { heap = Array.make (max 1 capacity) dummy; size = 0; next_seq = 0 }

  let less a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

  let push q ~at thunk =
    if q.size = Array.length q.heap then begin
      (* [max]: a queue created small (or emptied to a tiny heap by an
         earlier shrink) must still at least double past the default. *)
      let bigger = Array.make (max 64 (2 * q.size)) dummy in
      Array.blit q.heap 0 bigger 0 q.size;
      q.heap <- bigger
    end;
    let e = { at; seq = q.next_seq; thunk } in
    q.next_seq <- q.next_seq + 1;
    q.heap.(q.size) <- e;
    q.size <- q.size + 1;
    (* sift up *)
    let i = ref (q.size - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      less q.heap.(!i) q.heap.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = q.heap.(p) in
      q.heap.(p) <- q.heap.(!i);
      q.heap.(!i) <- tmp;
      i := p
    done

  let min_time q = if q.size = 0 then None else Some q.heap.(0).at

  let size q = q.size

  let pop q =
    assert (q.size > 0);
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    q.heap.(0) <- q.heap.(q.size);
    q.heap.(q.size) <- dummy;
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < q.size && less q.heap.(l) q.heap.(!smallest) then smallest := l;
      if r < q.size && less q.heap.(r) q.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = q.heap.(!smallest) in
        q.heap.(!smallest) <- q.heap.(!i);
        q.heap.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    top
end

(* Global activity counters and distributions (see Metrics.Perf and
   Obs.Hist); per-kernel totals live in [t] below. *)
let ctr_deltas = Perf.counter "kernel.deltas"
let ctr_runs = Perf.counter "kernel.process_runs"
let hist_deltas_per_run = Obs.Hist.histogram "kernel.deltas_per_run"
let hist_queue_depth = Obs.Hist.histogram "kernel.timed_queue_depth"

type t = {
  mutable now : time;
  mutable deltas : int;
  mutable runs : int;
  runnable : (unit -> unit) Queue.t;
  mutable woken : (unit -> unit) list;
  mutable updates : (unit -> unit) list;
  timed : Timed_queue.t;
  mutable startup : (unit -> unit) list;
  mutable started : bool;
  mutable stop_requested : bool;
  wake_tally : (string, int ref) Hashtbl.t;
      (* per-process wake counts, recorded by Process on activation *)
  (* Causal events (see Obs.Event): seq of the current delta's open
     event and of the latest process activation, the causes stamped on
     process wakes.  Gated on the global [Obs.Event.enabled] flag only
     — one branch each while the log is off. *)
  mutable ev_delta : int;
  mutable ev_cause : int;
}

type event = {
  ev_name : string;
  kernel : t;
  mutable static : (unit -> unit) list;
  mutable dynamic : (unit -> unit) list;
}

let create () =
  {
    now = 0;
    deltas = 0;
    runs = 0;
    runnable = Queue.create ();
    woken = [];
    updates = [];
    timed = Timed_queue.create ();
    startup = [];
    started = false;
    stop_requested = false;
    wake_tally = Hashtbl.create 16;
    ev_delta = Obs.Event.no_cause;
    ev_cause = Obs.Event.no_cause;
  }

let now k = k.now
let delta_count k = k.deltas
let process_runs k = k.runs

let record_wake k name =
  (match Hashtbl.find_opt k.wake_tally name with
  | Some r -> incr r
  | None -> Hashtbl.replace k.wake_tally name (ref 1));
  if Obs.Event.enabled () then
    k.ev_cause <-
      Obs.Event.emit ~time:k.now ~cycle:k.deltas ~cause:k.ev_delta
        Obs.Event.Process_run name

let wake_counts k =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) k.wake_tally []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let make_event kernel ev_name = { ev_name; kernel; static = []; dynamic = [] }
let event_name e = e.ev_name

let subscribe_static e f = e.static <- f :: e.static
let subscribe_once e f = e.dynamic <- f :: e.dynamic

let notify e =
  let k = e.kernel in
  if Obs.Event.enabled () then
    ignore
      (Obs.Event.emit ~time:k.now ~cycle:k.deltas ~cause:k.ev_cause
         Obs.Event.Process_wake e.ev_name);
  (* Static subscribers run at every notification; dynamic subscribers
     are consumed.  Subscription order is preserved for determinism. *)
  k.woken <- List.rev_append (List.rev e.dynamic) k.woken;
  k.woken <- List.fold_left (fun acc f -> f :: acc) k.woken (List.rev e.static);
  e.dynamic <- []

let schedule_now k f = Queue.push f k.runnable
let schedule_update k f = k.updates <- f :: k.updates
let schedule_at k delay f = Timed_queue.push k.timed ~at:(k.now + delay) f
let notify_after e delay = schedule_at e.kernel delay (fun () -> notify e)
let add_startup k f = k.startup <- f :: k.startup

let stop k = k.stop_requested <- true
let stopped k = k.stop_requested

(* One delta cycle: evaluation, then update, then wake. *)
let run_delta k =
  k.deltas <- k.deltas + 1;
  Perf.incr ctr_deltas;
  if Obs.Event.enabled () then begin
    (* Chain deltas to each other: each open is caused by the previous
       one, giving [why] a spine to walk along between process events. *)
    k.ev_delta <-
      Obs.Event.emit ~time:k.now ~cycle:k.deltas ~cause:k.ev_delta
        Obs.Event.Delta_open "delta";
    k.ev_cause <- k.ev_delta
  end;
  while not (Queue.is_empty k.runnable) do
    let p = Queue.pop k.runnable in
    k.runs <- k.runs + 1;
    Perf.incr ctr_runs;
    p ()
  done;
  let commits = List.rev k.updates in
  k.updates <- [];
  List.iter (fun commit -> commit ()) commits;
  let woken = List.rev k.woken in
  k.woken <- [];
  List.iter (fun f -> Queue.push f k.runnable) woken;
  if Obs.Event.enabled () then
    ignore
      (Obs.Event.emit ~time:k.now ~cycle:k.deltas ~cause:k.ev_delta
         Obs.Event.Delta_close "delta")

let has_delta_work k =
  (not (Queue.is_empty k.runnable)) || k.updates <> [] || k.woken <> []

let run_until_raw k bound =
  if not k.started then begin
    k.started <- true;
    List.iter (fun f -> Queue.push f k.runnable) (List.rev k.startup);
    k.startup <- []
  end;
  let continue = ref true in
  while !continue && not k.stop_requested do
    while has_delta_work k && not k.stop_requested do
      run_delta k
    done;
    if k.stop_requested then continue := false
    else
      match Timed_queue.min_time k.timed with
      | None -> continue := false
      | Some t when t > bound -> continue := false
      | Some t ->
          k.now <- t;
          (* Release every timed thunk scheduled for this instant. *)
          let rec drain () =
            match Timed_queue.min_time k.timed with
            | Some t' when t' = t ->
                let e = Timed_queue.pop k.timed in
                Queue.push e.Timed_queue.thunk k.runnable;
                drain ()
            | _ -> ()
          in
          drain ()
  done;
  if k.now < bound && not k.stop_requested then k.now <- bound

(* The observed wrapper costs one branch when tracing and histogram
   recording are both off; each kernel step (run of the scheduler up to
   a time bound) becomes one span with its delta/run consumption. *)
let run_until k bound =
  if Obs.Span.enabled () || Obs.Hist.enabled () then begin
    let d0 = k.deltas and r0 = k.runs in
    Obs.Hist.observe_int hist_queue_depth (Timed_queue.size k.timed);
    Obs.Span.with_ ~name:"kernel.run"
      ~attrs:[ ("until_ps", string_of_int bound) ]
      (fun () ->
        run_until_raw k bound;
        Obs.Span.add_attr_int "deltas" (k.deltas - d0);
        Obs.Span.add_attr_int "process_runs" (k.runs - r0));
    Obs.Hist.observe_int hist_deltas_per_run (k.deltas - d0)
  end
  else run_until_raw k bound

let run_for k d = run_until k (k.now + d)
