type fmt = { int_bits : int; frac_bits : int; signed : bool }

exception Fixed_error of string

let fixed_error f = Printf.ksprintf (fun s -> raise (Fixed_error s)) f

let fmt ?(signed = false) ~int_bits ~frac_bits () =
  if int_bits < 0 || frac_bits < 0 then
    fixed_error "negative field sizes (%d, %d)" int_bits frac_bits;
  let f = { int_bits; frac_bits; signed } in
  if int_bits + frac_bits + (if signed then 1 else 0) < 1 then
    fixed_error "zero-width format";
  f

let fmt_width f = f.int_bits + f.frac_bits + if f.signed then 1 else 0

let fmt_to_string f =
  Printf.sprintf "%cq%d.%d" (if f.signed then 's' else 'u') f.int_bits
    f.frac_bits

let resolve_add a b =
  {
    int_bits = max a.int_bits b.int_bits + 1;
    frac_bits = max a.frac_bits b.frac_bits;
    signed = a.signed || b.signed;
  }

let resolve_mul a b =
  {
    int_bits = a.int_bits + b.int_bits;
    frac_bits = a.frac_bits + b.frac_bits;
    signed = a.signed || b.signed;
  }

(* Concrete values are manipulated as scaled OCaml ints, which bounds
   usable widths to 62 bits — ample for the automotive data paths. *)
let check_width f =
  if fmt_width f > 60 then
    fixed_error "format %s too wide for concrete arithmetic" (fmt_to_string f)

let range f =
  let w = fmt_width f in
  if f.signed then (-(1 lsl (w - 1)), (1 lsl (w - 1)) - 1)
  else (0, (1 lsl w) - 1)

module Value = struct
  type t = { v_fmt : fmt; scaled : int }  (* value = scaled / 2^frac_bits *)

  let create f raw =
    check_width f;
    if Bitvec.width raw <> fmt_width f then
      fixed_error "raw width %d vs format %s" (Bitvec.width raw)
        (fmt_to_string f);
    let scaled =
      if f.signed then Bitvec.to_signed_int raw else Bitvec.to_int raw
    in
    { v_fmt = f; scaled }

  let clamp f n =
    let lo, hi = range f in
    if n < lo then lo else if n > hi then hi else n

  let of_float f x =
    check_width f;
    let scaled = Float.round (x *. Float.of_int (1 lsl f.frac_bits)) in
    { v_fmt = f; scaled = clamp f (int_of_float scaled) }

  let to_float t =
    Float.of_int t.scaled /. Float.of_int (1 lsl t.v_fmt.frac_bits)

  let format t = t.v_fmt
  let raw t = Bitvec.of_int ~width:(fmt_width t.v_fmt) t.scaled

  let align frac t = t.scaled lsl (frac - t.v_fmt.frac_bits)

  let add a b =
    let f = resolve_add a.v_fmt b.v_fmt in
    check_width f;
    { v_fmt = f; scaled = align f.frac_bits a + align f.frac_bits b }

  let sub a b =
    let f = resolve_add a.v_fmt b.v_fmt in
    let f = { f with signed = true } in
    check_width f;
    { v_fmt = f; scaled = align f.frac_bits a - align f.frac_bits b }

  let mul a b =
    let f = resolve_mul a.v_fmt b.v_fmt in
    check_width f;
    { v_fmt = f; scaled = a.scaled * b.scaled }

  let resize ?(round = `Truncate) ?(saturate = false) f t =
    check_width f;
    let shift = t.v_fmt.frac_bits - f.frac_bits in
    let scaled =
      if shift <= 0 then t.scaled lsl -shift
      else
        let n = t.scaled in
        match round with
        | `Truncate -> n asr shift
        | `Nearest -> (n + (1 lsl (shift - 1))) asr shift
    in
    let scaled =
      if saturate then clamp f scaled
      else begin
        (* wrap into the representable range *)
        let w = fmt_width f in
        let m = scaled land ((1 lsl w) - 1) in
        if f.signed && m land (1 lsl (w - 1)) <> 0 then m - (1 lsl w) else m
      end
    in
    { v_fmt = f; scaled }

  let equal a b = a.v_fmt = b.v_fmt && a.scaled = b.scaled

  let compare a b =
    (* compare as rationals: scale to the common fraction *)
    let frac = max a.v_fmt.frac_bits b.v_fmt.frac_bits in
    compare (align frac a) (align frac b)

  let to_string t = Printf.sprintf "%g:%s" (to_float t) (fmt_to_string t.v_fmt)
  let pp ppf t = Format.pp_print_string ppf (to_string t)
end

module Expr = struct
  type t = { f : fmt; e : Ir.expr }

  let lift f e =
    let w = Ir.width_of e in
    if w <> fmt_width f then
      fixed_error "expression width %d vs format %s" w (fmt_to_string f);
    { f; e }

  let const f x = { f; e = Ir.Const (Value.raw (Value.of_float f x)) }
  let to_expr t = t.e

  (* Widen to [target] and align the binary point. *)
  let align target t =
    let w = fmt_width target in
    let widened = Ir.Resize (t.f.signed, t.e, w) in
    let shift = target.frac_bits - t.f.frac_bits in
    if shift = 0 then widened
    else if shift > 0 then
      Ir.Binop (Ir.Shl, widened, Ir.Const (Bitvec.of_int ~width:8 shift))
    else
      fixed_error "align: cannot lose fraction bits implicitly"

  let add a b =
    let f = resolve_add a.f b.f in
    { f; e = Ir.Binop (Ir.Add, align f a, align f b) }

  let sub a b =
    let f = { (resolve_add a.f b.f) with signed = true } in
    { f; e = Ir.Binop (Ir.Sub, align f a, align f b) }

  let mul a b =
    let f = resolve_mul a.f b.f in
    let w = fmt_width f in
    let wa = Ir.Resize (a.f.signed, a.e, w) and wb = Ir.Resize (b.f.signed, b.e, w) in
    { f; e = Ir.Binop (Ir.Mul, wa, wb) }

  let resize f t =
    let shift = t.f.frac_bits - f.frac_bits in
    let e =
      if shift <= 0 then
        let widened = Ir.Resize (t.f.signed, t.e, fmt_width f) in
        if shift = 0 then widened
        else Ir.Binop (Ir.Shl, widened, Ir.Const (Bitvec.of_int ~width:8 (-shift)))
      else
        (* Drop fraction bits first (arithmetic shift keeps the sign),
           then resize to the target width. *)
        let shifted =
          Ir.Binop
            ( (if t.f.signed then Ir.Ashr else Ir.Lshr),
              t.e,
              Ir.Const (Bitvec.of_int ~width:8 shift) )
        in
        Ir.Resize (t.f.signed, shifted, fmt_width f)
    in
    { f; e }
end
