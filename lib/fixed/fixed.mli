(** Fixed-point arithmetic with automatic format resolution — the
    prototypic OSSS feature of §6.

    A value carries a format [(int_bits, frac_bits, signed)]; binary
    operations resolve the result format automatically so that no
    precision is lost (addition grows the integer part by one bit,
    multiplication adds both parts), exactly the resolution a hardware
    fixed-point library performs.  [Value] works on concrete numbers
    (golden models, testbenches); [Expr] applies the same resolution to
    IR expressions for synthesis. *)

type fmt = { int_bits : int; frac_bits : int; signed : bool }

exception Fixed_error of string

val fmt : ?signed:bool -> int_bits:int -> frac_bits:int -> unit -> fmt
(** Raises {!Fixed_error} on negative sizes or zero total width. *)

val fmt_width : fmt -> int
(** Total bits, sign included. *)

val fmt_to_string : fmt -> string
(** e.g. ["uq4.8"] / ["sq7.4"]. *)

val resolve_add : fmt -> fmt -> fmt
val resolve_mul : fmt -> fmt -> fmt

(** {1 Concrete values} *)
module Value : sig
  type t

  val create : fmt -> Bitvec.t -> t
  (** Raw bits reinterpreted in the format. *)

  val of_float : fmt -> float -> t
  (** Rounds to nearest; saturates at the format's range. *)

  val to_float : t -> float
  val format : t -> fmt
  val raw : t -> Bitvec.t

  val add : t -> t -> t
  (** Result format: {!resolve_add} — never overflows. *)

  val sub : t -> t -> t
  (** Result format is signed. *)

  val mul : t -> t -> t
  (** Result format: {!resolve_mul} — exact. *)

  val resize : ?round:[ `Truncate | `Nearest ] -> ?saturate:bool -> fmt -> t -> t
  (** Convert to a narrower/wider format.  Defaults: [`Truncate],
      [saturate = false] (wrap). *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

(** {1 Synthesizable expressions} *)
module Expr : sig
  type t = { f : fmt; e : Ir.expr }

  val lift : fmt -> Ir.expr -> t
  (** The expression's width must equal the format width. *)

  val const : fmt -> float -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val resize : fmt -> t -> t
  (** Truncating/zero- or sign-extending conversion. *)

  val to_expr : t -> Ir.expr
end
