(* Windowed switching-activity sampler.

   Like Toggle, the collector is passive: the simulators own change
   detection and call [record] only for slots that actually toggled, so
   disabled sampling costs nothing and enabled sampling costs one array
   increment per changed bit.  [end_cycle] advances the window clock;
   when a window fills, the dense per-slot counters are snapshotted
   into a sparse (slot, count) list so long runs with mostly-quiet nets
   stay cheap to keep around. *)

type window = {
  w_index : int;
  w_start : int;  (* first cycle in the window *)
  w_cycles : int;
  w_counts : (int * int) list;  (* (slot, toggles), ascending slot *)
}

type t = {
  window : int;
  slots : int;
  cur : int array;
  mutable touched : int list;  (* slots with cur > 0, unordered *)
  mutable cur_cycles : int;
  mutable closed : window list;  (* reverse order *)
  mutable n_closed : int;
  mutable total : int;
  mutable cycles : int;
}

let default_window = 64

let create ?(window = default_window) ~slots () =
  if window <= 0 then
    invalid_arg "Cover.Activity.create: window must be positive";
  if slots < 0 then invalid_arg "Cover.Activity.create: negative slot count";
  {
    window;
    slots;
    cur = Array.make slots 0;
    touched = [];
    cur_cycles = 0;
    closed = [];
    n_closed = 0;
    total = 0;
    cycles = 0;
  }

let window_size t = t.window
let slots t = t.slots
let total_toggles t = t.total
let cycles t = t.cycles

let record t slot =
  if t.cur.(slot) = 0 then t.touched <- slot :: t.touched;
  t.cur.(slot) <- t.cur.(slot) + 1;
  t.total <- t.total + 1

let close_window t =
  let counts =
    List.sort compare
      (List.map
         (fun s ->
           let c = (s, t.cur.(s)) in
           t.cur.(s) <- 0;
           c)
         t.touched)
  in
  t.closed <-
    {
      w_index = t.n_closed;
      w_start = t.cycles - t.cur_cycles;
      w_cycles = t.cur_cycles;
      w_counts = counts;
    }
    :: t.closed;
  t.n_closed <- t.n_closed + 1;
  t.touched <- [];
  t.cur_cycles <- 0

let end_cycle t =
  t.cur_cycles <- t.cur_cycles + 1;
  t.cycles <- t.cycles + 1;
  if t.cur_cycles = t.window then close_window t

(* Close a partial trailing window, if any activity or cycles are
   pending.  Idempotent: flushing twice adds nothing. *)
let flush t = if t.cur_cycles > 0 then close_window t

let windows t = List.rev t.closed
let window_count t = t.n_closed

let window_toggles w =
  List.fold_left (fun acc (_, c) -> acc + c) 0 w.w_counts

(* The completed window with the most toggles (ties break to the
   earlier window, matching "first hottest" debugging intuition). *)
let peak t =
  List.fold_left
    (fun best w ->
      match best with
      | Some b when window_toggles b >= window_toggles w -> best
      | _ -> Some w)
    None (windows t)
