type t = {
  names : string array;
  rises : int array;
  falls : int array;
}

let create ~names =
  let n = Array.length names in
  { names; rises = Array.make n 0; falls = Array.make n 0 }

let record t i ~rising =
  if rising then t.rises.(i) <- t.rises.(i) + 1
  else t.falls.(i) <- t.falls.(i) + 1

let bits t = Array.length t.names
let name t i = t.names.(i)
let rises t i = t.rises.(i)
let falls t i = t.falls.(i)

let covered t =
  let n = ref 0 in
  for i = 0 to bits t - 1 do
    if t.rises.(i) > 0 && t.falls.(i) > 0 then incr n
  done;
  !n

let touched t =
  let n = ref 0 in
  for i = 0 to bits t - 1 do
    if t.rises.(i) > 0 || t.falls.(i) > 0 then incr n
  done;
  !n

let coverage t =
  let b = bits t in
  if b = 0 then 1.0 else float_of_int (covered t) /. float_of_int b

let uncovered ?(k = 10) t =
  let out = ref [] in
  let left = ref k in
  (try
     for i = 0 to bits t - 1 do
       if !left = 0 then raise Exit;
       if not (t.rises.(i) > 0 && t.falls.(i) > 0) then begin
         out := t.names.(i) :: !out;
         decr left
       end
     done
   with Exit -> ());
  List.rev !out
