(** Serializable coverage database.

    [Db.t] is the plain-data snapshot of every collector a run owned —
    toggle bits, FSMs, covergroups and protocol-monitor verdicts —
    detached from the live simulator so it can be written to disk,
    merged across runs/seeds (counts are summed, so coverage is
    monotone under {!merge}) and diffed.  Serialization goes through
    [Obs.Json]; the document is stamped with {!schema_version}. *)

val schema_version : string

type toggle = { t_name : string; t_rise : int; t_fall : int }

type fsm_state = { fs_name : string; fs_hits : int }
type fsm_arc = { fa_from : string; fa_to : string; fa_hits : int; fa_declared : bool }

type fsm = {
  f_name : string;
  f_states : fsm_state list;
  f_arcs : fsm_arc list;
  f_unknown : int;
}

type bin = { b_name : string; b_hits : int; b_goal : int; b_illegal : bool }
type group = { g_name : string; g_bins : bin list; g_other : int }

type monitor = { m_name : string; m_pass : int; m_vacuous : int; m_fail : int }

type t = {
  runs : string list;  (** provenance labels of the merged runs *)
  toggles : toggle list;
  fsms : fsm list;
  groups : group list;
  monitors : monitor list;
}

(** Expand a live {!Toggle.t} into DB entries (every bit, covered or
    not, so the denominator survives merging).  [prefix] namespaces the
    bit names, e.g. ["rtl:"] vs ["nl:"] when one run owns both. *)
val toggle_entries : ?prefix:string -> Toggle.t -> toggle list

val fsm_entry : Fsm.t -> fsm
val group_entry : Group.t -> group
val monitor : name:string -> pass:int -> vacuous:int -> fail:int -> monitor

val make :
  ?toggles:toggle list ->
  ?fsms:Fsm.t list ->
  ?groups:Group.t list ->
  ?monitors:monitor list ->
  run:string ->
  unit ->
  t

(** Union: items are matched by name (toggles by bit name, FSM
    states/arcs by label, bins by name, monitors by name) and their
    counts summed; items present on only one side are kept.  Coverage
    of the result is therefore >= coverage of either input. *)
val merge : t -> t -> t

(** [(kind, item)] pairs covered in the first DB but not the second —
    kinds ["toggle"], ["fsm-state"], ["fsm-arc"], ["bin"]. *)
val diff : t -> t -> (string * string) list

type totals = {
  toggle_bits : int;
  toggle_covered : int;
  fsm_states : int;
  fsm_states_hit : int;
  fsm_arcs : int;  (** declared arcs only *)
  fsm_arcs_hit : int;
  group_bins : int;  (** legal bins only *)
  group_bins_hit : int;  (** legal bins with hits >= goal *)
  illegal_hits : int;
  monitor_passes : int;
  monitor_vacuous : int;
  monitor_fails : int;
}

val totals : t -> totals

(** Covered / total toggle bits; 1.0 when the DB tracks no bits. *)
val toggle_coverage : t -> float

(** FSMs whose declared states and arcs are all hit with no unknowns. *)
val fully_covered_fsms : t -> string list

(** Multi-line human-readable table. *)
val summary : t -> string

val to_json : t -> Obs.Json.t

(** Structural parse; [Error msg] on schema mismatch. *)
val of_json : Obs.Json.t -> (t, string) result

val save : t -> string -> unit
val load : string -> (t, string) result
