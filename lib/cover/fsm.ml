type state = { st_value : int; st_name : string; st_hits : int }
type arc = { a_from : int; a_to : int; a_hits : int; a_declared : bool }

type t = {
  fsm_name : string;
  order : int list;                       (* declared values, declaration order *)
  names : (int, string) Hashtbl.t;
  hits : (int, int) Hashtbl.t;            (* declared-state visit counts *)
  arc_hits : (int * int, int) Hashtbl.t;  (* observed arcs *)
  declared_arcs : (int * int) list;
  mutable unknown : int;
  mutable last : int option;
}

let create ?(arcs = []) ~name ~states () =
  let names = Hashtbl.create 16 in
  let hits = Hashtbl.create 16 in
  let order =
    List.filter_map
      (fun (v, n) ->
        if Hashtbl.mem names v then None
        else begin
          Hashtbl.replace names v n;
          Hashtbl.replace hits v 0;
          Some v
        end)
      states
  in
  let declared_arcs =
    List.filter (fun (a, b) -> Hashtbl.mem names a && Hashtbl.mem names b) arcs
  in
  {
    fsm_name = name;
    order;
    names;
    hits;
    arc_hits = Hashtbl.create 32;
    declared_arcs;
    unknown = 0;
    last = None;
  }

let name t = t.fsm_name

let sample t v =
  (match Hashtbl.find_opt t.hits v with
  | Some n -> Hashtbl.replace t.hits v (n + 1)
  | None -> t.unknown <- t.unknown + 1);
  (* Record every change of state; record a self-loop only when the
     graph declares it, so an FSM parked in idle does not drown the
     arc table. *)
  (match t.last with
  | Some prev when prev <> v || List.mem (v, v) t.declared_arcs ->
      let key = (prev, v) in
      let n = try Hashtbl.find t.arc_hits key with Not_found -> 0 in
      Hashtbl.replace t.arc_hits key (n + 1)
  | _ -> ());
  t.last <- Some v

let state_label t v =
  match Hashtbl.find_opt t.names v with
  | Some n -> n
  | None -> Printf.sprintf "<%d>" v

let states t =
  List.map
    (fun v ->
      {
        st_value = v;
        st_name = Hashtbl.find t.names v;
        st_hits = (try Hashtbl.find t.hits v with Not_found -> 0);
      })
    t.order

let arcs t =
  let declared =
    List.map
      (fun (a, b) ->
        {
          a_from = a;
          a_to = b;
          a_hits = (try Hashtbl.find t.arc_hits (a, b) with Not_found -> 0);
          a_declared = true;
        })
      t.declared_arcs
  in
  let extra =
    Hashtbl.fold
      (fun (a, b) n acc ->
        if List.mem (a, b) t.declared_arcs then acc
        else { a_from = a; a_to = b; a_hits = n; a_declared = false } :: acc)
      t.arc_hits []
  in
  let extra =
    List.sort (fun x y -> compare (x.a_from, x.a_to) (y.a_from, y.a_to)) extra
  in
  declared @ extra

let unknown_hits t = t.unknown

let state_coverage t =
  match t.order with
  | [] -> 1.0
  | l ->
      let hit =
        List.length (List.filter (fun v -> Hashtbl.find t.hits v > 0) l)
      in
      float_of_int hit /. float_of_int (List.length l)

let arc_coverage t =
  match t.declared_arcs with
  | [] -> 1.0
  | l ->
      let hit =
        List.length
          (List.filter (fun a -> Hashtbl.mem t.arc_hits a) l)
      in
      float_of_int hit /. float_of_int (List.length l)

let fully_covered t =
  t.unknown = 0 && state_coverage t = 1.0 && arc_coverage t = 1.0
