type spec =
  | Value of int
  | Span of int * int
  | Illegal_value of int
  | Illegal_span of int * int

type bin = { bin_name : string; spec : spec; hits : int; goal : int }

type t = {
  grp_name : string;
  goal : int;
  names : string array;
  specs : spec array;
  hits : int array;
  mutable other : int;
}

let create ?(goal = 1) ~name bins =
  let n = List.length bins in
  let names = Array.make n "" in
  let specs = Array.make n (Value 0) in
  List.iteri
    (fun i (bn, sp) ->
      names.(i) <- bn;
      specs.(i) <- sp)
    bins;
  { grp_name = name; goal; names; specs; hits = Array.make n 0; other = 0 }

let name t = t.grp_name

let matches spec v =
  match spec with
  | Value x | Illegal_value x -> v = x
  | Span (lo, hi) | Illegal_span (lo, hi) -> v >= lo && v <= hi

let is_illegal = function
  | Illegal_value _ | Illegal_span _ -> true
  | Value _ | Span _ -> false

let sample t v =
  let hit = ref false in
  for i = 0 to Array.length t.specs - 1 do
    if matches t.specs.(i) v then begin
      t.hits.(i) <- t.hits.(i) + 1;
      hit := true
    end
  done;
  if not !hit then t.other <- t.other + 1

let bins t =
  Array.to_list
    (Array.mapi
       (fun i n ->
         { bin_name = n; spec = t.specs.(i); hits = t.hits.(i); goal = t.goal })
       t.names)

let other_hits t = t.other

let illegal_hits t =
  let n = ref 0 in
  Array.iteri (fun i sp -> if is_illegal sp then n := !n + t.hits.(i)) t.specs;
  !n

let coverage t =
  let legal = ref 0 and at_goal = ref 0 in
  Array.iteri
    (fun i sp ->
      if not (is_illegal sp) then begin
        incr legal;
        if t.hits.(i) >= t.goal then incr at_goal
      end)
    t.specs;
  if !legal = 0 then 1.0 else float_of_int !at_goal /. float_of_int !legal
