(** Per-bit toggle coverage.

    A [Toggle.t] tracks, for a fixed set of named single-bit slots, how
    many 0->1 (rise) and 1->0 (fall) transitions each slot has seen.  A
    bit counts as *covered* once it has seen at least one transition in
    each direction — the classic structural-coverage question "did the
    stimulus ever move this wire both ways?".

    The collector itself is passive: the simulators own the change
    detection (they already compare old/new values for their own
    scheduling) and call {!record} only for bits that actually changed,
    so a simulation with coverage disabled pays one branch per changed
    value and nothing else. *)

type t

(** [create ~names] allocates a collector with one slot per entry of
    [names].  Slot [i] is named [names.(i)]; multi-bit signals are
    expected to be expanded by the caller ([sig[3]], [sig[2]], ...). *)
val create : names:string array -> t

(** [record t i ~rising] counts one transition on slot [i]:
    a 0->1 edge when [rising], a 1->0 edge otherwise. *)
val record : t -> int -> rising:bool -> unit

val bits : t -> int
val name : t -> int -> string
val rises : t -> int -> int
val falls : t -> int -> int

(** Number of bits that toggled in both directions. *)
val covered : t -> int

(** Number of bits that toggled in at least one direction. *)
val touched : t -> int

(** [covered / bits]; 1.0 for an empty collector. *)
val coverage : t -> float

(** Names of up to [k] (default 10) not-yet-covered bits, in slot order. *)
val uncovered : ?k:int -> t -> string list
