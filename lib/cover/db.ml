module Json = Obs.Json

let schema_version = "osss.coverage-db/v1"

type toggle = { t_name : string; t_rise : int; t_fall : int }

type fsm_state = { fs_name : string; fs_hits : int }
type fsm_arc = { fa_from : string; fa_to : string; fa_hits : int; fa_declared : bool }

type fsm = {
  f_name : string;
  f_states : fsm_state list;
  f_arcs : fsm_arc list;
  f_unknown : int;
}

type bin = { b_name : string; b_hits : int; b_goal : int; b_illegal : bool }
type group = { g_name : string; g_bins : bin list; g_other : int }

type monitor = { m_name : string; m_pass : int; m_vacuous : int; m_fail : int }

type t = {
  runs : string list;
  toggles : toggle list;
  fsms : fsm list;
  groups : group list;
  monitors : monitor list;
}

(* ------------------------------------------------------------------ *)
(* Construction from live collectors                                   *)

let toggle_entries ?(prefix = "") tog =
  let out = ref [] in
  for i = Toggle.bits tog - 1 downto 0 do
    out :=
      {
        t_name = prefix ^ Toggle.name tog i;
        t_rise = Toggle.rises tog i;
        t_fall = Toggle.falls tog i;
      }
      :: !out
  done;
  !out

let fsm_entry f =
  {
    f_name = Fsm.name f;
    f_states =
      List.map
        (fun (s : Fsm.state) -> { fs_name = s.st_name; fs_hits = s.st_hits })
        (Fsm.states f);
    f_arcs =
      List.map
        (fun (a : Fsm.arc) ->
          {
            fa_from = Fsm.state_label f a.a_from;
            fa_to = Fsm.state_label f a.a_to;
            fa_hits = a.a_hits;
            fa_declared = a.a_declared;
          })
        (Fsm.arcs f);
    f_unknown = Fsm.unknown_hits f;
  }

let group_entry g =
  {
    g_name = Group.name g;
    g_bins =
      List.map
        (fun (b : Group.bin) ->
          {
            b_name = b.bin_name;
            b_hits = b.hits;
            b_goal = b.goal;
            b_illegal = Group.is_illegal b.spec;
          })
        (Group.bins g);
    g_other = Group.other_hits g;
  }

let monitor ~name ~pass ~vacuous ~fail =
  { m_name = name; m_pass = pass; m_vacuous = vacuous; m_fail = fail }

let make ?(toggles = []) ?(fsms = []) ?(groups = []) ?(monitors = []) ~run () =
  {
    runs = [ run ];
    toggles;
    fsms = List.map fsm_entry fsms;
    groups = List.map group_entry groups;
    monitors;
  }

(* ------------------------------------------------------------------ *)
(* Merge                                                               *)

(* Union of two lists matched by [key]: items present on both sides are
   [combine]d in place of the first, unmatched second-side items are
   appended in their original order.  Keys are assumed unique per side. *)
let merge_by key combine xs ys =
  let tbl = Hashtbl.create 64 in
  List.iter (fun y -> Hashtbl.replace tbl (key y) y) ys;
  let merged =
    List.map
      (fun x ->
        match Hashtbl.find_opt tbl (key x) with
        | Some y ->
            Hashtbl.remove tbl (key x);
            combine x y
        | None -> x)
      xs
  in
  merged @ List.filter (fun y -> Hashtbl.mem tbl (key y)) ys

let merge a b =
  (* Run provenance dedups across the whole concatenation, keeping
     first-occurrence order: merging databases that already share a
     run label — or one whose [runs] carries a duplicate from an older
     file — must not grow the list on every merge. *)
  let runs =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun r ->
        if Hashtbl.mem seen r then false
        else begin
          Hashtbl.replace seen r ();
          true
        end)
      (a.runs @ b.runs)
  in
  let toggles =
    merge_by
      (fun t -> t.t_name)
      (fun x y -> { x with t_rise = x.t_rise + y.t_rise; t_fall = x.t_fall + y.t_fall })
      a.toggles b.toggles
  in
  let merge_states =
    merge_by
      (fun s -> s.fs_name)
      (fun x y -> { x with fs_hits = x.fs_hits + y.fs_hits })
  in
  let merge_arcs =
    merge_by
      (fun r -> (r.fa_from, r.fa_to))
      (fun x y ->
        {
          x with
          fa_hits = x.fa_hits + y.fa_hits;
          fa_declared = x.fa_declared || y.fa_declared;
        })
  in
  let fsms =
    merge_by
      (fun f -> f.f_name)
      (fun x y ->
        {
          f_name = x.f_name;
          f_states = merge_states x.f_states y.f_states;
          f_arcs = merge_arcs x.f_arcs y.f_arcs;
          f_unknown = x.f_unknown + y.f_unknown;
        })
      a.fsms b.fsms
  in
  let merge_bins =
    merge_by
      (fun b -> b.b_name)
      (fun x y ->
        {
          x with
          b_hits = x.b_hits + y.b_hits;
          b_goal = max x.b_goal y.b_goal;
          b_illegal = x.b_illegal || y.b_illegal;
        })
  in
  let groups =
    merge_by
      (fun g -> g.g_name)
      (fun x y ->
        {
          g_name = x.g_name;
          g_bins = merge_bins x.g_bins y.g_bins;
          g_other = x.g_other + y.g_other;
        })
      a.groups b.groups
  in
  let monitors =
    merge_by
      (fun m -> m.m_name)
      (fun x y ->
        {
          x with
          m_pass = x.m_pass + y.m_pass;
          m_vacuous = x.m_vacuous + y.m_vacuous;
          m_fail = x.m_fail + y.m_fail;
        })
      a.monitors b.monitors
  in
  { runs; toggles; fsms; groups; monitors }

(* ------------------------------------------------------------------ *)
(* Totals / queries                                                    *)

type totals = {
  toggle_bits : int;
  toggle_covered : int;
  fsm_states : int;
  fsm_states_hit : int;
  fsm_arcs : int;
  fsm_arcs_hit : int;
  group_bins : int;
  group_bins_hit : int;
  illegal_hits : int;
  monitor_passes : int;
  monitor_vacuous : int;
  monitor_fails : int;
}

let toggle_is_covered t = t.t_rise > 0 && t.t_fall > 0

let totals db =
  let toggle_bits = List.length db.toggles in
  let toggle_covered = List.length (List.filter toggle_is_covered db.toggles) in
  let fsm_states = ref 0 and fsm_states_hit = ref 0 in
  let fsm_arcs = ref 0 and fsm_arcs_hit = ref 0 in
  List.iter
    (fun f ->
      List.iter
        (fun s ->
          incr fsm_states;
          if s.fs_hits > 0 then incr fsm_states_hit)
        f.f_states;
      List.iter
        (fun a ->
          if a.fa_declared then begin
            incr fsm_arcs;
            if a.fa_hits > 0 then incr fsm_arcs_hit
          end)
        f.f_arcs)
    db.fsms;
  let group_bins = ref 0 and group_bins_hit = ref 0 and illegal = ref 0 in
  List.iter
    (fun g ->
      List.iter
        (fun b ->
          if b.b_illegal then illegal := !illegal + b.b_hits
          else begin
            incr group_bins;
            if b.b_hits >= b.b_goal then incr group_bins_hit
          end)
        g.g_bins)
    db.groups;
  let mp = ref 0 and mv = ref 0 and mf = ref 0 in
  List.iter
    (fun m ->
      mp := !mp + m.m_pass;
      mv := !mv + m.m_vacuous;
      mf := !mf + m.m_fail)
    db.monitors;
  {
    toggle_bits;
    toggle_covered;
    fsm_states = !fsm_states;
    fsm_states_hit = !fsm_states_hit;
    fsm_arcs = !fsm_arcs;
    fsm_arcs_hit = !fsm_arcs_hit;
    group_bins = !group_bins;
    group_bins_hit = !group_bins_hit;
    illegal_hits = !illegal;
    monitor_passes = !mp;
    monitor_vacuous = !mv;
    monitor_fails = !mf;
  }

let toggle_coverage db =
  let t = totals db in
  if t.toggle_bits = 0 then 1.0
  else float_of_int t.toggle_covered /. float_of_int t.toggle_bits

let fsm_is_full f =
  f.f_unknown = 0
  && List.for_all (fun s -> s.fs_hits > 0) f.f_states
  && List.for_all (fun a -> (not a.fa_declared) || a.fa_hits > 0) f.f_arcs

let fully_covered_fsms db =
  List.filter_map (fun f -> if fsm_is_full f then Some f.f_name else None) db.fsms

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)

let diff a b =
  let out = ref [] in
  let add kind item = out := (kind, item) :: !out in
  let b_toggle = Hashtbl.create 256 in
  List.iter (fun t -> Hashtbl.replace b_toggle t.t_name (toggle_is_covered t)) b.toggles;
  List.iter
    (fun t ->
      if toggle_is_covered t then
        match Hashtbl.find_opt b_toggle t.t_name with
        | Some true -> ()
        | _ -> add "toggle" t.t_name)
    a.toggles;
  let b_fsm = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace b_fsm f.f_name f) b.fsms;
  List.iter
    (fun f ->
      let other = Hashtbl.find_opt b_fsm f.f_name in
      List.iter
        (fun s ->
          if s.fs_hits > 0 then begin
            let covered_in_b =
              match other with
              | None -> false
              | Some o ->
                  List.exists
                    (fun s' -> s'.fs_name = s.fs_name && s'.fs_hits > 0)
                    o.f_states
            in
            if not covered_in_b then
              add "fsm-state" (f.f_name ^ "." ^ s.fs_name)
          end)
        f.f_states;
      List.iter
        (fun arc ->
          if arc.fa_hits > 0 then begin
            let covered_in_b =
              match other with
              | None -> false
              | Some o ->
                  List.exists
                    (fun a' ->
                      a'.fa_from = arc.fa_from && a'.fa_to = arc.fa_to
                      && a'.fa_hits > 0)
                    o.f_arcs
            in
            if not covered_in_b then
              add "fsm-arc"
                (Printf.sprintf "%s.%s->%s" f.f_name arc.fa_from arc.fa_to)
          end)
        f.f_arcs)
    a.fsms;
  let b_grp = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace b_grp g.g_name g) b.groups;
  List.iter
    (fun g ->
      List.iter
        (fun bn ->
          if (not bn.b_illegal) && bn.b_hits >= bn.b_goal then begin
            let covered_in_b =
              match Hashtbl.find_opt b_grp g.g_name with
              | None -> false
              | Some o ->
                  List.exists
                    (fun b' -> b'.b_name = bn.b_name && b'.b_hits >= b'.b_goal)
                    o.g_bins
            in
            if not covered_in_b then add "bin" (g.g_name ^ "." ^ bn.b_name)
          end)
        g.g_bins)
    a.groups;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Text summary                                                        *)

let pct n d = if d = 0 then 100.0 else 100.0 *. float_of_int n /. float_of_int d

let summary db =
  let t = totals db in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "coverage summary (runs: %s)" (String.concat ", " db.runs);
  line "  toggle bits  %5d/%-5d %6.1f%%" t.toggle_covered t.toggle_bits
    (pct t.toggle_covered t.toggle_bits);
  line "  fsm states   %5d/%-5d %6.1f%%" t.fsm_states_hit t.fsm_states
    (pct t.fsm_states_hit t.fsm_states);
  line "  fsm arcs     %5d/%-5d %6.1f%%" t.fsm_arcs_hit t.fsm_arcs
    (pct t.fsm_arcs_hit t.fsm_arcs);
  line "  group bins   %5d/%-5d %6.1f%%" t.group_bins_hit t.group_bins
    (pct t.group_bins_hit t.group_bins);
  line "  illegal hits %5d" t.illegal_hits;
  line "  monitors     pass %d  vacuous %d  fail %d" t.monitor_passes
    t.monitor_vacuous t.monitor_fails;
  List.iter
    (fun f ->
      let sh = List.length (List.filter (fun s -> s.fs_hits > 0) f.f_states) in
      let declared = List.filter (fun a -> a.fa_declared) f.f_arcs in
      let ah = List.length (List.filter (fun a -> a.fa_hits > 0) declared) in
      line "  fsm %-20s states %d/%d  arcs %d/%d%s%s" f.f_name sh
        (List.length f.f_states) ah (List.length declared)
        (if f.f_unknown > 0 then Printf.sprintf "  unknown %d" f.f_unknown else "")
        (if fsm_is_full f then "  [FULL]" else ""))
    db.fsms;
  List.iter
    (fun g ->
      let legal = List.filter (fun b -> not b.b_illegal) g.g_bins in
      let hit = List.length (List.filter (fun b -> b.b_hits >= b.b_goal) legal) in
      let ill =
        List.fold_left
          (fun acc b -> if b.b_illegal then acc + b.b_hits else acc)
          0 g.g_bins
      in
      line "  group %-18s bins %d/%d  other %d%s" g.g_name hit
        (List.length legal) g.g_other
        (if ill > 0 then Printf.sprintf "  ILLEGAL %d" ill else ""))
    db.groups;
  List.iter
    (fun m ->
      line "  monitor %-16s pass %d  vacuous %d  fail %d%s" m.m_name m.m_pass
        m.m_vacuous m.m_fail
        (if m.m_fail > 0 then "  [FAIL]" else ""))
    db.monitors;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let to_json db =
  let t = totals db in
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("runs", Json.List (List.map (fun r -> Json.String r) db.runs));
      ( "totals",
        Json.Obj
          [
            ("toggle_bits", Json.Int t.toggle_bits);
            ("toggle_covered", Json.Int t.toggle_covered);
            ("toggle_pct", Json.Float (pct t.toggle_covered t.toggle_bits));
            ("fsm_states", Json.Int t.fsm_states);
            ("fsm_states_hit", Json.Int t.fsm_states_hit);
            ("fsm_arcs", Json.Int t.fsm_arcs);
            ("fsm_arcs_hit", Json.Int t.fsm_arcs_hit);
            ("group_bins", Json.Int t.group_bins);
            ("group_bins_hit", Json.Int t.group_bins_hit);
            ("illegal_hits", Json.Int t.illegal_hits);
            ("monitor_passes", Json.Int t.monitor_passes);
            ("monitor_vacuous", Json.Int t.monitor_vacuous);
            ("monitor_fails", Json.Int t.monitor_fails);
          ] );
      ( "toggles",
        Json.List
          (List.map
             (fun tg ->
               Json.List
                 [ Json.String tg.t_name; Json.Int tg.t_rise; Json.Int tg.t_fall ])
             db.toggles) );
      ( "fsms",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("name", Json.String f.f_name);
                   ( "states",
                     Json.List
                       (List.map
                          (fun s ->
                            Json.Obj
                              [
                                ("name", Json.String s.fs_name);
                                ("hits", Json.Int s.fs_hits);
                              ])
                          f.f_states) );
                   ( "arcs",
                     Json.List
                       (List.map
                          (fun a ->
                            Json.Obj
                              [
                                ("from", Json.String a.fa_from);
                                ("to", Json.String a.fa_to);
                                ("hits", Json.Int a.fa_hits);
                                ("declared", Json.Bool a.fa_declared);
                              ])
                          f.f_arcs) );
                   ("unknown_states", Json.Int f.f_unknown);
                 ])
             db.fsms) );
      ( "groups",
        Json.List
          (List.map
             (fun g ->
               Json.Obj
                 [
                   ("name", Json.String g.g_name);
                   ( "bins",
                     Json.List
                       (List.map
                          (fun b ->
                            Json.Obj
                              [
                                ("name", Json.String b.b_name);
                                ("hits", Json.Int b.b_hits);
                                ("goal", Json.Int b.b_goal);
                                ("illegal", Json.Bool b.b_illegal);
                              ])
                          g.g_bins) );
                   ("other", Json.Int g.g_other);
                 ])
             db.groups) );
      ( "monitors",
        Json.List
          (List.map
             (fun m ->
               Json.Obj
                 [
                   ("name", Json.String m.m_name);
                   ("pass", Json.Int m.m_pass);
                   ("vacuous", Json.Int m.m_vacuous);
                   ("fail", Json.Int m.m_fail);
                 ])
             db.monitors) );
    ]

exception Bad of string

let of_json j =
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let mem name obj =
    match Json.member name obj with
    | Some v -> v
    | None -> fail "missing field %S" name
  in
  let get_string = function
    | Json.String s -> s
    | _ -> fail "expected string"
  in
  let get_int = function Json.Int n -> n | _ -> fail "expected int" in
  let get_bool = function Json.Bool b -> b | _ -> fail "expected bool" in
  let get_list = function Json.List l -> l | _ -> fail "expected list" in
  try
    (match Json.member "schema" j with
    | Some (Json.String s) when s = schema_version -> ()
    | Some (Json.String s) -> fail "unsupported coverage schema %S" s
    | _ -> fail "missing coverage schema");
    let runs = List.map get_string (get_list (mem "runs" j)) in
    let toggles =
      List.map
        (fun e ->
          match e with
          | Json.List [ n; r; f ] ->
              { t_name = get_string n; t_rise = get_int r; t_fall = get_int f }
          | _ -> fail "bad toggle entry")
        (get_list (mem "toggles" j))
    in
    let fsms =
      List.map
        (fun f ->
          {
            f_name = get_string (mem "name" f);
            f_states =
              List.map
                (fun s ->
                  {
                    fs_name = get_string (mem "name" s);
                    fs_hits = get_int (mem "hits" s);
                  })
                (get_list (mem "states" f));
            f_arcs =
              List.map
                (fun a ->
                  {
                    fa_from = get_string (mem "from" a);
                    fa_to = get_string (mem "to" a);
                    fa_hits = get_int (mem "hits" a);
                    fa_declared = get_bool (mem "declared" a);
                  })
                (get_list (mem "arcs" f));
            f_unknown = get_int (mem "unknown_states" f);
          })
        (get_list (mem "fsms" j))
    in
    let groups =
      List.map
        (fun g ->
          {
            g_name = get_string (mem "name" g);
            g_bins =
              List.map
                (fun b ->
                  {
                    b_name = get_string (mem "name" b);
                    b_hits = get_int (mem "hits" b);
                    b_goal = get_int (mem "goal" b);
                    b_illegal = get_bool (mem "illegal" b);
                  })
                (get_list (mem "bins" g));
            g_other = get_int (mem "other" g);
          })
        (get_list (mem "groups" j))
    in
    let monitors =
      List.map
        (fun m ->
          {
            m_name = get_string (mem "name" m);
            m_pass = get_int (mem "pass" m);
            m_vacuous = get_int (mem "vacuous" m);
            m_fail = get_int (mem "fail" m);
          })
        (get_list (mem "monitors" j))
    in
    Ok { runs; toggles; fsms; groups; monitors }
  with Bad msg -> Error msg

let save db path = Json.save (to_json db) path

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
      match Json.of_string text with
      | exception Json.Parse_error msg -> Error (path ^ ": " ^ msg)
      | j -> (
          match of_json j with
          | Ok db -> Ok db
          | Error msg -> Error (path ^ ": " ^ msg)))
