(** Windowed switching-activity sampling.

    An [Activity.t] accumulates toggle counts for a fixed set of slots
    (typically one per net) over consecutive windows of a configurable
    number of cycles.  Completed windows are snapshotted as sparse
    (slot, count) lists — the raw material for SAIF-style dynamic power
    estimation, where per-window activity becomes per-window power.

    The collector is passive, like {!Toggle}: the simulator detects
    changes (it already compares old/new values for scheduling) and
    calls {!record} once per toggled slot, then {!end_cycle} once per
    clock cycle. *)

type window = {
  w_index : int;  (** 0-based completed-window index *)
  w_start : int;  (** first cycle covered by the window *)
  w_cycles : int;  (** cycles in the window (< window size only when flushed) *)
  w_counts : (int * int) list;
      (** (slot, toggle count) for slots that toggled, ascending slot *)
}

type t

(** [create ?window ~slots ()] allocates a sampler with [slots] slots
    and [window] cycles per window (default 64).

    @raise Invalid_argument if [window <= 0] or [slots < 0]. *)
val create : ?window:int -> slots:int -> unit -> t

(** Count one toggle on [slot] in the current window. *)
val record : t -> int -> unit

(** Advance the window clock by one cycle, closing the current window
    when it reaches the configured size. *)
val end_cycle : t -> unit

(** Close a partial trailing window so its activity becomes visible in
    {!windows}.  No-op when no cycles are pending; idempotent. *)
val flush : t -> unit

(** Completed windows, oldest first. *)
val windows : t -> window list

val window_count : t -> int
val window_size : t -> int
val slots : t -> int

(** Total toggles recorded, including any not-yet-closed window. *)
val total_toggles : t -> int

(** Cycles seen, including any not-yet-closed window. *)
val cycles : t -> int

(** Total toggles inside one completed window. *)
val window_toggles : window -> int

(** The completed window with the most toggles (earliest wins ties). *)
val peak : t -> window option
