(** FSM state and transition (arc) coverage.

    The caller registers a state signal with its declared encoding (and
    optionally the legal arcs of the state graph) and then feeds the
    sampled register value once per clock.  The collector counts visits
    per declared state, traversals per arc (declared or not — an
    undeclared arc that fires is itself a finding), and samples whose
    value matches no declared state. *)

type t

(** [create ~name ~states ?arcs ()] declares an FSM.  [states] maps
    encoded values to display names; duplicate values keep the first
    name.  [arcs] lists the legal (from, to) value pairs; arcs between
    undeclared states are ignored.  Self-loops must be declared
    explicitly if staying in a state is part of the graph to cover. *)
val create : ?arcs:(int * int) list -> name:string -> states:(int * string) list -> unit -> t

val name : t -> string

(** [sample t v] records one observation of state value [v].  The first
    sample sets the current state; later samples also record the arc
    from the previous sample's value (including self-loops). *)
val sample : t -> int -> unit

type state = { st_value : int; st_name : string; st_hits : int }
type arc = { a_from : int; a_to : int; a_hits : int; a_declared : bool }

(** Declared states in declaration order, with visit counts. *)
val states : t -> state list

(** Declared arcs (hit or not) followed by observed undeclared arcs. *)
val arcs : t -> arc list

(** Samples whose value matched no declared state. *)
val unknown_hits : t -> int

(** Display name for a state value: the declared name or ["<v>"]. *)
val state_label : t -> int -> string

val state_coverage : t -> float

(** Hit fraction over declared arcs; 1.0 when no arcs were declared. *)
val arc_coverage : t -> float

(** All declared states and all declared arcs hit, and no unknown
    states observed. *)
val fully_covered : t -> bool
