(** OSVVM-style functional covergroups.

    A covergroup names the interesting partitions of one sampled value:
    singleton bins, inclusive ranges, and *illegal* bins whose hits are
    violations rather than progress.  Coverage is the fraction of legal
    bins that reached their hit goal (OSVVM's [AtLeast], default 1).
    Sampling is explicit from testbench code — the group knows nothing
    about simulators. *)

type spec =
  | Value of int                (** exactly this value *)
  | Span of int * int           (** inclusive range [lo, hi] *)
  | Illegal_value of int
  | Illegal_span of int * int

type bin = { bin_name : string; spec : spec; hits : int; goal : int }

type t

(** [create ~name ?goal bins] — [goal] (default 1) is the per-bin hit
    count required for a legal bin to count as covered. *)
val create : ?goal:int -> name:string -> (string * spec) list -> t

val name : t -> string

(** [sample t v] increments every bin matching [v] (a value may fall in
    overlapping bins); a value matching no bin increments the "other"
    count instead. *)
val sample : t -> int -> unit

val bins : t -> bin list

(** Samples that matched no bin at all. *)
val other_hits : t -> int

(** Total hits on illegal bins. *)
val illegal_hits : t -> int

val is_illegal : spec -> bool

(** Legal bins at goal / legal bins; 1.0 when there are none. *)
val coverage : t -> float
