let trace_object tracer ?prefix obj =
  let prefix =
    Option.value ~default:(Object_inst.state_var obj).Ir.var_name prefix
  in
  List.iter
    (fun (f : Class_def.field) ->
      Rtl_trace.lens tracer
        ~name:(prefix ^ "." ^ f.Class_def.f_name)
        ~width:f.Class_def.f_width
        (fun sim -> Object_inst.peek_field obj sim f.Class_def.f_name))
    (Class_def.fields (Object_inst.class_of obj))

let show obj sim =
  let cls = Object_inst.class_of obj in
  let fields =
    List.map
      (fun (f : Class_def.field) ->
        Printf.sprintf "%s=%s" f.Class_def.f_name
          (Bitvec.to_string (Object_inst.peek_field obj sim f.Class_def.f_name)))
      (Class_def.fields cls)
  in
  Printf.sprintf "%s{%s}" (Class_def.class_name cls) (String.concat ", " fields)

let emit_trace_support cls =
  let name = Class_def.class_name cls in
  let buf = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "#ifndef SYNTHESIS\n";
  p "// overloading operator << (Figure 9)\n";
  p "inline ostream& operator << (ostream& OStream,\n";
  p "                             const %s& ObjectReference)\n" name;
  p "{\n  OStream << \"%s{\"" name;
  List.iteri
    (fun i (f : Class_def.field) ->
      p "\n          << \"%s%s=\" << ObjectReference.%s"
        (if i = 0 then "" else ", ")
        f.Class_def.f_name f.Class_def.f_name)
    (Class_def.fields cls);
  p "\n          << \"}\";\n  return OStream;\n}\n\n";
  p "// overloading method sc_trace (Figure 9)\n";
  p "extern void sc_trace(sc_trace_file* TraceFile,\n";
  p "                     const %s& ObjectReference,\n" name;
  p "                     const sc_string& ObjectName)\n{\n";
  List.iter
    (fun (f : Class_def.field) ->
      p "  sc_trace(TraceFile, ObjectReference.%s, ObjectName + \".%s\");\n"
        f.Class_def.f_name f.Class_def.f_name)
    (Class_def.fields cls);
  p "}\n\n";
  p "// friend declaration inside the class body (Figure 10)\n";
  p "//   friend void sc_trace(sc_trace_file*, const %s&, const sc_string&);\n"
    name;
  p "#endif // SYNTHESIS\n";
  Buffer.contents buf
