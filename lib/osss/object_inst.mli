(** Object instantiation and method-call resolution.

    Instantiating a class inside a module allocates one state variable
    of {!Class_def.state_width} bits — the paper's "data members of a
    class instance are mapped to a single bit vector" (§8).  A method
    call inlines the method body with field accesses rewritten to
    slices of that vector; this is the OSSS synthesizer's member-
    function-to-free-function resolution, performed structurally. *)

type t

exception Call_error of string

val instantiate : Builder.t -> name:string -> Class_def.t -> t
(** Adds the state variable to the builder as a local. *)

val of_var : Ir.var -> Class_def.t -> t
(** Wrap an existing variable (used by the shared-object machinery);
    the variable's width must equal the class state width. *)

val view : Ir.var -> offset:int -> Class_def.t -> t
(** Wrap a slice of a wider variable starting at bit [offset] — how a
    polymorphic container embeds each variant's state. *)

val class_of : t -> Class_def.t
val state_var : t -> Ir.var

val construct : t -> Ir.stmt
(** Assign the constructor/reset value to the whole state vector. *)

val call : t -> string -> Ir.expr list -> Ir.stmt list
(** [call obj "Write" [e]] inlines procedure method [Write].  Raises
    {!Call_error} on unknown method, arity or width mismatch, or if the
    method returns a value. *)

val call_fn : t -> string -> Ir.expr list -> Ir.stmt list * Ir.expr
(** Inline a returning method: side-effect statements plus the return
    expression (evaluated against the pre-statement state; the
    statements must be executed before uses of the expression, exactly
    like the generated SystemC of Figure 7). *)

val read_expr : t -> Ir.expr
(** The whole state vector, e.g. for [sc_signal<Object>] transfers or
    [operator ==] comparisons. *)

val field_expr : t -> string -> Ir.expr
(** Direct field access — only the object's own methods should use
    this; exposed for tests and tracing ([sc_trace], Figure 9). *)

val equals : t -> t -> Ir.expr
(** Whole-object comparison — the [operator ==] overload of Figure 11.
    Both objects must be instances of the same class. *)

val peek_field : t -> Rtl_sim.t -> string -> Bitvec.t
(** Read a field's current value out of a running RTL simulation (the
    debugging access behind [sc_trace]/[operator <<], Figures 9-10). *)
