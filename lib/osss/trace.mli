(** Object tracing and printing — the [sc_trace] and [operator <<]
    support of §9 (Figures 9–10).

    [sc_trace] for an object dumps each data member as its own
    waveform channel; [operator <<] renders the object's state for
    [cout]-style debugging.  Both work against a running RTL
    simulation. *)

val trace_object :
  Rtl_trace.t -> ?prefix:string -> Object_inst.t -> unit
(** Register every field of the object as a separate channel named
    ["prefix.field"] (default prefix: the state variable's name). *)

val show : Object_inst.t -> Rtl_sim.t -> string
(** ["ClassName{field=16'h002a, ...}"] — the streaming-operator view of
    the object's current state. *)

val emit_trace_support : Class_def.t -> string
(** The C++ text a designer adds for tracing (the [sc_trace] overload
    and friend declaration plus [operator <<]) — the literal content of
    Figures 9 and 10, generated for any class. *)
