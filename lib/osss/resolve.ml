let non_member_name cls mname =
  Printf.sprintf "_%s_%s_1_" (Class_def.class_name cls) mname

(* Render IR expressions/statements in SystemC/C++ flavour. *)
let rec expr_str (e : Ir.expr) =
  match e with
  | Const c ->
      if Bitvec.width c <= 62 then string_of_int (Bitvec.to_int c)
      else "0x" ^ Bitvec.to_hex_string c
  | Var v -> v.Ir.var_name
  | Array_read (v, i) -> Printf.sprintf "%s[%s]" v.Ir.var_name (expr_str i)
  | Unop (op, e) ->
      let s =
        match op with
        | Ir.Not -> "~"
        | Neg -> "-"
        | Reduce_and -> "and_reduce"
        | Reduce_or -> "or_reduce"
        | Reduce_xor -> "xor_reduce"
      in
      (match op with
      | Ir.Not | Neg -> Printf.sprintf "(%s%s)" s (expr_str e)
      | _ -> Printf.sprintf "%s(%s)" s (expr_str e))
  | Binop (op, a, b) ->
      let s =
        match op with
        | Ir.Add -> "+"
        | Sub -> "-"
        | Mul -> "*"
        | And -> "&"
        | Or -> "|"
        | Xor -> "^"
        | Eq -> "=="
        | Ne -> "!="
        | Ult -> "<"
        | Ule -> "<="
        | Slt -> "<"
        | Sle -> "<="
        | Shl -> "<<"
        | Lshr -> ">>"
        | Ashr -> ">>"
      in
      Printf.sprintf "(%s %s %s)" (expr_str a) s (expr_str b)
  | Mux (s, t, e) ->
      Printf.sprintf "(%s ? %s : %s)" (expr_str s) (expr_str t) (expr_str e)
  | Slice (e, hi, lo) ->
      if hi = lo then Printf.sprintf "%s[%d]" (expr_str e) hi
      else Printf.sprintf "%s.range(%d, %d)" (expr_str e) hi lo
  | Concat (a, b) -> Printf.sprintf "(%s, %s)" (expr_str a) (expr_str b)
  | Resize (_, e, w) -> Printf.sprintf "sc_biguint<%d>(%s)" w (expr_str e)

let rec stmt_lines indent (st : Ir.stmt) =
  let pad = String.make indent ' ' in
  match st with
  | Assign (v, e) -> [ Printf.sprintf "%s%s = %s;" pad v.Ir.var_name (expr_str e) ]
  | Assign_slice (v, lo, e) ->
      let w = Ir.width_of e in
      if w = 1 then
        [ Printf.sprintf "%s%s[%d] = %s;" pad v.Ir.var_name lo (expr_str e) ]
      else
        [
          Printf.sprintf "%s%s.range(%d, %d) = %s;" pad v.Ir.var_name
            (lo + w - 1) lo (expr_str e);
        ]
  | Array_write (v, i, e) ->
      [
        Printf.sprintf "%s%s[%s] = %s;" pad v.Ir.var_name (expr_str i)
          (expr_str e);
      ]
  | If (c, t, els) ->
      [ Printf.sprintf "%sif (%s) {" pad (expr_str c) ]
      @ List.concat_map (stmt_lines (indent + 2)) t
      @ (if els = [] then []
         else
           (Printf.sprintf "%s} else {" pad)
           :: List.concat_map (stmt_lines (indent + 2)) els)
      @ [ pad ^ "}" ]
  | Case (s, arms, dflt) ->
      [ Printf.sprintf "%sswitch (%s) {" pad (expr_str s) ]
      @ List.concat_map
          (fun (label, body) ->
            (Printf.sprintf "%scase %d:" pad (Bitvec.to_int label))
            :: List.concat_map (stmt_lines (indent + 2)) body
            @ [ Printf.sprintf "%s  break;" pad ])
          arms
      @ (Printf.sprintf "%sdefault:" pad)
        :: List.concat_map (stmt_lines (indent + 2)) dflt
      @ [ Printf.sprintf "%s  break;" pad; pad ^ "}" ]

let emit_method cls mname =
  let m = Class_def.find_method cls mname in
  let sw = Class_def.state_width cls in
  let this_var = Ir.fresh_var ~name:"_this_" ~width:sw () in
  let params =
    List.map
      (fun (pname, w) -> (pname, Ir.fresh_var ~name:pname ~width:w ()))
      m.Class_def.m_params
  in
  let ctx =
    {
      Class_def.get =
        (fun fname ->
          let lo, width = Class_def.field_range cls fname in
          Ir.Slice (Ir.Var this_var, lo + width - 1, lo));
      set =
        (fun fname value ->
          let lo, _ = Class_def.field_range cls fname in
          Ir.Assign_slice (this_var, lo, value));
      arg =
        (fun pname ->
          match List.assoc_opt pname params with
          | Some v -> Ir.Var v
          | None -> invalid_arg ("emit_method: unknown parameter " ^ pname));
    }
  in
  let stmts, result = m.Class_def.m_body ctx in
  let ret_type =
    match m.Class_def.m_return with
    | None -> "void"
    | Some 1 -> "bool"
    | Some w -> Printf.sprintf "sc_biguint<%d>" w
  in
  let param_decls =
    Printf.sprintf "sc_biguint<%d>& _this_" sw
    :: List.map
         (fun (pname, v) ->
           Printf.sprintf "const sc_biguint<%d>& %s" v.Ir.width pname)
         params
  in
  let body_lines = List.concat_map (stmt_lines 2) stmts in
  let return_lines =
    match result with
    | None -> []
    | Some e -> [ Printf.sprintf "  return %s;" (expr_str e) ]
  in
  String.concat "\n"
    ((Printf.sprintf "%s %s(%s)" ret_type (non_member_name cls mname)
        (String.concat ", " param_decls))
     :: "{"
     :: (body_lines @ return_lines)
    @ [ "}" ])

let emit_class cls =
  let layout =
    Class_def.fields cls
    |> List.map (fun (f : Class_def.field) ->
           let lo, w = Class_def.field_range cls f.Class_def.f_name in
           Printf.sprintf "//   [%d:%d] %s" (lo + w - 1) lo f.Class_def.f_name)
  in
  let header =
    Printf.sprintf "// class %s resolved to sc_biguint<%d> with layout:"
      (Class_def.class_name cls) (Class_def.state_width cls)
  in
  let bodies =
    List.map
      (fun (m : Class_def.meth) -> emit_method cls m.Class_def.m_name)
      (Class_def.methods cls)
  in
  String.concat "\n" ((header :: layout) @ [ "" ] @ bodies)

let emit_module (m : Ir.module_def) =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "SC_MODULE( %s )\n{\n" m.Ir.mod_name;
  List.iter
    (fun (pt : Ir.port) ->
      let dir = match pt.dir with Ir.Input -> "sc_in" | Output -> "sc_out" in
      p "  %s< sc_biguint<%d> > %s;\n" dir pt.port_var.Ir.width pt.port_name)
    m.Ir.ports;
  List.iter
    (fun (v : Ir.var) ->
      if Ir.is_array v then
        p "  sc_biguint<%d> %s[%d];\n" v.Ir.width v.Ir.var_name v.Ir.depth
      else p "  sc_biguint<%d> %s;\n" v.Ir.width v.Ir.var_name)
    m.Ir.locals;
  List.iter
    (fun proc ->
      match proc with
      | Ir.Comb { proc_name; body } ->
          p "\n  void %s()  // SC_METHOD\n  {\n" proc_name;
          List.iter (fun st -> List.iter (fun l -> p "%s\n" l) (stmt_lines 4 st)) body;
          p "  }\n"
      | Ir.Sync { proc_name; body } ->
          p "\n  void %s()  // SC_CTHREAD(clk.pos())\n  {\n" proc_name;
          p "    while (true) {\n";
          List.iter (fun st -> List.iter (fun l -> p "%s\n" l) (stmt_lines 6 st)) body;
          p "      wait();\n    }\n  }\n")
    m.Ir.processes;
  p "\n  SC_CTOR(%s) { /* process registration elided */ }\n};\n" m.Ir.mod_name;
  Buffer.contents buf
