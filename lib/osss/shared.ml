type custom_arbiter =
  reqs:Ir.var array -> grant:Ir.var -> last_grant:Ir.var -> Ir.stmt list

type policy =
  | Round_robin
  | Fixed_priority
  | Fcfs
  | Custom of string * custom_arbiter

let policy_name = function
  | Round_robin -> "round-robin"
  | Fixed_priority -> "fixed-priority"
  | Fcfs -> "first-come-first-served"
  | Custom (name, _) -> name

exception Shared_error of string

let shared_error fmt = Printf.ksprintf (fun s -> raise (Shared_error s)) fmt

type client_vars = {
  c_req : Ir.var;
  c_op : Ir.var;
  c_args : Ir.var array;
  c_index : int;
}

type t = {
  obj : Object_inst.t;
  method_names : string list;
  clients_v : client_vars array;
  grant : Ir.var;  (* one-hot, n bits *)
  done_reg : Ir.var;  (* one-hot, n bits *)
  result_reg : Ir.var;
}

type client = { owner : t; vars : client_vars }

let ceil_log2 n =
  let rec go k p = if p >= n then max k 1 else go (k + 1) (p * 2) in
  go 0 1

let bit_of var i = Ir.Slice (Ir.Var var, i, i)

let create b ~name ~class_ ~policy ~clients ~methods ~reset =
  if clients < 1 then shared_error "%s: need at least one client" name;
  if methods = [] then shared_error "%s: no shared methods" name;
  let meths =
    List.map
      (fun mn ->
        match Class_def.find_method class_ mn with
        | m -> m
        | exception Not_found ->
            shared_error "%s: class %s has no method %s" name
              (Class_def.class_name class_) mn)
      methods
  in
  let op_w = ceil_log2 (List.length meths) in
  let max_arity =
    List.fold_left
      (fun acc (m : Class_def.meth) -> max acc (List.length m.m_params))
      0 meths
  in
  let slot_width j =
    List.fold_left
      (fun acc (m : Class_def.meth) ->
        match List.nth_opt m.m_params j with
        | Some (_, w) -> max acc w
        | None -> acc)
      1 meths
  in
  let result_w =
    List.fold_left
      (fun acc (m : Class_def.meth) ->
        match m.m_return with Some w -> max acc w | None -> acc)
      1 meths
  in
  let state_var = Builder.wire b (name ^ "_state") (Class_def.state_width class_) in
  let obj = Object_inst.of_var state_var class_ in
  let clients_v =
    Array.init clients (fun i ->
        {
          c_req = Builder.wire b (Printf.sprintf "%s_req%d" name i) 1;
          c_op = Builder.wire b (Printf.sprintf "%s_op%d" name i) op_w;
          c_args =
            Array.init max_arity (fun j ->
                Builder.wire b
                  (Printf.sprintf "%s_arg%d_%d" name i j)
                  (slot_width j));
          c_index = i;
        })
  in
  let grant = Builder.wire b (name ^ "_grant") clients in
  let done_reg = Builder.wire b (name ^ "_done") clients in
  let result_reg = Builder.wire b (name ^ "_result") result_w in
  let last_grant = Builder.wire b (name ^ "_last") (ceil_log2 clients) in
  let age_w = 8 in
  let ages =
    match policy with
    | Fcfs ->
        Array.init clients (fun i ->
            Builder.wire b (Printf.sprintf "%s_age%d" name i) age_w)
    | Round_robin | Fixed_priority | Custom _ -> [||]
  in
  (* ---- combinational arbiter ---- *)
  let no_req_before order upto_exclusive =
    (* conjunction of negated requests of clients earlier in [order] *)
    let rec build acc = function
      | [] -> acc
      | j :: rest when j = upto_exclusive -> ignore rest; acc
      | j :: rest ->
          let nj = Ir.Unop (Ir.Not, Ir.Var clients_v.(j).c_req) in
          build (Ir.Binop (Ir.And, acc, nj)) rest
    in
    build (Ir.Const (Bitvec.of_bool true)) order
  in
  let fixed_priority_grants order =
    (* grant_j = req_j and no earlier request in [order] *)
    List.map
      (fun j ->
        let g = Ir.Binop (Ir.And, Ir.Var clients_v.(j).c_req, no_req_before order j) in
        Ir.Assign_slice (grant, j, g))
      order
  in
  let clear_grant = Ir.Assign (grant, Ir.Const (Bitvec.zero clients)) in
  let arbiter_body =
    match policy with
    | Fixed_priority ->
        clear_grant :: fixed_priority_grants (List.init clients (fun i -> i))
    | Round_robin ->
        (* Rotate priority: the client after the last granted one wins
           ties.  A case over last_grant selects the rotation. *)
        let arms =
          List.init clients (fun last ->
              let order = List.init clients (fun k -> (last + 1 + k) mod clients) in
              ( Bitvec.of_int ~width:(ceil_log2 clients) last,
                fixed_priority_grants order ))
        in
        [
          clear_grant;
          Ir.Case (Ir.Var last_grant, arms, fixed_priority_grants (List.init clients (fun i -> i)));
        ]
    | Fcfs ->
        (* Grant the requester with the highest age; ties to the lower
           index.  Ages are registered in the server process. *)
        let is_winner j =
          let others = List.filter (fun k -> k <> j) (List.init clients (fun i -> i)) in
          List.fold_left
            (fun acc k ->
              let k_loses =
                (* k not requesting, or k's age strictly lower, or equal
                   ages and k has the higher index *)
                let not_req = Ir.Unop (Ir.Not, Ir.Var clients_v.(k).c_req) in
                let lower_age =
                  Ir.Binop (Ir.Ult, Ir.Var ages.(k), Ir.Var ages.(j))
                in
                let tie_break =
                  if k > j then
                    Ir.Binop (Ir.Eq, Ir.Var ages.(k), Ir.Var ages.(j))
                  else Ir.Const (Bitvec.of_bool false)
                in
                Ir.Binop
                  (Ir.And, acc,
                   Ir.Binop (Ir.Or, not_req, Ir.Binop (Ir.Or, lower_age, tie_break)))
              in
              k_loses)
            (Ir.Var clients_v.(j).c_req)
            others
        in
        clear_grant
        :: List.init clients (fun j -> Ir.Assign_slice (grant, j, is_winner j))
    | Custom (_, arbiter) ->
        (* user-supplied scheduler (§6: "or implement an own according
           to the required needs"); the contract is to drive [grant]
           one-hot from the request variables *)
        clear_grant
        :: arbiter
             ~reqs:(Array.map (fun cv -> cv.c_req) clients_v)
             ~grant ~last_grant
  in
  Builder.comb b (name ^ "_arbiter") arbiter_body;
  (* ---- synchronous server ---- *)
  let call_arm (m : Class_def.meth) (cv : client_vars) =
    let actuals =
      List.mapi
        (fun j (_, w) ->
          let slot = cv.c_args.(j) in
          if w = slot.Ir.width then Ir.Var slot
          else Ir.Slice (Ir.Var slot, w - 1, 0))
        m.m_params
    in
    match m.m_return with
    | None -> Object_inst.call obj m.m_name actuals
    | Some w ->
        let stmts, ret = Object_inst.call_fn obj m.m_name actuals in
        let padded =
          if w = result_w then ret else Ir.Resize (false, ret, result_w)
        in
        stmts @ [ Ir.Assign (result_reg, padded) ]
  in
  let dispatch cv =
    let arms =
      List.mapi
        (fun k m -> (Bitvec.of_int ~width:op_w k, call_arm m cv))
        meths
    in
    Ir.Case (Ir.Var cv.c_op, arms, [])
  in
  let per_client_exec =
    List.concat
      (List.init clients (fun i ->
           let cv = clients_v.(i) in
           [
             Ir.If
               ( bit_of grant i,
                 [
                   dispatch cv;
                   Ir.Assign_slice (done_reg, i, Ir.Const (Bitvec.of_bool true));
                   Ir.Assign
                     ( last_grant,
                       Ir.Const (Bitvec.of_int ~width:(ceil_log2 clients) i) );
                 ],
                 [] );
           ]))
  in
  let age_updates =
    match policy with
    | Round_robin | Fixed_priority | Custom _ -> []
    | Fcfs ->
        List.init clients (fun i ->
            (* pending and not granted: age++ (saturating); otherwise 0 *)
            let pending =
              Ir.Binop
                (Ir.And, Ir.Var clients_v.(i).c_req,
                 Ir.Unop (Ir.Not, bit_of grant i))
            in
            let saturated =
              Ir.Binop
                (Ir.Eq, Ir.Var ages.(i), Ir.Const (Bitvec.ones age_w))
            in
            let bumped =
              Ir.Mux
                ( saturated,
                  Ir.Var ages.(i),
                  Ir.Binop
                    (Ir.Add, Ir.Var ages.(i), Ir.Const (Bitvec.of_int ~width:age_w 1)) )
            in
            Ir.Assign (ages.(i), Ir.Mux (pending, bumped, Ir.Const (Bitvec.zero age_w))))
  in
  let reset_body =
    [
      Object_inst.construct obj;
      Ir.Assign (done_reg, Ir.Const (Bitvec.zero clients));
      Ir.Assign (result_reg, Ir.Const (Bitvec.zero result_w));
      Ir.Assign
        (last_grant, Ir.Const (Bitvec.zero (ceil_log2 clients)));
    ]
    @ (match policy with
      | Fcfs ->
          Array.to_list
            (Array.map
               (fun a -> Ir.Assign (a, Ir.Const (Bitvec.zero age_w)))
               ages)
      | Round_robin | Fixed_priority | Custom _ -> [])
  in
  let run_body =
    (Ir.Assign (done_reg, Ir.Const (Bitvec.zero clients)) :: per_client_exec)
    @ age_updates
  in
  Builder.sync b (name ^ "_server")
    [ Ir.If (Ir.Var reset, reset_body, run_body) ];
  let t =
    { obj; method_names = methods; clients_v; grant; done_reg; result_reg }
  in
  t

let client t i =
  if i < 0 || i >= Array.length t.clients_v then
    shared_error "client index %d out of range" i;
  { owner = t; vars = t.clients_v.(i) }

let n_clients t = Array.length t.clients_v
let req c = c.vars.c_req
let op c = c.vars.c_op
let args c = c.vars.c_args
let granted c = bit_of c.owner.grant c.vars.c_index
let done_ c = bit_of c.owner.done_reg c.vars.c_index
let result t = Ir.Var t.result_reg

let op_index t name =
  let rec find i = function
    | [] -> raise Not_found
    | m :: _ when m = name -> i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 t.method_names

let state t = t.obj
