let specialized_name base params =
  Printf.sprintf "%s<%s>" base (String.concat "," (List.map string_of_int params))

let memoize make =
  let table : (int list, Class_def.t) Hashtbl.t = Hashtbl.create 8 in
  fun params ->
    match Hashtbl.find_opt table params with
    | Some cls -> cls
    | None ->
        let cls = make params in
        Hashtbl.replace table params cls;
        cls
