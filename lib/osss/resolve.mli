(** The OSSS synthesizer's visible output: resolved standard SystemC.

    In the ODETTE flow (Figure 6) the synthesizer writes plain SystemC
    files in which classes have been dissolved: member functions become
    non-member functions over a [sc_biguint] state vector (Figure 7),
    and modules hold the vector directly (Figure 8).  In this embedding
    the structural resolution happens at IR construction time
    ([Object_inst] / [Polymorph] / [Shared]); this module regenerates
    the equivalent human-readable SystemC text, which is what a designer
    debugging the intermediate files (§12) would inspect. *)

val non_member_name : Class_def.t -> string -> string
(** [_SyncRegister_Write_1_] style mangled name. *)

val emit_method : Class_def.t -> string -> string
(** The resolved non-member function for one method, Figure 7 style. *)

val emit_class : Class_def.t -> string
(** All methods of a class (inherited ones included, with the
    effective override), preceded by a layout comment for the state
    vector. *)

val emit_module : Ir.module_def -> string
(** An [SC_MODULE] rendering of a resolved IR module, Figure 8 style:
    ports, the state vectors as [sc_biguint] members, and each process
    as an [SC_CTHREAD]/[SC_METHOD] body. *)
