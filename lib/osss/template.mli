(** Template support.

    C++ templates specialize at compile time; in this embedding a
    parameterized class is an OCaml function returning a
    {!Class_def.t}, evaluated when the design is built — the same
    phase distinction.  This module provides the specialization-naming
    convention and a memoizing helper so repeated instantiations of
    the same parameters share one class definition (as a C++ compiler
    shares one template instantiation). *)

val specialized_name : string -> int list -> string
(** [specialized_name "SyncRegister" [4; 0]] is ["SyncRegister<4,0>"]. *)

val memoize : (int list -> Class_def.t) -> int list -> Class_def.t
(** Per-generator memo table keyed by the parameter list.  Call it
    partially applied: [let sync_register = Template.memoize make]. *)
