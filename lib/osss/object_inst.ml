type t = { cls : Class_def.t; var : Ir.var; offset : int }

exception Call_error of string

let call_error fmt = Printf.ksprintf (fun s -> raise (Call_error s)) fmt

let instantiate b ~name cls =
  let var = Builder.wire b name (Class_def.state_width cls) in
  { cls; var; offset = 0 }

let of_var var cls =
  if var.Ir.width <> Class_def.state_width cls then
    call_error "of_var: width %d vs class %s state width %d" var.Ir.width
      (Class_def.class_name cls) (Class_def.state_width cls);
  { cls; var; offset = 0 }

let view var ~offset cls =
  if offset < 0 || offset + Class_def.state_width cls > var.Ir.width then
    call_error "view: class %s does not fit at offset %d of %s"
      (Class_def.class_name cls) offset var.Ir.var_name;
  { cls; var; offset }

let class_of o = o.cls
let state_var o = o.var

let state_width o = Class_def.state_width o.cls

let construct o =
  let value = Ir.Const (Class_def.reset_value o.cls) in
  if o.offset = 0 && state_width o = o.var.Ir.width then Ir.Assign (o.var, value)
  else Ir.Assign_slice (o.var, o.offset, value)

let read_expr o =
  if o.offset = 0 && state_width o = o.var.Ir.width then Ir.Var o.var
  else Ir.Slice (Ir.Var o.var, o.offset + state_width o - 1, o.offset)

let field_expr o name =
  let lo, width = Class_def.field_range o.cls name in
  let lo = lo + o.offset in
  Ir.Slice (Ir.Var o.var, lo + width - 1, lo)

(* operator == of Figure 11: whole-object comparison. *)
let equals a b =
  if Class_def.class_name a.cls <> Class_def.class_name b.cls then
    call_error "equals: comparing %s with %s" (Class_def.class_name a.cls)
      (Class_def.class_name b.cls);
  Ir.Binop (Ir.Eq, read_expr a, read_expr b)

let peek_field o sim name =
  let lo, width = Class_def.field_range o.cls name in
  let lo = lo + o.offset in
  Bitvec.slice (Rtl_sim.peek_var sim o.var) ~hi:(lo + width - 1) ~lo

(* Build the method context for an inlined call on this object. *)
let ctx_for o (m : Class_def.meth) args =
  if List.length args <> List.length m.Class_def.m_params then
    call_error "%s.%s: %d arguments, expected %d"
      (Class_def.class_name o.cls) m.Class_def.m_name (List.length args)
      (List.length m.Class_def.m_params);
  let bound =
    List.map2
      (fun (pname, pwidth) actual ->
        let w = Ir.width_of actual in
        if w <> pwidth then
          call_error "%s.%s: argument %s has width %d, expected %d"
            (Class_def.class_name o.cls) m.Class_def.m_name pname w pwidth;
        (pname, actual))
      m.Class_def.m_params args
  in
  {
    Class_def.get =
      (fun fname ->
        match Class_def.field_range o.cls fname with
        | lo, width ->
            let lo = lo + o.offset in
            Ir.Slice (Ir.Var o.var, lo + width - 1, lo)
        | exception Not_found ->
            call_error "%s: unknown field %s" (Class_def.class_name o.cls)
              fname);
    set =
      (fun fname value ->
        match Class_def.field_range o.cls fname with
        | lo, _ -> Ir.Assign_slice (o.var, lo + o.offset, value)
        | exception Not_found ->
            call_error "%s: unknown field %s" (Class_def.class_name o.cls)
              fname);
    arg =
      (fun pname ->
        match List.assoc_opt pname bound with
        | Some e -> e
        | None ->
            call_error "%s.%s: unknown parameter %s"
              (Class_def.class_name o.cls) m.Class_def.m_name pname);
  }

let lookup o name =
  match Class_def.find_method o.cls name with
  | m -> m
  | exception Not_found ->
      call_error "%s has no method %s" (Class_def.class_name o.cls) name

let call o name args =
  let m = lookup o name in
  if m.Class_def.m_return <> None then
    call_error "%s.%s returns a value; use call_fn"
      (Class_def.class_name o.cls) name;
  let stmts, _ = m.Class_def.m_body (ctx_for o m args) in
  stmts

let call_fn o name args =
  let m = lookup o name in
  match m.Class_def.m_return with
  | None ->
      call_error "%s.%s is a procedure; use call" (Class_def.class_name o.cls)
        name
  | Some rw ->
      let stmts, result = m.Class_def.m_body (ctx_for o m args) in
      let result =
        match result with
        | Some e -> e
        | None ->
            call_error "%s.%s: body returned no value"
              (Class_def.class_name o.cls) name
      in
      let w = Ir.width_of result in
      if w <> rw then
        call_error "%s.%s: returns width %d, declared %d"
          (Class_def.class_name o.cls) name w rw;
      (stmts, result)
