(** Objects at simulation time — the paper's pre-synthesis execution
    model ("the capability to compile the design and generate a binary
    executable file with any C++ compiler to support simulation stays
    untouched", §5).

    A simulation object holds its state vector in memory and executes
    method bodies immediately (through the IR evaluator), so the same
    {!Class_def} drives both behavioural simulation — typically inside
    [Sim.Process] threads — and synthesis.  Bit-exactness between the
    two paths is tested, which is the OSSS refinement guarantee. *)

type t

exception Sim_call_error of string

val create : Class_def.t -> t
(** State starts at the constructor/reset value. *)

val class_of : t -> Class_def.t

val call : t -> string -> Bitvec.t list -> unit
(** Execute a procedure method immediately. *)

val call_fn : t -> string -> Bitvec.t list -> Bitvec.t
(** Execute a returning method; side effects apply, the return value
    is evaluated after them (same convention as the synthesis path). *)

val reset : t -> unit
(** Re-run the constructor. *)

val state : t -> Bitvec.t
val set_state : t -> Bitvec.t -> unit
(** Whole-vector access, e.g. to model [sc_signal<Object>] transfers. *)

val get_field : t -> string -> Bitvec.t
val show : t -> string
(** [operator <<] rendering, as {!Trace.show} but for simulation
    objects. *)

val equal : t -> t -> bool
(** [operator ==]: same class and same state bits. *)
