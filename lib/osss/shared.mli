(** Global (shared) objects with synthesized access scheduling.

    "Often, components of a system have to be accessed by different
    modules or processes. [...] Such parts of a system can be
    implemented as global objects.  The access and scheduling of a
    global object gets automatically included for synthesis.  A
    designer can use a standard scheduler or implement an own" (§6).

    [create] builds, inside the current module: a request/operation/
    argument interface per client, a combinational arbiter implementing
    the chosen policy, and a synchronous server process that executes
    one granted method call per clock cycle on the shared object state
    and publishes the return value.

    Client processes drive [req]/[op]/[args] (they are ordinary IR
    variables) and observe [granted]/[done_]/[result]. *)

type custom_arbiter =
  reqs:Ir.var array -> grant:Ir.var -> last_grant:Ir.var -> Ir.stmt list
(** A user-defined scheduler ("a designer can [...] implement an own",
    §6): given the per-client request variables, produce combinational
    statements driving [grant] one-hot.  [last_grant] is the registered
    index of the most recently served client (updated by the generated
    server), available for rotating policies.  The grant register is
    pre-cleared to zero before these statements run. *)

type policy =
  | Round_robin
  | Fixed_priority
  | Fcfs
  | Custom of string * custom_arbiter

val policy_name : policy -> string

type t
type client

exception Shared_error of string

val create :
  Builder.t ->
  name:string ->
  class_:Class_def.t ->
  policy:policy ->
  clients:int ->
  methods:string list ->
  reset:Ir.var ->
  t
(** [methods] lists the class methods callable through the shared
    interface; operation code [k] selects the [k]-th.  [reset]
    (synchronous, active high) constructs the object and clears the
    scheduler state. *)

val client : t -> int -> client
val n_clients : t -> int

val req : client -> Ir.var
(** 1-bit request; hold high until {!done_}. *)

val op : client -> Ir.var
(** Operation selector, [ceil_log2 (length methods)] bits wide. *)

val args : client -> Ir.var array
(** Argument slots; slot [j] is as wide as the widest [j]-th parameter
    over all shared methods.  Narrower parameters take the low bits. *)

val granted : client -> Ir.expr
(** 1-bit: the arbiter grants this client in the current cycle. *)

val done_ : client -> Ir.expr
(** 1-bit, registered: this client's call executed in the previous
    cycle; {!result} holds its return value. *)

val result : t -> Ir.expr
(** Return-value register (width = widest shared method return; 1 if
    all are procedures). *)

val op_index : t -> string -> int
(** Operation code for a method name.  Raises [Not_found]. *)

val state : t -> Object_inst.t
(** The shared object itself (for tracing and tests). *)
