type t = {
  base : Class_def.t;
  var : Ir.var;
  vlist : Class_def.t list;
  tag_w : int;
  payload_w : int;
}

exception Poly_error of string

let poly_error fmt = Printf.ksprintf (fun s -> raise (Poly_error s)) fmt

let tag_bits n =
  let rec go k p = if p >= n then max k 1 else go (k + 1) (p * 2) in
  go 0 1

let instantiate b ~name ~base vlist =
  if vlist = [] then poly_error "%s: no variants" name;
  List.iter
    (fun v ->
      if not (Class_def.is_subclass v ~of_:base) then
        poly_error "%s: %s is not a subclass of %s" name
          (Class_def.class_name v) (Class_def.class_name base);
      List.iter
        (fun (m : Class_def.meth) ->
          if not (Class_def.has_method v m.Class_def.m_name) then
            poly_error "%s: %s lacks method %s" name (Class_def.class_name v)
              m.Class_def.m_name)
        (Class_def.methods base))
    vlist;
  let payload_w =
    List.fold_left (fun acc v -> max acc (Class_def.state_width v)) 1 vlist
  in
  let tag_w = tag_bits (List.length vlist) in
  let var = Builder.wire b name (payload_w + tag_w) in
  { base; var; vlist; tag_w; payload_w }

let variants p = p.vlist
let state_var p = p.var
let tag_width p = p.tag_w

let tag_expr p =
  Ir.Slice (Ir.Var p.var, p.payload_w + p.tag_w - 1, p.payload_w)

let tag_of p cls =
  let rec find i = function
    | [] ->
        poly_error "%s is not a variant of %s" (Class_def.class_name cls)
          p.var.Ir.var_name
    | v :: rest ->
        if Class_def.class_name v = Class_def.class_name cls then i
        else find (i + 1) rest
  in
  find 0 p.vlist

let view_of p cls = Object_inst.view p.var ~offset:0 cls

let assign_class p cls =
  let tag = tag_of p cls in
  [
    Ir.Assign_slice (p.var, p.payload_w, Ir.Const (Bitvec.of_int ~width:p.tag_w tag));
    Object_inst.construct (view_of p cls);
  ]

let is_instance p cls =
  Ir.Binop
    (Ir.Eq, tag_expr p, Ir.Const (Bitvec.of_int ~width:p.tag_w (tag_of p cls)))

let vcall p name args =
  (match Class_def.find_method p.base name with
  | m ->
      if m.Class_def.m_return <> None then
        poly_error "%s is a function; use vcall_fn" name
  | exception Not_found ->
      poly_error "base %s has no method %s" (Class_def.class_name p.base) name);
  let arms =
    List.mapi
      (fun i v ->
        ( Bitvec.of_int ~width:p.tag_w i,
          Object_inst.call (view_of p v) name args ))
      p.vlist
  in
  [ Ir.Case (tag_expr p, arms, []) ]

let vcall_fn p name args =
  let base_m =
    match Class_def.find_method p.base name with
    | m -> m
    | exception Not_found ->
        poly_error "base %s has no method %s" (Class_def.class_name p.base)
          name
  in
  let rw =
    match base_m.Class_def.m_return with
    | Some w -> w
    | None -> poly_error "%s is a procedure; use vcall" name
  in
  let per_variant =
    List.mapi
      (fun i v ->
        let stmts, result = Object_inst.call_fn (view_of p v) name args in
        (i, stmts, result))
      p.vlist
  in
  let arms =
    List.map
      (fun (i, stmts, _) -> (Bitvec.of_int ~width:p.tag_w i, stmts))
      per_variant
  in
  let stmts =
    if List.for_all (fun (_, stmts, _) -> stmts = []) per_variant then []
    else [ Ir.Case (tag_expr p, arms, []) ]
  in
  (* The function-select multiplexer of §8.  Every per-variant result
     already type-checked against the shared signature width [rw]. *)
  let result =
    match per_variant with
    | [] -> poly_error "no variants"
    | (_, _, first) :: rest ->
        List.fold_left
          (fun acc (i, _, r) ->
            let sel =
              Ir.Binop
                (Ir.Eq, tag_expr p, Ir.Const (Bitvec.of_int ~width:p.tag_w i))
            in
            Ir.Mux (sel, r, acc))
          first rest
  in
  assert (Ir.width_of result = rw);
  (stmts, result)
