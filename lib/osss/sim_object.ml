type t = { cls : Class_def.t; var : Ir.var; env : Eval.env }

exception Sim_call_error of string

let sim_error fmt = Printf.ksprintf (fun s -> raise (Sim_call_error s)) fmt

let create cls =
  let var =
    Ir.fresh_var
      ~name:("simobj_" ^ Class_def.class_name cls)
      ~width:(Class_def.state_width cls) ()
  in
  let env = Eval.create () in
  Eval.set env var (Class_def.reset_value cls);
  { cls; var; env }

let class_of o = o.cls
let reset o = Eval.set o.env o.var (Class_def.reset_value o.cls)
let state o = Eval.get o.env o.var

let set_state o bv =
  if Bitvec.width bv <> o.var.Ir.width then
    sim_error "set_state: width %d expected %d" (Bitvec.width bv)
      o.var.Ir.width;
  Eval.set o.env o.var bv

let get_field o name =
  let lo, width = Class_def.field_range o.cls name in
  Bitvec.slice (state o) ~hi:(lo + width - 1) ~lo

let ctx_for o (m : Class_def.meth) args =
  if List.length args <> List.length m.Class_def.m_params then
    sim_error "%s.%s: %d arguments, expected %d" (Class_def.class_name o.cls)
      m.Class_def.m_name (List.length args)
      (List.length m.Class_def.m_params);
  let bound =
    List.map2
      (fun (pname, pwidth) actual ->
        if Bitvec.width actual <> pwidth then
          sim_error "%s.%s: argument %s has width %d, expected %d"
            (Class_def.class_name o.cls) m.Class_def.m_name pname
            (Bitvec.width actual) pwidth;
        (pname, actual))
      m.Class_def.m_params args
  in
  {
    Class_def.get =
      (fun fname ->
        match Class_def.field_range o.cls fname with
        | lo, width -> Ir.Slice (Ir.Var o.var, lo + width - 1, lo)
        | exception Not_found ->
            sim_error "%s: unknown field %s" (Class_def.class_name o.cls)
              fname);
    set =
      (fun fname value ->
        match Class_def.field_range o.cls fname with
        | lo, _ -> Ir.Assign_slice (o.var, lo, value)
        | exception Not_found ->
            sim_error "%s: unknown field %s" (Class_def.class_name o.cls)
              fname);
    arg =
      (fun pname ->
        match List.assoc_opt pname bound with
        | Some bv -> Ir.Const bv
        | None ->
            sim_error "%s.%s: unknown parameter %s"
              (Class_def.class_name o.cls) m.Class_def.m_name pname);
  }

let lookup o name =
  match Class_def.find_method o.cls name with
  | m -> m
  | exception Not_found ->
      sim_error "%s has no method %s" (Class_def.class_name o.cls) name

let call o name args =
  let m = lookup o name in
  if m.Class_def.m_return <> None then
    sim_error "%s.%s returns a value; use call_fn" (Class_def.class_name o.cls)
      name;
  let stmts, _ = m.Class_def.m_body (ctx_for o m args) in
  Eval.run_body o.env stmts

let call_fn o name args =
  let m = lookup o name in
  if m.Class_def.m_return = None then
    sim_error "%s.%s is a procedure; use call" (Class_def.class_name o.cls)
      name;
  let stmts, result = m.Class_def.m_body (ctx_for o m args) in
  Eval.run_body o.env stmts;
  match result with
  | Some e -> Eval.eval_expr o.env e
  | None ->
      sim_error "%s.%s: body returned no value" (Class_def.class_name o.cls)
        name

let show o =
  let fields =
    List.map
      (fun (f : Class_def.field) ->
        Printf.sprintf "%s=%s" f.Class_def.f_name
          (Bitvec.to_string (get_field o f.Class_def.f_name)))
      (Class_def.fields o.cls)
  in
  Printf.sprintf "%s{%s}" (Class_def.class_name o.cls)
    (String.concat ", " fields)

let equal a b =
  Class_def.class_name a.cls = Class_def.class_name b.cls
  && Bitvec.equal (state a) (state b)
