(** Synthesizable polymorphism.

    A polymorphic object holds {e any} of a closed set of classes
    derived from a common base.  Its resolved state vector is a class
    tag plus the widest variant's state; a virtual call dispatches on
    the tag, which synthesizes to exactly the multiplexers the paper
    says polymorphism costs (§8: "in case of polymorphism, multiplexers
    are being inserted to select the function and object"). *)

type t

exception Poly_error of string

val instantiate :
  Builder.t -> name:string -> base:Class_def.t -> Class_def.t list -> t
(** [instantiate b ~name ~base variants]: every variant must be a
    subclass of [base] (the base itself may be listed) and implement
    every [base] method.  Tag value [i] = position in [variants]. *)

val variants : t -> Class_def.t list
val state_var : t -> Ir.var
val tag_width : t -> int

val assign_class : t -> Class_def.t -> Ir.stmt list
(** "new Variant": set the tag and construct the variant's state. *)

val tag_expr : t -> Ir.expr
val is_instance : t -> Class_def.t -> Ir.expr
(** 1-bit expression: does the object currently hold this variant? *)

val vcall : t -> string -> Ir.expr list -> Ir.stmt list
(** Virtual procedure call: a [Case] over the tag, each arm inlining
    the variant's implementation. *)

val vcall_fn : t -> string -> Ir.expr list -> Ir.stmt list * Ir.expr
(** Virtual function call: the result is a mux chain over the tag.  All
    variant implementations must return the base signature's width. *)
