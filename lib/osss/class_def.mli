(** OSSS synthesizable classes.

    A class declares data members (fields) and member functions
    (methods).  Following the paper's resolution strategy (§8), the data
    members of an instance map onto a {e single bit vector}; methods
    become free functions over slices of that vector.

    Inheritance: a class may extend a parent; it sees the parent's
    fields and methods, may add its own, and may {e override} methods by
    redeclaring the same name.

    Templates: parameterized classes are plain OCaml functions returning
    a class (see [Template] and the [SyncRegister] example), which is
    exactly C++ template specialization performed at OCaml evaluation
    time.

    Method bodies are OCaml functions from a {!method_ctx} to IR
    statements; parameters are captured by name as pure expressions, so
    bodies should compute over pre-call state before mutating fields
    (the discipline the ODETTE synthesizer enforces with generated
    temporaries, Figure 7). *)

type field = { f_name : string; f_width : int; f_init : Bitvec.t }

val field : ?init:Bitvec.t -> string -> int -> field
(** Default initial value: zero. *)

(** Accessors a method body uses to touch its object and arguments. *)
type method_ctx = {
  get : string -> Ir.expr;  (** read a field of [this] *)
  set : string -> Ir.expr -> Ir.stmt;  (** write a field of [this] *)
  arg : string -> Ir.expr;  (** read a parameter *)
}

type body_result = Ir.stmt list * Ir.expr option
(** Statements plus the return value for non-void methods. *)

type meth = {
  m_name : string;
  m_params : (string * int) list;  (** name, width *)
  m_return : int option;  (** return width; [None] = procedure *)
  m_body : method_ctx -> body_result;
}

val proc_method :
  name:string -> params:(string * int) list ->
  (method_ctx -> Ir.stmt list) -> meth

val fn_method :
  name:string -> params:(string * int) list -> return:int ->
  (method_ctx -> Ir.stmt list * Ir.expr) -> meth

type t

exception Class_error of string

val declare : ?parent:t -> name:string -> field list -> meth list -> t
(** Raises {!Class_error} on duplicate field names (including clashes
    with inherited fields) or malformed methods. *)

val class_name : t -> string
val parent : t -> t option

val fields : t -> field list
(** Inherited fields first, in declaration order. *)

val methods : t -> meth list
(** Effective method table: inherited methods with overrides applied,
    then own additions. *)

val find_method : t -> string -> meth
(** Raises [Not_found]. *)

val has_method : t -> string -> bool

val state_width : t -> int
(** Total width of the object's resolved state vector. *)

val reset_value : t -> Bitvec.t
(** Concatenated field initial values — what the constructor/[Reset]
    establishes. *)

val field_range : t -> string -> int * int
(** [(lo, width)] of a field inside the state vector.  Raises
    [Not_found]. *)

val is_subclass : t -> of_:t -> bool
(** Reflexive-transitive subclass test. *)
