type t = { cls : Class_def.t; sig_ : Bitvec.t Sim.Signal.t }

let create k ~name cls =
  {
    cls;
    sig_ =
      Sim.Signal.create k ~equal:Bitvec.equal ~name
        (Class_def.reset_value cls);
  }

let class_of t = t.cls
let signal t = t.sig_

let check_class t obj =
  if
    Class_def.class_name (Sim_object.class_of obj)
    <> Class_def.class_name t.cls
  then
    invalid_arg
      (Printf.sprintf "Object_signal: %s carried on a %s signal"
         (Class_def.class_name (Sim_object.class_of obj))
         (Class_def.class_name t.cls))

let write t obj =
  check_class t obj;
  Sim.Signal.write t.sig_ (Sim_object.state obj)

let read t =
  let obj = Sim_object.create t.cls in
  Sim_object.set_state obj (Sim.Signal.read t.sig_);
  obj

let read_into t obj =
  check_class t obj;
  Sim_object.set_state obj (Sim.Signal.read t.sig_)

let changed_event t = Sim.Signal.changed_event t.sig_
