(** Objects on signals — "the object data can be transferred via
    [sc_signal<Object>] between different processes" (§6).

    An object signal carries the class's state vector with ordinary
    signal semantics (write now, visible after the update phase).
    Reading yields a fresh {!Sim_object} so the receiving process can
    call methods on its own copy, exactly like receiving a C++ object
    by value. *)

type t

val create :
  Sim.Kernel.t -> name:string -> Class_def.t -> t
(** Initial value: the class's constructor state. *)

val class_of : t -> Class_def.t
val signal : t -> Bitvec.t Sim.Signal.t
(** The underlying state-vector signal (e.g. for tracing). *)

val write : t -> Sim_object.t -> unit
(** Classes must match; raises [Invalid_argument] otherwise. *)

val read : t -> Sim_object.t
(** A fresh object holding the current signal value. *)

val read_into : t -> Sim_object.t -> unit
(** Overwrite an existing object's state with the signal value. *)

val changed_event : t -> Sim.Kernel.event
