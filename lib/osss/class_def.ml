type field = { f_name : string; f_width : int; f_init : Bitvec.t }

exception Class_error of string

let class_error fmt = Printf.ksprintf (fun s -> raise (Class_error s)) fmt

let field ?init name width =
  if width < 1 then class_error "field %s: width must be >= 1" name;
  let f_init =
    match init with
    | None -> Bitvec.zero width
    | Some bv ->
        if Bitvec.width bv <> width then
          class_error "field %s: init width %d vs %d" name (Bitvec.width bv)
            width;
        bv
  in
  { f_name = name; f_width = width; f_init }

type method_ctx = {
  get : string -> Ir.expr;
  set : string -> Ir.expr -> Ir.stmt;
  arg : string -> Ir.expr;
}

type body_result = Ir.stmt list * Ir.expr option

type meth = {
  m_name : string;
  m_params : (string * int) list;
  m_return : int option;
  m_body : method_ctx -> body_result;
}

let proc_method ~name ~params body =
  { m_name = name; m_params = params; m_return = None;
    m_body = (fun ctx -> (body ctx, None)) }

let fn_method ~name ~params ~return body =
  if return < 1 then class_error "method %s: return width must be >= 1" name;
  { m_name = name; m_params = params; m_return = Some return;
    m_body =
      (fun ctx ->
        let stmts, result = body ctx in
        (stmts, Some result)) }

type t = {
  cname : string;
  cparent : t option;
  own_fields : field list;
  own_methods : meth list;
}

let class_name c = c.cname
let parent c = c.cparent

let rec fields c =
  (match c.cparent with None -> [] | Some p -> fields p) @ c.own_fields

let rec methods c =
  let inherited = match c.cparent with None -> [] | Some p -> methods p in
  (* An own method with the same name overrides the inherited one. *)
  let not_overridden m =
    not (List.exists (fun own -> own.m_name = m.m_name) c.own_methods)
  in
  List.filter not_overridden inherited @ c.own_methods

let declare ?parent ~name own_fields own_methods =
  let c = { cname = name; cparent = parent; own_fields; own_methods } in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun f ->
      if Hashtbl.mem seen f.f_name then
        class_error "class %s: duplicate field %s" name f.f_name;
      Hashtbl.replace seen f.f_name ())
    (fields c);
  let mseen = Hashtbl.create 8 in
  List.iter
    (fun m ->
      if Hashtbl.mem mseen m.m_name then
        class_error "class %s: duplicate method %s" name m.m_name;
      Hashtbl.replace mseen m.m_name ())
    own_methods;
  (* Overrides must keep the signature. *)
  (match parent with
  | None -> ()
  | Some p ->
      List.iter
        (fun own ->
          match List.find_opt (fun m -> m.m_name = own.m_name) (methods p) with
          | None -> ()
          | Some base ->
              if
                List.map snd base.m_params <> List.map snd own.m_params
                || base.m_return <> own.m_return
              then
                class_error "class %s: override %s changes the signature" name
                  own.m_name)
        own_methods);
  c

let find_method c name = List.find (fun m -> m.m_name = name) (methods c)
let has_method c name = List.exists (fun m -> m.m_name = name) (methods c)

let state_width c =
  let w = List.fold_left (fun acc f -> acc + f.f_width) 0 (fields c) in
  max w 1

let reset_value c =
  match fields c with
  | [] -> Bitvec.zero 1
  | fs ->
      (* Field 0 occupies the low bits; concat_list wants MSB first. *)
      Bitvec.concat_list (List.rev_map (fun f -> f.f_init) fs)

let field_range c name =
  let rec scan lo = function
    | [] -> raise Not_found
    | f :: _ when f.f_name = name -> (lo, f.f_width)
    | f :: rest -> scan (lo + f.f_width) rest
  in
  scan 0 (fields c)

let rec is_subclass c ~of_ =
  c == of_
  || c.cname = of_.cname
  || match c.cparent with None -> false | Some p -> is_subclass p ~of_
