(** I²C bus master — the module the paper uses for its
    development-effort comparison (§12: one day in OSSS, an estimated
    two in plain SystemC, slightly longer in VHDL RTL).

    Supports complete write and read transactions:
    - write: START, address+W, register, data byte, each slave-acked,
      STOP;
    - read: START, address+W, register, repeated START, address+R,
      slave data byte (master released), master NACK, STOP.

    Three genuinely distinct implementations with identical ports and
    cycle behaviour:
    - {!osss_module}: behavioural, structured with OSSS classes
      ([TxShift] shift register — reused for receive — and [BitClock]
      quarter-phase generator);
    - {!systemc_module}: the same behavioural structure against plain
      registers, no classes;
    - {!vhdl_module}: conventional RTL — registered state with a
      separate combinational next-state process.

    Interface: in [reset](1), [go](1), [rw](1) (0 write / 1 read),
    [dev_addr](7), [reg_addr](8), [data](8), [sda_in](1);
    out [scl](1), [sda_out](1), [sda_oe](1), [busy](1), [done](1),
    [ack_error](1), [rd_data](8).

    Every bit slot lasts [4 * divider] clock cycles. *)

val tx_shift_class : Osss.Class_def.t
(** Fields: [shift](8).  Methods: [Load(Byte:8)], [Shift()],
    [ShiftIn(Bit:1)], [Msb():1], [Value():8]. *)

val bit_clock_class : divider:int -> Osss.Class_def.t
(** Fields: [div](8), [phase](2).  Methods: [Reset], [Advance],
    [QuarterEnd():1], [PhaseEnd():1], [Phase():2]. *)

val n_slots : int
(** Bit slots per write transaction (29). *)

val n_slots_read : int
(** Bit slots per read transaction (39). *)

(** Distinguished positions in the slot sequence, exposed for coverage
    registration (see [Coverpoints]). *)

val slot_start : int
val slot_stop_write : int
val slot_restart : int
val slot_stop_read : int
val slot_mnack : int

val transaction_cycles : divider:int -> int
(** Clock cycles from [go] to [done] for a write. *)

val read_transaction_cycles : divider:int -> int

val osss_module : ?divider:int -> unit -> Ir.module_def
val systemc_module : ?divider:int -> unit -> Ir.module_def
val vhdl_module : ?divider:int -> unit -> Ir.module_def
(** Default divider: 4. *)
