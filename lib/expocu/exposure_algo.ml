let log2_exact n =
  let rec go k p = if p = n then k else go (k + 1) (p * 2) in
  go 0 1

let histogram ~bins frame =
  let shift = 8 - log2_exact bins in
  let h = Array.make bins 0 in
  Array.iter (fun px -> h.(px lsr shift) <- h.(px lsr shift) + 1) frame;
  h

let median_bin h =
  let total = Array.fold_left ( + ) 0 h in
  let rec scan i cum =
    if i >= Array.length h then 0
    else
      let cum = cum + h.(i) in
      if 2 * cum >= total && total > 0 then i else scan (i + 1) cum
  in
  scan 0 0

let control_step ~bins ~target_bin ~exposure frame =
  let median = median_bin (histogram ~bins frame) in
  let exposure' =
    Param_calc.golden_update ~exposure ~median ~target:target_bin
  in
  (median, exposure')

let converge ?(frames = 30) ?(bins = 16) ?(target_bin = 7) ~camera () =
  let exposure = ref Param_calc.gain_unity in
  List.init frames (fun _ ->
      let gain =
        float_of_int !exposure /. float_of_int Param_calc.gain_unity
      in
      let frame = Camera.frame camera ~exposure:gain in
      let median, e' = control_step ~bins ~target_bin ~exposure:!exposure frame in
      exposure := e';
      (median, float_of_int e' /. float_of_int Param_calc.gain_unity))
