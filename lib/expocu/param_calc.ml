let gain_unity = 4096
let gain_min = 64
let gain_max = 65535

(* Multiplication runs serially over 16 cycles: the parameter stage has
   a budget of thousands of clock periods (§2), and a combinational
   16x16 multiplier cannot close 66 MHz on the LUT fabric after place &
   route — the serial unit keeps the critical path at one 32-bit add. *)
let mult_cycles = 16

let golden_update ~exposure ~median ~target =
  let err = target - median in
  let mag = abs err in
  let delta = (exposure * mag) lsr 5 in
  let candidate = if err < 0 then exposure - delta else exposure + delta in
  max gain_min (min gain_max candidate)

let ports b =
  let reset = Builder.input b "reset" 1 in
  let update = Builder.input b "update" 1 in
  let median_bin = Builder.input b "median_bin" 8 in
  let target_bin = Builder.input b "target_bin" 8 in
  let exposure = Builder.output b "exposure" 16 in
  let ready = Builder.output b "ready" 1 in
  let busy = Builder.output b "busy" 1 in
  (reset, update, median_bin, target_bin, exposure, ready, busy)

(* err (signed 9), magnitude (16) and sign shared by both styles. *)
let error_parts ~median ~target =
  let open Builder.Dsl in
  let err = sext target 9 -: sext median 9 in
  let neg = bit err 8 in
  let mag9 = mux2 neg (negb err) err in
  (neg, zext mag9 16)

(* Final clamp on a 22-bit signed candidate. *)
let clamp22 candidate =
  let open Builder.Dsl in
  let lo = c ~width:22 gain_min and hi = c ~width:22 gain_max in
  let below = Ir.Binop (Ir.Slt, candidate, lo) in
  let above = Ir.Binop (Ir.Slt, hi, candidate) in
  Ir.Resize (false, mux2 below lo (mux2 above hi candidate), 16)

(* ------------------------------------------------------------------ *)
(* OSSS style: the serial multiplier is a class.                       *)

module CD = Osss.Class_def
module OI = Osss.Object_inst

(* SerialMult<16>: acc += shifted multiplicand per Step while the
   multiplier bit is set; after 16 steps Product() holds a*b. *)
let serial_mult_class =
  CD.declare ~name:"SerialMult<16>"
    [ CD.field "acc" 32; CD.field "sh" 32; CD.field "mul" 16; CD.field "cnt" 5 ]
    [
      CD.proc_method ~name:"Load" ~params:[ ("A", 16); ("B", 16) ] (fun ctx ->
          [
            ctx.CD.set "acc" (Ir.Const (Bitvec.zero 32));
            ctx.CD.set "sh" (Ir.Resize (false, ctx.CD.arg "A", 32));
            ctx.CD.set "mul" (ctx.CD.arg "B");
            ctx.CD.set "cnt" (Ir.Const (Bitvec.zero 5));
          ]);
      CD.proc_method ~name:"Step" ~params:[] (fun ctx ->
          let bit0 = Ir.Slice (ctx.CD.get "mul", 0, 0) in
          [
            Ir.If
              ( bit0,
                [
                  ctx.CD.set "acc"
                    (Ir.Binop (Ir.Add, ctx.CD.get "acc", ctx.CD.get "sh"));
                ],
                [] );
            ctx.CD.set "sh"
              (Ir.Binop
                 (Ir.Shl, ctx.CD.get "sh", Ir.Const (Bitvec.of_int ~width:2 1)));
            ctx.CD.set "mul"
              (Ir.Binop
                 (Ir.Lshr, ctx.CD.get "mul", Ir.Const (Bitvec.of_int ~width:2 1)));
            ctx.CD.set "cnt"
              (Ir.Binop
                 (Ir.Add, ctx.CD.get "cnt", Ir.Const (Bitvec.of_int ~width:5 1)));
          ]);
      CD.fn_method ~name:"Running" ~params:[] ~return:1 (fun ctx ->
          ( [],
            Ir.Binop
              ( Ir.Ult,
                ctx.CD.get "cnt",
                Ir.Const (Bitvec.of_int ~width:5 mult_cycles) ) ));
      CD.fn_method ~name:"Product" ~params:[] ~return:32 (fun ctx ->
          ([], ctx.CD.get "acc"));
    ]

let finish_update ~neg ~exposure ~product =
  let open Builder.Dsl in
  let delta = Ir.Resize (false, product >>: c ~width:3 5, 22) in
  let e22 = zext exposure 22 in
  clamp22 (mux2 neg (e22 -: delta) (e22 +: delta))

let osss_module () =
  let open Builder.Dsl in
  let b = Builder.create "param_calc_osss" in
  let reset, update, median_bin, target_bin, exposure, ready, busy = ports b in
  let neg, mag16 = error_parts ~median:(v median_bin) ~target:(v target_bin) in
  let running = Builder.wire b "running" 1 in
  let neg_r = Builder.wire b "neg_r" 1 in
  let mult = OI.instantiate b ~name:"mult" serial_mult_class in
  let _, mult_running = OI.call_fn mult "Running" [] in
  let _, product = OI.call_fn mult "Product" [] in
  Builder.sync b "update_gain"
    [
      if_ (v reset)
        ([
           exposure <-- c ~width:16 gain_unity;
           ready <-- c ~width:1 1;
           running <-- c ~width:1 0;
           neg_r <-- c ~width:1 0;
         ]
        @ [ OI.construct mult ])
        [
          if_ (notb (v running))
            [
              when_ (v update)
                ([
                   running <-- c ~width:1 1;
                   ready <-- c ~width:1 0;
                   neg_r <-- neg;
                 ]
                @ OI.call mult "Load" [ v exposure; mag16 ]);
            ]
            [
              if_ mult_running
                (OI.call mult "Step" [])
                [
                  exposure
                  <-- finish_update ~neg:(v neg_r) ~exposure:(v exposure)
                        ~product;
                  ready <-- c ~width:1 1;
                  running <-- c ~width:1 0;
                ];
            ];
        ];
    ];
  Builder.comb b "status" [ busy <-- v running ];
  Builder.finish b

(* ------------------------------------------------------------------ *)
(* Conventional style: the same serial machine written as registers.   *)

let rtl_module () =
  let open Builder.Dsl in
  let b = Builder.create "param_calc_rtl" in
  let reset, update, median_bin, target_bin, exposure, ready, busy = ports b in
  let neg, mag16 = error_parts ~median:(v median_bin) ~target:(v target_bin) in
  let running = Builder.wire b "running" 1 in
  let neg_r = Builder.wire b "neg_r" 1 in
  let acc = Builder.wire b "acc" 32 in
  let sh = Builder.wire b "sh" 32 in
  let mul = Builder.wire b "mul" 16 in
  let cnt = Builder.wire b "cnt" 5 in
  Builder.sync b "update_gain"
    [
      if_ (v reset)
        [
          exposure <-- c ~width:16 gain_unity;
          ready <-- c ~width:1 1;
          running <-- c ~width:1 0;
          neg_r <-- c ~width:1 0;
          acc <-- c ~width:32 0;
          sh <-- c ~width:32 0;
          mul <-- c ~width:16 0;
          cnt <-- c ~width:5 0;
        ]
        [
          if_ (notb (v running))
            [
              when_ (v update)
                [
                  running <-- c ~width:1 1;
                  ready <-- c ~width:1 0;
                  neg_r <-- neg;
                  acc <-- c ~width:32 0;
                  sh <-- zext (v exposure) 32;
                  mul <-- mag16;
                  cnt <-- c ~width:5 0;
                ];
            ]
            [
              if_
                (v cnt <: c ~width:5 mult_cycles)
                [
                  when_ (bit (v mul) 0) [ acc <-- (v acc +: v sh) ];
                  sh <-- (v sh <<: c ~width:2 1);
                  mul <-- (v mul >>: c ~width:2 1);
                  cnt <-- (v cnt +: c ~width:5 1);
                ]
                [
                  exposure
                  <-- finish_update ~neg:(v neg_r) ~exposure:(v exposure)
                        ~product:(v acc);
                  ready <-- c ~width:1 1;
                  running <-- c ~width:1 0;
                ];
            ];
        ];
    ];
  Builder.comb b "status" [ busy <-- v running ];
  Builder.finish b
