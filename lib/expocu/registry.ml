(* Catalogue of every named design, used by the command-line tools and
   the whole-catalogue integration tests. *)

let registry : (string * (string * (unit -> Ir.module_def))) list =
  [
    ("sync_osss", ("camera data sync, OSSS style", fun () -> Sync.osss_module ()));
    ("sync_rtl", ("camera data sync, RTL style", fun () -> Sync.rtl_module ()));
    ( "histogram_osss",
      ("histogram acquisition, OSSS style", fun () -> Histogram.osss_module ()) );
    ( "histogram_rtl",
      ("histogram acquisition, RTL style", fun () -> Histogram.rtl_module ()) );
    ( "threshold_osss",
      ("threshold calculation, OSSS style", fun () -> Threshold.osss_module ()) );
    ( "threshold_rtl",
      ("threshold calculation, RTL style", fun () -> Threshold.rtl_module ()) );
    ( "param_calc_osss",
      ("exposure parameter calc, OSSS style", fun () -> Param_calc.osss_module ()) );
    ( "param_calc_rtl",
      ("exposure parameter calc, RTL + IP mult", fun () -> Param_calc.rtl_module ()) );
    ("i2c_osss", ("I2C master, OSSS classes", fun () -> I2c.osss_module ()));
    ("i2c_systemc", ("I2C master, plain SystemC style", fun () -> I2c.systemc_module ()));
    ("i2c_vhdl", ("I2C master, VHDL RTL style", fun () -> I2c.vhdl_module ()));
    ("reset_osss", ("reset control, OSSS style", fun () -> Reset_ctrl.osss_module ()));
    ("reset_rtl", ("reset control, RTL style", fun () -> Reset_ctrl.rtl_module ()));
    ("ip_mult16", ("VHDL IP multiplier", fun () -> Vhdl_ip.mult16_module ()));
    ("expocu_osss", ("full ExpoCU, OSSS methodology", fun () -> Expocu_top.osss_top ()));
    ("expocu_rtl", ("full ExpoCU, conventional methodology", fun () -> Expocu_top.rtl_top ()));
  ]

let find name = List.assoc_opt name registry

let list_lines () =
  List.map (fun (name, (desc, _)) -> Printf.sprintf "  %-18s %s" name desc)
    registry
