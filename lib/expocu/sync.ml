module CD = Osss.Class_def
module OI = Osss.Object_inst

(* Dynamic bit selection: (value >> index) & 1, as a 1-bit expression. *)
let bit_at value index =
  Ir.Slice (Ir.Binop (Ir.Lshr, value, index), 0, 0)

let make_sync_register params =
  match params with
  | [ regsize; resetvalue ] ->
      if regsize < 2 then invalid_arg "sync_register: regsize must be >= 2";
      let reset_bv = Bitvec.of_int ~width:regsize resetvalue in
      let reg_value ctx = ctx.CD.get "RegValue" in
      CD.declare
        ~name:(Osss.Template.specialized_name "SyncRegister" params)
        [ CD.field ~init:reset_bv "RegValue" regsize ]
        [
          CD.proc_method ~name:"Reset" ~params:[] (fun ctx ->
              [ ctx.CD.set "RegValue" (Ir.Const reset_bv) ]);
          CD.proc_method ~name:"Write" ~params:[ ("NewValue", 1) ] (fun ctx ->
              (* temp = {RegValue[regsize-2:0], NewValue}, Figure 7 *)
              let shifted =
                Ir.Concat
                  ( Ir.Slice (reg_value ctx, regsize - 2, 0),
                    ctx.CD.arg "NewValue" )
              in
              [ ctx.CD.set "RegValue" shifted ]);
          CD.fn_method ~name:"RisingEdge" ~params:[ ("RegIndex", 8) ] ~return:1
            (fun ctx ->
              let idx = ctx.CD.arg "RegIndex" in
              let newer = bit_at (reg_value ctx) idx in
              let older =
                bit_at (reg_value ctx)
                  (Ir.Binop (Ir.Add, idx, Ir.Const (Bitvec.of_int ~width:8 1)))
              in
              ([], Ir.Binop (Ir.And, newer, Ir.Unop (Ir.Not, older))));
          CD.fn_method ~name:"FallingEdge" ~params:[ ("RegIndex", 8) ]
            ~return:1 (fun ctx ->
              let idx = ctx.CD.arg "RegIndex" in
              let newer = bit_at (reg_value ctx) idx in
              let older =
                bit_at (reg_value ctx)
                  (Ir.Binop (Ir.Add, idx, Ir.Const (Bitvec.of_int ~width:8 1)))
              in
              ([], Ir.Binop (Ir.And, older, Ir.Unop (Ir.Not, newer))));
          CD.fn_method ~name:"Value" ~params:[] ~return:regsize (fun ctx ->
              ([], reg_value ctx));
          CD.fn_method ~name:"Stable" ~params:[] ~return:1 (fun ctx ->
              let all1 = Ir.Unop (Ir.Reduce_and, reg_value ctx) in
              let all0 =
                Ir.Unop (Ir.Not, Ir.Unop (Ir.Reduce_or, reg_value ctx))
              in
              ([], Ir.Binop (Ir.Or, all1, all0)));
        ]
  | _ -> invalid_arg "sync_register: two template parameters expected"

let sync_register_memo = Osss.Template.memoize make_sync_register
let sync_register ~regsize ~resetvalue = sync_register_memo [ regsize; resetvalue ]

let osss_module ?(regsize = 4) () =
  let cls = sync_register ~regsize ~resetvalue:0 in
  let b = Builder.create "sync_osss" in
  let reset = Builder.input b "reset" 1 in
  let data = Builder.input b "data" 1 in
  let value = Builder.output b "value" regsize in
  let rising = Builder.output b "rising" 1 in
  let falling = Builder.output b "falling" 1 in
  let stable = Builder.output b "stable" 1 in
  let data_sync_reg = OI.instantiate b ~name:"data_sync_reg" cls in
  let idx0 = Ir.Const (Bitvec.of_int ~width:8 0) in
  let _, rising_e = OI.call_fn data_sync_reg "RisingEdge" [ idx0 ] in
  let _, falling_e = OI.call_fn data_sync_reg "FallingEdge" [ idx0 ] in
  let _, value_e = OI.call_fn data_sync_reg "Value" [] in
  let _, stable_e = OI.call_fn data_sync_reg "Stable" [] in
  Builder.sync b "sync_input"
    [
      Ir.If
        ( Ir.Var reset,
          OI.call data_sync_reg "Reset" []
          @ [
              Ir.Assign (value, Ir.Const (Bitvec.zero regsize));
              Ir.Assign (rising, Ir.Const (Bitvec.zero 1));
              Ir.Assign (falling, Ir.Const (Bitvec.zero 1));
              Ir.Assign (stable, Ir.Const (Bitvec.zero 1));
            ],
          OI.call data_sync_reg "Write" [ Ir.Var data ]
          @ [
              Ir.Assign (value, value_e);
              Ir.Assign (rising, rising_e);
              Ir.Assign (falling, falling_e);
              Ir.Assign (stable, stable_e);
            ] );
    ];
  Builder.finish b

let rtl_module ?(regsize = 4) () =
  let open Builder.Dsl in
  let b = Builder.create "sync_rtl" in
  let reset = Builder.input b "reset" 1 in
  let data = Builder.input b "data" 1 in
  let value = Builder.output b "value" regsize in
  let rising = Builder.output b "rising" 1 in
  let falling = Builder.output b "falling" 1 in
  let stable = Builder.output b "stable" 1 in
  let sr = Builder.wire b "shift_reg" regsize in
  Builder.sync b "sync_proc"
    [
      if_ (v reset)
        [
          sr <-- c ~width:regsize 0;
          value <-- c ~width:regsize 0;
          rising <-- c ~width:1 0;
          falling <-- c ~width:1 0;
          stable <-- c ~width:1 0;
        ]
        [
          sr <-- concat [ slice (v sr) ~hi:(regsize - 2) ~lo:0; v data ];
          value <-- v sr;
          rising <-- (bit (v sr) 0 &: notb (bit (v sr) 1));
          falling <-- (bit (v sr) 1 &: notb (bit (v sr) 0));
          stable
          <-- (Ir.Unop (Ir.Reduce_and, v sr)
              |: notb (Ir.Unop (Ir.Reduce_or, v sr)));
        ];
    ];
  Builder.finish b
