(** Reset control (§2): power-on reset stretching plus synchronization
    of the external asynchronous reset request.

    The OSSS style reuses the [SyncRegister] class (template
    specialization <2, 3>: two synchronizer stages that power up
    asserted); the RTL style codes the two flip-flops by hand.

    Interface: in [ext_reset](1); out [sys_reset](1) — asserted for
    [por_cycles] clocks after power-up and whenever the synchronized
    external request is high. *)

val por_cycles : int

val osss_module : unit -> Ir.module_def
val rtl_module : unit -> Ir.module_def
