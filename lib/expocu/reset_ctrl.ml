module OI = Osss.Object_inst

let por_cycles = 8

(* The synchronized external reset also restarts the power-on stretch
   counter, so the whole chip reaches a defined state from the external
   reset alone — verified by the four-state reset-coverage tests (a
   free-running counter relying on power-up values would stay unknown
   in a conservative simulator). *)

let osss_module () =
  let open Builder.Dsl in
  let cls = Sync.sync_register ~regsize:2 ~resetvalue:3 in
  let b = Builder.create "reset_ctrl_osss" in
  let ext_reset = Builder.input b "ext_reset" 1 in
  let sys_reset = Builder.output b "sys_reset" 1 in
  let syncer = OI.instantiate b ~name:"syncer" cls in
  let por_cnt = Builder.wire b "por_cnt" 4 in
  let _, value_e = OI.call_fn syncer "Value" [] in
  let ext_synced = bit value_e 1 in
  let por_active = v por_cnt <: c ~width:4 por_cycles in
  Builder.sync b "stretch"
    (OI.call syncer "Write" [ v ext_reset ]
    @ [
        if_ ext_synced
          [ por_cnt <-- c ~width:4 0; sys_reset <-- c ~width:1 1 ]
          [
            when_ por_active [ por_cnt <-- (v por_cnt +: c ~width:4 1) ];
            sys_reset <-- por_active;
          ];
      ]);
  Builder.finish b

let rtl_module () =
  let open Builder.Dsl in
  let b = Builder.create "reset_ctrl_rtl" in
  let ext_reset = Builder.input b "ext_reset" 1 in
  let sys_reset = Builder.output b "sys_reset" 1 in
  let meta = Builder.wire b "meta" 2 in
  let por_cnt = Builder.wire b "por_cnt" 4 in
  let por_active = v por_cnt <: c ~width:4 por_cycles in
  Builder.sync b "stretch"
    [
      meta <-- concat [ bit (v meta) 0; v ext_reset ];
      if_
        (bit (v meta) 1)
        [ por_cnt <-- c ~width:4 0; sys_reset <-- c ~width:1 1 ]
        [
          when_ por_active [ por_cnt <-- (v por_cnt +: c ~width:4 1) ];
          sys_reset <-- por_active;
        ];
    ];
  Builder.finish b
