(** Golden reference model of the exposure-control loop — the pure
    OCaml specification the hardware is checked against, and the
    behavioural model used for the abstraction-level simulation-speed
    experiment (E6). *)

val histogram : bins:int -> int array -> int array
(** Bin a frame of 0..255 pixels by their top [log2 bins] bits. *)

val median_bin : int array -> int
(** First bin where twice the cumulative count reaches the total —
    exactly the hardware threshold rule.  Returns 0 for an empty
    histogram. *)

val control_step :
  bins:int -> target_bin:int -> exposure:int -> int array -> int * int
(** [control_step ~bins ~target_bin ~exposure frame] returns
    [(median, exposure')] applying {!Param_calc.golden_update} to the
    frame's median — one full ExpoCU iteration. *)

val converge :
  ?frames:int ->
  ?bins:int ->
  ?target_bin:int ->
  camera:Camera.t ->
  unit ->
  (int * float) list
(** Run the closed loop against the synthetic camera; returns per-frame
    [(median, exposure_gain)] with gain as a float (1.0 = unity). *)
