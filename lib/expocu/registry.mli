(** Catalogue of every named design in the case study — the list the
    command-line tools expose and the integration tests sweep. *)

val registry : (string * (string * (unit -> Ir.module_def))) list
(** [(name, (description, constructor))]. *)

val find : string -> (string * (unit -> Ir.module_def)) option

val list_lines : unit -> string list
(** Pre-formatted ["name  description"] rows. *)
