module A = Assert_mon

(* Bus-level SDA framing: SDA may change while SCL is high only as a
   START (fall, opening a transaction) or a STOP (rise, closing it);
   any other scl-high change is a protocol violation.  Stateful, so
   each call builds a fresh property. *)
let sda_framing () =
  let prev_scl = ref 1 and prev_sda = ref 1 and phase = ref 0 in
  let bus_sda s =
    (* open-drain: the bus floats high unless the master drives it *)
    if Rtl_sim.get_int s "sda_oe" = 1 then Rtl_sim.get_int s "sda_out" else 1
  in
  A.always ~label:"i2c.sda_framing" (fun s ->
      let scl = Rtl_sim.get_int s "scl" in
      let sda = bus_sda s in
      let legal =
        if scl = 1 && !prev_scl = 1 && sda <> !prev_sda then
          if !prev_sda = 1 && sda = 0 && !phase = 0 then begin
            phase := 1;
            true (* START *)
          end
          else if !prev_sda = 0 && sda = 1 && !phase = 1 then begin
            phase := 0;
            true (* STOP *)
          end
          else false
        else true
      in
      prev_scl := scl;
      prev_sda := sda;
      legal)

let add_i2c_props mon =
  A.add mon (sda_framing ());
  A.add mon
    (A.never ~label:"i2c.busy_done_exclusive"
       (A.( &&& ) (A.port "busy") (A.port "done")));
  A.add mon
    (A.implies_same ~label:"i2c.idle_bus_released" (A.neg (A.port "busy"))
       (A.( ||| ) (A.neg (A.port "sda_oe")) (A.port "sda_out")));
  A.add mon
    (A.eventually_within ~label:"i2c.go_leads_to_done" (A.port "go")
       (I2c.read_transaction_cycles ~divider:4 + 32)
       (A.port "done"))

let expocu_monitor sim =
  let mon = A.create sim in
  A.add mon (sda_framing ());
  A.add mon (A.never ~label:"i2c.ack_error" (A.port "ack_error"));
  A.add mon
    (A.implies_next ~label:"top.frame_done_pulse" (A.port "frame_done")
       (A.neg (A.port "frame_done")));
  (* Sync-handshake invariants over the conditioned frame_sync nets
     (internal wires, reached by name in the flattened design). *)
  (match
     ( Rtl_sim.find_var sim "fs_rising",
       Rtl_sim.find_var sim "fs_falling",
       Rtl_sim.find_var sim "fs_stable",
       Rtl_sim.find_var sim "fs_value" )
   with
  | Some rising, Some falling, Some stable, Some value ->
      let bit var s = Bitvec.to_int (Rtl_sim.peek_var s var) = 1 in
      A.add mon
        (A.never ~label:"sync.edge_exclusive"
           (A.( &&& ) (bit rising) (bit falling)));
      A.add mon
        (A.implies_same ~label:"sync.stable_extremes" (bit stable) (fun s ->
             let x = Bitvec.to_int (Rtl_sim.peek_var s value) in
             x = 0 || x = 15))
  | _ -> ());
  A.attach mon;
  mon
