module CD = Osss.Class_def
module OI = Osss.Object_inst

(* Shared arithmetic: the running sum is held two bits wider than the
   counters so that doubling it for the median test cannot overflow. *)

let make_threshold params =
  match params with
  | [ bins; count_w ] ->
      if bins < 2 || bins > 256 then invalid_arg "threshold_class: bins";
      let cw = count_w + 2 in
      let one w = Ir.Const (Bitvec.of_int ~width:w 1) in
      CD.declare
        ~name:(Osss.Template.specialized_name "ThresholdCalc" params)
        [
          CD.field "idx" 8;
          CD.field "cum" cw;
          CD.field "median" 8;
          CD.field "found" 1;
          CD.field "running" 1;
          CD.field "donef" 1;
        ]
        [
          CD.proc_method ~name:"Start" ~params:[] (fun ctx ->
              [
                ctx.CD.set "running" (one 1);
                ctx.CD.set "donef" (Ir.Const (Bitvec.zero 1));
                ctx.CD.set "idx" (Ir.Const (Bitvec.zero 8));
                ctx.CD.set "cum" (Ir.Const (Bitvec.zero cw));
                ctx.CD.set "median" (Ir.Const (Bitvec.zero 8));
                ctx.CD.set "found" (Ir.Const (Bitvec.zero 1));
              ]);
          CD.proc_method ~name:"Step"
            ~params:[ ("Count", count_w); ("Total", count_w) ]
            (fun ctx ->
              let new_cum =
                Ir.Binop
                  (Ir.Add, ctx.CD.get "cum",
                   Ir.Resize (false, ctx.CD.arg "Count", cw))
              in
              let reached =
                Ir.Binop
                  ( Ir.Ule,
                    Ir.Resize (false, ctx.CD.arg "Total", cw),
                    Ir.Binop (Ir.Shl, new_cum, one 2) )
              in
              let at_last =
                Ir.Binop
                  (Ir.Eq, ctx.CD.get "idx",
                   Ir.Const (Bitvec.of_int ~width:8 (bins - 1)))
              in
              (* the running sum is committed last so that [reached]
                 evaluates against the pre-step cumulative value *)
              [
                Ir.If
                  ( Ir.Binop
                      (Ir.And, Ir.Unop (Ir.Not, ctx.CD.get "found"), reached),
                    [
                      ctx.CD.set "median" (ctx.CD.get "idx");
                      ctx.CD.set "found" (one 1);
                    ],
                    [] );
                Ir.If
                  ( at_last,
                    [
                      ctx.CD.set "running" (Ir.Const (Bitvec.zero 1));
                      ctx.CD.set "donef" (one 1);
                    ],
                    [ ctx.CD.set "idx" (Ir.Binop (Ir.Add, ctx.CD.get "idx", one 8)) ]
                  );
                ctx.CD.set "cum" new_cum;
              ]);
          CD.fn_method ~name:"Scanning" ~params:[] ~return:1 (fun ctx ->
              ([], ctx.CD.get "running"));
          CD.fn_method ~name:"Done" ~params:[] ~return:1 (fun ctx ->
              ([], ctx.CD.get "donef"));
          CD.fn_method ~name:"Median" ~params:[] ~return:8 (fun ctx ->
              ([], ctx.CD.get "median"));
          CD.fn_method ~name:"Found" ~params:[] ~return:1 (fun ctx ->
              ([], ctx.CD.get "found"));
          CD.fn_method ~name:"Index" ~params:[] ~return:8 (fun ctx ->
              ([], ctx.CD.get "idx"));
        ]
  | _ -> invalid_arg "threshold_class: two template parameters expected"

let threshold_memo = Osss.Template.memoize make_threshold
let threshold_class ~bins ~count_w = threshold_memo [ bins; count_w ]

let band_low bins = bins / 4
let band_high bins = 3 * bins / 4

let ports b count_w =
  let reset = Builder.input b "reset" 1 in
  let start = Builder.input b "start" 1 in
  let total = Builder.input b "total" count_w in
  let rd_count = Builder.input b "rd_count" count_w in
  (reset, start, total, rd_count)

let outputs b count_w =
  ignore count_w;
  let rd_idx = Builder.output b "rd_idx" 8 in
  let busy = Builder.output b "busy" 1 in
  let done_ = Builder.output b "done" 1 in
  let median_bin = Builder.output b "median_bin" 8 in
  let under = Builder.output b "underexposed" 1 in
  let over = Builder.output b "overexposed" 1 in
  (rd_idx, busy, done_, median_bin, under, over)

let flag_exprs ~bins ~found ~median =
  let low = Ir.Const (Bitvec.of_int ~width:8 (band_low bins)) in
  let high = Ir.Const (Bitvec.of_int ~width:8 (band_high bins)) in
  let under = Ir.Binop (Ir.And, found, Ir.Binop (Ir.Ult, median, low)) in
  let over = Ir.Binop (Ir.And, found, Ir.Binop (Ir.Ule, high, median)) in
  (under, over)

let osss_module ?(bins = 16) ?(count_w = 16) () =
  let cls = threshold_class ~bins ~count_w in
  let b = Builder.create "threshold_osss" in
  let reset, start, total, rd_count = ports b count_w in
  let rd_idx, busy, done_, median_bin, under, over = outputs b count_w in
  let calc = OI.instantiate b ~name:"calc" cls in
  Builder.sync b "scan"
    [
      Ir.If
        ( Ir.Var reset,
          [ OI.construct calc ],
          [
            Ir.If
              ( Ir.Var start,
                OI.call calc "Start" [],
                [
                  Ir.If
                    ( snd (OI.call_fn calc "Scanning" []),
                      OI.call calc "Step" [ Ir.Var rd_count; Ir.Var total ],
                      [] );
                ] );
          ] );
    ];
  let _, idx_e = OI.call_fn calc "Index" [] in
  let _, running_e = OI.call_fn calc "Scanning" [] in
  let _, done_e = OI.call_fn calc "Done" [] in
  let _, median_e = OI.call_fn calc "Median" [] in
  let _, found_e = OI.call_fn calc "Found" [] in
  let under_e, over_e = flag_exprs ~bins ~found:found_e ~median:median_e in
  Builder.comb b "status"
    [
      Ir.Assign (rd_idx, idx_e);
      Ir.Assign (busy, running_e);
      Ir.Assign (done_, done_e);
      Ir.Assign (median_bin, median_e);
      Ir.Assign (under, under_e);
      Ir.Assign (over, over_e);
    ];
  Builder.finish b

let rtl_module ?(bins = 16) ?(count_w = 16) () =
  let open Builder.Dsl in
  let cw = count_w + 2 in
  let b = Builder.create "threshold_rtl" in
  let reset, start, total, rd_count = ports b count_w in
  let rd_idx, busy, done_, median_bin, under, over = outputs b count_w in
  let idx = Builder.wire b "idx" 8 in
  let cum = Builder.wire b "cum" cw in
  let median = Builder.wire b "median" 8 in
  let found = Builder.wire b "found" 1 in
  let running = Builder.wire b "running" 1 in
  let done_r = Builder.wire b "done_r" 1 in
  let new_cum = v cum +: zext (v rd_count) cw in
  let reached = zext (v total) cw <=: (new_cum <<: c ~width:2 1) in
  Builder.sync b "scan"
    [
      if_ (v reset)
        [
          idx <-- c ~width:8 0;
          cum <-- c ~width:cw 0;
          median <-- c ~width:8 0;
          found <-- c ~width:1 0;
          running <-- c ~width:1 0;
          done_r <-- c ~width:1 0;
        ]
        [
          if_ (v start)
            [
              running <-- c ~width:1 1;
              done_r <-- c ~width:1 0;
              idx <-- c ~width:8 0;
              cum <-- c ~width:cw 0;
              median <-- c ~width:8 0;
              found <-- c ~width:1 0;
            ]
            [
              when_ (v running)
                [
                  when_
                    (notb (v found) &: reached)
                    [ median <-- v idx; found <-- c ~width:1 1 ];
                  if_
                    (v idx ==: c ~width:8 (bins - 1))
                    [ running <-- c ~width:1 0; done_r <-- c ~width:1 1 ]
                    [ idx <-- (v idx +: c ~width:8 1) ];
                  cum <-- new_cum;
                ];
            ];
        ];
    ];
  let under_e, over_e = flag_exprs ~bins ~found:(v found) ~median:(v median) in
  Builder.comb b "status"
    [
      rd_idx <-- v idx;
      busy <-- v running;
      done_ <-- v done_r;
      median_bin <-- v median;
      under <-- under_e;
      over <-- over_e;
    ];
  Builder.finish b
