(** Synthetic camera model.

    Substitution for the proprietary imager and its raw video stream
    (see DESIGN.md): a deterministic scene generator that produces
    8-bit pixels whose brightness responds to the exposure setting —
    the property the ExpoCU control loop actually exercises.

    The scene has a base illumination plus spatial structure (gradient
    and moving highlights) plus optional pseudo-random noise.  Pixel
    response saturates at 255, like a real sensor. *)

type t

val create :
  ?width:int ->
  ?height:int ->
  ?illumination:float ->
  ?contrast:float ->
  ?noise:float ->
  ?seed:int ->
  unit ->
  t
(** Defaults: 64x32 pixels, illumination 0.3 (fraction of full scale),
    contrast 0.5, noise 0.02. *)

val width : t -> int
val height : t -> int

val set_illumination : t -> float -> unit
(** Scene change (e.g. tunnel entry/exit in the automotive scenarios). *)

val frame : t -> exposure:float -> int array
(** One frame, row-major, values 0..255.  [exposure] is the gain the
    ExpoCU computed (1.0 = unity).  Advances the scene's internal time
    (highlights move, noise changes). *)

val mean_level : int array -> float
(** Average pixel value of a frame, 0..255. *)
