type result = {
  frames : int;
  final_gain : float;
  final_median : int;
  sim_cycles : int;
  kernel_runs : int;
}

let run ?(frames = 5) ?(pixels_per_frame = 512) ?(illumination = 0.2)
    ?(target_bin = 7) () =
  let k = Sim.Kernel.create () in
  let clock = Sim.Clock.of_freq_mhz k 66.0 in
  let pixel = Sim.Signal.create k ~name:"pixel" 0 in
  let pixel_valid = Sim.Signal.create k ~name:"pixel_valid" false in
  let frame_sync = Sim.Signal.create k ~name:"frame_sync" false in
  let exposure = Sim.Signal.create k ~name:"exposure" Param_calc.gain_unity in
  let camera =
    Camera.create ~width:pixels_per_frame ~height:1 ~illumination ()
  in
  let frames_done = ref 0 in
  let final_median = ref 0 in
  (* Camera thread: one pixel per clock while the frame is active. *)
  let _cam =
    Sim.Process.cthread k ~name:"camera" ~clock (fun ctx ->
        let rec next_frame () =
          if !frames_done >= frames then Sim.Kernel.stop k
          else begin
            let gain =
              float_of_int (Sim.Signal.read exposure)
              /. float_of_int Param_calc.gain_unity
            in
            let data = Camera.frame camera ~exposure:gain in
            Sim.Signal.write frame_sync true;
            Sim.Process.wait ctx;
            Array.iter
              (fun px ->
                Sim.Signal.write pixel px;
                Sim.Signal.write pixel_valid true;
                Sim.Process.wait ctx)
              data;
            Sim.Signal.write pixel_valid false;
            Sim.Signal.write frame_sync false;
            (* wait until the control thread finished the I2C update *)
            Sim.Process.wait_n ctx
              (16 + I2c.transaction_cycles ~divider:4 + 8);
            next_frame ()
          end
        in
        next_frame ())
  in
  (* ExpoCU behavioural thread: per-pixel histogram accumulation, then
     scan + parameter update + I2C latency. *)
  let _dut =
    Sim.Process.cthread k ~name:"expocu" ~clock (fun ctx ->
        let bins = 16 in
        let hist = Array.make bins 0 in
        let rec loop () =
          (* wait for frame start *)
          Sim.Process.wait_until ctx (fun () -> Sim.Signal.read frame_sync);
          Array.fill hist 0 bins 0;
          let rec acquire () =
            if Sim.Signal.read frame_sync then begin
              if Sim.Signal.read pixel_valid then begin
                let px = Sim.Signal.read pixel in
                let bin = px lsr 4 in
                hist.(bin) <- hist.(bin) + 1
              end;
              Sim.Process.wait ctx;
              acquire ()
            end
          in
          Sim.Process.wait ctx;
          acquire ();
          (* threshold scan: one bin per clock, as in hardware *)
          let median = ref 0 and cum = ref 0 and found = ref false in
          let total = Array.fold_left ( + ) 0 hist in
          for i = 0 to bins - 1 do
            cum := !cum + hist.(i);
            if (not !found) && 2 * !cum >= total && total > 0 then begin
              median := i;
              found := true
            end;
            Sim.Process.wait ctx
          done;
          final_median := !median;
          Sim.Signal.write exposure
            (Param_calc.golden_update
               ~exposure:(Sim.Signal.read exposure)
               ~median:!median ~target:target_bin);
          (* I2C write, abstracted to its latency *)
          Sim.Process.wait_n ctx (I2c.transaction_cycles ~divider:4);
          incr frames_done;
          loop ()
        in
        loop ())
  in
  let horizon =
    frames * (pixels_per_frame + 2048) * Sim.Clock.period_ps clock
  in
  Sim.Kernel.run_until k horizon;
  {
    frames = !frames_done;
    final_gain =
      float_of_int (Sim.Signal.read exposure)
      /. float_of_int Param_calc.gain_unity;
    final_median = !final_median;
    sim_cycles = Sim.Kernel.now k / Sim.Clock.period_ps clock;
    kernel_runs = Sim.Kernel.process_runs k;
  }
