module CD = Osss.Class_def
module OI = Osss.Object_inst

(* Slot maps.

   Write (rw = 0), 29 slots:
     0 START; 1-8 address+W; 9 ack; 10-17 register; 18 ack;
     19-26 data out; 27 ack; 28 STOP.

   Read (rw = 1), 39 slots:
     0 START; 1-8 address+W; 9 ack; 10-17 register; 18 ack;
     19 repeated START; 20-27 address+R; 28 ack; 29-36 data in
     (slave drives, master released); 37 master NACK; 38 STOP. *)
let n_slots = 29
let n_slots_read = 39
let slot_start = 0
let slot_stop_write = 28
let slot_restart = 19
let slot_stop_read = 38

let ack_slots_write = [ 9; 18; 27 ]
let ack_slots_read = [ 9; 18; 28 ]
let rx_slots = [ 29; 30; 31; 32; 33; 34; 35; 36 ]
let slot_mnack = 37

let transaction_cycles ~divider = n_slots * 4 * divider
let read_transaction_cycles ~divider = n_slots_read * 4 * divider

let tx_slots_write =
  List.init n_slots (fun s -> s)
  |> List.filter (fun s ->
         s <> slot_start && s <> slot_stop_write
         && not (List.mem s ack_slots_write))

let tx_slots_read =
  [ 1; 2; 3; 4; 5; 6; 7; 8 ] @ [ 10; 11; 12; 13; 14; 15; 16; 17 ]
  @ [ 20; 21; 22; 23; 24; 25; 26; 27 ]

(* ------------------------------------------------------------------ *)
(* OSSS classes                                                        *)

let tx_shift_class =
  CD.declare ~name:"TxShift"
    [ CD.field "shift" 8 ]
    [
      CD.proc_method ~name:"Load" ~params:[ ("Byte", 8) ] (fun ctx ->
          [ ctx.CD.set "shift" (ctx.CD.arg "Byte") ]);
      CD.proc_method ~name:"Shift" ~params:[] (fun ctx ->
          [
            ctx.CD.set "shift"
              (Ir.Concat
                 ( Ir.Slice (ctx.CD.get "shift", 6, 0),
                   Ir.Const (Bitvec.zero 1) ));
          ]);
      CD.proc_method ~name:"ShiftIn" ~params:[ ("Bit", 1) ] (fun ctx ->
          [
            ctx.CD.set "shift"
              (Ir.Concat (Ir.Slice (ctx.CD.get "shift", 6, 0), ctx.CD.arg "Bit"));
          ]);
      CD.fn_method ~name:"Msb" ~params:[] ~return:1 (fun ctx ->
          ([], Ir.Slice (ctx.CD.get "shift", 7, 7)));
      CD.fn_method ~name:"Value" ~params:[] ~return:8 (fun ctx ->
          ([], ctx.CD.get "shift"));
    ]

let make_bit_clock params =
  match params with
  | [ divider ] ->
      if divider < 1 || divider > 255 then invalid_arg "bit_clock: divider";
      let last = Ir.Const (Bitvec.of_int ~width:8 (divider - 1)) in
      CD.declare
        ~name:(Osss.Template.specialized_name "BitClock" params)
        [ CD.field "div" 8; CD.field "phase" 2 ]
        [
          CD.proc_method ~name:"Reset" ~params:[] (fun ctx ->
              [
                ctx.CD.set "div" (Ir.Const (Bitvec.zero 8));
                ctx.CD.set "phase" (Ir.Const (Bitvec.zero 2));
              ]);
          CD.fn_method ~name:"QuarterEnd" ~params:[] ~return:1 (fun ctx ->
              ([], Ir.Binop (Ir.Eq, ctx.CD.get "div", last)));
          CD.fn_method ~name:"PhaseEnd" ~params:[] ~return:1 (fun ctx ->
              ( [],
                Ir.Binop
                  ( Ir.And,
                    Ir.Binop (Ir.Eq, ctx.CD.get "div", last),
                    Ir.Binop
                      (Ir.Eq, ctx.CD.get "phase", Ir.Const (Bitvec.of_int ~width:2 3))
                  ) ));
          CD.fn_method ~name:"Phase" ~params:[] ~return:2 (fun ctx ->
              ([], ctx.CD.get "phase"));
          CD.proc_method ~name:"Advance" ~params:[] (fun ctx ->
              [
                Ir.If
                  ( Ir.Binop (Ir.Eq, ctx.CD.get "div", last),
                    [
                      ctx.CD.set "div" (Ir.Const (Bitvec.zero 8));
                      ctx.CD.set "phase"
                        (Ir.Binop
                           ( Ir.Add,
                             ctx.CD.get "phase",
                             Ir.Const (Bitvec.of_int ~width:2 1) ));
                    ],
                    [
                      ctx.CD.set "div"
                        (Ir.Binop
                           ( Ir.Add,
                             ctx.CD.get "div",
                             Ir.Const (Bitvec.of_int ~width:8 1) ));
                    ] );
              ]);
        ]
  | _ -> invalid_arg "bit_clock: one template parameter expected"

let bit_clock_memo = Osss.Template.memoize make_bit_clock
let bit_clock_class ~divider = bit_clock_memo [ divider ]

(* ------------------------------------------------------------------ *)
(* Shared port list and output decoding                                *)

let ports b =
  let reset = Builder.input b "reset" 1 in
  let go = Builder.input b "go" 1 in
  let rw = Builder.input b "rw" 1 in
  let dev_addr = Builder.input b "dev_addr" 7 in
  let reg_addr = Builder.input b "reg_addr" 8 in
  let data = Builder.input b "data" 8 in
  let sda_in = Builder.input b "sda_in" 1 in
  let scl = Builder.output b "scl" 1 in
  let sda_out = Builder.output b "sda_out" 1 in
  let sda_oe = Builder.output b "sda_oe" 1 in
  let busy = Builder.output b "busy" 1 in
  let done_ = Builder.output b "done" 1 in
  let ack_error = Builder.output b "ack_error" 1 in
  let rd_data = Builder.output b "rd_data" 8 in
  (reset, go, rw, dev_addr, reg_addr, data, sda_in,
   scl, sda_out, sda_oe, busy, done_, ack_error, rd_data)

let is_in slots slot_e =
  List.fold_left
    (fun acc s ->
      Ir.Binop
        (Ir.Or, acc, Ir.Binop (Ir.Eq, slot_e, Ir.Const (Bitvec.of_int ~width:6 s))))
    (Ir.Const (Bitvec.of_bool false))
    slots

(* Role decoders over (rw_r, slot). *)
let roles ~rw_r ~slot =
  let open Builder.Dsl in
  let sc n = slot ==: c ~width:6 n in
  let in_read l = rw_r &: is_in l slot in
  let in_write l = notb rw_r &: is_in l slot in
  let is_start = sc slot_start in
  let is_restart = rw_r &: sc slot_restart in
  let is_stop =
    (notb rw_r &: sc slot_stop_write) |: (rw_r &: sc slot_stop_read)
  in
  let is_ack = in_write ack_slots_write |: in_read ack_slots_read in
  let is_rx = in_read rx_slots in
  let is_mnack = rw_r &: sc slot_mnack in
  let is_tx = in_write tx_slots_write |: in_read tx_slots_read in
  (is_start, is_restart, is_stop, is_ack, is_rx, is_mnack, is_tx)

(* Moore outputs from (running, rw_r, slot, phase, msb). *)
let output_stmts ~running ~rw_r ~slot ~phase ~msb ~scl ~sda_out ~sda_oe =
  let open Builder.Dsl in
  let ph n = phase ==: c ~width:2 n in
  let is_start, is_restart, is_stop, is_ack, is_rx, is_mnack, _ =
    roles ~rw_r ~slot
  in
  let mid = ph 1 |: ph 2 in
  let start_scl = ph 0 |: ph 1 in
  let restart_scl = mid in
  let stop_scl = notb (ph 0) in
  let scl_e =
    mux2 is_start start_scl
      (mux2 is_restart restart_scl (mux2 is_stop stop_scl mid))
  in
  let start_sda = ph 0 in
  let restart_sda = ph 0 |: ph 1 in
  let stop_sda = ph 2 |: ph 3 in
  let sda_e =
    mux2 is_start start_sda
      (mux2 is_restart restart_sda
         (mux2 is_stop stop_sda
            (mux2 (is_ack |: is_rx |: is_mnack) (c ~width:1 1) msb)))
  in
  let oe_e = notb (is_ack |: is_rx) in
  [
    scl <-- mux2 running scl_e (c ~width:1 1);
    sda_out <-- mux2 running sda_e (c ~width:1 1);
    sda_oe <-- mux2 running oe_e (c ~width:1 0);
  ]

(* ------------------------------------------------------------------ *)
(* 1. OSSS style                                                       *)

let osss_module ?(divider = 4) () =
  let open Builder.Dsl in
  let b = Builder.create "i2c_osss" in
  let reset, go, rw, dev_addr, reg_addr, data, sda_in,
      scl, sda_out, sda_oe, busy, done_, ack_error, rd_data = ports b in
  let tx = OI.instantiate b ~name:"tx" tx_shift_class in
  let rx = OI.instantiate b ~name:"rx" tx_shift_class in
  let bc = OI.instantiate b ~name:"bc" (bit_clock_class ~divider) in
  let slot = Builder.wire b "slot" 6 in
  let running = Builder.wire b "running" 1 in
  let rw_r = Builder.wire b "rw_r" 1 in
  let done_r = Builder.wire b "done_r" 1 in
  let ack_r = Builder.wire b "ack_r" 1 in
  let byte1 = Builder.wire b "byte1" 8 in
  let byte2 = Builder.wire b "byte2" 8 in
  let _, quarter_end = OI.call_fn bc "QuarterEnd" [] in
  let _, phase_end = OI.call_fn bc "PhaseEnd" [] in
  let _, phase_e = OI.call_fn bc "Phase" [] in
  let _, msb_e = OI.call_fn tx "Msb" [] in
  let _, rx_value = OI.call_fn rx "Value" [] in
  let _, _, _, at_ack, at_rx, _, at_tx = roles ~rw_r:(v rw_r) ~slot:(v slot) in
  let mid_sample = quarter_end &: (phase_e ==: c ~width:2 1) in
  let stop_slot = mux2 (v rw_r) (c ~width:6 slot_stop_read) (c ~width:6 slot_stop_write) in
  Builder.sync b "engine"
    [
      if_ (v reset)
        ([ OI.construct tx; OI.construct rx; OI.construct bc ]
        @ [
            slot <-- c ~width:6 0;
            running <-- c ~width:1 0;
            rw_r <-- c ~width:1 0;
            done_r <-- c ~width:1 0;
            ack_r <-- c ~width:1 0;
            byte1 <-- c ~width:8 0;
            byte2 <-- c ~width:8 0;
          ])
        [
          if_ (notb (v running))
            [
              when_ (v go)
                ([
                   running <-- c ~width:1 1;
                   rw_r <-- v rw;
                   done_r <-- c ~width:1 0;
                   ack_r <-- c ~width:1 0;
                   slot <-- c ~width:6 0;
                   byte1 <-- v reg_addr;
                   byte2 <-- v data;
                 ]
                @ OI.call bc "Reset" []
                @ OI.call tx "Load" [ concat [ v dev_addr; c ~width:1 0 ] ]);
            ]
            ([
               when_ (mid_sample &: at_ack)
                 [ ack_r <-- (v ack_r |: v sda_in) ];
               when_ (mid_sample &: at_rx) (OI.call rx "ShiftIn" [ v sda_in ]);
               if_ phase_end
                 [
                   when_ at_tx (OI.call tx "Shift" []);
                   when_ (v slot ==: c ~width:6 9)
                     (OI.call tx "Load" [ v byte1 ]);
                   when_
                     (notb (v rw_r) &: (v slot ==: c ~width:6 18))
                     (OI.call tx "Load" [ v byte2 ]);
                   when_
                     (v rw_r &: (v slot ==: c ~width:6 18))
                     (OI.call tx "Load" [ concat [ v dev_addr; c ~width:1 1 ] ]);
                   if_
                     (v slot ==: stop_slot)
                     [ running <-- c ~width:1 0; done_r <-- c ~width:1 1 ]
                     [ slot <-- (v slot +: c ~width:6 1) ];
                 ]
                 [];
             ]
            @ OI.call bc "Advance" []);
        ];
    ];
  Builder.comb b "status"
    ([
       busy <-- v running;
       done_ <-- v done_r;
       ack_error <-- v ack_r;
       rd_data <-- rx_value;
     ]
    @ output_stmts ~running:(v running) ~rw_r:(v rw_r) ~slot:(v slot)
        ~phase:phase_e ~msb:msb_e ~scl ~sda_out ~sda_oe);
  Builder.finish b

(* ------------------------------------------------------------------ *)
(* 2. Plain SystemC style                                              *)

let systemc_module ?(divider = 4) () =
  let open Builder.Dsl in
  let b = Builder.create "i2c_systemc" in
  let reset, go, rw, dev_addr, reg_addr, data, sda_in,
      scl, sda_out, sda_oe, busy, done_, ack_error, rd_data = ports b in
  let shift = Builder.wire b "shift" 8 in
  let rx = Builder.wire b "rx" 8 in
  let div = Builder.wire b "div" 8 in
  let phase = Builder.wire b "phase" 2 in
  let slot = Builder.wire b "slot" 6 in
  let running = Builder.wire b "running" 1 in
  let rw_r = Builder.wire b "rw_r" 1 in
  let done_r = Builder.wire b "done_r" 1 in
  let ack_r = Builder.wire b "ack_r" 1 in
  let byte1 = Builder.wire b "byte1" 8 in
  let byte2 = Builder.wire b "byte2" 8 in
  let quarter_end = v div ==: c ~width:8 (divider - 1) in
  let phase_end = quarter_end &: (v phase ==: c ~width:2 3) in
  let _, _, _, at_ack, at_rx, _, at_tx = roles ~rw_r:(v rw_r) ~slot:(v slot) in
  let mid_sample = quarter_end &: (v phase ==: c ~width:2 1) in
  let stop_slot =
    mux2 (v rw_r) (c ~width:6 slot_stop_read) (c ~width:6 slot_stop_write)
  in
  Builder.sync b "engine"
    [
      if_ (v reset)
        [
          shift <-- c ~width:8 0;
          rx <-- c ~width:8 0;
          div <-- c ~width:8 0;
          phase <-- c ~width:2 0;
          slot <-- c ~width:6 0;
          running <-- c ~width:1 0;
          rw_r <-- c ~width:1 0;
          done_r <-- c ~width:1 0;
          ack_r <-- c ~width:1 0;
          byte1 <-- c ~width:8 0;
          byte2 <-- c ~width:8 0;
        ]
        [
          if_ (notb (v running))
            [
              when_ (v go)
                [
                  running <-- c ~width:1 1;
                  rw_r <-- v rw;
                  done_r <-- c ~width:1 0;
                  ack_r <-- c ~width:1 0;
                  slot <-- c ~width:6 0;
                  div <-- c ~width:8 0;
                  phase <-- c ~width:2 0;
                  byte1 <-- v reg_addr;
                  byte2 <-- v data;
                  shift <-- concat [ v dev_addr; c ~width:1 0 ];
                ];
            ]
            [
              when_ (mid_sample &: at_ack) [ ack_r <-- (v ack_r |: v sda_in) ];
              when_ (mid_sample &: at_rx)
                [ rx <-- concat [ slice (v rx) ~hi:6 ~lo:0; v sda_in ] ];
              when_ phase_end
                [
                  when_ at_tx
                    [ shift <-- concat [ slice (v shift) ~hi:6 ~lo:0; c ~width:1 0 ] ];
                  when_ (v slot ==: c ~width:6 9) [ shift <-- v byte1 ];
                  when_
                    (notb (v rw_r) &: (v slot ==: c ~width:6 18))
                    [ shift <-- v byte2 ];
                  when_
                    (v rw_r &: (v slot ==: c ~width:6 18))
                    [ shift <-- concat [ v dev_addr; c ~width:1 1 ] ];
                  if_
                    (v slot ==: stop_slot)
                    [ running <-- c ~width:1 0; done_r <-- c ~width:1 1 ]
                    [ slot <-- (v slot +: c ~width:6 1) ];
                ];
              if_ quarter_end
                [ div <-- c ~width:8 0; phase <-- (v phase +: c ~width:2 1) ]
                [ div <-- (v div +: c ~width:8 1) ];
            ];
        ];
    ];
  Builder.comb b "status"
    ([
       busy <-- v running;
       done_ <-- v done_r;
       ack_error <-- v ack_r;
       rd_data <-- v rx;
     ]
    @ output_stmts ~running:(v running) ~rw_r:(v rw_r) ~slot:(v slot)
        ~phase:(v phase) ~msb:(bit (v shift) 7) ~scl ~sda_out ~sda_oe);
  Builder.finish b

(* ------------------------------------------------------------------ *)
(* 3. VHDL RTL style: two-process description                          *)

let vhdl_module ?(divider = 4) () =
  let open Builder.Dsl in
  let b = Builder.create "i2c_vhdl" in
  let reset, go, rw, dev_addr, reg_addr, data, sda_in,
      scl, sda_out, sda_oe, busy, done_, ack_error, rd_data = ports b in
  (* registered state *)
  let shift_r = Builder.wire b "shift_r" 8 in
  let rx_r = Builder.wire b "rx_r" 8 in
  let div_r = Builder.wire b "div_r" 8 in
  let phase_r = Builder.wire b "phase_r" 2 in
  let slot_r = Builder.wire b "slot_r" 6 in
  let running_r = Builder.wire b "running_r" 1 in
  let rww_r = Builder.wire b "rww_r" 1 in
  let done_rr = Builder.wire b "done_rr" 1 in
  let ack_rr = Builder.wire b "ack_rr" 1 in
  let byte1_r = Builder.wire b "byte1_r" 8 in
  let byte2_r = Builder.wire b "byte2_r" 8 in
  (* next-state wires *)
  let shift_n = Builder.wire b "shift_n" 8 in
  let rx_n = Builder.wire b "rx_n" 8 in
  let div_n = Builder.wire b "div_n" 8 in
  let phase_n = Builder.wire b "phase_n" 2 in
  let slot_n = Builder.wire b "slot_n" 6 in
  let running_n = Builder.wire b "running_n" 1 in
  let rw_n = Builder.wire b "rw_n" 1 in
  let done_n = Builder.wire b "done_n" 1 in
  let ack_n = Builder.wire b "ack_n" 1 in
  let byte1_n = Builder.wire b "byte1_n" 8 in
  let byte2_n = Builder.wire b "byte2_n" 8 in
  let quarter_end = v div_r ==: c ~width:8 (divider - 1) in
  let phase_end = quarter_end &: (v phase_r ==: c ~width:2 3) in
  let _, _, _, at_ack, at_rx, _, at_tx =
    roles ~rw_r:(v rww_r) ~slot:(v slot_r)
  in
  let mid_sample = quarter_end &: (v phase_r ==: c ~width:2 1) in
  let stop_slot =
    mux2 (v rww_r) (c ~width:6 slot_stop_read) (c ~width:6 slot_stop_write)
  in
  Builder.comb b "next_state"
    [
      (* defaults: hold *)
      shift_n <-- v shift_r;
      rx_n <-- v rx_r;
      div_n <-- v div_r;
      phase_n <-- v phase_r;
      slot_n <-- v slot_r;
      running_n <-- v running_r;
      rw_n <-- v rww_r;
      done_n <-- v done_rr;
      ack_n <-- v ack_rr;
      byte1_n <-- v byte1_r;
      byte2_n <-- v byte2_r;
      if_ (notb (v running_r))
        [
          when_ (v go)
            [
              running_n <-- c ~width:1 1;
              rw_n <-- v rw;
              done_n <-- c ~width:1 0;
              ack_n <-- c ~width:1 0;
              slot_n <-- c ~width:6 0;
              div_n <-- c ~width:8 0;
              phase_n <-- c ~width:2 0;
              byte1_n <-- v reg_addr;
              byte2_n <-- v data;
              shift_n <-- concat [ v dev_addr; c ~width:1 0 ];
            ];
        ]
        [
          when_ (mid_sample &: at_ack) [ ack_n <-- (v ack_rr |: v sda_in) ];
          when_ (mid_sample &: at_rx)
            [ rx_n <-- concat [ slice (v rx_r) ~hi:6 ~lo:0; v sda_in ] ];
          when_ phase_end
            [
              when_ at_tx
                [ shift_n <-- concat [ slice (v shift_r) ~hi:6 ~lo:0; c ~width:1 0 ] ];
              when_ (v slot_r ==: c ~width:6 9) [ shift_n <-- v byte1_r ];
              when_
                (notb (v rww_r) &: (v slot_r ==: c ~width:6 18))
                [ shift_n <-- v byte2_r ];
              when_
                (v rww_r &: (v slot_r ==: c ~width:6 18))
                [ shift_n <-- concat [ v dev_addr; c ~width:1 1 ] ];
              if_
                (v slot_r ==: stop_slot)
                [ running_n <-- c ~width:1 0; done_n <-- c ~width:1 1 ]
                [ slot_n <-- (v slot_r +: c ~width:6 1) ];
            ];
          if_ quarter_end
            [ div_n <-- c ~width:8 0; phase_n <-- (v phase_r +: c ~width:2 1) ]
            [ div_n <-- (v div_r +: c ~width:8 1) ];
        ];
    ];
  Builder.sync b "state_reg"
    [
      if_ (v reset)
        [
          shift_r <-- c ~width:8 0;
          rx_r <-- c ~width:8 0;
          div_r <-- c ~width:8 0;
          phase_r <-- c ~width:2 0;
          slot_r <-- c ~width:6 0;
          running_r <-- c ~width:1 0;
          rww_r <-- c ~width:1 0;
          done_rr <-- c ~width:1 0;
          ack_rr <-- c ~width:1 0;
          byte1_r <-- c ~width:8 0;
          byte2_r <-- c ~width:8 0;
        ]
        [
          shift_r <-- v shift_n;
          rx_r <-- v rx_n;
          div_r <-- v div_n;
          phase_r <-- v phase_n;
          slot_r <-- v slot_n;
          running_r <-- v running_n;
          rww_r <-- v rw_n;
          done_rr <-- v done_n;
          ack_rr <-- v ack_n;
          byte1_r <-- v byte1_n;
          byte2_r <-- v byte2_n;
        ];
    ];
  Builder.comb b "outputs"
    ([
       busy <-- v running_r;
       done_ <-- v done_rr;
       ack_error <-- v ack_rr;
       rd_data <-- v rx_r;
     ]
    @ output_stmts ~running:(v running_r) ~rw_r:(v rww_r) ~slot:(v slot_r)
        ~phase:(v phase_r) ~msb:(bit (v shift_r) 7) ~scl ~sda_out ~sda_oe);
  Builder.finish b
