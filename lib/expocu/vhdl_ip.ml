let width = 16

(* Structural shift-and-add: one explicit partial-product row per bit,
   written the way elaborated vendor VHDL looks (no behavioural "*"). *)
let mult16_module () =
  let open Builder.Dsl in
  let b = Builder.create "ip_mult16" in
  let a = Builder.input b "a" width in
  let bb = Builder.input b "b" width in
  let p = Builder.output b "p" (2 * width) in
  let row i acc =
    (* acc + (a << i when b[i]) over the full 32 bits *)
    let partial =
      mux2 (bit (v bb) i)
        (zext (v a) (2 * width) <<: c ~width:5 i)
        (c ~width:(2 * width) 0)
    in
    acc +: partial
  in
  let rec accumulate i acc = if i = width then acc else accumulate (i + 1) (row i acc) in
  Builder.comb b "pp_rows" [ p <-- accumulate 0 (c ~width:(2 * width) 0) ];
  Builder.finish b

let mult16_netlist nl ~a ~b =
  if Array.length a <> width || Array.length b <> width then
    invalid_arg "mult16_netlist: operands must be 16 nets";
  let module N = Backend.Netlist in
  let zero = N.const0 nl in
  let total = 2 * width in
  (* Ripple add rows of masked, shifted partial products. *)
  let acc = ref (Array.make total zero) in
  for i = 0 to width - 1 do
    let partial =
      Array.init total (fun j ->
          if j < i || j >= i + width then zero
          else N.and2 nl a.(j - i) b.(i))
    in
    let carry = ref zero in
    let sum = Array.make total zero in
    for j = 0 to total - 1 do
      let x = !acc.(j) and y = partial.(j) in
      let axy = N.xor2 nl x y in
      sum.(j) <- N.xor2 nl axy !carry;
      carry := N.or2 nl (N.and2 nl x y) (N.and2 nl axy !carry)
    done;
    acc := sum
  done;
  !acc
