(** The complete Exposure Control Unit (Figure 1).

    Per-frame control loop: acquire a pixel histogram while the frame
    streams in, scan it for the median brightness band at frame end,
    update the exposure gain, and write the new setting to the imager
    over I²C — exactly the module inventory of §2 (camera data
    synchronization, histogram acquisition, threshold calculation,
    parameter calculation, I²C bus control, reset control).

    Interface:
    in  [ext_reset](1), [pixel](8), [line_valid](1), [frame_sync](1)
        (high during a frame), [sda_in](1), [target_bin](8);
    out [scl](1), [sda_out](1), [sda_oe](1), [exposure](16),
        [frame_done](1), [ack_error](1), [median_bin](8).

    [osss_top] assembles the OSSS-style component implementations,
    [rtl_top] the conventional VHDL-style ones; the two are
    cycle-equivalent by construction, which experiment E8 checks. *)

type config = { bins : int; count_w : int; divider : int }

val default_config : config
(** 16 bins, 16-bit counters, I²C divider 4. *)

val osss_top : ?config:config -> unit -> Ir.module_def
val rtl_top : ?config:config -> unit -> Ir.module_def

val i2c_dev_addr : int
val i2c_reg_addr : int

(** {1 Sequencer state encoding}

    Values of the 4-bit [top_state] register, exposed for coverage
    registration (see [Coverpoints]). *)

val st_acquire : int
val st_scan_settle : int
val st_scan : int
val st_update : int
val st_param_settle : int
val st_wait_param : int
val st_send : int
val st_i2c_settle : int
val st_wait_i2c : int
