(** Threshold calculation — a control-flow ExpoCU stage with a
    multi-thousand-cycle budget (§2): between frames it scans the
    histogram one bin per clock and locates the median brightness band
    plus under-/over-exposure conditions.

    Interface (both styles):
    in [reset](1), [start](1), [total](count_w), [rd_count](count_w);
    out [rd_idx](8) (drives the histogram read port), [busy](1),
    [done](1), [median_bin](8), [underexposed](1), [overexposed](1).

    Protocol: pulse [start]; the module sweeps bins [0..bins-1]; [done]
    rises one cycle after the sweep and stays until the next [start].
    The median is the first bin where twice the cumulative count
    reaches [total]; exposure flags compare it against fixed bands
    (lower/upper quartile of the bin range). *)

val threshold_class : bins:int -> count_w:int -> Osss.Class_def.t
(** State machine as an OSSS class: methods [Start], [Step(Count, Total)],
    [Scanning():1], [Done():1], [Median():8], [Index():8]. *)

val osss_module : ?bins:int -> ?count_w:int -> unit -> Ir.module_def
val rtl_module : ?bins:int -> ?count_w:int -> unit -> Ir.module_def
