(** Histogram acquisition — the data-flow-oriented ExpoCU stage.

    Accepts one pixel per clock (single-cycle budget, §2) and
    accumulates per-brightness-band counts; the threshold stage reads
    the bins between frames.

    Interface (both styles): in [reset](1), [clear](1),
    [pixel_valid](1), [pixel](8), [rd_idx](8); out [rd_count](count_w),
    [total](count_w).  Bin index = top [log2 bins] bits of the pixel;
    counters saturate.

    The OSSS style declares a [Histogram<BINS,COUNT_W>] class whose
    state vector concatenates the bin counters; the RTL style keeps the
    bins in a memory. *)

val histogram_class : bins:int -> count_w:int -> Osss.Class_def.t
(** Methods: [Clear], [AddSample(Pixel:8)], [GetBin(Index:8):count_w],
    [Total():count_w].  [bins] must be a power of two between 2 and
    256. *)

val osss_module : ?bins:int -> ?count_w:int -> unit -> Ir.module_def
val rtl_module : ?bins:int -> ?count_w:int -> unit -> Ir.module_def
(** Defaults: 16 bins, 16-bit counters. *)
