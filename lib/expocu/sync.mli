(** Camera data synchronization — the paper's running example.

    [SyncRegister<REGSIZE, RESETVALUE>] (Figures 2–3) shifts the
    asynchronous camera line in on every clock and detects edges over
    the last [REGSIZE] samples.  The [sync] module (Figures 4–5)
    instantiates it with <4, 0> and publishes the synchronized value and
    a rising-edge strobe.

    Both implementation styles are provided:
    - {!osss_module}: the class-based OSSS description;
    - {!rtl_module}: hand-written "VHDL" RTL with identical ports and
      cycle behaviour (used by the zero-overhead experiment E3). *)

val sync_register : regsize:int -> resetvalue:int -> Osss.Class_def.t
(** The template class.  Methods: [Reset], [Write(NewValue:1)],
    [RisingEdge(RegIndex:8) : 1], [FallingEdge(RegIndex:8) : 1],
    [Value : regsize], [Stable : 1] (all recent samples equal). *)

val osss_module : ?regsize:int -> unit -> Ir.module_def
(** Ports: in [reset](1), [data](1); out [value](regsize),
    [rising](1), [falling](1), [stable](1).  Default regsize 4. *)

val rtl_module : ?regsize:int -> unit -> Ir.module_def
(** Same interface, conventional RTL coding. *)
