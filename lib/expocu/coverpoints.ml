type t = {
  cp_fsms : Cover.Fsm.t list;
  cp_groups : Cover.Group.t list;
  cp_frame : (Rtl_sim.t -> unit) list;
}

(* The same coverage model serves both design styles; registers are
   located by candidate names (the OSSS I2C master keeps its slot
   counter in "slot", the VHDL-style one in "slot_r"; the sync module
   packs its shift register into the SyncRegister object state in the
   OSSS style). *)
let find_first sim candidates = List.find_map (Rtl_sim.find_var sim) candidates

let seq_arcs first last =
  List.init (last - first) (fun i -> (first + i, first + i + 1))

let top_fsm () =
  Cover.Fsm.create ~name:"top_sequencer"
    ~states:
      [
        (Expocu_top.st_acquire, "acquire");
        (Expocu_top.st_scan_settle, "scan_settle");
        (Expocu_top.st_scan, "scan");
        (Expocu_top.st_update, "update");
        (Expocu_top.st_param_settle, "param_settle");
        (Expocu_top.st_wait_param, "wait_param");
        (Expocu_top.st_send, "send");
        (Expocu_top.st_i2c_settle, "i2c_settle");
        (Expocu_top.st_wait_i2c, "wait_i2c");
      ]
    ~arcs:
      (seq_arcs 0 8
      @ [
          (Expocu_top.st_wait_i2c, Expocu_top.st_acquire);
          (* waiting states hold their value; declare the self-loops so
             the dwell is part of the graph to cover *)
          (Expocu_top.st_acquire, Expocu_top.st_acquire);
          (Expocu_top.st_scan, Expocu_top.st_scan);
          (Expocu_top.st_wait_param, Expocu_top.st_wait_param);
          (Expocu_top.st_wait_i2c, Expocu_top.st_wait_i2c);
        ])
    ()

let slot_name s =
  if s = I2c.slot_start then "start"
  else if s = I2c.slot_stop_write then "stop_write"
  else if s = I2c.slot_stop_read then "stop_read"
  else if s = I2c.slot_restart then "restart"
  else if s = I2c.slot_mnack then "mnack"
  else Printf.sprintf "s%02d" s

let i2c_fsm () =
  (* All 39 slots of the write+read sequence.  A write-only stimulus
     legitimately leaves the read tail (restart onwards on the read
     path, slots 29..38) unhit — that hole is the point of reporting
     it. *)
  Cover.Fsm.create ~name:"i2c_slot"
    ~states:(List.init I2c.n_slots_read (fun s -> (s, slot_name s)))
    ~arcs:
      (seq_arcs 0 (I2c.n_slots_read - 1)
      @ [ (I2c.slot_stop_write, 0); (I2c.slot_stop_read, 0) ])
    ()

let reset_fsm () =
  Cover.Fsm.create ~name:"por_counter"
    ~states:
      (List.init (Reset_ctrl.por_cycles + 1) (fun i ->
           (i, Printf.sprintf "por%d" i)))
    ~arcs:
      (seq_arcs 0 Reset_ctrl.por_cycles
      @ [ (Reset_ctrl.por_cycles, Reset_ctrl.por_cycles) ])
    ()

let sync_fsm () =
  (* The 4-bit synchronizer shift register: any of the 16 patterns can
     occur depending on pulse widths, so declare them all and no arcs. *)
  Cover.Fsm.create ~name:"sync_shift"
    ~states:(List.init 16 (fun v -> (v, Printf.sprintf "v%d" v)))
    ()

let groups () =
  let median =
    Cover.Group.create ~name:"median_bin"
      (List.init Expocu_top.default_config.Expocu_top.bins (fun i ->
           (Printf.sprintf "bin%d" i, Cover.Group.Value i))
      @ [ ("out_of_range", Cover.Group.Illegal_span (16, 255)) ])
  in
  let exposure =
    Cover.Group.create ~name:"exposure_gain"
      [
        ("at_min", Cover.Group.Value Param_calc.gain_min);
        ("low", Cover.Group.Span (Param_calc.gain_min + 1, Param_calc.gain_unity - 1));
        ("unity", Cover.Group.Value Param_calc.gain_unity);
        ("above_unity", Cover.Group.Span (Param_calc.gain_unity + 1, 16383));
        ("high", Cover.Group.Span (16384, Param_calc.gain_max));
        ("below_min", Cover.Group.Illegal_span (0, Param_calc.gain_min - 1));
      ]
  in
  let verdict =
    Cover.Group.create ~name:"threshold_verdict"
      [
        ("ok", Cover.Group.Value 0);
        ("underexposed", Cover.Group.Value 1);
        ("overexposed", Cover.Group.Value 2);
        ("both_flags", Cover.Group.Illegal_value 3);
      ]
  in
  let kind =
    Cover.Group.create ~name:"i2c_kind"
      [ ("write", Cover.Group.Value 0); ("read", Cover.Group.Value 1) ]
  in
  let occupancy =
    Cover.Group.create ~name:"hist_occupancy"
      [
        ("empty", Cover.Group.Value 0);
        ("partial", Cover.Group.Span (1, 255));
        ("full_line", Cover.Group.Value 256);
        ("multi_line", Cover.Group.Span (257, 65535));
      ]
  in
  (median, exposure, verdict, kind, occupancy)

let attach sim =
  let fsm_defs =
    [
      ([ "top_state" ], top_fsm ());
      ([ "u_i2c.slot"; "u_i2c.slot_r" ], i2c_fsm ());
      ([ "u_reset.por_cnt" ], reset_fsm ());
      ([ "u_sync.shift_reg"; "u_sync.data_sync_reg" ], sync_fsm ());
    ]
  in
  let resolved =
    List.filter_map
      (fun (candidates, fsm) ->
        match find_first sim candidates with
        | Some var -> Some (fsm, var)
        | None -> None)
      fsm_defs
  in
  Rtl_sim.on_step sim (fun s ->
      List.iter
        (fun (fsm, var) ->
          Cover.Fsm.sample fsm (Bitvec.to_int (Rtl_sim.peek_var s var)))
        resolved);
  let median, exposure, verdict, kind, occupancy = groups () in
  let peek_int name =
    match find_first sim [ name ] with
    | Some var -> Some (fun s -> Bitvec.to_int (Rtl_sim.peek_var s var))
    | None -> None
  in
  let frame_samplers =
    List.filter_map Fun.id
      [
        Some (fun s -> Cover.Group.sample median (Rtl_sim.get_int s "median_bin"));
        Some (fun s -> Cover.Group.sample exposure (Rtl_sim.get_int s "exposure"));
        (match (peek_int "under", peek_int "over") with
        | Some u, Some o ->
            Some (fun s -> Cover.Group.sample verdict (u s lor (o s lsl 1)))
        | _ -> None);
        (match peek_int "i2c_rw" with
        | Some rw -> Some (fun s -> Cover.Group.sample kind (rw s))
        | None -> None);
        (match peek_int "hist_total" with
        | Some total -> Some (fun s -> Cover.Group.sample occupancy (total s))
        | None -> None);
      ]
  in
  {
    cp_fsms = List.map (fun (f, _) -> f) resolved;
    cp_groups = [ median; exposure; verdict; kind; occupancy ];
    cp_frame = frame_samplers;
  }

let sample_frame t sim = List.iter (fun f -> f sim) t.cp_frame
let fsms t = t.cp_fsms
let groups t = t.cp_groups
