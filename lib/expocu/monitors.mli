(** Protocol monitors for the ExpoCU designs, built on [Assert_mon].

    Two bundles of temporal properties:

    - {!add_i2c_props} checks the bus master at its module boundary
      (start/stop framing on the SDA/SCL pins, busy/done exclusivity,
      released idle bus, bounded completion) — the same contract for
      all three implementation styles;
    - {!expocu_monitor} wraps a simulated *top* with the pin-level I²C
      framing checks plus top-level invariants (single-cycle
      [frame_done] pulse, no ACK errors, sync-handshake edge
      exclusivity and stable-value consistency) and attaches itself to
      the simulator's step hook, so the caller keeps driving
      [Rtl_sim.step] directly.

    Pass/vacuous/fail counts land in the coverage report via
    [Assert_mon.db_monitors]. *)

val add_i2c_props : Assert_mon.t -> unit
(** Add the bus-master boundary properties to a monitor wrapping a
    standalone I²C module simulation ([I2c.osss_module] etc.). *)

val expocu_monitor : Rtl_sim.t -> Assert_mon.t
(** Build, populate and attach the top-level monitor.  Call
    [Assert_mon.finish] at end of stimulus before reading results. *)
