(** ExpoCU-specific coverage model: FSM registration and functional
    covergroups over the flattened top-level design.

    {!attach} registers the known state machines (top sequencer, I²C
    slot counter, power-on-reset counter, sync shift register) with a
    per-cycle sampler; {!sample_frame} feeds the functional covergroups
    (median bin, exposure range, threshold verdict, I²C transaction
    kind, histogram occupancy) and is meant to be called by the
    testbench once per completed frame.  Both the OSSS and the VHDL-RTL
    style tops are supported — internal state is located by candidate
    hierarchical names, and FSMs whose register does not exist in the
    simulated variant are skipped. *)

type t

val attach : Rtl_sim.t -> t
(** Resolve coverpoints against the simulator's flattened design and
    register the per-cycle FSM sampler (via [Rtl_sim.on_step]). *)

val sample_frame : t -> Rtl_sim.t -> unit
(** Sample every functional covergroup once (call per frame). *)

val fsms : t -> Cover.Fsm.t list
val groups : t -> Cover.Group.t list
