(** Exposure parameter calculation.

    From the threshold stage's median brightness band, compute the next
    frame's exposure gain with a proportional controller in fixed
    point.  The multiply runs on a {e serial} shift-add unit over
    {!mult_cycles} clocks — the stage has a budget of thousands of
    cycles (§2) and a combinational multiplier cannot close 66 MHz on
    the LUT fabric after place & route.

    Update rule (per [update] pulse):
      [error = target_bin - median_bin]  (signed bins)
      [exposure' = clamp(exposure * (1 + error/32), min_gain, max_gain)]

    Exposure gain format: uq4.12 (1.0 = 4096).

    Interface (both styles): in [reset](1), [update](1),
    [median_bin](8), [target_bin](8); out [exposure](16), [ready](1)
    (high whenever [exposure] is valid; drops during the serial
    computation), [busy](1).

    The OSSS style wraps the multiplier in a [SerialMult<16>] class;
    the conventional style codes the same machine with registers. *)

val gain_unity : int
(** Raw value of gain 1.0 (4096). *)

val gain_min : int
val gain_max : int

val mult_cycles : int
(** Serial multiplier latency (16). *)

val serial_mult_class : Osss.Class_def.t
(** Methods: [Load(A:16, B:16)], [Step], [Running():1],
    [Product():32]. *)

val osss_module : unit -> Ir.module_def
val rtl_module : unit -> Ir.module_def

val golden_update : exposure:int -> median:int -> target:int -> int
(** Bit-exact reference model of one update (raw uq4.12 gain in, raw
    gain out) used by tests and by the system-level golden model. *)
