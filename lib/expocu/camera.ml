type t = {
  cam_width : int;
  cam_height : int;
  mutable illumination : float;
  contrast : float;
  noise : float;
  rng : Random.State.t;
  mutable time : int;
}

let create ?(width = 64) ?(height = 32) ?(illumination = 0.3)
    ?(contrast = 0.5) ?(noise = 0.02) ?(seed = 1) () =
  if width < 1 || height < 1 then invalid_arg "Camera.create: empty frame";
  {
    cam_width = width;
    cam_height = height;
    illumination;
    contrast;
    noise;
    rng = Random.State.make [| seed |];
    time = 0;
  }

let width t = t.cam_width
let height t = t.cam_height
let set_illumination t level = t.illumination <- level

let frame t ~exposure =
  let w = t.cam_width and h = t.cam_height in
  let pixels = Array.make (w * h) 0 in
  let highlight_x = (t.time * 3) mod w in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      (* base + horizontal gradient + a moving specular highlight *)
      let gradient =
        t.contrast *. (float_of_int x /. float_of_int (max 1 (w - 1)) -. 0.5)
      in
      let highlight =
        if abs (x - highlight_x) < 3 && y < h / 4 then 0.5 else 0.0
      in
      let scene = t.illumination *. (1.0 +. gradient) +. highlight in
      let sensed =
        scene *. exposure
        +. (t.noise *. (Random.State.float t.rng 2.0 -. 1.0))
      in
      let value = int_of_float (Float.round (sensed *. 255.0)) in
      pixels.((y * w) + x) <- max 0 (min 255 value)
    done
  done;
  t.time <- t.time + 1;
  pixels

let mean_level pixels =
  let sum = Array.fold_left ( + ) 0 pixels in
  float_of_int sum /. float_of_int (Array.length pixels)
