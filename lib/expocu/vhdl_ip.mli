(** "Existing VHDL IP" integrated into the design (§2, §7).

    The paper integrates pre-existing VHDL components — multipliers and
    specific constructs — by synthesizing them separately and letting
    the tools connect everything at netlist level (Figure 6).  Here the
    multiplier is provided in two forms:

    - {!mult16_module}: an IR module in pre-synthesized structural
      style (explicit unrolled shift-and-add rows, as an IP vendor's
      netlist would look after elaboration), instantiable from any
      design;
    - {!mult16_netlist}: a gate-level injector that splices the IP
      directly into an existing netlist — the literal netlist-level
      integration path. *)

val mult16_module : unit -> Ir.module_def
(** Ports: in [a](16), [b](16); out [p](32).  Purely combinational. *)

val mult16_netlist :
  Backend.Netlist.t ->
  a:Backend.Netlist.net array ->
  b:Backend.Netlist.net array ->
  Backend.Netlist.net array
(** Instantiate the IP's gates inside [nl]; returns the 32 product
    nets.  Operands must be 16 nets each. *)
