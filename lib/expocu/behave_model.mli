(** Behavioural (pre-synthesis) ExpoCU model on the simulation kernel.

    This is the abstraction level a designer simulates at before
    refinement: clocked threads exchanging whole frames and calling the
    golden algorithm, with the I²C transaction reduced to its latency.
    Used by experiment E6 to compare simulation speed across
    abstraction levels (behavioural vs RTL vs gate level), the paper's
    "much higher simulation speed than conventional RTL simulators"
    claim (§10). *)

type result = {
  frames : int;
  final_gain : float;
  final_median : int;
  sim_cycles : int;  (** clock cycles covered by the simulated time *)
  kernel_runs : int;  (** process activations the kernel executed *)
}

val run :
  ?frames:int ->
  ?pixels_per_frame:int ->
  ?illumination:float ->
  ?target_bin:int ->
  unit ->
  result
(** Runs the closed loop: a camera thread streams pixel values one per
    clock, the ExpoCU thread accumulates the histogram pixel by pixel
    (as the hardware does), scans it, updates the gain and waits out
    the I²C write latency. *)
