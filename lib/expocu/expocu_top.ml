type config = { bins : int; count_w : int; divider : int }

let default_config = { bins = 16; count_w = 16; divider = 4 }
let i2c_dev_addr = 0x48
let i2c_reg_addr = 0x10

(* Top-level sequencer states. *)
let st_acquire = 0
let st_scan_settle = 1
let st_scan = 2
let st_update = 3
let st_param_settle = 4
let st_wait_param = 5
let st_send = 6
let st_i2c_settle = 7
let st_wait_i2c = 8

type parts = {
  p_sync : Ir.module_def;
  p_hist : Ir.module_def;
  p_thresh : Ir.module_def;
  p_param : Ir.module_def;
  p_i2c : Ir.module_def;
  p_reset : Ir.module_def;
}

let build name (parts : parts) (cfg : config) =
  let open Builder.Dsl in
  let b = Builder.create name in
  let ext_reset = Builder.input b "ext_reset" 1 in
  let pixel = Builder.input b "pixel" 8 in
  let line_valid = Builder.input b "line_valid" 1 in
  let frame_sync = Builder.input b "frame_sync" 1 in
  let sda_in = Builder.input b "sda_in" 1 in
  let target_bin = Builder.input b "target_bin" 8 in
  let scl = Builder.output b "scl" 1 in
  let sda_out = Builder.output b "sda_out" 1 in
  let sda_oe = Builder.output b "sda_oe" 1 in
  let exposure = Builder.output b "exposure" 16 in
  let frame_done = Builder.output b "frame_done" 1 in
  let ack_error = Builder.output b "ack_error" 1 in
  let median_out = Builder.output b "median_bin" 8 in
  (* internal nets *)
  let w n width = Builder.wire b n width in
  let sys_reset = w "sys_reset" 1 in
  let fs_value = w "fs_value" 4 in
  let fs_rising = w "fs_rising" 1 in
  let fs_falling = w "fs_falling" 1 in
  let fs_stable = w "fs_stable" 1 in
  let hist_clear = w "hist_clear" 1 in
  let hist_valid = w "hist_valid" 1 in
  let rd_idx = w "rd_idx" 8 in
  let rd_count = w "rd_count" cfg.count_w in
  let hist_total = w "hist_total" cfg.count_w in
  let thr_start = w "thr_start" 1 in
  let thr_busy = w "thr_busy" 1 in
  let thr_done = w "thr_done" 1 in
  let median = w "median" 8 in
  let under = w "under" 1 in
  let over = w "over" 1 in
  let pc_update = w "pc_update" 1 in
  let pc_ready = w "pc_ready" 1 in
  let pc_busy = w "pc_busy" 1 in
  let expo = w "expo" 16 in
  let i2c_go = w "i2c_go" 1 in
  let i2c_busy = w "i2c_busy" 1 in
  let i2c_done = w "i2c_done" 1 in
  let i2c_rw = w "i2c_rw" 1 in
  let i2c_rd = w "i2c_rd" 8 in
  let i2c_dev = w "i2c_dev" 7 in
  let i2c_reg = w "i2c_reg" 8 in
  let i2c_data = w "i2c_data" 8 in
  let fsm = w "top_state" 4 in
  let frame_done_r = w "frame_done_r" 1 in
  (* reset control *)
  Builder.instantiate b ~name:"u_reset" parts.p_reset
    [ ("ext_reset", ext_reset); ("sys_reset", sys_reset) ];
  (* frame_sync conditioning through the SyncRegister-based module *)
  Builder.instantiate b ~name:"u_sync" parts.p_sync
    [
      ("reset", sys_reset); ("data", frame_sync); ("value", fs_value);
      ("rising", fs_rising); ("falling", fs_falling); ("stable", fs_stable);
    ];
  Builder.instantiate b ~name:"u_hist" parts.p_hist
    [
      ("reset", sys_reset); ("clear", hist_clear);
      ("pixel_valid", hist_valid); ("pixel", pixel); ("rd_idx", rd_idx);
      ("rd_count", rd_count); ("total", hist_total);
    ];
  Builder.instantiate b ~name:"u_thresh" parts.p_thresh
    [
      ("reset", sys_reset); ("start", thr_start); ("total", hist_total);
      ("rd_count", rd_count); ("rd_idx", rd_idx); ("busy", thr_busy);
      ("done", thr_done); ("median_bin", median); ("underexposed", under);
      ("overexposed", over);
    ];
  Builder.instantiate b ~name:"u_param" parts.p_param
    [
      ("reset", sys_reset); ("update", pc_update); ("median_bin", median);
      ("target_bin", target_bin); ("exposure", expo); ("ready", pc_ready);
      ("busy", pc_busy);
    ];
  Builder.instantiate b ~name:"u_i2c" parts.p_i2c
    [
      ("reset", sys_reset); ("go", i2c_go); ("rw", i2c_rw);
      ("dev_addr", i2c_dev); ("reg_addr", i2c_reg); ("data", i2c_data);
      ("sda_in", sda_in); ("scl", scl); ("sda_out", sda_out);
      ("sda_oe", sda_oe); ("busy", i2c_busy); ("done", i2c_done);
      ("ack_error", ack_error); ("rd_data", i2c_rd);
    ];
  (* static I2C transaction parameters *)
  Builder.comb b "i2c_params"
    [
      i2c_rw <-- c ~width:1 0;
      i2c_dev <-- c ~width:7 i2c_dev_addr;
      i2c_reg <-- c ~width:8 i2c_reg_addr;
      i2c_data <-- slice (v expo) ~hi:15 ~lo:8;
    ];
  (* datapath glue *)
  Builder.comb b "glue"
    [
      hist_valid <-- (v line_valid &: (v fsm ==: c ~width:4 st_acquire));
      hist_clear <-- (v fs_rising &: (v fsm ==: c ~width:4 st_acquire));
      exposure <-- v expo;
      median_out <-- v median;
      frame_done <-- v frame_done_r;
    ];
  (* per-frame sequencer *)
  Builder.sync b "sequencer"
    [
      if_ (v sys_reset)
        [
          fsm <-- c ~width:4 st_acquire;
          thr_start <-- c ~width:1 0;
          pc_update <-- c ~width:1 0;
          i2c_go <-- c ~width:1 0;
          frame_done_r <-- c ~width:1 0;
        ]
        [
          thr_start <-- c ~width:1 0;
          pc_update <-- c ~width:1 0;
          i2c_go <-- c ~width:1 0;
          frame_done_r <-- c ~width:1 0;
          case (v fsm)
            [
              ( st_acquire,
                [
                  when_ (v fs_falling)
                    [
                      thr_start <-- c ~width:1 1;
                      fsm <-- c ~width:4 st_scan_settle;
                    ];
                ] );
              (* one settle cycle so the threshold module has consumed
                 the start pulse before its done flag is sampled *)
              (st_scan_settle, [ fsm <-- c ~width:4 st_scan ]);
              ( st_scan,
                [
                  when_ (v thr_done)
                    [ pc_update <-- c ~width:1 1; fsm <-- c ~width:4 st_update ];
                ] );
              (* the update pulse is registered this cycle; give the
                 parameter stage one cycle to drop ready, then wait out
                 its serial multiplication *)
              (st_update, [ fsm <-- c ~width:4 st_param_settle ]);
              (st_param_settle, [ fsm <-- c ~width:4 st_wait_param ]);
              ( st_wait_param,
                [ when_ (v pc_ready) [ fsm <-- c ~width:4 st_send ] ] );
              ( st_send,
                [ i2c_go <-- c ~width:1 1; fsm <-- c ~width:4 st_i2c_settle ] );
              (st_i2c_settle, [ fsm <-- c ~width:4 st_wait_i2c ]);
              ( st_wait_i2c,
                [
                  when_ (v i2c_done)
                    [
                      frame_done_r <-- c ~width:1 1;
                      fsm <-- c ~width:4 st_acquire;
                    ];
                ] );
            ]
            [ fsm <-- c ~width:4 st_acquire ];
        ];
    ];
  ignore (thr_busy, i2c_busy, pc_busy, under, over, fs_value, fs_stable, i2c_rd);
  Builder.finish b

let osss_top ?(config = default_config) () =
  build "expocu_osss"
    {
      p_sync = Sync.osss_module ();
      p_hist = Histogram.osss_module ~bins:config.bins ~count_w:config.count_w ();
      p_thresh =
        Threshold.osss_module ~bins:config.bins ~count_w:config.count_w ();
      p_param = Param_calc.osss_module ();
      p_i2c = I2c.osss_module ~divider:config.divider ();
      p_reset = Reset_ctrl.osss_module ();
    }
    config

let rtl_top ?(config = default_config) () =
  build "expocu_rtl"
    {
      p_sync = Sync.rtl_module ();
      p_hist = Histogram.rtl_module ~bins:config.bins ~count_w:config.count_w ();
      p_thresh =
        Threshold.rtl_module ~bins:config.bins ~count_w:config.count_w ();
      p_param = Param_calc.rtl_module ();
      p_i2c = I2c.vhdl_module ~divider:config.divider ();
      p_reset = Reset_ctrl.rtl_module ();
    }
    config
