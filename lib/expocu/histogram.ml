module CD = Osss.Class_def
module OI = Osss.Object_inst

let log2_exact n =
  let rec go k p = if p = n then Some k else if p > n then None else go (k + 1) (p * 2) in
  go 0 1

let bin_field i = Printf.sprintf "bin%d" i

let make_histogram params =
  match params with
  | [ bins; count_w ] ->
      let shift =
        match log2_exact bins with
        | Some k when bins >= 2 && bins <= 256 -> 8 - k
        | Some _ | None ->
            invalid_arg "histogram_class: bins must be a power of two in 2..256"
      in
      let fields =
        List.init bins (fun i -> CD.field (bin_field i) count_w)
        @ [ CD.field "total" count_w ]
      in
      let saturating_inc ctx name =
        let current = ctx.CD.get name in
        let maxed =
          Ir.Binop (Ir.Eq, current, Ir.Const (Bitvec.ones count_w))
        in
        ctx.CD.set name
          (Ir.Mux
             ( maxed,
               current,
               Ir.Binop
                 (Ir.Add, current, Ir.Const (Bitvec.of_int ~width:count_w 1)) ))
      in
      CD.declare
        ~name:(Osss.Template.specialized_name "Histogram" params)
        fields
        [
          CD.proc_method ~name:"Clear" ~params:[] (fun ctx ->
              List.init bins (fun i ->
                  ctx.CD.set (bin_field i) (Ir.Const (Bitvec.zero count_w)))
              @ [ ctx.CD.set "total" (Ir.Const (Bitvec.zero count_w)) ]);
          CD.proc_method ~name:"AddSample" ~params:[ ("Pixel", 8) ] (fun ctx ->
              (* Read-modify-write through one shared incrementer, as a
                 hardware-aware designer codes it: select the bin, add
                 once, steer the result back. *)
              let index =
                Ir.Binop
                  ( Ir.Lshr,
                    ctx.CD.arg "Pixel",
                    Ir.Const (Bitvec.of_int ~width:4 shift) )
              in
              let selected =
                List.fold_left
                  (fun acc i ->
                    let sel =
                      Ir.Binop
                        (Ir.Eq, index, Ir.Const (Bitvec.of_int ~width:8 i))
                    in
                    Ir.Mux (sel, ctx.CD.get (bin_field i), acc))
                  (Ir.Const (Bitvec.zero count_w))
                  (List.init bins (fun i -> i))
              in
              let maxed =
                Ir.Binop (Ir.Eq, selected, Ir.Const (Bitvec.ones count_w))
              in
              let incremented =
                Ir.Mux
                  ( maxed,
                    selected,
                    Ir.Binop
                      ( Ir.Add,
                        selected,
                        Ir.Const (Bitvec.of_int ~width:count_w 1) ) )
              in
              let arms =
                List.init bins (fun i ->
                    ( Bitvec.of_int ~width:8 i,
                      [ ctx.CD.set (bin_field i) incremented ] ))
              in
              [ Ir.Case (index, arms, []); saturating_inc ctx "total" ]);
          CD.fn_method ~name:"GetBin" ~params:[ ("Index", 8) ] ~return:count_w
            (fun ctx ->
              let result =
                List.fold_left
                  (fun acc i ->
                    let sel =
                      Ir.Binop
                        ( Ir.Eq,
                          ctx.CD.arg "Index",
                          Ir.Const (Bitvec.of_int ~width:8 i) )
                    in
                    Ir.Mux (sel, ctx.CD.get (bin_field i), acc))
                  (Ir.Const (Bitvec.zero count_w))
                  (List.init bins (fun i -> i))
              in
              ([], result));
          CD.fn_method ~name:"Total" ~params:[] ~return:count_w (fun ctx ->
              ([], ctx.CD.get "total"));
        ]
  | _ -> invalid_arg "histogram_class: two template parameters expected"

let histogram_memo = Osss.Template.memoize make_histogram
let histogram_class ~bins ~count_w = histogram_memo [ bins; count_w ]

let ports b =
  let reset = Builder.input b "reset" 1 in
  let clear = Builder.input b "clear" 1 in
  let pixel_valid = Builder.input b "pixel_valid" 1 in
  let pixel = Builder.input b "pixel" 8 in
  let rd_idx = Builder.input b "rd_idx" 8 in
  (reset, clear, pixel_valid, pixel, rd_idx)

let osss_module ?(bins = 16) ?(count_w = 16) () =
  let cls = histogram_class ~bins ~count_w in
  let b = Builder.create "histogram_osss" in
  let reset, clear, pixel_valid, pixel, rd_idx = ports b in
  let rd_count = Builder.output b "rd_count" count_w in
  let total = Builder.output b "total" count_w in
  let hist = OI.instantiate b ~name:"hist" cls in
  Builder.sync b "acquire"
    [
      Ir.If
        ( Ir.Binop (Ir.Or, Ir.Var reset, Ir.Var clear),
          OI.call hist "Clear" [],
          [
            Ir.If
              (Ir.Var pixel_valid, OI.call hist "AddSample" [ Ir.Var pixel ], []);
          ] );
    ];
  let _, bin_e = OI.call_fn hist "GetBin" [ Ir.Var rd_idx ] in
  let _, total_e = OI.call_fn hist "Total" [] in
  Builder.comb b "read_port"
    [ Ir.Assign (rd_count, bin_e); Ir.Assign (total, total_e) ];
  Builder.finish b

let awrite_all mem bins count_w =
  let open Builder.Dsl in
  List.init bins (fun i -> awrite mem (c ~width:8 i) (c ~width:count_w 0))

let rtl_module ?(bins = 16) ?(count_w = 16) () =
  let open Builder.Dsl in
  let shift =
    match log2_exact bins with
    | Some k when bins >= 2 && bins <= 256 -> 8 - k
    | Some _ | None ->
        invalid_arg "rtl_module: bins must be a power of two in 2..256"
  in
  let b = Builder.create "histogram_rtl" in
  let reset, clear, pixel_valid, pixel, rd_idx = ports b in
  let rd_count = Builder.output b "rd_count" count_w in
  let total = Builder.output b "total" count_w in
  let mem = Builder.memory b "bins" ~width:count_w ~depth:bins in
  let total_r = Builder.wire b "total_r" count_w in
  let idx = v pixel >>: c ~width:4 shift in
  let sat_inc current =
    mux2
      (current ==: cbv (Bitvec.ones count_w))
      current
      (current +: c ~width:count_w 1)
  in
  Builder.sync b "acquire"
    [
      if_
        (v reset |: v clear)
        (awrite_all mem bins count_w @ [ total_r <-- c ~width:count_w 0 ])
        [
          when_ (v pixel_valid)
            [
              awrite mem idx (sat_inc (aread mem idx));
              total_r <-- sat_inc (v total_r);
            ];
        ];
    ];
  Builder.comb b "read_port"
    [ rd_count <-- aread mem (v rd_idx); total <-- v total_r ];
  Builder.finish b
