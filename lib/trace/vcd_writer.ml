type vkind = Wire | Real

type id = { vid : string; vwidth : int; vkind : vkind }

type var = {
  var_id : id;
  var_name : string;
  var_scope : string option;
  var_initial : string option;
}

type t = {
  date : string;
  version : string;
  timescale : string;
  top : string;
  mutable vars : var list;  (* reverse registration order *)
  mutable next_id : int;
  changes : Buffer.t;
  mutable last_time : int;
}

let create ?(date = "osss simulation") ?(version = "osss-ocaml vcd writer")
    ?(timescale = "1ps") ?(top = "top") () =
  {
    date;
    version;
    timescale;
    top;
    vars = [];
    next_id = 0;
    changes = Buffer.create 4096;
    last_time = -1;
  }

(* Short printable identifiers drawn from the printable ASCII range. *)
let fresh_id t width kind =
  let n = t.next_id in
  t.next_id <- n + 1;
  let base = 94 and first = 33 in
  let rec build n acc =
    let c = Char.chr (first + (n mod base)) in
    let acc = String.make 1 c ^ acc in
    if n < base then acc else build ((n / base) - 1) acc
  in
  { vid = build n ""; vwidth = width; vkind = kind }

let add_var t ?scope ?initial ~name id =
  t.vars <-
    { var_id = id; var_name = name; var_scope = scope; var_initial = initial }
    :: t.vars;
  id

let register t ?scope ?initial ~name ~width () =
  add_var t ?scope ?initial ~name (fresh_id t width Wire)

(* %.16g round-trips every double; readers (GTKWave, Surfer) parse the
   full "r<float>" change syntax of IEEE 1364. *)
let real_string v = Printf.sprintf "%.16g" v

let register_real t ?scope ?initial ~name () =
  let initial = Option.map real_string initial in
  add_var t ?scope ?initial ~name (fresh_id t 64 Real)

let emit_value buf id value =
  match id.vkind with
  | Real -> Buffer.add_string buf (Printf.sprintf "r%s %s\n" value id.vid)
  | Wire ->
      if id.vwidth = 1 then Buffer.add_string buf (value ^ id.vid ^ "\n")
      else Buffer.add_string buf (Printf.sprintf "b%s %s\n" value id.vid)

exception Non_monotonic_time of { last : int; got : int }

let () =
  Printexc.register_printer (function
    | Non_monotonic_time { last; got } ->
        Some
          (Printf.sprintf
             "Vcd_writer.Non_monotonic_time: change at #%d after #%d was \
              already emitted (timestamps must not decrease)"
             got last)
    | _ -> None)

let stamp t ~time =
  if time < t.last_time then
    raise (Non_monotonic_time { last = t.last_time; got = time });
  if time <> t.last_time then begin
    Buffer.add_string t.changes (Printf.sprintf "#%d\n" time);
    t.last_time <- time
  end

let change t ~time id value =
  if id.vkind = Real then
    invalid_arg "Vcd_writer.change: real-valued signal (use change_real)";
  stamp t ~time;
  emit_value t.changes id value

let change_bv t ~time id bv = change t ~time id (Bitvec.to_binary_string bv)

let change_real t ~time id v =
  if id.vkind <> Real then
    invalid_arg "Vcd_writer.change_real: bit-vector signal (use change)";
  stamp t ~time;
  emit_value t.changes id (real_string v)

let signal_count t = List.length t.vars

let declare buf v =
  let kind = match v.var_id.vkind with Wire -> "wire" | Real -> "real" in
  Buffer.add_string buf
    (Printf.sprintf "$var %s %d %s %s $end\n" kind v.var_id.vwidth
       v.var_id.vid v.var_name)

let contents t =
  let b = Buffer.create (Buffer.length t.changes + 1024) in
  Buffer.add_string b (Printf.sprintf "$date\n  %s\n$end\n" t.date);
  Buffer.add_string b (Printf.sprintf "$version\n  %s\n$end\n" t.version);
  Buffer.add_string b (Printf.sprintf "$timescale %s $end\n" t.timescale);
  Buffer.add_string b (Printf.sprintf "$scope module %s $end\n" t.top);
  let vars = List.rev t.vars in
  (* Root-scope signals first, then scope strings as dot-separated
     hierarchical paths: "a.b" nests scope [b] inside scope [a].  Scopes
     open in first-registration order at each level. *)
  List.iter (fun v -> if v.var_scope = None then declare b v) vars;
  let path v =
    match v.var_scope with
    | None -> []
    | Some s -> String.split_on_char '.' s
  in
  let rec emit_level remaining =
    let here, deeper =
      List.partition (fun (p, _) -> p = []) remaining
    in
    List.iter (fun (_, v) -> declare b v) here;
    let children =
      List.fold_left
        (fun acc (p, _) ->
          match p with
          | c :: _ when not (List.mem c acc) -> c :: acc
          | _ -> acc)
        [] deeper
      |> List.rev
    in
    List.iter
      (fun c ->
        Buffer.add_string b (Printf.sprintf "$scope module %s $end\n" c);
        emit_level
          (List.filter_map
             (fun (p, v) ->
               match p with
               | c' :: rest when c' = c -> Some (rest, v)
               | _ -> None)
             deeper);
        Buffer.add_string b "$upscope $end\n")
      children
  in
  emit_level
    (List.filter_map
       (fun v -> if v.var_scope = None then None else Some (path v, v))
       vars);
  Buffer.add_string b "$upscope $end\n$enddefinitions $end\n";
  if List.exists (fun v -> v.var_initial <> None) vars then begin
    Buffer.add_string b "$dumpvars\n";
    List.iter
      (fun v ->
        match v.var_initial with
        | Some init -> emit_value b v.var_id init
        | None -> ())
      vars;
    Buffer.add_string b "$end\n"
  end;
  Buffer.add_buffer b t.changes;
  Buffer.contents b

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (contents t))
