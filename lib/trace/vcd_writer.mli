(** Shared value-change-dump document builder.

    One VCD writer backs every trace front end in the repository — the
    kernel-level [Sim.Vcd], the RTL-level [Hdl.Rtl_trace] and the
    engine-level [Engine.Trace] — so all abstraction levels produce
    the same document structure and can be diffed in one waveform
    viewer.  The writer knows nothing about simulators: callers
    register signals (optionally grouped into sub-scopes), then report
    value changes against a monotonically non-decreasing timestamp. *)

type t

type id
(** Handle for a registered signal. *)

exception Non_monotonic_time of { last : int; got : int }
(** Raised by {!change} when a timestamp precedes one already emitted;
    VCD change sections are strictly append-only in time. *)

val create :
  ?date:string -> ?version:string -> ?timescale:string -> ?top:string ->
  unit -> t
(** [timescale] defaults to ["1ps"], [top] (the root scope name) to
    ["top"]. *)

val register : t -> ?scope:string -> ?initial:string -> name:string ->
  width:int -> unit -> id
(** Declare a signal.  [scope] nests it in a sub-scope of the root;
    dots in the scope string open nested scopes (["cpu.alu"] declares
    the signal inside scope [alu] within scope [cpu]), and signals
    sharing a [scope] string share the sub-scope.  [initial]
    is a binary value emitted in a [$dumpvars] section (the section is
    present iff at least one signal registered an initial value). *)

val register_real : t -> ?scope:string -> ?initial:float -> name:string ->
  unit -> id
(** Declare a real-valued (analog) signal — [$var real 64] in the
    header, [r<float>] value changes — e.g. a power waveform next to
    the digital nets.  [scope] nests exactly like {!register}. *)

val change : t -> time:int -> id -> string -> unit
(** Record a value change (binary string, no ["b"] prefix) at [time].
    Raises {!Non_monotonic_time} if [time] decreases across calls, and
    [Invalid_argument] on a signal registered with {!register_real}. *)

val change_bv : t -> time:int -> id -> Bitvec.t -> unit

val change_real : t -> time:int -> id -> float -> unit
(** Record a real value change at [time]; same monotonic-time rule as
    {!change}.  Raises [Invalid_argument] on a bit-vector signal. *)

val signal_count : t -> int

val contents : t -> string
(** The full VCD document: header, scoped declarations, optional
    [$dumpvars], then all recorded changes. *)

val save : t -> string -> unit
