(* Unit and property tests for the Bitvec substrate. *)

let bv = Bitvec.of_int

let check_bv msg expected actual =
  Alcotest.(check string) msg (Bitvec.to_string expected) (Bitvec.to_string actual)

(* ------------------------- unit tests ------------------------- *)

let test_construction () =
  Alcotest.(check int) "width" 8 (Bitvec.width (bv ~width:8 0));
  Alcotest.(check int) "of_int value" 42 (Bitvec.to_int (bv ~width:8 42));
  Alcotest.(check int) "wrap" 0 (Bitvec.to_int (bv ~width:8 256));
  Alcotest.(check int) "negative wraps" 0xff (Bitvec.to_int (bv ~width:8 (-1)));
  Alcotest.(check bool) "zero is_zero" true (Bitvec.is_zero (Bitvec.zero 70));
  Alcotest.(check bool) "ones is_ones" true (Bitvec.is_ones (Bitvec.ones 70));
  Alcotest.(check int) "popcount ones" 70 (Bitvec.popcount (Bitvec.ones 70))

let test_of_string () =
  Alcotest.(check int) "binary" 0b0101 (Bitvec.to_int (Bitvec.of_string "0b0101"));
  Alcotest.(check int) "binary width" 4 (Bitvec.width (Bitvec.of_string "0b0101"));
  Alcotest.(check int) "underscores" 0b10101010
    (Bitvec.to_int (Bitvec.of_string "0b1010_1010"));
  Alcotest.(check int) "hex" 0x3fa (Bitvec.to_int (Bitvec.of_string "0x3fa"));
  Alcotest.(check int) "hex explicit width" 12
    (Bitvec.width (Bitvec.of_string "0x3fa:12"));
  Alcotest.check_raises "bad literal" (Bitvec.Invalid_bitvec "of_string: bad digit 2")
    (fun () -> ignore (Bitvec.of_string "0b012"))

let test_roundtrip_strings () =
  let v = Bitvec.of_string "0b1011001" in
  Alcotest.(check string) "binary string" "1011001" (Bitvec.to_binary_string v);
  Alcotest.(check string) "hex string" "59" (Bitvec.to_hex_string v);
  Alcotest.(check string) "to_string" "7'h59" (Bitvec.to_string v)

let test_slice_concat () =
  let v = bv ~width:8 0xA5 in
  Alcotest.(check int) "slice hi" 0xA (Bitvec.to_int (Bitvec.slice v ~hi:7 ~lo:4));
  Alcotest.(check int) "slice lo" 0x5 (Bitvec.to_int (Bitvec.slice v ~hi:3 ~lo:0));
  check_bv "concat restores"
    v
    (Bitvec.concat (Bitvec.slice v ~hi:7 ~lo:4) (Bitvec.slice v ~hi:3 ~lo:0));
  let r = Bitvec.repeat (bv ~width:2 0b10) 3 in
  Alcotest.(check int) "repeat" 0b101010 (Bitvec.to_int r);
  check_bv "set_slice"
    (bv ~width:8 0xAF)
    (Bitvec.set_slice v ~lo:0 (bv ~width:4 0xF))

let test_arith () =
  let a = bv ~width:8 200 and b = bv ~width:8 100 in
  Alcotest.(check int) "add wraps" 44 (Bitvec.to_int (Bitvec.add a b));
  Alcotest.(check int) "sub" 100 (Bitvec.to_int (Bitvec.sub a b));
  Alcotest.(check int) "sub wraps" 156 (Bitvec.to_int (Bitvec.sub b a));
  Alcotest.(check int) "mul low bits" ((200 * 100) land 0xff)
    (Bitvec.to_int (Bitvec.mul a b));
  Alcotest.(check int) "mul_full" 20000 (Bitvec.to_int (Bitvec.mul_full a b));
  Alcotest.(check int) "neg" 56 (Bitvec.to_int (Bitvec.neg a));
  Alcotest.(check int) "udiv" 2 (Bitvec.to_int (Bitvec.udiv a b));
  Alcotest.(check int) "umod" 0 (Bitvec.to_int (Bitvec.umod a b));
  Alcotest.(check int) "umod2" 23 (Bitvec.to_int (Bitvec.umod (bv ~width:8 123) b));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bitvec.udiv a (Bitvec.zero 8)))

let test_wide_arith () =
  (* 100-bit arithmetic crosses limb boundaries. *)
  let one = Bitvec.of_int ~width:100 1 in
  let max = Bitvec.ones 100 in
  Alcotest.(check bool) "ones + 1 = 0" true (Bitvec.is_zero (Bitvec.add max one));
  Alcotest.(check bool) "0 - 1 = ones" true
    (Bitvec.is_ones (Bitvec.sub (Bitvec.zero 100) one));
  let x = Bitvec.shift_left one 64 in
  Alcotest.(check bool) "bit 64 set" true (Bitvec.get x 64);
  Alcotest.(check int) "popcount" 1 (Bitvec.popcount x)

let test_signed () =
  let m1 = bv ~width:8 (-1) and p1 = bv ~width:8 1 in
  Alcotest.(check int) "signed -1" (-1) (Bitvec.to_signed_int m1);
  Alcotest.(check bool) "slt" true (Bitvec.slt m1 p1);
  Alcotest.(check bool) "ult opposite" true (Bitvec.ult p1 m1);
  Alcotest.(check bool) "sle self" true (Bitvec.sle m1 m1);
  check_bv "sign extend" (bv ~width:12 (-1)) (Bitvec.sign_extend m1 12);
  check_bv "zero extend" (bv ~width:12 255) (Bitvec.zero_extend m1 12);
  Alcotest.(check int) "ashr" (-1)
    (Bitvec.to_signed_int (Bitvec.shift_right_arith m1 3));
  Alcotest.(check int) "lshr" 0x1f
    (Bitvec.to_int (Bitvec.shift_right_logical m1 3))

let test_logic_ops () =
  let a = bv ~width:8 0b11001100 and b = bv ~width:8 0b10101010 in
  Alcotest.(check int) "and" 0b10001000 (Bitvec.to_int (Bitvec.logand a b));
  Alcotest.(check int) "or" 0b11101110 (Bitvec.to_int (Bitvec.logor a b));
  Alcotest.(check int) "xor" 0b01100110 (Bitvec.to_int (Bitvec.logxor a b));
  Alcotest.(check int) "not" 0b00110011 (Bitvec.to_int (Bitvec.lognot a));
  Alcotest.(check bool) "reduce_or" true (Bitvec.reduce_or a);
  Alcotest.(check bool) "reduce_and" false (Bitvec.reduce_and a);
  Alcotest.(check bool) "reduce_xor" false (Bitvec.reduce_xor a);
  Alcotest.(check bool) "reduce_xor odd" true (Bitvec.reduce_xor (bv ~width:4 0b0111))

let test_width_mismatch () =
  Alcotest.check_raises "add mismatch"
    (Bitvec.Width_mismatch "add: widths 8 and 4") (fun () ->
      ignore (Bitvec.add (bv ~width:8 1) (bv ~width:4 1)))

(* ------------------------- properties ------------------------- *)

let gen_width = QCheck2.Gen.int_range 1 80

let gen_bv =
  QCheck2.Gen.(
    gen_width >>= fun w ->
    list_size (return w) bool >|= fun bits -> Bitvec.of_bits bits)

let gen_bv_pair =
  QCheck2.Gen.(
    gen_width >>= fun w ->
    let v = list_size (return w) bool >|= Bitvec.of_bits in
    pair v v)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

let props =
  [
    prop "add commutes" gen_bv_pair (fun (a, b) ->
        Bitvec.equal (Bitvec.add a b) (Bitvec.add b a));
    prop "a - a = 0" gen_bv (fun a -> Bitvec.is_zero (Bitvec.sub a a));
    prop "a + neg a = 0" gen_bv (fun a ->
        Bitvec.is_zero (Bitvec.add a (Bitvec.neg a)));
    prop "not involutive" gen_bv (fun a ->
        Bitvec.equal a (Bitvec.lognot (Bitvec.lognot a)));
    prop "slice/concat roundtrip" gen_bv (fun a ->
        let w = Bitvec.width a in
        if w < 2 then true
        else
          let k = w / 2 in
          Bitvec.equal a
            (Bitvec.concat
               (Bitvec.slice a ~hi:(w - 1) ~lo:k)
               (Bitvec.slice a ~hi:(k - 1) ~lo:0)));
    prop "to_bits/of_bits roundtrip" gen_bv (fun a ->
        Bitvec.equal a (Bitvec.of_bits (Bitvec.to_bits a)));
    prop "binary string roundtrip" gen_bv (fun a ->
        Bitvec.equal a (Bitvec.of_string ("0b" ^ Bitvec.to_binary_string a)));
    prop "compare_unsigned total order vs int" gen_bv_pair (fun (a, b) ->
        let wa = Bitvec.width a in
        if wa > 60 then true
        else
          compare (Bitvec.to_int a) (Bitvec.to_int b)
          = Bitvec.compare_unsigned a b);
    prop "divmod reconstruction" gen_bv_pair (fun (a, b) ->
        if Bitvec.is_zero b then true
        else
          let q = Bitvec.udiv a b and r = Bitvec.umod a b in
          Bitvec.ult r b && Bitvec.equal a (Bitvec.add (Bitvec.mul q b) r));
    prop "mul matches int semantics" gen_bv_pair (fun (a, b) ->
        let w = Bitvec.width a in
        if w > 30 then true
        else
          Bitvec.to_int (Bitvec.mul a b)
          = Bitvec.to_int a * Bitvec.to_int b land ((1 lsl w) - 1));
    prop "shift left then right" gen_bv (fun a ->
        let w = Bitvec.width a in
        let n = w / 3 in
        let masked =
          Bitvec.shift_right_logical (Bitvec.shift_left a n) n
        in
        let expected =
          if n = 0 then a
          else
            Bitvec.zero_extend
              (Bitvec.slice a ~hi:(w - 1 - n) ~lo:0)
              w
        in
        n >= w || Bitvec.equal masked expected);
  ]

(* ------------------------- four-state logic ------------------------- *)

module L = Bitvec.Logic

let test_logic_tables () =
  Alcotest.(check char) "and 0 x" '0' (L.to_char (L.and_ L.L0 L.X));
  Alcotest.(check char) "or 1 x" '1' (L.to_char (L.or_ L.L1 L.X));
  Alcotest.(check char) "and 1 x" 'x' (L.to_char (L.and_ L.L1 L.X));
  Alcotest.(check char) "xor x 1" 'x' (L.to_char (L.xor L.X L.L1));
  Alcotest.(check char) "not z" 'x' (L.to_char (L.not_ L.Z));
  Alcotest.(check char) "mux unknown sel same" '1'
    (L.to_char (L.mux ~sel:L.X L.L1 L.L1));
  Alcotest.(check char) "mux unknown sel diff" 'x'
    (L.to_char (L.mux ~sel:L.X L.L1 L.L0))

let test_logic_resolution () =
  Alcotest.(check char) "z loses" '1' (L.to_char (L.resolve L.Z L.L1));
  Alcotest.(check char) "conflict" 'x' (L.to_char (L.resolve L.L0 L.L1));
  Alcotest.(check char) "wired-and pullup" '1'
    (L.to_char (L.resolve_wired_and L.Z L.Z));
  Alcotest.(check char) "wired-and low wins" '0'
    (L.to_char (L.resolve_wired_and L.Z L.L0));
  Alcotest.(check char) "wired-and both low" '0'
    (L.to_char (L.resolve_wired_and L.L0 L.L0))

let test_int_fast_paths () =
  (* of_int/to_int take a word-level shortcut for vectors of at most two
     limbs; it must agree bit for bit with the general bit-by-bit
     construction across the width boundary cases (1, 32, 33, 62, 63,
     64, 70) and for negative (sign-replicated) inputs. *)
  let reference ~width n =
    Bitvec.init width (fun i ->
        if i > 62 then n < 0 else (n asr i) land 1 = 1)
  in
  let values =
    [ 0; 1; 2; 0xff; 0x12345678; max_int; min_int; -1; -2; -0x5544332211 ]
  in
  List.iter
    (fun width ->
      List.iter
        (fun n ->
          let got = Bitvec.of_int ~width n in
          check_bv (Printf.sprintf "of_int ~width:%d %d" width n)
            (reference ~width n) got;
          (* to_int must agree with an independent bit-by-bit readback
             wherever the unsigned value fits an OCaml int. *)
          if width <= 62 then begin
            let expected = ref 0 in
            for i = width - 1 downto 0 do
              expected :=
                (!expected lsl 1) lor (if Bitvec.get got i then 1 else 0)
            done;
            Alcotest.(check int)
              (Printf.sprintf "to_int readback w=%d n=%d" width n)
              !expected (Bitvec.to_int got)
          end)
        values)
    [ 1; 2; 7; 31; 32; 33; 61; 62; 63; 64; 70; 100 ]

let suite =
  [
    Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "of_string" `Quick test_of_string;
    Alcotest.test_case "string roundtrips" `Quick test_roundtrip_strings;
    Alcotest.test_case "slice/concat" `Quick test_slice_concat;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "wide arithmetic" `Quick test_wide_arith;
    Alcotest.test_case "signed ops" `Quick test_signed;
    Alcotest.test_case "logic ops" `Quick test_logic_ops;
    Alcotest.test_case "width mismatch" `Quick test_width_mismatch;
    Alcotest.test_case "logic tables" `Quick test_logic_tables;
    Alcotest.test_case "logic resolution" `Quick test_logic_resolution;
    Alcotest.test_case "int fast paths" `Quick test_int_fast_paths;
  ]
  @ props

let () = Alcotest.run "bitvec" [ ("bitvec", suite) ]
