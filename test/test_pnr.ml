(* Tests for technology mapping and place & route. *)

open Hdl
open Builder.Dsl
module T = Backend.Techmap
module P = Backend.Pnr

let small_design () =
  let b = Builder.create "small" in
  let reset = Builder.input b "reset" 1 in
  let x = Builder.input b "x" 4 in
  let y = Builder.output b "y" 4 in
  let acc = Builder.wire b "acc" 4 in
  Builder.sync b "f"
    [
      if_ (v reset)
        [ acc <-- c ~width:4 0 ]
        [ acc <-- (v acc +: v x) ];
    ];
  Builder.comb b "g" [ y <-- (v acc ^: v x) ];
  Builder.finish b

let test_map_reduces_cells () =
  let nl = Backend.Lower.lower (small_design ()) in
  let gates =
    List.length
      (List.filter (fun (c : Backend.Netlist.cell) -> c.kind <> Backend.Cell.Dff)
         (Backend.Netlist.cells nl))
  in
  let mapped = T.map nl in
  Alcotest.(check bool) "fewer LUTs than gates" true (T.lut_count mapped < gates);
  Alcotest.(check int) "flip-flops preserved" 4 (T.ff_count mapped);
  Alcotest.(check bool) "depth positive" true (T.depth mapped >= 1);
  (* every LUT respects K *)
  List.iter
    (fun (l : T.lut) ->
      Alcotest.(check bool) "support <= 4" true
        (Array.length l.T.lut_inputs <= 4))
    (T.luts mapped)

let test_map_is_equivalent () =
  List.iter
    (fun design ->
      let nl = Backend.Lower.lower design in
      let mapped = T.map nl in
      Alcotest.(check bool)
        ("mapping preserves " ^ design.Ir.mod_name)
        true
        (T.verify ~vectors:150 mapped))
    [
      small_design ();
      Expocu.Sync.rtl_module ();
      Expocu.Threshold.rtl_module ();
      Expocu.I2c.vhdl_module ();
    ]

let test_map_k_variants () =
  let nl = Backend.Lower.lower (Expocu.Sync.rtl_module ()) in
  let l2 = T.lut_count (T.map ~k:2 nl) in
  let l4 = T.lut_count (T.map ~k:4 nl) in
  let l6 = T.lut_count (T.map ~k:6 nl) in
  Alcotest.(check bool) "wider LUTs absorb more" true (l6 <= l4 && l4 <= l2);
  Alcotest.(check bool) "k out of range" true
    (try ignore (T.map ~k:9 nl); false with T.Map_error _ -> true)

let test_place_improves_wirelength () =
  let nl = Backend.Lower.lower (Expocu.I2c.vhdl_module ()) in
  let mapped = T.map nl in
  let placement = P.place ~seed:3 ~moves:30_000 mapped in
  let r = P.analyze placement in
  Alcotest.(check bool) "annealing reduced wirelength" true
    (r.P.wirelength < r.P.initial_wirelength);
  Alcotest.(check bool) "utilization sane" true
    (r.P.utilization > 0.1 && r.P.utilization <= 1.0);
  Alcotest.(check bool) "post-layout slower than pure logic" true
    (r.P.critical_ns > float_of_int r.P.lut_levels *. P.lut_delay_ns)

let test_pnr_determinism () =
  let nl = Backend.Lower.lower (Expocu.Sync.rtl_module ()) in
  let run () = (P.analyze (P.place ~seed:5 ~moves:5_000 (T.map nl))).P.wirelength in
  Alcotest.(check (float 1e-9)) "same seed, same placement" (run ()) (run ())

let test_full_flow_to_layout () =
  (* ExpoCU end to end: gates -> LUTs -> placement -> fmax *)
  let nl =
    Backend.Opt.optimize (Backend.Lower.lower (Expocu.Expocu_top.rtl_top ()))
  in
  let mapped = T.map nl in
  Alcotest.(check bool) "chip maps" true (T.lut_count mapped > 300);
  let placement = P.place ~seed:11 ~moves:20_000 mapped in
  let r = P.analyze placement in
  Alcotest.(check bool) "fmax finite" true (r.P.fmax_mhz > 1.0);
  Alcotest.(check bool) "grid fits" true (fst r.P.grid > 10)

let suite =
  [
    Alcotest.test_case "map reduces cells" `Quick test_map_reduces_cells;
    Alcotest.test_case "map is equivalent" `Quick test_map_is_equivalent;
    Alcotest.test_case "map k variants" `Quick test_map_k_variants;
    Alcotest.test_case "place improves wirelength" `Quick
      test_place_improves_wirelength;
    Alcotest.test_case "pnr determinism" `Quick test_pnr_determinism;
    Alcotest.test_case "full flow to layout" `Quick test_full_flow_to_layout;
  ]

let () = Alcotest.run "pnr" [ ("pnr", suite) ]
