(* Tests for the BDD package and the formal combinational equivalence
   checker. *)

open Hdl
open Builder.Dsl
module B = Backend.Bdd
module C = Backend.Cec

(* ---------------- BDD basics ---------------- *)

let test_bdd_basics () =
  let m = B.create () in
  let x = B.var m 0 and y = B.var m 1 in
  Alcotest.(check bool) "canonical and" true
    (B.and_ m x y = B.and_ m y x);
  Alcotest.(check bool) "x and not x" true (B.and_ m x (B.not_ m x) = B.zero);
  Alcotest.(check bool) "x or not x" true (B.or_ m x (B.not_ m x) = B.one);
  Alcotest.(check bool) "double negation" true (B.not_ m (B.not_ m x) = x);
  Alcotest.(check bool) "xor self" true (B.xor m x x = B.zero);
  (* de Morgan *)
  Alcotest.(check bool) "de morgan" true
    (B.not_ m (B.and_ m x y) = B.or_ m (B.not_ m x) (B.not_ m y))

let test_bdd_satisfying () =
  let m = B.create () in
  let x = B.var m 0 and y = B.var m 1 in
  Alcotest.(check bool) "unsat none" true (B.satisfying m B.zero = None);
  (match B.satisfying m (B.and_ m x (B.not_ m y)) with
  | Some assignment ->
      Alcotest.(check bool) "x true" true (List.assoc 0 assignment);
      Alcotest.(check bool) "y false" false (List.assoc 1 assignment)
  | None -> Alcotest.fail "expected satisfying assignment")

let test_bdd_size_limit () =
  let m = B.create ~max_nodes:64 () in
  Alcotest.(check bool) "limit raises" true
    (try
       (* parity of many variables grows linearly but crosses 64 nodes
          together with intermediate results *)
       let rec go i acc =
         if i > 60 then acc else go (i + 1) (B.xor m acc (B.var m i))
       in
       ignore (go 0 B.zero);
       false
     with B.Size_limit -> true)

(* BDD agrees with a truth-table evaluation on random 4-var functions. *)
let prop_bdd_truth_table =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"bdd matches truth table"
       QCheck2.Gen.(int_bound 65535)
       (fun table ->
         (* table encodes f : 4 vars -> bool *)
         let m = B.create () in
         (* Shannon-expand the table into a BDD *)
         let rec build level index_base width =
           if width = 1 then
             if table land (1 lsl index_base) <> 0 then B.one else B.zero
           else
             let half = width / 2 in
             let lo = build (level + 1) index_base half in
             let hi = build (level + 1) (index_base + half) half in
             B.ite m (B.var m level) hi lo
         in
         let f = build 0 0 16 in
         (* check all 16 assignments; variable 0 selects the top half *)
         List.for_all
           (fun k ->
             let expected = table land (1 lsl k) <> 0 in
             (* evaluate f at point k by conjoining with the minterm *)
             let lit level =
               let v = B.var m level in
               if k land (1 lsl (3 - level)) <> 0 then v else B.not_ m v
             in
             let point =
               List.fold_left (fun acc l -> B.and_ m acc (lit l)) B.one
                 [ 0; 1; 2; 3 ]
             in
             let hit = B.and_ m f point <> B.zero in
             hit = expected)
           (List.init 16 (fun k -> k))))

(* ---------------- equivalence checking ---------------- *)

let adder_a () =
  let b = Builder.create "add_a" in
  let x = Builder.input b "x" 8 in
  let y = Builder.input b "y" 8 in
  let s = Builder.output b "s" 8 in
  Builder.comb b "f" [ s <-- (v x +: v y) ];
  Builder.finish b

(* same function, written differently: a + b = (a xor b) + 2*(a and b) *)
let adder_b () =
  let b = Builder.create "add_b" in
  let x = Builder.input b "x" 8 in
  let y = Builder.input b "y" 8 in
  let s = Builder.output b "s" 8 in
  Builder.comb b "f"
    [ s <-- ((v x ^: v y) +: ((v x &: v y) <<: c ~width:4 1)) ];
  Builder.finish b

let broken_adder () =
  let b = Builder.create "add_broken" in
  let x = Builder.input b "x" 8 in
  let y = Builder.input b "y" 8 in
  let s = Builder.output b "s" 8 in
  (* bit 3 of y dropped *)
  Builder.comb b "f"
    [ s <-- (v x +: (v y &: c ~width:8 0b11110111)) ];
  Builder.finish b

let test_cec_proves_adders () =
  match C.check_ir (adder_a ()) (adder_b ()) with
  | C.Proved -> ()
  | v -> Alcotest.failf "%a" C.pp_verdict v

let test_cec_finds_bug () =
  match C.check_ir (adder_a ()) (broken_adder ()) with
  | C.Failed cex ->
      (* the counterexample must actually distinguish the designs *)
      let run design =
        let sim = Rtl_sim.create design in
        List.iter (fun (n, bv) -> Rtl_sim.set_input sim n bv) cex.C.inputs;
        Rtl_sim.settle sim;
        Rtl_sim.get_int sim "s"
      in
      Alcotest.(check bool) "cex distinguishes" true
        (run (adder_a ()) <> run (broken_adder ()))
  | v -> Alcotest.failf "expected Failed, got %a" C.pp_verdict v

let test_cec_interface_mismatch () =
  let other =
    let b = Builder.create "other" in
    let x = Builder.input b "x" 4 in
    let s = Builder.output b "s" 4 in
    Builder.comb b "f" [ s <-- v x ];
    Builder.finish b
  in
  match C.check_ir (adder_a ()) other with
  | C.Interface_mismatch _ -> ()
  | v -> Alcotest.failf "expected mismatch, got %a" C.pp_verdict v

let test_cec_sequential_sync_pair () =
  (* Formal proof of experiment E3/E8 for the sync stage: the OSSS and
     RTL designs have identical outputs AND next-state functions. *)
  match C.check_ir (Expocu.Sync.osss_module ()) (Expocu.Sync.rtl_module ()) with
  | C.Proved -> ()
  | v -> Alcotest.failf "%a" C.pp_verdict v

let test_cec_i2c_pair () =
  (* The OSSS and plain-SystemC I2C masters are formally equivalent. *)
  match
    C.check_ir (Expocu.I2c.osss_module ()) (Expocu.I2c.systemc_module ())
  with
  | C.Proved -> ()
  | v -> Alcotest.failf "%a" C.pp_verdict v

let test_cec_optimizer_preserves () =
  (* the optimizer must be a formal no-op on the I2C master, from the
     completely unfolded netlist to the optimized one *)
  let design = Expocu.I2c.vhdl_module () in
  let raw = Backend.Lower.lower ~fold:false design in
  let optimized = Backend.Opt.optimize raw in
  match C.check raw optimized with
  | C.Proved -> ()
  | v -> Alcotest.failf "%a" C.pp_verdict v

let test_cec_too_large_on_multiplier () =
  (* 16x16 multiplication has exponential BDDs: must abort cleanly. *)
  let m1 = Expocu.Vhdl_ip.mult16_module () in
  match C.check ~max_nodes:50_000 (Backend.Lower.lower m1) (Backend.Lower.lower m1) with
  | C.Proved -> () (* same netlist: BDDs shared, may still prove *)
  | C.Too_large -> ()
  | v -> Alcotest.failf "unexpected %a" C.pp_verdict v

let test_cec_mult_vs_ir_mul () =
  (* narrow multiplier: IP style vs behavioural "*" — provable. *)
  let ip =
    let b = Builder.create "mul6_ip" in
    let x = Builder.input b "x" 6 in
    let y = Builder.input b "y" 6 in
    let p = Builder.output b "p" 12 in
    let row i acc =
      let partial =
        mux2 (bit (v y) i)
          (zext (v x) 12 <<: c ~width:3 i)
          (c ~width:12 0)
      in
      acc +: partial
    in
    let rec accumulate i acc = if i = 6 then acc else accumulate (i + 1) (row i acc) in
    Builder.comb b "f" [ p <-- accumulate 0 (c ~width:12 0) ];
    Builder.finish b
  in
  let direct =
    let b = Builder.create "mul6_direct" in
    let x = Builder.input b "x" 6 in
    let y = Builder.input b "y" 6 in
    let p = Builder.output b "p" 12 in
    Builder.comb b "f" [ p <-- (zext (v x) 12 *: zext (v y) 12) ];
    Builder.finish b
  in
  match C.check_ir ~max_nodes:500_000 ip direct with
  | C.Proved -> ()
  | v -> Alcotest.failf "%a" C.pp_verdict v

let suite =
  [
    Alcotest.test_case "bdd basics" `Quick test_bdd_basics;
    Alcotest.test_case "bdd satisfying" `Quick test_bdd_satisfying;
    Alcotest.test_case "bdd size limit" `Quick test_bdd_size_limit;
    prop_bdd_truth_table;
    Alcotest.test_case "cec proves adders" `Quick test_cec_proves_adders;
    Alcotest.test_case "cec finds bug" `Quick test_cec_finds_bug;
    Alcotest.test_case "cec interface mismatch" `Quick
      test_cec_interface_mismatch;
    Alcotest.test_case "cec sync pair (E3, formal)" `Quick
      test_cec_sequential_sync_pair;
    Alcotest.test_case "cec i2c pair (formal)" `Quick test_cec_i2c_pair;
    Alcotest.test_case "cec optimizer preserves" `Quick
      test_cec_optimizer_preserves;
    Alcotest.test_case "cec multiplier abort" `Quick
      test_cec_too_large_on_multiplier;
    Alcotest.test_case "cec mult vs ir mul" `Quick test_cec_mult_vs_ir_mul;
  ]

let () = Alcotest.run "cec" [ ("cec", suite) ]
