(* Tests for §9 debugging support: RTL waveform tracing, object field
   tracing (sc_trace), object printing (operator <<) and whole-object
   comparison (operator ==). *)

open Hdl
module CD = Osss.Class_def
module OI = Osss.Object_inst

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let counter_class =
  CD.declare ~name:"TraceCounter"
    [ CD.field "count" 8; CD.field "overflowed" 1 ]
    [
      CD.proc_method ~name:"Tick" ~params:[] (fun ctx ->
          let maxed =
            Ir.Binop (Ir.Eq, ctx.CD.get "count", Ir.Const (Bitvec.ones 8))
          in
          [
            Ir.If
              ( maxed,
                [ ctx.CD.set "overflowed" (Ir.Const (Bitvec.of_bool true)) ],
                [] );
            ctx.CD.set "count"
              (Ir.Binop
                 (Ir.Add, ctx.CD.get "count", Ir.Const (Bitvec.of_int ~width:8 1)));
          ]);
    ]

(* Module with one object and its ports, shared by the tests. *)
let build () =
  let b = Builder.create "trace_demo" in
  let reset = Builder.input b "reset" 1 in
  let out = Builder.output b "out" 8 in
  let obj = OI.instantiate b ~name:"cnt" counter_class in
  Builder.sync b "drive"
    [
      Ir.If (Ir.Var reset, [ OI.construct obj ], OI.call obj "Tick" []);
      Ir.Assign (out, OI.field_expr obj "count");
    ];
  (Builder.finish b, obj)

let test_rtl_trace_vcd () =
  let design, _ = build () in
  let sim = Rtl_sim.create design in
  let tr = Rtl_trace.create sim ~top:"demo" () in
  Rtl_trace.port tr "out";
  Rtl_trace.port tr "reset";
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_trace.step tr;
  Rtl_sim.set_input_int sim "reset" 0;
  Rtl_trace.run tr 5;
  let doc = Rtl_trace.contents tr in
  Alcotest.(check int) "two channels" 2 (Rtl_trace.signal_count tr);
  Alcotest.(check bool) "var decl" true (contains "$var wire 8" doc);
  Alcotest.(check bool) "count reached 5" true (contains "b00000101" doc);
  Alcotest.(check bool) "cycle timestamps" true (contains "#6" doc)

let test_object_tracing () =
  let design, obj = build () in
  let sim = Rtl_sim.create design in
  let tr = Rtl_trace.create sim () in
  Osss.Trace.trace_object tr obj;
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_trace.step tr;
  Rtl_sim.set_input_int sim "reset" 0;
  Rtl_trace.run tr 3;
  let doc = Rtl_trace.contents tr in
  (* one channel per field, named like Figure 9's sc_trace *)
  Alcotest.(check int) "one channel per field" 2 (Rtl_trace.signal_count tr);
  Alcotest.(check bool) "count channel" true (contains "cnt.count" doc);
  Alcotest.(check bool) "overflow channel" true (contains "cnt.overflowed" doc)

let test_show () =
  let design, obj = build () in
  let sim = Rtl_sim.create design in
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  Rtl_sim.run sim 3;
  let text = Osss.Trace.show obj sim in
  Alcotest.(check string) "operator<< view"
    "TraceCounter{count=8'h03, overflowed=1'h0}" text

let test_peek_field () =
  let design, obj = build () in
  let sim = Rtl_sim.create design in
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  Rtl_sim.run sim 300;
  Alcotest.(check int) "count field" (300 mod 256)
    (Bitvec.to_int (OI.peek_field obj sim "count"));
  Alcotest.(check int) "overflow flag set" 1
    (Bitvec.to_int (OI.peek_field obj sim "overflowed"))

let test_equals_operator () =
  (* Two counters, one enabled later: equals goes false then true. *)
  let b = Builder.create "pair" in
  let reset = Builder.input b "reset" 1 in
  let en2 = Builder.input b "en2" 1 in
  let same = Builder.output b "same" 1 in
  let o1 = OI.instantiate b ~name:"c1" counter_class in
  let o2 = OI.instantiate b ~name:"c2" counter_class in
  Builder.sync b "drive"
    [
      Ir.If
        ( Ir.Var reset,
          [ OI.construct o1; OI.construct o2 ],
          OI.call o1 "Tick" []
          @ [ Ir.If (Ir.Var en2, OI.call o2 "Tick" [], []) ] );
      Ir.Assign (same, OI.equals o1 o2);
    ];
  let sim = Rtl_sim.create (Builder.finish b) in
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  Rtl_sim.set_input_int sim "en2" 0;
  Rtl_sim.step sim;
  Alcotest.(check int) "diverged" 0 (Rtl_sim.get_int sim "same");
  (* let c2 catch up: enable only c2? it ticks both... freeze c1 is not
     possible in this design, so instead check they stay different *)
  Rtl_sim.set_input_int sim "en2" 1;
  Rtl_sim.run sim 5;
  Alcotest.(check int) "still offset by one" 0 (Rtl_sim.get_int sim "same")

let test_equals_rejects_mixed_classes () =
  let other = CD.declare ~name:"Other" [ CD.field "x" 9 ] [] in
  let b = Builder.create "mixed" in
  let o1 = OI.instantiate b ~name:"a" counter_class in
  let o2 = OI.instantiate b ~name:"b" other in
  Alcotest.(check bool) "raises" true
    (try ignore (OI.equals o1 o2); false with OI.Call_error _ -> true)

let test_emit_trace_support () =
  let text = Osss.Trace.emit_trace_support counter_class in
  Alcotest.(check bool) "ifndef SYNTHESIS" true
    (contains "#ifndef SYNTHESIS" text);
  Alcotest.(check bool) "operator<<" true (contains "operator <<" text);
  Alcotest.(check bool) "sc_trace per field" true
    (contains "ObjectName + \".count\"" text);
  Alcotest.(check bool) "friend note" true (contains "friend void sc_trace" text)

(* ------------------------------------------------------------------ *)
(* Vcd_writer: identifier allocation and timestamp discipline          *)

(* The VCD identifier alphabet has 94 printable characters; designs
   with more signals need multi-character ids, and every id must stay
   unique or viewers silently merge waveforms. *)
let test_vcd_many_signals () =
  let w = Vcd_writer.create () in
  let n = 200 in
  let ids =
    Array.init n (fun i ->
        Vcd_writer.register w ~name:(Printf.sprintf "sig%03d" i) ~width:1 ())
  in
  Array.iteri
    (fun i id -> Vcd_writer.change w ~time:i id (if i land 1 = 0 then "1" else "0"))
    ids;
  Alcotest.(check int) "all registered" n (Vcd_writer.signal_count w);
  let doc = Vcd_writer.contents w in
  (* Parse the $var declarations back out and check id uniqueness. *)
  let var_ids =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' (String.trim line) with
        | "$var" :: "wire" :: _width :: id :: _rest -> Some id
        | _ -> None)
      (String.split_on_char '\n' doc)
  in
  Alcotest.(check int) "one $var per signal" n (List.length var_ids);
  let sorted = List.sort_uniq compare var_ids in
  Alcotest.(check int) "ids all distinct" n (List.length sorted);
  Alcotest.(check bool) "multi-char ids appear past 94 signals" true
    (List.exists (fun id -> String.length id > 1) var_ids)

let test_vcd_non_monotonic_time () =
  let w = Vcd_writer.create () in
  let id = Vcd_writer.register w ~name:"s" ~width:1 () in
  Vcd_writer.change w ~time:5 id "1";
  Vcd_writer.change w ~time:5 id "0";
  (* same timestamp is fine *)
  Vcd_writer.change w ~time:9 id "1";
  (match Vcd_writer.change w ~time:3 id "0" with
  | () -> Alcotest.fail "rewinding time must raise"
  | exception Vcd_writer.Non_monotonic_time { last; got } ->
      Alcotest.(check int) "last emitted" 9 last;
      Alcotest.(check int) "offending time" 3 got);
  (* the error prints a clear message *)
  Alcotest.(check bool) "printer registered" true
    (contains "Non_monotonic_time"
       (Printexc.to_string
          (Vcd_writer.Non_monotonic_time { last = 9; got = 3 })));
  (* document is still usable after the failed call *)
  Vcd_writer.change w ~time:10 id "0";
  Alcotest.(check bool) "later change accepted" true
    (contains "#10" (Vcd_writer.contents w))

(* Real-valued variables ($var real): declaration syntax, r-prefixed
   change records, and the kind split between change and change_real. *)
let test_vcd_real_var () =
  let w = Vcd_writer.create ~timescale:"1ns" () in
  let p = Vcd_writer.register_real w ~initial:0.0 ~name:"power_mw" () in
  let wire = Vcd_writer.register w ~name:"clk" ~width:1 () in
  Vcd_writer.change_real w ~time:0 p 1.25;
  Vcd_writer.change w ~time:0 wire "1";
  Vcd_writer.change_real w ~time:64 p 0.0625;
  let doc = Vcd_writer.contents w in
  Alcotest.(check bool) "real declaration" true
    (contains "$var real 64" doc);
  Alcotest.(check bool) "wire declaration intact" true
    (contains "$var wire 1" doc);
  Alcotest.(check bool) "r-prefixed change" true (contains "r1.25 " doc);
  Alcotest.(check bool) "second sample" true (contains "r0.0625 " doc);
  (* dumpvars carries the initial real value *)
  Alcotest.(check bool) "initial in dumpvars" true (contains "r0 " doc)

let test_vcd_real_kind_mismatch () =
  let w = Vcd_writer.create () in
  let p = Vcd_writer.register_real w ~name:"p" () in
  let s = Vcd_writer.register w ~name:"s" ~width:4 () in
  Alcotest.check_raises "change on a real id"
    (Invalid_argument "Vcd_writer.change: real-valued signal (use change_real)")
    (fun () -> Vcd_writer.change w ~time:0 p "1010");
  Alcotest.check_raises "change_real on a wire id"
    (Invalid_argument "Vcd_writer.change_real: bit-vector signal (use change)")
    (fun () -> Vcd_writer.change_real w ~time:0 s 1.0)

let test_vcd_real_non_monotonic () =
  (* Real changes share the timestamp discipline with wire changes. *)
  let w = Vcd_writer.create () in
  let p = Vcd_writer.register_real w ~name:"p" () in
  Vcd_writer.change_real w ~time:7 p 0.5;
  (match Vcd_writer.change_real w ~time:2 p 0.25 with
  | () -> Alcotest.fail "rewinding time must raise"
  | exception Vcd_writer.Non_monotonic_time { last; got } ->
      Alcotest.(check int) "last emitted" 7 last;
      Alcotest.(check int) "offending time" 2 got);
  Vcd_writer.change_real w ~time:7 p 0.75 (* same time stays legal *)

let test_vcd_real_nested_scope () =
  let w = Vcd_writer.create ~top:"power" () in
  let a = Vcd_writer.register_real w ~scope:"u_top.u_hist" ~name:"mw" () in
  Vcd_writer.change_real w ~time:1 a 3.5;
  let doc = Vcd_writer.contents w in
  (* dotted scope paths become nested $scope blocks *)
  Alcotest.(check bool) "outer scope" true
    (contains "$scope module u_top $end" doc);
  Alcotest.(check bool) "inner scope" true
    (contains "$scope module u_hist $end" doc);
  Alcotest.(check bool) "real var in scope" true
    (contains "$var real 64" doc)

let suite =
  [
    Alcotest.test_case "rtl trace vcd" `Quick test_rtl_trace_vcd;
    Alcotest.test_case "vcd id allocation past 94" `Quick test_vcd_many_signals;
    Alcotest.test_case "vcd non-monotonic time" `Quick
      test_vcd_non_monotonic_time;
    Alcotest.test_case "vcd real var" `Quick test_vcd_real_var;
    Alcotest.test_case "vcd real kind mismatch" `Quick
      test_vcd_real_kind_mismatch;
    Alcotest.test_case "vcd real non-monotonic time" `Quick
      test_vcd_real_non_monotonic;
    Alcotest.test_case "vcd real nested scope" `Quick
      test_vcd_real_nested_scope;
    Alcotest.test_case "object tracing" `Quick test_object_tracing;
    Alcotest.test_case "operator<< show" `Quick test_show;
    Alcotest.test_case "peek field" `Quick test_peek_field;
    Alcotest.test_case "operator== compare" `Quick test_equals_operator;
    Alcotest.test_case "operator== class check" `Quick
      test_equals_rejects_mixed_classes;
    Alcotest.test_case "emit trace support" `Quick test_emit_trace_support;
  ]

let () = Alcotest.run "trace" [ ("trace", suite) ]
