(* Tests for the netlist back end: gate builders, lowering, gate-level
   simulation, timing/area analysis, optimization, equivalence. *)

open Hdl
open Builder.Dsl
module N = Backend.Netlist

let test_builder_folding () =
  let nl = N.create ~name:"t" () in
  let a = N.add_input nl "a" 1 in
  let one = N.const1 nl in
  let zero = N.const0 nl in
  Alcotest.(check int) "and with 1 is identity" a.(0)
    (N.and2 nl a.(0) one);
  Alcotest.(check int) "and with 0 is 0" zero (N.and2 nl a.(0) zero);
  Alcotest.(check int) "xor self is 0" zero (N.xor2 nl a.(0) a.(0));
  let n1 = N.not_ nl a.(0) in
  Alcotest.(check int) "double negation cancels" a.(0) (N.not_ nl n1);
  let g1 = N.and2 nl a.(0) n1 and g2 = N.and2 nl n1 a.(0) in
  Alcotest.(check int) "structural hashing commutes" g1 g2;
  Alcotest.(check int) "mux with equal arms" a.(0)
    (N.mux2 nl ~sel:one a.(0) a.(0))

let test_builder_no_folding () =
  let nl = N.create ~fold:false ~name:"t" () in
  let a = N.add_input nl "a" 1 in
  let g1 = N.and2 nl a.(0) a.(0) and g2 = N.and2 nl a.(0) a.(0) in
  Alcotest.(check bool) "duplicates kept" true (g1 <> g2)

(* Reference designs reused below. *)
let alu_design () =
  let b = Builder.create "mini_alu" in
  let op = Builder.input b "op" 2 in
  let a = Builder.input b "a" 8 in
  let x = Builder.input b "x" 8 in
  let y = Builder.output b "y" 8 in
  Builder.comb b "alu"
    [
      case (v op)
        [
          (0, [ y <-- (v a +: v x) ]);
          (1, [ y <-- (v a -: v x) ]);
          (2, [ y <-- (v a &: v x) ]);
        ]
        [ y <-- (v a ^: v x) ];
    ];
  Builder.finish b

let counter_design () =
  let b = Builder.create "counter" in
  let reset = Builder.input b "reset" 1 in
  let count = Builder.output b "count" 8 in
  Builder.sync b "tick"
    [
      if_ (v reset)
        [ count <-- c ~width:8 0 ]
        [ count <-- (v count +: c ~width:8 1) ];
    ];
  Builder.finish b

let mul_design () =
  let b = Builder.create "mult" in
  let a = Builder.input b "a" 8 in
  let x = Builder.input b "x" 8 in
  let p = Builder.output b "p" 16 in
  Builder.comb b "mul" [ p <-- (zext (v a) 16 *: zext (v x) 16) ];
  Builder.finish b

let test_lower_and_simulate_alu () =
  let nl = Backend.Lower.lower (alu_design ()) in
  let sim = Backend.Nl_sim.create nl in
  let expect op a x value =
    Backend.Nl_sim.set_input_int sim "op" op;
    Backend.Nl_sim.set_input_int sim "a" a;
    Backend.Nl_sim.set_input_int sim "x" x;
    Backend.Nl_sim.settle sim;
    Alcotest.(check int)
      (Printf.sprintf "op=%d a=%d x=%d" op a x)
      value
      (Backend.Nl_sim.get_output_int sim "y")
  in
  expect 0 200 100 44;
  expect 1 100 30 70;
  expect 2 0xCC 0xAA 0x88;
  expect 3 0xCC 0xAA 0x66

let test_lower_counter () =
  let nl = Backend.Lower.lower (counter_design ()) in
  let sim = Backend.Nl_sim.create nl in
  Backend.Nl_sim.set_input_int sim "reset" 1;
  Backend.Nl_sim.step sim;
  Backend.Nl_sim.set_input_int sim "reset" 0;
  Backend.Nl_sim.run sim 5;
  Alcotest.(check int) "counted to 5" 5
    (Backend.Nl_sim.get_output_int sim "count")

let test_equivalence_random () =
  List.iter
    (fun design ->
      let nl = Backend.Lower.lower design in
      match Backend.Equiv.ir_vs_netlist ~cycles:300 design nl with
      | Ok n -> Alcotest.(check int) "cycles compared" 300 n
      | Error m ->
          Alcotest.failf "%s: %a" design.Ir.mod_name Backend.Equiv.pp_divergence
            m)
    [ alu_design (); counter_design (); mul_design () ]

let test_equivalence_unfolded () =
  (* Disabling construction-time folding must not change behaviour. *)
  let design = alu_design () in
  let nl = Backend.Lower.lower ~fold:false design in
  match Backend.Equiv.ir_vs_netlist ~cycles:200 design nl with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

let test_memory_lowering () =
  let b = Builder.create "regfile" in
  let we = Builder.input b "we" 1 in
  let waddr = Builder.input b "waddr" 2 in
  let wdata = Builder.input b "wdata" 4 in
  let raddr = Builder.input b "raddr" 2 in
  let rdata = Builder.output b "rdata" 4 in
  let mem = Builder.memory b "mem" ~width:4 ~depth:4 in
  Builder.sync b "write" [ when_ (v we) [ awrite mem (v waddr) (v wdata) ] ];
  Builder.comb b "read" [ rdata <-- aread mem (v raddr) ];
  let design = Builder.finish b in
  let nl = Backend.Lower.lower design in
  (match Backend.Equiv.ir_vs_netlist ~cycles:400 design nl with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m);
  let area = Backend.Area.analyze nl in
  Alcotest.(check int) "16 state bits" 16 area.Backend.Area.n_ffs

let test_barrel_shifter () =
  let b = Builder.create "shifter" in
  let a = Builder.input b "a" 8 in
  let amount = Builder.input b "amount" 4 in
  let left = Builder.output b "left" 8 in
  let right = Builder.output b "right" 8 in
  Builder.comb b "shift"
    [ left <-- (v a <<: v amount); right <-- (v a >>: v amount) ];
  let design = Builder.finish b in
  let nl = Backend.Lower.lower design in
  match Backend.Equiv.ir_vs_netlist ~cycles:300 design nl with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

let test_signed_compare_lowering () =
  let b = Builder.create "signed_cmp" in
  let a = Builder.input b "a" 6 in
  let x = Builder.input b "x" 6 in
  let lt = Builder.output b "lt" 1 in
  let le = Builder.output b "le" 1 in
  Builder.comb b "cmp"
    [
      lt <-- Ir.Binop (Ir.Slt, v a, v x);
      le <-- Ir.Binop (Ir.Sle, v a, v x);
    ];
  let design = Builder.finish b in
  let nl = Backend.Lower.lower design in
  match Backend.Equiv.ir_vs_netlist ~cycles:500 design nl with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

let test_timing_analysis () =
  let nl = Backend.Lower.lower (mul_design ()) in
  let report = Backend.Timing.analyze nl in
  Alcotest.(check bool) "positive delay" true
    (report.Backend.Timing.critical_ns > 0.5);
  Alcotest.(check bool) "levels counted" true (report.Backend.Timing.levels > 5);
  let small = Backend.Lower.lower (counter_design ()) in
  let small_report = Backend.Timing.analyze small in
  Alcotest.(check bool) "mult slower than counter" true
    (report.Backend.Timing.critical_ns
    > small_report.Backend.Timing.critical_ns)

let test_area_analysis () =
  let nl = Backend.Lower.lower (counter_design ()) in
  let report = Backend.Area.analyze nl in
  Alcotest.(check int) "8 flip-flops" 8 report.Backend.Area.n_ffs;
  Alcotest.(check bool) "total includes comb" true
    (report.Backend.Area.total > report.Backend.Area.sequential)

let test_optimize_removes_dead_logic () =
  let b = Builder.create "deadwood" in
  let a = Builder.input b "a" 8 in
  let out = Builder.output b "out" 8 in
  let unused = Builder.wire b "unused" 8 in
  Builder.comb b "dead" [ unused <-- (v a *: v a) ];
  Builder.comb b "live" [ out <-- (v a +: c ~width:8 1) ];
  let design = Builder.finish b in
  let nl = Backend.Lower.lower ~fold:false design in
  let optimized = Backend.Opt.optimize nl in
  Alcotest.(check bool) "smaller" true
    (N.cell_count optimized < N.cell_count nl);
  match Backend.Equiv.ir_vs_netlist ~cycles:100 design optimized with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

let test_power_estimation () =
  (* An active counter burns more dynamic power than a held one. *)
  let nl = Backend.Lower.lower (counter_design ()) in
  let active = Backend.Nl_sim.create nl in
  Backend.Nl_sim.set_input_int active "reset" 0;
  Backend.Nl_sim.run active 200;
  let idle = Backend.Nl_sim.create nl in
  Backend.Nl_sim.set_input_int idle "reset" 1;
  (* held in reset: the counter stays at zero *)
  Backend.Nl_sim.run idle 200;
  let p_active = Backend.Power.estimate nl active in
  let p_idle = Backend.Power.estimate nl idle in
  Alcotest.(check bool) "activity measured" true
    (p_active.Backend.Power.avg_activity > p_idle.Backend.Power.avg_activity);
  Alcotest.(check bool) "active burns more" true
    (p_active.Backend.Power.total_mw > p_idle.Backend.Power.total_mw);
  Alcotest.(check bool) "leakage equal" true
    (abs_float
       (p_active.Backend.Power.leakage_mw -. p_idle.Backend.Power.leakage_mw)
    < 1e-12);
  Alcotest.(check bool) "idle still pays clock" true
    (p_idle.Backend.Power.clock_mw > 0.0)

let test_netlist_verilog () =
  let nl = Backend.Lower.lower (counter_design ()) in
  let text = N.emit_verilog nl in
  let contains needle hay =
    let nl' = String.length needle and hl = String.length hay in
    let rec go i =
      i + nl' <= hl && (String.sub hay i nl' = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "module" true (contains "module counter" text);
  Alcotest.(check bool) "dff always" true (contains "always @(posedge clk)" text)

let test_netlist_check_catches_dangling () =
  let nl = N.create ~name:"broken" () in
  let _q = N.dff_deferred nl in
  Alcotest.(check bool) "check raises" true
    (try
       N.check nl;
       false
     with Failure _ -> true)

let test_event_driven_matches_full_eval () =
  (* The event-driven scheduler must be indistinguishable from the
     retained full-evaluation reference: same output bits every cycle
     and the same per-net toggle counts at the end, over randomized
     ExpoCU stimulus — while actually skipping work. *)
  let nl = Backend.Lower.lower (Expocu.Expocu_top.rtl_top ()) in
  let ev = Backend.Nl_sim.create ~mode:Backend.Nl_sim.Event_driven nl in
  let full = Backend.Nl_sim.create ~mode:Backend.Nl_sim.Full_eval nl in
  let rng = Random.State.make [| 0xE5C0 |] in
  let outputs = List.map fst (N.outputs nl) in
  let drive name v =
    Backend.Nl_sim.set_input_int ev name v;
    Backend.Nl_sim.set_input_int full name v
  in
  drive "ext_reset" 1;
  drive "pixel" 0;
  drive "line_valid" 0;
  drive "frame_sync" 0;
  drive "sda_in" 0;
  drive "target_bin" 7;
  let cycles = 1200 in
  for cycle = 1 to cycles do
    if Random.State.int rng 100 = 0 then
      drive "ext_reset" (Random.State.int rng 2);
    if cycle > 5 then drive "ext_reset" 0;
    drive "pixel" (Random.State.int rng 256);
    drive "line_valid" (if Random.State.int rng 3 > 0 then 1 else 0);
    drive "frame_sync" (if Random.State.int rng 40 = 0 then 1 else 0);
    drive "sda_in" (Random.State.int rng 2);
    if Random.State.int rng 200 = 0 then
      drive "target_bin" (Random.State.int rng 16);
    Backend.Nl_sim.step ev;
    Backend.Nl_sim.step full;
    List.iter
      (fun name ->
        let a = Backend.Nl_sim.get_output ev name in
        let b = Backend.Nl_sim.get_output full name in
        if not (Bitvec.equal a b) then
          Alcotest.failf "cycle %d output %s: event %s <> full %s" cycle name
            (Bitvec.to_string a) (Bitvec.to_string b))
      outputs
  done;
  for n = 0 to N.net_count nl - 1 do
    if Backend.Nl_sim.net_toggles ev n <> Backend.Nl_sim.net_toggles full n
    then
      Alcotest.failf "net %d toggles: event %d <> full %d" n
        (Backend.Nl_sim.net_toggles ev n)
        (Backend.Nl_sim.net_toggles full n)
  done;
  Alcotest.(check int) "same cycle count" cycles (Backend.Nl_sim.cycles ev);
  Alcotest.(check bool) "event mode skipped work" true
    (Backend.Nl_sim.cells_skipped ev > 0);
  Alcotest.(check bool) "event mode evaluated fewer gates" true
    (Backend.Nl_sim.gate_evals ev < Backend.Nl_sim.gate_evals full)

let test_netlist_loop_detection () =
  (* The gate builders cannot produce a combinational cycle (every gate
     drives a fresh net), so craft one by rewiring a cell input; the
     simulator must refuse, naming the offending net and design. *)
  let nl = N.create ~fold:false ~name:"ring" () in
  let a = N.add_input nl "a" 1 in
  let g1 = N.and2 nl a.(0) a.(0) in
  let g2 = N.or2 nl g1 a.(0) in
  let cell_of out =
    List.find (fun (c : N.cell) -> c.out = out) (N.cells nl)
  in
  (cell_of g1).ins.(1) <- g2;
  Alcotest.check_raises "loop raises"
    (Backend.Nl_sim.Combinational_loop { module_name = "ring"; net = g1 })
    (fun () -> ignore (Backend.Nl_sim.create nl))

(* Property: random expression trees lower to netlists that agree with
   the interpreter on random inputs. *)
let gen_expr_design =
  let open QCheck2.Gen in
  let rec gen_expr env depth =
    if depth = 0 then
      oneof
        [
          (let* i = int_range 0 (List.length env - 1) in
           return (v (List.nth env i)));
          (let* n = int_range 0 255 in
           return (c ~width:8 n));
        ]
    else
      let sub = gen_expr env (depth - 1) in
      oneof
        [
          (let* a = sub and* b = sub in
           let* op =
             oneofl
               [ Ir.Add; Ir.Sub; Ir.And; Ir.Or; Ir.Xor; Ir.Mul ]
           in
           return (Ir.Binop (op, a, b)));
          (let* a = sub and* b = sub and* s = sub in
           return (mux2 (slice s ~hi:0 ~lo:0) a b));
          (let* a = sub in
           return (notb a));
          (let* a = sub and* b = sub in
           return (zext (Ir.Binop (Ir.Eq, a, b)) 8));
        ]
  in
  let* depth = int_range 1 4 in
  let b = Builder.create "random_expr" in
  let i0 = Builder.input b "i0" 8 in
  let i1 = Builder.input b "i1" 8 in
  let out = Builder.output b "out" 8 in
  let* e = gen_expr [ i0; i1 ] depth in
  Builder.comb b "f" [ out <-- e ];
  return (Builder.finish b)

let prop_random_exprs =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"random expr lowering equivalence"
       gen_expr_design (fun design ->
         let nl = Backend.Lower.lower design in
         match Backend.Equiv.ir_vs_netlist ~cycles:40 design nl with
         | Ok _ -> true
         | Error _ -> false))

let suite =
  [
    Alcotest.test_case "builder folding" `Quick test_builder_folding;
    Alcotest.test_case "builder no folding" `Quick test_builder_no_folding;
    Alcotest.test_case "lower+simulate alu" `Quick test_lower_and_simulate_alu;
    Alcotest.test_case "lower counter" `Quick test_lower_counter;
    Alcotest.test_case "random equivalence" `Quick test_equivalence_random;
    Alcotest.test_case "unfolded equivalence" `Quick test_equivalence_unfolded;
    Alcotest.test_case "memory lowering" `Quick test_memory_lowering;
    Alcotest.test_case "barrel shifter" `Quick test_barrel_shifter;
    Alcotest.test_case "signed compares" `Quick test_signed_compare_lowering;
    Alcotest.test_case "timing analysis" `Quick test_timing_analysis;
    Alcotest.test_case "area analysis" `Quick test_area_analysis;
    Alcotest.test_case "optimizer" `Quick test_optimize_removes_dead_logic;
    Alcotest.test_case "power estimation" `Quick test_power_estimation;
    Alcotest.test_case "netlist verilog" `Quick test_netlist_verilog;
    Alcotest.test_case "netlist check" `Quick test_netlist_check_catches_dangling;
    Alcotest.test_case "event-driven matches full eval" `Quick
      test_event_driven_matches_full_eval;
    Alcotest.test_case "netlist loop detection" `Quick
      test_netlist_loop_detection;
    prop_random_exprs;
  ]

let () = Alcotest.run "backend" [ ("backend", suite) ]
