(* Tests for the osss.cover coverage library — toggle, FSM and
   covergroup collectors, the serializable coverage DB (merge
   monotonicity, diff, JSON round-trip) — and for the collection
   plumbing in the simulators and engines. *)

open Hdl

(* ------------------------------------------------------------------ *)
(* Toggle                                                              *)

let test_toggle () =
  let t = Cover.Toggle.create ~names:[| "a"; "b"; "c" |] in
  Alcotest.(check int) "bits" 3 (Cover.Toggle.bits t);
  Alcotest.(check (float 1e-9)) "empty coverage" 0.0 (Cover.Toggle.coverage t);
  Cover.Toggle.record t 0 ~rising:true;
  Cover.Toggle.record t 0 ~rising:false;
  Cover.Toggle.record t 1 ~rising:true;
  Alcotest.(check int) "covered needs both edges" 1 (Cover.Toggle.covered t);
  Alcotest.(check int) "touched counts one edge" 2 (Cover.Toggle.touched t);
  Alcotest.(check int) "rises" 1 (Cover.Toggle.rises t 0);
  Alcotest.(check int) "falls" 1 (Cover.Toggle.falls t 0);
  Alcotest.(check (float 1e-9)) "coverage" (1.0 /. 3.0)
    (Cover.Toggle.coverage t);
  Alcotest.(check (list string)) "uncovered in slot order" [ "b"; "c" ]
    (Cover.Toggle.uncovered t);
  Alcotest.(check (list string)) "uncovered bounded" [ "b" ]
    (Cover.Toggle.uncovered ~k:1 t);
  let empty = Cover.Toggle.create ~names:[||] in
  Alcotest.(check (float 1e-9)) "no bits = full" 1.0
    (Cover.Toggle.coverage empty)

(* ------------------------------------------------------------------ *)
(* Fsm                                                                 *)

let test_fsm () =
  let f =
    Cover.Fsm.create ~name:"m"
      ~states:[ (0, "idle"); (1, "run"); (2, "done") ]
      ~arcs:[ (0, 1); (1, 2); (2, 0); (1, 1) ]
      ()
  in
  Alcotest.(check bool) "nothing covered yet" false (Cover.Fsm.fully_covered f);
  List.iter (Cover.Fsm.sample f) [ 0; 1; 1; 2; 0 ];
  Alcotest.(check (float 1e-9)) "all states seen" 1.0
    (Cover.Fsm.state_coverage f);
  Alcotest.(check (float 1e-9)) "all declared arcs traversed" 1.0
    (Cover.Fsm.arc_coverage f);
  Alcotest.(check bool) "fully covered" true (Cover.Fsm.fully_covered f);
  Alcotest.(check int) "no unknowns" 0 (Cover.Fsm.unknown_hits f);
  (* an undeclared transition is recorded as an undeclared arc *)
  List.iter (Cover.Fsm.sample f) [ 2; 1 ];
  let undeclared =
    List.filter (fun a -> not a.Cover.Fsm.a_declared) (Cover.Fsm.arcs f)
  in
  Alcotest.(check int) "undeclared arc 0->2 and 2->1" 2
    (List.length undeclared);
  (* undeclared self-loops (a parked register) are not recorded *)
  Cover.Fsm.sample f 0 (* arrive in idle: records the undeclared 1->0 arc *);
  let before = List.length (Cover.Fsm.arcs f) in
  List.iter (Cover.Fsm.sample f) [ 0; 0; 0 ];
  Alcotest.(check int) "idle dwell adds no arc" before
    (List.length (Cover.Fsm.arcs f));
  (* a value outside the declared encoding counts as unknown *)
  Cover.Fsm.sample f 7;
  Alcotest.(check int) "unknown sample" 1 (Cover.Fsm.unknown_hits f);
  Alcotest.(check bool) "unknowns break full coverage" false
    (Cover.Fsm.fully_covered f);
  Alcotest.(check string) "label falls back to value" "<7>"
    (Cover.Fsm.state_label f 7);
  Alcotest.(check string) "declared label" "run" (Cover.Fsm.state_label f 1)

(* ------------------------------------------------------------------ *)
(* Group                                                               *)

let test_group () =
  let g =
    Cover.Group.create ~name:"g" ~goal:2
      [
        ("zero", Cover.Group.Value 0);
        ("small", Cover.Group.Span (1, 9));
        ("bad", Cover.Group.Illegal_value 99);
      ]
  in
  List.iter (Cover.Group.sample g) [ 0; 0; 5; 42 ];
  let hits name =
    let b =
      List.find (fun b -> b.Cover.Group.bin_name = name) (Cover.Group.bins g)
    in
    b.Cover.Group.hits
  in
  Alcotest.(check int) "zero hit twice" 2 (hits "zero");
  Alcotest.(check int) "span hit once" 1 (hits "small");
  Alcotest.(check int) "unmatched goes to other" 1 (Cover.Group.other_hits g);
  (* goal=2: "zero" is at goal, "small" is not, "bad" is illegal and
     excluded from the denominator *)
  Alcotest.(check (float 1e-9)) "coverage counts goal-reaching legal bins"
    0.5 (Cover.Group.coverage g);
  Alcotest.(check int) "no illegal hits yet" 0 (Cover.Group.illegal_hits g);
  Cover.Group.sample g 99;
  Alcotest.(check int) "illegal hit recorded" 1 (Cover.Group.illegal_hits g)

(* ------------------------------------------------------------------ *)
(* Db: construction, merge, diff, serialization                        *)

let sample_db ?(run = "run-a") ?(extra_samples = []) () =
  let tg = Cover.Toggle.create ~names:[| "x"; "y" |] in
  Cover.Toggle.record tg 0 ~rising:true;
  Cover.Toggle.record tg 0 ~rising:false;
  let fsm =
    Cover.Fsm.create ~name:"m" ~states:[ (0, "a"); (1, "b") ] ~arcs:[ (0, 1) ]
      ()
  in
  List.iter (Cover.Fsm.sample fsm) ([ 0; 1 ] @ extra_samples);
  let g =
    Cover.Group.create ~name:"g"
      [ ("lo", Cover.Group.Span (0, 7)); ("hi", Cover.Group.Span (8, 15)) ]
  in
  List.iter (Cover.Group.sample g) (3 :: extra_samples);
  Cover.Db.make
    ~toggles:(Cover.Db.toggle_entries tg)
    ~fsms:[ fsm ] ~groups:[ g ]
    ~monitors:[ Cover.Db.monitor ~name:"p" ~pass:5 ~vacuous:2 ~fail:0 ]
    ~run ()

let test_db_totals () =
  let db = sample_db () in
  let t = Cover.Db.totals db in
  Alcotest.(check int) "toggle bits keep denominator" 2
    t.Cover.Db.toggle_bits;
  Alcotest.(check int) "toggle covered" 1 t.Cover.Db.toggle_covered;
  Alcotest.(check int) "fsm states" 2 t.Cover.Db.fsm_states;
  Alcotest.(check int) "fsm states hit" 2 t.Cover.Db.fsm_states_hit;
  Alcotest.(check int) "group bins hit" 1 t.Cover.Db.group_bins_hit;
  Alcotest.(check int) "monitor passes" 5 t.Cover.Db.monitor_passes;
  Alcotest.(check (list string)) "fully covered fsm list" [ "m" ]
    (Cover.Db.fully_covered_fsms db)

let test_db_merge_monotone () =
  let a = sample_db ~run:"run-a" () in
  (* run-b additionally hits the "hi" bin (value 9 also revisits fsm
     state 1... 9 is unknown to the fsm, making b strictly different) *)
  let b = sample_db ~run:"run-b" ~extra_samples:[ 9 ] () in
  let m = Cover.Db.merge a b in
  let cov db =
    let t = Cover.Db.totals db in
    ( t.Cover.Db.toggle_covered,
      t.Cover.Db.fsm_states_hit,
      t.Cover.Db.group_bins_hit )
  in
  let ta, _, ba = cov a in
  let tm, _, bm = cov m in
  let _, _, bb = cov b in
  Alcotest.(check bool) "merged toggle >= a" true (tm >= ta);
  Alcotest.(check bool) "merged bins >= either input" true
    (bm >= ba && bm >= bb);
  Alcotest.(check (list string)) "runs concatenated" [ "run-a"; "run-b" ]
    m.Cover.Db.runs;
  (* merging a DB with itself dedups provenance and doubles counts *)
  let self = Cover.Db.merge a a in
  Alcotest.(check (list string)) "self-merge dedups runs" [ "run-a" ]
    self.Cover.Db.runs;
  let hits db =
    match db.Cover.Db.toggles with e :: _ -> e.Cover.Db.t_rise | [] -> 0
  in
  Alcotest.(check int) "self-merge sums counts" (2 * hits a) (hits self)

let test_db_diff () =
  let a = sample_db ~extra_samples:[ 9 ] () in
  let b = sample_db () in
  let lost = Cover.Db.diff a b in
  Alcotest.(check bool) "bin hi covered only in a" true
    (List.mem ("bin", "g.hi") lost
    || List.exists (fun (k, i) -> k = "bin" && String.length i > 0) lost);
  Alcotest.(check (list (pair string string))) "diff of equal DBs is empty" []
    (Cover.Db.diff b b)

let test_db_json_roundtrip () =
  let db = sample_db ~extra_samples:[ 9 ] () in
  (match Cover.Db.of_json (Cover.Db.to_json db) with
  | Ok back ->
      Alcotest.(check bool) "round-trip preserves the DB" true (back = db)
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (match Cover.Db.of_json (Obs.Json.Obj [ ("schema", Obs.Json.Int 3) ]) with
  | Ok _ -> Alcotest.fail "bad schema accepted"
  | Error _ -> ());
  let path = Filename.temp_file "cover" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cover.Db.save db path;
      match Cover.Db.load path with
      | Ok back ->
          Alcotest.(check bool) "save/load round-trip" true (back = db)
      | Error e -> Alcotest.failf "load failed: %s" e);
  match Cover.Db.load "/nonexistent/cover.json" with
  | Ok _ -> Alcotest.fail "missing file loaded"
  | Error _ -> ()

let test_db_summary () =
  let s = Cover.Db.summary (sample_db ()) in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i =
      i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "mentions toggle line" true
    (contains "toggle bits" s);
  Alcotest.(check bool) "marks full fsm" true (contains "[FULL]" s)

(* ------------------------------------------------------------------ *)
(* Collection in the simulators and engines                            *)

let small_design () =
  let open Builder.Dsl in
  let b = Builder.create "cov_demo" in
  let a = Builder.input b "a" 2 in
  let y = Builder.output b "y" 2 in
  Builder.sync b "reg" [ y <-- v a ];
  Builder.finish b

let drive_int set step =
  List.iter
    (fun v ->
      set "a" v;
      step ())
    [ 0; 3; 0; 2; 1 ]

let test_rtl_sim_toggle_cover () =
  let sim = Rtl_sim.create (small_design ()) in
  Rtl_sim.set_input_int sim "a" 0;
  Rtl_sim.step sim;
  Alcotest.(check bool) "off by default" true
    (Rtl_sim.toggle_cover sim = None);
  Rtl_sim.enable_toggle_cover sim;
  Rtl_sim.enable_toggle_cover sim (* idempotent *);
  drive_int (Rtl_sim.set_input_int sim) (fun () -> Rtl_sim.step sim);
  let tg =
    match Rtl_sim.toggle_cover sim with
    | Some tg -> tg
    | None -> Alcotest.fail "no collector after enable"
  in
  Alcotest.(check bool) "some bits covered" true (Cover.Toggle.covered tg > 0);
  (* y follows a through 0->3->0: both bits rose and fell *)
  let both = Cover.Toggle.covered tg in
  Alcotest.(check bool) "output bits move both ways" true (both >= 2)

let test_nl_sim_modes_agree () =
  let nl = Backend.Lower.lower (small_design ()) in
  let run mode =
    let sim = Backend.Nl_sim.create ~mode nl in
    Backend.Nl_sim.enable_toggle_cover sim;
    Backend.Nl_sim.set_input_int sim "a" 0;
    drive_int
      (Backend.Nl_sim.set_input_int sim)
      (fun () -> Backend.Nl_sim.step sim);
    match Backend.Nl_sim.toggle_cover sim with
    | Some tg -> tg
    | None -> Alcotest.fail "no collector after enable"
  in
  let ev = run Backend.Nl_sim.Event_driven in
  let fl = run Backend.Nl_sim.Full_eval in
  Alcotest.(check int) "same universe" (Cover.Toggle.bits fl)
    (Cover.Toggle.bits ev);
  for i = 0 to Cover.Toggle.bits ev - 1 do
    if
      Cover.Toggle.rises ev i <> Cover.Toggle.rises fl i
      || Cover.Toggle.falls ev i <> Cover.Toggle.falls fl i
    then
      Alcotest.failf "mode disagreement on %s" (Cover.Toggle.name ev i)
  done;
  Alcotest.(check bool) "netlist covered something" true
    (Cover.Toggle.covered ev > 0)

(* ------------------------------------------------------------------ *)
(* Activity: windowed switching-activity sampling for power            *)

let test_activity_windows () =
  let a = Cover.Activity.create ~window:4 ~slots:3 () in
  Alcotest.(check int) "window size" 4 (Cover.Activity.window_size a);
  Alcotest.(check int) "slots" 3 (Cover.Activity.slots a);
  (* 6 cycles: slot 0 toggles every cycle, slot 2 only in cycle 5 *)
  for c = 0 to 5 do
    Cover.Activity.record a 0;
    if c = 5 then Cover.Activity.record a 2;
    Cover.Activity.end_cycle a
  done;
  Alcotest.(check int) "one full window closed" 1
    (Cover.Activity.window_count a);
  Alcotest.(check int) "totals include the open window" 7
    (Cover.Activity.total_toggles a);
  Alcotest.(check int) "cycles include the open window" 6
    (Cover.Activity.cycles a);
  Cover.Activity.flush a;
  Cover.Activity.flush a (* idempotent *);
  (match Cover.Activity.windows a with
  | [ w0; w1 ] ->
      Alcotest.(check int) "w0 index" 0 w0.Cover.Activity.w_index;
      Alcotest.(check int) "w0 start" 0 w0.Cover.Activity.w_start;
      Alcotest.(check int) "w0 cycles" 4 w0.Cover.Activity.w_cycles;
      Alcotest.(check (list (pair int int))) "w0 sparse counts" [ (0, 4) ]
        w0.Cover.Activity.w_counts;
      Alcotest.(check int) "w1 start" 4 w1.Cover.Activity.w_start;
      Alcotest.(check int) "w1 partial cycles" 2 w1.Cover.Activity.w_cycles;
      Alcotest.(check (list (pair int int)))
        "w1 counts ascending by slot"
        [ (0, 2); (2, 1) ]
        w1.Cover.Activity.w_counts;
      Alcotest.(check int) "window_toggles" 3
        (Cover.Activity.window_toggles w1)
  | ws -> Alcotest.failf "expected 2 windows after flush, got %d"
            (List.length ws));
  (match Cover.Activity.peak a with
  | Some w -> Alcotest.(check int) "peak is the full window" 0
                w.Cover.Activity.w_index
  | None -> Alcotest.fail "no peak window");
  (* flushing with no pending cycles must not add an empty window *)
  Alcotest.(check int) "flush is idempotent" 2 (Cover.Activity.window_count a)

let test_activity_rejects_bad_geometry () =
  let raises f =
    match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "zero-length window" true
    (raises (fun () -> Cover.Activity.create ~window:0 ~slots:4 ()));
  Alcotest.(check bool) "negative window" true
    (raises (fun () -> Cover.Activity.create ~window:(-3) ~slots:4 ()));
  Alcotest.(check bool) "negative slots" true
    (raises (fun () -> Cover.Activity.create ~slots:(-1) ()));
  (* zero slots is a legal degenerate sampler *)
  let a = Cover.Activity.create ~slots:0 () in
  Cover.Activity.end_cycle a;
  Alcotest.(check int) "zero-slot sampler counts cycles" 1
    (Cover.Activity.cycles a)

(* A sampler window that straddles a coverage epoch boundary: toggle
   coverage (per-epoch pre/post comparison) and the activity sampler
   ride the same change detection, so neither loses or double-counts
   toggles when their periods are coprime. *)
let test_activity_straddles_epoch () =
  let nl = Backend.Lower.lower (small_design ()) in
  let sim = Backend.Nl_sim.create ~mode:Backend.Nl_sim.Event_driven nl in
  Backend.Nl_sim.enable_toggle_cover sim;
  Backend.Nl_sim.enable_events sim (* epoch emission on *);
  Backend.Nl_sim.enable_power_sampler ~window:5 sim;
  Backend.Nl_sim.set_input_int sim "a" 0;
  for c = 1 to 13 do
    Backend.Nl_sim.set_input_int sim "a" (c land 3);
    Backend.Nl_sim.step sim
  done;
  let act =
    match Backend.Nl_sim.power_activity sim with
    | Some a -> a
    | None -> Alcotest.fail "no sampler after enable"
  in
  Alcotest.(check int) "sampler saw every cycle"
    (Backend.Nl_sim.cycles sim)
    (Cover.Activity.cycles act);
  Alcotest.(check int) "sampler toggles = simulator toggles"
    (Backend.Nl_sim.toggle_total sim)
    (Cover.Activity.total_toggles act);
  Cover.Activity.flush act;
  (* windows tile the run contiguously: starts 0,5,10 with 5,5,3 cycles *)
  let ws = Cover.Activity.windows act in
  Alcotest.(check (list (pair int int)))
    "window tiling"
    [ (0, 5); (5, 5); (10, 3) ]
    (List.map
       (fun w -> (w.Cover.Activity.w_start, w.Cover.Activity.w_cycles))
       ws)

(* Event-driven and full-eval scheduling must report identical windowed
   activity, not merely identical toggle totals. *)
let test_activity_modes_agree () =
  let nl = Backend.Lower.lower (small_design ()) in
  let run mode =
    let sim = Backend.Nl_sim.create ~mode nl in
    Backend.Nl_sim.enable_power_sampler ~window:3 sim;
    Backend.Nl_sim.set_input_int sim "a" 0;
    drive_int
      (Backend.Nl_sim.set_input_int sim)
      (fun () -> Backend.Nl_sim.step sim);
    match Backend.Nl_sim.power_activity sim with
    | Some a ->
        Cover.Activity.flush a;
        a
    | None -> Alcotest.fail "no sampler after enable"
  in
  let ev = run Backend.Nl_sim.Event_driven in
  let fl = run Backend.Nl_sim.Full_eval in
  let shape a =
    List.map
      (fun w ->
        ( w.Cover.Activity.w_index,
          w.Cover.Activity.w_start,
          w.Cover.Activity.w_cycles,
          w.Cover.Activity.w_counts ))
      (Cover.Activity.windows a)
  in
  Alcotest.(check bool) "some activity recorded" true
    (Cover.Activity.total_toggles ev > 0);
  Alcotest.(check bool) "event/full windows identical" true
    (shape ev = shape fl)

let test_engine_power_threading () =
  let design = small_design () in
  let nl = Backend.Lower.lower design in
  let exercise expect_support eng =
    Alcotest.(check bool)
      (Engine.label eng ^ " sampler off by default")
      true
      (Engine.power_activity eng = None);
    Engine.enable_power_sampler eng;
    Engine.set_input_int eng "a" 3;
    Engine.step eng;
    Engine.set_input_int eng "a" 0;
    Engine.step eng;
    match (Engine.power_activity eng, expect_support) with
    | Some act, true ->
        Alcotest.(check bool)
          (Engine.label eng ^ " recorded activity")
          true
          (Cover.Activity.total_toggles act > 0)
    | None, false -> ()
    | Some _, false ->
        Alcotest.failf "%s unexpectedly supports power" (Engine.label eng)
    | None, true ->
        Alcotest.failf "%s lost its sampler" (Engine.label eng)
  in
  exercise true (Backend.Nl_engine.create ~label:"nl" nl);
  exercise true (Backend.Nl_engine.create_word ~label:"word" ~lanes:4 nl);
  exercise false (Rtl_engine.create ~label:"rtl" design);
  (* the Faulty wrapper must delegate both operations *)
  exercise true
    (Engine.inject_fault ~port:"y" (Backend.Nl_engine.create ~label:"fnl" nl))

let test_engine_cover_threading () =
  let design = small_design () in
  let exercise eng =
    Alcotest.(check bool)
      (Engine.label eng ^ " cover off by default")
      true
      (Engine.cover eng = None);
    Engine.enable_cover eng;
    Engine.set_input_int eng "a" 3;
    Engine.step eng;
    Engine.set_input_int eng "a" 0;
    Engine.step eng;
    match Engine.cover eng with
    | Some tg ->
        Alcotest.(check bool)
          (Engine.label eng ^ " recorded toggles")
          true
          (Cover.Toggle.touched tg > 0)
    | None -> Alcotest.failf "%s lost its collector" (Engine.label eng)
  in
  exercise (Rtl_engine.create ~label:"rtl" design);
  exercise (Backend.Nl_engine.create ~label:"nl" (Backend.Lower.lower design));
  (* the Faulty wrapper must delegate both operations *)
  exercise (Engine.inject_fault ~port:"y" (Rtl_engine.create ~label:"faulty" design))

let suite =
  [
    Alcotest.test_case "toggle collector" `Quick test_toggle;
    Alcotest.test_case "fsm collector" `Quick test_fsm;
    Alcotest.test_case "covergroup" `Quick test_group;
    Alcotest.test_case "db totals" `Quick test_db_totals;
    Alcotest.test_case "db merge monotone" `Quick test_db_merge_monotone;
    Alcotest.test_case "db diff" `Quick test_db_diff;
    Alcotest.test_case "db json round-trip" `Quick test_db_json_roundtrip;
    Alcotest.test_case "db summary" `Quick test_db_summary;
    Alcotest.test_case "rtl_sim toggle cover" `Quick test_rtl_sim_toggle_cover;
    Alcotest.test_case "nl_sim modes agree" `Quick test_nl_sim_modes_agree;
    Alcotest.test_case "engine cover threading" `Quick
      test_engine_cover_threading;
    Alcotest.test_case "activity windows" `Quick test_activity_windows;
    Alcotest.test_case "activity rejects bad geometry" `Quick
      test_activity_rejects_bad_geometry;
    Alcotest.test_case "activity straddles epoch" `Quick
      test_activity_straddles_epoch;
    Alcotest.test_case "activity modes agree" `Quick
      test_activity_modes_agree;
    Alcotest.test_case "engine power threading" `Quick
      test_engine_power_threading;
  ]

let () = Alcotest.run "cover" [ ("cover", suite) ]
